// Root benchmark harness: one benchmark per table and figure of the
// WaterWise paper (see DESIGN.md's per-experiment index), plus the design
// ablations. Each benchmark regenerates its paper artifact end to end —
// environment synthesis, trace replay, scheduling, accounting — at a
// reduced "bench" scale; `cmd/experiments -run all` prints the same
// artifacts at quick scale and `-paper` replays the full 230k-job setup.
//
//	go test -bench=. -benchmem
package waterwise

import (
	"testing"
	"time"

	"waterwise/internal/experiments"
)

// benchScale keeps every figure regeneration fast enough for iterated
// benchmarking while preserving capacity pressure (the region-spillover
// effects need a non-trivial arrival rate).
func benchScale() experiments.Scale {
	return experiments.Scale{
		Days: 1, JobsPerDay: 2500, DurationScale: 1, Seed: 7, Tick: time.Minute,
	}
}

// benchExperiment runs one registered paper experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(scale)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkFig1EnergySources regenerates Fig. 1 (per-source carbon
// intensity and EWIF characterization).
func BenchmarkFig1EnergySources(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2RegionalCharacterization regenerates Fig. 2 (regional
// CI/EWIF/WUE/WSF averages and the Oregon CI/WI time series).
func BenchmarkFig2RegionalCharacterization(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3GreedyOptOpportunity regenerates Fig. 3 (greedy-optimal
// savings vs delay tolerance, job distribution at 10%).
func BenchmarkFig3GreedyOptOpportunity(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig5MainResult regenerates Fig. 5 (WaterWise vs the greedy
// oracles across delay tolerances on the Borg-like trace).
func BenchmarkFig5MainResult(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6WRIData regenerates Fig. 6 (the World Resources Institute
// water-dataset robustness study).
func BenchmarkFig6WRIData(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Ecovisor regenerates Fig. 7 (Ecovisor comparison on both
// datasets).
func BenchmarkFig7Ecovisor(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8WeightSensitivity regenerates Fig. 8 (λ_CO2 sweep).
func BenchmarkFig8WeightSensitivity(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9AlibabaTrace regenerates Fig. 9 (Alibaba-like trace).
func BenchmarkFig9AlibabaTrace(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10LoadBalancers regenerates Fig. 10 (Round-Robin/Least-Load
// comparison).
func BenchmarkFig10LoadBalancers(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Utilization regenerates Fig. 11 (5/15/25% utilization).
func BenchmarkFig11Utilization(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12RegionAvailability regenerates Fig. 12 (region subsets).
func BenchmarkFig12RegionAvailability(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13DecisionOverhead regenerates Fig. 13 (decision-making
// overhead over time, Borg vs Alibaba).
func BenchmarkFig13DecisionOverhead(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkTable2ServiceTime regenerates Table 2 (normalized service time
// and delay-tolerance violations).
func BenchmarkTable2ServiceTime(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkTable3CommOverhead regenerates Table 3 (communication overhead
// from Oregon to each region).
func BenchmarkTable3CommOverhead(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkSensitivityPerturbation regenerates the ±10% embodied-carbon /
// water-intensity and 2x-rate robustness paragraphs of Section 6.
func BenchmarkSensitivityPerturbation(b *testing.B) { benchExperiment(b, "sens") }

// BenchmarkAblations exercises the design-choice ablations DESIGN.md calls
// out (MILP vs greedy controller, history learner, slack manager, σ).
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablate") }

// BenchmarkExtensions exercises the §7 performance/cost-objective
// extensions.
func BenchmarkExtensions(b *testing.B) { benchExperiment(b, "ext") }

// BenchmarkSchedulingRound isolates the cost of one WaterWise Optimization
// Decision Controller invocation (the quantity behind Fig. 13), excluding
// trace replay: one environment, a 60-job batch, one MILP solve per
// iteration.
func BenchmarkSchedulingRound(b *testing.B) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 3000, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	jobs = jobs[:60]
	for _, j := range jobs {
		j.Submit = env.env.Start
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := NewScheduler(SchedulerConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := env.Run(s, jobs, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outcomes) != len(jobs) {
			b.Fatalf("completed %d/%d", len(res.Outcomes), len(jobs))
		}
	}
}
