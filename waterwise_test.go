package waterwise

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env.Regions()); got != 5 {
		t.Fatalf("default environment has %d regions, want 5", got)
	}
	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 1000 {
		t.Fatalf("trace too small: %d jobs", len(jobs))
	}
	if err := Validate(env, jobs); err != nil {
		t.Fatal(err)
	}

	base, err := env.Run(NewBaseline(), jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := env.Run(sched, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := CompareSavings(base, run)
	if err != nil {
		t.Fatal(err)
	}
	if sv.CarbonPct <= 0 {
		t.Errorf("carbon saving = %.1f%%, want positive", sv.CarbonPct)
	}
	dist := Distribution(run, env.Regions())
	total := 0.0
	for _, p := range dist {
		total += p
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("distribution sums to %.1f%%, want 100%%", total)
	}
}

func TestEnvironmentOptions(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{
		Regions:          []RegionID{Zurich, Mumbai},
		ServersPerRegion: 10,
		UseWRIWaterData:  true,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := env.Regions()
	if len(ids) != 2 || ids[0] != Zurich || ids[1] != Mumbai {
		t.Fatalf("regions = %v", ids)
	}
	snap, ok := env.Snapshot(Zurich, time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC))
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.CI <= 0 || snap.WaterIntensity() <= 0 {
		t.Errorf("snapshot not populated: %+v", snap)
	}
	if _, err := NewEnvironment(EnvironmentConfig{Regions: []RegionID{"atlantis"}}); err == nil {
		t.Error("unknown region accepted")
	}
}

// TestFeedRecordReplayEndToEnd drives the public feed surface: record a
// synthetic environment's feed to disk, rebuild the environment from the
// file with Source: FeedReplay, and a full scheduler run over the
// replayed world must reproduce the synthetic run decision for decision.
func TestFeedRecordReplayEndToEnd(t *testing.T) {
	synth, err := NewEnvironment(EnvironmentConfig{Seed: 4, HorizonHours: 48})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "feed.json")
	if err := synth.RecordFeed(path); err != nil {
		t.Fatal(err)
	}
	replay, err := NewEnvironment(EnvironmentConfig{Source: FeedReplay, FeedPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if h := replay.FeedHealth(); h.Provider != "replay" || h.Stale {
		t.Fatalf("replay feed health = %+v", h)
	}
	if h := synth.FeedHealth(); h.Provider != "synthetic" {
		t.Fatalf("synthetic feed health = %+v", h)
	}
	if replay.HorizonHours() != synth.HorizonHours() {
		t.Fatalf("replay horizon %d, synthetic %d", replay.HorizonHours(), synth.HorizonHours())
	}

	jobs, err := synth.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 1200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sched1, err := NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sched2, err := NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := synth.Run(sched1, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := replay.Run(sched2, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Outcomes) != len(got.Outcomes) {
		t.Fatalf("synthetic run decided %d jobs, replayed %d", len(want.Outcomes), len(got.Outcomes))
	}
	for i := range want.Outcomes {
		w, g := want.Outcomes[i], got.Outcomes[i]
		if w.Job.ID != g.Job.ID || w.Region != g.Region ||
			!w.Start.Equal(g.Start) || !w.Finish.Equal(g.Finish) ||
			w.Compute != g.Compute || w.Comm != g.Comm {
			t.Fatalf("outcome %d differs:\n synthetic %+v\n replayed  %+v", i, w, g)
		}
	}

	// A caller-chosen Start keeps the default horizon anchored to the
	// recorded end instead of extending past the data.
	mid := time.Date(2023, 7, 2, 0, 0, 0, 0, time.UTC) // 24h into the 48h recording
	narrowed, err := NewEnvironment(EnvironmentConfig{Source: FeedReplay, FeedPath: path, Start: mid})
	if err != nil {
		t.Fatal(err)
	}
	if narrowed.HorizonHours() != 24 {
		t.Errorf("mid-trace Start horizon = %d hours, want the remaining 24", narrowed.HorizonHours())
	}
	if _, err := NewEnvironment(EnvironmentConfig{
		Source: FeedReplay, FeedPath: path, Start: mid.AddDate(0, 0, 30),
	}); err == nil {
		t.Error("Start past the recorded span accepted")
	}

	// Misconfigurations are rejected up front.
	if _, err := NewEnvironment(EnvironmentConfig{Source: FeedReplay}); err == nil {
		t.Error("replay source without FeedPath accepted")
	}
	if _, err := NewEnvironment(EnvironmentConfig{Source: FeedLive}); err == nil {
		t.Error("live source without FeedURL accepted")
	}
	if _, err := NewEnvironment(EnvironmentConfig{Source: "psychic"}); err == nil {
		t.Error("unknown feed source accepted")
	}
}

func TestSchedulerConfigForwarding(t *testing.T) {
	if _, err := NewScheduler(SchedulerConfig{LambdaCarbon: 0.8, LambdaWater: 0.1}); err == nil {
		t.Error("invalid lambda split accepted")
	}
	s, err := NewScheduler(SchedulerConfig{LambdaCarbon: 0.7, LambdaWater: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "waterwise" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Regions: []RegionID{Zurich}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	good, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(env, good); err != nil {
		t.Fatal(err)
	}
	bad := *good[0]
	bad.Home = Mumbai // not in this environment
	if err := Validate(env, []*Job{&bad}); err == nil {
		t.Error("foreign home region accepted")
	}
	late := *good[0]
	late.Submit = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := Validate(env, []*Job{&late}); err == nil {
		t.Error("out-of-horizon submission accepted")
	}
	if err := Validate(nil, nil); err == nil {
		t.Error("nil environment accepted")
	}
}

func TestAlibabaTraceAPI(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := env.GenerateAlibabaTrace(TraceConfig{Days: 1, JobsPerDay: 2000, DurationScale: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 1200 {
		t.Fatalf("alibaba trace too small: %d", len(jobs))
	}
}

// TestOnlineServiceEndToEnd exercises the serving surface the README
// documents: build an environment and scheduler, start the online service
// in accelerated mode, stream a generated trace through its HTTP API, drain
// it, and check the decisions and status.
func TestOnlineServiceEndToEnd(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(SchedulerConfig{CrossRoundWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(env, sched, ServerConfig{Tolerance: 0.5, Round: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 800, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		id := j.ID
		if _, err := srv.Submit(JobSpec{
			ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
			DurationSec:    j.Duration.Seconds(),
			EnergyKWh:      float64(j.Energy),
			EstDurationSec: j.EstDuration.Seconds(),
			EstEnergyKWh:   float64(j.EstEnergy),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	st := srv.Status()
	if st.Decisions != uint64(len(jobs)) {
		t.Fatalf("decided %d of %d jobs", st.Decisions, len(jobs))
	}
	if st.Solver == nil || st.Solver.WarmStarts == 0 {
		t.Error("cross-round warm start produced no warm-served rounds")
	}
	decisions := srv.Decisions(0, 0)
	if len(decisions) != len(jobs) {
		t.Fatalf("decision log has %d entries, want %d", len(decisions), len(jobs))
	}
	res := srv.Result()
	if res.TotalCarbon() <= 0 || res.TotalWater() <= 0 {
		t.Error("service result has no accounted footprint")
	}
}

// TestFleetEndToEnd exercises the sharded serving surface: build a fleet
// over the default environment, stream a trace through it by home region,
// drain, and check the merged decisions, aggregate status, and result.
func TestFleetEndToEnd(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFleet(env, FleetConfig{
		Shards: 2, Tolerance: 0.5, Round: time.Minute,
		Scheduler: SchedulerConfig{CrossRoundWarmStart: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()

	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 800, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		id := j.ID
		if _, err := fl.Submit(JobSpec{
			ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
			DurationSec:    j.Duration.Seconds(),
			EnergyKWh:      float64(j.Energy),
			EstDurationSec: j.EstDuration.Seconds(),
			EstEnergyKWh:   float64(j.EstEnergy),
		}); err != nil {
			t.Fatal(err)
		}
	}
	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	st := fl.Status()
	if st.Shards != 2 || st.Decisions != uint64(len(jobs)) || st.Lost != 0 {
		t.Fatalf("fleet status: %+v", st)
	}
	ds := fl.Decisions(0, 0)
	if len(ds) != len(jobs) {
		t.Fatalf("merged log has %d entries, want %d", len(ds), len(jobs))
	}
	for i, d := range ds {
		if d.Seq != uint64(i+1) {
			t.Fatalf("merged stream has a gap at %d", i)
		}
	}
	res, err := fl.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(jobs) || res.TotalCarbon() <= 0 || res.TotalWater() <= 0 {
		t.Fatalf("fleet result: %d outcomes, carbon %v, water %v",
			len(res.Outcomes), res.TotalCarbon(), res.TotalWater())
	}
}

func TestAllComparatorsRun(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{
		NewBaseline(), NewRoundRobin(), NewLeastLoad(),
		NewCarbonGreedyOpt(), NewWaterGreedyOpt(), NewEcovisor(),
	} {
		res, err := env.Run(s, jobs, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Outcomes) != len(jobs) {
			t.Errorf("%s completed %d/%d jobs", s.Name(), len(res.Outcomes), len(jobs))
		}
	}
}
