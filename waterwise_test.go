package waterwise

import (
	"testing"
	"time"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(env.Regions()); got != 5 {
		t.Fatalf("default environment has %d regions, want 5", got)
	}
	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 1500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 1000 {
		t.Fatalf("trace too small: %d jobs", len(jobs))
	}
	if err := Validate(env, jobs); err != nil {
		t.Fatal(err)
	}

	base, err := env.Run(NewBaseline(), jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := env.Run(sched, jobs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := CompareSavings(base, run)
	if err != nil {
		t.Fatal(err)
	}
	if sv.CarbonPct <= 0 {
		t.Errorf("carbon saving = %.1f%%, want positive", sv.CarbonPct)
	}
	dist := Distribution(run, env.Regions())
	total := 0.0
	for _, p := range dist {
		total += p
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("distribution sums to %.1f%%, want 100%%", total)
	}
}

func TestEnvironmentOptions(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{
		Regions:          []RegionID{Zurich, Mumbai},
		ServersPerRegion: 10,
		UseWRIWaterData:  true,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := env.Regions()
	if len(ids) != 2 || ids[0] != Zurich || ids[1] != Mumbai {
		t.Fatalf("regions = %v", ids)
	}
	snap, ok := env.Snapshot(Zurich, time.Date(2023, 7, 1, 12, 0, 0, 0, time.UTC))
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.CI <= 0 || snap.WaterIntensity() <= 0 {
		t.Errorf("snapshot not populated: %+v", snap)
	}
	if _, err := NewEnvironment(EnvironmentConfig{Regions: []RegionID{"atlantis"}}); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestSchedulerConfigForwarding(t *testing.T) {
	if _, err := NewScheduler(SchedulerConfig{LambdaCarbon: 0.8, LambdaWater: 0.1}); err == nil {
		t.Error("invalid lambda split accepted")
	}
	s, err := NewScheduler(SchedulerConfig{LambdaCarbon: 0.7, LambdaWater: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "waterwise" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Regions: []RegionID{Zurich}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	good, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(env, good); err != nil {
		t.Fatal(err)
	}
	bad := *good[0]
	bad.Home = Mumbai // not in this environment
	if err := Validate(env, []*Job{&bad}); err == nil {
		t.Error("foreign home region accepted")
	}
	late := *good[0]
	late.Submit = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := Validate(env, []*Job{&late}); err == nil {
		t.Error("out-of-horizon submission accepted")
	}
	if err := Validate(nil, nil); err == nil {
		t.Error("nil environment accepted")
	}
}

func TestAlibabaTraceAPI(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := env.GenerateAlibabaTrace(TraceConfig{Days: 1, JobsPerDay: 2000, DurationScale: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 1200 {
		t.Fatalf("alibaba trace too small: %d", len(jobs))
	}
}

func TestAllComparatorsRun(t *testing.T) {
	env, err := NewEnvironment(EnvironmentConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := env.GenerateBorgTrace(TraceConfig{Days: 1, JobsPerDay: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{
		NewBaseline(), NewRoundRobin(), NewLeastLoad(),
		NewCarbonGreedyOpt(), NewWaterGreedyOpt(), NewEcovisor(),
	} {
		res, err := env.Run(s, jobs, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Outcomes) != len(jobs) {
			t.Errorf("%s completed %d/%d jobs", s.Name(), len(res.Outcomes), len(jobs))
		}
	}
}
