// Command waterwise runs one trace-driven simulation of a scheduling policy
// over the five-region environment and prints a report: total footprints,
// savings vs an automatically-run baseline, service time, violations, and
// the per-region job distribution.
//
// Usage:
//
//	waterwise [flags]
//
//	-scheduler   waterwise|baseline|round-robin|least-load|temporal-shift|
//	             carbon-greedy-opt|water-greedy-opt|ecovisor   (default waterwise)
//	-days        trace length in days                          (default 1)
//	-jobs-per-day mean arrival rate                            (default 5000)
//	-tolerance   delay tolerance fraction, e.g. 0.5 = 50%      (default 0.5)
//	-lambda-carbon λ_CO2 objective weight (λ_H2O = 1-λ_CO2)    (default 0.5)
//	-alibaba     use the bursty Alibaba-style trace
//	-wri         use the WRI-style water dataset
//	-regions     comma-separated region subset (default: all five)
//	-seed        RNG seed                                      (default 7)
//	-trace       read jobs from a trace CSV instead of generating
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"waterwise"
	"waterwise/internal/metrics"
	"waterwise/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waterwise:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schedName  = flag.String("scheduler", "waterwise", "scheduling policy")
		days       = flag.Int("days", 1, "trace length in days")
		jobsPerDay = flag.Float64("jobs-per-day", 5000, "mean arrival rate")
		tolerance  = flag.Float64("tolerance", 0.5, "delay tolerance fraction")
		lambdaC    = flag.Float64("lambda-carbon", 0.5, "carbon objective weight (water gets 1-x)")
		alibaba    = flag.Bool("alibaba", false, "use the Alibaba-style trace")
		wri        = flag.Bool("wri", false, "use the WRI-style water dataset")
		regionsCSV = flag.String("regions", "", "comma-separated region subset")
		seed       = flag.Int64("seed", 7, "RNG seed")
		traceFile  = flag.String("trace", "", "trace CSV to replay (overrides generation)")
	)
	flag.Parse()

	var regions []waterwise.RegionID
	if *regionsCSV != "" {
		for _, r := range strings.Split(*regionsCSV, ",") {
			regions = append(regions, waterwise.RegionID(strings.TrimSpace(r)))
		}
	}
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{
		Regions:         regions,
		HorizonHours:    (*days + 3) * 24,
		UseWRIWaterData: *wri,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}

	var jobs []*waterwise.Job
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		jobs, err = trace.ReadCSV(f)
		if err != nil {
			return err
		}
	} else {
		tc := waterwise.TraceConfig{Days: *days, JobsPerDay: *jobsPerDay, Seed: *seed + 1}
		if *alibaba {
			tc.JobsPerDay *= 8.5
			tc.DurationScale = 1 / 8.5
			jobs, err = env.GenerateAlibabaTrace(tc)
		} else {
			jobs, err = env.GenerateBorgTrace(tc)
		}
		if err != nil {
			return err
		}
	}
	if err := waterwise.Validate(env, jobs); err != nil {
		return err
	}

	s, err := buildScheduler(*schedName, *lambdaC)
	if err != nil {
		return err
	}

	fmt.Printf("simulating %d jobs across %v with %s (tolerance %.0f%%)...\n",
		len(jobs), env.Regions(), s.Name(), 100**tolerance)

	base, err := env.Run(waterwise.NewBaseline(), jobs, *tolerance)
	if err != nil {
		return err
	}
	res := base
	if s.Name() != "baseline" {
		if res, err = env.Run(s, jobs, *tolerance); err != nil {
			return err
		}
	}

	fmt.Printf("\ntotal carbon: %.1f kgCO2e   total water: %.0f L\n",
		res.TotalCarbon().Kg(), float64(res.TotalWater()))
	if s.Name() != "baseline" {
		sv, err := waterwise.CompareSavings(base, res)
		if err != nil {
			return err
		}
		fmt.Printf("vs baseline:  carbon %s   water %s\n", metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
	}
	fmt.Printf("mean service: %s of execution time   violations: %.2f%%\n",
		metrics.Times(res.MeanNormalizedService()), 100*res.ViolationRate())
	fmt.Printf("decision overhead: %.3f%% of mean execution time\n", metrics.MeanOverheadPct(res))

	dist := waterwise.Distribution(res, env.Regions())
	fmt.Printf("\njob distribution:\n")
	for _, id := range env.Regions() {
		fmt.Printf("  %-8s %5.1f%%\n", id, dist[id])
	}
	if n := len(res.Unscheduled); n > 0 {
		fmt.Printf("\nWARNING: %d jobs never scheduled\n", n)
	}
	return nil
}

func buildScheduler(name string, lambdaCarbon float64) (waterwise.Scheduler, error) {
	switch name {
	case "waterwise":
		return waterwise.NewScheduler(waterwise.SchedulerConfig{
			LambdaCarbon: lambdaCarbon, LambdaWater: 1 - lambdaCarbon,
		})
	case "baseline":
		return waterwise.NewBaseline(), nil
	case "round-robin":
		return waterwise.NewRoundRobin(), nil
	case "least-load":
		return waterwise.NewLeastLoad(), nil
	case "carbon-greedy-opt":
		return waterwise.NewCarbonGreedyOpt(), nil
	case "water-greedy-opt":
		return waterwise.NewWaterGreedyOpt(), nil
	case "ecovisor":
		return waterwise.NewEcovisor(), nil
	case "temporal-shift":
		return waterwise.NewTemporalShift(), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}
