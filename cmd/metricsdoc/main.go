// Command metricsdoc generates METRICS.md, the reference for every
// metric family the service exposes, straight from the expositions
// themselves: it boots a durable single server and a supervised
// two-shard fleet in-process — flight recorder and SLO engine armed so
// their self-metrics render — gathers both /metrics bodies through the
// same strict parser the lint tests use, and emits one sorted table of
// name, type, labels, exposing surface, and HELP text. Generating from
// a live exposition rather than a hand-kept list means the doc cannot
// silently drift: a new family shows up on the next run, and the CI
// -check mode fails when the committed file no longer matches.
//
// Usage:
//
//	metricsdoc -out METRICS.md    # (re)write the reference
//	metricsdoc -check METRICS.md  # exit 1 if the committed file drifted
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/fleet"
	"waterwise/internal/obs"
	"waterwise/internal/region"
	"waterwise/internal/server"
	"waterwise/internal/tsdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricsdoc:", err)
		os.Exit(1)
	}
}

// row is one documented family on one exposition surface.
type row struct {
	name, typ, help string
	labels          map[string]bool
	sources         map[string]bool
}

func run() error {
	out := flag.String("out", "", "write the generated reference to this file")
	check := flag.String("check", "", "compare the generated reference against this file; exit 1 on drift")
	flag.Parse()
	if (*out == "") == (*check == "") {
		return fmt.Errorf("exactly one of -out or -check is required")
	}

	doc, err := generate()
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, doc, 0o644)
	}
	committed, err := os.ReadFile(*check)
	if err != nil {
		return err
	}
	if !bytes.Equal(committed, doc) {
		return fmt.Errorf("%s has drifted from the live expositions; regenerate with: go run ./cmd/metricsdoc -out %s", *check, *check)
	}
	fmt.Printf("metricsdoc: %s is up to date\n", *check)
	return nil
}

// generate boots the two exposition surfaces and renders the table.
func generate() ([]byte, error) {
	rows := map[string]*row{}

	srvText, err := serverExposition()
	if err != nil {
		return nil, err
	}
	if err := ingest(rows, srvText, "server"); err != nil {
		return nil, fmt.Errorf("server exposition: %w", err)
	}
	flText, err := fleetExposition()
	if err != nil {
		return nil, err
	}
	if err := ingest(rows, flText, "fleet"); err != nil {
		return nil, fmt.Errorf("fleet exposition: %w", err)
	}

	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)

	var b bytes.Buffer
	b.WriteString("# Metrics reference\n\n")
	b.WriteString("Every metric family the service exposes on `/metrics`, generated from\n")
	b.WriteString("live expositions by `cmd/metricsdoc`. Do not edit by hand — regenerate\n")
	b.WriteString("with `go run ./cmd/metricsdoc -out METRICS.md`; CI fails when this file\n")
	b.WriteString("drifts from what a booted daemon actually serves.\n\n")
	b.WriteString("`server` families appear on a standalone `waterwised`; `fleet` families\n")
	b.WriteString("on a sharded gateway (`-shards > 1`), where per-shard families carry a\n")
	b.WriteString("`shard` label. Histograms expose `_bucket`/`_sum`/`_count` series with\n")
	b.WriteString("one shared bucket scheme, so cross-shard sums are exact merges.\n\n")
	b.WriteString("| Metric | Type | Labels | Exposed by | Help |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, name := range names {
		r := rows[name]
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n",
			r.name, r.typ, setList(r.labels, "—"), setList(r.sources, "—"),
			strings.ReplaceAll(r.help, "|", "\\|"))
	}
	fmt.Fprintf(&b, "\n%d families.\n", len(names))
	return b.Bytes(), nil
}

// ingest parses one exposition and folds its families into rows.
func ingest(rows map[string]*row, text []byte, source string) error {
	fams, err := obs.ParseProm(text)
	if err != nil {
		return err
	}
	for name, fam := range fams {
		r := rows[name]
		if r == nil {
			r = &row{name: name, typ: fam.Type, help: fam.Help,
				labels: map[string]bool{}, sources: map[string]bool{}}
			rows[name] = r
		}
		r.sources[source] = true
		for _, s := range fam.Samples {
			for k := range s.Labels {
				if k != "le" { // bucket edges are structure, not identity
					r.labels[k] = true
				}
			}
		}
	}
	return nil
}

func setList(set map[string]bool, empty string) string {
	if len(set) == 0 {
		return empty
	}
	items := make([]string, 0, len(set))
	for k := range set {
		items = append(items, k)
	}
	sort.Strings(items)
	return strings.Join(items, ", ")
}

// docObjectives arms the SLO engine so the recorder's alert gauge and
// tsdb accounting families render with their real HELP text.
var docObjectives = []tsdb.Objective{{
	Name: "availability", Target: 0.999,
	Bad: "waterwise_jobs_rejected_total", Good: "waterwise_jobs_accepted_total",
}}

// serverExposition boots a durable standalone server with every optional
// subsystem armed — WAL, solver stats, observability, feed health,
// flight recorder — and returns its exposition.
func serverExposition() ([]byte, error) {
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, time.Date(2023, 7, 3, 0, 0, 0, 0, time.UTC), 4, 1)
	if err != nil {
		return nil, err
	}
	sched, err := core.New(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "metricsdoc-server-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(server.Config{
		Env: env, Scheduler: sched, Tolerance: 0.5, Round: 15 * time.Minute,
		DataDir: dir,
		Record:  server.RecordConfig{Enable: true, SLOs: docObjectives},
	})
	if err != nil {
		return nil, err
	}
	return srv.MetricsText(), nil
}

// fleetExposition boots a durable, supervised two-shard fleet with the
// fleet-level flight recorder armed and returns the gateway exposition.
func fleetExposition() ([]byte, error) {
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, time.Date(2023, 7, 3, 0, 0, 0, 0, time.UTC), 4, 1)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "metricsdoc-fleet-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fl, err := fleet.New(fleet.Config{
		Env: env, Shards: 2, Tolerance: 0.5, Round: 15 * time.Minute,
		DataDir: dir,
		NewScheduler: func(int, []region.ID) (cluster.Scheduler, error) {
			return core.New(core.DefaultConfig())
		},
		Supervisor: &fleet.SupervisorConfig{Interval: time.Second, FailThreshold: 2},
		Record:     server.RecordConfig{Enable: true, SLOs: docObjectives},
	})
	if err != nil {
		return nil, err
	}
	defer fl.Stop()
	return fl.MetricsText(), nil
}
