package main

import (
	"bytes"
	"os"
	"testing"
)

// TestMetricsDocUpToDate regenerates the metrics reference from live
// expositions and compares it byte-for-byte against the committed
// METRICS.md — the drift gate behind the CI docs job. A new family, a
// reworded HELP string, or a label change all land here first.
func TestMetricsDocUpToDate(t *testing.T) {
	want, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatalf("reading committed METRICS.md: %v", err)
	}
	got, err := generate()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("METRICS.md has drifted from the live expositions; regenerate with: go run ./cmd/metricsdoc -out METRICS.md")
	}
}
