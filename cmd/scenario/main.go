// Command scenario runs declarative chaos scenarios against an
// in-process fleet: a spec names an arrival program, a timed fault
// schedule (feed outages, 429 storms, shard kills, queue squeezes, slow
// fsync), and the SLOs the run must hold. Results append into a
// machine-readable report file (BENCH_SCENARIOS.json) keyed by scenario
// name, so successive runs stay comparable.
//
// Usage:
//
//	scenario -list
//	scenario -run shard-kill [-out BENCH_SCENARIOS.json]
//	scenario -run all
//	scenario -spec my-scenario.json
//
//	-list   print the bundled scenario catalogue and exit
//	-run    bundled scenario name, or "all" for the whole catalogue
//	-spec   path to a spec JSON file (alternative to -run)
//	-out    report file to merge results into (default BENCH_SCENARIOS.json;
//	        "" skips writing)
//	-v      log fault schedule transitions as they fire
//
// The exit status is non-zero if any scenario fails its SLOs or the
// harness itself errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"waterwise/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scenario:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "print the bundled scenario catalogue and exit")
		name    = flag.String("run", "", `bundled scenario name, or "all"`)
		specLoc = flag.String("spec", "", "path to a spec JSON file")
		out     = flag.String("out", scenario.ReportPath, `report file to merge results into ("" skips writing)`)
		verbose = flag.Bool("v", false, "log fault transitions as they fire")
	)
	flag.Parse()

	if *list {
		specs, err := scenario.Bundled()
		if err != nil {
			return err
		}
		for _, s := range specs {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return nil
	}

	var specs []scenario.Spec
	switch {
	case *name != "" && *specLoc != "":
		return fmt.Errorf("-run and -spec are mutually exclusive")
	case *name == "all":
		all, err := scenario.Bundled()
		if err != nil {
			return err
		}
		specs = all
	case *name != "":
		s, err := scenario.Lookup(*name)
		if err != nil {
			return err
		}
		specs = []scenario.Spec{s}
	case *specLoc != "":
		b, err := os.ReadFile(*specLoc)
		if err != nil {
			return err
		}
		s, err := scenario.Parse(b)
		if err != nil {
			return fmt.Errorf("%s: %w", *specLoc, err)
		}
		specs = []scenario.Spec{s}
	default:
		return fmt.Errorf("nothing to do: pass -list, -run NAME, or -spec FILE")
	}

	opt := scenario.RunOptions{}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}

	failed := 0
	for _, s := range specs {
		rep, err := scenario.Run(s, opt)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		verdict := "PASS"
		if !rep.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %-16s %d jobs, %d merged decisions, %d restarts, %.0fms wall\n",
			verdict, rep.Scenario, rep.Jobs, rep.Merged, rep.Restarts, rep.WallMs)
		for _, c := range rep.Checks {
			mark := "ok"
			if !c.Ok {
				mark = "FAIL"
			}
			fmt.Printf("  %-4s %-24s value %g bound %g", mark, c.Name, c.Value, c.Bound)
			if c.Detail != "" {
				fmt.Printf("  (%s)", c.Detail)
			}
			fmt.Println()
		}
		if *out != "" {
			if err := scenario.WriteReports(*out, *rep); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed their SLOs", failed, len(specs))
	}
	return nil
}
