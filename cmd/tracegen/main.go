// Command tracegen synthesizes Borg-like or Alibaba-like job traces and
// writes them as CSV, for replay with `waterwise -trace` or external
// analysis.
//
// Usage:
//
//	tracegen -out trace.csv [-kind borg|alibaba] [-days 1]
//	         [-jobs-per-day 5000] [-duration-scale 1.0] [-seed 7]
//	         [-regions zurich,oregon]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"waterwise/internal/region"
	"waterwise/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out        = flag.String("out", "", "output CSV path (- for stdout)")
		kind       = flag.String("kind", "borg", "trace style: borg or alibaba")
		days       = flag.Int("days", 1, "trace length in days")
		jobsPerDay = flag.Float64("jobs-per-day", 5000, "mean arrival rate")
		durScale   = flag.Float64("duration-scale", 1, "job runtime scaling factor")
		seed       = flag.Int64("seed", 7, "RNG seed")
		regionsCSV = flag.String("regions", "", "comma-separated home regions (default: all five)")
	)
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required (use - for stdout)")
	}

	ids := []region.ID{region.Zurich, region.Madrid, region.Oregon, region.Milan, region.Mumbai}
	if *regionsCSV != "" {
		ids = nil
		for _, r := range strings.Split(*regionsCSV, ",") {
			ids = append(ids, region.ID(strings.TrimSpace(r)))
		}
		if _, err := region.DefaultsSubset(ids...); err != nil {
			return err
		}
	}

	cfg := trace.Config{
		Start:         time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC),
		Duration:      time.Duration(*days) * 24 * time.Hour,
		JobsPerDay:    *jobsPerDay,
		Regions:       ids,
		DurationScale: *durScale,
		Seed:          *seed,
	}
	var jobs []*trace.Job
	var err error
	switch *kind {
	case "borg":
		jobs, err = trace.GenerateBorgLike(cfg)
	case "alibaba":
		jobs, err = trace.GenerateAlibabaLike(cfg)
	default:
		return fmt.Errorf("unknown trace kind %q (want borg or alibaba)", *kind)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, jobs); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d jobs (%s style, %d days)\n", len(jobs), *kind, *days)
	return nil
}
