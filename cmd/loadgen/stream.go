package main

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"waterwise"
	"waterwise/internal/server"
	"waterwise/internal/wire"
)

// errStreamBroken marks a stream target whose connection died; later
// batches to it are dropped as errors without blocking the schedule.
var errStreamBroken = errors.New("stream connection broken")

// pendingBatch is one in-flight Submit frame awaiting its reply. The
// protocol answers frames in order on one connection, so a FIFO pairs
// replies with their batches.
type pendingBatch struct {
	ids  []int
	sent time.Time
}

// streamTarget is one persistent wire-protocol connection to a target:
// the sender writes Submit frames; a reader goroutine demuxes
// SubmitReply frames (accept/reject accounting, submission instants
// into the matcher) and pushed Decisions frames (matcher + Ack).
type streamTarget struct {
	ti      int
	nc      net.Conn
	conn    *wire.Conn
	m       *matcher
	account func(accepted, rejected, errors int)

	pending  chan pendingBatch
	inflight atomic.Int64 // batches written but not yet replied
	broken   atomic.Bool
	done     chan struct{}

	// Acks are written by their own goroutine, never by the reader: the
	// sender can legitimately block mid-Submit when both TCP directions
	// are full, and it holds the connection's write lock while it waits.
	// A reader that wrote acks inline would block behind it and stop
	// draining pushes — completing a write-write deadlock with a server
	// whose pusher is itself waiting on this client to read. The reader
	// therefore only records the cursor; the acker contends for the
	// write lock on its own time.
	ackSeq  atomic.Uint64
	ackKick chan struct{}

	// sender-side scratch, reused across batches (single sender).
	jobs []wire.Job
	buf  []byte
}

// dialStreamTarget connects, runs the Hello/Welcome handshake
// subscribing to decisions after resume, and starts the reader.
func dialStreamTarget(addr string, ti int, resume uint64, m *matcher, account func(acc, rej, errs int)) (*streamTarget, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn := wire.NewConn(nc)
	hello := wire.Hello{Resume: resume, Flags: wire.HelloSubscribe}
	if err := conn.WriteFrame(wire.TypeHello, wire.AppendHello(nil, hello)); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := conn.ReadFrame()
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch typ {
	case wire.TypeWelcome:
		if _, err := conn.Codec().DecodeWelcome(payload); err != nil {
			nc.Close()
			return nil, err
		}
	case wire.TypeError:
		code, msg, _ := conn.Codec().DecodeError(payload)
		nc.Close()
		return nil, fmt.Errorf("handshake rejected: code %d: %s", code, msg)
	default:
		nc.Close()
		return nil, fmt.Errorf("handshake: unexpected frame type %d", typ)
	}
	st := &streamTarget{
		ti: ti, nc: nc, conn: conn, m: m, account: account,
		pending: make(chan pendingBatch, 4096),
		done:    make(chan struct{}),
		ackKick: make(chan struct{}, 1),
	}
	go st.read()
	go st.ack()
	return st, nil
}

// send encodes one batch as a Submit frame and enqueues its reply
// expectation. The submission instant is captured before the write —
// the open-loop analogue of HTTP's pre-request stamp — and recorded in
// the matcher when the reply names the accepted ids.
func (st *streamTarget) send(specs []waterwise.JobSpec) error {
	if st.broken.Load() {
		return errStreamBroken
	}
	ids := make([]int, len(specs))
	st.jobs = st.jobs[:0]
	for i, s := range specs {
		ids[i] = *s.ID // loadgen always assigns ids client-side
		st.jobs = append(st.jobs, server.WireJob(s))
	}
	payload, err := wire.AppendSubmit(st.buf[:0], st.jobs)
	if err != nil {
		return err
	}
	st.buf = payload
	// Enqueue before writing so the reader can never see a reply whose
	// batch is not yet queued; the single sender keeps the FIFO order.
	st.inflight.Add(1)
	st.pending <- pendingBatch{ids: ids, sent: time.Now()}
	if err := st.conn.WriteFrame(wire.TypeSubmit, payload); err != nil {
		st.broken.Store(true)
		st.nc.Close()
		// The enqueued batch surfaces as errors when close drains it.
		return nil
	}
	return nil
}

// read demuxes the connection until it closes or fails.
func (st *streamTarget) read() {
	defer close(st.done)
	defer st.broken.Store(true)
	var (
		results []wire.SubmitResult
		ds      []wire.Decision
	)
	for {
		typ, payload, err := st.conn.ReadFrame()
		if err != nil {
			return
		}
		switch typ {
		case wire.TypeSubmitReply:
			results, err = st.conn.Codec().DecodeSubmitReply(payload, results[:0])
			if err != nil {
				return
			}
			pb := <-st.pending
			var acc, rej, errs int
			for _, r := range results {
				switch r.Code {
				case wire.SubmitOK:
					acc++
					st.m.Sent(st.ti, int(r.ID), pb.sent)
				case wire.SubmitQueueFull:
					rej++ // backpressure, the 429 analogue
				default:
					errs++
				}
			}
			st.inflight.Add(-1)
			st.account(acc, rej, errs)
		case wire.TypeDecisions:
			var next uint64
			ds, next, err = st.conn.Codec().DecodeDecisions(payload, ds[:0])
			if err != nil {
				return
			}
			for i := range ds {
				st.m.Decided(st.ti, int(ds[i].JobID), server.NanoTime(ds[i].DecidedWallNano))
			}
			st.ackSeq.Store(next)
			select {
			case st.ackKick <- struct{}{}:
			default: // the acker is already due to run; it reads the latest cursor
			}
		default: // TypeError or anything unexpected: the server is done with us
			return
		}
	}
}

// ack forwards the newest decision cursor back to the server whenever
// the reader kicks it, collapsing any backlog of kicks into one Ack
// carrying the latest cursor.
func (st *streamTarget) ack() {
	var sent uint64
	var buf []byte
	for {
		select {
		case <-st.ackKick:
		case <-st.done:
			return
		}
		next := st.ackSeq.Load()
		if next == sent {
			continue
		}
		buf = wire.AppendAck(buf[:0], next)
		if st.conn.WriteFrame(wire.TypeAck, buf) != nil {
			return
		}
		sent = next
	}
}

// waitReplies blocks until every written batch has been replied to,
// the connection breaks, or the deadline passes.
func (st *streamTarget) waitReplies(deadline time.Time) {
	for time.Now().Before(deadline) {
		if st.inflight.Load() == 0 || st.broken.Load() {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// close tears the connection down and returns how many submitted jobs
// never got a reply (counted as errors by the caller).
func (st *streamTarget) close() (unreplied int) {
	st.nc.Close()
	<-st.done
	for {
		select {
		case pb := <-st.pending:
			unreplied += len(pb.ids)
		default:
			return unreplied
		}
	}
}
