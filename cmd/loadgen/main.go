// Command loadgen drives a running waterwised with an open-loop arrival
// stream and reports achieved throughput and decision latency.
//
// It synthesizes arrivals with the same generators the offline traces use
// (Borg-like diurnal Poisson or Alibaba-like Markov-modulated bursts),
// compresses the arrival offsets into the requested wall-clock window, and
// POSTs jobs to /v1/jobs at their scheduled instants regardless of how the
// service keeps up — open loop, so backpressure (429) shows up as rejected
// jobs rather than a slowed generator. A concurrent poller per target
// tails /v1/decisions and matches decisions to submissions for latency
// percentiles.
//
// With -protocol stream the same open-loop schedule drives the binary
// wire protocol (internal/wire) instead: one persistent connection per
// target carries batched Submit frames and server-pushed Decisions
// frames, reaching rates HTTP request-per-batch cannot. Latency
// matching is shared — pushed and polled decisions feed one matcher and
// one percentile path — and stream backpressure (per-job queue-full
// reply codes) is counted as rejected, exactly like HTTP 429.
//
// One generator can drive a whole sharded deployment: -targets names
// several endpoints (a fleet gateway counts as one; standalone waterwised
// -partition shards count as one each), each is asked which regions it
// serves via /v1/status, and every job is routed to the target owning its
// home region. Latency percentiles and throughput are merged across
// targets in the report.
//
// Usage:
//
//	loadgen [flags]
//
//	-url       service base URL              (default http://127.0.0.1:8080)
//	-targets   comma-separated base URLs; jobs route to the target
//	           serving their home region    (default: just -url)
//	-protocol  transport for submits and decisions: http
//	           (POST /v1/jobs + poll /v1/decisions) or stream
//	           (persistent binary connection, internal/wire)
//	                                         (default http)
//	-stream-targets  comma-separated host:port stream addresses,
//	           parallel to -targets (the HTTP endpoints still serve
//	           status and metrics); required with -protocol stream
//	-rate      offered arrival rate, jobs/s  (default 100)
//	-duration  wall-clock load window        (default 10s)
//	-trace     borg|alibaba                  (default borg)
//	-batch     max jobs per POST             (default 64)
//	-poll      decision poll interval        (default 50ms)
//	-drain     extra wait for in-flight decisions after the window (default 30s)
//	-retries   extra POST attempts per batch on connection
//	           errors or 5xx; ids are client-assigned, so a
//	           replayed submit dedupes server-side instead of
//	           double-scheduling              (default 2)
//	-seed      generator seed                (default 7)
//	-gen-window  simulated-time span the arrivals are drawn from;
//	           sets how many scheduling rounds the jobs spread over
//	           in accelerated mode           (default 1h)
//	-trace-submits  send the trace's simulated submit times (replay
//	           mode) instead of letting the server stamp arrivals
//	           "now"; required for offered rates past the
//	           arrival-stamped solver ceiling (default false)
//	-id-base   base for client-assigned job ids; 0 derives one
//	           from the wall clock so successive runs against a
//	           long-lived daemon never collide. Set it explicitly
//	           (with -seed) for a bit-reproducible run against a
//	           fresh daemon.                 (default 0)
//	-timeseries  CSV file of periodic client-side latency
//	           percentile samples over the run; each row covers
//	           one sample interval             (default: off)
//	-sample    timeseries sample interval     (default 1s)
//	-json      machine-readable report
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"waterwise"
	"waterwise/internal/milp"
	"waterwise/internal/obs"
	"waterwise/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the machine-readable summary (-json).
type report struct {
	URL          string   `json:"url"`
	Targets      []string `json:"targets,omitempty"`
	Protocol     string   `json:"protocol"`
	TraceStyle   string   `json:"trace_style"`
	NominalRate  float64  `json:"nominal_rate_jobs_per_sec"`
	OfferedRate  float64  `json:"offered_rate_jobs_per_sec"`
	WindowSec    float64  `json:"window_sec"`
	Offered      int      `json:"offered"`
	Accepted     int      `json:"accepted"`
	Rejected     int      `json:"rejected"`
	Errors       int      `json:"errors"`
	Retried      int      `json:"retried,omitempty"`
	Decided      int      `json:"decided"`
	DecisionsSec float64  `json:"decisions_per_sec"`
	RoundsSec    float64  `json:"rounds_per_sec"`
	LatencyP50Ms float64  `json:"latency_p50_ms"`
	LatencyP90Ms float64  `json:"latency_p90_ms"`
	LatencyP99Ms float64  `json:"latency_p99_ms"`
	LatencyMaxMs float64  `json:"latency_max_ms"`
	SolverIters  int      `json:"solver_simplex_iters"`
	SolverWarmPc float64  `json:"solver_warm_start_pct"`
	// Server-side decision latency, scraped from the targets' /metrics
	// histograms (waterwise_decision_latency_seconds) at end of run and
	// merged across targets. The server measures Submit acceptance to
	// round commit; the client measures send instant to observed
	// decision — their gap is queueing the server never sees.
	ServerLatencyP50Ms float64 `json:"server_latency_p50_ms,omitempty"`
	ServerLatencyP99Ms float64 `json:"server_latency_p99_ms,omitempty"`
	ServerLatencyCount uint64  `json:"server_latency_count,omitempty"`
	// CoordOmissionGapMs is client p99 minus server p99: the tail latency
	// the client experienced that the server-side histogram cannot see
	// (send-side queueing — the coordinated-omission blind spot of
	// server-only measurement). CoordOmissionFlagged marks a gap above
	// -co-gap-ms.
	CoordOmissionGapMs   float64 `json:"coordinated_omission_gap_ms,omitempty"`
	CoordOmissionFlagged bool    `json:"coordinated_omission_flagged,omitempty"`
}

func run() error {
	var (
		baseURL    = flag.String("url", "http://127.0.0.1:8080", "service base URL")
		targetsCSV = flag.String("targets", "", "comma-separated service base URLs (default: -url)")
		protocol   = flag.String("protocol", "http", "transport for submits and decisions: http or stream")
		streamCSV  = flag.String("stream-targets", "", "comma-separated host:port stream addresses, parallel to -targets (required with -protocol stream)")
		rate       = flag.Float64("rate", 100, "offered arrival rate (jobs/sec)")
		duration   = flag.Duration("duration", 10*time.Second, "wall-clock load window")
		style      = flag.String("trace", "borg", "arrival process: borg|alibaba")
		batch      = flag.Int("batch", 64, "max jobs per POST")
		poll       = flag.Duration("poll", 50*time.Millisecond, "decision poll interval")
		drain      = flag.Duration("drain", 30*time.Second, "extra wait for in-flight decisions")
		retries    = flag.Int("retries", 2, "extra POST attempts per batch on connection errors or 5xx")
		seed       = flag.Int64("seed", 7, "generator seed")
		genWindow  = flag.Duration("gen-window", time.Hour, "simulated-time span the arrivals are drawn from (sets how many scheduling rounds the jobs spread over)")
		traceSub   = flag.Bool("trace-submits", false, "send the trace's simulated submit times with each job (replay mode) instead of letting the server stamp arrivals \"now\"; spreads high offered rates across many small rounds")
		idBaseFlag = flag.Int("id-base", 0, "base for client-assigned job ids (0: derive from the wall clock)")
		tsFile     = flag.String("timeseries", "", "CSV file of periodic client-side latency percentile samples (empty: off)")
		sampleIv   = flag.Duration("sample", time.Second, "timeseries sample interval")
		jsonOut    = flag.Bool("json", false, "emit a JSON report")
		coGapMs    = flag.Float64("co-gap-ms", 250, "flag a coordinated-omission gap (client p99 - server p99) above this many ms")
	)
	flag.Parse()

	targets := []string{*baseURL}
	if *targetsCSV != "" {
		targets = targets[:0]
		for _, u := range strings.Split(*targetsCSV, ",") {
			if u = strings.TrimSpace(u); u != "" {
				targets = append(targets, u)
			}
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no targets")
	}
	var streamAddrs []string
	switch *protocol {
	case "http":
	case "stream":
		for _, a := range strings.Split(*streamCSV, ",") {
			if a = strings.TrimSpace(a); a != "" {
				streamAddrs = append(streamAddrs, a)
			}
		}
		if len(streamAddrs) != len(targets) {
			return fmt.Errorf("-protocol stream needs -stream-targets with one host:port per target (%d targets, %d stream addresses)",
				len(targets), len(streamAddrs))
		}
	default:
		return fmt.Errorf("unknown -protocol %q (want http or stream)", *protocol)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	// Ask each target which regions it serves (a gateway reports its whole
	// fleet; a standalone shard its partition) and route by home region —
	// first owner wins when targets overlap.
	owner := map[waterwise.RegionID]int{}
	startRounds := make([]uint64, len(targets))
	startSeqs := make([]uint64, len(targets))
	for ti, url := range targets {
		status, err := getStatus(client, url)
		if err != nil {
			return fmt.Errorf("reaching %s: %w", url, err)
		}
		if len(status.Free) == 0 {
			return fmt.Errorf("%s reports no regions", url)
		}
		for id := range status.Free {
			if _, taken := owner[id]; !taken {
				owner[id] = ti
			}
		}
		startRounds[ti] = status.Rounds
		startSeqs[ti] = status.LastSeq
	}
	regions := make([]waterwise.RegionID, 0, len(owner))
	for id := range owner {
		regions = append(regions, id)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })

	// Generate arrivals over the generator window (simulated time) and
	// compress the offsets into the wall window, preserving the process's
	// burst structure. JobsPerDay is chosen so the window holds
	// rate*duration expected arrivals. The window also sets how many
	// scheduling rounds the jobs spread over in accelerated mode: high
	// offered rates want a wider window (say 24h), or every job lands in
	// a handful of simulated rounds and per-round solves balloon.
	wantJobs := *rate * duration.Seconds()
	cfg := trace.Config{
		Start:      time.Date(2023, 7, 3, 8, 12, 0, 0, time.UTC), // a weekday morning where diurnal x weekly modulation ≈ 1
		Duration:   *genWindow,
		JobsPerDay: wantJobs * (24 * time.Hour).Seconds() / genWindow.Seconds(),
		Regions:    regions,
		Seed:       *seed,
	}
	var jobs []*trace.Job
	var err error
	switch *style {
	case "borg":
		jobs, err = trace.GenerateBorgLike(cfg)
	case "alibaba":
		jobs, err = trace.GenerateAlibabaLike(cfg)
	default:
		return fmt.Errorf("unknown trace style %q", *style)
	}
	if err != nil {
		return err
	}
	compress := float64(*duration) / float64(*genWindow)
	// Client-assigned ids: the trace's ids offset by a base, so
	// consecutive loadgen runs against one long-lived daemon never
	// re-present an id from an earlier run. Within a run the ids are what
	// make retries idempotent (the service dedupes a replayed submit).
	// The default wall-derived base is what makes back-to-back runs safe;
	// -id-base pins it so a run is bit-reproducible (same -seed, same
	// -id-base, fresh daemon => identical submitted ids).
	idBase := *idBaseFlag
	if idBase == 0 {
		idBase = int(time.Now().UnixMicro())
	}

	// Latency matching is keyed by (target, job id) and shared by both
	// transports: HTTP pollers and stream readers feed the same matcher,
	// so pushed and polled decisions go through one percentile path.
	m := newMatcher(len(targets))
	var (
		mu  sync.Mutex
		rep = report{URL: targets[0], Protocol: *protocol, TraceStyle: *style, NominalRate: *rate, Offered: len(jobs)}
	)
	if len(targets) > 1 {
		rep.Targets = targets
	}

	// Decision intake, one source per target. HTTP: a poller tails
	// /v1/decisions. Stream: a persistent connection is dialed now, and
	// its reader goroutine receives server pushes for the whole run.
	// Either way the cursor starts past the service's pre-existing
	// decisions: earlier loadgen runs against the same daemon must not
	// be matched (or counted) as this run's work.
	stopPoll := make(chan struct{})
	var pollWG sync.WaitGroup
	streams := make([]*streamTarget, len(targets))
	if *protocol == "stream" {
		account := func(acc, rej, errs int) {
			mu.Lock()
			rep.Accepted += acc
			rep.Rejected += rej
			rep.Errors += errs
			mu.Unlock()
		}
		for ti, addr := range streamAddrs {
			st, err := dialStreamTarget(addr, ti, startSeqs[ti], m, account)
			if err != nil {
				return fmt.Errorf("stream dial %s: %w", addr, err)
			}
			defer st.nc.Close()
			streams[ti] = st
		}
	} else {
		for ti, url := range targets {
			pollWG.Add(1)
			go func(ti int, url string) {
				defer pollWG.Done()
				cursor := startSeqs[ti]
				for {
					ds, next, err := getDecisions(client, url, cursor)
					if err == nil {
						cursor = next
						for _, d := range ds {
							m.Decided(ti, d.JobID, d.DecidedWall)
						}
					}
					select {
					case <-stopPoll:
						return
					case <-time.After(*poll):
					}
				}
			}(ti, url)
		}
	}

	// Timeseries sampler: every -sample interval, emit one CSV row of
	// client-side percentiles over the decisions observed in that interval
	// — the run's latency trajectory rather than one end-of-run summary,
	// so a mid-run stall (a fault window, a restarting shard) is visible
	// as a bump instead of being averaged away.
	var tsWG sync.WaitGroup
	if *tsFile != "" {
		f, err := os.Create(*tsFile)
		if err != nil {
			return fmt.Errorf("timeseries file: %w", err)
		}
		fmt.Fprintln(f, "elapsed_sec,decided_total,interval_decisions,p50_ms,p90_ms,p99_ms")
		tsWG.Add(1)
		go func() {
			defer tsWG.Done()
			defer f.Close()
			start := time.Now()
			lastN := 0
			sample := func() {
				window, n, decided := m.Window(lastN)
				lastN = n
				elapsed := time.Since(start).Seconds()
				if len(window) == 0 {
					fmt.Fprintf(f, "%.3f,%d,0,,,\n", elapsed, decided)
					return
				}
				sort.Float64s(window)
				fmt.Fprintf(f, "%.3f,%d,%d,%.3f,%.3f,%.3f\n",
					elapsed, decided, len(window),
					percentile(window, 0.50), percentile(window, 0.90), percentile(window, 0.99))
			}
			for {
				select {
				case <-stopPoll:
					sample() // final partial interval, so the tail is never lost
					return
				case <-time.After(*sampleIv):
					sample()
				}
			}
		}()
	}

	// One sender goroutine per target, fed through a buffered queue: the
	// open-loop schedule keeps walking even when one target is slow or
	// hung — its batches pile into its own queue (dropped as errors once
	// full) without stalling submissions to the others.
	sendCh := make([]chan []waterwise.JobSpec, len(targets))
	var sendWG sync.WaitGroup
	for ti := range targets {
		sendCh[ti] = make(chan []waterwise.JobSpec, 1024)
		sendWG.Add(1)
		if *protocol == "stream" {
			// Stream sender: one Submit frame per batch; the reader
			// goroutine does the accept/reject accounting when the reply
			// comes back, so a send only fails here when the connection
			// is already known broken or the batch cannot encode.
			go func(ti int) {
				defer sendWG.Done()
				for specs := range sendCh[ti] {
					if err := streams[ti].send(specs); err != nil {
						mu.Lock()
						rep.Errors += len(specs)
						mu.Unlock()
					}
				}
			}(ti)
			continue
		}
		go func(ti int) {
			defer sendWG.Done()
			for specs := range sendCh[ti] {
				sent := time.Now() // open-loop submission instant, pre-request
				ids, code, err := postJobs(client, targets[ti], specs)
				// Re-POST on connection errors and 5xx (a restarting
				// service): the specs carry client-assigned ids, so a
				// batch that did reach the server before the failure
				// dedupes to its original jobs — the retry is idempotent,
				// never a double-schedule.
				for attempt := 0; attempt < *retries && (err != nil || code >= 500); attempt++ {
					mu.Lock()
					rep.Retried += len(specs)
					mu.Unlock()
					time.Sleep(time.Duration(attempt+1) * 100 * time.Millisecond)
					ids, code, err = postJobs(client, targets[ti], specs)
				}
				mu.Lock()
				switch {
				case err != nil:
					rep.Errors += len(specs)
				case code == http.StatusTooManyRequests:
					rep.Accepted += len(ids)
					rep.Rejected += len(specs) - len(ids)
				case code != http.StatusAccepted:
					rep.Accepted += len(ids)
					rep.Errors += len(specs) - len(ids)
				default:
					rep.Accepted += len(ids)
				}
				mu.Unlock()
				m.SentBatch(ti, ids, sent)
			}
		}(ti)
	}

	// Open-loop sender: walk the compressed schedule, batching jobs that
	// are due together and routing each batch slice to the target owning
	// its home region.
	t0 := time.Now()
	routed := make([][]waterwise.JobSpec, len(targets))
	for i := 0; i < len(jobs); {
		due := t0.Add(time.Duration(float64(jobs[i].Submit.Sub(cfg.Start)) * compress))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		// Everything due by now, capped at the batch size.
		j := i
		now := time.Now()
		for j < len(jobs) && j-i < *batch {
			dj := t0.Add(time.Duration(float64(jobs[j].Submit.Sub(cfg.Start)) * compress))
			if dj.After(now) {
				break
			}
			j++
		}
		if j == i {
			j = i + 1
		}
		for ti := range routed {
			routed[ti] = routed[ti][:0]
		}
		for _, job := range jobs[i:j] {
			ti := owner[job.Home] // trace regions come from the targets, so every home has an owner
			// Ids come from the trace (globally unique), not the service:
			// a retried batch must present the same ids to dedupe.
			id := idBase + job.ID
			spec := waterwise.JobSpec{
				ID: &id, Benchmark: job.Benchmark, Home: job.Home,
				DurationSec:    job.Duration.Seconds(),
				EnergyKWh:      float64(job.Energy),
				EstDurationSec: job.EstDuration.Seconds(),
				EstEnergyKWh:   float64(job.EstEnergy),
			}
			if *traceSub {
				// Replay mode: the job arrives at its trace instant in
				// simulated time, so an offered burst spreads over
				// gen-window's worth of small rounds instead of being
				// stamped into a handful of giant ones. Without this,
				// arrival-stamped rounds grow with the backlog and the
				// solver — not the transport — becomes the ceiling.
				spec.Submit = job.Submit
			}
			routed[ti] = append(routed[ti], spec)
		}
		for ti := range routed {
			if len(routed[ti]) == 0 {
				continue
			}
			specs := append([]waterwise.JobSpec(nil), routed[ti]...)
			select {
			case sendCh[ti] <- specs:
			default:
				// The target's queue is full (it is hung or far behind the
				// offered rate): drop the batch as errors rather than block
				// the schedule.
				mu.Lock()
				rep.Errors += len(specs)
				mu.Unlock()
			}
		}
		i = j
	}
	for _, ch := range sendCh {
		close(ch)
	}
	sendWG.Wait()
	sendWindow := time.Since(t0)

	// Let in-flight decisions land: wait until everything accepted has
	// decided or the drain budget runs out. In stream mode the replies
	// must settle first, so Accepted is final before it gates the drain.
	drainDeadline := time.Now().Add(*drain)
	for _, st := range streams {
		if st != nil {
			st.waitReplies(drainDeadline)
		}
	}
	for time.Now().Before(drainDeadline) {
		mu.Lock()
		accepted := rep.Accepted
		mu.Unlock()
		if m.DecidedCount() >= accepted {
			break
		}
		time.Sleep(*poll)
	}
	close(stopPoll)
	pollWG.Wait()
	tsWG.Wait()
	for _, st := range streams {
		if st == nil {
			continue
		}
		if n := st.close(); n > 0 {
			rep.Errors += n // submitted but never replied to
		}
	}

	// Final per-target stats: rounds and solver counters sum across the
	// deployment (a gateway's per-shard solver stats included).
	var endRounds uint64
	var solver milp.Stats
	for ti, url := range targets {
		status, err := getStatus(client, url)
		if err != nil {
			return err
		}
		endRounds += status.Rounds - startRounds[ti]
		if status.Solver != nil {
			solver.Add(*status.Solver)
		}
		for _, ss := range status.ShardStatus {
			if ss.Solver != nil {
				solver.Add(*ss.Solver)
			}
		}
	}
	// The throughput window runs from the first submission to the last
	// observed decision (falling back to now if nothing decided).
	lats, decided, lastDecided := m.Results()
	rep.Decided = decided
	window := time.Since(t0)
	if !lastDecided.IsZero() && lastDecided.After(t0) {
		window = lastDecided.Sub(t0)
	}
	rep.WindowSec = sendWindow.Seconds()
	rep.OfferedRate = float64(rep.Offered) / sendWindow.Seconds()
	rep.DecisionsSec = float64(rep.Decided) / window.Seconds()
	rep.RoundsSec = float64(endRounds) / window.Seconds()
	rep.SolverIters = solver.SimplexIters
	rep.SolverWarmPc = 100 * solver.WarmStartHitRate()
	sort.Float64s(lats)
	rep.LatencyP50Ms = percentile(lats, 0.50)
	rep.LatencyP90Ms = percentile(lats, 0.90)
	rep.LatencyP99Ms = percentile(lats, 0.99)
	if len(lats) > 0 {
		rep.LatencyMaxMs = lats[len(lats)-1]
	}

	// Server-side view: scrape each target's /metrics histogram and merge
	// (bucket edges are shared across servers, so the merge is exact).
	// Best-effort — an obs-disabled target just leaves these fields zero.
	if les, cums, ok := scrapeDecisionLatency(client, targets); ok {
		rep.ServerLatencyP50Ms = 1e3 * obs.QuantileFromBuckets(les, cums, 0.50)
		rep.ServerLatencyP99Ms = 1e3 * obs.QuantileFromBuckets(les, cums, 0.99)
		rep.ServerLatencyCount = cums[len(cums)-1]
		rep.CoordOmissionGapMs = rep.LatencyP99Ms - rep.ServerLatencyP99Ms
		rep.CoordOmissionFlagged = rep.CoordOmissionGapMs > *coGapMs
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("loadgen: %s trace over %s, offered %d jobs in %.1fs (%.1f/s nominal %.0f/s)\n",
		rep.TraceStyle, rep.Protocol, rep.Offered, rep.WindowSec, rep.OfferedRate, rep.NominalRate)
	fmt.Printf("  accepted %d, rejected %d (backpressure), errors %d, retried %d\n",
		rep.Accepted, rep.Rejected, rep.Errors, rep.Retried)
	fmt.Printf("  decided %d (%.1f decisions/s, %.1f rounds/s)\n", rep.Decided, rep.DecisionsSec, rep.RoundsSec)
	fmt.Printf("  decision latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms, rep.LatencyMaxMs)
	if rep.ServerLatencyCount > 0 {
		fmt.Printf("  server-side (scraped) ms: p50 %.1f  p99 %.1f over %d decisions\n",
			rep.ServerLatencyP50Ms, rep.ServerLatencyP99Ms, rep.ServerLatencyCount)
		co := ""
		if rep.CoordOmissionFlagged {
			co = fmt.Sprintf("  — ABOVE the %.0fms threshold: the client queue hid latency the server never saw", *coGapMs)
		}
		fmt.Printf("  coordinated-omission gap (client p99 - server p99): %.1fms%s\n", rep.CoordOmissionGapMs, co)
	}
	if rep.SolverIters > 0 {
		fmt.Printf("  solver: %d simplex iters, %.0f%% warm-served\n", rep.SolverIters, rep.SolverWarmPc)
	}
	return nil
}

// scrapeDecisionLatency fetches each target's /metrics, parses the
// decision-latency histogram — the fleet-merged family from a gateway,
// the plain family from a single server — and merges the cumulative
// buckets across targets into one (les, cums) pair. All waterwise
// histograms share one bucket scheme, so the per-target deltas sum
// exactly; elided empty buckets just contribute nothing.
func scrapeDecisionLatency(c *http.Client, targets []string) (les []float64, cums []uint64, ok bool) {
	deltas := map[float64]uint64{}
	for _, base := range targets {
		fams, err := getMetrics(c, base)
		if err != nil {
			continue
		}
		fam := fams["waterwise_fleet_decision_latency_seconds"]
		var want map[string]string
		if fam == nil {
			fam = fams["waterwise_decision_latency_seconds"]
			want = map[string]string{}
		}
		if fam == nil {
			continue
		}
		tles, tcums := obs.HistogramBuckets(fam, want)
		var prev uint64
		for i, le := range tles {
			deltas[le] += tcums[i] - prev
			prev = tcums[i]
		}
		ok = true
	}
	if !ok || len(deltas) == 0 {
		return nil, nil, false
	}
	for le := range deltas {
		les = append(les, le)
	}
	sort.Float64s(les)
	var cum uint64
	for _, le := range les {
		cum += deltas[le]
		cums = append(cums, cum)
	}
	return les, cums, true
}

// getMetrics fetches and strictly parses a target's /metrics exposition.
func getMetrics(c *http.Client, base string) (map[string]*obs.PromFamily, error) {
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
	}
	return obs.ParseProm(data)
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// svcStatus is the slice of /v1/status loadgen reads: it decodes both a
// single server's status and a fleet gateway's aggregate (whose solver
// stats live per shard under shard_status).
type svcStatus struct {
	Free        map[waterwise.RegionID]int `json:"free"`
	Rounds      uint64                     `json:"rounds"`
	LastSeq     uint64                     `json:"last_seq"`
	Solver      *milp.Stats                `json:"solver"`
	ShardStatus []struct {
		Solver *milp.Stats `json:"solver"`
	} `json:"shard_status"`
}

func getStatus(c *http.Client, base string) (*svcStatus, error) {
	resp, err := c.Get(base + "/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st svcStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func getDecisions(c *http.Client, base string, since uint64) ([]waterwise.ServerDecision, uint64, error) {
	resp, err := c.Get(fmt.Sprintf("%s/v1/decisions?since=%d", base, since))
	if err != nil {
		return nil, since, err
	}
	defer resp.Body.Close()
	var body struct {
		Decisions []waterwise.ServerDecision `json:"decisions"`
		Next      uint64                     `json:"next"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, since, err
	}
	return body.Decisions, body.Next, nil
}

func postJobs(c *http.Client, base string, specs []waterwise.JobSpec) ([]int, int, error) {
	payload, err := json.Marshal(specs)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Accepted []int  `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, resp.StatusCode, err
	}
	return body.Accepted, resp.StatusCode, nil
}
