// Command loadgen drives a running waterwised with an open-loop arrival
// stream and reports achieved throughput and decision latency.
//
// It synthesizes arrivals with the same generators the offline traces use
// (Borg-like diurnal Poisson or Alibaba-like Markov-modulated bursts),
// compresses the arrival offsets into the requested wall-clock window, and
// POSTs jobs to /v1/jobs at their scheduled instants regardless of how the
// service keeps up — open loop, so backpressure (429) shows up as rejected
// jobs rather than a slowed generator. A concurrent poller tails
// /v1/decisions and matches decisions to submissions for latency
// percentiles.
//
// Usage:
//
//	loadgen [flags]
//
//	-url       service base URL              (default http://127.0.0.1:8080)
//	-rate      offered arrival rate, jobs/s  (default 100)
//	-duration  wall-clock load window        (default 10s)
//	-trace     borg|alibaba                  (default borg)
//	-batch     max jobs per POST             (default 64)
//	-poll      decision poll interval        (default 50ms)
//	-drain     extra wait for in-flight decisions after the window (default 30s)
//	-seed      generator seed                (default 7)
//	-json      machine-readable report
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"waterwise"
	"waterwise/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is the machine-readable summary (-json).
type report struct {
	URL          string  `json:"url"`
	TraceStyle   string  `json:"trace_style"`
	NominalRate  float64 `json:"nominal_rate_jobs_per_sec"`
	OfferedRate  float64 `json:"offered_rate_jobs_per_sec"`
	WindowSec    float64 `json:"window_sec"`
	Offered      int     `json:"offered"`
	Accepted     int     `json:"accepted"`
	Rejected     int     `json:"rejected"`
	Errors       int     `json:"errors"`
	Decided      int     `json:"decided"`
	DecisionsSec float64 `json:"decisions_per_sec"`
	RoundsSec    float64 `json:"rounds_per_sec"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`
	SolverIters  int     `json:"solver_simplex_iters"`
	SolverWarmPc float64 `json:"solver_warm_start_pct"`
}

func run() error {
	var (
		baseURL  = flag.String("url", "http://127.0.0.1:8080", "service base URL")
		rate     = flag.Float64("rate", 100, "offered arrival rate (jobs/sec)")
		duration = flag.Duration("duration", 10*time.Second, "wall-clock load window")
		style    = flag.String("trace", "borg", "arrival process: borg|alibaba")
		batch    = flag.Int("batch", 64, "max jobs per POST")
		poll     = flag.Duration("poll", 50*time.Millisecond, "decision poll interval")
		drain    = flag.Duration("drain", 30*time.Second, "extra wait for in-flight decisions")
		seed     = flag.Int64("seed", 7, "generator seed")
		jsonOut  = flag.Bool("json", false, "emit a JSON report")
	)
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	status, err := getStatus(client, *baseURL)
	if err != nil {
		return fmt.Errorf("reaching %s: %w", *baseURL, err)
	}
	regions := make([]waterwise.RegionID, 0, len(status.Free))
	for id := range status.Free {
		regions = append(regions, id)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	if len(regions) == 0 {
		return fmt.Errorf("service reports no regions")
	}
	startRounds := status.Rounds

	// Generate arrivals over a one-hour generator window and compress the
	// offsets into the wall window, preserving the process's burst
	// structure. JobsPerDay is chosen so the window holds rate*duration
	// expected arrivals.
	const genWindow = time.Hour
	wantJobs := *rate * duration.Seconds()
	cfg := trace.Config{
		Start:      time.Date(2023, 7, 3, 8, 12, 0, 0, time.UTC), // a weekday morning where diurnal x weekly modulation ≈ 1
		Duration:   genWindow,
		JobsPerDay: wantJobs * float64(24*time.Hour/genWindow),
		Regions:    regions,
		Seed:       *seed,
	}
	var jobs []*trace.Job
	switch *style {
	case "borg":
		jobs, err = trace.GenerateBorgLike(cfg)
	case "alibaba":
		jobs, err = trace.GenerateAlibabaLike(cfg)
	default:
		return fmt.Errorf("unknown trace style %q", *style)
	}
	if err != nil {
		return err
	}
	compress := float64(*duration) / float64(genWindow)

	var (
		mu       sync.Mutex
		sentWall = map[int]time.Time{}
		rep      = report{URL: *baseURL, TraceStyle: *style, NominalRate: *rate, Offered: len(jobs)}
	)

	// Poller: tail the decision log, matching decisions to submissions. A
	// decision can be observed before its POST response delivers the job id,
	// so unmatched decisions are retried on later iterations.
	type pollResult struct {
		lats        []float64
		lastDecided time.Time
	}
	latCh := make(chan pollResult, 1)
	stopPoll := make(chan struct{})
	go func() {
		var res pollResult
		var cursor uint64
		unmatched := map[int]time.Time{}
		for {
			ds, next, err := getDecisions(client, *baseURL, cursor)
			mu.Lock()
			if err == nil {
				cursor = next
				for _, d := range ds {
					unmatched[d.JobID] = d.DecidedWall
				}
			}
			for id, decided := range unmatched {
				sw, ok := sentWall[id]
				if !ok {
					continue
				}
				res.lats = append(res.lats, float64(decided.Sub(sw))/float64(time.Millisecond))
				rep.Decided++
				if decided.After(res.lastDecided) {
					res.lastDecided = decided
				}
				delete(unmatched, id)
			}
			mu.Unlock()
			select {
			case <-stopPoll:
				latCh <- res
				return
			case <-time.After(*poll):
			}
		}
	}()

	// Open-loop sender: walk the compressed schedule, batching jobs that
	// are due together.
	t0 := time.Now()
	for i := 0; i < len(jobs); {
		due := t0.Add(time.Duration(float64(jobs[i].Submit.Sub(cfg.Start)) * compress))
		if wait := time.Until(due); wait > 0 {
			time.Sleep(wait)
		}
		// Everything due by now, capped at the batch size.
		j := i
		now := time.Now()
		for j < len(jobs) && j-i < *batch {
			dj := t0.Add(time.Duration(float64(jobs[j].Submit.Sub(cfg.Start)) * compress))
			if dj.After(now) {
				break
			}
			j++
		}
		if j == i {
			j = i + 1
		}
		specs := make([]waterwise.JobSpec, 0, j-i)
		for _, job := range jobs[i:j] {
			specs = append(specs, waterwise.JobSpec{
				Benchmark: job.Benchmark, Home: job.Home,
				DurationSec:    job.Duration.Seconds(),
				EnergyKWh:      float64(job.Energy),
				EstDurationSec: job.EstDuration.Seconds(),
				EstEnergyKWh:   float64(job.EstEnergy),
			})
		}
		sent := time.Now() // open-loop submission instant, pre-request
		ids, code, err := postJobs(client, *baseURL, specs)
		mu.Lock()
		switch {
		case err != nil:
			rep.Errors += len(specs)
		case code == http.StatusTooManyRequests:
			rep.Accepted += len(ids)
			rep.Rejected += len(specs) - len(ids)
		case code != http.StatusAccepted:
			rep.Accepted += len(ids)
			rep.Errors += len(specs) - len(ids)
		default:
			rep.Accepted += len(ids)
		}
		for _, id := range ids {
			sentWall[id] = sent
		}
		mu.Unlock()
		i = j
	}
	sendWindow := time.Since(t0)

	// Let in-flight decisions land: poll until everything accepted has
	// decided or the drain budget runs out.
	drainDeadline := time.Now().Add(*drain)
	for time.Now().Before(drainDeadline) {
		mu.Lock()
		done := rep.Decided >= rep.Accepted
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(*poll)
	}
	close(stopPoll)
	pr := <-latCh
	lats := pr.lats

	status, err = getStatus(client, *baseURL)
	if err != nil {
		return err
	}
	// The throughput window runs from the first submission to the last
	// observed decision (falling back to now if nothing decided).
	window := time.Since(t0)
	if !pr.lastDecided.IsZero() && pr.lastDecided.After(t0) {
		window = pr.lastDecided.Sub(t0)
	}
	rep.WindowSec = sendWindow.Seconds()
	rep.OfferedRate = float64(rep.Offered) / sendWindow.Seconds()
	rep.DecisionsSec = float64(rep.Decided) / window.Seconds()
	rep.RoundsSec = float64(status.Rounds-startRounds) / window.Seconds()
	if status.Solver != nil {
		rep.SolverIters = status.Solver.SimplexIters
		rep.SolverWarmPc = 100 * status.Solver.WarmStartHitRate()
	}
	sort.Float64s(lats)
	rep.LatencyP50Ms = percentile(lats, 0.50)
	rep.LatencyP90Ms = percentile(lats, 0.90)
	rep.LatencyP99Ms = percentile(lats, 0.99)
	if len(lats) > 0 {
		rep.LatencyMaxMs = lats[len(lats)-1]
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("loadgen: %s trace, offered %d jobs in %.1fs (%.1f/s nominal %.0f/s)\n",
		rep.TraceStyle, rep.Offered, rep.WindowSec, rep.OfferedRate, rep.NominalRate)
	fmt.Printf("  accepted %d, rejected %d (backpressure), errors %d\n", rep.Accepted, rep.Rejected, rep.Errors)
	fmt.Printf("  decided %d (%.1f decisions/s, %.1f rounds/s)\n", rep.Decided, rep.DecisionsSec, rep.RoundsSec)
	fmt.Printf("  decision latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms, rep.LatencyMaxMs)
	if rep.SolverIters > 0 {
		fmt.Printf("  solver: %d simplex iters, %.0f%% warm-served\n", rep.SolverIters, rep.SolverWarmPc)
	}
	return nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func getStatus(c *http.Client, base string) (*waterwise.ServerStatus, error) {
	resp, err := c.Get(base + "/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st waterwise.ServerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func getDecisions(c *http.Client, base string, since uint64) ([]waterwise.ServerDecision, uint64, error) {
	resp, err := c.Get(fmt.Sprintf("%s/v1/decisions?since=%d", base, since))
	if err != nil {
		return nil, since, err
	}
	defer resp.Body.Close()
	var body struct {
		Decisions []waterwise.ServerDecision `json:"decisions"`
		Next      uint64                     `json:"next"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, since, err
	}
	return body.Decisions, body.Next, nil
}

func postJobs(c *http.Client, base string, specs []waterwise.JobSpec) ([]int, int, error) {
	payload, err := json.Marshal(specs)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var body struct {
		Accepted []int  `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, resp.StatusCode, err
	}
	return body.Accepted, resp.StatusCode, nil
}
