package main

import (
	"sync"
	"time"
)

// jobKey identifies one submission: standalone shards each mint ids
// from zero, so a bare id is ambiguous across targets.
type jobKey struct{ target, id int }

// matcher merges submissions and observed decisions into one latency
// sample set, keyed (target, id). It is transport-agnostic: polled
// HTTP decisions and pushed stream decisions feed the same Decided
// path, and either side of a pair may arrive first — a pushed decision
// can beat the submit reply that carries its id, just as a polled
// decision can beat the POST response. Unpaired decisions are parked
// per target until the matching Sent arrives; decisions that never
// pair (another client's work) park harmlessly.
type matcher struct {
	mu          sync.Mutex
	sent        map[jobKey]time.Time
	unmatched   []map[int]time.Time // per target: decided, submission not yet recorded
	lats        []float64           // latency samples, milliseconds, arrival order
	decided     int
	lastDecided time.Time
}

func newMatcher(targets int) *matcher {
	m := &matcher{
		sent:      make(map[jobKey]time.Time),
		unmatched: make([]map[int]time.Time, targets),
	}
	for i := range m.unmatched {
		m.unmatched[i] = make(map[int]time.Time)
	}
	return m
}

// observeLocked records one matched pair.
func (m *matcher) observeLocked(sent, decided time.Time) {
	m.lats = append(m.lats, float64(decided.Sub(sent))/float64(time.Millisecond))
	m.decided++
	if decided.After(m.lastDecided) {
		m.lastDecided = decided
	}
}

// Sent records a submission instant for (target, id), pairing it with
// an already-observed decision if one is parked.
func (m *matcher) Sent(target, id int, wall time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if decided, ok := m.unmatched[target][id]; ok {
		m.observeLocked(wall, decided)
		delete(m.unmatched[target], id)
		return
	}
	m.sent[jobKey{target, id}] = wall
}

// SentBatch records one submission instant for many ids.
func (m *matcher) SentBatch(target int, ids []int, wall time.Time) {
	for _, id := range ids {
		m.Sent(target, id, wall)
	}
}

// Decided records an observed decision for (target, id), pairing it
// with its submission if recorded, else parking it for a later Sent.
func (m *matcher) Decided(target, id int, wall time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sent, ok := m.sent[jobKey{target, id}]; ok {
		m.observeLocked(sent, wall)
		delete(m.sent, jobKey{target, id})
		return
	}
	m.unmatched[target][id] = wall
}

// DecidedCount returns the matched-pair count so far.
func (m *matcher) DecidedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.decided
}

// Window copies the latency samples recorded since index from (for
// interval sampling) and returns them with the new high-water mark and
// the total matched count.
func (m *matcher) Window(from int) (window []float64, next, decided int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	window = append([]float64(nil), m.lats[from:]...)
	return window, len(m.lats), m.decided
}

// Results returns the full sample set (caller may sort it in place),
// the matched count, and the wall clock of the newest decision.
func (m *matcher) Results() (lats []float64, decided int, lastDecided time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lats, m.decided, m.lastDecided
}
