package main

import (
	"testing"
	"time"
)

// TestMatcherBothArrivalOrders covers the two transports' arrival
// orders through the one shared matcher. Polled HTTP: the decision is
// usually observed after the POST response records the submission —
// but can beat it, since the poller and the POST race. Pushed stream:
// the decision push can beat the SubmitReply frame that records the
// submission. Both orders must pair up to the same latency sample.
func TestMatcherBothArrivalOrders(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	m := newMatcher(2)

	// HTTP-style: Sent first, Decided later.
	m.Sent(0, 100, base)
	if _, _, decided := m.Window(0); decided != 0 {
		t.Fatalf("decided %d before any decision", decided)
	}
	m.Decided(0, 100, base.Add(250*time.Millisecond))

	// Stream-style: the push arrives before the reply records the send.
	m.Decided(1, 100, base.Add(900*time.Millisecond))
	if _, _, decided := m.Window(0); decided != 1 {
		t.Fatalf("decided %d after unpaired push, want 1", decided)
	}
	m.Sent(1, 100, base.Add(400*time.Millisecond))

	lats, decided, lastDecided := m.Results()
	if decided != 2 || len(lats) != 2 {
		t.Fatalf("decided %d, %d samples, want 2 and 2", decided, len(lats))
	}
	// Same id on different targets stayed distinct: 250ms then 500ms.
	if lats[0] != 250 || lats[1] != 500 {
		t.Fatalf("latencies %v ms, want [250 500]", lats)
	}
	if !lastDecided.Equal(base.Add(900 * time.Millisecond)) {
		t.Fatalf("lastDecided %v, want %v", lastDecided, base.Add(900*time.Millisecond))
	}
}

// TestMatcherBatchAndWindow: SentBatch stamps every id with one
// submission instant, Window hands out each sample exactly once, and
// foreign decisions (another client's ids) never pair.
func TestMatcherBatchAndWindow(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	m := newMatcher(1)
	m.SentBatch(0, []int{1, 2, 3}, base)
	m.Decided(0, 999, base.Add(time.Second)) // not ours: parks forever
	m.Decided(0, 2, base.Add(100*time.Millisecond))
	m.Decided(0, 1, base.Add(200*time.Millisecond))

	window, n, decided := m.Window(0)
	if decided != 2 || len(window) != 2 {
		t.Fatalf("decided %d, window %v, want 2 matched", decided, window)
	}
	m.Decided(0, 3, base.Add(300*time.Millisecond))
	window, _, _ = m.Window(n)
	if len(window) != 1 || window[0] != 300 {
		t.Fatalf("second window %v, want [300]", window)
	}
	if got := m.DecidedCount(); got != 3 {
		t.Fatalf("DecidedCount %d, want 3", got)
	}
}
