package main

import (
	"fmt"
	"io"
	"net/http"
	"syscall"
	"testing"
	"time"

	"waterwise/internal/obs"
)

// TestDaemonMetricsLint is the end-to-end observability smoke test (and
// the test the CI metrics-lint job runs): boot a real waterwised with
// JSON logs and a pprof listener, drive jobs through it, and require the
// complete /metrics exposition to pass the strict parser — every series
// documented, every histogram cumulative — with the latency families
// present, the trace endpoints answering, and pprof serving.
func TestDaemonMetricsLint(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon process")
	}
	const jobs = 200
	port := freePort(t)
	debugPort := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	cmd := startDaemon(t, base,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-timescale", "0",
		"-log-format", "json", "-log-level", "debug",
		"-debug-addr", fmt.Sprintf("127.0.0.1:%d", debugPort),
	)
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_, _ = cmd.Process.Wait()
	}()
	submitJobs(t, base, jobs)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := getStatus(t, base); st.Decisions >= jobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never decided the workload")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fams, err := obs.ParseProm(metrics)
	if err != nil {
		t.Fatalf("daemon /metrics does not parse: %v\n%s", err, metrics)
	}
	if err := obs.LintProm(metrics); err != nil {
		t.Fatalf("daemon /metrics fails lint: %v", err)
	}
	for _, name := range []string{
		"waterwise_decision_latency_seconds",
		"waterwise_ingest_request_seconds",
		"waterwise_round_duration_seconds",
		"waterwise_round_stage_seconds",
		"waterwise_decisions_total",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from daemon /metrics", name)
		}
	}
	_, cums := obs.HistogramBuckets(fams["waterwise_decision_latency_seconds"], nil)
	if len(cums) == 0 || cums[len(cums)-1] != jobs {
		t.Errorf("decision latency count: %v, want %d", cums, jobs)
	}

	resp, err = http.Get(base + "/v1/rounds/slowest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("rounds endpoint: status %d", resp.StatusCode)
	}

	resp, err = http.Get(fmt.Sprintf("http://127.0.0.1:%d/debug/pprof/", debugPort))
	if err != nil {
		t.Fatalf("pprof listener not serving: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}
}

// TestDaemonNoObs boots with the kill switch and requires the exposition
// to stay lintable and the trace endpoints to report 404.
func TestDaemonNoObs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon process")
	}
	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	cmd := startDaemon(t, base,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-timescale", "0", "-no-obs",
	)
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_, _ = cmd.Process.Wait()
	}()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.LintProm(metrics); err != nil {
		t.Fatalf("-no-obs /metrics fails lint: %v", err)
	}
	resp, err = http.Get(base + "/v1/rounds/slowest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("rounds endpoint with -no-obs: status %d, want 404", resp.StatusCode)
	}
}
