// Command waterwised is the WaterWise scheduling daemon: the long-running
// form of the Optimization Decision Controller. It serves an HTTP/JSON API —
// POST /v1/jobs, GET /v1/decisions, GET /v1/status, GET /metrics — ingests
// streaming job arrivals into a bounded queue, micro-batches them into
// scheduling rounds on a configurable cadence, and places them with the
// same MILP scheduler stack the offline replay uses (cross-round warm
// starts on by default).
//
// With -shards N (N > 1) it runs the region-sharded serving fleet in one
// process: N scheduler shards, each owning a disjoint partition of the
// environment's regions, behind a gateway that routes jobs by home
// region, merges decision logs into one globally seq-numbered stream, and
// labels metrics per shard. With -partition it runs a single standalone
// shard of that layout — the same environment (same seed, same series),
// restricted to the named regions — so separate waterwised processes can
// each take a partition and be fronted by an external router.
//
// The environment's grid/weather signals come from a pluggable feed
// (-feed): the deterministic synthetic generators (default), a recorded
// trace file ("replay:<file>", captured with -record), or an
// electricityMaps-style HTTP API ("live:<url>", token from
// WATERWISE_FEED_TOKEN) with TTL caching and stale/forecast fallback.
// Feed health is surfaced in /v1/status and /metrics.
//
// Usage:
//
//	waterwised [flags]
//
//	-addr          listen address                            (default :8080)
//	-stream-addr   also serve the persistent-connection
//	               binary streaming protocol (internal/wire)
//	               on this TCP address: batched submits,
//	               pushed decisions, cursor resume — the
//	               100k+/s ingest path (default: off)
//	-round         scheduling round cadence in sim time      (default 1m)
//	-timescale     simulated seconds per wall second; 0 runs
//	               accelerated (rounds back to back)         (default 1)
//	-tolerance     delay tolerance fraction                  (default 0.5)
//	-lambda-carbon λ_CO2 objective weight (λ_H2O = 1-λ_CO2)  (default 0.5)
//	-regions       comma-separated region subset             (default: all five)
//	-shards        scheduler shard count; >1 serves the
//	               sharded fleet behind one gateway          (default 1)
//	-shard-map     region=shard pins, e.g. "zurich=0,mumbai=1"
//	               (unpinned regions dealt to emptiest shard)
//	-partition     standalone-shard mode: serve only these
//	               regions of the full environment
//	-feed          environment feed: "synthetic",
//	               "replay:<file>", or "live:<url>"          (default synthetic)
//	-record        write the feed to a trace file and exit
//	               (.json or .csv; replay it with -feed)
//	-horizon-hours environment series horizon; 0 = auto
//	               (96, or a replay trace's recorded span)   (default 0)
//	-queue-cap     ingest queue bound (backpressure)         (default 65536)
//	-decision-log  decision log ring capacity                (default 65536)
//	-data-dir      durable state directory: write-ahead log
//	               + snapshots; restart recovers it and
//	               resumes decision-identical (default: off)
//	-snapshot-every snapshot cadence in rounds               (default 256)
//	-workers       solver worker count                       (default 1)
//	-no-warm-start disable the cross-round warm start
//	-wri           use the WRI-style water dataset
//	-seed          environment RNG seed                      (default 7)
//	-log-level     log threshold: debug, info, warn, error   (default info)
//	-log-format    log encoding: text or json                (default text)
//	-debug-addr    serve net/http/pprof on this address
//	               (default: off)
//	-no-obs        disable the observability layer (latency
//	               histograms, round/job traces) — the
//	               obs-off arm of the overhead benchmark
//	-record-metrics keep a bounded in-process time-series
//	               history of /metrics, scraped once per round;
//	               query it with GET /v1/query (default: off)
//	-record-budget-mb memory budget for recorded history; the
//	               oldest window is evicted past it (default 8)
//	-record-interval minimum wall-clock spacing between recorder
//	               scrapes; accelerated rounds coalesce to the
//	               newest one per interval (default 250ms, 0 =
//	               scrape every round)
//	-slo           comma-separated SLO objectives with
//	               multi-window burn-rate alerting on the
//	               recorded history (implies -record-metrics):
//	               "availability:0.999" alerts on the rejected/
//	               accepted ratio; "latency:0.99@250ms" alerts
//	               when under 99% of decisions beat 250ms.
//	               Alert states at GET /v1/alerts.
package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flag"

	"waterwise"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waterwised:", err)
		os.Exit(1)
	}
}

// splitRegions parses a comma-separated region list.
func splitRegions(csv string) []waterwise.RegionID {
	var out []waterwise.RegionID
	for _, r := range strings.Split(csv, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, waterwise.RegionID(r))
		}
	}
	return out
}

// applyFeedFlag parses the -feed spec ("synthetic", "replay:<file>",
// "live:<url>") into the environment config.
func applyFeedFlag(cfg *waterwise.EnvironmentConfig, spec string) error {
	src, arg, _ := strings.Cut(spec, ":")
	switch src {
	case "", string(waterwise.FeedSynthetic):
		if arg != "" {
			return fmt.Errorf("-feed synthetic takes no argument (got %q)", arg)
		}
	case string(waterwise.FeedReplay):
		if arg == "" {
			return fmt.Errorf("-feed replay needs a trace file: replay:<file>")
		}
		cfg.Source = waterwise.FeedReplay
		cfg.FeedPath = arg
	case string(waterwise.FeedLive):
		if arg == "" {
			return fmt.Errorf("-feed live needs a base URL: live:<url>")
		}
		cfg.Source = waterwise.FeedLive
		cfg.FeedURL = arg
	default:
		return fmt.Errorf("unknown -feed source %q (want synthetic, replay:<file>, or live:<url>)", src)
	}
	return nil
}

// parseSLOs parses the -slo grammar into SLO objectives. Two forms,
// comma-separated:
//
//	availability:<target>        — ratio objective over the rejected /
//	                               accepted job counters
//	latency:<target>@<threshold> — latency objective over the decision
//	                               latency histogram (e.g. 0.99@250ms)
//
// The latency family differs between a single server and a fleet
// gateway (the fleet exposes the shard-merged histogram under its own
// name), so the caller passes which one is being built.
func parseSLOs(csv string, fleetMode bool) ([]waterwise.SLOObjective, error) {
	latencyFamily := "waterwise_decision_latency_seconds"
	if fleetMode {
		latencyFamily = "waterwise_fleet_decision_latency_seconds"
	}
	var out []waterwise.SLOObjective
	for _, spec := range strings.Split(csv, ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		kind, arg, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("-slo entry %q is not kind:target", spec)
		}
		switch kind {
		case "availability":
			target, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("-slo %q: bad target: %v", spec, err)
			}
			out = append(out, waterwise.SLOObjective{
				Name: "availability", Target: target,
				Bad:  "waterwise_jobs_rejected_total",
				Good: "waterwise_jobs_accepted_total",
			})
		case "latency":
			targetStr, threshStr, ok := strings.Cut(arg, "@")
			if !ok {
				return nil, fmt.Errorf("-slo %q: latency wants target@threshold, e.g. latency:0.99@250ms", spec)
			}
			target, err := strconv.ParseFloat(targetStr, 64)
			if err != nil {
				return nil, fmt.Errorf("-slo %q: bad target: %v", spec, err)
			}
			thresh, err := time.ParseDuration(threshStr)
			if err != nil {
				return nil, fmt.Errorf("-slo %q: bad threshold: %v", spec, err)
			}
			out = append(out, waterwise.SLOObjective{
				Name: "latency", Target: target,
				Family:      latencyFamily,
				ThresholdMs: float64(thresh) / float64(time.Millisecond),
			})
		default:
			return nil, fmt.Errorf("unknown -slo kind %q (want availability or latency)", kind)
		}
	}
	for _, o := range out {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("-slo: %v", err)
		}
	}
	return out, nil
}

// parseShardMap parses "region=shard" pins.
func parseShardMap(csv string) (map[waterwise.RegionID]int, error) {
	if csv == "" {
		return nil, nil
	}
	out := make(map[waterwise.RegionID]int)
	for _, pin := range strings.Split(csv, ",") {
		name, idx, ok := strings.Cut(strings.TrimSpace(pin), "=")
		if !ok {
			return nil, fmt.Errorf("shard map entry %q is not region=shard", pin)
		}
		n, err := strconv.Atoi(idx)
		if err != nil {
			return nil, fmt.Errorf("shard map entry %q: %v", pin, err)
		}
		out[waterwise.RegionID(strings.TrimSpace(name))] = n
	}
	return out, nil
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		streamAddr  = flag.String("stream-addr", "", "also serve the binary streaming protocol on this TCP address (empty = off)")
		round       = flag.Duration("round", time.Minute, "scheduling round cadence (simulated time)")
		timescale   = flag.Float64("timescale", 1, "simulated seconds per wall second; 0 = accelerated")
		tolerance   = flag.Float64("tolerance", 0.5, "delay tolerance fraction")
		lambdaC     = flag.Float64("lambda-carbon", 0.5, "carbon objective weight (water gets 1-x)")
		regionsCSV  = flag.String("regions", "", "comma-separated region subset")
		shards      = flag.Int("shards", 1, "scheduler shard count; >1 serves the sharded fleet")
		shardMapCSV = flag.String("shard-map", "", "region=shard pins, e.g. zurich=0,mumbai=1")
		partCSV     = flag.String("partition", "", "standalone-shard mode: serve only these regions of the full environment")
		feedSpec    = flag.String("feed", "synthetic", `environment feed: "synthetic", "replay:<file>", or "live:<url>"`)
		record      = flag.String("record", "", "write the environment feed to this trace file (.json or .csv) and exit")
		horizon     = flag.Int("horizon-hours", 0, "environment series horizon in hours (0 = auto: 96, or a replay trace's recorded span)")
		queueCap    = flag.Int("queue-cap", 0, "ingest queue bound (0 = default 65536)")
		decisionLog = flag.Int("decision-log", 0, "decision log ring capacity (0 = default 65536)")
		dataDir     = flag.String("data-dir", "", "durable state directory (write-ahead log + snapshots); empty = in-memory only")
		snapEvery   = flag.Int("snapshot-every", 0, "snapshot cadence in rounds (0 = default 256)")
		workers     = flag.Int("workers", 1, "branch-and-bound worker count")
		noWarm      = flag.Bool("no-warm-start", false, "disable the cross-round warm start")
		wri         = flag.Bool("wri", false, "use the WRI-style water dataset")
		seed        = flag.Int64("seed", 7, "environment RNG seed")
		logLevel    = flag.String("log-level", "info", "log threshold: debug, info, warn, or error")
		logFormat   = flag.String("log-format", "text", "log encoding: text or json")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
		noObs       = flag.Bool("no-obs", false, "disable the observability layer (histograms, round/job traces)")
		recordTS    = flag.Bool("record-metrics", false, "keep a bounded in-process time-series history of /metrics (query via /v1/query)")
		recordMB    = flag.Int("record-budget-mb", 0, "memory budget in MiB for recorded metrics history (0 = default 8)")
		recordIv    = flag.Duration("record-interval", 250*time.Millisecond, "minimum wall-clock spacing between recorder scrapes (0 = every round)")
		sloCSV      = flag.String("slo", "", `SLO objectives with burn-rate alerting, e.g. "availability:0.999,latency:0.99@250ms" (implies -record-metrics)`)
	)
	flag.Parse()

	log, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	slog.SetDefault(log)

	if *debugAddr != "" {
		// pprof on its own listener, never the service address: profiling
		// endpoints stay off the data path and can bind localhost-only.
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Error("pprof server failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	envCfg := waterwise.EnvironmentConfig{
		Regions:         splitRegions(*regionsCSV),
		HorizonHours:    *horizon,
		UseWRIWaterData: *wri,
		Seed:            *seed,
	}
	if err := applyFeedFlag(&envCfg, *feedSpec); err != nil {
		return err
	}
	env, err := waterwise.NewEnvironment(envCfg)
	if err != nil {
		return err
	}
	if *record != "" {
		if err := env.RecordFeed(*record); err != nil {
			return err
		}
		log.Info("recorded feed trace", "provider", env.FeedHealth().Provider,
			"regions", len(env.Regions()), "hours", env.HorizonHours(), "file", *record,
			"replay_with", "-feed replay:"+*record)
		return nil
	}
	schedCfg := waterwise.SchedulerConfig{
		LambdaCarbon:        *lambdaC,
		LambdaWater:         1 - *lambdaC,
		SolverWorkers:       *workers,
		CrossRoundWarmStart: !*noWarm,
	}

	mode := fmt.Sprintf("paced x%g", *timescale)
	if *timescale == 0 {
		mode = "accelerated"
	}

	// -slo without -record-metrics would have nothing to evaluate burn
	// rates over, so objectives imply recording.
	buildRecord := func(fleetMode bool) (waterwise.RecordConfig, error) {
		slos, err := parseSLOs(*sloCSV, fleetMode)
		if err != nil {
			return waterwise.RecordConfig{}, err
		}
		return waterwise.RecordConfig{
			Enable:            *recordTS || len(slos) > 0,
			MemoryBudgetBytes: *recordMB << 20,
			MinInterval:       *recordIv,
			SLOs:              slos,
			Logf: func(format string, args ...any) {
				slog.Info(fmt.Sprintf(format, args...))
			},
		}, nil
	}

	if *shards > 1 {
		if *partCSV != "" {
			return fmt.Errorf("-partition is the standalone-shard mode; use -shard-map with -shards")
		}
		shardMap, err := parseShardMap(*shardMapCSV)
		if err != nil {
			return err
		}
		recCfg, err := buildRecord(true)
		if err != nil {
			return err
		}
		fl, err := waterwise.NewFleet(env, waterwise.FleetConfig{
			Shards: *shards, ShardMap: shardMap, Scheduler: schedCfg,
			Tolerance: *tolerance, Round: *round, TimeScale: *timescale,
			QueueCap: *queueCap, DecisionLogCap: *decisionLog,
			DataDir: *dataDir, SnapshotEvery: *snapEvery,
			Obs:    waterwise.ObsConfig{Disable: *noObs},
			Record: recCfg,
		})
		if err != nil {
			return err
		}
		if *dataDir != "" {
			for _, ss := range fl.Status().ShardStatus {
				logRecovery(log, fmt.Sprintf("shard %d", ss.Shard), ss.WAL)
			}
		}
		fl.Start()
		log.Info("fleet gateway listening", "addr", *addr, "shards", fl.Shards(),
			"round", round.String(), "mode", mode, "tolerance", *tolerance)
		for s, part := range fl.Partitions() {
			log.Info("shard partition", "shard", s, "regions", fmt.Sprint(part))
		}
		stopStream, err := startStream(log, *streamAddr, fl)
		if err != nil {
			fl.Stop()
			return err
		}
		err = serve(log, *addr, fl.Handler(), func() { stopStream(); fl.Stop() })
		st := fl.Status()
		log.Info("fleet stopped", "rounds", st.Rounds, "decisions", st.Decisions,
			"merged", st.Merged, "lost", st.Lost, "accepted", st.Accepted,
			"rejected", st.Rejected, "unscheduled", st.Unscheduled)
		for _, ss := range st.ShardStatus {
			log.Info("shard totals", "shard", ss.Shard, "rounds", ss.Rounds,
				"decisions", ss.Decisions, "accepted", ss.Accepted)
		}
		return err
	}

	if *shardMapCSV != "" {
		return fmt.Errorf("-shard-map needs -shards > 1 (got -shards %d)", *shards)
	}
	recCfg, err := buildRecord(false)
	if err != nil {
		return err
	}
	srvCfg := waterwise.ServerConfig{
		Regions:   splitRegions(*partCSV),
		Tolerance: *tolerance, Round: *round, TimeScale: *timescale,
		QueueCap: *queueCap, DecisionLogCap: *decisionLog,
		DataDir: *dataDir, SnapshotEvery: *snapEvery,
		Obs:    waterwise.ObsConfig{Disable: *noObs},
		Record: recCfg,
	}
	sched, err := waterwise.NewScheduler(schedCfg)
	if err != nil {
		return err
	}
	srv, err := waterwise.NewServer(env, sched, srvCfg)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		logRecovery(log, "server", srv.Status().WAL)
	}
	srv.Start()
	served := env.Regions()
	if len(srvCfg.Regions) > 0 {
		served = srvCfg.Regions
		log.Info("standalone shard mode", "partition", fmt.Sprint(served), "environment", fmt.Sprint(env.Regions()))
	}
	log.Info("listening", "addr", *addr, "round", round.String(), "mode", mode,
		"tolerance", *tolerance, "regions", fmt.Sprint(served))
	stopStream, err := startStream(log, *streamAddr, srv)
	if err != nil {
		srv.Stop()
		return err
	}
	err = serve(log, *addr, srv.Handler(), func() { stopStream(); srv.Stop() })
	st := srv.Status()
	log.Info("stopped", "rounds", st.Rounds, "decisions", st.Decisions,
		"accepted", st.Accepted, "rejected", st.Rejected, "unscheduled", st.Unscheduled)
	if st.Solver != nil {
		log.Info("solver totals", "nodes", st.Solver.Nodes, "simplex_iters", st.Solver.SimplexIters,
			"warm_hit_rate", st.Solver.WarmStartHitRate(), "wall", st.Solver.Wall.Round(time.Millisecond).String())
	}
	if st.Obs != nil {
		log.Info("latency", "decision_p50_ms", st.Obs.DecisionP50Ms,
			"decision_p99_ms", st.Obs.DecisionP99Ms, "solve_p99_ms", st.Obs.SolveP99Ms)
	}
	return err
}

// buildLogger constructs the daemon's slog logger on stderr from the
// -log-level and -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// logRecovery summarizes what the restart path restored for one durable
// scheduling service.
func logRecovery(log *slog.Logger, who string, w *waterwise.WALStatus) {
	if w == nil {
		return
	}
	if !w.RecoveredSnapshot && w.RecoveredRecords == 0 {
		log.Info("fresh data directory", "who", who)
		return
	}
	src := "log replay only"
	if w.RecoveredSnapshot {
		src = "snapshot + log replay"
	}
	log.Info("recovered durable state", "who", who, "records", w.RecoveredRecords,
		"source", src, "recovery_ms", w.RecoveryMs, "segments", w.Segments, "appended", w.Appended)
}

// startStream opens the binary streaming listener when -stream-addr is
// set and returns its shutdown func (a no-op when the flag is off).
func startStream(log *slog.Logger, addr string, backend waterwise.StreamBackend) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream listener: %w", err)
	}
	sl := waterwise.NewStreamListener(ln, backend, waterwise.StreamOptions{})
	log.Info("stream listening", "addr", ln.Addr().String())
	return func() { sl.Close() }, nil
}

// serve runs the HTTP server until SIGINT/SIGTERM or a listen error, then
// stops the scheduling service and returns the listen error, if any.
func serve(log *slog.Logger, addr string, h http.Handler, stop func()) error {
	httpSrv := &http.Server{Addr: addr, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		stop()
		return err
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
	}
	_ = httpSrv.Close()
	stop()
	return nil
}
