// Command waterwised is the WaterWise scheduling daemon: the long-running
// form of the Optimization Decision Controller. It serves an HTTP/JSON API —
// POST /v1/jobs, GET /v1/decisions, GET /v1/status, GET /metrics — ingests
// streaming job arrivals into a bounded queue, micro-batches them into
// scheduling rounds on a configurable cadence, and places them with the
// same MILP scheduler stack the offline replay uses (cross-round warm
// starts on by default).
//
// With -shards N (N > 1) it runs the region-sharded serving fleet in one
// process: N scheduler shards, each owning a disjoint partition of the
// environment's regions, behind a gateway that routes jobs by home
// region, merges decision logs into one globally seq-numbered stream, and
// labels metrics per shard. With -partition it runs a single standalone
// shard of that layout — the same environment (same seed, same series),
// restricted to the named regions — so separate waterwised processes can
// each take a partition and be fronted by an external router.
//
// The environment's grid/weather signals come from a pluggable feed
// (-feed): the deterministic synthetic generators (default), a recorded
// trace file ("replay:<file>", captured with -record), or an
// electricityMaps-style HTTP API ("live:<url>", token from
// WATERWISE_FEED_TOKEN) with TTL caching and stale/forecast fallback.
// Feed health is surfaced in /v1/status and /metrics.
//
// Usage:
//
//	waterwised [flags]
//
//	-addr          listen address                            (default :8080)
//	-round         scheduling round cadence in sim time      (default 1m)
//	-timescale     simulated seconds per wall second; 0 runs
//	               accelerated (rounds back to back)         (default 1)
//	-tolerance     delay tolerance fraction                  (default 0.5)
//	-lambda-carbon λ_CO2 objective weight (λ_H2O = 1-λ_CO2)  (default 0.5)
//	-regions       comma-separated region subset             (default: all five)
//	-shards        scheduler shard count; >1 serves the
//	               sharded fleet behind one gateway          (default 1)
//	-shard-map     region=shard pins, e.g. "zurich=0,mumbai=1"
//	               (unpinned regions dealt to emptiest shard)
//	-partition     standalone-shard mode: serve only these
//	               regions of the full environment
//	-feed          environment feed: "synthetic",
//	               "replay:<file>", or "live:<url>"          (default synthetic)
//	-record        write the feed to a trace file and exit
//	               (.json or .csv; replay it with -feed)
//	-horizon-hours environment series horizon; 0 = auto
//	               (96, or a replay trace's recorded span)   (default 0)
//	-queue-cap     ingest queue bound (backpressure)         (default 65536)
//	-decision-log  decision log ring capacity                (default 65536)
//	-data-dir      durable state directory: write-ahead log
//	               + snapshots; restart recovers it and
//	               resumes decision-identical (default: off)
//	-snapshot-every snapshot cadence in rounds               (default 256)
//	-workers       solver worker count                       (default 1)
//	-no-warm-start disable the cross-round warm start
//	-wri           use the WRI-style water dataset
//	-seed          environment RNG seed                      (default 7)
package main

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flag"

	"waterwise"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waterwised:", err)
		os.Exit(1)
	}
}

// splitRegions parses a comma-separated region list.
func splitRegions(csv string) []waterwise.RegionID {
	var out []waterwise.RegionID
	for _, r := range strings.Split(csv, ",") {
		if r = strings.TrimSpace(r); r != "" {
			out = append(out, waterwise.RegionID(r))
		}
	}
	return out
}

// applyFeedFlag parses the -feed spec ("synthetic", "replay:<file>",
// "live:<url>") into the environment config.
func applyFeedFlag(cfg *waterwise.EnvironmentConfig, spec string) error {
	src, arg, _ := strings.Cut(spec, ":")
	switch src {
	case "", string(waterwise.FeedSynthetic):
		if arg != "" {
			return fmt.Errorf("-feed synthetic takes no argument (got %q)", arg)
		}
	case string(waterwise.FeedReplay):
		if arg == "" {
			return fmt.Errorf("-feed replay needs a trace file: replay:<file>")
		}
		cfg.Source = waterwise.FeedReplay
		cfg.FeedPath = arg
	case string(waterwise.FeedLive):
		if arg == "" {
			return fmt.Errorf("-feed live needs a base URL: live:<url>")
		}
		cfg.Source = waterwise.FeedLive
		cfg.FeedURL = arg
	default:
		return fmt.Errorf("unknown -feed source %q (want synthetic, replay:<file>, or live:<url>)", src)
	}
	return nil
}

// parseShardMap parses "region=shard" pins.
func parseShardMap(csv string) (map[waterwise.RegionID]int, error) {
	if csv == "" {
		return nil, nil
	}
	out := make(map[waterwise.RegionID]int)
	for _, pin := range strings.Split(csv, ",") {
		name, idx, ok := strings.Cut(strings.TrimSpace(pin), "=")
		if !ok {
			return nil, fmt.Errorf("shard map entry %q is not region=shard", pin)
		}
		n, err := strconv.Atoi(idx)
		if err != nil {
			return nil, fmt.Errorf("shard map entry %q: %v", pin, err)
		}
		out[waterwise.RegionID(strings.TrimSpace(name))] = n
	}
	return out, nil
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		round       = flag.Duration("round", time.Minute, "scheduling round cadence (simulated time)")
		timescale   = flag.Float64("timescale", 1, "simulated seconds per wall second; 0 = accelerated")
		tolerance   = flag.Float64("tolerance", 0.5, "delay tolerance fraction")
		lambdaC     = flag.Float64("lambda-carbon", 0.5, "carbon objective weight (water gets 1-x)")
		regionsCSV  = flag.String("regions", "", "comma-separated region subset")
		shards      = flag.Int("shards", 1, "scheduler shard count; >1 serves the sharded fleet")
		shardMapCSV = flag.String("shard-map", "", "region=shard pins, e.g. zurich=0,mumbai=1")
		partCSV     = flag.String("partition", "", "standalone-shard mode: serve only these regions of the full environment")
		feedSpec    = flag.String("feed", "synthetic", `environment feed: "synthetic", "replay:<file>", or "live:<url>"`)
		record      = flag.String("record", "", "write the environment feed to this trace file (.json or .csv) and exit")
		horizon     = flag.Int("horizon-hours", 0, "environment series horizon in hours (0 = auto: 96, or a replay trace's recorded span)")
		queueCap    = flag.Int("queue-cap", 0, "ingest queue bound (0 = default 65536)")
		decisionLog = flag.Int("decision-log", 0, "decision log ring capacity (0 = default 65536)")
		dataDir     = flag.String("data-dir", "", "durable state directory (write-ahead log + snapshots); empty = in-memory only")
		snapEvery   = flag.Int("snapshot-every", 0, "snapshot cadence in rounds (0 = default 256)")
		workers     = flag.Int("workers", 1, "branch-and-bound worker count")
		noWarm      = flag.Bool("no-warm-start", false, "disable the cross-round warm start")
		wri         = flag.Bool("wri", false, "use the WRI-style water dataset")
		seed        = flag.Int64("seed", 7, "environment RNG seed")
	)
	flag.Parse()

	envCfg := waterwise.EnvironmentConfig{
		Regions:         splitRegions(*regionsCSV),
		HorizonHours:    *horizon,
		UseWRIWaterData: *wri,
		Seed:            *seed,
	}
	if err := applyFeedFlag(&envCfg, *feedSpec); err != nil {
		return err
	}
	env, err := waterwise.NewEnvironment(envCfg)
	if err != nil {
		return err
	}
	if *record != "" {
		if err := env.RecordFeed(*record); err != nil {
			return err
		}
		fmt.Printf("waterwised: recorded %s feed (%d regions, %d hours) to %s\n",
			env.FeedHealth().Provider, len(env.Regions()), env.HorizonHours(), *record)
		fmt.Printf("waterwised: replay it with -feed replay:%s\n", *record)
		return nil
	}
	schedCfg := waterwise.SchedulerConfig{
		LambdaCarbon:        *lambdaC,
		LambdaWater:         1 - *lambdaC,
		SolverWorkers:       *workers,
		CrossRoundWarmStart: !*noWarm,
	}

	mode := fmt.Sprintf("paced x%g", *timescale)
	if *timescale == 0 {
		mode = "accelerated"
	}

	if *shards > 1 {
		if *partCSV != "" {
			return fmt.Errorf("-partition is the standalone-shard mode; use -shard-map with -shards")
		}
		shardMap, err := parseShardMap(*shardMapCSV)
		if err != nil {
			return err
		}
		fl, err := waterwise.NewFleet(env, waterwise.FleetConfig{
			Shards: *shards, ShardMap: shardMap, Scheduler: schedCfg,
			Tolerance: *tolerance, Round: *round, TimeScale: *timescale,
			QueueCap: *queueCap, DecisionLogCap: *decisionLog,
			DataDir: *dataDir, SnapshotEvery: *snapEvery,
		})
		if err != nil {
			return err
		}
		if *dataDir != "" {
			for _, ss := range fl.Status().ShardStatus {
				printRecovery(fmt.Sprintf("shard %d", ss.Shard), ss.WAL)
			}
		}
		fl.Start()
		fmt.Printf("waterwised: fleet gateway on %s (%d shards, round %v, %s, tolerance %.0f%%)\n",
			*addr, fl.Shards(), *round, mode, *tolerance*100)
		for s, part := range fl.Partitions() {
			fmt.Printf("waterwised: shard %d owns %v\n", s, part)
		}
		err = serve(*addr, fl.Handler(), fl.Stop)
		st := fl.Status()
		fmt.Printf("waterwised: fleet %d rounds, %d decisions (%d merged, %d lost), %d accepted, %d rejected, %d unscheduled\n",
			st.Rounds, st.Decisions, st.Merged, st.Lost, st.Accepted, st.Rejected, st.Unscheduled)
		for _, ss := range st.ShardStatus {
			fmt.Printf("waterwised: shard %d: %d rounds, %d decisions, %d accepted\n",
				ss.Shard, ss.Rounds, ss.Decisions, ss.Accepted)
		}
		return err
	}

	if *shardMapCSV != "" {
		return fmt.Errorf("-shard-map needs -shards > 1 (got -shards %d)", *shards)
	}
	srvCfg := waterwise.ServerConfig{
		Regions:   splitRegions(*partCSV),
		Tolerance: *tolerance, Round: *round, TimeScale: *timescale,
		QueueCap: *queueCap, DecisionLogCap: *decisionLog,
		DataDir: *dataDir, SnapshotEvery: *snapEvery,
	}
	sched, err := waterwise.NewScheduler(schedCfg)
	if err != nil {
		return err
	}
	srv, err := waterwise.NewServer(env, sched, srvCfg)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		printRecovery("server", srv.Status().WAL)
	}
	srv.Start()
	served := env.Regions()
	if len(srvCfg.Regions) > 0 {
		served = srvCfg.Regions
		fmt.Printf("waterwised: standalone shard over partition %v of %v\n", served, env.Regions())
	}
	fmt.Printf("waterwised: listening on %s (round %v, %s, tolerance %.0f%%, regions %v)\n",
		*addr, *round, mode, *tolerance*100, served)
	err = serve(*addr, srv.Handler(), srv.Stop)
	st := srv.Status()
	fmt.Printf("waterwised: %d rounds, %d decisions, %d accepted, %d rejected, %d unscheduled\n",
		st.Rounds, st.Decisions, st.Accepted, st.Rejected, st.Unscheduled)
	if st.Solver != nil {
		fmt.Printf("waterwised: solver %d nodes, %d simplex iters, %.0f%% warm-served, %v wall\n",
			st.Solver.Nodes, st.Solver.SimplexIters, 100*st.Solver.WarmStartHitRate(), st.Solver.Wall.Round(time.Millisecond))
	}
	return err
}

// printRecovery summarizes what the restart path restored for one
// durable scheduling service.
func printRecovery(who string, w *waterwise.WALStatus) {
	if w == nil {
		return
	}
	if !w.RecoveredSnapshot && w.RecoveredRecords == 0 {
		fmt.Printf("waterwised: %s: fresh data directory (no state to recover)\n", who)
		return
	}
	src := "log replay only"
	if w.RecoveredSnapshot {
		src = "snapshot + log replay"
	}
	fmt.Printf("waterwised: %s: recovered %d log records (%s) in %.0fms; log %d segments, %d records\n",
		who, w.RecoveredRecords, src, w.RecoveryMs, w.Segments, w.Appended)
}

// serve runs the HTTP server until SIGINT/SIGTERM or a listen error, then
// stops the scheduling service and returns the listen error, if any.
func serve(addr string, h http.Handler, stop func()) error {
	httpSrv := &http.Server{Addr: addr, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		stop()
		return err
	case s := <-sig:
		fmt.Printf("waterwised: %v, shutting down\n", s)
	}
	_ = httpSrv.Close()
	stop()
	return nil
}
