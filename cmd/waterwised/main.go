// Command waterwised is the WaterWise scheduling daemon: the long-running
// form of the Optimization Decision Controller. It serves an HTTP/JSON API —
// POST /v1/jobs, GET /v1/decisions, GET /v1/status, GET /metrics — ingests
// streaming job arrivals into a bounded queue, micro-batches them into
// scheduling rounds on a configurable cadence, and places them with the
// same MILP scheduler stack the offline replay uses (cross-round warm
// starts on by default).
//
// Usage:
//
//	waterwised [flags]
//
//	-addr          listen address                            (default :8080)
//	-round         scheduling round cadence in sim time      (default 1m)
//	-timescale     simulated seconds per wall second; 0 runs
//	               accelerated (rounds back to back)         (default 1)
//	-tolerance     delay tolerance fraction                  (default 0.5)
//	-lambda-carbon λ_CO2 objective weight (λ_H2O = 1-λ_CO2)  (default 0.5)
//	-regions       comma-separated region subset             (default: all five)
//	-horizon-hours environment series horizon                (default 96)
//	-queue-cap     ingest queue bound (backpressure)         (default 65536)
//	-decision-log  decision log ring capacity                (default 65536)
//	-workers       solver worker count                       (default 1)
//	-no-warm-start disable the cross-round warm start
//	-wri           use the WRI-style water dataset
//	-seed          environment RNG seed                      (default 7)
package main

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flag"

	"waterwise"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waterwised:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		round       = flag.Duration("round", time.Minute, "scheduling round cadence (simulated time)")
		timescale   = flag.Float64("timescale", 1, "simulated seconds per wall second; 0 = accelerated")
		tolerance   = flag.Float64("tolerance", 0.5, "delay tolerance fraction")
		lambdaC     = flag.Float64("lambda-carbon", 0.5, "carbon objective weight (water gets 1-x)")
		regionsCSV  = flag.String("regions", "", "comma-separated region subset")
		horizon     = flag.Int("horizon-hours", 96, "environment series horizon in hours")
		queueCap    = flag.Int("queue-cap", 0, "ingest queue bound (0 = default 65536)")
		decisionLog = flag.Int("decision-log", 0, "decision log ring capacity (0 = default 65536)")
		workers     = flag.Int("workers", 1, "branch-and-bound worker count")
		noWarm      = flag.Bool("no-warm-start", false, "disable the cross-round warm start")
		wri         = flag.Bool("wri", false, "use the WRI-style water dataset")
		seed        = flag.Int64("seed", 7, "environment RNG seed")
	)
	flag.Parse()

	var regions []waterwise.RegionID
	if *regionsCSV != "" {
		for _, r := range strings.Split(*regionsCSV, ",") {
			regions = append(regions, waterwise.RegionID(strings.TrimSpace(r)))
		}
	}
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{
		Regions:         regions,
		HorizonHours:    *horizon,
		UseWRIWaterData: *wri,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	sched, err := waterwise.NewScheduler(waterwise.SchedulerConfig{
		LambdaCarbon:        *lambdaC,
		LambdaWater:         1 - *lambdaC,
		SolverWorkers:       *workers,
		CrossRoundWarmStart: !*noWarm,
	})
	if err != nil {
		return err
	}
	srv, err := waterwise.NewServer(env, sched, waterwise.ServerConfig{
		Tolerance: *tolerance, Round: *round, TimeScale: *timescale,
		QueueCap: *queueCap, DecisionLogCap: *decisionLog,
	})
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	mode := fmt.Sprintf("paced x%g", *timescale)
	if *timescale == 0 {
		mode = "accelerated"
	}
	fmt.Printf("waterwised: listening on %s (round %v, %s, tolerance %.0f%%, regions %v)\n",
		*addr, *round, mode, *tolerance*100, env.Regions())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		srv.Stop()
		return err
	case s := <-sig:
		fmt.Printf("waterwised: %v, shutting down\n", s)
	}
	_ = httpSrv.Close()
	srv.Stop()
	st := srv.Status()
	fmt.Printf("waterwised: %d rounds, %d decisions, %d accepted, %d rejected, %d unscheduled\n",
		st.Rounds, st.Decisions, st.Accepted, st.Rejected, st.Unscheduled)
	if st.Solver != nil {
		fmt.Printf("waterwised: solver %d nodes, %d simplex iters, %.0f%% warm-served, %v wall\n",
			st.Solver.Nodes, st.Solver.SimplexIters, 100*st.Solver.WarmStartHitRate(), st.Solver.Wall.Round(time.Millisecond))
	}
	return nil
}
