package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"
)

// The daemon end-to-end crash test runs this test binary as waterwised
// itself: with WATERWISED_HELPER=1 the process skips the test runner and
// enters main(), so the test can exec os.Args[0], SIGKILL it mid-run,
// and restart it — a real process dying with a real unsynced WAL buffer,
// not an in-process simulation of one.
func TestMain(m *testing.M) {
	if os.Getenv("WATERWISED_HELPER") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// wireDecision mirrors the /v1/decisions entry fields the equivalence
// check compares (everything but decided_wall).
type wireDecision struct {
	Seq     uint64    `json:"seq"`
	JobID   int       `json:"job_id"`
	Region  string    `json:"region"`
	Round   time.Time `json:"round"`
	Start   time.Time `json:"start"`
	Finish  time.Time `json:"finish"`
	CarbonG float64   `json:"carbon_g"`
	WaterL  float64   `json:"water_l"`
}

type wirePage struct {
	Decisions []wireDecision `json:"decisions"`
	Next      uint64         `json:"next"`
}

type wireStatus struct {
	Pending   int    `json:"pending"`
	Future    int    `json:"future"`
	Accepted  uint64 `json:"accepted"`
	Decisions uint64 `json:"decisions"`
	WAL       *struct {
		Appended         uint64 `json:"appended"`
		Synced           uint64 `json:"synced"`
		RecoveredRecords uint64 `json:"recovered_records"`
		Recovered        bool   `json:"recovered_snapshot"`
	} `json:"wal"`
}

func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startDaemon execs this test binary as waterwised with the given flags
// and waits until /v1/status answers.
func startDaemon(t *testing.T, base string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "WATERWISED_HELPER=1")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/status")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatal("daemon never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getStatus(t *testing.T, base string) wireStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wireStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getDecisions(t *testing.T, base string) []wireDecision {
	t.Helper()
	resp, err := http.Get(base + "/v1/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page wirePage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page.Decisions
}

// submitJobs posts ids [1..n] as live canneal jobs, retrying each on
// connection errors (the client side of the idempotency contract).
func submitJobs(t *testing.T, base string, n int) {
	t.Helper()
	for id := 1; id <= n; id++ {
		body, _ := json.Marshal(map[string]interface{}{
			"id": id, "benchmark": "canneal", "home": "zurich",
		})
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				lastErr = err
				time.Sleep(20 * time.Millisecond)
				continue
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit job %d: status %d", id, resp.StatusCode)
			}
			lastErr = nil
			break
		}
		if lastErr != nil {
			t.Fatalf("submit job %d: %v", id, lastErr)
		}
	}
}

// TestCrashRecoverySIGKILL is the end-to-end durability proof at the
// process level: SIGKILL a running waterwised mid-run, restart it over
// the same -data-dir, re-submit the workload (idempotent retries), and
// the recovered daemon's decision stream must reproduce every decision
// the dead process had served — same seqs, same placements, no gaps, no
// renumbering — then finish the workload.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	const jobs = 600
	dir := t.TempDir()
	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	args := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-timescale", "0", "-data-dir", dir, "-snapshot-every", "200",
	}

	cmd := startDaemon(t, base, args...)
	submitJobs(t, base, jobs)
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, base)
		if st.Decisions >= jobs/4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Everything /v1/decisions has served is durable (rounds fsync before
	// publishing), so this snapshot is the floor the restart must match.
	before := getDecisions(t, base)
	if len(before) == 0 {
		t.Fatal("no decisions served before the kill")
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cmd2 := startDaemon(t, base, args...)
	defer func() {
		_ = cmd2.Process.Signal(syscall.SIGTERM)
		_, _ = cmd2.Process.Wait()
	}()
	st := getStatus(t, base)
	if st.WAL == nil || (!st.WAL.Recovered && st.WAL.RecoveredRecords == 0) {
		t.Fatalf("restart recovered nothing: %+v", st.WAL)
	}
	// Re-submit the whole workload: decided ids dedupe to their original
	// decision, acked-but-unfsynced ids become real jobs now.
	submitJobs(t, base, jobs)
	for {
		st := getStatus(t, base)
		if st.Decisions >= jobs && st.Pending == 0 && st.Future == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered daemon never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	after := getDecisions(t, base)
	if len(after) != jobs {
		t.Fatalf("final stream has %d decisions, want %d", len(after), jobs)
	}
	for i, w := range before {
		g := after[i]
		if g.Seq != w.Seq || g.JobID != w.JobID || g.Region != w.Region ||
			!g.Round.Equal(w.Round) || !g.Start.Equal(w.Start) || !g.Finish.Equal(w.Finish) ||
			g.CarbonG != w.CarbonG || g.WaterL != w.WaterL {
			t.Fatalf("recovered decision %d diverged:\n  got  %+v\n  want %+v", i, g, w)
		}
	}
	seen := make(map[int]bool, jobs)
	for i, d := range after {
		if d.Seq != uint64(i+1) {
			t.Fatalf("seq gap at %d: %d", i, d.Seq)
		}
		if seen[d.JobID] {
			t.Fatalf("job %d decided twice after recovery", d.JobID)
		}
		seen[d.JobID] = true
	}
}
