// Command experiments regenerates the WaterWise paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5
//	experiments -run all [-paper] [-seed 7]
//
// Quick scale (default) runs each experiment in seconds on a laptop; -paper
// replays the full ten-day, ~230k-job Google-Borg-scale setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"waterwise/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.String("run", "", "experiment id, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		paper   = flag.Bool("paper", false, "full paper-scale replay (slow)")
		seed    = flag.Int64("seed", 7, "RNG seed")
		jsonOut = flag.Bool("json", false, "emit reports as JSON instead of text")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *id == "" {
			fmt.Println("\nrun one with -run <id>, or everything with -run all")
		}
		return nil
	}

	scale := experiments.Quick()
	if *paper {
		scale = experiments.Paper()
	}
	scale.Seed = *seed

	if *id == "all" {
		for _, e := range experiments.All() {
			if err := runOne(e, scale, *jsonOut); err != nil {
				return err
			}
		}
		return nil
	}
	e, err := experiments.Lookup(*id)
	if err != nil {
		return err
	}
	return runOne(e, scale, *jsonOut)
}

func runOne(e experiments.Experiment, scale experiments.Scale, jsonOut bool) error {
	t0 := time.Now()
	rep, err := e.Run(scale)
	if err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("%s[completed in %v]\n\n", rep, time.Since(t0).Round(time.Millisecond))
	return nil
}
