// Command experiments regenerates the WaterWise paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5
//	experiments -run all [-paper] [-seed 7] [-workers N]
//
// Quick scale (default) runs each experiment in seconds on a laptop; -paper
// replays the full ten-day, ~230k-job Google-Borg-scale setup. With -run
// all, the independent figure generators run concurrently on a bounded
// worker pool (default: one per CPU, capped at the experiment count) while
// reports stream out in deterministic ID order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"waterwise/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id      = flag.String("run", "", "experiment id, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		paper   = flag.Bool("paper", false, "full paper-scale replay (slow)")
		seed    = flag.Int64("seed", 7, "RNG seed")
		jsonOut = flag.Bool("json", false, "emit reports as JSON instead of text")
		workers = flag.Int("workers", 0, "concurrent experiments for -run all (0 = one per CPU)")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *id == "" {
			fmt.Println("\nrun one with -run <id>, or everything with -run all")
		}
		return nil
	}

	scale := experiments.Quick()
	if *paper {
		scale = experiments.Paper()
	}
	scale.Seed = *seed

	if *id == "all" {
		return runAll(experiments.All(), scale, *jsonOut, *workers)
	}
	e, err := experiments.Lookup(*id)
	if err != nil {
		return err
	}
	return emit(runOne(e, scale), *jsonOut)
}

// outcome is one experiment's result plus its own wall time.
type outcome struct {
	rep *experiments.Report
	dur time.Duration
	err error
}

func runOne(e experiments.Experiment, scale experiments.Scale) outcome {
	t0 := time.Now()
	rep, err := e.Run(scale)
	if err != nil {
		err = fmt.Errorf("%s: %w", e.ID, err)
	}
	return outcome{rep: rep, dur: time.Since(t0).Round(time.Millisecond), err: err}
}

// runAll fans the independent experiments out over a bounded worker pool
// and streams each report as soon as it and all its predecessors (in ID
// order) are done — output is byte-identical to the serial run.
func runAll(exps []experiments.Experiment, scale experiments.Scale, jsonOut bool, workers int) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]chan outcome, len(exps))
	for i := range results {
		results[i] = make(chan outcome, 1)
	}
	sem := make(chan struct{}, workers)
	for i, e := range exps {
		go func(i int, e experiments.Experiment) {
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] <- runOne(e, scale)
		}(i, e)
	}
	var firstErr error
	for i := range exps {
		o := <-results[i] // deterministic ordering: block on ID order
		if err := emit(o, jsonOut); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func emit(o outcome, jsonOut bool) error {
	if o.err != nil {
		return o.err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(o.rep)
	}
	fmt.Printf("%s[completed in %v]\n\n", o.rep, o.dur)
	return nil
}
