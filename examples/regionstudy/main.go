// Regionstudy: which regions matter for carbon vs water?
//
// Mirrors the paper's Fig. 12 region-availability study: WaterWise is run
// over different region subsets, showing that availability of a
// high-carbon-intensity region (Mumbai) creates carbon-saving headroom
// (its jobs migrate out), while water savings depend on having somewhere
// water-cheap to go. It also prints each subset's placement distribution.
//
//	go run ./examples/regionstudy
package main

import (
	"fmt"
	"log"

	"waterwise"
)

func main() {
	subsets := [][]waterwise.RegionID{
		{waterwise.Zurich, waterwise.Madrid, waterwise.Oregon, waterwise.Milan, waterwise.Mumbai},
		{waterwise.Zurich, waterwise.Madrid, waterwise.Oregon, waterwise.Milan},
		{waterwise.Zurich, waterwise.Milan, waterwise.Mumbai},
		{waterwise.Zurich, waterwise.Oregon},
	}
	for _, ids := range subsets {
		if err := study(ids); err != nil {
			log.Fatal(err)
		}
	}
}

func study(ids []waterwise.RegionID) error {
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{
		Regions: ids, Seed: 33, HorizonHours: 4 * 24,
	})
	if err != nil {
		return err
	}
	jobs, err := env.GenerateBorgTrace(waterwise.TraceConfig{
		Days: 1, JobsPerDay: 1200 * float64(len(ids)), Seed: 3,
	})
	if err != nil {
		return err
	}
	base, err := env.Run(waterwise.NewBaseline(), jobs, 0.5)
	if err != nil {
		return err
	}
	sched, err := waterwise.NewScheduler(waterwise.SchedulerConfig{})
	if err != nil {
		return err
	}
	run, err := env.Run(sched, jobs, 0.5)
	if err != nil {
		return err
	}
	sv, err := waterwise.CompareSavings(base, run)
	if err != nil {
		return err
	}

	fmt.Printf("regions %v (%d jobs)\n", ids, len(jobs))
	fmt.Printf("  carbon saving %6.1f%%   water saving %6.1f%%\n", sv.CarbonPct, sv.WaterPct)
	dist := waterwise.Distribution(run, env.Regions())
	fmt.Printf("  placement:")
	for _, id := range env.Regions() {
		fmt.Printf("  %s %.0f%%", id, dist[id])
	}
	fmt.Printf("\n\n")
	return nil
}
