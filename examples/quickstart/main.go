// Quickstart: the smallest end-to-end WaterWise run.
//
// It builds the five-region environment, generates a half-day Borg-style
// trace, runs the carbon/water-unaware baseline and the WaterWise MILP
// scheduler over the identical jobs, and prints the footprint savings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"waterwise"
)

func main() {
	// 1. The simulated world: five regions with synthetic grid mixes,
	//    weather, and water scarcity factors calibrated to the paper.
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A trace of batch jobs arriving across the regions.
	jobs, err := env.GenerateBorgTrace(waterwise.TraceConfig{
		Days: 1, JobsPerDay: 4000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs across %v\n", len(jobs), env.Regions())

	// 3. The baseline: every job runs where it was submitted.
	base, err := env.Run(waterwise.NewBaseline(), jobs, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// 4. WaterWise: co-optimize carbon and water under a 50% delay
	//    tolerance, with the paper's default λ_CO2 = λ_H2O = 0.5.
	sched, err := waterwise.NewScheduler(waterwise.SchedulerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	run, err := env.Run(sched, jobs, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare.
	savings, err := waterwise.CompareSavings(base, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline : %8.1f kgCO2e  %8.0f L\n", base.TotalCarbon().Kg(), float64(base.TotalWater()))
	fmt.Printf("waterwise: %8.1f kgCO2e  %8.0f L\n", run.TotalCarbon().Kg(), float64(run.TotalWater()))
	fmt.Printf("savings  : carbon %.1f%%  water %.1f%%\n", savings.CarbonPct, savings.WaterPct)
	fmt.Printf("service  : %.2fx execution time, %.2f%% tolerance violations\n",
		run.MeanNormalizedService(), 100*run.ViolationRate())
}
