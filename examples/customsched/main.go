// Customsched: plugging your own policy into the WaterWise simulator.
//
// The public Scheduler interface is the extension point the paper's
// open-source framework advertises: anything that can pick a region for a
// batch of pending jobs can be evaluated against the same traces,
// footprint model, and baselines. This example implements a simple
// "water-price-aware" threshold policy — stay home unless another region's
// instantaneous water intensity is at least 25% cheaper — and compares it
// against the baseline and full WaterWise.
//
//	go run ./examples/customsched
package main

import (
	"fmt"
	"log"

	"waterwise"
)

// waterThreshold is a custom scheduling policy. It consults the same
// environment snapshots WaterWise uses, but with deliberately simpler
// logic: migrate only for a large instantaneous water win.
type waterThreshold struct {
	// improvement is the minimum relative water-intensity advantage that
	// justifies leaving the home region.
	improvement float64
}

// Name implements waterwise.Scheduler.
func (*waterThreshold) Name() string { return "water-threshold" }

// Schedule implements waterwise.Scheduler.
func (s *waterThreshold) Schedule(ctx *waterwise.SchedulingContext) ([]waterwise.Decision, error) {
	free := make(map[waterwise.RegionID]int, len(ctx.Free))
	for id, f := range ctx.Free {
		free[id] = f
	}
	out := make([]waterwise.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		job := pj.Job
		homeSnap, ok := ctx.Env.Snapshot(job.Home, ctx.Now)
		if !ok {
			out = append(out, waterwise.Decision{Job: job, Region: job.Home})
			continue
		}
		best := job.Home
		bestWI := float64(homeSnap.WaterIntensity())
		for _, id := range ctx.Env.IDs() {
			if id == job.Home || free[id] <= 0 {
				continue
			}
			snap, ok := ctx.Env.Snapshot(id, ctx.Now)
			if !ok {
				continue
			}
			if wi := float64(snap.WaterIntensity()); wi < bestWI*(1-s.improvement) {
				best = id
				bestWI = wi
			}
		}
		if free[best] <= 0 {
			best = job.Home
		}
		free[best]--
		out = append(out, waterwise.Decision{Job: job, Region: best})
	}
	return out, nil
}

func main() {
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := env.GenerateBorgTrace(waterwise.TraceConfig{Days: 1, JobsPerDay: 5000, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	base, err := env.Run(waterwise.NewBaseline(), jobs, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	ww, err := waterwise.NewScheduler(waterwise.SchedulerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	custom := &waterThreshold{improvement: 0.25}

	fmt.Printf("%-16s  %14s  %13s  %13s\n", "scheduler", "carbon saving", "water saving", "mean service")
	for _, s := range []waterwise.Scheduler{custom, ww} {
		run, err := env.Run(s, jobs, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		sv, err := waterwise.CompareSavings(base, run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s  %13.1f%%  %12.1f%%  %12.2fx\n", s.Name(), sv.CarbonPct, sv.WaterPct, sv.MeanService)
	}
	fmt.Println("\nthe threshold policy helps water a little; WaterWise's MILP")
	fmt.Println("co-optimization should beat it on carbon at comparable water savings.")
}
