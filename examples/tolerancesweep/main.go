// Tolerancesweep: how much extra carbon and water does a little patience
// buy?
//
// The paper's headline knob is delay tolerance: the fraction by which a
// batch job's service time may exceed its execution time. This example
// sweeps tolerance from 10% to 200% with three different carbon/water
// weightings and prints the savings frontier — the data behind Fig. 5 and
// Fig. 8.
//
//	go run ./examples/tolerancesweep
package main

import (
	"fmt"
	"log"

	"waterwise"
)

func main() {
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{
		Seed: 11, HorizonHours: 5 * 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := env.GenerateBorgTrace(waterwise.TraceConfig{
		Days: 1, JobsPerDay: 6000, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweeping delay tolerance over %d jobs\n\n", len(jobs))
	fmt.Printf("%9s  %7s  %16s  %15s  %12s\n", "tolerance", "λ_CO2", "carbon saving", "water saving", "mean service")

	for _, lambdaCarbon := range []float64{0.3, 0.5, 0.7} {
		for _, tol := range []float64{0.10, 0.25, 0.50, 1.00, 2.00} {
			base, err := env.Run(waterwise.NewBaseline(), jobs, tol)
			if err != nil {
				log.Fatal(err)
			}
			sched, err := waterwise.NewScheduler(waterwise.SchedulerConfig{
				LambdaCarbon: lambdaCarbon, LambdaWater: 1 - lambdaCarbon,
			})
			if err != nil {
				log.Fatal(err)
			}
			run, err := env.Run(sched, jobs, tol)
			if err != nil {
				log.Fatal(err)
			}
			sv, err := waterwise.CompareSavings(base, run)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.0f%%  %7.1f  %15.1f%%  %14.1f%%  %11.2fx\n",
				tol*100, lambdaCarbon, sv.CarbonPct, sv.WaterPct, sv.MeanService)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: savings grow with tolerance (diminishing returns);")
	fmt.Println("higher λ_CO2 trades water savings for carbon savings.")
}
