// Onlineservice: the WaterWise scheduler as a long-running service.
//
// It starts the online scheduling server in-process (accelerated time — the
// same engine waterwised runs behind its HTTP daemon), submits a stream of
// jobs through the HTTP API, waits for the queue to drain, and reads the
// placement decisions and service status back.
//
//	go run ./examples/onlineservice
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"waterwise"
)

func main() {
	// 1. Environment and scheduler, exactly as in the offline quickstart —
	//    plus the cross-round warm start, which keeps the round MILP's
	//    simplex basis alive between scheduling rounds.
	env, err := waterwise.NewEnvironment(waterwise.EnvironmentConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := waterwise.NewScheduler(waterwise.SchedulerConfig{CrossRoundWarmStart: true})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The online service: 1-minute scheduling rounds, accelerated time
	//    (rounds run back to back; TimeScale: 1 would pace them against the
	//    wall clock as cmd/waterwised does by default).
	srv, err := waterwise.NewServer(env, sched, waterwise.ServerConfig{
		Tolerance: 0.5,
		Round:     time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	// 3. Its HTTP API, served in-process.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 4. A morning's worth of job arrivals, POSTed to /v1/jobs.
	jobs, err := env.GenerateBorgTrace(waterwise.TraceConfig{Days: 1, JobsPerDay: 1000, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	specs := make([]waterwise.JobSpec, 0, len(jobs))
	for _, j := range jobs {
		id := j.ID
		specs = append(specs, waterwise.JobSpec{
			ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
			DurationSec:    j.Duration.Seconds(),
			EnergyKWh:      float64(j.Energy),
			EstDurationSec: j.EstDuration.Seconds(),
			EstEnergyKWh:   float64(j.EstEnergy),
		})
	}
	payload, _ := json.Marshal(specs)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %d jobs (HTTP %d)\n", len(specs), resp.StatusCode)

	// 5. Start the round loop and let the accelerated clock chew through
	//    the whole stream.
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}

	// 6. Decisions and status, via the same API a dashboard would poll.
	var status waterwise.ServerStatus
	r2, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	r2.Body.Close()
	fmt.Printf("service ran %d rounds, decided %d jobs (sim clock at %v)\n",
		status.Rounds, status.Decisions, status.SimNow.Format(time.RFC3339))
	if status.Solver != nil {
		fmt.Printf("solver: %d simplex iters, %.0f%% of rounds warm-served\n",
			status.Solver.SimplexIters, 100*status.Solver.WarmStartHitRate())
	}

	perRegion := map[waterwise.RegionID]int{}
	for _, d := range srv.Decisions(0, 0) {
		perRegion[d.Region]++
	}
	fmt.Println("placements by region:")
	for _, id := range env.Regions() {
		fmt.Printf("  %-8s %d\n", id, perRegion[id])
	}

	res := srv.Result()
	fmt.Printf("footprint: %.1f kg CO2, %.0f L water across %d jobs\n",
		float64(res.TotalCarbon())/1000, float64(res.TotalWater()), len(res.Outcomes))
}
