// Package waterwise is the public API of the WaterWise reproduction: a
// carbon- and water-footprint co-optimizing job scheduler for
// geographically distributed data centers, together with the trace-driven
// simulation substrate it is evaluated on (PPoPP 2025, arXiv:2501.17944).
//
// The typical flow is:
//
//	env, _ := waterwise.NewEnvironment(waterwise.EnvironmentConfig{})
//	jobs, _ := env.GenerateBorgTrace(waterwise.TraceConfig{Days: 1, JobsPerDay: 5000})
//	sched, _ := waterwise.NewScheduler(waterwise.SchedulerConfig{})
//	base, _ := env.Run(waterwise.NewBaseline(), jobs, 0.5)
//	run, _ := env.Run(sched, jobs, 0.5)
//	savings, _ := waterwise.CompareSavings(base, run)
//	fmt.Printf("carbon %.1f%%, water %.1f%%\n", savings.CarbonPct, savings.WaterPct)
//
// Custom scheduling policies implement the Scheduler interface and plug
// into the same simulator (see examples/customsched).
package waterwise

import (
	"fmt"
	"net"
	"os"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/feed"
	"waterwise/internal/fleet"
	"waterwise/internal/footprint"
	"waterwise/internal/metrics"
	"waterwise/internal/region"
	"waterwise/internal/sched"
	"waterwise/internal/server"
	"waterwise/internal/trace"
	"waterwise/internal/transfer"
	"waterwise/internal/tsdb"
)

// Re-exported core types. The aliases make the full simulator vocabulary
// available to API users without reaching into internal packages.
type (
	// Job is one batch job of a trace.
	Job = trace.Job
	// RegionID identifies a data center region ("zurich", "oregon", ...).
	RegionID = region.ID
	// Region is a region's static description (grid, climate, WSF, PUE,
	// servers).
	Region = region.Region
	// Snapshot is the instantaneous sustainability state of one region.
	Snapshot = region.Snapshot
	// Scheduler is the pluggable scheduling policy interface.
	Scheduler = cluster.Scheduler
	// SchedulingContext is what a Scheduler sees each round.
	SchedulingContext = cluster.Context
	// Decision places one job in one region.
	Decision = cluster.Decision
	// PendingJob is a job awaiting placement.
	PendingJob = cluster.PendingJob
	// Result is a full simulation outcome with per-job accounting.
	Result = cluster.Result
	// JobOutcome is the measured outcome of one job.
	JobOutcome = cluster.JobOutcome
	// Footprint is a job's carbon/water cost breakdown (Eq. 1-5).
	Footprint = footprint.Footprint
	// Savings compares a run against the baseline.
	Savings = metrics.Savings
)

// The five paper regions.
const (
	Zurich = region.Zurich
	Madrid = region.Madrid
	Oregon = region.Oregon
	Milan  = region.Milan
	Mumbai = region.Mumbai
)

// FeedSource selects where an environment's grid-mix and weather signals
// come from (EnvironmentConfig.Source).
type FeedSource string

// The three environment feed sources.
const (
	// FeedSynthetic generates the paper's deterministic synthetic series
	// from the seed — the default, and bit-identical to what every
	// release before the feed abstraction produced.
	FeedSynthetic FeedSource = "synthetic"
	// FeedReplay serves a recorded trace file (EnvironmentConfig.FeedPath;
	// JSON or CSV — see internal/feed's Trace schema). Replays are as
	// deterministic as synthetic runs: the same trace always yields the
	// same decisions.
	FeedReplay FeedSource = "replay"
	// FeedLive polls an electricityMaps-style HTTP API
	// (EnvironmentConfig.FeedURL) with TTL caching and stale/forecast
	// fallback; decisions then track an external world and are not
	// replayable from a seed.
	FeedLive FeedSource = "live"
)

// FeedHealth is the environment feed's freshness and fetch accounting, as
// surfaced in /v1/status and /metrics (see Environment.FeedHealth).
type FeedHealth = feed.Health

// EnvironmentConfig sizes the simulated world.
type EnvironmentConfig struct {
	// Regions selects a subset of the five paper regions; empty means all.
	Regions []RegionID
	// Start is the beginning of the simulated horizon (default: 2023-07-01
	// UTC, the paper's data window; for FeedReplay, the trace's own start;
	// for FeedLive, the current hour).
	Start time.Time
	// HorizonHours is the length of the grid/weather series (default: 96;
	// for FeedReplay, the recorded span).
	HorizonHours int
	// Source selects the environment feed: FeedSynthetic (the default
	// when empty), FeedReplay, or FeedLive.
	Source FeedSource
	// FeedPath is the recorded trace file FeedReplay serves (.json or
	// .csv; written by Environment.RecordFeed / waterwised -record).
	FeedPath string
	// FeedURL is the base URL FeedLive polls; the API token, if the
	// service needs one, is read from the WATERWISE_FEED_TOKEN
	// environment variable.
	FeedURL string
	// UseWRIWaterData switches to the World Resources Institute-style
	// water factor table (the paper's Fig. 6 robustness dataset).
	UseWRIWaterData bool
	// ServersPerRegion overrides every region's server count (0 keeps the
	// paper's 35).
	ServersPerRegion int
	// Seed makes the environment deterministic.
	Seed int64
	// EmbodiedCarbonFactor perturbs the embodied-carbon estimate
	// (0 or 1 = exact); the paper's sensitivity study uses 0.9/1.1.
	EmbodiedCarbonFactor float64
	// WaterIntensityFactor perturbs EWIF and WUE (0 or 1 = exact).
	WaterIntensityFactor float64
}

// Environment is a ready-to-simulate world: regions with generated grid
// mixes and weather, a transfer model, and a footprint model.
type Environment struct {
	env *region.Environment
	net *transfer.Model
	fp  *footprint.Model
}

// NewEnvironment builds the simulated world over the configured feed
// source: deterministic synthetic series (the default), a recorded replay
// trace, or a live HTTP feed.
func NewEnvironment(cfg EnvironmentConfig) (*Environment, error) {
	var regions []*region.Region
	var err error
	if len(cfg.Regions) == 0 {
		regions = region.Defaults()
	} else {
		regions, err = region.DefaultsSubset(cfg.Regions...)
		if err != nil {
			return nil, err
		}
	}
	if cfg.ServersPerRegion > 0 {
		for _, r := range regions {
			r.Servers = cfg.ServersPerRegion
		}
	}
	table := energy.Table
	if cfg.UseWRIWaterData {
		table = energy.WRITable
	}

	var env *region.Environment
	switch cfg.Source {
	case "", FeedSynthetic:
		if cfg.Start.IsZero() {
			cfg.Start = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)
		}
		if cfg.HorizonHours == 0 {
			cfg.HorizonHours = 96
		}
		env, err = region.NewEnvironment(regions, table, cfg.Start, cfg.HorizonHours, cfg.Seed)
	case FeedReplay:
		if cfg.FeedPath == "" {
			return nil, fmt.Errorf("waterwise: %s feed needs FeedPath", FeedReplay)
		}
		var tr feed.Trace
		tr, err = feed.ReadTraceFile(cfg.FeedPath)
		if err != nil {
			return nil, err
		}
		// The recorded span sizes the environment unless the caller
		// narrows it explicitly. A caller-chosen Start keeps the horizon
		// anchored to the recorded end, so the default window never
		// extends past the data into clamped flat-line territory.
		start, hours := tr.Span()
		end := start.Add(time.Duration(hours) * time.Hour)
		if !cfg.Start.IsZero() {
			start = cfg.Start
		}
		if cfg.HorizonHours > 0 {
			hours = cfg.HorizonHours
		} else {
			span := end.Sub(start)
			hours = int(span / time.Hour)
			if span%time.Hour != 0 {
				hours++
			}
			if hours <= 0 {
				return nil, fmt.Errorf("waterwise: Start %v is at or past the replay trace's end %v", start, end)
			}
		}
		var prov *feed.Replay
		prov, err = feed.NewReplay(tr)
		if err != nil {
			return nil, err
		}
		env, err = region.NewEnvironmentWithProvider(regions, table, start, hours, prov)
	case FeedLive:
		if cfg.FeedURL == "" {
			return nil, fmt.Errorf("waterwise: %s feed needs FeedURL", FeedLive)
		}
		if cfg.Start.IsZero() {
			cfg.Start = time.Now().UTC().Truncate(time.Hour)
		}
		if cfg.HorizonHours == 0 {
			cfg.HorizonHours = 96
		}
		keys := make([]string, len(regions))
		for i, r := range regions {
			keys[i] = string(r.ID)
		}
		var prov *feed.Live
		prov, err = feed.NewLive(feed.LiveConfig{
			BaseURL: cfg.FeedURL,
			Regions: keys,
			Token:   os.Getenv("WATERWISE_FEED_TOKEN"),
		})
		if err != nil {
			return nil, err
		}
		env, err = region.NewEnvironmentWithProvider(regions, table, cfg.Start, cfg.HorizonHours, prov)
	default:
		return nil, fmt.Errorf("waterwise: unknown feed source %q", cfg.Source)
	}
	if err != nil {
		return nil, err
	}
	return &Environment{
		env: env,
		net: transfer.New(),
		fp: footprint.NewModel(footprint.Perturbation{
			EmbodiedCarbonFactor: cfg.EmbodiedCarbonFactor,
			WaterIntensityFactor: cfg.WaterIntensityFactor,
		}),
	}, nil
}

// RecordFeed samples the environment's feed hourly over its whole horizon
// and writes the replay trace to path (.json or .csv). Replaying a
// synthetic environment's recording (EnvironmentConfig{Source: FeedReplay,
// FeedPath: path}, same regions and horizon) reproduces the original's
// decisions exactly; this is what waterwised -record runs.
func (e *Environment) RecordFeed(path string) error {
	keys := make([]string, 0, len(e.env.Regions))
	for _, r := range e.env.Regions {
		keys = append(keys, string(r.ID))
	}
	tr, err := feed.Record(e.env.Provider(), keys, e.env.Start, e.env.Hours)
	if err != nil {
		return err
	}
	return feed.WriteTraceFile(path, tr)
}

// FeedHealth reports the environment feed's freshness and fetch
// accounting — staleness seconds, fetch errors, cache hits, and
// forecast-served counts for a live feed; a trivially fresh record for
// the deterministic sources.
func (e *Environment) FeedHealth() FeedHealth {
	return feed.HealthOf(e.env.Provider())
}

// Regions returns the environment's region IDs in order.
func (e *Environment) Regions() []RegionID { return e.env.IDs() }

// HorizonHours reports the length of the environment's covered horizon —
// the generated, recorded, or operational window length in hours.
func (e *Environment) HorizonHours() int { return e.env.Hours }

// Snapshot reads the sustainability state of a region at an instant.
func (e *Environment) Snapshot(id RegionID, at time.Time) (Snapshot, bool) {
	return e.env.Snapshot(id, at)
}

// TraceConfig parameterizes trace generation against an environment.
type TraceConfig struct {
	// Days of arrivals (default 1).
	Days int
	// JobsPerDay is the mean arrival rate (default 5000).
	JobsPerDay float64
	// DurationScale scales job runtimes (default 1).
	DurationScale float64
	// Seed fixes the generator.
	Seed int64
}

func (c TraceConfig) toInternal(e *Environment) trace.Config {
	days := c.Days
	if days <= 0 {
		days = 1
	}
	rate := c.JobsPerDay
	if rate <= 0 {
		rate = 5000
	}
	return trace.Config{
		Start:         e.env.Start,
		Duration:      time.Duration(days) * 24 * time.Hour,
		JobsPerDay:    rate,
		Regions:       e.env.IDs(),
		DurationScale: c.DurationScale,
		Seed:          c.Seed,
	}
}

// GenerateBorgTrace synthesizes a Google-Borg-style trace (diurnal+weekly
// modulated Poisson arrivals).
func (e *Environment) GenerateBorgTrace(cfg TraceConfig) ([]*Job, error) {
	return trace.GenerateBorgLike(cfg.toInternal(e))
}

// GenerateAlibabaTrace synthesizes an Alibaba-style trace (bursty,
// Markov-modulated arrivals). Pass the already-multiplied rate; the paper
// uses 8.5x the Borg rate.
func (e *Environment) GenerateAlibabaTrace(cfg TraceConfig) ([]*Job, error) {
	return trace.GenerateAlibabaLike(cfg.toInternal(e))
}

// Run simulates the scheduler over the jobs at the given delay tolerance
// (e.g. 0.5 for the paper's 50%).
func (e *Environment) Run(s Scheduler, jobs []*Job, tolerance float64) (*Result, error) {
	return cluster.Run(cluster.Config{
		Env: e.env, Net: e.net, FP: e.fp, Tolerance: tolerance,
	}, s, jobs)
}

// SchedulerConfig configures the WaterWise scheduler. Zero values take the
// paper's defaults: λ_CO2 = λ_H2O = 0.5, λ_ref = 0.1, history window 10.
type SchedulerConfig struct {
	// LambdaCarbon weights carbon in the objective; LambdaCarbon +
	// LambdaWater must be 1 (both zero = use defaults).
	LambdaCarbon float64
	// LambdaWater weights water in the objective.
	LambdaWater float64
	// LambdaRef weights the history learner.
	LambdaRef float64
	// HistoryWindow is the history learner window in rounds.
	HistoryWindow int
	// PenaltySigma prices soft-constraint violations (Eq. 12).
	PenaltySigma float64
	// PerfWeight optionally adds performance (normalized service-time
	// impact) as a third objective — the paper's §7 extension. 0 disables.
	PerfWeight float64
	// CostWeight optionally adds electricity cost as an objective — the
	// paper's §7 extension. 0 disables.
	CostWeight float64
	// MaxBatch caps the number of jobs put into a single scheduling-round
	// MILP; overflow jobs wait for the next round, most urgent first
	// (default 64). The sparse revised simplex solves thousand-job rounds
	// well inside the round budget, so large deployments can raise this to
	// batch whole bursts into one optimal assignment.
	MaxBatch int
	// SolverWorkers sets the branch-and-bound node-exploration worker
	// count; 1 solves serially, 0 (the default) picks automatically:
	// serial below 200-job batches, then min(GOMAXPROCS, batch/64). A
	// search run to completion returns the same objective at any worker
	// count.
	SolverWorkers int
	// SolverDisableWarmStart solves every branch-and-bound node from
	// scratch instead of warm starting from the parent simplex basis
	// (an ablation switch; answers never change, only solve time).
	SolverDisableWarmStart bool
	// CrossRoundWarmStart carries the round MILP's simplex basis across
	// scheduling rounds: the cached round model re-prices the previous
	// round's basis in place (new objective, capacity RHS, and forbidden
	// pairs) instead of solving cold, falling back to a cold solve whenever
	// the basis cannot be revived. Per-round objectives never change, only
	// solve effort. Benefits both the online service and offline replays.
	CrossRoundWarmStart bool
}

// NewScheduler builds the WaterWise MILP scheduler.
func NewScheduler(cfg SchedulerConfig) (Scheduler, error) {
	c := core.DefaultConfig()
	if cfg.LambdaCarbon != 0 || cfg.LambdaWater != 0 {
		c.LambdaCarbon = cfg.LambdaCarbon
		c.LambdaWater = cfg.LambdaWater
	}
	if cfg.LambdaRef != 0 {
		c.LambdaRef = cfg.LambdaRef
	}
	if cfg.HistoryWindow != 0 {
		c.HistoryWindow = cfg.HistoryWindow
	}
	if cfg.PenaltySigma != 0 {
		c.PenaltySigma = cfg.PenaltySigma
	}
	if cfg.MaxBatch != 0 {
		c.MaxBatch = cfg.MaxBatch
	}
	c.PerfWeight = cfg.PerfWeight
	c.CostWeight = cfg.CostWeight
	c.Solver.Workers = cfg.SolverWorkers
	c.Solver.DisableWarmStart = cfg.SolverDisableWarmStart
	c.Solver.RepriceWarmStart = cfg.CrossRoundWarmStart
	return core.New(c)
}

// NewBaseline returns the carbon/water-unaware home-region scheduler.
func NewBaseline() Scheduler { return sched.NewBaseline() }

// NewRoundRobin returns the round-robin load balancer.
func NewRoundRobin() Scheduler { return sched.NewRoundRobin() }

// NewLeastLoad returns the least-load balancer.
func NewLeastLoad() Scheduler { return sched.NewLeastLoad() }

// NewCarbonGreedyOpt returns the infeasible carbon-minimizing oracle.
func NewCarbonGreedyOpt() Scheduler { return sched.NewCarbonGreedyOpt() }

// NewWaterGreedyOpt returns the infeasible water-minimizing oracle.
func NewWaterGreedyOpt() Scheduler { return sched.NewWaterGreedyOpt() }

// NewEcovisor returns the Ecovisor (ASPLOS'23) comparator.
func NewEcovisor() Scheduler { return sched.NewEcovisor() }

// NewTemporalShift returns a feasible carbon-aware-only comparator in the
// style of "Let's wait awhile" (Middleware'21): home-region only, deferring
// starts to below-average carbon-intensity moments within the delay
// tolerance.
func NewTemporalShift() Scheduler { return sched.NewTemporalShift() }

// CompareSavings computes the carbon/water savings of run relative to base
// (both must simulate the same trace).
func CompareSavings(base, run *Result) (Savings, error) {
	return metrics.Compare(base, run)
}

// Distribution returns the percentage of jobs each region received.
func Distribution(res *Result, ids []RegionID) map[RegionID]float64 {
	return metrics.Distribution(res, ids)
}

// Server is the online scheduling service: streaming job ingest over an
// HTTP/JSON API, micro-batched scheduling rounds on a configurable cadence
// with bounded queues and backpressure, and a decision log — the
// long-running form of the same scheduler stack Environment.Run drives
// offline. See internal/server for the API surface (Submit, Handler, Start,
// Stop, Drain, Decisions, Status, Result).
type Server = server.Server

// Server-facing types of the online service.
type (
	// JobSpec is one job submission to the online service.
	JobSpec = server.JobSpec
	// ServerDecision is one logged placement decision.
	ServerDecision = server.Decision
	// ServerStatus is a point-in-time service snapshot.
	ServerStatus = server.Status
	// WALStatus is the durability block of ServerStatus (log sizing,
	// fsync stalls, recovery cost); nil when DataDir is unset.
	WALStatus = server.WALStatus
	// ObsConfig tunes the observability layer (trace-ring bounds, job
	// sampling stride, or disabling it for overhead measurement).
	ObsConfig = server.ObsConfig
	// ObsSummary is the observability digest in ServerStatus/FleetStatus:
	// histogram-backed decision latency and round time quantiles.
	ObsSummary = server.ObsSummary
	// RecordConfig configures the metrics flight recorder: round-clock
	// self-scrapes of the exposition into a bounded in-process TSDB with
	// windowed queries (/v1/query) and burn-rate SLO alerts (/v1/alerts).
	RecordConfig = server.RecordConfig
	// SLOObjective is one declarative service-level objective evaluated
	// by the recorder's burn-rate engine (RecordConfig.SLOs).
	SLOObjective = tsdb.Objective
	// SLOBurnRule is one (long, short) burn-rate window pair of an
	// SLOObjective.
	SLOBurnRule = tsdb.BurnRule
	// SLOAlert is the live state of one (objective, rule) alert.
	SLOAlert = tsdb.Alert
)

// ErrQueueFull is the online service's backpressure rejection.
var ErrQueueFull = server.ErrQueueFull

// Streaming-ingest types: the persistent-connection binary protocol
// (internal/wire) served alongside the HTTP mux. Both *Server and
// *Fleet implement StreamBackend, so either can sit behind a
// StreamListener (waterwised -stream-addr).
type (
	// StreamBackend is the ingest/decision surface a StreamListener
	// serves: stream submits with POST /v1/jobs semantics and decision
	// pages from the seq-dense log.
	StreamBackend = server.StreamBackend
	// StreamListener accepts persistent wire-protocol connections:
	// batched submits in, batched decision pushes out, cursor-resume
	// handshake.
	StreamListener = server.StreamListener
	// StreamOptions tunes a StreamListener (push cadence, batch size,
	// ack window); the zero value uses defaults.
	StreamOptions = server.StreamOptions
)

// NewStreamListener serves the binary streaming protocol on ln against
// a Server or Fleet, alongside (not instead of) its HTTP handler.
func NewStreamListener(ln net.Listener, backend StreamBackend, opts StreamOptions) *StreamListener {
	return server.NewStreamListener(ln, backend, opts)
}

// ServerConfig configures the online scheduling service. Zero values take
// the service defaults: a 1-minute round cadence, accelerated time, 65536
// queue and decision-log capacities.
type ServerConfig struct {
	// Regions restricts the server to a partition of the environment's
	// regions — the standalone-shard form (waterwised -partition): the
	// server schedules only over the subset, reading the same generated
	// series the full environment holds, and rejects submissions homed
	// elsewhere. Empty serves every region.
	Regions []RegionID
	// Tolerance is the delay tolerance TOL as a fraction (e.g. 0.5).
	Tolerance float64
	// Round is the micro-batching cadence in simulated time.
	Round time.Duration
	// TimeScale maps wall time to simulated time (simulated seconds per
	// wall second): 1 runs in real time, 0 is accelerated — rounds run back
	// to back, the replay/benchmark mode.
	TimeScale float64
	// QueueCap bounds the ingest queue; submissions beyond it are rejected
	// with ErrQueueFull (HTTP 429).
	QueueCap int
	// DecisionLogCap bounds the in-memory decision log ring.
	DecisionLogCap int
	// DataDir enables durable state: accepted jobs and emitted decisions
	// are written ahead to a segmented, checksummed log under this
	// directory, snapshots cover settled state, and NewServer recovers the
	// directory — latest snapshot plus log-tail replay — before serving,
	// resuming decision-identical to the uninterrupted run. Empty keeps
	// the service purely in-memory.
	DataDir string
	// SnapshotEvery is the snapshot cadence in scheduling rounds
	// (0 = default 256). Only meaningful with DataDir.
	SnapshotEvery int
	// Obs tunes the observability layer — latency histograms, round
	// traces, sampled job lifecycles (enabled by default; Obs.Disable
	// turns it off). Measurement only: never affects decisions.
	Obs ObsConfig
	// Record enables the metrics flight recorder (off by default; see
	// RecordConfig). Measurement only: never affects decisions.
	Record RecordConfig
}

// NewServer builds the online scheduling service over an environment and a
// scheduling policy. Call Start to begin rounds, Handler for the HTTP API.
func NewServer(env *Environment, s Scheduler, cfg ServerConfig) (*Server, error) {
	if env == nil {
		return nil, fmt.Errorf("waterwise: nil environment")
	}
	return server.New(server.Config{
		Env: env.env, Regions: cfg.Regions, Net: env.net, FP: env.fp, Scheduler: s,
		Tolerance: cfg.Tolerance, Round: cfg.Round, TimeScale: cfg.TimeScale,
		QueueCap: cfg.QueueCap, DecisionLogCap: cfg.DecisionLogCap,
		DataDir: cfg.DataDir, SnapshotEvery: cfg.SnapshotEvery,
		Obs: cfg.Obs, Record: cfg.Record,
	})
}

// Fleet is the region-sharded serving fleet: N scheduler shards, each a
// full online service over a disjoint partition of the environment's
// regions, behind one gateway that routes submissions by home region,
// merges the shards' decision logs into one globally seq-numbered stream,
// and aggregates status and metrics per shard. Within each partition the
// fleet is decision-for-decision identical to a dedicated single server;
// a 1-shard fleet is exactly Server. See internal/fleet.
type Fleet = fleet.Fleet

// Fleet-facing types of the sharded service.
type (
	// FleetDecision is one merged decision: the shard's placement
	// re-stamped with the global sequence number.
	FleetDecision = fleet.Decision
	// FleetStatus aggregates the fleet plus every shard's snapshot.
	FleetStatus = fleet.Status
	// FleetShardStatus is one shard's snapshot within FleetStatus.
	FleetShardStatus = fleet.ShardStatus
)

// FleetConfig configures the sharded serving fleet. Zero values take the
// service defaults (1 shard, 1-minute rounds, accelerated time, 65536
// queue and log capacities).
type FleetConfig struct {
	// Shards is the scheduler shard count (at most the region count).
	Shards int
	// ShardMap pins regions to shards (region → shard index); unpinned
	// regions are dealt to the emptiest shard in environment order.
	ShardMap map[RegionID]int
	// Scheduler configures every shard's WaterWise scheduler (each shard
	// gets its own instance).
	Scheduler SchedulerConfig
	// Tolerance is the delay tolerance TOL as a fraction (e.g. 0.5).
	Tolerance float64
	// Round is the micro-batching cadence in simulated time, shared by all
	// shards so their round clocks stay aligned.
	Round time.Duration
	// TimeScale maps wall time to simulated time (0 = accelerated).
	TimeScale float64
	// QueueCap bounds each shard's ingest queue.
	QueueCap int
	// DecisionLogCap bounds the merged decision ring and each shard's own.
	DecisionLogCap int
	// DataDir enables durable shard state: each shard keeps its
	// write-ahead log and snapshots under DataDir/shard-<i> and is
	// recovered from there by NewFleet (see ServerConfig.DataDir).
	DataDir string
	// SnapshotEvery is each shard's snapshot cadence in rounds
	// (0 = default 256). Only meaningful with DataDir.
	SnapshotEvery int
	// Obs tunes every shard's observability layer (see ServerConfig.Obs).
	Obs ObsConfig
	// Record enables the fleet-level metrics flight recorder over the
	// merged gateway exposition (off by default; see RecordConfig).
	Record RecordConfig
}

// NewFleet builds the sharded serving fleet over an environment. Call
// Start to begin every shard's rounds, Handler for the gateway HTTP API.
func NewFleet(env *Environment, cfg FleetConfig) (*Fleet, error) {
	if env == nil {
		return nil, fmt.Errorf("waterwise: nil environment")
	}
	return fleet.New(fleet.Config{
		Env: env.env, Net: env.net, FP: env.fp,
		NewScheduler: func(int, []RegionID) (Scheduler, error) {
			return NewScheduler(cfg.Scheduler)
		},
		Shards: cfg.Shards, ShardMap: cfg.ShardMap,
		Tolerance: cfg.Tolerance, Round: cfg.Round, TimeScale: cfg.TimeScale,
		QueueCap: cfg.QueueCap, DecisionLogCap: cfg.DecisionLogCap,
		DataDir: cfg.DataDir, SnapshotEvery: cfg.SnapshotEvery,
		Obs: cfg.Obs, Record: cfg.Record,
	})
}

// Validate sanity-checks an environment+trace pairing before a long run.
func Validate(e *Environment, jobs []*Job) error {
	if e == nil {
		return fmt.Errorf("waterwise: nil environment")
	}
	known := map[RegionID]bool{}
	for _, id := range e.env.IDs() {
		known[id] = true
	}
	for _, j := range jobs {
		if !known[j.Home] {
			return fmt.Errorf("waterwise: job %d home region %q not in environment", j.ID, j.Home)
		}
		if j.Submit.Before(e.env.Start) || !j.Submit.Before(e.env.End()) {
			return fmt.Errorf("waterwise: job %d submitted at %v outside environment horizon [%v, %v)",
				j.ID, j.Submit, e.env.Start, e.env.End())
		}
	}
	return nil
}
