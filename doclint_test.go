package waterwise

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedAPIDocumented is the doc-comment lint backing the feed
// PR's documentation guarantee: every exported top-level declaration in
// the public facade and the environment-feed packages must carry a doc
// comment (the godoc pass promised that each states its determinism and
// concurrency behavior — this lint at least keeps the comments from
// silently disappearing). Grouped const/var/type declarations may carry
// one doc comment for the group.
func TestExportedAPIDocumented(t *testing.T) {
	for _, dir := range []string{".", "internal/feed", "internal/obs", "internal/region", "internal/scenario", "internal/tsdb", "internal/wal", "internal/wire"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					for _, miss := range undocumented(decl) {
						pos := fset.Position(miss.pos)
						t.Errorf("%s:%d: exported %s %s has no doc comment", pos.Filename, pos.Line, miss.kind, miss.name)
					}
				}
			}
		}
	}
}

type missingDoc struct {
	kind, name string
	pos        token.Pos
}

// undocumented reports the exported names a top-level declaration leaves
// without documentation.
func undocumented(decl ast.Decl) []missingDoc {
	var out []missingDoc
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "func"
			if d.Recv != nil {
				kind = fmt.Sprintf("method (%s)", types(d.Recv))
			}
			out = append(out, missingDoc{kind, d.Name.Name, d.Pos()})
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil // a group doc covers every spec
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					out = append(out, missingDoc{"type", s.Name.Name, s.Pos()})
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, missingDoc{"value", name.Name, s.Pos()})
					}
				}
			}
		}
	}
	return out
}

// types renders a receiver list compactly for the error message.
func types(fl *ast.FieldList) string {
	if fl == nil || len(fl.List) == 0 {
		return ""
	}
	switch t := fl.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	case *ast.Ident:
		return t.Name
	}
	return "receiver"
}
