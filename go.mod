module waterwise

go 1.24
