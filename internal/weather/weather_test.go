package weather

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/units"
)

func TestWUEMonotoneInWetBulb(t *testing.T) {
	prev := WUEFromWetBulb(-5)
	for c := -4.0; c <= 35; c++ {
		cur := WUEFromWetBulb(units.Celsius(c))
		if cur < prev-1e-9 {
			t.Fatalf("WUE not monotone: WUE(%.0f)=%v < WUE(%.0f)=%v", c, cur, c-1, prev)
		}
		prev = cur
	}
}

func TestWUEKnownPoints(t *testing.T) {
	// Cubic fit checkpoints (input °C, model evaluated in °F): cool sites
	// near the floor, Mumbai-like sites around 5 L/kWh.
	cases := []struct {
		c        float64
		min, max float64
	}{
		{0, 0.2, 1.5},
		{10, 1.5, 3.5},
		{25, 4.0, 6.0},
		{30, 5.5, 8.0},
	}
	for _, tc := range cases {
		w := float64(WUEFromWetBulb(units.Celsius(tc.c)))
		if w < tc.min || w > tc.max {
			t.Errorf("WUE(%g°C) = %.2f, want in [%g, %g]", tc.c, w, tc.min, tc.max)
		}
	}
}

func TestWUEFloor(t *testing.T) {
	if w := WUEFromWetBulb(-40); float64(w) != minWUE {
		t.Errorf("WUE(-40°C) = %v, want floor %v", w, minWUE)
	}
}

var testStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func TestGenerateDeterministic(t *testing.T) {
	p := Params{AnnualMean: 10, SeasonalAmp: 8, DiurnalAmp: 3, Noise: 1}
	a := Generate(p, testStart, 500, 42)
	b := Generate(p, testStart, 500, 42)
	for i := range a.WetBulb {
		if a.WetBulb[i] != b.WetBulb[i] {
			t.Fatalf("series differ at hour %d despite same seed", i)
		}
	}
	c := Generate(p, testStart, 500, 43)
	same := true
	for i := range a.WetBulb {
		if a.WetBulb[i] != c.WetBulb[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestSeasonalCycle(t *testing.T) {
	p := Params{AnnualMean: 10, SeasonalAmp: 8, DiurnalAmp: 0, Noise: 0}
	s := Generate(p, testStart, 365*24, 1)
	jan := float64(s.At(testStart.AddDate(0, 0, 14)))
	jul := float64(s.At(testStart.AddDate(0, 6, 14)))
	if jul <= jan {
		t.Errorf("July wet bulb (%.1f) should exceed January (%.1f) in the northern-hemisphere model", jul, jan)
	}
	if math.Abs(jul-jan) < 10 {
		t.Errorf("seasonal swing = %.1f, want close to 2*amp=16", jul-jan)
	}
}

func TestDiurnalCycle(t *testing.T) {
	p := Params{AnnualMean: 15, SeasonalAmp: 0, DiurnalAmp: 4, Noise: 0}
	s := Generate(p, testStart, 48, 1)
	night := float64(s.At(testStart.Add(3 * time.Hour)))
	day := float64(s.At(testStart.Add(15 * time.Hour)))
	if day <= night {
		t.Errorf("mid-afternoon (%.1f) should be warmer than pre-dawn (%.1f)", day, night)
	}
}

func TestAtClampsRange(t *testing.T) {
	p := Params{AnnualMean: 10}
	s := Generate(p, testStart, 24, 1)
	before := s.At(testStart.Add(-5 * time.Hour))
	first := s.WetBulb[0]
	if before != first {
		t.Errorf("At before start = %v, want clamp to first %v", before, first)
	}
	after := s.At(testStart.Add(1000 * time.Hour))
	last := s.WetBulb[len(s.WetBulb)-1]
	if after != last {
		t.Errorf("At after end = %v, want clamp to last %v", after, last)
	}
}

func TestEmptySeries(t *testing.T) {
	s := &Series{Start: testStart}
	if s.At(testStart) != 0 {
		t.Error("empty series At should be 0")
	}
	if s.MeanWUE() != 0 {
		t.Error("empty series MeanWUE should be 0")
	}
}

func TestMeanWUEMatchesManualAverage(t *testing.T) {
	p := Params{AnnualMean: 18, SeasonalAmp: 5, DiurnalAmp: 2, Noise: 0.5}
	s := Generate(p, testStart, 200, 9)
	sum := 0.0
	for _, wb := range s.WetBulb {
		sum += float64(WUEFromWetBulb(wb))
	}
	want := sum / float64(len(s.WetBulb))
	if got := float64(s.MeanWUE()); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanWUE = %v, want %v", got, want)
	}
}

// Property: WUE is always >= the floor and monotone in temperature for any
// pair of temperatures in a physical range.
func TestQuickWUEProperties(t *testing.T) {
	f := func(a, b float64) bool {
		ta := math.Mod(math.Abs(a), 60) - 20 // [-20, 40)
		tb := math.Mod(math.Abs(b), 60) - 20
		wa := WUEFromWetBulb(units.Celsius(ta))
		wb := WUEFromWetBulb(units.Celsius(tb))
		if wa < minWUE || wb < minWUE {
			return false
		}
		if ta < tb && wa > wb+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
