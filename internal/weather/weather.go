// Package weather synthesizes wet-bulb temperature series for data center
// regions and converts them to Water Usage Effectiveness (WUE), replacing
// the Meteologix live feed used by the WaterWise paper.
//
// WUE quantifies the liters of cooling water evaporated per kWh of IT
// energy, and depends strongly on the site's wet-bulb temperature: hotter,
// more humid air gives the cooling towers less evaporative headroom. We use
// the widely-cited cubic fit from Li et al., "Making AI Less Thirsty" [32]
// (originally in degrees Fahrenheit):
//
//	WUE(T_F) = 6e-5*T_F^3 - 0.01*T_F^2 + 0.61*T_F - 10.40   [L/kWh]
//
// clamped below at a small positive floor (even favorable weather consumes
// some make-up water for blowdown).
package weather

import (
	"math"
	"time"

	"waterwise/internal/stats"
	"waterwise/internal/units"
)

// minWUE is the floor applied to the cubic model: cooling towers always
// consume some blowdown make-up water.
const minWUE = 0.2

// WUEFromWetBulb converts a wet-bulb temperature to Water Usage
// Effectiveness using the cubic model above.
func WUEFromWetBulb(t units.Celsius) units.WUE {
	f := float64(t)*9/5 + 32
	w := 6e-5*f*f*f - 0.01*f*f + 0.61*f - 10.40
	if w < minWUE {
		w = minWUE
	}
	return units.WUE(w)
}

// Params describes a region's wet-bulb climate as a seasonal plus diurnal
// sinusoid with Gaussian noise:
//
//	T(t) = AnnualMean
//	     + SeasonalAmp * sin(2π*(dayOfYear/365) + SeasonalPhase)
//	     + DiurnalAmp  * sin(2π*(hourOfDay/24)  - π/2)      // coolest pre-dawn
//	     + N(0, Noise²)
type Params struct {
	// AnnualMean is the mean wet-bulb temperature (°C).
	AnnualMean float64
	// SeasonalAmp is the amplitude of the annual cycle (°C).
	SeasonalAmp float64
	// SeasonalPhase shifts the annual cycle; 0 peaks in early July
	// (northern hemisphere summer).
	SeasonalPhase float64
	// DiurnalAmp is the amplitude of the day/night cycle (°C).
	DiurnalAmp float64
	// Noise is the standard deviation of hour-to-hour weather noise (°C).
	Noise float64
}

// Series is an hourly wet-bulb temperature trace starting at Start.
type Series struct {
	Start   time.Time
	WetBulb []units.Celsius
}

// Generate produces an hourly wet-bulb series of the given length. The same
// params, start, length, and seed always produce the identical series.
func Generate(p Params, start time.Time, hours int, seed int64) *Series {
	rng := stats.NewRand(seed)
	s := &Series{Start: start, WetBulb: make([]units.Celsius, hours)}
	for h := 0; h < hours; h++ {
		t := start.Add(time.Duration(h) * time.Hour)
		s.WetBulb[h] = units.Celsius(p.at(t) + rng.Normal(0, p.Noise))
	}
	return s
}

// at returns the deterministic (noise-free) wet-bulb temperature at t.
func (p Params) at(t time.Time) float64 {
	doy := float64(t.YearDay()-1) / 365.0
	hod := float64(t.Hour()) + float64(t.Minute())/60.0
	seasonal := p.SeasonalAmp * math.Sin(2*math.Pi*doy+p.SeasonalPhase-math.Pi/2)
	diurnal := p.DiurnalAmp * math.Sin(2*math.Pi*hod/24-math.Pi/2)
	return p.AnnualMean + seasonal + diurnal
}

// At returns the wet-bulb temperature at time t, indexing into the hourly
// series (clamped to the series range).
func (s *Series) At(t time.Time) units.Celsius {
	if len(s.WetBulb) == 0 {
		return 0
	}
	h := int(t.Sub(s.Start) / time.Hour)
	if h < 0 {
		h = 0
	}
	if h >= len(s.WetBulb) {
		h = len(s.WetBulb) - 1
	}
	return s.WetBulb[h]
}

// WUEAt returns the water usage effectiveness at time t.
func (s *Series) WUEAt(t time.Time) units.WUE {
	return WUEFromWetBulb(s.At(t))
}

// MeanWUE returns the average WUE over the whole series.
func (s *Series) MeanWUE() units.WUE {
	if len(s.WetBulb) == 0 {
		return 0
	}
	sum := 0.0
	for _, wb := range s.WetBulb {
		sum += float64(WUEFromWetBulb(wb))
	}
	return units.WUE(sum / float64(len(s.WetBulb)))
}
