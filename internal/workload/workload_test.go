package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/stats"
)

func TestTable1Complete(t *testing.T) {
	// Table 1 of the paper: 5 PARSEC + 5 CloudSuite benchmarks.
	all := All()
	if len(all) != 10 {
		t.Fatalf("want 10 benchmarks, got %d", len(all))
	}
	counts := map[Suite]int{}
	for _, p := range all {
		counts[p.Suite]++
		if p.MeanDuration <= 0 || p.MeanPowerW <= 0 || p.PackageMB <= 0 {
			t.Errorf("%s: non-positive profile fields %+v", p.Name, p)
		}
		if p.DurationCV <= 0 || p.DurationCV > 0.5 {
			t.Errorf("%s: implausible duration CV %g", p.Name, p.DurationCV)
		}
	}
	if counts[PARSEC] != 5 || counts[CloudSuite] != 5 {
		t.Errorf("suite split = %v, want 5 PARSEC + 5 CloudSuite", counts)
	}
	for _, name := range []string{"dedup", "netdedup", "canneal", "blackscholes", "swaptions"} {
		p, err := Lookup(name)
		if err != nil {
			t.Errorf("PARSEC benchmark %q missing: %v", name, err)
			continue
		}
		if p.Suite != PARSEC {
			t.Errorf("%q suite = %v, want parsec", name, p.Suite)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("quake3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNamesSortedAndMatchAll(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatalf("Names/All length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
	for i, p := range all {
		if names[i] != p.Name {
			t.Errorf("Names()[%d] = %s, want %s", i, names[i], p.Name)
		}
	}
}

func TestMeanEnergy(t *testing.T) {
	p := Profile{MeanDuration: 30 * time.Minute, MeanPowerW: 200}
	want := 0.2 * 0.5 // kW * h
	if got := float64(p.MeanEnergy()); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanEnergy = %g, want %g", got, want)
	}
}

func TestSampleStatistics(t *testing.T) {
	p, err := Lookup("graph-analytics")
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(42)
	var durs, energies []float64
	for i := 0; i < 5000; i++ {
		a := p.Sample(rng)
		if a.Duration <= 0 || a.Energy <= 0 {
			t.Fatalf("non-positive actuals %+v", a)
		}
		durs = append(durs, a.Duration.Minutes())
		energies = append(energies, float64(a.Energy))
	}
	meanDur := stats.Mean(durs)
	if math.Abs(meanDur-p.MeanDuration.Minutes())/p.MeanDuration.Minutes() > 0.03 {
		t.Errorf("sampled mean duration %.1f min, want ~%.1f", meanDur, p.MeanDuration.Minutes())
	}
	cv := stats.StdDev(durs) / meanDur
	if math.Abs(cv-p.DurationCV) > 0.05 {
		t.Errorf("sampled duration CV %.3f, want ~%.3f", cv, p.DurationCV)
	}
	meanE := stats.Mean(energies)
	if math.Abs(meanE-float64(p.MeanEnergy()))/float64(p.MeanEnergy()) > 0.05 {
		t.Errorf("sampled mean energy %.4f, want ~%.4f", meanE, float64(p.MeanEnergy()))
	}
}

// Property: samples are always positive and bounded by the 10%-of-mean
// duration floor.
func TestQuickSampleBounds(t *testing.T) {
	p, err := Lookup("dedup")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		for i := 0; i < 50; i++ {
			a := p.Sample(rng)
			if a.Duration < time.Duration(float64(p.MeanDuration)*0.1) {
				return false
			}
			if a.Energy <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
