// Package workload provides the benchmark profiles of Table 1 in the
// WaterWise paper: five PARSEC-3.0 benchmarks and five CloudSuite
// benchmarks, each with a mean execution time, mean power draw, and
// deployment package size.
//
// The paper profiles these workloads on AWS m5.metal machines with
// Likwid/RAPL; offline we substitute a static profile database with the
// same role: the scheduler's controller reads *mean estimates* gathered
// "from previous executions", while the simulator draws noisy *actuals*
// around those means — reproducing the paper's caveat that the controller's
// estimates can be inaccurate.
package workload

import (
	"fmt"
	"sort"
	"time"

	"waterwise/internal/stats"
	"waterwise/internal/units"
)

// Suite identifies the benchmark suite a workload belongs to.
type Suite string

// The two suites of Table 1.
const (
	PARSEC     Suite = "parsec"
	CloudSuite Suite = "cloudsuite"
)

// Profile is the measured profile of one benchmark on the reference server.
type Profile struct {
	// Name is the benchmark name, e.g. "dedup".
	Name string
	// Suite is the benchmark suite.
	Suite Suite
	// Domain is the scientific domain per Table 1.
	Domain string
	// MeanDuration is the mean execution time on the reference server.
	MeanDuration time.Duration
	// MeanPowerW is the mean whole-server power draw while running (watts).
	MeanPowerW float64
	// PackageMB is the size of the compressed execution files and
	// dependencies transferred when the job migrates (MB of .tar).
	PackageMB float64
	// DurationCV is the coefficient of variation of actual run times.
	DurationCV float64
	// PowerCV is the coefficient of variation of actual power draw.
	PowerCV float64
}

// MeanEnergy returns the profile's mean energy per run.
func (p Profile) MeanEnergy() units.KWh {
	return units.KWh(p.MeanPowerW / 1000 * p.MeanDuration.Hours())
}

// profiles is the static database, roughly calibrated to published PARSEC
// native-input runtimes and CloudSuite service benchmarks scaled to batch
// analysis windows, on a 96-core m5.metal-class machine (idle ~180 W, full
// load ~350 W).
var profiles = []Profile{
	{Name: "dedup", Suite: PARSEC, Domain: "data compression", MeanDuration: 6 * time.Minute, MeanPowerW: 310, PackageMB: 750, DurationCV: 0.18, PowerCV: 0.07},
	{Name: "netdedup", Suite: PARSEC, Domain: "data compression", MeanDuration: 8 * time.Minute, MeanPowerW: 300, PackageMB: 780, DurationCV: 0.20, PowerCV: 0.08},
	{Name: "canneal", Suite: PARSEC, Domain: "engineering", MeanDuration: 14 * time.Minute, MeanPowerW: 290, PackageMB: 420, DurationCV: 0.15, PowerCV: 0.06},
	{Name: "blackscholes", Suite: PARSEC, Domain: "financial analysis", MeanDuration: 4 * time.Minute, MeanPowerW: 330, PackageMB: 120, DurationCV: 0.10, PowerCV: 0.05},
	{Name: "swaptions", Suite: PARSEC, Domain: "financial analysis", MeanDuration: 9 * time.Minute, MeanPowerW: 340, PackageMB: 95, DurationCV: 0.12, PowerCV: 0.05},
	{Name: "data-caching", Suite: CloudSuite, Domain: "in-memory caching", MeanDuration: 20 * time.Minute, MeanPowerW: 260, PackageMB: 900, DurationCV: 0.22, PowerCV: 0.09},
	{Name: "graph-analytics", Suite: CloudSuite, Domain: "graph analytics", MeanDuration: 32 * time.Minute, MeanPowerW: 320, PackageMB: 1400, DurationCV: 0.25, PowerCV: 0.08},
	{Name: "web-serving", Suite: CloudSuite, Domain: "web serving", MeanDuration: 15 * time.Minute, MeanPowerW: 240, PackageMB: 1100, DurationCV: 0.20, PowerCV: 0.10},
	{Name: "memory-analytics", Suite: CloudSuite, Domain: "in-memory analytics", MeanDuration: 26 * time.Minute, MeanPowerW: 305, PackageMB: 1250, DurationCV: 0.24, PowerCV: 0.08},
	{Name: "media-streaming", Suite: CloudSuite, Domain: "media streaming", MeanDuration: 18 * time.Minute, MeanPowerW: 275, PackageMB: 1600, DurationCV: 0.21, PowerCV: 0.09},
}

var byName = func() map[string]Profile {
	m := make(map[string]Profile, len(profiles))
	for _, p := range profiles {
		m[p.Name] = p
	}
	return m
}()

// All returns the full benchmark list, sorted by name for stable iteration.
func All() []Profile {
	out := append([]Profile(nil), profiles...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all benchmark names, sorted.
func Names() []string {
	ps := All()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Lookup returns the profile for a benchmark name.
func Lookup(name string) (Profile, error) {
	p, ok := byName[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// Actuals are one job run's realized duration and energy, drawn around the
// profile means.
type Actuals struct {
	Duration time.Duration
	Energy   units.KWh
}

// Sample draws the actual duration and energy of one run using the
// profile's coefficients of variation. Durations are floored at 10% of the
// mean so pathological draws cannot go non-positive.
func (p Profile) Sample(rng *stats.Rand) Actuals {
	d := rng.Normal(1, p.DurationCV)
	if d < 0.1 {
		d = 0.1
	}
	w := rng.Normal(1, p.PowerCV)
	if w < 0.5 {
		w = 0.5
	}
	dur := time.Duration(float64(p.MeanDuration) * d)
	return Actuals{
		Duration: dur,
		Energy:   units.KWh(p.MeanPowerW * w / 1000 * dur.Hours()),
	}
}
