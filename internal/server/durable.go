package server

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/obs"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/units"
	"waterwise/internal/wal"
)

// The durability layer. With Config.DataDir set, every accepted job and
// every scheduling round is appended to a write-ahead log (internal/wal)
// before it is acknowledged, and settled scheduler state is snapshotted
// periodically. Recovery is replay: because the whole stack is
// deterministic — same environment, same scheduler, same pending order,
// same machine-model state in, same decisions out (the warm≡cold and
// sharded≡unsharded equivalence proofs of earlier PRs are what make this
// safe) — a restarted server restores the newest snapshot and re-runs the
// logged rounds through cluster.Sim, re-deriving decisions bit-for-bit
// rather than trusting persisted solver state. The logged decisions act
// as a checksum: replay validates every re-derived placement against the
// logged one and refuses to serve from a diverged log.
//
// What is durable when: records are appended per event but fsynced by
// group commit — on the SyncInterval clock, and, crucially, before any
// decision is served (DecisionsPage syncs a dirty log before reading
// the ring), so a decision a client has seen can never be lost to a
// crash. A crash loses at most the last interval's unserved rounds —
// every one of which replay re-derives — plus jobs acknowledged in that
// window, which the client must retry; the idempotent dedupe index
// makes the retry safe (same id + same spec digest returns the original
// id instead of ErrDuplicateID).
//
// Two mutations are deliberately not logged, because they re-derive:
// empty rounds (no pending work — they only advance the round clock,
// which the next logged round re-establishes) and horizon-overrun
// abandonment (the recovered loop re-runs the abandon round from the
// restored queue state).

// ErrReplayDiverged reports a recovery replay whose re-derived decisions
// do not match the logged ones — the data directory belongs to a
// different configuration (environment, scheduler, tolerance, round
// cadence) than the server was built with.
var ErrReplayDiverged = errors.New("server: wal replay diverged from logged decisions")

// WAL record types and the snapshot format version.
const (
	recJob      = 1 // one accepted job, appended before Submit acknowledges
	recRound    = 2 // one scheduling round that stepped the simulator
	snapVersion = 1
)

// zeroTimeSentinel encodes time.Time{} (distinguishable from any real
// instant, which UnixNano cannot represent as MinInt64).
const zeroTimeSentinel = int64(math.MinInt64)

// specDigest is the idempotency key of a submission: FNV-1a over the
// canonical client-visible spec, computed before Submit-defaulting so a
// client retrying the same request (zero Submit instant included)
// produces the same digest the original acceptance recorded.
func specDigest(spec JobSpec) uint64 {
	h := fnv.New64a()
	var b [8]byte
	wu := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	ws := func(s string) { wu(uint64(len(s))); io.WriteString(h, s) }
	if spec.ID != nil {
		wu(1)
		wu(uint64(int64(*spec.ID)))
	} else {
		wu(0)
	}
	ws(spec.Benchmark)
	ws(string(spec.Home))
	if spec.Submit.IsZero() {
		wu(0)
	} else {
		wu(1)
		wu(uint64(spec.Submit.UTC().UnixNano()))
	}
	wu(math.Float64bits(spec.DurationSec))
	wu(math.Float64bits(spec.EnergyKWh))
	wu(math.Float64bits(spec.EstDurationSec))
	wu(math.Float64bits(spec.EstEnergyKWh))
	return h.Sum64()
}

// walEnc builds a little-endian binary payload.
type walEnc struct{ b []byte }

func (e *walEnc) u8(v uint8) { e.b = append(e.b, v) }
func (e *walEnc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *walEnc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *walEnc) i64(v int64)   { e.u64(uint64(v)) }
func (e *walEnc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *walEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *walEnc) time(t time.Time) {
	if t.IsZero() {
		e.i64(zeroTimeSentinel)
		return
	}
	e.i64(t.UnixNano())
}

// walDec reads a walEnc payload, latching the first error.
type walDec struct {
	b   []byte
	off int
	err error
}

func (d *walDec) fail() {
	if d.err == nil {
		d.err = errors.New("server: truncated wal payload")
	}
}
func (d *walDec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *walDec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *walDec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *walDec) i64() int64   { return int64(d.u64()) }
func (d *walDec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *walDec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}
func (d *walDec) time() time.Time {
	n := d.i64()
	if n == zeroTimeSentinel {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

func encJob(e *walEnc, j *trace.Job) {
	e.i64(int64(j.ID))
	e.time(j.Submit)
	e.str(j.Benchmark)
	e.str(string(j.Home))
	e.i64(int64(j.Duration))
	e.f64(float64(j.Energy))
	e.i64(int64(j.EstDuration))
	e.f64(float64(j.EstEnergy))
}

func decJob(d *walDec) *trace.Job {
	return &trace.Job{
		ID:          int(d.i64()),
		Submit:      d.time(),
		Benchmark:   d.str(),
		Home:        region.ID(d.str()),
		Duration:    time.Duration(d.i64()),
		Energy:      units.KWh(d.f64()),
		EstDuration: time.Duration(d.i64()),
		EstEnergy:   units.KWh(d.f64()),
	}
}

func encDecision(e *walEnc, dd Decision) {
	e.u64(dd.Seq)
	e.i64(int64(dd.JobID))
	e.str(string(dd.Region))
	e.time(dd.Round)
	e.time(dd.Start)
	e.time(dd.Finish)
	e.f64(dd.CarbonG)
	e.f64(dd.WaterL)
	e.time(dd.DecidedWall)
}

func decDecision(d *walDec) Decision {
	return Decision{
		Seq:         d.u64(),
		JobID:       int(d.i64()),
		Region:      region.ID(d.str()),
		Round:       d.time(),
		Start:       d.time(),
		Finish:      d.time(),
		CarbonG:     d.f64(),
		WaterL:      d.f64(),
		DecidedWall: d.time(),
	}
}

// encodeJobRecord frames a recJob: the resolved job plus the spec digest
// the dedupe index remembers.
func encodeJobRecord(j *trace.Job, digest uint64) []byte {
	var e walEnc
	e.u8(recJob)
	e.u64(digest)
	encJob(&e, j)
	return e.b
}

// encodeRoundRecord frames a recRound: the round index, the decision
// sequence after the round, and the round's decisions in commit order.
func encodeRoundRecord(k int64, decSeqAfter uint64, ds []Decision) []byte {
	var e walEnc
	e.u8(recRound)
	e.i64(k)
	e.u64(decSeqAfter)
	e.u32(uint32(len(ds)))
	for _, dd := range ds {
		encDecision(&e, dd)
	}
	return e.b
}

// WALStatus is the "wal" block of /v1/status: the log's on-disk
// accounting plus what the last recovery did.
type WALStatus struct {
	wal.Stats
	// RecoveryMs is how long the restart path took (snapshot restore +
	// log replay); zero for a server that started fresh.
	RecoveryMs float64 `json:"recovery_ms"`
	// RecoveredRecords counts the log records replayed at startup;
	// RecoveredSnapshot reports whether a snapshot seeded the state.
	RecoveredRecords  uint64 `json:"recovered_records"`
	RecoveredSnapshot bool   `json:"recovered_snapshot"`
	// Deduped counts idempotent re-submits served from the dedupe index
	// (original id returned, no new job created).
	Deduped uint64 `json:"deduped_total"`
}

// openDurable attaches the WAL at cfg.DataDir and runs the restart path:
// load the newest valid snapshot, replay the log tail through the
// simulator, and leave the server ready to Start exactly where the dead
// process would have resumed. Called from New before the server is
// visible to anyone; no locking needed.
func (s *Server) openDurable() error {
	l, err := wal.Open(wal.Options{Dir: s.cfg.DataDir, SegmentBytes: s.cfg.WALSegmentBytes, SyncDelay: s.cfg.WALSyncDelay})
	if err != nil {
		return err
	}
	t0 := time.Now()
	payload, covered, err := l.LatestSnapshot()
	if err != nil {
		l.Close()
		return err
	}
	if covered+1 < l.FirstIndex() {
		// Retention deleted segments trusting a newer snapshot that is now
		// unreadable; the surviving snapshot leaves a gap nothing can fill.
		l.Close()
		return fmt.Errorf("server: wal records %d..%d lost (snapshot covers %d, log starts at %d)",
			covered+1, l.FirstIndex()-1, covered, l.FirstIndex())
	}
	s.wlog = l
	s.lastWalSync = time.Now()
	if payload != nil {
		if err := s.restoreSnapshot(payload); err != nil {
			l.Close()
			s.wlog = nil
			return fmt.Errorf("server: restoring snapshot: %w", err)
		}
		s.recoveredSnap = true
	}
	if err := l.Replay(covered, func(idx uint64, p []byte) error {
		s.recoveredRecs++
		if err := s.replayRecord(p); err != nil {
			return fmt.Errorf("record %d: %w", idx, err)
		}
		return nil
	}); err != nil {
		l.Close()
		s.wlog = nil
		return fmt.Errorf("server: replaying wal: %w", err)
	}
	s.recoveryDur = time.Since(t0)
	return nil
}

// replayRecord applies one logged record during recovery.
func (s *Server) replayRecord(payload []byte) error {
	d := &walDec{b: payload}
	switch typ := d.u8(); typ {
	case recJob:
		digest := d.u64()
		job := decJob(d)
		if d.err != nil {
			return d.err
		}
		s.replayJob(job, digest)
		return nil
	case recRound:
		k := d.i64()
		decSeqAfter := d.u64()
		n := int(d.u32())
		if d.err != nil {
			return d.err
		}
		ds := make([]Decision, n)
		for i := range ds {
			ds[i] = decDecision(d)
		}
		if d.err != nil {
			return d.err
		}
		return s.replayRound(k, decSeqAfter, ds)
	default:
		return fmt.Errorf("server: unknown wal record type %d", typ)
	}
}

// replayJob re-applies an accepted submission: the validation already
// happened before the record was written, so this is the commit half of
// Submit.
func (s *Server) replayJob(job *trace.Job, digest uint64) {
	if job.ID >= s.autoID {
		s.autoID = job.ID + 1
	}
	s.live[job.ID] = digest
	heap.Push(&s.future, job)
	s.accepted++
}

// replayRound re-runs one logged scheduling round: same ingest, same
// simulator step, and therefore — determinism is the durability
// foundation here — the same decisions, which are validated field by
// field against the logged ones. The ring entries are taken from the log
// so the original DecidedWall stamps survive the restart.
func (s *Server) replayRound(k int64, decSeqAfter uint64, logged []Decision) error {
	now := s.cfg.Env.Start.Add(time.Duration(k) * s.cfg.Round)
	s.nextK = k + 1
	s.simNow = now
	for len(s.future) > 0 && !s.future[0].Submit.After(now) {
		job := heap.Pop(&s.future).(*trace.Job)
		s.sim.Submit(job, now)
	}
	if !now.Before(s.cfg.Env.End()) || s.sim.Pending() == 0 {
		return fmt.Errorf("%w: logged round %d cannot re-run (pending %d)", ErrReplayDiverged, k, s.sim.Pending())
	}
	t0 := time.Now()
	outcomes, err := s.sim.Step(now)
	s.overheadSum += time.Since(t0)
	s.rounds++
	if err != nil {
		return fmt.Errorf("server: replaying round %d: %w", k, err)
	}
	if len(outcomes) != len(logged) {
		return fmt.Errorf("%w: round %d re-derived %d decisions, log has %d", ErrReplayDiverged, k, len(outcomes), len(logged))
	}
	for i := range outcomes {
		o, ld := &outcomes[i], logged[i]
		s.decSeq++
		s.decided++
		if ld.Seq != s.decSeq || ld.JobID != o.Job.ID || ld.Region != o.Region ||
			!ld.Start.Equal(o.Start) || !ld.Finish.Equal(o.Finish) {
			return fmt.Errorf("%w: round %d decision %d: re-derived job %d -> %s [%v, %v] seq %d, log says job %d -> %s [%v, %v] seq %d",
				ErrReplayDiverged, k, i, o.Job.ID, o.Region, o.Start, o.Finish, s.decSeq,
				ld.JobID, ld.Region, ld.Start, ld.Finish, ld.Seq)
		}
		s.recordDecidedLocked(o.Job.ID)
		s.logDecisionLocked(ld)
	}
	if s.decSeq != decSeqAfter {
		return fmt.Errorf("%w: round %d ends at seq %d, log says %d", ErrReplayDiverged, k, s.decSeq, decSeqAfter)
	}
	return nil
}

// recordDecidedLocked moves a job's dedupe entry from the live set to the
// bounded decided index, so a client retrying a decided job gets its
// original id back instead of ErrDuplicateID. Called with mu held.
func (s *Server) recordDecidedLocked(id int) {
	digest, ok := s.live[id]
	if !ok {
		return
	}
	delete(s.live, id)
	if _, exists := s.decidedIdx[id]; !exists {
		s.decidedFIFO = append(s.decidedFIFO, id)
	}
	s.decidedIdx[id] = digest
	for len(s.decidedFIFO) > s.cfg.DedupeCap {
		victim := s.decidedFIFO[0]
		s.decidedFIFO = s.decidedFIFO[1:]
		delete(s.decidedIdx, victim)
	}
}

// walAppendLocked appends one record; an I/O failure is fatal to the
// round loop (serving un-durable acceptances would break the recovery
// contract). Called with mu held.
func (s *Server) walAppendLocked(payload []byte) error {
	if _, err := s.wlog.Append(payload); err != nil {
		err = fmt.Errorf("server: wal append: %w", err)
		if s.runErr == nil {
			s.runErr = err
		}
		return err
	}
	s.walDirty = true
	return nil
}

// walSyncLocked is the group-commit point. Called with mu held.
func (s *Server) walSyncLocked() error {
	if err := s.wlog.Sync(); err != nil {
		err = fmt.Errorf("server: wal sync: %w", err)
		if s.runErr == nil {
			s.runErr = err
		}
		return err
	}
	s.walDirty = false
	s.lastWalSync = time.Now()
	return nil
}

// walSyncIfDirtyLocked group-commits any appended-but-unsynced records.
// It is the read-path commit point: serving a decision (or sealing the
// backlog at Start) forces everything behind it onto disk first, so
// syncs are driven by the reader rate, not the round rate — in
// accelerated mode rounds fire thousands of times a second and an fsync
// apiece would serialize the whole pipeline on the disk. Called with mu
// held; a no-op without a log or with a clean one.
func (s *Server) walSyncIfDirtyLocked() error {
	if s.wlog == nil || !s.walDirty {
		return nil
	}
	return s.walSyncLocked()
}

// walRoundLocked logs one completed scheduling round and drives the
// sync and snapshot cadences. The round record is appended before the
// round's decisions can reach a reader, but fsynced only on the
// SyncInterval clock (or by the next read — see walSyncIfDirtyLocked):
// a crash loses at most the last interval's rounds, every one of which
// replay re-derives, and never a decision that was already served.
// Called with mu held, after the round's decisions are in the ring.
//
// rt, when non-nil, receives the round's durability stage timings
// (append, fsync, snapshot) for the round trace; a nil rt skips every
// clock read so the obs-off path pays nothing here.
func (s *Server) walRoundLocked(k int64, ds []Decision, rt *obs.RoundTrace) {
	var mark time.Time
	if rt != nil {
		mark = time.Now()
	}
	if s.walAppendLocked(encodeRoundRecord(k, s.decSeq, ds)) != nil {
		return
	}
	if rt != nil {
		rt.Stages[obs.StageWALAppend] = time.Since(mark)
	}
	if time.Since(s.lastWalSync) >= s.cfg.SyncInterval {
		if rt != nil {
			mark = time.Now()
		}
		if s.walSyncLocked() != nil {
			return
		}
		if rt != nil {
			rt.Stages[obs.StageWALFsync] = time.Since(mark)
		}
	}
	s.sinceSnap++
	if s.sinceSnap >= s.cfg.SnapshotEvery {
		if rt != nil {
			mark = time.Now()
		}
		_ = s.snapshotLocked()
		if rt != nil {
			rt.Stages[obs.StageSnapshot] = time.Since(mark)
		}
	}
}

// snapshotLocked writes a snapshot of the settled (between-rounds) state
// covering every WAL record appended so far. Failures are reported but
// not fatal: the log alone still recovers. Called with mu held.
func (s *Server) snapshotLocked() error {
	if s.wlog == nil {
		return nil
	}
	// Commit the log first so the snapshot never claims coverage of
	// records a crash could still drop from the write buffer.
	if err := s.walSyncIfDirtyLocked(); err != nil {
		return err
	}
	if err := s.wlog.WriteSnapshot(s.wlog.Appended(), s.marshalSnapshotLocked()); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	s.sinceSnap = 0
	return nil
}

// marshalSnapshotLocked encodes everything recovery cannot re-derive
// from the log tail: the round clock, counters, ingest queue, dedupe
// indices, the simulator's pending set and machine-model reservations,
// and the decision ring (so a gateway cursor behind the snapshot is
// still servable after restart). Scheduler-internal state (warm bases)
// is deliberately absent: the warm≡cold equivalence proof means a cold
// scheduler re-derives identical decisions.
func (s *Server) marshalSnapshotLocked() []byte {
	var e walEnc
	e.u32(snapVersion)
	e.i64(s.nextK)
	e.time(s.simNow)
	e.u64(s.decSeq)
	e.u64(s.accepted)
	e.u64(s.rejected)
	e.u64(s.rounds)
	e.u64(s.decided)
	e.u64(s.deduped)
	e.i64(int64(s.unscheduled))
	e.i64(int64(s.overheadSum))
	e.i64(int64(s.autoID))
	// Ingest queue, in heap-array order (re-heapified on restore).
	e.u32(uint32(len(s.future)))
	for _, j := range s.future {
		encJob(&e, j)
	}
	// Live dedupe entries (id -> spec digest); iteration order is
	// irrelevant, it restores into a map.
	e.u32(uint32(len(s.live)))
	for id, digest := range s.live {
		e.i64(int64(id))
		e.u64(digest)
	}
	// Decided dedupe index, in FIFO order so eviction resumes correctly.
	e.u32(uint32(len(s.decidedFIFO)))
	for _, id := range s.decidedFIFO {
		e.i64(int64(id))
		e.u64(s.decidedIdx[id])
	}
	// Simulator: pending jobs with slack-manager bookkeeping, and the
	// per-server reservation state.
	pending := s.sim.PendingSnapshot()
	e.u32(uint32(len(pending)))
	for i := range pending {
		encJob(&e, pending[i].Job)
		e.time(pending[i].FirstSeen)
		e.u32(uint32(pending[i].Deferrals))
	}
	busy := s.sim.BusySnapshot()
	e.u32(uint32(len(busy)))
	for _, id := range s.cfg.Env.IDs() { // stable order
		until, ok := busy[id]
		if !ok {
			continue
		}
		e.str(string(id))
		e.u32(uint32(len(until)))
		for _, t := range until {
			e.time(t)
		}
	}
	// Decision ring, oldest first.
	n := len(s.decisions)
	e.u32(uint32(n))
	for i := 0; i < n; i++ {
		encDecision(&e, s.decisions[(s.decHead+i)%n])
	}
	return e.b
}

// restoreSnapshot is marshalSnapshotLocked's inverse. Called from
// openDurable on a freshly-constructed server.
func (s *Server) restoreSnapshot(payload []byte) error {
	d := &walDec{b: payload}
	if v := d.u32(); v != snapVersion {
		return fmt.Errorf("server: snapshot version %d, want %d", v, snapVersion)
	}
	s.nextK = d.i64()
	s.simNow = d.time()
	s.decSeq = d.u64()
	s.accepted = d.u64()
	s.rejected = d.u64()
	s.rounds = d.u64()
	s.decided = d.u64()
	s.deduped = d.u64()
	s.unscheduled = int(d.i64())
	s.overheadSum = time.Duration(d.i64())
	s.autoID = int(d.i64())
	nf := int(d.u32())
	if d.err != nil {
		return d.err
	}
	s.future = make(futureHeap, 0, nf)
	for i := 0; i < nf; i++ {
		s.future = append(s.future, decJob(d))
	}
	heap.Init(&s.future)
	nl := int(d.u32())
	if d.err != nil {
		return d.err
	}
	for i := 0; i < nl; i++ {
		id := int(d.i64())
		s.live[id] = d.u64()
	}
	nd := int(d.u32())
	if d.err != nil {
		return d.err
	}
	for i := 0; i < nd; i++ {
		id := int(d.i64())
		s.decidedIdx[id] = d.u64()
		s.decidedFIFO = append(s.decidedFIFO, id)
	}
	np := int(d.u32())
	if d.err != nil {
		return d.err
	}
	pending := make([]cluster.PendingJob, 0, np)
	for i := 0; i < np; i++ {
		pj := cluster.PendingJob{Job: decJob(d)}
		pj.FirstSeen = d.time()
		pj.Deferrals = int(d.u32())
		pending = append(pending, pj)
	}
	s.sim.RestorePending(pending)
	nb := int(d.u32())
	if d.err != nil {
		return d.err
	}
	busy := make(map[region.ID][]time.Time, nb)
	for i := 0; i < nb; i++ {
		id := region.ID(d.str())
		ns := int(d.u32())
		if d.err != nil {
			return d.err
		}
		until := make([]time.Time, ns)
		for j := range until {
			until[j] = d.time()
		}
		busy[id] = until
	}
	if d.err == nil {
		if err := s.sim.RestoreBusy(busy); err != nil {
			return err
		}
	}
	nr := int(d.u32())
	if d.err != nil {
		return d.err
	}
	for i := 0; i < nr; i++ {
		s.logDecisionLocked(decDecision(d))
	}
	return d.err
}

// Crash simulates a process kill for fault-injection tests: the round
// loop halts, the WAL drops everything buffered since its last sync and
// closes without a final snapshot, and queued state simply evaporates —
// exactly what SIGKILL leaves on disk. Recovery happens by constructing
// a new server over the same DataDir.
func (s *Server) Crash() {
	s.mu.Lock()
	started := s.started
	if s.stopped {
		s.mu.Unlock()
		if started {
			<-s.loopDone
		}
		return
	}
	s.stopped = true
	close(s.stopCh)
	if s.wlog != nil {
		s.wlog.Crash()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if started {
		<-s.loopDone
	}
}

// NextAutoID reports the next id an ID-less submission would receive —
// after recovery, the floor a fleet gateway must raise its own id
// counter to so restarted shards never re-mint a recovered job's id.
func (s *Server) NextAutoID() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.autoID
}

// walStatusLocked builds the /v1/status wal block. Called with mu held.
func (s *Server) walStatusLocked() *WALStatus {
	if s.wlog == nil {
		return nil
	}
	return &WALStatus{
		Stats:             s.wlog.Stats(),
		RecoveryMs:        float64(s.recoveryDur.Microseconds()) / 1000,
		RecoveredRecords:  s.recoveredRecs,
		RecoveredSnapshot: s.recoveredSnap,
		Deduped:           s.deduped,
	}
}
