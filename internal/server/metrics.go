package server

import (
	"fmt"
	"net/http"
	"sort"

	"waterwise/internal/feed"
	"waterwise/internal/region"
)

// handleMetrics serves Prometheus text-format gauges and counters for the
// service: ingest, rounds, decisions, queue depth, and — when the scheduler
// exposes them — solver instrumentation (nodes, simplex iterations,
// warm-start hit rate).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(s.MetricsText())
}

// MetricsText renders the full exposition as bytes. Split from the HTTP
// handler because the metrics flight recorder scrapes it in-process on
// the round clock — one renderer, two consumers.
func (s *Server) MetricsText() []byte {
	st := s.Status()
	var b []byte
	counter := func(name, help string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)...)
	}
	gauge := func(name, help string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)...)
	}
	b = AppendBuildInfo(b)
	counter("waterwise_jobs_accepted_total", "Jobs accepted into the ingest queue.", float64(st.Accepted))
	counter("waterwise_jobs_rejected_total", "Jobs rejected (backpressure, validation, duplicates).", float64(st.Rejected))
	counter("waterwise_rounds_total", "Scheduling rounds run.", float64(st.Rounds))
	counter("waterwise_decisions_total", "Placement decisions committed.", float64(st.Decisions))
	counter("waterwise_jobs_unscheduled_total", "Jobs abandoned without a placement.", float64(st.Unscheduled))
	gauge("waterwise_queue_pending", "Jobs awaiting a placement decision.", float64(st.Pending))
	gauge("waterwise_queue_future", "Accepted jobs not yet due for a round.", float64(st.Future))
	gauge("waterwise_queue_cap", "Ingest queue capacity (backpressure threshold).", float64(st.QueueCap))
	b = AppendObsMetrics(b, s.ObsSnapshots(), "waterwise_", "", true)
	// Per-region free servers, in stable region order.
	ids := make([]string, 0, len(st.Free))
	for id := range st.Free {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	b = append(b, "# HELP waterwise_region_free_servers Servers free per region at the simulated clock.\n# TYPE waterwise_region_free_servers gauge\n"...)
	for _, id := range ids {
		b = append(b, fmt.Sprintf("waterwise_region_free_servers{region=%q} %d\n", id, st.Free[region.ID(id)])...)
	}
	if st.Solver != nil {
		counter("waterwise_solver_nodes_total", "Branch-and-bound nodes across all rounds.", float64(st.Solver.Nodes))
		counter("waterwise_solver_simplex_iters_total", "Simplex pivots across all rounds.", float64(st.Solver.SimplexIters))
		counter("waterwise_solver_warm_starts_total", "LP solves served by a warm start.", float64(st.Solver.WarmStarts))
		counter("waterwise_solver_cold_starts_total", "LP solves run from scratch.", float64(st.Solver.ColdStarts))
		counter("waterwise_solver_wall_seconds_total", "Aggregate solver wall time.", st.Solver.Wall.Seconds())
	}
	if st.WAL != nil {
		counter("waterwise_jobs_deduped_total", "Idempotent re-submits served from the dedupe index.", float64(st.WAL.Deduped))
		gauge("waterwise_wal_segments", "Write-ahead log segment files on disk.", float64(st.WAL.Segments))
		gauge("waterwise_wal_bytes", "Write-ahead log size on disk (snapshots excluded).", float64(st.WAL.Bytes))
		counter("waterwise_wal_records_appended_total", "Records appended to the write-ahead log.", float64(st.WAL.Appended))
		counter("waterwise_wal_records_synced_total", "Appended records made durable by an fsync.", float64(st.WAL.Synced))
		counter("waterwise_wal_fsyncs_total", "Fsync batches flushed to the log.", float64(st.WAL.Fsyncs))
		gauge("waterwise_wal_fsync_stall_p50_ms", "Median fsync stall over the recent window.", float64(st.WAL.FsyncP50)/1e6)
		gauge("waterwise_wal_fsync_stall_p99_ms", "99th-percentile fsync stall over the recent window.", float64(st.WAL.FsyncP99)/1e6)
		counter("waterwise_wal_snapshots_total", "State snapshots written.", float64(st.WAL.Snapshots))
		counter("waterwise_wal_truncated_bytes_total", "Torn-tail bytes discarded at the last recovery.", float64(st.WAL.TruncatedBytes))
		gauge("waterwise_wal_recovery_ms", "Wall time of the last restart's snapshot restore + replay.", st.WAL.RecoveryMs)
		counter("waterwise_wal_recovered_records_total", "Log records replayed at the last restart.", float64(st.WAL.RecoveredRecords))
	}
	b = AppendFeedMetrics(b, st.Feed)
	if s.recorder != nil {
		b = s.recorder.AppendMetrics(b, "waterwise_")
	}
	return b
}

// AppendFeedMetrics renders the environment-feed health block — provider
// identity, staleness, and fetch/cache accounting — in Prometheus text
// format. Shared by this server's /metrics and the fleet gateway's
// (which reports the one provider all shards share exactly once, rather
// than once per shard).
func AppendFeedMetrics(b []byte, h *feed.Health) []byte {
	if h == nil {
		return b
	}
	label := func(name, help, typ string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n%s{provider=%q} %g\n",
			name, help, name, typ, name, h.Provider, v)...)
	}
	stale := 0.0
	if h.Stale {
		stale = 1
	}
	label("waterwise_feed_staleness_seconds", "Age of the oldest region's last good feed reading.", "gauge", h.StalenessSeconds)
	label("waterwise_feed_stale", "1 when any region's feed reading is older than the freshness target.", "gauge", stale)
	label("waterwise_feed_fetches_total", "Upstream feed fetches attempted.", "counter", float64(h.Fetches))
	label("waterwise_feed_fetch_errors_total", "Upstream feed fetches that failed (timeouts, 429s, bad payloads).", "counter", float64(h.FetchErrors))
	label("waterwise_feed_cache_hits_total", "Feed reads served inside the freshness window.", "counter", float64(h.CacheHits))
	label("waterwise_feed_cache_misses_total", "Feed reads past the freshness window (served stale or forecast).", "counter", float64(h.CacheMisses))
	label("waterwise_feed_forecast_served_total", "Feed reads degraded to the forecast fallback.", "counter", float64(h.ForecastServed))
	return b
}
