package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/obs"
	"waterwise/internal/tsdb"
)

// TestRecorderEquivalence pins the flight recorder's honesty bar: a
// replay with the recorder scraping every round (sync, with SLO
// objectives armed) produces the same decisions as one with no recorder
// at all, decision for decision. Recording is measurement only.
func TestRecorderEquivalence(t *testing.T) {
	run := func(record bool) *cluster.Result {
		env := testEnv(t)
		jobs := genTrace(t, env, 3000, 6)
		cfg := Config{
			Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
		}
		if record {
			cfg.Record = RecordConfig{
				Enable: true,
				Sync:   true,
				SLOs: []tsdb.Objective{
					{Name: "availability", Target: 0.999,
						Bad: "waterwise_jobs_rejected_total", Good: "waterwise_jobs_accepted_total"},
					{Name: "latency", Target: 0.99,
						Family: "waterwise_decision_latency_seconds", ThresholdMs: 250},
				},
			}
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		for _, j := range jobs {
			if _, err := srv.Submit(specFor(j)); err != nil {
				t.Fatal(err)
			}
		}
		drainServer(t, srv)
		if record {
			// The recorder must actually have recorded: rounds ran, so the
			// store holds history.
			if st := srv.Recorder().Stats(); st.Scrapes == 0 || st.Samples == 0 {
				t.Fatalf("recorder idle during replay: %+v", st)
			}
		}
		return srv.Result()
	}
	on, off := run(true), run(false)
	if len(on.Outcomes) != len(off.Outcomes) {
		t.Fatalf("outcome counts differ: recorder-on %d, recorder-off %d", len(on.Outcomes), len(off.Outcomes))
	}
	for i := range on.Outcomes {
		a, b := on.Outcomes[i], off.Outcomes[i]
		if a.Job.ID != b.Job.ID || a.Region != b.Region || !a.Start.Equal(b.Start) || !a.Finish.Equal(b.Finish) {
			t.Fatalf("outcome %d differs: recorder-on job %d->%s [%v,%v], recorder-off job %d->%s [%v,%v]",
				i, a.Job.ID, a.Region, a.Start, a.Finish, b.Job.ID, b.Region, b.Start, b.Finish)
		}
	}
}

// TestRecorderEndpoints replays a trace with recording on and exercises
// the HTTP query surface: /v1/query over a recorded counter and
// histogram, /v1/alerts, and the recorder's own exposition block passing
// the strict lint.
func TestRecorderEndpoints(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 3000, 6)
	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
		Record: RecordConfig{Enable: true, Sync: true,
			SLOs: []tsdb.Objective{{Name: "availability", Target: 0.999,
				Bad: "waterwise_jobs_rejected_total", Good: "waterwise_jobs_accepted_total"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	drainServer(t, srv)

	getJSON := func(path string, v interface{}) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	// Raw history of the decisions counter anchors the increase check:
	// the whole-history increase is last-sample minus first-sample (the
	// recorder's first scrape lands after round 1, so decisions committed
	// before it are — correctly — not part of recorded history).
	var raw QueryResponse
	if code := getJSON(PathQuery+"?series=waterwise_decisions_total&fn=raw", &raw); code != http.StatusOK || len(raw.Samples) == 0 {
		t.Fatalf("raw query: status %d, %d samples", code, len(raw.Samples))
	}
	decided := float64(len(srv.Result().Outcomes))
	last := raw.Samples[len(raw.Samples)-1]
	if last.Value != decided {
		t.Errorf("last recorded decisions sample = %g, want %g", last.Value, decided)
	}
	var q QueryResponse
	if code := getJSON(PathQuery+"?series=waterwise_decisions_total&fn=increase&window=1000000", &q); code != http.StatusOK {
		t.Fatalf("query status %d: %+v", code, q)
	}
	if want := last.Value - raw.Samples[0].Value; !q.Ok || q.Value != want {
		t.Errorf("windowed increase of decisions = %g (ok=%v), want %g", q.Value, q.Ok, want)
	}
	if code := getJSON(PathQuery+"?series=waterwise_decision_latency_seconds&fn=quantile&q=0.99&window=1000000", &q); code != http.StatusOK || !q.Ok || q.Value <= 0 {
		t.Errorf("windowed p99 = %+v (status %d)", q, code)
	}
	if code := getJSON(PathQuery+"?series=waterwise_decisions_total&fn=rate", &q); code != http.StatusBadRequest {
		t.Errorf("rate without window: status %d", code)
	}
	if code := getJSON(PathQuery, &q); code != http.StatusBadRequest {
		t.Errorf("query without series: status %d", code)
	}

	var al AlertsResponse
	if code := getJSON(PathAlerts, &al); code != http.StatusOK {
		t.Fatalf("alerts status %d", code)
	}
	// One objective, two default rules; an accelerated clean replay must
	// not trip availability.
	if len(al.Alerts) != 2 || al.Firing != 0 {
		t.Errorf("alerts = %+v", al)
	}
	if al.Round == 0 {
		t.Error("alerts round is 0 after a replay")
	}

	// The exposition now carries the recorder's own block and build info,
	// and still lints.
	resp, err := http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	metrics := make([]byte, 0)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		metrics = append(metrics, buf[:n]...)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if err := obs.LintProm(metrics); err != nil {
		t.Fatalf("/metrics with recorder fails lint: %v", err)
	}
	fams, err := obs.ParseProm(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"waterwise_build_info", "waterwise_tsdb_series", "waterwise_alerts_firing", "waterwise_tsdb_scrapes_total"} {
		if fams[want] == nil {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	bi := fams["waterwise_build_info"]
	if len(bi.Samples) != 1 || bi.Samples[0].Value != 1 {
		t.Fatalf("build_info samples: %+v", bi.Samples)
	}
	for _, label := range []string{"version", "goversion", "gomaxprocs"} {
		if bi.Samples[0].Labels[label] == "" {
			t.Errorf("build_info missing %s label: %v", label, bi.Samples[0].Labels)
		}
	}
}

// TestQueryEndpointsWithoutRecorder pins the 404 contract when recording
// is off.
func TestQueryEndpointsWithoutRecorder(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{PathQuery + "?series=x", PathAlerts} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s without recorder: status %d, want 404", path, resp.StatusCode)
		}
	}
}
