package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
)

// sameDecisionStream asserts two decision streams are decision-for-
// decision identical — sequence, job, placement, times, footprints —
// excluding DecidedWall (a wall-clock stamp that legitimately differs
// between any two processes).
func sameDecisionStream(t *testing.T, got, want []Decision) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decision stream length %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.JobID != w.JobID || g.Region != w.Region ||
			!g.Round.Equal(w.Round) || !g.Start.Equal(w.Start) || !g.Finish.Equal(w.Finish) ||
			g.CarbonG != w.CarbonG || g.WaterL != w.WaterL {
			t.Fatalf("decision %d diverged:\n  got  %+v\n  want %+v", i, g, w)
		}
	}
}

// durableConfig is the standard test configuration with durability on.
func durableConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Env: testEnv(t), Scheduler: newScheduler(t, false), Tolerance: 0.5,
		Round: time.Minute, DataDir: dir, SnapshotEvery: 100,
	}
}

// throttledSched delays each round by a fixed wall-clock amount and
// delegates the decisions unchanged — it stretches an accelerated run in
// real time without touching its output, so a mid-run crash has a
// reliable window to land in on any machine.
type throttledSched struct {
	cluster.Scheduler
	delay time.Duration
}

func (s throttledSched) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	time.Sleep(s.delay)
	return s.Scheduler.Schedule(ctx)
}

// TestCrashRestartEquivalence is the server-level crash-equivalence
// proof: kill the service mid-run (dropping the WAL's unsynced buffer,
// as a SIGKILL would), restart it over the same data directory, and the
// full decision stream — recovered prefix plus post-restart suffix —
// must be identical to an uninterrupted run of the same trace.
func TestCrashRestartEquivalence(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 2000, 24)

	// Uninterrupted reference run (no durability).
	ref, err := New(Config{Env: testEnv(t), Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := ref.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	ref.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := ref.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ref.Stop()
	want := ref.Decisions(0, 0)
	if len(want) != len(jobs) {
		t.Fatalf("reference run decided %d of %d jobs", len(want), len(jobs))
	}

	// Durable run, killed mid-drain (throttled so the kill window is wide).
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.Scheduler = throttledSched{Scheduler: cfg.Scheduler, delay: 500 * time.Microsecond}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	for srv.Status().Decisions < uint64(len(jobs))/3 {
		time.Sleep(time.Millisecond)
	}
	srv.Crash()
	atCrash := srv.Status().Decisions
	if atCrash >= uint64(len(jobs)) {
		t.Fatalf("crash landed after the run finished (%d decisions); nothing recovered", atCrash)
	}

	// Restart over the same directory and finish the trace.
	srv2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Stop()
	st := srv2.Status()
	if st.WAL == nil {
		t.Fatal("recovered server reports no wal block")
	}
	if !st.WAL.RecoveredSnapshot && st.WAL.RecoveredRecords == 0 {
		t.Fatalf("recovery restored nothing: %+v", st.WAL)
	}
	srv2.Start()
	if err := srv2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	got := srv2.Decisions(0, 0)
	sameDecisionStream(t, got, want)
	for i, d := range got {
		if d.Seq != uint64(i+1) {
			t.Fatalf("seq gap after recovery: decision %d has seq %d", i, d.Seq)
		}
	}
}

// TestDrainSnapshotCleanRestart is the clean-shutdown fast path: after a
// Drain (and the Stop that follows), the snapshot must fully cover the
// log, so the next start replays zero records and resumes with identical
// state.
func TestDrainSnapshotCleanRestart(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 500, 12)
	dir := t.TempDir()
	srv, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	want := srv.Decisions(0, 0)
	wantStatus := srv.Status()
	srv.Stop()

	srv2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatalf("clean restart: %v", err)
	}
	defer srv2.Stop()
	st := srv2.Status()
	if st.WAL == nil || !st.WAL.RecoveredSnapshot {
		t.Fatalf("clean restart did not load a snapshot: %+v", st.WAL)
	}
	if st.WAL.RecoveredRecords != 0 {
		t.Fatalf("clean restart replayed %d records, want 0", st.WAL.RecoveredRecords)
	}
	if st.Accepted != wantStatus.Accepted || st.Decisions != wantStatus.Decisions || st.LastSeq != wantStatus.LastSeq {
		t.Fatalf("restarted state %+v, want accepted=%d decisions=%d lastSeq=%d",
			st, wantStatus.Accepted, wantStatus.Decisions, wantStatus.LastSeq)
	}
	sameDecisionStream(t, srv2.Decisions(0, 0), want)
}

// TestDedupeAcrossRestart: a client retrying an already-decided
// submission after the server restarts gets its original id back instead
// of ErrDuplicateID; the same id with a different spec still conflicts.
func TestDedupeAcrossRestart(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 1000, 12)
	dir := t.TempDir()
	srv, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Stop()

	srv2, err := New(durableConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop()
	accepted := srv2.Status().Accepted
	for _, j := range jobs[:10] {
		id, err := srv2.Submit(specFor(j))
		if err != nil || id != j.ID {
			t.Fatalf("retry of decided job %d: got (%d, %v), want (%d, nil)", j.ID, id, err, j.ID)
		}
	}
	st := srv2.Status()
	if st.Accepted != accepted {
		t.Fatalf("retries created jobs: accepted %d -> %d", accepted, st.Accepted)
	}
	if st.WAL == nil || st.WAL.Deduped != 10 {
		t.Fatalf("deduped counter: %+v, want 10", st.WAL)
	}
	// A conflicting spec for a live (not yet decided) id is still the
	// duplicate-id error — dedupe never silently swallows a different job.
	freshID := 1 << 20
	fresh := JobSpec{ID: &freshID, Benchmark: "canneal", Home: region.Zurich, Submit: testStart.Add(48 * time.Hour)}
	if _, err := srv2.Submit(fresh); err != nil {
		t.Fatal(err)
	}
	conflict := fresh
	conflict.EnergyKWh += 1
	if _, err := srv2.Submit(conflict); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("conflicting retry: got %v, want ErrDuplicateID", err)
	}
}

// TestWALStatusAndMetricsExposed: a durable server surfaces the wal
// block on /v1/status and the waterwise_wal_* series on /metrics, so an
// operator can watch fsync stalls and recovery cost without shell access
// to the data directory.
func TestWALStatusAndMetricsExposed(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 500, 12)
	srv, err := New(durableConfig(t, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var st Status
	resp, err := http.Get(ts.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.WAL == nil || st.WAL.Appended == 0 || st.WAL.Fsyncs == 0 || st.WAL.Segments == 0 {
		t.Fatalf("status wal block: %+v", st.WAL)
	}
	if st.WAL.Synced != st.WAL.Appended {
		t.Fatalf("drained server has unsynced records: %+v", st.WAL)
	}

	resp, err = http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, key := range []string{
		"waterwise_wal_records_appended_total",
		"waterwise_wal_records_synced_total",
		"waterwise_wal_fsyncs_total",
		"waterwise_wal_fsync_stall_p99_ms",
		"waterwise_wal_segments",
		"waterwise_wal_snapshots_total",
		"waterwise_jobs_deduped_total",
	} {
		if !strings.Contains(raw.String(), key) {
			t.Errorf("metrics missing %q", key)
		}
	}
}

// TestRecoveryRefusesDivergedConfig: recovering a data directory under a
// different round cadence re-derives different decisions than the log
// recorded; the replay checksum must refuse to serve rather than resume
// with renumbered history.
func TestRecoveryRefusesDivergedConfig(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 500, 12)
	dir := t.TempDir()
	cfg := durableConfig(t, dir)
	cfg.SnapshotEvery = 1 << 30 // keep everything in the log
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	for srv.Status().Decisions < 50 {
		time.Sleep(time.Millisecond)
	}
	// Serve the decisions so the group commit puts their rounds on disk:
	// divergence only matters for history somebody has seen.
	if got := srv.Decisions(0, 0); len(got) < 50 {
		t.Fatalf("served only %d decisions", len(got))
	}
	srv.Crash()

	bad := durableConfig(t, dir)
	bad.SnapshotEvery = 1 << 30
	bad.Round = 30 * time.Second
	if _, err := New(bad); !errors.Is(err, ErrReplayDiverged) {
		t.Fatalf("recovery under a different cadence: got %v, want ErrReplayDiverged", err)
	}
}

// TestPacedRecoveryResumesClock: in paced mode the simulated clock must
// continue from the recovered round clock after a restart, not reset to
// the environment start.
func TestPacedRecoveryResumesClock(t *testing.T) {
	dir := t.TempDir()
	cfg := func() Config {
		return Config{
			Env: testEnv(t), Scheduler: newScheduler(t, false), Tolerance: 0.5,
			Round: time.Minute, TimeScale: 600, DataDir: dir, // 100ms wall per round
		}
	}
	srv, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart.Add(time.Second)}); err != nil {
		t.Fatal(err)
	}
	srv.Start()
	deadline := time.Now().Add(30 * time.Second)
	for srv.Status().Decisions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("paced round never decided")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Stop()
	simNow := srv.Status().SimNow

	srv2, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop()
	if got := srv2.Status().SimNow; got.Before(simNow) {
		t.Fatalf("recovered clock %v behind pre-restart clock %v", got, simNow)
	}
	srv2.Start()
	// A live (zero-Submit) job must be stamped at or after the recovered
	// clock and decided in a later round — the clock never rewinds.
	if _, err := srv2.Submit(JobSpec{Benchmark: "canneal", Home: region.Zurich}); err != nil {
		t.Fatal(err)
	}
	for srv2.Status().Decisions < 2 {
		if time.Now().After(deadline) {
			t.Fatal("post-restart paced round never decided")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ds := srv2.Decisions(0, 0)
	last := ds[len(ds)-1]
	if last.Round.Before(simNow) {
		t.Fatalf("post-restart decision round %v precedes recovered clock %v", last.Round, simNow)
	}
}

// BenchmarkWALRecovery measures the cold restart path: recover a server
// from a log holding a full trace of decisions and no snapshot (the
// worst case — every record replays through the simulator). The trace
// mirrors scripts/bench.sh's fleet workload (~29k jobs over 24h).
func BenchmarkWALRecovery(b *testing.B) {
	dir := b.TempDir()
	mk := func() Config {
		return Config{
			Env: testEnv(b), Scheduler: newScheduler(b, false), Tolerance: 0.5,
			Round: time.Minute, DataDir: dir, SnapshotEvery: 1 << 30,
		}
	}
	jobs := genTrace(b, testEnv(b), 30000, 24)
	srv, err := New(mk())
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			b.Fatal(err)
		}
	}
	srv.Start()
	// Settle without Drain: Drain would snapshot and erase the replay work
	// this benchmark exists to measure.
	for {
		st := srv.Status()
		if st.Pending+st.Future == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Serve the stream once: the read-path group commit seals the whole
	// log, so every decision counted below survives the Crash.
	srv.Decisions(0, 0)
	decided := srv.Status().Decisions
	srv.Crash()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := New(mk())
		if err != nil {
			b.Fatal(err)
		}
		if got := rec.Status().Decisions; got != decided {
			b.Fatalf("recovered %d decisions, want %d", got, decided)
		}
		b.ReportMetric(float64(rec.Status().WAL.RecoveryMs), "recovery_ms")
		rec.Crash() // leave the log intact for the next iteration
	}
}
