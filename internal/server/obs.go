package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"waterwise/internal/milp"
	"waterwise/internal/obs"
)

// ObsConfig parameterizes the server's observability layer (internal/obs):
// latency histograms, the per-round trace ring, and sampled job lifecycle
// traces. The zero value enables everything with defaults; Disable turns
// the whole layer off (the obs-off arm of the overhead benchmark).
type ObsConfig struct {
	// Disable turns observability off entirely: no histograms, no round
	// ring, no job traces; /v1/rounds/slowest and /v1/jobs/{id}/trace
	// answer 404 and /metrics omits the histogram families.
	Disable bool
	// RoundRingSize bounds the recent-round trace ring (default 1024).
	RoundRingSize int
	// SlowestRounds bounds the slowest-round exemplar set (default 32).
	SlowestRounds int
	// JobSampleEvery samples one of every N accepted jobs for lifecycle
	// tracing (default 64; 1 traces every job).
	JobSampleEvery int
	// JobTraceCap bounds retained job traces, evicted FIFO (default 4096).
	JobTraceCap int
}

// serverObs bundles one server's recorders. acceptedWall and lastSolver
// are guarded by the server mutex; the histograms, ring, and tracer have
// their own synchronization (so the ingest handler records outside the
// lock).
type serverObs struct {
	decision *obs.Histogram // Submit acceptance -> round commit, wall seconds
	ingest   *obs.Histogram // POST /v1/jobs handler wall seconds
	round    *obs.Histogram // total scheduling-round wall seconds
	stages   [obs.NumStages]*obs.Histogram
	ring     *obs.RoundRing
	jobs     *obs.JobTracer
	// acceptedWall stamps each queued job's acceptance for the decision
	// latency histogram (removed on decide or abandon).
	acceptedWall map[int]time.Time
	// lastSolver is the previous round's cumulative solver stats, diffed
	// for per-round trace attribution.
	lastSolver milp.Stats
}

func newServerObs(cfg ObsConfig) *serverObs {
	o := &serverObs{
		decision:     &obs.Histogram{},
		ingest:       &obs.Histogram{},
		round:        &obs.Histogram{},
		ring:         obs.NewRoundRing(cfg.RoundRingSize, cfg.SlowestRounds),
		jobs:         obs.NewJobTracer(cfg.JobSampleEvery, cfg.JobTraceCap),
		acceptedWall: make(map[int]time.Time),
	}
	for i := range o.stages {
		o.stages[i] = &obs.Histogram{}
	}
	return o
}

// recordRound feeds one completed round's trace into the histograms and
// the ring. Stages that did not run this round (no WAL, no fsync due, no
// snapshot) are zero and skipped, so each stage histogram's count is the
// number of rounds that actually exercised it.
func (o *serverObs) recordRound(rt obs.RoundTrace) {
	o.round.Record(rt.Total.Seconds())
	for st, d := range rt.Stages {
		if d > 0 || obs.Stage(st) == obs.StageSolve {
			o.stages[st].Record(d.Seconds())
		}
	}
	o.ring.Record(rt)
}

// ObsSummary is the quantile digest of the server's latency histograms,
// served in Status — the numbers the bench harness gates on without
// parsing the full /metrics exposition.
type ObsSummary struct {
	// Decision latency: Submit acceptance to round commit, wall clock.
	DecisionP50Ms  float64 `json:"decision_latency_p50_ms"`
	DecisionP99Ms  float64 `json:"decision_latency_p99_ms"`
	DecisionP999Ms float64 `json:"decision_latency_p999_ms"`
	DecisionCount  uint64  `json:"decision_latency_count"`
	// Round wall time and its solve stage (the Fig. 13 overhead, now as
	// a distribution rather than the deprecated running mean).
	RoundP50Ms float64 `json:"round_p50_ms"`
	RoundP99Ms float64 `json:"round_p99_ms"`
	SolveP50Ms float64 `json:"solve_p50_ms"`
	SolveP99Ms float64 `json:"solve_p99_ms"`
	// Ingest handler wall time.
	IngestP99Ms float64 `json:"ingest_p99_ms"`
	// JobSampleEvery echoes the lifecycle-trace sampling stride.
	JobSampleEvery int `json:"job_sample_every"`
}

// ObsSnapshots is the mergeable counter export of one server's
// histograms — what the fleet gateway sums across shards into
// fleet-level distributions.
type ObsSnapshots struct {
	Decision obs.Snapshot
	Ingest   obs.Snapshot
	Round    obs.Snapshot
	Stages   [obs.NumStages]obs.Snapshot
}

// Merge folds other's counters into s.
func (s *ObsSnapshots) Merge(other *ObsSnapshots) {
	if other == nil {
		return
	}
	s.Decision.Merge(other.Decision)
	s.Ingest.Merge(other.Ingest)
	s.Round.Merge(other.Round)
	for i := range s.Stages {
		s.Stages[i].Merge(other.Stages[i])
	}
}

// Summary digests the snapshots into the Status quantiles.
func (s *ObsSnapshots) Summary(sampleEvery int) *ObsSummary {
	dec := s.Decision
	rnd := s.Round
	slv := s.Stages[obs.StageSolve]
	ing := s.Ingest
	ms := func(sec float64) float64 { return sec * 1e3 }
	return &ObsSummary{
		DecisionP50Ms:  ms(dec.Quantile(0.50)),
		DecisionP99Ms:  ms(dec.Quantile(0.99)),
		DecisionP999Ms: ms(dec.Quantile(0.999)),
		DecisionCount:  dec.Count,
		RoundP50Ms:     ms(rnd.Quantile(0.50)),
		RoundP99Ms:     ms(rnd.Quantile(0.99)),
		SolveP50Ms:     ms(slv.Quantile(0.50)),
		SolveP99Ms:     ms(slv.Quantile(0.99)),
		IngestP99Ms:    ms(ing.Quantile(0.99)),
		JobSampleEvery: sampleEvery,
	}
}

// AppendObsMetrics renders the observability histograms in Prometheus
// text format: <prefix>decision_latency_seconds,
// <prefix>ingest_request_seconds, <prefix>round_duration_seconds, and
// <prefix>round_stage_seconds{stage=...}. labels is spliced into every
// series (empty for the single server, shard="N" through the fleet);
// withHeader emits the # HELP/# TYPE lines — the fleet passes true for
// the first shard only, so each family has exactly one header. Shared
// by the single server's /metrics, the fleet's per-shard series, and
// the fleet's merged distributions (prefix "waterwise_fleet_").
func AppendObsMetrics(b []byte, snaps *ObsSnapshots, prefix, labels string, withHeader bool) []byte {
	if snaps == nil {
		return b
	}
	b = snaps.Decision.AppendProm(b, prefix+"decision_latency_seconds",
		"Server-side decision latency: Submit acceptance to round commit (wall seconds).", labels, withHeader)
	b = snaps.Ingest.AppendProm(b, prefix+"ingest_request_seconds",
		"POST /v1/jobs handler wall time in seconds.", labels, withHeader)
	b = snaps.Round.AppendProm(b, prefix+"round_duration_seconds",
		"Scheduling round wall time in seconds, all stages.", labels, withHeader)
	stageHelp := "Per-stage round wall time in seconds; solve is Fig. 13's scheduler invocation cost."
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		stageLabel := fmt.Sprintf("stage=%q", st.String())
		if labels != "" {
			stageLabel = labels + "," + stageLabel
		}
		snap := snaps.Stages[st]
		b = snap.AppendProm(b, prefix+"round_stage_seconds", stageHelp, stageLabel, withHeader && st == 0)
	}
	return b
}

// ObsSnapshots exports the server's histogram counters for merging and
// rendering; nil when observability is disabled.
func (s *Server) ObsSnapshots() *ObsSnapshots {
	if s.obs == nil {
		return nil
	}
	out := &ObsSnapshots{
		Decision: s.obs.decision.Snapshot(),
		Ingest:   s.obs.ingest.Snapshot(),
		Round:    s.obs.round.Snapshot(),
	}
	for i, h := range s.obs.stages {
		out.Stages[i] = h.Snapshot()
	}
	return out
}

// SlowestRounds returns the slowest scheduling rounds recorded so far,
// slowest first (nil when observability is disabled).
func (s *Server) SlowestRounds() []obs.RoundTrace {
	if s.obs == nil {
		return nil
	}
	return s.obs.ring.Slowest()
}

// RecentRounds returns up to n of the latest rounds' traces, newest
// first (nil when observability is disabled; n <= 0 means all retained).
func (s *Server) RecentRounds(n int) []obs.RoundTrace {
	if s.obs == nil {
		return nil
	}
	return s.obs.ring.Recent(n)
}

// JobSampleEvery reports the lifecycle-trace sampling stride (0 when
// observability is disabled).
func (s *Server) JobSampleEvery() int {
	if s.obs == nil {
		return 0
	}
	return s.obs.jobs.SampleEvery()
}

// JobTrace returns the sampled lifecycle trace for a job id, if the job
// was sampled and its trace has not been evicted.
func (s *Server) JobTrace(id int) (obs.JobTrace, bool) {
	if s.obs == nil {
		return obs.JobTrace{}, false
	}
	return s.obs.jobs.Get(id)
}

// RoundTraceWire is the JSON form of one round trace served by
// /v1/rounds/slowest: durations in milliseconds, stages keyed by name,
// and — through the fleet gateway — the owning shard.
type RoundTraceWire struct {
	Shard        *int               `json:"shard,omitempty"`
	Index        int64              `json:"index"`
	Sim          time.Time          `json:"sim"`
	Wall         time.Time          `json:"wall"`
	TotalMs      float64            `json:"total_ms"`
	StagesMs     map[string]float64 `json:"stages_ms"`
	Batch        int                `json:"batch"`
	Decided      int                `json:"decided"`
	Nodes        int                `json:"nodes"`
	SimplexIters int                `json:"simplex_iters"`
	WarmStarts   int                `json:"warm_starts"`
	ColdStarts   int                `json:"cold_starts"`
}

// WireRoundTrace converts a round trace to its wire form. Zero-duration
// stages are omitted from the map — a stage that did not run would read
// as "instant" otherwise.
func WireRoundTrace(rt obs.RoundTrace) RoundTraceWire {
	stages := make(map[string]float64, obs.NumStages)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if d := rt.Stages[st]; d > 0 || st == obs.StageSolve {
			stages[st.String()] = float64(d) / float64(time.Millisecond)
		}
	}
	return RoundTraceWire{
		Index: rt.Index, Sim: rt.Sim, Wall: rt.Wall,
		TotalMs:  float64(rt.Total) / float64(time.Millisecond),
		StagesMs: stages,
		Batch:    rt.Batch, Decided: rt.Decided,
		Nodes: rt.Nodes, SimplexIters: rt.SimplexIters,
		WarmStarts: rt.WarmStarts, ColdStarts: rt.ColdStarts,
	}
}

// RoundsResponse is the GET /v1/rounds/slowest reply.
type RoundsResponse struct {
	// Slowest holds the slowest-round exemplars, slowest first.
	Slowest []RoundTraceWire `json:"slowest"`
	// Recent holds the latest rounds, newest first (only with ?recent=N).
	Recent []RoundTraceWire `json:"recent,omitempty"`
}

// SlowestRoundsHandler builds the GET /v1/rounds/slowest handler over
// trace fetchers — shared by the single server and the fleet gateway's
// shard-merged view. fetch returns the slowest exemplars; recent returns
// the latest n rounds (both may return nil when observability is off,
// which serves as 404).
func SlowestRoundsHandler(fetch func() []RoundTraceWire, recent func(n int) []RoundTraceWire) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			WriteJSON(w, http.StatusMethodNotAllowed, SubmitResponse{Error: "GET only"})
			return
		}
		resp := RoundsResponse{Slowest: fetch()}
		if resp.Slowest == nil {
			WriteJSON(w, http.StatusNotFound, SubmitResponse{Error: "observability disabled"})
			return
		}
		if v := r.URL.Query().Get("recent"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				WriteJSON(w, http.StatusBadRequest, SubmitResponse{Error: "bad recent"})
				return
			}
			resp.Recent = recent(n)
		}
		WriteJSON(w, http.StatusOK, resp)
	}
}

// ErrNoTrace reports a job id with no retained lifecycle trace: the job
// was not sampled, its trace was evicted, or observability is disabled.
var ErrNoTrace = errors.New("server: no trace for job")

// JobTraceResponse is the GET /v1/jobs/{id}/trace reply.
type JobTraceResponse struct {
	// Shard identifies the owning shard through the fleet gateway.
	Shard *int         `json:"shard,omitempty"`
	Trace obs.JobTrace `json:"trace"`
	// SampleEvery echoes the sampling stride, so a 404 is interpretable:
	// roughly one of every SampleEvery accepted jobs has a trace.
	SampleEvery int `json:"sample_every"`
}

// JobTraceHandler builds the GET /v1/jobs/{id}/trace handler over a
// lookup — the single server's tracer, or the gateway's scan across
// shard tracers. Unknown or unsampled ids are 404.
func JobTraceHandler(lookup func(id int) (JobTraceResponse, bool)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			WriteJSON(w, http.StatusMethodNotAllowed, SubmitResponse{Error: "GET only"})
			return
		}
		rest, ok := strings.CutPrefix(r.URL.Path, PathJobs+"/")
		if !ok {
			WriteJSON(w, http.StatusNotFound, SubmitResponse{Error: "not found"})
			return
		}
		idStr, tail, _ := strings.Cut(rest, "/")
		id, err := strconv.Atoi(idStr)
		if err != nil || tail != "trace" {
			WriteJSON(w, http.StatusNotFound, SubmitResponse{Error: "want /v1/jobs/{id}/trace"})
			return
		}
		resp, found := lookup(id)
		if !found {
			WriteJSON(w, http.StatusNotFound, SubmitResponse{Error: ErrNoTrace.Error() + " " + idStr})
			return
		}
		WriteJSON(w, http.StatusOK, resp)
	}
}

// wireSlowest adapts the server's ring to the wire form ([] when the
// ring is empty but observability is on, nil when off — the handler's
// 404 signal).
func (s *Server) wireSlowest() []RoundTraceWire {
	if s.obs == nil {
		return nil
	}
	rts := s.obs.ring.Slowest()
	out := make([]RoundTraceWire, len(rts))
	for i, rt := range rts {
		out[i] = WireRoundTrace(rt)
	}
	return out
}

func (s *Server) wireRecent(n int) []RoundTraceWire {
	if s.obs == nil {
		return nil
	}
	rts := s.obs.ring.Recent(n)
	out := make([]RoundTraceWire, len(rts))
	for i, rt := range rts {
		out[i] = WireRoundTrace(rt)
	}
	return out
}

// timedIngest wraps the jobs handler to record its wall time into the
// ingest histogram — measured around the whole request (decode, submit
// loop, response write), outside the server lock.
func (s *Server) timedIngest(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.obs == nil || r.Method != http.MethodPost {
			h(w, r)
			return
		}
		t0 := time.Now()
		h(w, r)
		s.obs.ingest.Record(time.Since(t0).Seconds())
	}
}
