package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/obs"
)

func drainServer(t *testing.T, srv *Server) {
	t.Helper()
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsLintAndObsEndpoints drives a real replay through the HTTP
// API and then checks the whole observability surface: /metrics passes
// the strict lint, the latency families carry the expected mass, and the
// trace endpoints serve round and job traces.
func TestMetricsLintAndObsEndpoints(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 3000, 6)
	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
		Obs: ObsConfig{JobSampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit over HTTP so the ingest histogram records.
	specs := make([]JobSpec, 0, len(jobs))
	for _, j := range jobs {
		specs = append(specs, specFor(j))
	}
	body, _ := json.Marshal(specs)
	resp, err := http.Post(ts.URL+PathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	drainServer(t, srv)
	decided := len(srv.Result().Outcomes)
	if decided == 0 {
		t.Fatal("replay placed no jobs")
	}

	// Full exposition must parse and lint strictly.
	resp, err = http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fams, err := obs.ParseProm(metrics)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if err := obs.LintProm(metrics); err != nil {
		t.Fatalf("/metrics fails lint: %v", err)
	}
	for _, name := range []string{
		"waterwise_decision_latency_seconds",
		"waterwise_ingest_request_seconds",
		"waterwise_round_duration_seconds",
		"waterwise_round_stage_seconds",
	} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("family %s missing from /metrics", name)
		}
		if fam.Type != "histogram" {
			t.Fatalf("family %s is %q, want histogram", name, fam.Type)
		}
	}
	// Every decided job with an accept stamp contributes one decision
	// latency observation.
	les, cums := obs.HistogramBuckets(fams["waterwise_decision_latency_seconds"], nil)
	if len(les) == 0 {
		t.Fatal("decision latency histogram empty")
	}
	if got := cums[len(cums)-1]; got != uint64(decided) {
		t.Errorf("decision latency count %d, want %d decided", got, decided)
	}
	if _, cums := obs.HistogramBuckets(fams["waterwise_ingest_request_seconds"], nil); len(cums) == 0 || cums[len(cums)-1] != 1 {
		t.Errorf("ingest histogram should hold the one POST: %v", cums)
	}
	// The solve stage runs every round.
	sles, scums := obs.HistogramBuckets(fams["waterwise_round_stage_seconds"], map[string]string{"stage": "solve"})
	if len(sles) == 0 || scums[len(scums)-1] == 0 {
		t.Error("solve stage histogram empty")
	}
	st := srv.Status()
	if st.Obs == nil {
		t.Fatal("status obs summary missing")
	}
	if st.Obs.DecisionCount != uint64(decided) {
		t.Errorf("status decision count %d, want %d", st.Obs.DecisionCount, decided)
	}
	if st.Obs.SolveP50Ms <= 0 {
		t.Errorf("solve p50 = %g", st.Obs.SolveP50Ms)
	}

	// Round traces: slowest exemplars and the recent window.
	resp, err = http.Get(ts.URL + PathRounds + "?recent=5")
	if err != nil {
		t.Fatal(err)
	}
	var rounds RoundsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rounds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rounds.Slowest) == 0 {
		t.Fatal("no slowest-round exemplars")
	}
	for i := 1; i < len(rounds.Slowest); i++ {
		if rounds.Slowest[i].TotalMs > rounds.Slowest[i-1].TotalMs {
			t.Fatalf("slowest not sorted: %g then %g", rounds.Slowest[i-1].TotalMs, rounds.Slowest[i].TotalMs)
		}
	}
	if _, ok := rounds.Slowest[0].StagesMs["solve"]; !ok {
		t.Errorf("slowest round carries no solve stage: %v", rounds.Slowest[0].StagesMs)
	}
	if len(rounds.Recent) == 0 || len(rounds.Recent) > 5 {
		t.Fatalf("recent window: %d rounds", len(rounds.Recent))
	}

	// Job lifecycle trace: stride 1 samples every job.
	id := srv.Result().Outcomes[0].Job.ID
	resp, err = http.Get(ts.URL + PathJobs + "/" + strconv.Itoa(id) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job trace: status %d", resp.StatusCode)
	}
	var jt JobTraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&jt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !jt.Trace.Done || jt.Trace.Region == "" || jt.Trace.DecidedWall.IsZero() {
		t.Fatalf("trace incomplete: %+v", jt.Trace)
	}
	if jt.SampleEvery != 1 {
		t.Errorf("sample stride %d, want 1", jt.SampleEvery)
	}
	// Unknown id is a 404, not an error page.
	resp, err = http.Get(ts.URL + PathJobs + "/999999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

// TestObsDisabled flips the kill switch: metrics must still lint (minus
// the histogram families) and the trace endpoints report 404.
func TestObsDisabled(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
		Obs: ObsConfig{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.LintProm(metrics); err != nil {
		t.Fatalf("obs-off /metrics fails lint: %v", err)
	}
	fams, _ := obs.ParseProm(metrics)
	if fams["waterwise_decision_latency_seconds"] != nil {
		t.Error("latency family present with obs disabled")
	}
	resp, err = http.Get(ts.URL + PathRounds)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("rounds endpoint: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + PathJobs + "/1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("job trace endpoint: status %d, want 404", resp.StatusCode)
	}
	if srv.Status().Obs != nil {
		t.Error("status carries an obs summary with obs disabled")
	}
}

// TestObsEquivalence is the no-perturbation guarantee: the same trace
// replayed with observability on and off must emit identical placements.
// Sampling is a deterministic counter and recording happens after each
// decision is committed, so the decision stream cannot depend on it.
func TestObsEquivalence(t *testing.T) {
	run := func(disable bool) *cluster.Result {
		env := testEnv(t)
		jobs := genTrace(t, env, 3000, 6)
		srv, err := New(Config{
			Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
			Obs: ObsConfig{Disable: disable, JobSampleEvery: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		for _, j := range jobs {
			if _, err := srv.Submit(specFor(j)); err != nil {
				t.Fatal(err)
			}
		}
		drainServer(t, srv)
		return srv.Result()
	}
	on, off := run(false), run(true)
	if len(on.Outcomes) != len(off.Outcomes) {
		t.Fatalf("outcome counts differ: obs-on %d, obs-off %d", len(on.Outcomes), len(off.Outcomes))
	}
	for i := range on.Outcomes {
		a, b := on.Outcomes[i], off.Outcomes[i]
		if a.Job.ID != b.Job.ID || a.Region != b.Region || !a.Start.Equal(b.Start) || !a.Finish.Equal(b.Finish) {
			t.Fatalf("outcome %d differs: obs-on job %d->%s [%v,%v], obs-off job %d->%s [%v,%v]",
				i, a.Job.ID, a.Region, a.Start, a.Finish, b.Job.ID, b.Region, b.Start, b.Finish)
		}
	}
}
