package server

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"waterwise/internal/region"
	"waterwise/internal/wire"
)

// StreamBackend is the surface a streaming session needs from its
// ingest target. Both *Server and *fleet.Fleet implement it, so one
// StreamListener serves either a single server or a sharded gateway.
type StreamBackend interface {
	// StreamSubmit ingests one job with POST /v1/jobs semantics: same
	// typed errors, same dedupe index, same queue backpressure.
	StreamSubmit(spec JobSpec) (int, error)
	// StreamDecisions appends up to limit decisions with Seq > since
	// into dst and returns the extended slice plus the cursor to
	// resume from (the last appended Seq, or since when none).
	StreamDecisions(since uint64, limit int, dst []wire.Decision) ([]wire.Decision, uint64)
	// StreamInfo reports the decision log bounds (newest and oldest
	// retained seq) and the served regions, for the Welcome frame.
	StreamInfo() (last, oldest uint64, regions []region.ID)
}

// StreamOptions tunes a StreamListener. The zero value uses defaults.
type StreamOptions struct {
	// PushInterval is the idle poll cadence of the decision pusher
	// (default 1ms). When decisions are flowing the pusher loops
	// without sleeping.
	PushInterval time.Duration
	// PushBatch caps decisions per pushed frame (default 2048).
	PushBatch int
	// PushWindow caps pushed-but-unacked decisions per connection
	// (default 65536). When a slow client stops acking, the server
	// stops pushing instead of buffering unboundedly — the stream
	// analogue of HTTP 429. Negative disables windowing.
	PushWindow int
}

func (o *StreamOptions) withDefaults() StreamOptions {
	out := *o
	if out.PushInterval <= 0 {
		out.PushInterval = time.Millisecond
	}
	if out.PushBatch <= 0 {
		out.PushBatch = 2048
	}
	if out.PushWindow == 0 {
		out.PushWindow = 65536
	}
	return out
}

// StreamListener accepts persistent binary-protocol connections
// (internal/wire) alongside the HTTP mux and serves them against a
// StreamBackend: batched submits in, batched decision pushes out, with
// a cursor-resume handshake. Close shuts it down and waits for every
// connection goroutine to exit.
type StreamListener struct {
	backend StreamBackend
	opts    StreamOptions
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewStreamListener starts serving the wire protocol on ln against
// backend. It returns immediately; connections are handled on their
// own goroutines until Close.
func NewStreamListener(ln net.Listener, backend StreamBackend, opts StreamOptions) *StreamListener {
	l := &StreamListener{
		backend: backend,
		opts:    opts.withDefaults(),
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l
}

// ServeStream starts a StreamListener for this server on ln.
func (s *Server) ServeStream(ln net.Listener, opts StreamOptions) *StreamListener {
	return NewStreamListener(ln, s, opts)
}

// Addr returns the listener's address (useful with ":0" listeners).
func (l *StreamListener) Addr() net.Addr { return l.ln.Addr() }

// ConnCount returns the number of live connections.
func (l *StreamListener) ConnCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

// Close stops accepting, closes every live connection, and waits for
// all connection goroutines to finish.
func (l *StreamListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		l.wg.Wait()
		return nil
	}
	l.closed = true
	err := l.ln.Close()
	for nc := range l.conns {
		nc.Close()
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

func (l *StreamListener) acceptLoop() {
	defer l.wg.Done()
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			nc.Close()
			return
		}
		l.conns[nc] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go l.serveConn(nc)
	}
}

// streamSession is the per-connection state shared between the read
// loop and the decision pusher.
type streamSession struct {
	conn    *wire.Conn
	lastAck atomic.Uint64
	stop    chan struct{}
	pushed  sync.WaitGroup
}

func (l *StreamListener) serveConn(nc net.Conn) {
	defer func() {
		nc.Close()
		l.mu.Lock()
		delete(l.conns, nc)
		l.mu.Unlock()
		l.wg.Done()
	}()

	conn := wire.NewConn(nc)
	ss := &streamSession{conn: conn, stop: make(chan struct{})}

	// Handshake: the first frame must be Hello; the reply is Welcome
	// with the log bounds and region set.
	typ, payload, err := conn.ReadFrame()
	if err != nil {
		return
	}
	if typ != wire.TypeHello {
		l.sendError(conn, wire.ErrCodeProtocol, "expected hello frame")
		return
	}
	hello, err := conn.Codec().DecodeHello(payload)
	if err != nil {
		l.sendError(conn, wire.ErrCodeProtocol, "malformed hello")
		return
	}
	last, oldest, regions := l.backend.StreamInfo()
	welcome := wire.Welcome{LastSeq: last, Oldest: oldest, Regions: make([]string, len(regions))}
	for i, r := range regions {
		welcome.Regions[i] = string(r)
	}
	wbuf, err := wire.AppendWelcome(nil, welcome)
	if err != nil {
		return
	}
	if err := conn.WriteFrame(wire.TypeWelcome, wbuf); err != nil {
		return
	}

	ss.lastAck.Store(hello.Resume)
	if hello.Flags&wire.HelloSubscribe != 0 {
		ss.pushed.Add(1)
		go l.pushDecisions(ss, hello.Resume)
	}
	l.readLoop(ss)
	close(ss.stop)
	nc.Close() // unblock a pusher mid-write
	ss.pushed.Wait()
}

// readLoop ingests Submit and Ack frames until the connection errors
// or the client closes. A frame is fully decoded before any job is
// submitted, so a torn frame never half-ingests a batch.
func (l *StreamListener) readLoop(ss *streamSession) {
	var (
		jobs    []wire.Job
		results []wire.SubmitResult
		scratch []byte
	)
	for {
		typ, payload, err := ss.conn.ReadFrame()
		if err != nil {
			return // disconnect (clean or torn); nothing partial was applied
		}
		switch typ {
		case wire.TypeSubmit:
			jobs, err = ss.conn.Codec().DecodeSubmit(payload, jobs[:0])
			if err != nil {
				l.sendError(ss.conn, wire.ErrCodeProtocol, "malformed submit")
				return
			}
			results = results[:0]
			for i := range jobs {
				id, err := l.backend.StreamSubmit(JobSpecFromWire(&jobs[i]))
				res := wire.SubmitResult{Code: SubmitErrorCode(err)}
				if err == nil {
					res.ID = int64(id)
				}
				results = append(results, res)
			}
			scratch = wire.AppendSubmitReply(scratch[:0], results)
			if err := ss.conn.WriteFrame(wire.TypeSubmitReply, scratch); err != nil {
				return
			}
		case wire.TypeAck:
			seq, err := ss.conn.Codec().DecodeAck(payload)
			if err != nil {
				l.sendError(ss.conn, wire.ErrCodeProtocol, "malformed ack")
				return
			}
			ss.lastAck.Store(seq)
		default:
			l.sendError(ss.conn, wire.ErrCodeProtocol, fmt.Sprintf("unexpected frame type %d", typ))
			return
		}
	}
}

// pushDecisions streams the backend's decision log to the client from
// resume onward: poll a page, encode, write, repeat — sleeping only
// when the log is drained or the client's ack window is full.
func (l *StreamListener) pushDecisions(ss *streamSession, resume uint64) {
	defer ss.pushed.Done()
	cursor := resume
	var (
		page    []wire.Decision
		scratch []byte
	)
	timer := time.NewTimer(l.opts.PushInterval)
	defer timer.Stop()
	wait := func() bool {
		timer.Reset(l.opts.PushInterval)
		select {
		case <-ss.stop:
			return false
		case <-timer.C:
			return true
		}
	}
	for {
		select {
		case <-ss.stop:
			return
		default:
		}
		limit := l.opts.PushBatch
		if l.opts.PushWindow > 0 {
			inflight := int64(cursor) - int64(ss.lastAck.Load())
			if inflight < 0 {
				inflight = 0
			}
			room := int64(l.opts.PushWindow) - inflight
			if room <= 0 {
				if !wait() {
					return
				}
				continue
			}
			if room < int64(limit) {
				limit = int(room)
			}
		}
		var next uint64
		page, next = l.backend.StreamDecisions(cursor, limit, page[:0])
		if len(page) == 0 {
			if !wait() {
				return
			}
			continue
		}
		var err error
		scratch, err = wire.AppendDecisions(scratch[:0], next, page)
		if err != nil {
			return
		}
		if err := ss.conn.WriteFrame(wire.TypeDecisions, scratch); err != nil {
			return
		}
		cursor = next
	}
}

// sendError best-effort writes a terminal Error frame; the caller
// closes the connection right after.
func (l *StreamListener) sendError(conn *wire.Conn, code wire.ErrCode, msg string) {
	_ = conn.WriteFrame(wire.TypeError, wire.AppendError(nil, code, msg))
}

// SubmitErrorCode maps a Submit error to its wire result code, the
// stream analogue of SubmitErrorStatus.
func SubmitErrorCode(err error) wire.SubmitCode {
	switch {
	case err == nil:
		return wire.SubmitOK
	case errors.Is(err, ErrQueueFull):
		return wire.SubmitQueueFull
	case errors.Is(err, ErrStopped):
		return wire.SubmitStopped
	case errors.Is(err, ErrUnknownRegion):
		return wire.SubmitUnknownRegion
	case errors.Is(err, ErrUnknownBenchmark):
		return wire.SubmitUnknownBenchmark
	case errors.Is(err, ErrDuplicateID):
		return wire.SubmitDuplicateID
	case errors.Is(err, ErrOutsideHorizon):
		return wire.SubmitOutsideHorizon
	default:
		return wire.SubmitInvalid
	}
}

// NanoTime converts wire Unix nanoseconds to a time.Time, honoring the
// wire.TimeNone zero-time sentinel.
func NanoTime(n int64) time.Time {
	if n == wire.TimeNone {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// TimeNano converts a time.Time to wire Unix nanoseconds, encoding the
// zero time as wire.TimeNone.
func TimeNano(t time.Time) int64 {
	if t.IsZero() {
		return wire.TimeNone
	}
	return t.UnixNano()
}

// JobSpecFromWire converts a decoded wire job to a JobSpec.
func JobSpecFromWire(j *wire.Job) JobSpec {
	spec := JobSpec{
		Benchmark:      j.Benchmark,
		Home:           region.ID(j.Home),
		Submit:         NanoTime(j.SubmitNano),
		DurationSec:    j.DurationSec,
		EnergyKWh:      j.EnergyKWh,
		EstDurationSec: j.EstDurationSec,
		EstEnergyKWh:   j.EstEnergyKWh,
	}
	if j.HasID {
		id := int(j.ID)
		spec.ID = &id
	}
	return spec
}

// WireJob converts a JobSpec to its wire form (the client-side encode
// helper loadgen and the tests share).
func WireJob(spec JobSpec) wire.Job {
	j := wire.Job{
		Benchmark:      spec.Benchmark,
		Home:           string(spec.Home),
		SubmitNano:     TimeNano(spec.Submit),
		DurationSec:    spec.DurationSec,
		EnergyKWh:      spec.EnergyKWh,
		EstDurationSec: spec.EstDurationSec,
		EstEnergyKWh:   spec.EstEnergyKWh,
	}
	if spec.ID != nil {
		j.HasID = true
		j.ID = int64(*spec.ID)
	}
	return j
}

// WireDecision converts a decision to its wire form. shard and
// shardSeq carry the fleet coordinates; a single server passes 0 and
// d.Seq.
func WireDecision(d Decision, shard uint32, shardSeq uint64) wire.Decision {
	return wire.Decision{
		Seq:             d.Seq,
		JobID:           int64(d.JobID),
		Shard:           shard,
		ShardSeq:        shardSeq,
		RoundNano:       TimeNano(d.Round),
		StartNano:       TimeNano(d.Start),
		FinishNano:      TimeNano(d.Finish),
		DecidedWallNano: TimeNano(d.DecidedWall),
		CarbonG:         d.CarbonG,
		WaterL:          d.WaterL,
		Region:          string(d.Region),
	}
}

// DecisionFromWire converts a decoded wire decision back to the server
// form (the client-side decode helper).
func DecisionFromWire(d *wire.Decision) Decision {
	return Decision{
		Seq:         d.Seq,
		JobID:       int(d.JobID),
		Region:      region.ID(d.Region),
		Round:       NanoTime(d.RoundNano),
		Start:       NanoTime(d.StartNano),
		Finish:      NanoTime(d.FinishNano),
		CarbonG:     d.CarbonG,
		WaterL:      d.WaterL,
		DecidedWall: NanoTime(d.DecidedWallNano),
	}
}

// StreamSubmit implements StreamBackend for a single server.
func (s *Server) StreamSubmit(spec JobSpec) (int, error) { return s.Submit(spec) }

// StreamDecisions implements StreamBackend for a single server: shard
// is always 0 and ShardSeq mirrors the global seq.
func (s *Server) StreamDecisions(since uint64, limit int, dst []wire.Decision) ([]wire.Decision, uint64) {
	page, _ := s.DecisionsPage(since, limit)
	next := since
	for i := range page {
		dst = append(dst, WireDecision(page[i], 0, page[i].Seq))
	}
	if len(page) > 0 {
		next = page[len(page)-1].Seq
	}
	return dst, next
}

// StreamInfo implements StreamBackend for a single server.
func (s *Server) StreamInfo() (last, oldest uint64, regions []region.ID) {
	_, cur := s.DecisionsPage(math.MaxUint64, 1)
	return cur.Seq, cur.Oldest, s.Regions()
}
