package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/region"
	"waterwise/internal/trace"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func testEnv(t testing.TB) *region.Environment {
	t.Helper()
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*3, 21)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func newScheduler(t testing.TB, reprice bool) *core.Scheduler {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Solver.RepriceWarmStart = reprice
	ww, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ww
}

// genTrace produces a millisecond-quantized trace (as the CSV wire format
// carries) so JSON float-seconds round exactly.
func genTrace(t testing.TB, env *region.Environment, jobsPerDay float64, hours int) []*trace.Job {
	t.Helper()
	jobs, err := trace.GenerateBorgLike(trace.Config{
		Start: testStart, Duration: time.Duration(hours) * time.Hour,
		JobsPerDay: jobsPerDay, Regions: env.IDs(), DurationScale: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	jobs, err = trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// decisionsPage decodes the GET /v1/decisions reply with typed entries
// (the wire shape is server.DecisionsResponse).
type decisionsPage struct {
	Decisions []Decision `json:"decisions"`
	Next      uint64     `json:"next"`
}

func specFor(j *trace.Job) JobSpec {
	id := j.ID
	return JobSpec{
		ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
		DurationSec:    j.Duration.Seconds(),
		EnergyKWh:      float64(j.Energy),
		EstDurationSec: j.EstDuration.Seconds(),
		EstEnergyKWh:   float64(j.EstEnergy),
	}
}

// TestAcceleratedReplayMatchesOfflineRun is the deterministic equivalence
// acceptance test: replaying a generated trace through the service's HTTP
// API in accelerated-time mode must produce exactly the placements,
// start/finish times, and footprints of the offline cluster.Run at the same
// cadence.
func TestAcceleratedReplayMatchesOfflineRun(t *testing.T) {
	const round = time.Minute
	env := testEnv(t)
	jobs := genTrace(t, env, 6000, 24)

	offEnv := testEnv(t)
	want, err := cluster.Run(cluster.Config{Env: offEnv, Tolerance: 0.5, Tick: round}, newScheduler(t, false), jobs)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: round,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Stop()

	// Queue the whole trace through POST /v1/jobs first, then start the
	// round loop: in accelerated mode the clock must not outrun the feed.
	const batch = 500
	for i := 0; i < len(jobs); i += batch {
		end := i + batch
		if end > len(jobs) {
			end = len(jobs)
		}
		specs := make([]JobSpec, 0, end-i)
		for _, j := range jobs[i:end] {
			specs = append(specs, specFor(j))
		}
		body, err := json.Marshal(specs)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+PathJobs, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sr SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit batch at %d: status %d, error %q", i, resp.StatusCode, sr.Error)
		}
	}
	srv.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	got := srv.Result()

	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("outcomes: server %d, offline %d", len(got.Outcomes), len(want.Outcomes))
	}
	for i := range want.Outcomes {
		w, g := want.Outcomes[i], got.Outcomes[i]
		if w.Job.ID != g.Job.ID || w.Region != g.Region {
			t.Fatalf("outcome %d: server job %d->%s, offline job %d->%s",
				i, g.Job.ID, g.Region, w.Job.ID, w.Region)
		}
		if !w.Start.Equal(g.Start) || !w.Finish.Equal(g.Finish) {
			t.Fatalf("job %d: server [%v,%v], offline [%v,%v]",
				w.Job.ID, g.Start, g.Finish, w.Start, w.Finish)
		}
		if w.Compute != g.Compute || w.Comm != g.Comm {
			t.Fatalf("job %d: footprints differ: server %+v/%+v, offline %+v/%+v",
				w.Job.ID, g.Compute, g.Comm, w.Compute, w.Comm)
		}
		if w.Violated != g.Violated {
			t.Fatalf("job %d: violation flag differs", w.Job.ID)
		}
	}
	if len(got.Ticks) != len(want.Ticks) {
		t.Fatalf("rounds: server %d, offline %d", len(got.Ticks), len(want.Ticks))
	}
	for i := range want.Ticks {
		if !got.Ticks[i].At.Equal(want.Ticks[i].At) || got.Ticks[i].Decided != want.Ticks[i].Decided || got.Ticks[i].Batch != want.Ticks[i].Batch {
			t.Fatalf("round %d: server %+v, offline %+v", i, got.Ticks[i], want.Ticks[i])
		}
	}
	if len(got.Unscheduled) != 0 || len(want.Unscheduled) != 0 {
		t.Fatalf("unscheduled: server %d, offline %d", len(got.Unscheduled), len(want.Unscheduled))
	}
}

// TestReplayWithRepriceWarmStart replays the same trace with the cross-round
// warm start enabled and asserts the service still drains every job while
// serving most rounds from a revived basis (correctness of the repriced
// answers is covered by the core/milp/lp differential suites).
func TestReplayWithRepriceWarmStart(t *testing.T) {
	const round = time.Minute
	env := testEnv(t)
	jobs := genTrace(t, env, 6000, 24)
	ww := newScheduler(t, true)
	srv, err := New(Config{Env: env, Scheduler: ww, Tolerance: 0.5, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	for _, j := range jobs {
		if _, err := srv.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	res := srv.Result()
	if len(res.Outcomes) != len(jobs) {
		t.Fatalf("scheduled %d of %d jobs", len(res.Outcomes), len(jobs))
	}
	stats := ww.SolverStats()
	if stats.WarmStarts == 0 {
		t.Error("no round was served by the cross-round warm start")
	}
	t.Logf("rounds=%d warm=%d cold=%d iters=%d", stats.Nodes, stats.WarmStarts, stats.ColdStarts, stats.SimplexIters)
}

func TestBackpressure(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5,
		Round: time.Minute, QueueCap: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the queue only fills.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post := func(spec JobSpec) int {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+PathJobs, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr SubmitResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return resp.StatusCode
	}
	spec := JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart.Add(time.Hour)}
	for i := 0; i < 3; i++ {
		if code := post(spec); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
	}
	if code := post(spec); code != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: status %d, want 429", code)
	}
	st := srv.Status()
	if st.Accepted != 3 || st.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d", st.Accepted, st.Rejected)
	}
}

func TestSubmitValidation(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Every rejection path returns its typed cause, so gateways map them
	// to distinct HTTP statuses with errors.Is instead of string matching.
	cases := []struct {
		name string
		spec JobSpec
		want error
	}{
		{"unknown benchmark", JobSpec{Benchmark: "nope", Home: region.Zurich, Submit: testStart}, ErrUnknownBenchmark},
		{"unknown region", JobSpec{Benchmark: "canneal", Home: "atlantis", Submit: testStart}, ErrUnknownRegion},
		{"before horizon", JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart.Add(-time.Hour)}, ErrOutsideHorizon},
		{"after horizon", JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart.Add(100 * 24 * time.Hour)}, ErrOutsideHorizon},
	}
	for _, c := range cases {
		if _, err := srv.Submit(c.spec); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
	// Duplicate id: an identical retry is idempotent (same id back, no new
	// job), a different spec under the same id is the conflict.
	id := 7
	if _, err := srv.Submit(JobSpec{ID: &id, Benchmark: "canneal", Home: region.Zurich, Submit: testStart}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Submit(JobSpec{ID: &id, Benchmark: "canneal", Home: region.Zurich, Submit: testStart})
	if err != nil || got != id {
		t.Errorf("idempotent retry: got (%d, %v), want (%d, nil)", got, err, id)
	}
	if st := srv.Status(); st.Accepted != 1 {
		t.Errorf("idempotent retry accepted a new job: accepted = %d, want 1", st.Accepted)
	}
	if _, err := srv.Submit(JobSpec{ID: &id, Benchmark: "swaptions", Home: region.Zurich, Submit: testStart}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("conflicting spec under same id: got %v, want ErrDuplicateID", err)
	}
	srv.Stop()
	if _, err := srv.Submit(JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart}); !errors.Is(err, ErrStopped) {
		t.Errorf("submit after stop: got %v, want ErrStopped", err)
	}
}

// TestRegionPartitionShard covers the shard form of the server: with
// Config.Regions set, it schedules only over the partition and rejects
// submissions homed outside it with ErrUnknownRegion.
func TestRegionPartitionShard(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{
		Env: env, Regions: []region.ID{region.Zurich, region.Milan},
		Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if got := srv.Regions(); len(got) != 2 || got[0] != region.Zurich || got[1] != region.Milan {
		t.Fatalf("shard regions = %v", got)
	}
	if _, err := srv.Submit(JobSpec{Benchmark: "canneal", Home: region.Mumbai, Submit: testStart}); !errors.Is(err, ErrUnknownRegion) {
		t.Errorf("out-of-partition home: got %v, want ErrUnknownRegion", err)
	}
	if _, err := srv.Submit(JobSpec{Benchmark: "canneal", Home: region.Milan, Submit: testStart}); err != nil {
		t.Fatalf("in-partition home rejected: %v", err)
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, d := range srv.Decisions(0, 0) {
		if d.Region != region.Zurich && d.Region != region.Milan {
			t.Fatalf("shard placed a job in %s, outside its partition", d.Region)
		}
	}
	st := srv.Status()
	if len(st.Free) != 2 {
		t.Fatalf("shard status reports %d regions free, want 2", len(st.Free))
	}
	if _, err := New(Config{Env: env, Regions: []region.ID{"atlantis"}, Scheduler: newScheduler(t, false)}); err == nil {
		t.Error("unknown partition region accepted")
	}
}

// TestDecisionsPageCursor pins the cursor export the fleet merge builds
// on: Seq/Oldest track the ring, Frontier the round clock, Idle the
// drained state.
func TestDecisionsPageCursor(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5,
		Round: time.Minute, DecisionLogCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if _, cur := srv.DecisionsPage(0, 0); cur.Seq != 0 || cur.Oldest != 0 || !cur.Idle {
		t.Fatalf("empty-server cursor %+v", cur)
	}
	for i := 0; i < 6; i++ {
		spec := JobSpec{Benchmark: "canneal", Home: region.Oregon, Submit: testStart.Add(time.Duration(i) * time.Second)}
		if _, err := srv.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	if _, cur := srv.DecisionsPage(0, 0); cur.Idle || !cur.Frontier.Before(testStart) {
		// Round 0 has not run, so its decisions (Round == Env.Start) are
		// not final yet: the frontier must lie strictly before them, or a
		// fleet merge emits another shard's round-0 decisions too early.
		t.Fatalf("pre-first-round cursor %+v", cur)
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ds, cur := srv.DecisionsPage(0, 0)
	if cur.Seq != 6 || !cur.Idle {
		t.Fatalf("drained cursor %+v", cur)
	}
	// Ring cap 4: seqs 1-2 evicted, Oldest reflects it, and the page
	// starts past the loss — what the fleet merge counts as Lost.
	if cur.Oldest != 3 {
		t.Fatalf("oldest %d, want 3 after eviction", cur.Oldest)
	}
	if len(ds) != 4 || ds[0].Seq != 3 {
		t.Fatalf("page %d decisions starting at %d", len(ds), ds[0].Seq)
	}
	if cur.Frontier.Before(ds[len(ds)-1].Round) {
		t.Fatalf("frontier %v behind last logged round %v", cur.Frontier, ds[len(ds)-1].Round)
	}
	if st := srv.Status(); st.LastSeq != 6 {
		t.Fatalf("status last_seq %d, want 6", st.LastSeq)
	}
}

func TestDecisionsPagingAndStatusAndMetrics(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Start()
	defer srv.Stop()
	for i := 0; i < 10; i++ {
		spec := JobSpec{Benchmark: "canneal", Home: region.Oregon, Submit: testStart.Add(time.Duration(i) * time.Second)}
		if _, err := srv.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	var page decisionsPage
	resp, err := http.Get(ts.URL + PathDecisions + "?limit=4")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(page.Decisions) != 4 {
		t.Fatalf("limit=4 returned %d decisions", len(page.Decisions))
	}
	total := len(page.Decisions)
	for page.Next > 0 && total < 100 {
		resp, err := http.Get(fmt.Sprintf("%s%s?since=%d", ts.URL, PathDecisions, page.Next))
		if err != nil {
			t.Fatal(err)
		}
		var next decisionsPage
		if err := json.NewDecoder(resp.Body).Decode(&next); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(next.Decisions) == 0 {
			break
		}
		total += len(next.Decisions)
		page = next
	}
	if total != 10 {
		t.Fatalf("paged through %d decisions, want 10", total)
	}

	var st Status
	resp, err = http.Get(ts.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Decisions != 10 || st.Scheduler != "waterwise" || st.Solver == nil {
		t.Fatalf("status: %+v", st)
	}
	if st.Feed == nil || st.Feed.Provider != "synthetic" || st.Feed.Stale {
		t.Fatalf("status feed health: %+v", st.Feed)
	}

	resp, err = http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, key := range []string{
		"waterwise_jobs_accepted_total 10",
		"waterwise_decisions_total 10",
		"waterwise_rounds_total",
		"waterwise_solver_simplex_iters_total",
		"waterwise_region_free_servers{region=\"oregon\"}",
		"# TYPE waterwise_feed_staleness_seconds gauge",
		"waterwise_feed_staleness_seconds{provider=\"synthetic\"} 0",
		"# TYPE waterwise_feed_fetch_errors_total counter",
		"waterwise_feed_stale{provider=\"synthetic\"} 0",
	} {
		if !strings.Contains(raw.String(), key) {
			t.Errorf("metrics missing %q:\n%s", key, raw.String())
		}
	}
}

// TestPacedLiveMode runs the service against the wall clock at high time
// scale: live submissions (no explicit submit instant) must flow through
// rounds fired by the timer.
func TestPacedLiveMode(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5,
		Round: time.Minute, TimeScale: 1200, // 20 simulated minutes per wall second
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Stop()
	for i := 0; i < 5; i++ {
		if _, err := srv.Submit(JobSpec{Benchmark: "canneal", Home: region.Milan}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Status().Decisions == 5 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.Status().Decisions; got != 5 {
		t.Fatalf("decided %d of 5 live jobs", got)
	}
	for _, d := range srv.Decisions(0, 0) {
		if d.Region == "" || d.Finish.Before(d.Start) {
			t.Fatalf("bad decision %+v", d)
		}
	}
}

// TestHorizonAbandon covers the accelerated loop's termination guarantee:
// a job that can never be placed (all servers busy past the environment
// horizon) must be abandoned when the service clock reaches the horizon,
// not spun on forever.
func TestHorizonAbandon(t *testing.T) {
	regs := region.Defaults()
	for _, r := range regs {
		r.Servers = 1
	}
	env, err := region.NewEnvironment(regs, energy.Table, testStart, 24, 21)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	// Six 200-hour jobs into five single-server regions: one can never run
	// before the 24-hour horizon ends.
	for i := 0; i < 6; i++ {
		id := i
		if _, err := srv.Submit(JobSpec{
			ID: &id, Benchmark: "canneal", Home: region.Zurich, Submit: testStart,
			DurationSec: 200 * 3600, EstDurationSec: 200 * 3600,
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain did not terminate: %v", err)
	}
	st := srv.Status()
	if st.Decisions != 5 || st.Unscheduled != 1 {
		t.Fatalf("decided=%d unscheduled=%d, want 5/1", st.Decisions, st.Unscheduled)
	}
	if got := len(srv.Result().Unscheduled); got != 1 {
		t.Fatalf("result unscheduled %d, want 1", got)
	}
}

// TestStopAbandonsQueue covers shutdown: jobs still queued at Stop land in
// Unscheduled and later submissions are refused.
func TestStopAbandonsQueue(t *testing.T) {
	env := testEnv(t)
	srv, err := New(Config{Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: nothing drains.
	for i := 0; i < 4; i++ {
		spec := JobSpec{Benchmark: "canneal", Home: region.Mumbai, Submit: testStart.Add(time.Hour)}
		if _, err := srv.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	srv.Stop()
	if _, err := srv.Submit(JobSpec{Benchmark: "canneal", Home: region.Mumbai, Submit: testStart}); err == nil {
		t.Error("submit after stop accepted")
	}
	if got := len(srv.Result().Unscheduled); got != 4 {
		t.Errorf("unscheduled %d, want 4", got)
	}
}
