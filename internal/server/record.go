package server

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"waterwise/internal/tsdb"
)

// Version identifies the build in waterwise_build_info; override at link
// time with -ldflags "-X waterwise/internal/server.Version=v1.2.3".
var Version = "dev"

// RecordConfig configures the metrics flight recorder: when enabled the
// server scrapes its own /metrics exposition at the end of each
// scheduling round into an in-process time-series store (internal/tsdb),
// making windowed rate/increase/quantile queries and burn-rate SLO alerts
// available over recorded history via /v1/query and /v1/alerts.
//
// Like the observability layer it is measurement only: recording never
// feeds back into scheduling (TestRecorderEquivalence pins this).
type RecordConfig struct {
	// Enable turns the recorder on.
	Enable bool
	// MemoryBudgetBytes bounds the compressed store (default 8 MiB);
	// oldest windows are evicted beyond it, counted in
	// waterwise_tsdb_evicted_chunks_total.
	MemoryBudgetBytes int
	// ScrapeEvery records once per that many rounds (default every round).
	ScrapeEvery uint64
	// MinInterval floors the wall-clock spacing of async scrapes (see
	// tsdb.Config.MinInterval): an accelerated run's rounds can outpace
	// any scraper, and the floor keeps recording at a few Hz instead of
	// per-round. Zero means no floor; ignored in Sync mode.
	MinInterval time.Duration
	// Sync scrapes inline on the round loop's goroutine, making recorded
	// history deterministic round for round — what scenarios and tests
	// want. The default async mode hands rounds to a scraper goroutine
	// that coalesces under pressure, keeping the round loop's added cost
	// to an atomic store.
	Sync bool
	// SLOs arms the burn-rate alert engine (see tsdb.Objective).
	SLOs []tsdb.Objective
	// Logf receives alert transitions and scrape failures; nil disables.
	Logf func(format string, args ...any)
}

// newRecorder builds the server's recorder over its own exposition.
func (s *Server) newRecorder() error {
	rec, err := tsdb.New(tsdb.Config{
		Gather:            func() []byte { return s.MetricsText() },
		MemoryBudgetBytes: s.cfg.Record.MemoryBudgetBytes,
		ScrapeEvery:       s.cfg.Record.ScrapeEvery,
		MinInterval:       s.cfg.Record.MinInterval,
		Sync:              s.cfg.Record.Sync,
		Objectives:        s.cfg.Record.SLOs,
		Logf:              s.cfg.Record.Logf,
	})
	if err != nil {
		return err
	}
	s.recorder = rec
	return nil
}

// Recorder exposes the flight recorder for queries; nil when recording is
// disabled.
func (s *Server) Recorder() *tsdb.Recorder { return s.recorder }

// notifyRound runs the end-of-round hooks — the recorder scrape and the
// owner's OnRound callback. Called by the round loops with mu released:
// the recorder's gather path re-enters Status, and holding mu here would
// deadlock (and would bill scrape time to the scheduling lock).
func (s *Server) notifyRound(rounds uint64) {
	if s.recorder != nil {
		s.recorder.Observe(rounds)
	}
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(rounds)
	}
}

// AppendBuildInfo renders the waterwise_build_info gauge: constant 1 with
// the build identity as labels, the standard Prometheus idiom for joining
// version metadata onto any other series.
func AppendBuildInfo(b []byte) []byte {
	b = append(b, "# HELP waterwise_build_info Build identity (constant 1; the labels carry the information).\n# TYPE waterwise_build_info gauge\n"...)
	b = append(b, "waterwise_build_info{version="...)
	b = strconv.AppendQuote(b, Version)
	b = append(b, ",goversion="...)
	b = strconv.AppendQuote(b, runtime.Version())
	b = append(b, ",gomaxprocs="...)
	b = strconv.AppendQuote(b, strconv.Itoa(runtime.GOMAXPROCS(0)))
	b = append(b, "} 1\n"...)
	return b
}

// QueryResponse is the GET /v1/query reply.
type QueryResponse struct {
	Series string `json:"series"`
	// Fn echoes the evaluated function: raw, rate, increase, or quantile.
	Fn string `json:"fn"`
	// Window and End are in rounds (End 0 = latest recorded).
	Window uint64 `json:"window,omitempty"`
	End    uint64 `json:"end,omitempty"`
	// Samples holds the raw series for fn=raw.
	Samples []tsdb.Sample `json:"samples,omitempty"`
	// Value holds the scalar result for rate/increase/quantile; Ok is
	// false when the window held no data.
	Value float64 `json:"value"`
	Ok    bool    `json:"ok"`
	Error string  `json:"error,omitempty"`
}

// AlertsResponse is the GET /v1/alerts reply.
type AlertsResponse struct {
	// Round is the newest recorded round the states are current as of.
	Round  uint64       `json:"round"`
	Firing int          `json:"firing"`
	Alerts []tsdb.Alert `json:"alerts"`
}

// QueryHandler builds the GET /v1/query handler over a recorder getter —
// shared by the single server and the fleet gateway. Parameters:
//
//	series  — series reference: a family name or name{label="v",...}
//	fn      — raw (default) | rate | increase | quantile
//	window  — window length in rounds (required for non-raw fns)
//	q       — quantile in [0,1] (fn=quantile)
//	end     — window end round (default: latest recorded)
//	from,to — raw-sample bounds (fn=raw)
func QueryHandler(rec func() *tsdb.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			WriteJSON(w, http.StatusMethodNotAllowed, QueryResponse{Error: "GET only"})
			return
		}
		rr := rec()
		if rr == nil {
			WriteJSON(w, http.StatusNotFound, QueryResponse{Error: "recording disabled (enable with -record-metrics)"})
			return
		}
		q := r.URL.Query()
		resp := QueryResponse{Series: q.Get("series"), Fn: q.Get("fn")}
		if resp.Series == "" {
			WriteJSON(w, http.StatusBadRequest, QueryResponse{Error: "missing series parameter"})
			return
		}
		if resp.Fn == "" {
			resp.Fn = "raw"
		}
		parseU := func(name string) (uint64, bool) {
			v := q.Get(name)
			if v == "" {
				return 0, true
			}
			u, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				WriteJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad " + name})
				return 0, false
			}
			return u, true
		}
		var ok bool
		if resp.Window, ok = parseU("window"); !ok {
			return
		}
		if resp.End, ok = parseU("end"); !ok {
			return
		}
		if resp.Fn != "raw" && resp.Window == 0 {
			WriteJSON(w, http.StatusBadRequest, QueryResponse{Error: "window is required for " + resp.Fn})
			return
		}
		switch resp.Fn {
		case "raw":
			from, ok := parseU("from")
			if !ok {
				return
			}
			to, ok := parseU("to")
			if !ok {
				return
			}
			resp.Samples = rr.Query(resp.Series, from, to)
			resp.Ok = len(resp.Samples) > 0
		case "rate":
			resp.Value, resp.Ok = rr.Rate(resp.Series, resp.Window, resp.End)
		case "increase":
			resp.Value, resp.Ok = rr.Increase(resp.Series, resp.Window, resp.End)
		case "quantile":
			quant := 0.99
			if v := q.Get("q"); v != "" {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					WriteJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad q"})
					return
				}
				quant = f
			}
			resp.Value, resp.Ok = rr.Quantile(resp.Series, quant, resp.Window, resp.End)
		default:
			WriteJSON(w, http.StatusBadRequest, QueryResponse{Error: "fn must be raw, rate, increase, or quantile"})
			return
		}
		WriteJSON(w, http.StatusOK, resp)
	}
}

// AlertsHandler builds the GET /v1/alerts handler over a recorder getter.
func AlertsHandler(rec func() *tsdb.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			WriteJSON(w, http.StatusMethodNotAllowed, SubmitResponse{Error: "GET only"})
			return
		}
		rr := rec()
		if rr == nil {
			WriteJSON(w, http.StatusNotFound, SubmitResponse{Error: "recording disabled (enable with -record-metrics)"})
			return
		}
		alerts := rr.Alerts()
		firing := 0
		for _, a := range alerts {
			if a.Firing {
				firing++
			}
		}
		WriteJSON(w, http.StatusOK, AlertsResponse{Round: rr.LastRound(), Firing: firing, Alerts: alerts})
	}
}
