package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"unicode"
)

// isJSONArray reports whether the body's first non-space byte opens an array.
func isJSONArray(body []byte) bool {
	for _, b := range body {
		if unicode.IsSpace(rune(b)) {
			continue
		}
		return b == '['
	}
	return false
}

// DecodeJobSpecs decodes a POST /v1/jobs body: a single JobSpec object or
// an array of them. Shared by this server's handler and the fleet gateway.
func DecodeJobSpecs(body []byte) ([]JobSpec, error) {
	if isJSONArray(body) {
		var specs []JobSpec
		if err := json.Unmarshal(body, &specs); err != nil {
			return nil, fmt.Errorf("decoding jobs: %w", err)
		}
		return specs, nil
	}
	var one JobSpec
	if err := json.Unmarshal(body, &one); err != nil {
		return nil, fmt.Errorf("decoding job: %w", err)
	}
	return []JobSpec{one}, nil
}

// API paths served by Handler.
const (
	PathJobs      = "/v1/jobs"
	PathDecisions = "/v1/decisions"
	PathStatus    = "/v1/status"
	PathMetrics   = "/metrics"
	// PathRounds serves the slowest scheduling rounds' stage breakdowns;
	// /v1/jobs/{id}/trace (under PathJobs) serves sampled job lifecycles.
	PathRounds = "/v1/rounds/slowest"
	// PathQuery and PathAlerts serve the metrics flight recorder: windowed
	// queries over recorded series and burn-rate SLO alert states. 404
	// unless recording is enabled (RecordConfig / -record-metrics).
	PathQuery  = "/v1/query"
	PathAlerts = "/v1/alerts"
)

// SubmitResponse is the POST /v1/jobs reply — shared with the fleet
// gateway so clients drive a shard and a gateway with the same code.
type SubmitResponse struct {
	Accepted []int  `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// DecisionsResponse is the GET /v1/decisions reply. Decisions holds the
// log page — []Decision from a single server, []fleet.Decision through
// the gateway.
type DecisionsResponse struct {
	Decisions interface{} `json:"decisions"`
	// Next is the cursor to pass as ?since= on the next poll.
	Next uint64 `json:"next"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             — submit one JobSpec or an array of them
//	GET  /v1/decisions        — decision log; ?since=<seq>&limit=<n>
//	GET  /v1/status           — service snapshot
//	GET  /metrics             — Prometheus text metrics
//	GET  /v1/rounds/slowest   — slowest rounds' stage breakdowns; ?recent=<n>
//	GET  /v1/jobs/{id}/trace  — sampled job lifecycle trace
//	GET  /v1/query            — windowed queries over recorded metrics history
//	GET  /v1/alerts           — burn-rate SLO alert states
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathJobs, s.timedIngest(JobsHandler(s.Submit)))
	mux.HandleFunc(PathRounds, SlowestRoundsHandler(s.wireSlowest, s.wireRecent))
	mux.HandleFunc(PathJobs+"/", JobTraceHandler(func(id int) (JobTraceResponse, bool) {
		jt, ok := s.JobTrace(id)
		if !ok {
			return JobTraceResponse{}, false
		}
		return JobTraceResponse{Trace: jt, SampleEvery: s.JobSampleEvery()}, true
	}))
	mux.HandleFunc(PathDecisions, DecisionsHandler(func(since uint64, limit int) (interface{}, uint64) {
		ds := s.Decisions(since, limit)
		next := since
		if len(ds) > 0 {
			next = ds[len(ds)-1].Seq
		}
		return ds, next
	}))
	mux.HandleFunc(PathStatus, StatusHandler(func() interface{} { return s.Status() }))
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	mux.HandleFunc(PathQuery, QueryHandler(s.Recorder))
	mux.HandleFunc(PathAlerts, AlertsHandler(s.Recorder))
	return mux
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// ParseDecisionsQuery parses GET /v1/decisions' since/limit parameters —
// one cursor grammar for the single server and the fleet gateway.
func ParseDecisionsQuery(q url.Values) (since uint64, limit int, err error) {
	if v := q.Get("since"); v != "" {
		since, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, 0, errors.New("bad since")
		}
	}
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 0 {
			return 0, 0, errors.New("bad limit")
		}
	}
	return since, limit, nil
}

// JobsHandler builds the POST /v1/jobs handler over any submit function —
// one ingest skeleton (method check, 16 MiB body cap, single-or-array
// decode, per-job loop with partial-accept reply, typed status mapping)
// shared by the single server and the fleet gateway's routed submit.
func JobsHandler(submit func(JobSpec) (int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			WriteJSON(w, http.StatusMethodNotAllowed, SubmitResponse{Error: "POST only"})
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			WriteJSON(w, http.StatusBadRequest, SubmitResponse{Error: fmt.Sprintf("reading body: %v", err)})
			return
		}
		specs, err := DecodeJobSpecs(body)
		if err != nil {
			WriteJSON(w, http.StatusBadRequest, SubmitResponse{Error: err.Error()})
			return
		}
		ids := make([]int, 0, len(specs))
		for _, spec := range specs {
			id, err := submit(spec)
			if err != nil {
				WriteJSON(w, SubmitErrorStatus(err), SubmitResponse{Accepted: ids, Error: err.Error()})
				return
			}
			ids = append(ids, id)
		}
		WriteJSON(w, http.StatusAccepted, SubmitResponse{Accepted: ids})
	}
}

// SubmitErrorStatus maps a Submit rejection to its HTTP status. The typed
// ingest errors get distinct codes — 429 backpressure, 503 stopped, 409
// duplicate id, 404 unroutable home region — and anything else (bad
// benchmark, out-of-horizon instant, malformed spec) is the client's 400.
// Shared by this server's own handler and the fleet gateway.
func SubmitErrorStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrStopped):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDuplicateID):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownRegion):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// DecisionsHandler builds the GET /v1/decisions handler over a log
// fetcher returning the page and the next cursor — shared by the single
// server's ring and the gateway's merged stream.
func DecisionsHandler(fetch func(since uint64, limit int) (decisions interface{}, next uint64)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			WriteJSON(w, http.StatusMethodNotAllowed, SubmitResponse{Error: "GET only"})
			return
		}
		since, limit, err := ParseDecisionsQuery(r.URL.Query())
		if err != nil {
			WriteJSON(w, http.StatusBadRequest, SubmitResponse{Error: err.Error()})
			return
		}
		ds, next := fetch(since, limit)
		WriteJSON(w, http.StatusOK, DecisionsResponse{Decisions: ds, Next: next})
	}
}

// StatusHandler builds the GET /v1/status handler over a snapshot
// function.
func StatusHandler(status func() interface{}) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			WriteJSON(w, http.StatusMethodNotAllowed, SubmitResponse{Error: "GET only"})
			return
		}
		WriteJSON(w, http.StatusOK, status())
	}
}
