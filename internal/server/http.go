package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"unicode"
)

// isJSONArray reports whether the body's first non-space byte opens an array.
func isJSONArray(body []byte) bool {
	for _, b := range body {
		if unicode.IsSpace(rune(b)) {
			continue
		}
		return b == '['
	}
	return false
}

// API paths served by Handler.
const (
	PathJobs      = "/v1/jobs"
	PathDecisions = "/v1/decisions"
	PathStatus    = "/v1/status"
	PathMetrics   = "/metrics"
)

// submitResponse is the POST /v1/jobs reply.
type submitResponse struct {
	Accepted []int  `json:"accepted"`
	Error    string `json:"error,omitempty"`
}

// decisionsResponse is the GET /v1/decisions reply.
type decisionsResponse struct {
	Decisions []Decision `json:"decisions"`
	// Next is the cursor to pass as ?since= on the next poll.
	Next uint64 `json:"next"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs       — submit one JobSpec or an array of them
//	GET  /v1/decisions  — decision log; ?since=<seq>&limit=<n>
//	GET  /v1/status     — service snapshot
//	GET  /metrics       — Prometheus text metrics
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathJobs, s.handleJobs)
	mux.HandleFunc(PathDecisions, s.handleDecisions)
	mux.HandleFunc(PathStatus, s.handleStatus)
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// handleJobs ingests one JobSpec, or an array of them atomically-per-job
// (the response lists the ids accepted before the first failure).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, submitResponse{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, submitResponse{Error: fmt.Sprintf("reading body: %v", err)})
		return
	}
	var specs []JobSpec
	if isJSONArray(body) {
		if err := json.Unmarshal(body, &specs); err != nil {
			writeJSON(w, http.StatusBadRequest, submitResponse{Error: fmt.Sprintf("decoding jobs: %v", err)})
			return
		}
	} else {
		var one JobSpec
		if err := json.Unmarshal(body, &one); err != nil {
			writeJSON(w, http.StatusBadRequest, submitResponse{Error: fmt.Sprintf("decoding job: %v", err)})
			return
		}
		specs = []JobSpec{one}
	}
	ids := make([]int, 0, len(specs))
	for _, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrQueueFull):
				code = http.StatusTooManyRequests
			case errors.Is(err, ErrStopped):
				code = http.StatusServiceUnavailable
			}
			writeJSON(w, code, submitResponse{Accepted: ids, Error: err.Error()})
			return
		}
		ids = append(ids, id)
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Accepted: ids})
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, submitResponse{Error: "GET only"})
		return
	}
	q := r.URL.Query()
	var since uint64
	var limit int
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, submitResponse{Error: "bad since"})
			return
		}
		since = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, submitResponse{Error: "bad limit"})
			return
		}
		limit = n
	}
	ds := s.Decisions(since, limit)
	next := since
	if len(ds) > 0 {
		next = ds[len(ds)-1].Seq
	}
	writeJSON(w, http.StatusOK, decisionsResponse{Decisions: ds, Next: next})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, submitResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, s.Status())
}
