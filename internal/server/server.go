// Package server implements the online scheduling service: the long-running
// form of the WaterWise Optimization Decision Controller. Where cluster.Run
// replays a static trace offline, the server ingests a continuous stream of
// job arrivals over HTTP/JSON, micro-batches them into scheduling rounds on
// a configurable cadence, and feeds them to the same incremental simulator
// (cluster.Sim) and scheduler stack the offline path uses — so an
// accelerated-time replay of a trace through the service reproduces
// cluster.Run decision for decision.
//
// The service clock runs in simulated time. In paced mode (TimeScale > 0)
// the simulated clock advances TimeScale simulated seconds per wall second
// and rounds fire on a wall timer; in accelerated mode (TimeScale == 0)
// rounds fire back to back as fast as the solver allows, fast-forwarding
// over idle gaps — the mode for replay, benchmarking, and tests.
//
// Ingest is bounded: QueueCap caps the number of jobs queued ahead of
// placement, and Submit rejects (ErrQueueFull) once it is reached —
// backpressure the HTTP layer translates to 429 Too Many Requests.
package server

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/feed"
	"waterwise/internal/footprint"
	"waterwise/internal/milp"
	"waterwise/internal/obs"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/transfer"
	"waterwise/internal/tsdb"
	"waterwise/internal/units"
	"waterwise/internal/wal"
	"waterwise/internal/workload"
)

// Config parameterizes the scheduling service.
type Config struct {
	// Env is the environment (regions, grids, weather) decisions read.
	Env *region.Environment
	// Regions restricts the server to a subset of Env's regions — the
	// shard form the fleet gateway (internal/fleet) runs N of: the server
	// schedules only over the subset (via an Environment.Partition view
	// sharing Env's series) and rejects submissions homed elsewhere with
	// ErrUnknownRegion. Empty means all of Env's regions.
	Regions []region.ID
	// Net is the inter-region transfer model (default transfer.New()).
	Net *transfer.Model
	// FP is the footprint model (default: unperturbed).
	FP *footprint.Model
	// Scheduler decides placements each round.
	Scheduler cluster.Scheduler
	// Tolerance is the delay tolerance TOL as a fraction (e.g. 0.5).
	Tolerance float64
	// Round is the micro-batching cadence in simulated time (default 1m).
	Round time.Duration
	// TimeScale maps wall time to simulated time: simulated seconds per
	// wall second. 1 runs in real time, 60 packs a simulated hour into a
	// wall minute; 0 (the default) is accelerated mode — rounds run back to
	// back with no pacing, fast-forwarding over idle stretches.
	TimeScale float64
	// QueueCap bounds the jobs queued ahead of placement (pending rounds +
	// not-yet-due arrivals). Submit rejects once reached. Default 65536.
	QueueCap int
	// DecisionLogCap bounds the in-memory decision log ring (default 65536).
	// Older decisions are dropped from the log (never from the accounting).
	DecisionLogCap int
	// DataDir, when non-empty, makes the server durable: accepted jobs
	// and scheduling rounds are written ahead to a segmented WAL under
	// this directory, settled state is snapshotted periodically, and New
	// recovers a prior process's state from the directory before serving
	// (see durable.go). Empty keeps the server purely in-memory.
	DataDir string
	// SnapshotEvery is the snapshot cadence in scheduling rounds
	// (default 256). Ignored without DataDir.
	SnapshotEvery int
	// WALSegmentBytes overrides the WAL segment rotation threshold
	// (default 4 MiB). Ignored without DataDir.
	WALSegmentBytes int64
	// SyncInterval bounds how long an acknowledged job may sit in the
	// WAL's user-space buffer before a group commit when no round fires
	// (default 100ms). Rounds always commit their batch on completion.
	SyncInterval time.Duration
	// WALSyncDelay is passed to the write-ahead log as its fsync latency
	// hook (wal.Options.SyncDelay): the scenario harness injects slow-disk
	// stalls through it. Nil — the default — is exactly free. Ignored
	// without DataDir.
	WALSyncDelay func() time.Duration
	// DedupeCap bounds the decided-job dedupe index that makes client
	// re-submits idempotent after a restart (default 262144 entries,
	// evicted FIFO).
	DedupeCap int
	// Obs configures the observability layer — latency histograms, the
	// per-round trace ring, sampled job lifecycle traces (see ObsConfig).
	// Measurement only: enabling or disabling it never changes decisions.
	Obs ObsConfig
	// Record configures the metrics flight recorder (see RecordConfig):
	// round-clock self-scrapes of /metrics into an in-process TSDB with
	// windowed queries and burn-rate SLO alerts. Measurement only.
	Record RecordConfig
	// OnRound, when non-nil, is called with the completed-rounds count
	// after each scheduling round, outside the server's lock — the hook
	// the fleet uses to drive its own recorder on the shards' round
	// clock. Must not block for long: it runs on the round loop's
	// goroutine between rounds.
	OnRound func(rounds uint64)
}

func (c Config) withDefaults() (Config, error) {
	if c.Env == nil {
		return c, errors.New("server: nil environment")
	}
	if len(c.Regions) > 0 {
		view, err := c.Env.Partition(c.Regions...)
		if err != nil {
			return c, fmt.Errorf("server: %w", err)
		}
		c.Env = view
	}
	if c.Scheduler == nil {
		return c, errors.New("server: nil scheduler")
	}
	if c.Net == nil {
		c.Net = transfer.New()
	}
	if c.FP == nil {
		c.FP = footprint.NewModel(footprint.NoPerturbation)
	}
	if c.Round <= 0 {
		c.Round = time.Minute
	}
	if c.TimeScale < 0 {
		return c, fmt.Errorf("server: negative time scale %g", c.TimeScale)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 65536
	}
	if c.DecisionLogCap <= 0 {
		c.DecisionLogCap = 65536
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.DedupeCap <= 0 {
		c.DedupeCap = 262144
	}
	return c, nil
}

// secondsToDuration converts float seconds to a Duration, rounding to the
// nearest nanosecond so millisecond-quantized wire values map exactly.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}

// Typed ingest rejections. Submit wraps each with the offending detail
// (region name, job id, instant), so callers — the HTTP layer here and the
// fleet gateway routing across shards — branch with errors.Is and map each
// cause to a distinct HTTP status instead of matching message strings.
var (
	// ErrQueueFull is returned by Submit when the ingest queue is at
	// QueueCap — the service's backpressure signal.
	ErrQueueFull = errors.New("server: ingest queue full")
	// ErrStopped is returned by Submit after Stop.
	ErrStopped = errors.New("server: stopped")
	// ErrUnknownRegion rejects a home region this server does not serve —
	// absent from the environment, or outside this shard's partition.
	ErrUnknownRegion = errors.New("server: unknown home region")
	// ErrUnknownBenchmark rejects a benchmark with no workload profile.
	ErrUnknownBenchmark = errors.New("server: unknown benchmark")
	// ErrDuplicateID rejects a client-assigned id that is already queued.
	ErrDuplicateID = errors.New("server: duplicate job id")
	// ErrOutsideHorizon rejects a submit instant outside the environment's
	// generated series.
	ErrOutsideHorizon = errors.New("server: submit outside environment horizon")
)

// JobSpec is one job submission. Zero estimate fields default to the
// benchmark profile's means (what the controller would know from history);
// zero actuals default to the estimates.
type JobSpec struct {
	// ID is the client-assigned job id; nil auto-assigns.
	ID *int `json:"id,omitempty"`
	// Benchmark names the workload profile (Table 1).
	Benchmark string `json:"benchmark"`
	// Home is the submitting region.
	Home region.ID `json:"home"`
	// Submit is the arrival instant in simulated time; zero means "now"
	// (live mode). Replay clients pass trace timestamps.
	Submit time.Time `json:"submit,omitempty"`
	// DurationSec and EnergyKWh are the ground-truth actuals.
	DurationSec float64 `json:"duration_s,omitempty"`
	EnergyKWh   float64 `json:"energy_kwh,omitempty"`
	// EstDurationSec and EstEnergyKWh are the controller's estimates.
	EstDurationSec float64 `json:"est_duration_s,omitempty"`
	EstEnergyKWh   float64 `json:"est_energy_kwh,omitempty"`
}

// Decision is one placement, as exposed by the decision log.
type Decision struct {
	// Seq is the log sequence number (monotonic from 1).
	Seq uint64 `json:"seq"`
	// JobID identifies the placed job.
	JobID int `json:"job_id"`
	// Region is the placement.
	Region region.ID `json:"region"`
	// Round is the simulated time of the deciding round.
	Round time.Time `json:"round"`
	// Start and Finish bound the execution in simulated time.
	Start  time.Time `json:"start"`
	Finish time.Time `json:"finish"`
	// CarbonG and WaterL are the job's accounted footprint (compute+comm).
	CarbonG float64 `json:"carbon_g"`
	WaterL  float64 `json:"water_l"`
	// DecidedWall is the wall-clock instant the round committed, for
	// client-side decision-latency measurement.
	DecidedWall time.Time `json:"decided_wall"`
}

// Status is a point-in-time service snapshot.
type Status struct {
	Scheduler string    `json:"scheduler"`
	SimNow    time.Time `json:"sim_now"`
	Round     string    `json:"round"`
	TimeScale float64   `json:"time_scale"`
	Pending   int       `json:"pending"`
	Future    int       `json:"future"`
	QueueCap  int       `json:"queue_cap"`
	Accepted  uint64    `json:"accepted"`
	Rejected  uint64    `json:"rejected"`
	Rounds    uint64    `json:"rounds"`
	Decisions uint64    `json:"decisions"`
	// LastSeq is the newest decision-log sequence number (the cursor a
	// fresh poller should resume behind).
	LastSeq     uint64 `json:"last_seq"`
	Unscheduled int    `json:"unscheduled"`
	// Free is the per-region free server count at SimNow.
	Free map[region.ID]int `json:"free"`
	// Obs digests the observability histograms — decision latency, round
	// and solve time quantiles — when the layer is enabled.
	Obs *ObsSummary `json:"obs,omitempty"`
	// Solver carries branch-and-bound instrumentation when the scheduler
	// exposes it (the WaterWise controller does).
	Solver *milp.Stats `json:"solver,omitempty"`
	// Feed reports the environment feed behind this server's decisions:
	// which provider, how stale its readings are, and its fetch/cache
	// accounting (trivially fresh for the deterministic providers).
	Feed *feed.Health `json:"feed,omitempty"`
	// WAL reports the durability layer — log size, fsync accounting, and
	// what the last restart recovered — when DataDir is configured.
	WAL *WALStatus `json:"wal,omitempty"`
	// Err reports a scheduler failure that halted the round loop.
	Err string `json:"err,omitempty"`
}

// solverStatser is implemented by schedulers that expose branch-and-bound
// instrumentation (core.Scheduler).
type solverStatser interface{ SolverStats() milp.Stats }

// futureHeap orders not-yet-due jobs by (Submit, ID) — the same order the
// offline replay ingests a sorted trace in.
type futureHeap []*trace.Job

func (h futureHeap) Len() int { return len(h) }
func (h futureHeap) Less(i, j int) bool {
	if h[i].Submit.Equal(h[j].Submit) {
		return h[i].ID < h[j].ID
	}
	return h[i].Submit.Before(h[j].Submit)
}
func (h futureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *futureHeap) Push(x interface{}) { *h = append(*h, x.(*trace.Job)) }
func (h *futureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Server is the online scheduling service. Construct with New, attach the
// HTTP API via Handler, start the round loop with Start, and stop with Stop.
type Server struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	sim  *cluster.Sim
	// nextK is the index of the next scheduling round: round k fires at
	// simulated time Env.Start + k*Round.
	nextK int64
	// simNow is the simulated time of the most recent round (Env.Start
	// before any round has run).
	simNow time.Time
	// future holds accepted jobs whose Submit lies beyond simNow.
	future futureHeap
	// live tracks jobs accepted but not yet decided, keyed by id with the
	// submission's spec digest (duplicate rejection + idempotent retry);
	// autoID assigns ids to spec-less submissions.
	live   map[int]uint64
	autoID int
	// decidedIdx remembers decided jobs' spec digests (bounded, FIFO via
	// decidedFIFO) so a client retrying an already-placed submission gets
	// its original id back instead of ErrDuplicateID.
	decidedIdx  map[int]uint64
	decidedFIFO []int

	decisions []Decision // ring, capacity DecisionLogCap
	decHead   int        // index of the oldest entry once the ring wrapped
	decSeq    uint64

	accepted, rejected, rounds, decided uint64
	deduped                             uint64
	unscheduled                         int
	overheadSum                         time.Duration

	// obs is the observability layer (nil when Config.Obs.Disable).
	obs *serverObs

	// Durability (nil/zero without Config.DataDir): the write-ahead log,
	// the group-commit and snapshot cadence state, and what the restart
	// path recovered.
	wlog          *wal.Log
	walDirty      bool
	lastWalSync   time.Time
	sinceSnap     int
	recoveryDur   time.Duration
	recoveredRecs uint64
	recoveredSnap bool

	// recorder is the metrics flight recorder (nil unless Record.Enable).
	recorder *tsdb.Recorder

	started  bool
	stopped  bool
	stopCh   chan struct{}
	loopDone chan struct{}
	runErr   error

	// wallStart anchors the paced clock: simulated time advances TimeScale
	// seconds per wall second from Env.Start at wallStart.
	wallStart time.Time
}

// New validates cfg and returns a stopped service; call Start to begin
// scheduling rounds.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sim, err := cluster.NewSim(cluster.Config{
		Env: cfg.Env, Net: cfg.Net, FP: cfg.FP,
		Tick: cfg.Round, Tolerance: cfg.Tolerance,
	}, cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		sim:        sim,
		simNow:     cfg.Env.Start,
		live:       make(map[int]uint64),
		decidedIdx: make(map[int]uint64),
		stopCh:     make(chan struct{}),
		loopDone:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if !cfg.Obs.Disable {
		s.obs = newServerObs(cfg.Obs)
	}
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	if cfg.Record.Enable {
		if err := s.newRecorder(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// simAt maps a wall instant to the paced simulated clock. Accelerated mode
// has no wall mapping; it reports the round clock instead.
func (s *Server) simAt(wall time.Time) time.Time {
	if s.cfg.TimeScale == 0 || s.wallStart.IsZero() {
		return s.simNow
	}
	return s.cfg.Env.Start.Add(time.Duration(float64(wall.Sub(s.wallStart)) * s.cfg.TimeScale))
}

// Submit accepts one job into the ingest queue. The returned id is the
// job's identity in the decision log. Rejections: ErrQueueFull
// (backpressure), ErrStopped, duplicate ids, unknown benchmarks or regions,
// and submit instants outside the environment horizon.
//
// Re-submits are idempotent: a client-assigned id whose spec digest
// matches what this server already accepted (still queued or already
// decided, up to DedupeCap history) is acknowledged again with the
// original id and no new job — the safe-retry contract clients rely on
// after a connection error or a shard restart. The same id with a
// different spec stays ErrDuplicateID.
func (s *Server) Submit(spec JobSpec) (int, error) {
	job, err := s.buildJob(spec)
	if err != nil {
		return 0, err
	}
	digest := specDigest(spec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		s.rejected++
		return 0, ErrStopped
	}
	if spec.ID != nil {
		if g, dup := s.live[job.ID]; dup {
			if g == digest {
				s.deduped++
				return job.ID, nil
			}
			s.rejected++
			return 0, fmt.Errorf("%w: %d", ErrDuplicateID, job.ID)
		}
		if g, done := s.decidedIdx[job.ID]; done && g == digest {
			s.deduped++
			return job.ID, nil
		}
	}
	if len(s.future)+s.sim.Pending() >= s.cfg.QueueCap {
		s.rejected++
		return 0, ErrQueueFull
	}
	if spec.ID == nil {
		job.ID = s.autoID
	}
	if job.Submit.IsZero() {
		job.Submit = s.simAt(time.Now())
		if job.Submit.Before(s.cfg.Env.Start) {
			job.Submit = s.cfg.Env.Start
		}
	}
	if job.Submit.Before(s.cfg.Env.Start) || !job.Submit.Before(s.cfg.Env.End()) {
		s.rejected++
		return 0, fmt.Errorf("%w: %v not in [%v, %v)",
			ErrOutsideHorizon, job.Submit, s.cfg.Env.Start, s.cfg.Env.End())
	}
	if s.wlog != nil {
		// Write-ahead: the acceptance is logged before it is acknowledged,
		// and group-committed by the next round or the SyncInterval.
		if err := s.walAppendLocked(encodeJobRecord(job, digest)); err != nil {
			s.rejected++
			return 0, err
		}
		if time.Since(s.lastWalSync) >= s.cfg.SyncInterval {
			if err := s.walSyncLocked(); err != nil {
				s.rejected++
				return 0, err
			}
		}
	}
	if job.ID >= s.autoID {
		s.autoID = job.ID + 1
	}
	s.live[job.ID] = digest
	heap.Push(&s.future, job)
	s.accepted++
	if s.obs != nil {
		acceptWall := time.Now()
		s.obs.acceptedWall[job.ID] = acceptWall
		s.obs.jobs.Accepted(job.ID, acceptWall, job.Submit)
	}
	s.cond.Broadcast() // wake an idle accelerated loop
	return job.ID, nil
}

// buildJob converts a spec into a trace job, defaulting estimates to the
// benchmark profile and actuals to the estimates.
func (s *Server) buildJob(spec JobSpec) (*trace.Job, error) {
	prof, err := workload.Lookup(spec.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBenchmark, spec.Benchmark)
	}
	if s.cfg.Env.Region(spec.Home) == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRegion, spec.Home)
	}
	estDur := secondsToDuration(spec.EstDurationSec)
	if estDur <= 0 {
		estDur = prof.MeanDuration
	}
	estEnergy := spec.EstEnergyKWh
	if estEnergy <= 0 {
		estEnergy = float64(prof.MeanEnergy())
	}
	dur := secondsToDuration(spec.DurationSec)
	if dur <= 0 {
		dur = estDur
	}
	energy := spec.EnergyKWh
	if energy <= 0 {
		energy = estEnergy
	}
	job := &trace.Job{
		Benchmark: spec.Benchmark, Home: spec.Home,
		Duration: dur, EstDuration: estDur,
		Energy: units.KWh(energy), EstEnergy: units.KWh(estEnergy),
	}
	if !spec.Submit.IsZero() {
		job.Submit = spec.Submit.UTC()
	}
	if spec.ID != nil {
		job.ID = *spec.ID
	}
	return job, nil
}

// Start launches the round loop. Jobs may be submitted before Start —
// replay clients queue the whole trace first so the accelerated clock
// cannot outrun the feed.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	// Seal the pre-Start backlog: replay clients queue the whole trace
	// before starting the clock, and from here the accelerated loop may
	// decide (and serve) any of it within the first SyncInterval.
	_ = s.walSyncIfDirtyLocked()
	s.mu.Unlock()
	go s.run()
}

// Stop halts the round loop, abandons still-queued jobs, and waits for the
// loop to exit. Idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	started := s.started
	if s.stopped {
		s.mu.Unlock()
		if started {
			<-s.loopDone
		}
		return
	}
	s.stopped = true
	close(s.stopCh)
	s.cond.Broadcast()
	s.mu.Unlock()
	if started {
		<-s.loopDone
	}
	s.mu.Lock()
	// Everything still queued — pending rounds and not-yet-due arrivals —
	// is abandoned into the result's Unscheduled list.
	for len(s.future) > 0 {
		j := heap.Pop(&s.future).(*trace.Job)
		s.sim.Submit(j, s.simNow)
	}
	s.abandonLocked()
	if s.wlog != nil {
		// Seal the shutdown: a final snapshot makes the next start replay
		// zero records (the clean-shutdown fast path). After Crash the log
		// is already closed and both calls are no-ops — exactly right, a
		// crash must not retroactively tidy the directory.
		_ = s.snapshotLocked()
		_ = s.wlog.Close()
	}
	s.mu.Unlock()
	if s.recorder != nil {
		// The loop is down, so no more rounds arrive; Close drains the
		// async scraper. The store stays queryable after Stop.
		s.recorder.Close()
	}
}

// abandonLocked abandons every pending job, releasing their ids and
// updating the unscheduled counter. Called with mu held.
func (s *Server) abandonLocked() {
	for _, j := range s.sim.Abandon() {
		delete(s.live, j.ID)
		if s.obs != nil {
			delete(s.obs.acceptedWall, j.ID)
		}
		s.unscheduled++
	}
}

// Drain blocks until the ingest queue and pending set are empty (the
// accelerated replay's "trace fully scheduled" condition), the round loop
// fails, or the context expires.
func (s *Server) Drain(ctx context.Context) error {
	wake := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer wake()
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.future)+s.sim.Pending() > 0 && !s.stopped && s.runErr == nil && ctx.Err() == nil {
		s.cond.Wait()
	}
	if s.runErr != nil {
		return s.runErr
	}
	if ctx.Err() == nil && !s.stopped && s.wlog != nil {
		// The queue is drained — settled state, nothing in flight — so a
		// snapshot here means a subsequent restart replays zero records.
		_ = s.snapshotLocked()
	}
	return ctx.Err()
}

// Result returns the accumulated accounting (the same cluster.Result the
// offline replay produces). Call after Stop or Drain for a settled view.
func (s *Server) Result() *cluster.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sim.Result()
}

// Err reports a scheduler failure that halted the round loop, if any.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runErr
}

// Stopped reports whether the server has halted — by Stop, by Crash, or
// by a round-loop failure (see Err). The fleet supervisor's health probe:
// a shard that reports stopped without its fleet having stopped it is
// dead and a restart candidate.
func (s *Server) Stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopped || s.runErr != nil
}

// SetQueueCap changes the ingest queue capacity at runtime — the
// scenario harness's queue-squeeze fault. A lower cap takes effect on
// the next Submit (already-queued jobs are never evicted); n <= 0 is
// ignored. Decision-neutral: capacity only selects which submissions are
// rejected, never how an accepted job is placed.
func (s *Server) SetQueueCap(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.cfg.QueueCap = n
	s.mu.Unlock()
}

// QueueCap reports the current ingest queue capacity.
func (s *Server) QueueCap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.QueueCap
}

// Cursor is an atomic snapshot of the decision log's progress, taken
// together with a Decisions page so a merging consumer — the fleet
// gateway interleaving several shards' logs — can reason about what it
// has and has not seen.
type Cursor struct {
	// Seq is the latest sequence number assigned (0 before any decision).
	Seq uint64 `json:"seq"`
	// Oldest is the sequence number of the oldest entry still in the ring
	// (0 while the log is empty). A reader whose cursor has fallen below
	// Oldest-1 has lost decisions to ring eviction.
	Oldest uint64 `json:"oldest"`
	// Frontier is the round clock: every decision of rounds at or before
	// Frontier is already in the log, and later reads only ever append
	// decisions of strictly later rounds. Before the server's first round
	// it lies strictly before every possible decision round.
	Frontier time.Time `json:"frontier"`
	// Idle reports a fully drained server: nothing queued, nothing
	// pending, so no decision exists beyond Seq until new work arrives.
	Idle bool `json:"idle"`
}

// Decisions returns up to limit logged decisions with Seq > since, oldest
// first (limit <= 0 means all). The log is a bounded ring: decisions older
// than the last DecisionLogCap may be gone.
func (s *Server) Decisions(since uint64, limit int) []Decision {
	ds, _ := s.DecisionsPage(since, limit)
	return ds
}

// DecisionsPage is Decisions plus the log cursor, snapshotted atomically —
// the export the fleet's k-way merge is built on.
func (s *Server) DecisionsPage(since uint64, limit int) ([]Decision, Cursor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Group commit on read: every decision this call returns is on disk
	// before it leaves the process, so a served decision can never be
	// lost to a crash — the invariant the restart equivalence rests on.
	_ = s.walSyncIfDirtyLocked()
	cur := Cursor{
		Seq:      s.decSeq,
		Frontier: s.simNow,
		Idle:     len(s.future) == 0 && s.sim.Pending() == 0,
	}
	if s.nextK == 0 {
		// No round has run yet, so round 0 — whose time IS simNow — may
		// still produce decisions: the frontier lies strictly before it.
		// (After any round, nextK > 0 and every future decision's Round
		// exceeds simNow, so the plain round clock is the frontier.)
		cur.Frontier = s.simNow.Add(-time.Nanosecond)
	}
	n := len(s.decisions)
	if n > 0 {
		cur.Oldest = s.decisions[s.decHead].Seq
	}
	if n == 0 {
		return []Decision{}, cur // non-nil: the HTTP layer marshals it as []
	}
	// Ring entries are Seq-ordered from decHead, so binary search the first
	// entry past the cursor instead of scanning the whole log — decision
	// polling is the serving layer's read hot path, and a full ring holds
	// DecisionLogCap entries.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if s.decisions[(s.decHead+mid)%n].Seq <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	count := n - lo
	if limit > 0 && count > limit {
		count = limit
	}
	out := make([]Decision, count)
	for i := range out {
		out[i] = s.decisions[(s.decHead+lo+i)%n]
	}
	return out, cur
}

// Regions returns the region IDs this server schedules over — the full
// environment's, or the Config.Regions partition when sharded.
func (s *Server) Regions() []region.ID { return s.cfg.Env.IDs() }

// Status returns a point-in-time service snapshot.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Scheduler: s.cfg.Scheduler.Name(),
		SimNow:    s.simNow,
		Round:     s.cfg.Round.String(),
		TimeScale: s.cfg.TimeScale,
		Pending:   s.sim.Pending(),
		Future:    len(s.future),
		QueueCap:  s.cfg.QueueCap,
		Accepted:  s.accepted,
		Rejected:  s.rejected,
		Rounds:    s.rounds,
		Decisions: s.decided,
		LastSeq:   s.decSeq,
		Free:      s.sim.Free(s.simNow),
	}
	st.Unscheduled = s.unscheduled
	if s.obs != nil {
		snaps := &ObsSnapshots{
			Decision: s.obs.decision.Snapshot(),
			Ingest:   s.obs.ingest.Snapshot(),
			Round:    s.obs.round.Snapshot(),
		}
		for i, h := range s.obs.stages {
			snaps.Stages[i] = h.Snapshot()
		}
		st.Obs = snaps.Summary(s.obs.jobs.SampleEvery())
	}
	if ss, ok := s.cfg.Scheduler.(solverStatser); ok {
		stats := ss.SolverStats()
		st.Solver = &stats
	}
	if prov := s.cfg.Env.Provider(); prov != nil {
		h := feed.HealthOf(prov)
		st.Feed = &h
	}
	st.WAL = s.walStatusLocked()
	if s.runErr != nil {
		st.Err = s.runErr.Error()
	}
	return st
}

// run is the round loop. Accelerated mode steps rounds back to back,
// fast-forwarding over idle gaps and parking on the condition variable when
// the queue is empty; paced mode fires rounds on a wall timer.
func (s *Server) run() {
	defer close(s.loopDone)
	if s.cfg.TimeScale == 0 {
		s.runAccelerated()
		return
	}
	s.runPaced()
}

func (s *Server) runAccelerated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.runErr != nil {
			return
		}
		k, ok := s.nextRoundLocked()
		if !ok {
			s.cond.Wait()
			continue
		}
		s.nextK = k
		s.roundLocked()
		rounds := s.rounds
		// Yield the lock between rounds: a long drain must not starve the
		// HTTP endpoints (Submit/Status/Decisions) for its whole duration.
		// Go's mutex hands off to waiters that have queued >1ms, so this
		// bounds their latency to about one round. The round hooks run in
		// this gap — their gather path re-enters Status, which needs mu.
		s.mu.Unlock()
		s.notifyRound(rounds)
		s.mu.Lock()
	}
}

func (s *Server) runPaced() {
	s.mu.Lock()
	// Anchor the paced clock so simulated time continues from the
	// (possibly recovered) round clock rather than resetting to
	// Env.Start: the wall instant that maps to simNow is "now".
	s.wallStart = time.Now().Add(-time.Duration(float64(s.simNow.Sub(s.cfg.Env.Start)) / s.cfg.TimeScale))
	wallRound := time.Duration(float64(s.cfg.Round) / s.cfg.TimeScale)
	if wallRound < time.Millisecond {
		// An extreme TimeScale would truncate the tick to zero (which
		// panics time.NewTicker); at sub-millisecond pacing the accelerated
		// mode is the right tool anyway.
		wallRound = time.Millisecond
	}
	s.mu.Unlock()
	tick := time.NewTicker(wallRound)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		if s.stopped || s.runErr != nil {
			s.mu.Unlock()
			return
		}
		// Derive the round index from the wall clock rather than counting
		// ticks: a slow round (or GC stall) drops ticker ticks, and a
		// tick-counted clock would lag the wall-anchored simAt stamping of
		// live submissions forever. Missed rounds coalesce into the next.
		k := int64(float64(time.Since(s.wallStart)) * s.cfg.TimeScale / float64(s.cfg.Round))
		if k > s.nextK {
			s.nextK = k
		}
		s.roundLocked()
		rounds := s.rounds
		s.mu.Unlock()
		s.notifyRound(rounds)
	}
}

// nextRoundLocked picks the next round index to run in accelerated mode:
// the very next round while jobs are pending (deferred jobs are re-offered
// every round, as offline), otherwise the round aligned at or after the
// earliest queued arrival. No work → no round.
func (s *Server) nextRoundLocked() (int64, bool) {
	if s.sim.Pending() > 0 {
		return s.nextK, true
	}
	if len(s.future) > 0 {
		due := s.future[0].Submit.Sub(s.cfg.Env.Start)
		k := int64((due + s.cfg.Round - 1) / s.cfg.Round)
		if k < s.nextK {
			k = s.nextK
		}
		return k, true
	}
	return 0, false
}

// roundLocked runs scheduling round nextK: ingest due arrivals, step the
// simulator, log this round's decisions. Called with mu held.
func (s *Server) roundLocked() {
	k := s.nextK
	now := s.cfg.Env.Start.Add(time.Duration(k) * s.cfg.Round)
	s.simNow = now
	s.nextK++
	// Observability is measurement only: every ob-guarded block below
	// reads clocks and counters but feeds nothing back into scheduling.
	ob := s.obs
	var rt obs.RoundTrace
	if ob != nil {
		rt.Index, rt.Sim, rt.Wall = k, now, time.Now()
	}
	for len(s.future) > 0 && !s.future[0].Submit.After(now) {
		job := heap.Pop(&s.future).(*trace.Job)
		s.sim.Submit(job, now)
		if ob != nil {
			ob.jobs.Batched(job.ID, k, now, rt.Wall)
		}
	}
	if ob != nil {
		rt.Stages[obs.StageIngest] = time.Since(rt.Wall)
	}
	if !now.Before(s.cfg.Env.End()) {
		// The service clock ran off the environment horizon (possible only
		// with jobs that could never be placed: every accepted submission
		// lies inside the horizon). Abandon them rather than spin rounds
		// against an environment with no snapshots — the serving analogue
		// of the offline replay's MaxDrain cutoff.
		s.abandonLocked()
		s.cond.Broadcast()
		return
	}
	if s.sim.Pending() == 0 {
		s.cond.Broadcast()
		return
	}
	if ob != nil {
		rt.Batch = s.sim.Pending()
	}
	t0 := time.Now()
	outcomes, err := s.sim.Step(now)
	solve := time.Since(t0)
	s.overheadSum += solve
	s.rounds++
	if err != nil {
		s.runErr = err
		s.cond.Broadcast()
		return
	}
	if ob != nil {
		rt.Stages[obs.StageSolve] = solve
	}
	wall := time.Now()
	var roundDecs []Decision
	if s.wlog != nil && len(outcomes) > 0 {
		roundDecs = make([]Decision, 0, len(outcomes))
	}
	for i := range outcomes {
		o := &outcomes[i]
		s.recordDecidedLocked(o.Job.ID)
		s.decSeq++
		s.decided++
		d := Decision{
			Seq: s.decSeq, JobID: o.Job.ID, Region: o.Region,
			Round: now, Start: o.Start, Finish: o.Finish,
			CarbonG:     float64(o.Compute.Carbon() + o.Comm.Carbon()),
			WaterL:      float64(o.Compute.Water() + o.Comm.Water()),
			DecidedWall: wall,
		}
		s.logDecisionLocked(d)
		if roundDecs != nil {
			roundDecs = append(roundDecs, d)
		}
		if ob != nil {
			if aw, tracked := ob.acceptedWall[o.Job.ID]; tracked {
				ob.decision.Record(wall.Sub(aw).Seconds())
				delete(ob.acceptedWall, o.Job.ID)
			}
			ob.jobs.Decided(o.Job.ID, k, wall, string(o.Region), o.Start, o.Finish)
		}
	}
	if ob != nil {
		rt.Stages[obs.StagePublish] = time.Since(wall)
		rt.Decided = len(outcomes)
	}
	if s.wlog != nil {
		// Group-commit the round (decisions included even when the batch
		// was fully deferred: deferral counters feed the urgency score, so
		// a zero-decision stepped round still must replay).
		var rtp *obs.RoundTrace
		if ob != nil {
			rtp = &rt
		}
		s.walRoundLocked(k, roundDecs, rtp)
	}
	if ob != nil {
		rt.Total = time.Since(rt.Wall)
		if ss, ok := s.cfg.Scheduler.(solverStatser); ok {
			// Per-round solver deltas: the cumulative stats minus the
			// previous round's, so a slow round shows its own node count.
			stats := ss.SolverStats()
			rt.Nodes = stats.Nodes - ob.lastSolver.Nodes
			rt.SimplexIters = stats.SimplexIters - ob.lastSolver.SimplexIters
			rt.WarmStarts = stats.WarmStarts - ob.lastSolver.WarmStarts
			rt.ColdStarts = stats.ColdStarts - ob.lastSolver.ColdStarts
			ob.lastSolver = stats
		}
		ob.recordRound(rt)
	}
	s.cond.Broadcast()
}

// logDecisionLocked appends to the bounded decision ring.
func (s *Server) logDecisionLocked(d Decision) {
	if len(s.decisions) < s.cfg.DecisionLogCap {
		s.decisions = append(s.decisions, d)
		return
	}
	s.decisions[s.decHead] = d
	s.decHead = (s.decHead + 1) % len(s.decisions)
}
