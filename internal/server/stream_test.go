package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"waterwise/internal/wire"
)

// streamClient is a minimal protocol client for tests: one connection,
// synchronous submit batches, and a decision reader. Ingest and
// subscribe use separate connections so replies and pushes never
// interleave on one socket.
type streamClient struct {
	t       testing.TB
	nc      net.Conn
	conn    *wire.Conn
	welcome wire.Welcome
}

func dialStream(t testing.TB, addr string, resume uint64, subscribe bool) *streamClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	var flags uint32
	if subscribe {
		flags |= wire.HelloSubscribe
	}
	if err := conn.WriteFrame(wire.TypeHello, wire.AppendHello(nil, wire.Hello{Resume: resume, Flags: flags})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := conn.ReadFrame()
	if err != nil || typ != wire.TypeWelcome {
		t.Fatalf("handshake: type %d, err %v", typ, err)
	}
	w, err := conn.Codec().DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	return &streamClient{t: t, nc: nc, conn: conn, welcome: w}
}

func (c *streamClient) close() { c.nc.Close() }

// submit sends one Submit frame and waits for its reply.
func (c *streamClient) submit(specs []JobSpec) []wire.SubmitResult {
	c.t.Helper()
	jobs := make([]wire.Job, len(specs))
	for i := range specs {
		jobs[i] = WireJob(specs[i])
	}
	payload, err := wire.AppendSubmit(nil, jobs)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := c.conn.WriteFrame(wire.TypeSubmit, payload); err != nil {
		c.t.Fatal(err)
	}
	typ, reply, err := c.conn.ReadFrame()
	if err != nil || typ != wire.TypeSubmitReply {
		c.t.Fatalf("submit reply: type %d, err %v", typ, err)
	}
	results, err := c.conn.Codec().DecodeSubmitReply(reply, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	if len(results) != len(specs) {
		c.t.Fatalf("submit reply: %d results for %d jobs", len(results), len(specs))
	}
	return results
}

// mustAccept submits and asserts every job landed (SubmitOK).
func (c *streamClient) mustAccept(specs []JobSpec) {
	c.t.Helper()
	for _, res := range c.submit(specs) {
		if res.Code != wire.SubmitOK {
			c.t.Fatalf("submit rejected with code %d", res.Code)
		}
	}
}

// readDecisions consumes pushed Decisions frames (acking each) until n
// decisions have been collected or the deadline passes.
func (c *streamClient) readDecisions(n int, deadline time.Duration) []wire.Decision {
	c.t.Helper()
	var out []wire.Decision
	c.nc.SetReadDeadline(time.Now().Add(deadline))
	defer c.nc.SetReadDeadline(time.Time{})
	for len(out) < n {
		typ, payload, err := c.conn.ReadFrame()
		if err != nil {
			c.t.Fatalf("readDecisions after %d/%d: %v", len(out), n, err)
		}
		if typ != wire.TypeDecisions {
			c.t.Fatalf("readDecisions: unexpected frame type %d", typ)
		}
		var next uint64
		out, next, err = c.conn.Codec().DecodeDecisions(payload, out)
		if err != nil {
			c.t.Fatal(err)
		}
		if err := c.conn.WriteFrame(wire.TypeAck, wire.AppendAck(nil, next)); err != nil {
			c.t.Fatal(err)
		}
	}
	return out
}

// streamTestServer boots an accelerated server with a stream listener
// on a loopback port.
func streamTestServer(t testing.TB, cfg Config) (*Server, *StreamListener) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl := srv.ServeStream(ln, StreamOptions{PushInterval: 200 * time.Microsecond})
	t.Cleanup(func() {
		sl.Close()
		srv.Stop()
	})
	return srv, sl
}

// TestStreamEquivalence is the protocol's acceptance test: the same
// trace ingested over the binary stream produces a decision log
// identical decision-for-decision to HTTP/JSON ingest — same
// placements, same rounds, same dense seqs — and the stream's pushed
// copy of the log stays gap-free across a mid-run client reconnect.
func TestStreamEquivalence(t *testing.T) {
	const round = time.Minute
	envHTTP, envStream := testEnv(t), testEnv(t)
	jobs := genTrace(t, envHTTP, 6000, 24)

	httpSrv, err := New(Config{Env: envHTTP, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpSrv.Handler())
	defer ts.Close()
	defer httpSrv.Stop()

	streamSrv, sl := streamTestServer(t, Config{
		Env: envStream, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: round,
	})

	// Ingest the whole trace into both servers pre-Start: HTTP/JSON
	// batches on one side, Submit frames on the other.
	ingest := dialStream(t, sl.Addr().String(), 0, false)
	defer ingest.close()
	const batch = 500
	for i := 0; i < len(jobs); i += batch {
		end := min(i+batch, len(jobs))
		specs := make([]JobSpec, 0, end-i)
		for _, j := range jobs[i:end] {
			specs = append(specs, specFor(j))
		}
		body, err := json.Marshal(specs)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+PathJobs, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("http submit: status %d", resp.StatusCode)
		}
		ingest.mustAccept(specs)
	}

	httpSrv.Start()
	streamSrv.Start()

	// While both drain, a subscriber collects the stream server's
	// pushes — disconnecting abruptly a third of the way in and
	// resuming from its last-acked seq on a fresh connection.
	firstThird := len(jobs) / 3
	sub := dialStream(t, sl.Addr().String(), 0, true)
	pushed := sub.readDecisions(firstThird, 60*time.Second)
	sub.close()
	lastAcked := pushed[len(pushed)-1].Seq
	sub2 := dialStream(t, sl.Addr().String(), lastAcked, true)
	defer sub2.close()
	pushed = append(pushed, sub2.readDecisions(len(jobs)-len(pushed), 120*time.Second)...)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := httpSrv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := streamSrv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Seqs dense across the reconnect: 1..N with no gap or duplicate.
	if len(pushed) != len(jobs) {
		t.Fatalf("pushed %d decisions, want %d", len(pushed), len(jobs))
	}
	for i, d := range pushed {
		if d.Seq != uint64(i+1) {
			t.Fatalf("pushed decision %d has seq %d, want %d (gap or duplicate across reconnect)", i, d.Seq, i+1)
		}
	}

	// Decision-for-decision equality against the HTTP server's log,
	// polled the HTTP way. DecidedWall is wall-clock and legitimately
	// differs between the two processes' runs.
	var httpDecisions []Decision
	for since := uint64(0); ; {
		resp, err := http.Get(fmt.Sprintf("%s%s?since=%d&limit=2000", ts.URL, PathDecisions, since))
		if err != nil {
			t.Fatal(err)
		}
		var page decisionsPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(page.Decisions) == 0 {
			break
		}
		httpDecisions = append(httpDecisions, page.Decisions...)
		since = page.Next
	}
	if len(httpDecisions) != len(pushed) {
		t.Fatalf("http log has %d decisions, stream pushed %d", len(httpDecisions), len(pushed))
	}
	for i := range pushed {
		h, s := httpDecisions[i], DecisionFromWire(&pushed[i])
		if h.Seq != s.Seq || h.JobID != s.JobID || h.Region != s.Region ||
			!h.Round.Equal(s.Round) || !h.Start.Equal(s.Start) || !h.Finish.Equal(s.Finish) ||
			h.CarbonG != s.CarbonG || h.WaterL != s.WaterL {
			t.Fatalf("decision %d differs:\n http:  %+v\n stream: %+v", i, h, s)
		}
	}

	// And the full replay results agree, the established equivalence bar.
	hr, sr := httpSrv.Result(), streamSrv.Result()
	if len(hr.Outcomes) != len(sr.Outcomes) || len(hr.Ticks) != len(sr.Ticks) {
		t.Fatalf("results differ: %d/%d outcomes, %d/%d ticks",
			len(hr.Outcomes), len(sr.Outcomes), len(hr.Ticks), len(sr.Ticks))
	}
	for i := range hr.Outcomes {
		h, s := hr.Outcomes[i], sr.Outcomes[i]
		if h.Job.ID != s.Job.ID || h.Region != s.Region || !h.Start.Equal(s.Start) || !h.Finish.Equal(s.Finish) ||
			h.Compute != s.Compute || h.Comm != s.Comm || h.Violated != s.Violated {
			t.Fatalf("outcome %d: http %+v, stream %+v", i, h, s)
		}
	}
}

// TestStreamReconnectResume covers the resume handshake in isolation:
// an abrupt disconnect mid-push, then a resume from the last-acked
// seq, must replay gap-free with no duplicates.
func TestStreamReconnectResume(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 2000, 12)
	srv, sl := streamTestServer(t, Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
	})
	ingest := dialStream(t, sl.Addr().String(), 0, false)
	defer ingest.close()
	specs := make([]JobSpec, len(jobs))
	for i, j := range jobs {
		specs[i] = specFor(j)
	}
	ingest.mustAccept(specs)
	srv.Start()

	var got []wire.Decision
	cursor := uint64(0)
	for reconnect := 0; len(got) < len(jobs); reconnect++ {
		if reconnect > 4 {
			t.Fatalf("still missing decisions after %d reconnects: %d/%d", reconnect, len(got), len(jobs))
		}
		sub := dialStream(t, sl.Addr().String(), cursor, true)
		chunk := min(len(jobs)-len(got), len(jobs)/3+1)
		got = append(got, sub.readDecisions(chunk, 60*time.Second)...)
		cursor = got[len(got)-1].Seq
		sub.close() // abrupt: no goodbye, possibly frames in flight
	}
	for i, d := range got {
		if d.Seq != uint64(i+1) {
			t.Fatalf("decision %d: seq %d, want %d", i, d.Seq, i+1)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestStreamDisconnectCleanup: clients that vanish mid-frame (torn
// submit, unread pushes) leave no goroutines, no registered conns, and
// no half-ingested batches behind.
func TestStreamDisconnectCleanup(t *testing.T) {
	env := testEnv(t)
	srv, sl := streamTestServer(t, Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
	})
	waitConns := func(want int) {
		deadline := time.Now().Add(10 * time.Second)
		for sl.ConnCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("ConnCount = %d, want %d", sl.ConnCount(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	baseline := runtime.NumGoroutine()

	// A torn submit: valid Hello, then a Submit frame cut mid-payload.
	nc, err := net.Dial("tcp", sl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	if err := conn.WriteFrame(wire.TypeHello, wire.AppendHello(nil, wire.Hello{})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	spec := specFor(genTrace(t, env, 200, 1)[0])
	payload, err := wire.AppendSubmit(nil, []wire.Job{WireJob(spec)})
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.AppendFrame(nil, wire.TypeSubmit, payload)
	if _, err := nc.Write(frame[:len(frame)-5]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the server read the partial frame
	nc.Close()

	// A subscriber that hangs up without reading or acking anything.
	sub := dialStream(t, sl.Addr().String(), 0, true)
	sub.close()

	waitConns(0)
	if st := srv.Status(); st.Accepted != 0 || st.Pending != 0 {
		t.Fatalf("torn frame half-ingested: accepted %d, pending %d", st.Accepted, st.Pending)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("leaked goroutines: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The listener still serves new clients after the carnage.
	c := dialStream(t, sl.Addr().String(), 0, false)
	c.mustAccept([]JobSpec{spec})
	c.close()
}

// TestStreamDedupeResubmit: idempotent re-submit over the stream hits
// the same dedupe index as HTTP — an identical retry is SubmitOK with
// the original id, a conflicting spec on the same id is the
// 409-equivalent SubmitDuplicateID frame.
func TestStreamDedupeResubmit(t *testing.T) {
	env := testEnv(t)
	_, sl := streamTestServer(t, Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
	})
	c := dialStream(t, sl.Addr().String(), 0, false)
	defer c.close()

	spec := specFor(genTrace(t, env, 200, 1)[0])
	first := c.submit([]JobSpec{spec})
	if first[0].Code != wire.SubmitOK {
		t.Fatalf("first submit: code %d", first[0].Code)
	}
	retry := c.submit([]JobSpec{spec})
	if retry[0].Code != wire.SubmitOK || retry[0].ID != first[0].ID {
		t.Fatalf("idempotent retry: code %d id %d, want OK id %d", retry[0].Code, retry[0].ID, first[0].ID)
	}
	conflict := spec
	conflict.EnergyKWh += 1
	res := c.submit([]JobSpec{conflict})
	if res[0].Code != wire.SubmitDuplicateID {
		t.Fatalf("conflicting resubmit: code %d, want SubmitDuplicateID", res[0].Code)
	}
}

// TestStreamHandshakeErrors: protocol misuse draws a typed Error frame
// and a close, not a hang.
func TestStreamHandshakeErrors(t *testing.T) {
	env := testEnv(t)
	_, sl := streamTestServer(t, Config{
		Env: env, Scheduler: newScheduler(t, false), Tolerance: 0.5, Round: time.Minute,
	})

	// First frame is not Hello.
	nc, err := net.Dial("tcp", sl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	if err := conn.WriteFrame(wire.TypeAck, wire.AppendAck(nil, 1)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := conn.ReadFrame()
	if err != nil || typ != wire.TypeError {
		t.Fatalf("want Error frame, got type %d err %v", typ, err)
	}
	if code, _, err := conn.Codec().DecodeError(payload); err != nil || code != wire.ErrCodeProtocol {
		t.Fatalf("error frame: code %d, err %v", code, err)
	}
	if _, _, err := conn.ReadFrame(); err == nil {
		t.Fatal("connection stayed open after Error frame")
	}
	nc.Close()

	// Unexpected frame type after a valid handshake.
	c := dialStream(t, sl.Addr().String(), 0, false)
	defer c.close()
	if err := c.conn.WriteFrame(wire.TypeWelcome, nil); err != nil {
		t.Fatal(err)
	}
	c.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, _, err = c.conn.ReadFrame()
	if err != nil || typ != wire.TypeError {
		t.Fatalf("want Error frame for client-sent Welcome, got type %d err %v", typ, err)
	}
	var ne net.Error
	if _, _, err := c.conn.ReadFrame(); err == nil || (errors.As(err, &ne) && ne.Timeout()) {
		t.Fatalf("connection stayed open after Error frame: %v", err)
	}
}
