package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConversions(t *testing.T) {
	if got := Carbon(2, 300); got != 600 {
		t.Errorf("Carbon(2,300) = %v, want 600", got)
	}
	if got := OffsiteWater(2, 3.5); got != 7 {
		t.Errorf("OffsiteWater(2,3.5) = %v, want 7", got)
	}
	if got := OnsiteWater(4, 0.5); got != 2 {
		t.Errorf("OnsiteWater(4,0.5) = %v, want 2", got)
	}
}

func TestKgAndJoules(t *testing.T) {
	if got := GramsCO2(2500).Kg(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Kg = %g, want 2.5", got)
	}
	if got := KWh(1).Joules(); math.Abs(got-3.6e6) > 1e-6 {
		t.Errorf("Joules = %g, want 3.6e6", got)
	}
	if got := FromJoules(3.6e6); math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("FromJoules = %v, want 1", got)
	}
}

func TestStringsCarryUnits(t *testing.T) {
	cases := []struct {
		s    interface{ String() string }
		want string
	}{
		{KWh(1.5), "kWh"},
		{GramsCO2(10), "gCO2"},
		{Liters(3), "L"},
		{CarbonIntensity(100), "gCO2/kWh"},
		{EWIF(2), "L/kWh"},
		{WUE(3), "L/kWh"},
		{WaterIntensity(9), "L/kWh"},
		{Celsius(21), "°C"},
	}
	for _, c := range cases {
		if !strings.Contains(c.s.String(), c.want) {
			t.Errorf("%T.String() = %q, missing unit %q", c.s, c.s.String(), c.want)
		}
	}
}

// Property: energy/joule conversion round-trips.
func TestQuickJouleRoundTrip(t *testing.T) {
	f := func(e float64) bool {
		if math.IsNaN(e) || math.IsInf(e, 0) || math.Abs(e) > 1e12 {
			return true
		}
		back := FromJoules(KWh(e).Joules())
		return math.Abs(float64(back)-e) <= 1e-9*math.Max(1, math.Abs(e))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
