// Package units defines the typed physical quantities used throughout the
// WaterWise framework: energy, carbon mass, water volume, and the intensity
// factors that relate them (carbon intensity, energy-water intensity, water
// usage effectiveness).
//
// All quantities are float64 under the hood; the named types exist so that
// the compiler catches unit mix-ups such as adding liters to kilowatt-hours,
// and so that formatted output carries units automatically.
package units

import "fmt"

// KWh is an amount of electrical energy in kilowatt-hours.
type KWh float64

// GramsCO2 is a mass of CO2-equivalent emissions in grams.
type GramsCO2 float64

// Liters is a volume of water in liters.
type Liters float64

// CarbonIntensity is grams of CO2-equivalent emitted per kWh of electricity
// generated (gCO2/kWh). Lower is better.
type CarbonIntensity float64

// EWIF is the Energy Water Intensity Factor: liters of water consumed per
// kWh of electricity generated (L/kWh). Higher means the energy source is
// more water-thirsty. This drives the offsite water footprint.
type EWIF float64

// WUE is Water Usage Effectiveness: liters of water evaporated per kWh of
// IT energy to dissipate data-center heat (L/kWh). It depends on the wet
// bulb temperature at the data center's location. This drives the onsite
// water footprint.
type WUE float64

// WaterIntensity is the paper's Eq. 6 composite: (WUE + PUE*EWIF)*(1+WSF),
// in liters per kWh. Like carbon intensity, lower is better.
type WaterIntensity float64

// Celsius is a temperature in degrees Celsius (used for wet bulb readings).
type Celsius float64

// Carbon returns the operational carbon emitted when e kWh are drawn from a
// grid with carbon intensity ci.
func Carbon(e KWh, ci CarbonIntensity) GramsCO2 {
	return GramsCO2(float64(e) * float64(ci))
}

// OffsiteWater returns the water consumed generating e kWh at the given
// energy-water intensity factor.
func OffsiteWater(e KWh, f EWIF) Liters {
	return Liters(float64(e) * float64(f))
}

// OnsiteWater returns the cooling water evaporated dissipating the heat of
// e kWh of IT energy at the given water usage effectiveness.
func OnsiteWater(e KWh, w WUE) Liters {
	return Liters(float64(e) * float64(w))
}

// String implementations render quantities with sensible precision and units
// for logs and reports.

func (e KWh) String() string             { return fmt.Sprintf("%.3f kWh", float64(e)) }
func (g GramsCO2) String() string        { return fmt.Sprintf("%.1f gCO2", float64(g)) }
func (l Liters) String() string          { return fmt.Sprintf("%.2f L", float64(l)) }
func (c CarbonIntensity) String() string { return fmt.Sprintf("%.1f gCO2/kWh", float64(c)) }
func (f EWIF) String() string            { return fmt.Sprintf("%.2f L/kWh", float64(f)) }
func (w WUE) String() string             { return fmt.Sprintf("%.2f L/kWh", float64(w)) }
func (w WaterIntensity) String() string  { return fmt.Sprintf("%.2f L/kWh", float64(w)) }
func (c Celsius) String() string         { return fmt.Sprintf("%.1f °C", float64(c)) }

// Kg returns the carbon mass in kilograms.
func (g GramsCO2) Kg() float64 { return float64(g) / 1000 }

// Joules returns the energy in joules.
func (e KWh) Joules() float64 { return float64(e) * 3.6e6 }

// FromJoules converts joules to kWh.
func FromJoules(j float64) KWh { return KWh(j / 3.6e6) }
