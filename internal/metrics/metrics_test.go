package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/footprint"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/units"
)

var t0 = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

// outcome fabricates a JobOutcome with the given compute footprint and
// placement.
func outcome(id int, home, ran region.ID, carbon, water float64, exec, service time.Duration, violated bool) cluster.JobOutcome {
	j := &trace.Job{ID: id, Submit: t0, Home: home, Duration: exec}
	return cluster.JobOutcome{
		Job: j, Region: ran,
		Start: t0, Finish: t0.Add(service), Exec: exec,
		Compute: footprint.Footprint{
			OperationalCarbon: 0, EmbodiedCarbon: 0,
		},
		Comm:     footprint.Footprint{},
		Violated: violated,
	}
}

func resultWith(sched string, carbons, waters []float64) *cluster.Result {
	r := &cluster.Result{Scheduler: sched}
	for i := range carbons {
		o := outcome(i, region.Oregon, region.Oregon, carbons[i], waters[i], 10*time.Minute, 10*time.Minute, false)
		o.Compute.OperationalCarbon = unitsG(carbons[i])
		o.Compute.OnsiteWater = unitsL(waters[i])
		r.Outcomes = append(r.Outcomes, o)
	}
	return r
}

func TestCompareComputesSavings(t *testing.T) {
	base := resultWith("baseline", []float64{100, 100}, []float64{10, 10})
	run := resultWith("waterwise", []float64{60, 60}, []float64{9, 9})
	sv, err := Compare(base, run)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sv.CarbonPct-40) > 1e-9 {
		t.Errorf("carbon saving = %g, want 40", sv.CarbonPct)
	}
	if math.Abs(sv.WaterPct-10) > 1e-9 {
		t.Errorf("water saving = %g, want 10", sv.WaterPct)
	}
	if sv.Scheduler != "waterwise" {
		t.Errorf("scheduler = %q", sv.Scheduler)
	}
}

func TestCompareErrors(t *testing.T) {
	base := resultWith("baseline", []float64{100}, []float64{10})
	if _, err := Compare(base, &cluster.Result{Scheduler: "x"}); err == nil {
		t.Error("empty run accepted")
	}
	short := resultWith("x", []float64{1, 2}, []float64{1, 2})
	if _, err := Compare(base, short); err == nil {
		t.Error("mismatched job counts accepted")
	}
	zero := resultWith("baseline", []float64{0}, []float64{0})
	runOne := resultWith("x", []float64{1}, []float64{1})
	if _, err := Compare(zero, runOne); err == nil {
		t.Error("degenerate baseline accepted")
	}
}

func TestDistribution(t *testing.T) {
	r := &cluster.Result{Scheduler: "x"}
	regions := []region.ID{region.Zurich, region.Milan}
	for i := 0; i < 3; i++ {
		r.Outcomes = append(r.Outcomes, outcome(i, region.Zurich, region.Zurich, 1, 1, time.Minute, time.Minute, false))
	}
	r.Outcomes = append(r.Outcomes, outcome(3, region.Zurich, region.Milan, 1, 1, time.Minute, time.Minute, false))
	d := Distribution(r, regions)
	if math.Abs(d[region.Zurich]-75) > 1e-9 || math.Abs(d[region.Milan]-25) > 1e-9 {
		t.Errorf("distribution = %v, want 75/25", d)
	}
	if len(Distribution(&cluster.Result{}, regions)) != 0 {
		t.Error("empty result distribution should be empty")
	}
}

func TestOverheadSeries(t *testing.T) {
	r := resultWith("x", []float64{1, 1}, []float64{1, 1})
	r.Ticks = []cluster.TickStat{
		{At: t0, Batch: 2, Decided: 2, Overhead: 60 * time.Millisecond},
		{At: t0.Add(time.Minute), Batch: 0, Decided: 0, Overhead: time.Millisecond},
	}
	times, pct := OverheadSeries(r)
	if len(times) != 1 || len(pct) != 1 {
		t.Fatalf("series lengths = %d/%d, want 1/1 (empty batches skipped)", len(times), len(pct))
	}
	// 60ms overhead over 600s mean exec = 0.01%.
	if math.Abs(pct[0]-0.01) > 1e-9 {
		t.Errorf("overhead pct = %g, want 0.01", pct[0])
	}
	if m := MeanOverheadPct(r); math.Abs(m-0.01) > 1e-9 {
		t.Errorf("mean overhead = %g, want 0.01", m)
	}
}

func TestCommOverheadOnlyMigrated(t *testing.T) {
	r := &cluster.Result{Scheduler: "x"}
	stay := outcome(0, region.Oregon, region.Oregon, 1, 1, time.Minute, time.Minute, false)
	stay.Compute.OperationalCarbon = unitsG(100)
	stay.Comm.OperationalCarbon = unitsG(50) // must be ignored: not migrated
	move := outcome(1, region.Oregon, region.Zurich, 1, 1, time.Minute, time.Minute, false)
	move.Compute.OperationalCarbon = unitsG(200)
	move.Compute.OnsiteWater = unitsL(20)
	move.Comm.OperationalCarbon = unitsG(1)
	move.Comm.OnsiteWater = unitsL(0.04)
	r.Outcomes = append(r.Outcomes, stay, move)
	over := CommOverhead(r, []region.ID{region.Oregon, region.Zurich})
	z := over[region.Zurich]
	if math.Abs(z[0]-0.5) > 1e-9 {
		t.Errorf("zurich carbon overhead = %g%%, want 0.5%%", z[0])
	}
	if math.Abs(z[1]-0.2) > 1e-9 {
		t.Errorf("zurich water overhead = %g%%, want 0.2%%", z[1])
	}
	if o := over[region.Oregon]; o[0] != 0 || o[1] != 0 {
		t.Errorf("home region overhead = %v, want zeros", o)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "long-header"}}
	tb.AddRow("x", "1")
	tb.AddRow("yyyy", "2")
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-header") {
		t.Errorf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: the second column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "long-header")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Errorf("row %q shorter than header offset", ln)
		}
	}
}

func TestFormattersAndSort(t *testing.T) {
	if Pct(12.345) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
	if Times(1.234) != "1.23x" {
		t.Errorf("Times = %q", Times(1.234))
	}
	got := SortRegionIDs([]region.ID{region.Zurich, region.Madrid})
	if got[0] != region.Madrid || got[1] != region.Zurich {
		t.Errorf("SortRegionIDs = %v", got)
	}
}

// tiny aliases keeping fabricated outcomes readable.
func unitsG(v float64) units.GramsCO2 { return units.GramsCO2(v) }
func unitsL(v float64) units.Liters   { return units.Liters(v) }

func TestClusterUtilization(t *testing.T) {
	r := &cluster.Result{Scheduler: "x"}
	// Two jobs on a 4-server cluster: one 0-10min, one 5-15min.
	a := outcome(0, region.Oregon, region.Oregon, 1, 1, 10*time.Minute, 10*time.Minute, false)
	b := outcome(1, region.Oregon, region.Oregon, 1, 1, 10*time.Minute, 10*time.Minute, false)
	b.Start = t0.Add(5 * time.Minute)
	b.Finish = t0.Add(15 * time.Minute)
	r.Outcomes = append(r.Outcomes, a, b)

	u, err := ClusterUtilization(r, 4, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if u.Peak != 0.5 {
		t.Errorf("peak = %g, want 0.5 (both jobs overlap)", u.Peak)
	}
	if u.Mean <= 0 || u.Mean > 0.5 {
		t.Errorf("mean = %g outside (0, 0.5]", u.Mean)
	}
	if len(u.Series) == 0 {
		t.Error("series empty")
	}
	if _, err := ClusterUtilization(r, 0, time.Minute); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := ClusterUtilization(r, 4, 0); err == nil {
		t.Error("zero interval accepted")
	}
	empty, err := ClusterUtilization(&cluster.Result{}, 4, time.Minute)
	if err != nil || empty.Mean != 0 {
		t.Errorf("empty result should give zero utilization, got %+v, %v", empty, err)
	}
}
