// Package metrics turns raw simulation results into the paper's figures of
// merit: carbon/water footprint savings relative to the baseline scheduler,
// normalized service time, delay-tolerance violation rates, per-region job
// distribution, and decision-making overhead — plus plain-text table
// rendering for the experiment harness.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
)

// Savings compares a scheduler run against a baseline run of the same trace.
type Savings struct {
	Scheduler string
	// CarbonPct is the carbon footprint saving vs baseline in percent
	// (positive = better than baseline).
	CarbonPct float64
	// WaterPct is the water footprint saving vs baseline in percent.
	WaterPct float64
	// MeanService is the mean service time normalized to execution time.
	MeanService float64
	// ViolationPct is the percentage of jobs violating their delay
	// tolerance.
	ViolationPct float64
}

// Compare computes savings of run relative to base. It returns an error if
// either run is empty or they cover different job counts.
func Compare(base, run *cluster.Result) (Savings, error) {
	if len(base.Outcomes) == 0 || len(run.Outcomes) == 0 {
		return Savings{}, fmt.Errorf("metrics: empty result (base %d outcomes, run %d)", len(base.Outcomes), len(run.Outcomes))
	}
	if len(base.Outcomes) != len(run.Outcomes) {
		return Savings{}, fmt.Errorf("metrics: job count mismatch: baseline %d vs %s %d",
			len(base.Outcomes), run.Scheduler, len(run.Outcomes))
	}
	bc, bw := float64(base.TotalCarbon()), float64(base.TotalWater())
	rc, rw := float64(run.TotalCarbon()), float64(run.TotalWater())
	if bc <= 0 || bw <= 0 {
		return Savings{}, fmt.Errorf("metrics: degenerate baseline footprint (carbon %g, water %g)", bc, bw)
	}
	return Savings{
		Scheduler:    run.Scheduler,
		CarbonPct:    100 * (1 - rc/bc),
		WaterPct:     100 * (1 - rw/bw),
		MeanService:  run.MeanNormalizedService(),
		ViolationPct: 100 * run.ViolationRate(),
	}, nil
}

// Distribution returns the percentage of jobs placed in each region,
// ordered like ids.
func Distribution(res *cluster.Result, ids []region.ID) map[region.ID]float64 {
	counts := make(map[region.ID]int, len(ids))
	for _, o := range res.Outcomes {
		counts[o.Region]++
	}
	out := make(map[region.ID]float64, len(ids))
	n := float64(len(res.Outcomes))
	if n == 0 {
		return out
	}
	for _, id := range ids {
		out[id] = 100 * float64(counts[id]) / n
	}
	return out
}

// OverheadSeries extracts the decision-making overhead over simulated time
// as a percentage of the mean job execution time (the paper's Fig. 13
// y-axis). Ticks with empty batches are skipped.
func OverheadSeries(res *cluster.Result) (times []time.Time, pct []float64) {
	meanExec := meanExecSeconds(res)
	if meanExec <= 0 {
		return nil, nil
	}
	for _, t := range res.Ticks {
		if t.Batch == 0 {
			continue
		}
		times = append(times, t.At)
		pct = append(pct, 100*t.Overhead.Seconds()/meanExec)
	}
	return times, pct
}

// MeanOverheadPct is the average decision overhead as % of mean execution
// time across all non-empty ticks.
func MeanOverheadPct(res *cluster.Result) float64 {
	_, pct := OverheadSeries(res)
	if len(pct) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pct {
		s += p
	}
	return s / float64(len(pct))
}

func meanExecSeconds(res *cluster.Result) float64 {
	if len(res.Outcomes) == 0 {
		return 0
	}
	s := 0.0
	for _, o := range res.Outcomes {
		s += o.Exec.Seconds()
	}
	return s / float64(len(res.Outcomes))
}

// CommOverhead summarizes Table 3 for one run: average communication carbon
// and water as a percentage of execution carbon/water, per destination
// region, considering only migrated jobs.
func CommOverhead(res *cluster.Result, ids []region.ID) map[region.ID][2]float64 {
	type acc struct{ cc, ce, wc, we float64 }
	sums := make(map[region.ID]*acc, len(ids))
	for _, id := range ids {
		sums[id] = &acc{}
	}
	for _, o := range res.Outcomes {
		if o.Region == o.Job.Home {
			continue
		}
		a, ok := sums[o.Region]
		if !ok {
			continue
		}
		a.cc += float64(o.Comm.Carbon())
		a.ce += float64(o.Compute.Carbon())
		a.wc += float64(o.Comm.Water())
		a.we += float64(o.Compute.Water())
	}
	out := make(map[region.ID][2]float64, len(ids))
	for id, a := range sums {
		var carbonPct, waterPct float64
		if a.ce > 0 {
			carbonPct = 100 * a.cc / a.ce
		}
		if a.we > 0 {
			waterPct = 100 * a.wc / a.we
		}
		out[id] = [2]float64{carbonPct, waterPct}
	}
	return out
}

// Table renders rows of cells as an aligned plain-text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[minInt(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// SortRegionIDs returns ids sorted lexically — a stable order for report
// output when the environment order is not meaningful.
func SortRegionIDs(ids []region.ID) []region.ID {
	out := append([]region.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Times formats a normalized multiplier like Table 2 ("1.09x").
func Times(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Utilization summarizes how busy the cluster was during a run.
type Utilization struct {
	// Mean is the average fraction of servers busy across the run.
	Mean float64
	// Peak is the highest per-sample busy fraction observed.
	Peak float64
	// Series is the sampled busy fraction over time (one point per
	// sampling interval).
	Series []float64
}

// ClusterUtilization reconstructs the cluster-wide utilization over time
// from job outcomes: at each sample instant, the fraction of totalServers
// occupied by running jobs. The sample interval must be positive.
func ClusterUtilization(res *cluster.Result, totalServers int, interval time.Duration) (Utilization, error) {
	if totalServers <= 0 {
		return Utilization{}, fmt.Errorf("metrics: non-positive server count %d", totalServers)
	}
	if interval <= 0 {
		return Utilization{}, fmt.Errorf("metrics: non-positive sample interval %v", interval)
	}
	if len(res.Outcomes) == 0 {
		return Utilization{}, nil
	}
	start := res.Outcomes[0].Start
	end := res.Outcomes[0].Finish
	for _, o := range res.Outcomes {
		if o.Start.Before(start) {
			start = o.Start
		}
		if o.Finish.After(end) {
			end = o.Finish
		}
	}
	n := int(end.Sub(start)/interval) + 1
	busy := make([]int, n)
	for _, o := range res.Outcomes {
		from := int(o.Start.Sub(start) / interval)
		to := int(o.Finish.Sub(start) / interval)
		for i := from; i <= to && i < n; i++ {
			busy[i]++
		}
	}
	u := Utilization{Series: make([]float64, n)}
	sum := 0.0
	for i, b := range busy {
		f := float64(b) / float64(totalServers)
		u.Series[i] = f
		sum += f
		if f > u.Peak {
			u.Peak = f
		}
	}
	u.Mean = sum / float64(n)
	return u, nil
}
