// Environment-driven forecast tests live in an external test package:
// the provider stack (internal/feed) uses forecast for the live feed's
// stale fallback, so an in-package test importing internal/region would
// close an import cycle.
package forecast_test

import (
	"testing"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/feed"
	"waterwise/internal/forecast"
	"waterwise/internal/region"
)

var t0 = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

// TestSeasonalBeatsPersistenceOnGridCI: on a real synthetic grid with
// strong solar diurnality, the seasonal predictor must beat persistence
// at a 6-hour horizon. The series is pulled through the environment's
// feed provider (feed.Series), so the same evaluation runs unchanged
// against replayed or live signals.
func TestSeasonalBeatsPersistenceOnGridCI(t *testing.T) {
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, t0, 24*14, 3)
	if err != nil {
		t.Fatal(err)
	}
	series, err := feed.Series(env.Provider(), string(region.Madrid), t0, 24*14, func(s feed.Sample) float64 {
		return float64(s.Mix.CarbonIntensity(energy.Table))
	})
	if err != nil {
		t.Fatal(err)
	}
	pers, err := forecast.Evaluate(forecast.NewPersistence(), t0, series, 6*time.Hour, 48)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := forecast.NewSeasonalNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	seas, err := forecast.Evaluate(sn, t0, series, 6*time.Hour, 48)
	if err != nil {
		t.Fatal(err)
	}
	if seas.Coverage < 0.95 || pers.Coverage < 0.95 {
		t.Fatalf("low coverage: seasonal %.2f persistence %.2f", seas.Coverage, pers.Coverage)
	}
	if seas.MAE >= pers.MAE {
		t.Errorf("seasonal MAE %.1f should beat persistence MAE %.1f on a solar-heavy grid at 6h",
			seas.MAE, pers.MAE)
	}
}
