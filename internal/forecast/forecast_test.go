package forecast

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func TestPersistence(t *testing.T) {
	p := NewPersistence()
	if _, ok := p.Predict(t0); ok {
		t.Error("cold persistence should not predict")
	}
	p.Observe(t0, 10)
	v, ok := p.Predict(t0.Add(5 * time.Hour))
	if !ok || v != 10 {
		t.Errorf("Predict = %g, %v; want 10", v, ok)
	}
	p.Observe(t0.Add(time.Hour), 20)
	if v, _ := p.Predict(t0.Add(10 * time.Hour)); v != 20 {
		t.Errorf("persistence should track the latest value, got %g", v)
	}
	// Out-of-order observations do not regress the state.
	p.Observe(t0, 5)
	if v, _ := p.Predict(t0); v != 20 {
		t.Errorf("stale observation overwrote the latest value: %g", v)
	}
}

func TestSeasonalNaiveValidation(t *testing.T) {
	if _, err := NewSeasonalNaive(0); err == nil {
		t.Error("zero-day window accepted")
	}
}

func TestSeasonalNaiveLearnsDiurnalCycle(t *testing.T) {
	s, err := NewSeasonalNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly periodic signal: value == hour of day.
	for h := 0; h < 24*4; h++ {
		at := t0.Add(time.Duration(h) * time.Hour)
		s.Observe(at, float64(at.Hour()))
	}
	for _, hour := range []int{0, 6, 12, 18} {
		target := t0.Add(time.Duration(24*4+hour) * time.Hour)
		v, ok := s.Predict(target)
		if !ok {
			t.Fatalf("no prediction for hour %d", hour)
		}
		if math.Abs(v-float64(hour)) > 1e-9 {
			t.Errorf("predicted %g for hour %d, want %d", v, hour, hour)
		}
	}
}

func TestSeasonalNaiveFallsBackWhenCold(t *testing.T) {
	s, err := NewSeasonalNaive(2)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(t0, 42)
	// Target hour never observed on previous days: falls back.
	v, ok := s.Predict(t0.Add(7 * time.Hour))
	if !ok || v != 42 {
		t.Errorf("cold fallback = %g, %v; want persistence 42", v, ok)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(NewPersistence(), t0, []float64{1, 2}, -time.Hour, 0); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := Evaluate(NewPersistence(), t0, []float64{1, 2}, time.Hour, 5); err == nil {
		t.Error("out-of-range warmup accepted")
	}
}

func TestEvaluatePerfectPredictor(t *testing.T) {
	// On a constant series every sane predictor has MAE 0 at any horizon
	// (predictions are asked before the step's observation arrives).
	series := []float64{7, 7, 7, 7, 7, 7, 7, 7}
	ev, err := Evaluate(NewPersistence(), t0, series, 2*time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MAE > 1e-9 {
		t.Errorf("constant-series MAE = %g, want 0", ev.MAE)
	}
	if ev.Coverage < 1 {
		t.Errorf("coverage = %g, want 1 after warmup", ev.Coverage)
	}
}

// Property: seasonal-naive predictions always lie within the observed value
// range (it only averages past observations).
func TestQuickSeasonalWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := seedRand(seed)
		s, err := NewSeasonalNaive(2)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for h := 0; h < 24*3; h++ {
			v := 100 + 50*rng()
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			s.Observe(t0.Add(time.Duration(h)*time.Hour), v)
		}
		for h := 24 * 3; h < 24*4; h++ {
			v, ok := s.Predict(t0.Add(time.Duration(h) * time.Hour))
			if !ok {
				return false
			}
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// seedRand is a tiny deterministic uniform-[0,1) generator.
func seedRand(seed int64) func() float64 {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	return func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
}
