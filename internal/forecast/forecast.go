// Package forecast provides short-horizon predictors for regional carbon
// and water intensity. The WaterWise paper's controller deliberately uses
// only current readings ("the scheduler cannot have futuristic
// information"), but a production deployment would want cheap forecasts for
// look-ahead placement — and the greedy oracles need a *fair* feasible
// counterpart to quantify how much of their advantage is pure clairvoyance.
//
// Two predictors are provided:
//
//   - Persistence: tomorrow looks like right now (the paper's implicit
//     model);
//   - SeasonalNaive: the value h hours ahead equals the value observed at
//     the same time of day in the trailing window — capturing the strong
//     diurnal structure of solar-heavy grids.
//
// Both are online: feed observations as they arrive, ask for predictions
// at any horizon, and evaluate with mean absolute error.
//
// The predictors are signal-source agnostic. feed.Series (internal/feed)
// extracts the []float64 series Evaluate consumes from any environment
// feed provider — synthetic, replayed, or live — and the live provider
// itself runs SeasonalNaive forecasters as its stale-feed fallback, so
// forecast error measurement and serving degrade use one code path.
package forecast

import (
	"fmt"
	"math"
	"time"
)

// Predictor is an online time-series forecaster.
type Predictor interface {
	// Observe records a reading taken at t.
	Observe(t time.Time, value float64)
	// Predict estimates the value at target. It returns false when the
	// predictor has not seen enough history.
	Predict(target time.Time) (float64, bool)
	// Name identifies the predictor in evaluations.
	Name() string
}

// Persistence predicts the most recent observation, regardless of horizon.
type Persistence struct {
	last    float64
	lastAt  time.Time
	haveOne bool
}

// NewPersistence returns a persistence predictor.
func NewPersistence() *Persistence { return &Persistence{} }

// Name implements Predictor.
func (*Persistence) Name() string { return "persistence" }

// Observe implements Predictor.
func (p *Persistence) Observe(t time.Time, v float64) {
	if !p.haveOne || !t.Before(p.lastAt) {
		p.last, p.lastAt, p.haveOne = v, t, true
	}
}

// Predict implements Predictor.
func (p *Persistence) Predict(time.Time) (float64, bool) {
	return p.last, p.haveOne
}

// SeasonalNaive predicts the value observed at the same hour-of-day in the
// trailing window, averaging the most recent Days occurrences of that hour
// (Days >= 1). Within-hour observations are mean-pooled.
type SeasonalNaive struct {
	days  int
	hours map[int64]*hourAgg // hour index since epoch -> aggregate
	// fallback handles cold starts.
	fallback *Persistence
}

type hourAgg struct {
	sum float64
	n   int
}

// NewSeasonalNaive returns a seasonal-naive predictor averaging the last
// days occurrences of the target hour-of-day.
func NewSeasonalNaive(days int) (*SeasonalNaive, error) {
	if days < 1 {
		return nil, fmt.Errorf("forecast: seasonal window must be >= 1 day, got %d", days)
	}
	return &SeasonalNaive{
		days:     days,
		hours:    make(map[int64]*hourAgg),
		fallback: NewPersistence(),
	}, nil
}

// Name implements Predictor.
func (s *SeasonalNaive) Name() string { return "seasonal-naive" }

func hourIndex(t time.Time) int64 { return t.Unix() / 3600 }

// Observe implements Predictor.
func (s *SeasonalNaive) Observe(t time.Time, v float64) {
	h := hourIndex(t)
	agg := s.hours[h]
	if agg == nil {
		agg = &hourAgg{}
		s.hours[h] = agg
		// Bound memory: drop hours older than the window needs.
		horizon := int64((s.days + 2) * 24)
		for k := range s.hours {
			if h-k > horizon {
				delete(s.hours, k)
			}
		}
	}
	agg.sum += v
	agg.n++
	s.fallback.Observe(t, v)
}

// Predict implements Predictor: the average of the same hour-of-day over
// the trailing window, falling back to persistence when that hour was never
// observed.
func (s *SeasonalNaive) Predict(target time.Time) (float64, bool) {
	h := hourIndex(target)
	sum, n := 0.0, 0
	for d := 1; d <= s.days; d++ {
		if agg := s.hours[h-int64(d*24)]; agg != nil && agg.n > 0 {
			sum += agg.sum / float64(agg.n)
			n++
		}
	}
	if n > 0 {
		return sum / float64(n), true
	}
	// Same hour today (partial) is better than nothing.
	if agg := s.hours[h]; agg != nil && agg.n > 0 {
		return agg.sum / float64(agg.n), true
	}
	return s.fallback.Predict(target)
}

// Evaluation scores a predictor against a realized series.
type Evaluation struct {
	Predictor string
	Horizon   time.Duration
	MAE       float64
	// Coverage is the fraction of test points the predictor could answer.
	Coverage float64
}

// Evaluate replays an hourly series through the predictor, asking at each
// step for a prediction horizon ahead and scoring it against the realized
// value. The first warmup points are observed without scoring.
func Evaluate(p Predictor, start time.Time, series []float64, horizon time.Duration, warmup int) (Evaluation, error) {
	if horizon < 0 {
		return Evaluation{}, fmt.Errorf("forecast: negative horizon %v", horizon)
	}
	if warmup < 0 || warmup >= len(series) {
		return Evaluation{}, fmt.Errorf("forecast: warmup %d out of range for %d points", warmup, len(series))
	}
	steps := int(horizon / time.Hour)
	var absErr float64
	answered, asked := 0, 0
	for i, v := range series {
		t := start.Add(time.Duration(i) * time.Hour)
		if i >= warmup && i+steps < len(series) {
			asked++
			if pred, ok := p.Predict(t.Add(horizon)); ok {
				absErr += math.Abs(pred - series[i+steps])
				answered++
			}
		}
		p.Observe(t, v)
	}
	ev := Evaluation{Predictor: p.Name(), Horizon: horizon}
	if answered > 0 {
		ev.MAE = absErr / float64(answered)
	}
	if asked > 0 {
		ev.Coverage = float64(answered) / float64(asked)
	}
	return ev, nil
}
