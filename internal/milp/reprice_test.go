package milp

import (
	"math"
	"math/rand"
	"testing"

	"waterwise/internal/lp"
)

// buildRoundModel constructs the scheduler's round-model shape: M*N implied
// binaries, M assignment EQ rows, N capacity LE rows. Returns the problem and
// the capacity row indices.
func buildRoundModel(t testing.TB, M, N int) (*Problem, []int) {
	t.Helper()
	p := New(M * N)
	for v := 0; v < M*N; v++ {
		if err := p.SetImpliedBinary(v); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < M; m++ {
		terms := make([]lp.Term, N)
		for n := 0; n < N; n++ {
			terms[n] = lp.Term{Var: m*N + n, Coef: 1}
		}
		if _, err := p.AddConstraint(terms, lp.EQ, 1); err != nil {
			t.Fatal(err)
		}
	}
	capRows := make([]int, N)
	for n := 0; n < N; n++ {
		terms := make([]lp.Term, M)
		for m := 0; m < M; m++ {
			terms[m] = lp.Term{Var: m*N + n, Coef: 1}
		}
		row, err := p.AddConstraint(terms, lp.LE, float64(M))
		if err != nil {
			t.Fatal(err)
		}
		capRows[n] = row
	}
	return p, capRows
}

// TestRepriceWarmStartDifferential reuses one MILP across a round sequence —
// rewriting the objective, capacity RHS, and pair-forbidding bounds each
// round — and solves it twice per round: on a reused problem with
// RepriceWarmStart and on a fresh cold problem. Statuses and objectives must
// agree on every round, and the warm path must actually serve rounds from
// the revived basis.
func TestRepriceWarmStartDifferential(t *testing.T) {
	const M, N, rounds = 12, 4, 30
	r := rand.New(rand.NewSource(99))
	warmProb, capRows := buildRoundModel(t, M, N)

	obj := make([]float64, M*N)
	for v := range obj {
		obj[v] = 0.2 + r.Float64()
	}
	totalWarm := 0
	for round := 0; round < rounds; round++ {
		for v := range obj {
			obj[v] += (r.Float64() - 0.5) * 0.1
			if obj[v] < 0 {
				obj[v] = 0
			}
		}
		caps := make([]float64, N)
		for n := range caps {
			caps[n] = float64(M/2 + r.Intn(3))
		}
		forbidden := make([]bool, M*N)
		for m := 0; m < M; m++ {
			open := 0
			for n := 0; n < N; n++ {
				forbidden[m*N+n] = r.Intn(25) == 0
				if !forbidden[m*N+n] {
					open++
				}
			}
			if open == 0 {
				forbidden[m*N+r.Intn(N)] = false
			}
		}

		coldProb, coldCaps := buildRoundModel(t, M, N)
		for i, p := range []*Problem{warmProb, coldProb} {
			rows := capRows
			if i == 1 {
				rows = coldCaps
			}
			if err := p.ResetVarBounds(0, math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			for v := 0; v < M*N; v++ {
				if forbidden[v] {
					if err := p.SetBounds(v, 0, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := p.SetObjective(append([]float64(nil), obj...), lp.Minimize); err != nil {
				t.Fatal(err)
			}
			for n := 0; n < N; n++ {
				if err := p.SetRHS(rows[n], caps[n]); err != nil {
					t.Fatal(err)
				}
			}
		}

		got, err := warmProb.Solve(Options{MaxNodes: 1000, RepriceWarmStart: true})
		if err != nil {
			t.Fatalf("round %d: warm Solve: %v", round, err)
		}
		want, err := coldProb.Solve(Options{MaxNodes: 1000})
		if err != nil {
			t.Fatalf("round %d: cold Solve: %v", round, err)
		}
		if got.Status != want.Status {
			t.Fatalf("round %d: status %v, cold %v", round, got.Status, want.Status)
		}
		if got.Status == Optimal && math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("round %d: objective %.9f, cold %.9f", round, got.Objective, want.Objective)
		}
		totalWarm += got.Stats.WarmStarts
	}
	if totalWarm == 0 {
		t.Error("RepriceWarmStart never served a round from the revived basis")
	}
	t.Logf("warm-started LP solves across %d rounds: %d", rounds, totalWarm)
}
