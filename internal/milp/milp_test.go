package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/lp"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBinaryKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binaries.
	// Enumerate: a+c = 17 (w=5), b+c = 20 (w=6) <- best, a+b w=7 infeasible.
	p := New(3)
	if err := p.SetObjective([]float64{10, 13, 7}, lp.Maximize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.SetBinary(i); err != nil {
			t.Fatal(err)
		}
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 3}, {Var: 1, Coef: 4}, {Var: 2, Coef: 2}}, lp.LE, 6)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !almostEq(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %g, want 20", sol.Objective)
	}
	want := []float64{0, 1, 1}
	for i, x := range sol.X {
		if !almostEq(x, want[i], 1e-6) {
			t.Errorf("x[%d] = %g, want %g", i, x, want[i])
		}
	}
}

func TestAssignmentWithCapacity(t *testing.T) {
	// 4 jobs, 2 regions, region capacities 2 and 3; WaterWise-shaped.
	costs := [][]float64{{5, 9}, {1, 8}, {7, 2}, {6, 3}}
	const M, N = 4, 2
	p := New(M * N)
	obj := make([]float64, M*N)
	for m := 0; m < M; m++ {
		for n := 0; n < N; n++ {
			obj[m*N+n] = costs[m][n]
			if err := p.SetBinary(m*N + n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.SetObjective(obj, lp.Minimize); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < M; m++ {
		p.AddConstraint([]lp.Term{{Var: m * N, Coef: 1}, {Var: m*N + 1, Coef: 1}}, lp.EQ, 1)
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 2, Coef: 1}, {Var: 4, Coef: 1}, {Var: 6, Coef: 1}}, lp.LE, 2)
	p.AddConstraint([]lp.Term{{Var: 1, Coef: 1}, {Var: 3, Coef: 1}, {Var: 5, Coef: 1}, {Var: 7, Coef: 1}}, lp.LE, 3)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	// Best: j0->r0(5), j1->r0(1), j2->r1(2), j3->r1(3) = 11.
	if !almostEq(sol.Objective, 11, 1e-6) {
		t.Errorf("objective = %g, want 11", sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := New(2)
	for i := 0; i < 2; i++ {
		if err := p.SetBinary(i); err != nil {
			t.Fatal(err)
		}
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 3)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestFractionalInfeasibleIntegerFeasibleGap(t *testing.T) {
	// LP relaxation is feasible at x=1.5 but integers in [0,3] must satisfy
	// 2x == 3 -> infeasible.
	p := New(1)
	if err := p.SetInteger(0); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBounds(0, 0, 3); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}}, lp.EQ, 3)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestGeneralInteger(t *testing.T) {
	// max x + y s.t. 2x + 3y <= 12, x,y integer in [0,5].
	// Candidates: (5,0)->5 (w=10 ok); (4,1)->5 (11 ok); (3,2)->5 (12 ok); 6? (5,0) is 5.
	// (3,2)=5, can we reach 6? x+y=6 requires w >= 2*6-y... (0,4): w=12, sum 4.
	// Max is x=5,y=0 -> 5? Check (4,1): 8+3=11 fine sum 5. (5,0) w=10 sum 5. 6 impossible:
	// need 2x+3y<=12 with x+y=6 -> 2(6-y)+3y=12+y<=12 -> y<=0 -> (6,0) but x<=5. So 5.
	p := New(2)
	if err := p.SetObjective([]float64{1, 1}, lp.Maximize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := p.SetInteger(i); err != nil {
			t.Fatal(err)
		}
		if err := p.SetBounds(i, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 3}}, lp.LE, 12)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 5, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal obj=5", sol.Status, sol.Objective)
	}
	for i, x := range sol.X {
		if !almostEq(x, math.Round(x), 1e-6) {
			t.Errorf("x[%d] = %g not integral", i, x)
		}
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 3b + y s.t. y >= 2 - 5b, y >= 0, b binary.
	// b=0: y=2 -> 2. b=1: y=0 -> 3. Optimal 2.
	p := New(2)
	if err := p.SetObjective([]float64{3, 1}, lp.Minimize); err != nil {
		t.Fatal(err)
	}
	if err := p.SetBinary(0); err != nil {
		t.Fatal(err)
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 5}, {Var: 1, Coef: 1}}, lp.GE, 2)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 2, 1e-6) {
		t.Fatalf("got %v obj=%g, want optimal obj=2", sol.Status, sol.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem whose root relaxation is fractional, with MaxNodes=1 so no
	// branching can happen -> Limit with no incumbent.
	p := New(3)
	if err := p.SetObjective([]float64{-1, -1, -1}, lp.Minimize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.SetBinary(i); err != nil {
			t.Fatal(err)
		}
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 2}, {Var: 2, Coef: 2}}, lp.LE, 3)
	sol, err := p.Solve(Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Limit && sol.Status != Feasible {
		t.Fatalf("status = %v, want limit or feasible", sol.Status)
	}
}

func TestTimeLimitRespected(t *testing.T) {
	p := randomAssignment(rand.New(rand.NewSource(3)), 10, 4)
	start := time.Now()
	sol, err := p.Solve(Options{TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("solve took %v despite 1ms limit", elapsed)
	}
	_ = sol
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		Unbounded: "unbounded", Limit: "limit", Status(42): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q, want %q", s, s.String(), want)
		}
	}
}

// randomAssignment builds an M-jobs x N-regions assignment MILP with random
// costs and loose capacities.
func randomAssignment(r *rand.Rand, M, N int) *Problem {
	p := New(M * N)
	obj := make([]float64, M*N)
	for i := range obj {
		obj[i] = math.Round(r.Float64()*100) / 10
		p.SetBinary(i)
	}
	p.SetObjective(obj, lp.Minimize)
	for m := 0; m < M; m++ {
		terms := make([]lp.Term, N)
		for n := 0; n < N; n++ {
			terms[n] = lp.Term{Var: m*N + n, Coef: 1}
		}
		p.AddConstraint(terms, lp.EQ, 1)
	}
	cap := (M + N - 1) / N
	for n := 0; n < N; n++ {
		terms := make([]lp.Term, M)
		for m := 0; m < M; m++ {
			terms[m] = lp.Term{Var: m*N + n, Coef: 1}
		}
		p.AddConstraint(terms, lp.LE, float64(cap))
	}
	return p
}

// bruteAssignment exhaustively finds the optimal assignment cost.
func bruteAssignment(costs [][]float64, capacity int) float64 {
	M, N := len(costs), len(costs[0])
	used := make([]int, N)
	best := math.Inf(1)
	var rec func(m int, acc float64)
	rec = func(m int, acc float64) {
		if acc >= best {
			return
		}
		if m == M {
			best = acc
			return
		}
		for n := 0; n < N; n++ {
			if used[n] < capacity {
				used[n]++
				rec(m+1, acc+costs[m][n])
				used[n]--
			}
		}
	}
	rec(0, 0)
	return best
}

// TestQuickAssignmentMatchesBruteForce: for random small assignment MILPs,
// branch-and-bound must match exhaustive enumeration exactly.
func TestQuickAssignmentMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		M := 2 + r.Intn(4) // 2..5 jobs
		N := 2 + r.Intn(2) // 2..3 regions
		costs := make([][]float64, M)
		for m := range costs {
			costs[m] = make([]float64, N)
			for n := range costs[m] {
				costs[m][n] = math.Round(r.Float64()*100) / 10
			}
		}
		capacity := (M + N - 1) / N
		p := New(M * N)
		obj := make([]float64, M*N)
		for m := 0; m < M; m++ {
			for n := 0; n < N; n++ {
				obj[m*N+n] = costs[m][n]
				if err := p.SetBinary(m*N + n); err != nil {
					return false
				}
			}
		}
		if err := p.SetObjective(obj, lp.Minimize); err != nil {
			return false
		}
		for m := 0; m < M; m++ {
			terms := make([]lp.Term, N)
			for n := 0; n < N; n++ {
				terms[n] = lp.Term{Var: m*N + n, Coef: 1}
			}
			p.AddConstraint(terms, lp.EQ, 1)
		}
		for n := 0; n < N; n++ {
			terms := make([]lp.Term, M)
			for m := 0; m < M; m++ {
				terms[m] = lp.Term{Var: m*N + n, Coef: 1}
			}
			p.AddConstraint(terms, lp.LE, float64(capacity))
		}
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			t.Logf("seed %d: status %v err %v", seed, sol.Status, err)
			return false
		}
		want := bruteAssignment(costs, capacity)
		if !almostEq(sol.Objective, want, 1e-6) {
			t.Logf("seed %d: milp %.9f, brute force %.9f", seed, sol.Objective, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// TestQuickKnapsackMatchesBruteForce: random binary knapsacks vs enumeration.
func TestQuickKnapsackMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(6) // 3..8 items
		vals := make([]float64, n)
		wts := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(r.Float64()*50) / 5
			wts[i] = math.Round(r.Float64()*50)/5 + 0.2
		}
		budget := 0.0
		for _, w := range wts {
			budget += w
		}
		budget *= 0.4
		p := New(n)
		if err := p.SetObjective(vals, lp.Maximize); err != nil {
			return false
		}
		terms := make([]lp.Term, n)
		for i := range terms {
			p.SetBinary(i)
			terms[i] = lp.Term{Var: i, Coef: wts[i]}
		}
		p.AddConstraint(terms, lp.LE, budget)
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			t.Logf("seed %d: status %v err %v", seed, sol.Status, err)
			return false
		}
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += wts[i]
					v += vals[i]
				}
			}
			if w <= budget+1e-9 && v > best {
				best = v
			}
		}
		if !almostEq(sol.Objective, best, 1e-6) {
			t.Logf("seed %d: milp %.9f, brute force %.9f", seed, sol.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMILPAssignment30x5(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := randomAssignment(r, 30, 5)
		sol, err := p.Solve(Options{})
		if err != nil || (sol.Status != Optimal && sol.Status != Feasible) {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}
