package milp

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"waterwise/internal/lp"
)

// installRound rewrites the model for one scheduling round: fresh objective,
// per-region capacity RHS, and a churning minority of forbidden pairs — the
// exact per-round mutation internal/core performs on its cached skeleton.
func installRound(tb testing.TB, prob *Problem, capRows []int, M, N int, r *rand.Rand, obj []float64) {
	tb.Helper()
	if err := prob.ResetVarBounds(0, math.Inf(1)); err != nil {
		tb.Fatal(err)
	}
	for v := range obj {
		obj[v] += (r.Float64() - 0.5) * 0.05
		if obj[v] < 0 {
			obj[v] = 0
		}
	}
	for m := 0; m < M; m++ {
		open := 0
		for n := 0; n < N; n++ {
			v := m*N + n
			if r.Intn(50) == 0 {
				if err := prob.SetBounds(v, 0, 0); err != nil {
					tb.Fatal(err)
				}
			} else {
				open++
			}
		}
		if open == 0 {
			if err := prob.SetBounds(m*N+r.Intn(N), 0, math.Inf(1)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := prob.SetObjective(obj, lp.Minimize); err != nil {
		tb.Fatal(err)
	}
	// Σ caps = 1.2·M, evenly spread: capacity binds without starving jobs.
	for n := 0; n < N; n++ {
		if err := prob.SetRHS(capRows[n], math.Ceil(1.2*float64(M)/float64(N))); err != nil {
			tb.Fatal(err)
		}
	}
}

func freshObjective(r *rand.Rand, M, N int) []float64 {
	obj := make([]float64, M*N)
	for v := range obj {
		obj[v] = 0.2 + r.Float64()
	}
	return obj
}

// BenchmarkSchedulingRound1000x10 is the headline gate of the sparse revised
// simplex rewrite: one full scheduling-round MILP solve at a 1000-job x
// 10-region batch, mutated between iterations the way the scheduler's cached
// round model is (objective drift, capacity RHS rewrite, forbidden-pair
// churn), solved cold each round.
func BenchmarkSchedulingRound1000x10(b *testing.B) {
	const M, N = 1000, 10
	prob, capRows := buildRoundModel(b, M, N)
	r := rand.New(rand.NewSource(1))
	obj := freshObjective(r, M, N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		installRound(b, prob, capRows, M, N, r, obj)
		b.StartTimer()
		sol, err := prob.Solve(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// TestLargeBatchWorkersDeterminism proves workers=1 ≡ workers=N at a
// 1000-job batch on a round-shaped MILP hardened with coupling rows that
// break the assignment polytope's integrality, so branch and bound really
// branches and the worker pool really runs. Closes the ROADMAP open item
// "Workers > 1 defaults once batches grow beyond ~200 jobs".
func TestLargeBatchWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("large-batch determinism test skipped in -short mode")
	}
	const M, N = 1000, 10
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	wantAuto := M / 64
	if g := runtime.GOMAXPROCS(0); wantAuto > g {
		wantAuto = g
	}
	if aw := AutoWorkers(M); aw != wantAuto {
		t.Fatalf("AutoWorkers(%d) = %d, want min(GOMAXPROCS, %d/64) = %d", M, aw, M, wantAuto)
	}
	if aw := AutoWorkers(199); aw != 1 {
		t.Fatalf("AutoWorkers(199) = %d, want 1 below the 200-job threshold", aw)
	}

	solveAt := func(w int) *Solution {
		prob, capRows := buildRoundModel(t, M, N)
		r := rand.New(rand.NewSource(7))
		obj := freshObjective(r, M, N)
		installRound(t, prob, capRows, M, N, r, obj)
		// Break the assignment polytope's integrality so the tree really
		// grows: groups of three jobs share a cheap favorite region, but a
		// knapsack row only admits 1.4 favorites in total — the LP splits
		// fractionally and integrality forces branching. Favorite costs are
		// small but distinct, and the 0.4-fractional split rounds down to a
		// feasible point, so the diving heuristic seeds an incumbent and
		// best-bound pruning closes the tree fast.
		group := 0
		for m := 0; m+2 < M; m += 199 {
			fav := group % N
			group++
			terms := make([]lp.Term, 0, 3)
			for k := 0; k < 3; k++ {
				v := (m+k)*N + fav
				obj[v] = 0.02 * float64(k+1)
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			if _, err := prob.AddConstraint(terms, lp.LE, 1.4); err != nil {
				t.Fatal(err)
			}
		}
		if err := prob.SetObjective(obj, lp.Minimize); err != nil {
			t.Fatal(err)
		}
		// Generous capacities: fixing a group variable must not ripple
		// fractionality through binding capacity rows — this test measures
		// worker-pool determinism on a prunable tree, not capacity pressure
		// (TestLargeRoundSolvesInBudget keeps the binding-capacity shape).
		for n := 0; n < N; n++ {
			if err := prob.SetRHS(capRows[n], float64(M)); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := prob.Solve(Options{Workers: w, MaxNodes: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("workers=%d: status %v", w, sol.Status)
		}
		return sol
	}

	serial := solveAt(1)
	parallel := solveAt(workers)
	if math.Abs(serial.Objective-parallel.Objective) > 1e-6 {
		t.Fatalf("objective diverged: workers=1 %.9f, workers=%d %.9f",
			serial.Objective, workers, parallel.Objective)
	}
	t.Logf("workers=1: %d nodes obj %.6f; workers=%d: %d nodes obj %.6f",
		serial.Nodes, serial.Objective, workers, parallel.Nodes, parallel.Objective)
}

// TestLargeRoundSolvesInBudget keeps thousand-job rounds inside the online
// service's per-round budget on every PR (the CI large-batch smoke job).
func TestLargeRoundSolvesInBudget(t *testing.T) {
	const M, N = 1000, 10
	prob, capRows := buildRoundModel(t, M, N)
	r := rand.New(rand.NewSource(3))
	obj := freshObjective(r, M, N)
	for round := 0; round < 3; round++ {
		installRound(t, prob, capRows, M, N, r, obj)
		sol, err := prob.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("round %d: status %v", round, sol.Status)
		}
		if sol.Nodes != 1 {
			t.Errorf("round %d: %d nodes — the assignment relaxation is integral, the root LP must close it", round, sol.Nodes)
		}
	}
}
