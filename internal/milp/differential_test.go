package milp

import (
	"math"
	"math/rand"
	"testing"

	"waterwise/internal/lp"
)

// oracleSolve is an independently coded branch-and-bound over the retained
// previous-generation LP solver (lp.SolveReference): plain depth-first
// recursion, no warm starts, no heuristics, no reduced-cost fixing. It is
// the ground truth for the differential corpus.
func oracleSolve(t *testing.T, p *Problem) (Status, float64) {
	t.Helper()
	prob := p.base.Clone()
	sgn := 1.0
	if p.sense == lp.Maximize {
		sgn = -1.0
	}
	best := math.Inf(1)
	feasible := false
	unbounded := false

	var rec func(depth int)
	rec = func(depth int) {
		if depth > 64 {
			t.Fatal("oracle recursion too deep")
		}
		sol, err := lp.SolveReference(prob)
		if err != nil {
			t.Fatalf("oracle LP: %v", err)
		}
		switch sol.Status {
		case lp.Unbounded:
			if depth == 0 {
				unbounded = true
			}
			return
		case lp.Optimal:
		default:
			return // infeasible or stuck subtree
		}
		obj := sgn * sol.Objective
		if obj >= best-1e-9 {
			return
		}
		// Most fractional integer variable, lowest index on ties.
		v, bestDist := -1, -1.0
		for i, isI := range p.isInt {
			if !isI {
				continue
			}
			f := sol.X[i] - math.Floor(sol.X[i])
			d := math.Min(f, 1-f)
			if d > 1e-6 && d > bestDist {
				bestDist = d
				v = i
			}
		}
		if v == -1 {
			best = obj
			feasible = true
			return
		}
		lo, hi := prob.Bounds(v)
		f := math.Floor(sol.X[v])
		if f >= lo {
			prob.SetBounds(v, lo, f)
			rec(depth + 1)
		}
		if f+1 <= hi {
			prob.SetBounds(v, f+1, hi)
			rec(depth + 1)
		}
		prob.SetBounds(v, lo, hi)
	}
	rec(0)
	switch {
	case unbounded:
		return Unbounded, 0
	case !feasible:
		return Infeasible, 0
	}
	return Optimal, sgn * best
}

// randomMixedMILP builds a small MILP mixing bounded general integers,
// binaries, and bounded continuous variables over random LE/GE/EQ rows.
func randomMixedMILP(r *rand.Rand) *Problem {
	n := 2 + r.Intn(4) // 2..5 vars
	p := New(n)
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = math.Round((r.Float64()*4-2)*4) / 4
	}
	sense := lp.Minimize
	if r.Intn(2) == 1 {
		sense = lp.Maximize
	}
	p.SetObjective(obj, sense)
	for j := 0; j < n; j++ {
		switch r.Intn(3) {
		case 0:
			p.SetBinary(j)
		case 1:
			p.SetInteger(j)
			p.SetBounds(j, 0, float64(1+r.Intn(4)))
		default:
			p.SetBounds(j, 0, math.Round(r.Float64()*16)/4)
		}
	}
	rows := 1 + r.Intn(3)
	for i := 0; i < rows; i++ {
		var terms []lp.Term
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				continue
			}
			coef := math.Round((r.Float64()*4-2)*4) / 4
			if coef == 0 {
				continue
			}
			terms = append(terms, lp.Term{Var: j, Coef: coef})
		}
		if len(terms) == 0 {
			terms = []lp.Term{{Var: r.Intn(n), Coef: 1}}
		}
		op := []lp.Op{lp.LE, lp.GE, lp.EQ}[r.Intn(3)]
		rhs := math.Round((r.Float64()*8 - 2))
		p.AddConstraint(terms, op, rhs)
	}
	return p
}

// differentialCorpus builds the ~200-problem corpus the acceptance criteria
// call for: assignment MILPs (the WaterWise shape), knapsacks, and mixed
// integer/continuous problems.
func differentialCorpus(r *rand.Rand) []*Problem {
	var corpus []*Problem
	for k := 0; k < 80; k++ {
		M := 2 + r.Intn(5)
		N := 2 + r.Intn(2)
		corpus = append(corpus, randomAssignment(r, M, N))
	}
	for k := 0; k < 60; k++ {
		n := 3 + r.Intn(6)
		vals := make([]float64, n)
		terms := make([]lp.Term, n)
		budget := 0.0
		p := New(n)
		for i := range vals {
			vals[i] = math.Round(r.Float64()*50) / 5
			w := math.Round(r.Float64()*50)/5 + 0.2
			terms[i] = lp.Term{Var: i, Coef: w}
			budget += w
			p.SetBinary(i)
		}
		p.SetObjective(vals, lp.Maximize)
		p.AddConstraint(terms, lp.LE, budget*0.4)
		corpus = append(corpus, p)
	}
	for k := 0; k < 60; k++ {
		corpus = append(corpus, randomMixedMILP(r))
	}
	return corpus
}

// TestDifferentialVsOracle cross-checks the warm-started solver against the
// oracle on the full corpus: statuses agree and objectives match to 1e-6.
func TestDifferentialVsOracle(t *testing.T) {
	r := rand.New(rand.NewSource(20260701))
	corpus := differentialCorpus(r)
	var agg Stats
	for k, p := range corpus {
		wantStatus, wantObj := oracleSolve(t, p)
		got, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("case %d: Solve: %v", k, err)
		}
		agg.Add(got.Stats)
		if got.Status != wantStatus {
			t.Errorf("case %d: status %v, oracle %v", k, got.Status, wantStatus)
			continue
		}
		if wantStatus == Optimal && math.Abs(got.Objective-wantObj) > 1e-6 {
			t.Errorf("case %d: objective %.9f, oracle %.9f", k, got.Objective, wantObj)
		}
	}
	if agg.WarmStarts == 0 {
		t.Error("corpus never exercised the warm-start path")
	}
	t.Logf("corpus=%d nodes=%d iters=%d warm=%d cold=%d hit=%.2f heuristic=%d",
		len(corpus), agg.Nodes, agg.SimplexIters, agg.WarmStarts, agg.ColdStarts,
		agg.WarmStartHitRate(), agg.HeuristicIncumbents)
}

// TestParallelDeterminism is the acceptance check that the parallel tree is
// deterministic: a completed search returns equal objectives at workers=1
// and workers=8 across the whole differential corpus.
func TestParallelDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(20260702))
	corpus := differentialCorpus(r)
	for k, p := range corpus {
		serial, err := p.Solve(Options{Workers: 1, Seed: 7})
		if err != nil {
			t.Fatalf("case %d serial: %v", k, err)
		}
		parallel, err := p.Solve(Options{Workers: 8, Seed: 7})
		if err != nil {
			t.Fatalf("case %d parallel: %v", k, err)
		}
		if serial.Status != parallel.Status {
			t.Errorf("case %d: serial status %v, parallel %v", k, serial.Status, parallel.Status)
			continue
		}
		if serial.Status == Optimal && math.Abs(serial.Objective-parallel.Objective) > 1e-9 {
			t.Errorf("case %d: serial obj %.12f, parallel %.12f", k, serial.Objective, parallel.Objective)
		}
	}
}

// TestAblationsMatch checks the solver features are pure accelerations:
// disabling warm starts or the heuristic never changes the answer.
func TestAblationsMatch(t *testing.T) {
	r := rand.New(rand.NewSource(20260703))
	corpus := differentialCorpus(r)[:80]
	for k, p := range corpus {
		full, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		noWarm, err := p.Solve(Options{DisableWarmStart: true})
		if err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		noHeur, err := p.Solve(Options{DisableHeuristic: true})
		if err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		if full.Status != noWarm.Status || full.Status != noHeur.Status {
			t.Errorf("case %d: statuses diverge: full=%v noWarm=%v noHeur=%v",
				k, full.Status, noWarm.Status, noHeur.Status)
			continue
		}
		if full.Status != Optimal {
			continue
		}
		if math.Abs(full.Objective-noWarm.Objective) > 1e-9 {
			t.Errorf("case %d: warm-start changed objective: %.12f vs %.12f",
				k, full.Objective, noWarm.Objective)
		}
		if math.Abs(full.Objective-noHeur.Objective) > 1e-9 {
			t.Errorf("case %d: heuristic changed objective: %.12f vs %.12f",
				k, full.Objective, noHeur.Objective)
		}
		if noWarm.Stats.WarmStarts != 0 {
			t.Errorf("case %d: DisableWarmStart still warm started", k)
		}
	}
}

// TestSeedDeterminism: identical options and seed give identical objectives
// and node counts in serial mode (full reproducibility of a search).
func TestSeedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	for k := 0; k < 40; k++ {
		p := randomMixedMILP(r)
		a, err := p.Solve(Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Solve(Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status || a.Nodes != b.Nodes {
			t.Errorf("case %d: reruns diverge: %v/%d vs %v/%d", k, a.Status, a.Nodes, b.Status, b.Nodes)
		}
		if a.Status == Optimal && a.Objective != b.Objective {
			t.Errorf("case %d: rerun objective %.12f vs %.12f", k, a.Objective, b.Objective)
		}
	}
}
