// Package milp implements a mixed-integer linear programming solver via
// best-first branch and bound over the LP relaxations provided by
// internal/lp. Together the two packages replace the PuLP + GLPK stack the
// WaterWise paper uses for its Optimization Decision Controller.
//
// The solver supports binary and general-integer variables mixed with
// continuous ones (the soft-constraint penalty variables of Eq. 12–13 are
// continuous), node/gap/time limits, and returns the best incumbent found
// with a bound-based optimality certificate when search completes.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"waterwise/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal means an integer-feasible solution with a closed gap.
	Optimal Status = iota
	// Feasible means an incumbent was found but search stopped early
	// (node, gap, or time limit).
	Feasible
	// Infeasible means no integer-feasible solution exists.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// Limit means a limit was hit before any incumbent was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "unknown"
}

// Options bound the branch-and-bound search.
type Options struct {
	// MaxNodes limits explored nodes; 0 means the default (100000).
	MaxNodes int
	// RelGap terminates when (incumbent-bound)/max(|incumbent|,1) falls
	// below this value; 0 means prove exact optimality (within tolerance).
	RelGap float64
	// TimeLimit caps wall-clock search time; 0 means no limit.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance; 0 means the default 1e-6.
	IntTol float64
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int           // branch-and-bound nodes explored
	Gap       float64       // final relative optimality gap
	Runtime   time.Duration // wall-clock solve time
}

// Problem is a MILP under construction. The zero value is not usable; call
// New.
type Problem struct {
	base   *lp.Problem
	isInt  []bool
	lo, hi []float64 // mirror of the base bounds, needed when branching
	sense  lp.Sense
}

// New returns a MILP with nvars variables, all continuous with bounds
// [0, +inf).
func New(nvars int) *Problem {
	p := &Problem{
		base:  lp.New(nvars),
		isInt: make([]bool, nvars),
		lo:    make([]float64, nvars),
		hi:    make([]float64, nvars),
	}
	for i := range p.hi {
		p.hi[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.base.NumVars() }

// SetObjective sets the objective vector and direction.
func (p *Problem) SetObjective(c []float64, sense lp.Sense) error {
	p.sense = sense
	return p.base.SetObjective(c, sense)
}

// SetBounds sets the bounds of variable i.
func (p *Problem) SetBounds(i int, lo, hi float64) error {
	if err := p.base.SetBounds(i, lo, hi); err != nil {
		return err
	}
	p.lo[i], p.hi[i] = lo, hi
	return nil
}

// SetBinary marks variable i as binary (integer in {0,1}).
func (p *Problem) SetBinary(i int) error {
	if err := p.SetBounds(i, 0, 1); err != nil {
		return err
	}
	p.isInt[i] = true
	return nil
}

// SetImpliedBinary marks variable i as integer WITHOUT installing the
// explicit [0,1] bound. Use it when the constraint matrix already implies
// x_i <= 1 (e.g. an assignment row Σ_j x_ij = 1 with x >= 0): the solver
// then skips one upper-bound row per variable, which for WaterWise's
// M x N assignment MILPs shrinks the simplex tableau by more than half.
// The caller is responsible for the implication actually holding.
func (p *Problem) SetImpliedBinary(i int) error {
	if i < 0 || i >= len(p.isInt) {
		return fmt.Errorf("milp: variable %d out of range [0,%d)", i, len(p.isInt))
	}
	p.isInt[i] = true
	return nil
}

// SetInteger marks variable i as a general integer (bounds must be set
// separately; the default lower bound is 0).
func (p *Problem) SetInteger(i int) error {
	if i < 0 || i >= len(p.isInt) {
		return fmt.Errorf("milp: variable %d out of range [0,%d)", i, len(p.isInt))
	}
	p.isInt[i] = true
	return nil
}

// AddConstraint appends a sparse linear constraint.
func (p *Problem) AddConstraint(terms []lp.Term, op lp.Op, rhs float64) (int, error) {
	return p.base.AddConstraint(terms, op, rhs)
}

// node is a branch-and-bound search node: the parent relaxation plus extra
// variable bounds, keyed by its LP bound for best-first expansion.
type node struct {
	bounds []boundFix
	bound  float64 // LP relaxation objective (minimization space)
}

type boundFix struct {
	v      int
	lo, hi float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound and returns the best solution found.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	start := time.Now()

	// Bound comparisons happen in minimization space: lp.Solve reports
	// objectives in the caller's sense, so for Maximize we negate objectives
	// on the way in and flip the incumbent back on the way out.
	minProb := p.base
	sgn := 1.0
	if p.sense == lp.Maximize {
		sgn = -1.0
	}
	// relaxObj converts an lp Solution objective into minimization space.
	relaxObj := func(v float64) float64 { return sgn * v }

	solveNode := func(n *node) (*lp.Solution, error) {
		q := minProb
		if len(n.bounds) > 0 {
			q = minProb.Clone()
			for _, bf := range n.bounds {
				if err := q.SetBounds(bf.v, bf.lo, bf.hi); err != nil {
					return &lp.Solution{Status: lp.Infeasible}, nil
				}
			}
		}
		return q.Solve()
	}

	root := &node{}
	rootSol, err := solveNode(root)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Nodes: 1, Gap: math.Inf(1)}
	switch rootSol.Status {
	case lp.Infeasible:
		sol.Status = Infeasible
		sol.Runtime = time.Since(start)
		return sol, nil
	case lp.Unbounded:
		sol.Status = Unbounded
		sol.Runtime = time.Since(start)
		return sol, nil
	case lp.IterLimit:
		sol.Status = Limit
		sol.Runtime = time.Since(start)
		return sol, nil
	}
	root.bound = relaxObj(rootSol.Objective)

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
	)
	consider := func(x []float64, obj float64) {
		if obj < incumbentObj-1e-12 {
			incumbentObj = obj
			incumbent = append(incumbent[:0], x...)
		}
	}

	frac := func(x []float64) (int, float64) {
		bestV, bestDist := -1, -1.0
		for i, isI := range p.isInt {
			if !isI {
				continue
			}
			f := x[i] - math.Floor(x[i])
			d := math.Min(f, 1-f)
			if d > opts.IntTol && d > bestDist {
				bestDist = d
				bestV = i
			}
		}
		return bestV, bestDist
	}

	open := &nodeHeap{}
	heap.Init(open)
	if v, _ := frac(rootSol.X); v == -1 {
		consider(rootSol.X, root.bound)
	} else {
		heap.Push(open, root)
	}

	nodes := 1
	bestBound := root.bound
	for open.Len() > 0 {
		if nodes >= opts.MaxNodes {
			break
		}
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			break
		}
		n := heap.Pop(open).(*node)
		bestBound = n.bound
		if n.bound >= incumbentObj-1e-9 {
			// Best-first: every remaining node is at least this bad.
			bestBound = incumbentObj
			open = &nodeHeap{}
			break
		}
		if incumbentObj < math.Inf(1) {
			gap := (incumbentObj - n.bound) / math.Max(math.Abs(incumbentObj), 1)
			if gap <= opts.RelGap {
				break
			}
		}
		nSol, err := solveNode(n)
		if err != nil {
			return nil, err
		}
		nodes++
		if nSol.Status != lp.Optimal {
			continue
		}
		obj := relaxObj(nSol.Objective)
		if obj >= incumbentObj-1e-9 {
			continue
		}
		v, _ := frac(nSol.X)
		if v == -1 {
			consider(nSol.X, obj)
			continue
		}
		lo := math.Floor(nSol.X[v])
		left := &node{bounds: append(append([]boundFix(nil), n.bounds...), boundFix{v, p.varLower(n, v), lo}), bound: obj}
		right := &node{bounds: append(append([]boundFix(nil), n.bounds...), boundFix{v, lo + 1, p.varUpper(n, v)}), bound: obj}
		heap.Push(open, left)
		heap.Push(open, right)
	}

	sol.Nodes = nodes
	sol.Runtime = time.Since(start)
	if incumbent == nil {
		if open.Len() == 0 {
			sol.Status = Infeasible
		} else {
			sol.Status = Limit
		}
		return sol, nil
	}
	sol.X = incumbent
	sol.Objective = sgn * incumbentObj // back to the caller's sense
	if open.Len() == 0 {
		sol.Status = Optimal
		sol.Gap = 0
	} else {
		sol.Status = Feasible
		sol.Gap = (incumbentObj - bestBound) / math.Max(math.Abs(incumbentObj), 1)
		if sol.Gap <= opts.RelGap {
			sol.Status = Optimal
		}
	}
	return sol, nil
}

// varLower returns the tightest lower bound in effect for v at node n:
// the base-problem bound tightened by any branching fixes on the path.
func (p *Problem) varLower(n *node, v int) float64 {
	lo := p.lo[v]
	for _, bf := range n.bounds {
		if bf.v == v && bf.lo > lo {
			lo = bf.lo
		}
	}
	return lo
}

// varUpper returns the tightest upper bound in effect for v at node n.
func (p *Problem) varUpper(n *node, v int) float64 {
	hi := p.hi[v]
	for _, bf := range n.bounds {
		if bf.v == v && bf.hi < hi {
			hi = bf.hi
		}
	}
	return hi
}
