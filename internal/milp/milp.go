// Package milp implements a mixed-integer linear programming solver via
// best-bound branch and bound over the LP relaxations provided by
// internal/lp. Together the two packages replace the PuLP + GLPK stack the
// WaterWise paper uses for its Optimization Decision Controller.
//
// The solver supports binary and general-integer variables mixed with
// continuous ones (the soft-constraint penalty variables of Eq. 12–13 are
// continuous), node/gap/time limits, and returns the best incumbent found
// with a bound-based optimality certificate when search completes.
//
// Throughput features (the system's hot path is one MILP per scheduling
// round, so the solver is rearchitected for speed):
//
//   - Branching tightens variable bounds instead of appending constraint
//     rows, so every node shares the parent's constraint matrix.
//   - Each child node warm starts from its parent's simplex Basis: a bound
//     change leaves the basis dual feasible, so a short dual-simplex run
//     replaces a from-scratch two-phase solve (see lp.SolveWarm).
//   - Reduced-cost fixing pins integer variables whose LP reduced cost
//     proves they cannot move off their bound in any improving solution.
//   - A rounding/diving primal heuristic runs at the root to produce an
//     early incumbent for pruning.
//   - Node exploration runs on a configurable worker pool (Options.Workers)
//     with deterministic best-bound node selection: ties break on a
//     deterministic node id (root 1, children 2id and 2id+1), and a search
//     run to completion returns the same objective at any worker count.
//   - Solution.Stats reports nodes, simplex iterations, warm-start hit
//     rate, and wall time for the paper's Fig. 13 overhead accounting.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"waterwise/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

const (
	// Optimal means an integer-feasible solution with a closed gap.
	Optimal Status = iota
	// Feasible means an incumbent was found but search stopped early
	// (node, gap, or time limit).
	Feasible
	// Infeasible means no integer-feasible solution exists.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
	// Limit means a limit was hit before any incumbent was found.
	Limit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	}
	return "unknown"
}

// Options bound the branch-and-bound search.
type Options struct {
	// MaxNodes limits explored nodes; 0 means the default (100000).
	MaxNodes int
	// RelGap terminates when (incumbent-bound)/max(|incumbent|,1) falls
	// below this value; 0 means prove exact optimality (within tolerance).
	RelGap float64
	// TimeLimit caps wall-clock search time; 0 means no limit.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance; 0 means the default 1e-6.
	IntTol float64
	// Workers sets the node-exploration worker count; 0 or 1 runs the
	// search serially (the scheduler resolves 0 to AutoWorkers(batch)
	// before solving, so large rounds parallelize by default). A search
	// that runs to completion (no node, gap, or time limit) returns the
	// same objective at any worker count.
	Workers int
	// DisableWarmStart solves every node relaxation from scratch instead
	// of warm starting from the parent basis (ablation/debugging).
	DisableWarmStart bool
	// RepriceWarmStart carries the root LP basis *across* Solve calls on a
	// reused Problem: when only the objective, RHS, and variable bounds
	// changed since the previous Solve (the scheduler's cached round model),
	// the root relaxation is revived by re-pricing (lp.SolveReprice) instead
	// of solving cold. Answers never change — any doubt falls back to a cold
	// solve — only the root simplex iteration count does.
	RepriceWarmStart bool
	// DisableHeuristic turns off the root diving/rounding heuristic.
	DisableHeuristic bool
	// Seed makes tie-breaking in the diving heuristic deterministic; the
	// final objective of a completed search does not depend on it.
	Seed int64
}

// autoWorkersBatch is the batch size from which AutoWorkers starts handing
// out more than one worker; below it the per-node LPs are too cheap for the
// pool's coordination to pay off.
const autoWorkersBatch = 200

// AutoWorkers picks a node-exploration worker count for a scheduling round of
// the given batch size (jobs in the round MILP): 1 below 200 jobs, then
// min(GOMAXPROCS, batch/64). The scheduler wires this in when the caller left
// SchedulerConfig.SolverWorkers unset, so thousand-job batches spread across
// cores by default while small rounds stay serial. A completed search returns
// the same objective at any worker count, so the default never changes
// answers.
func AutoWorkers(batch int) int {
	if batch < autoWorkersBatch {
		return 1
	}
	w := batch / 64
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Stats instruments one Solve call: the decision-overhead accounting of the
// paper's Fig. 13 reports these alongside wall time.
type Stats struct {
	// Nodes is the number of branch-and-bound nodes whose LP relaxation
	// was solved (heuristic solves excluded).
	Nodes int
	// SimplexIters is the total simplex pivot count across all LP solves,
	// including the diving heuristic.
	SimplexIters int
	// WarmStarts counts LP solves served by a dual-simplex warm start.
	WarmStarts int
	// ColdStarts counts LP solves that ran the two-phase method from
	// scratch (the root, plus any warm-start fallbacks).
	ColdStarts int
	// HeuristicIncumbents counts incumbents contributed by the diving
	// heuristic.
	HeuristicIncumbents int
	// Wall is the wall-clock solve time.
	Wall time.Duration
}

// WarmStartHitRate is the fraction of LP solves served by a warm start.
func (s Stats) WarmStartHitRate() float64 {
	total := s.WarmStarts + s.ColdStarts
	if total == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(total)
}

// Add accumulates other into s (for cross-round aggregation).
func (s *Stats) Add(other Stats) {
	s.Nodes += other.Nodes
	s.SimplexIters += other.SimplexIters
	s.WarmStarts += other.WarmStarts
	s.ColdStarts += other.ColdStarts
	s.HeuristicIncumbents += other.HeuristicIncumbents
	s.Wall += other.Wall
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	Nodes     int           // branch-and-bound nodes explored (== Stats.Nodes)
	Gap       float64       // final relative optimality gap
	Runtime   time.Duration // wall-clock solve time (== Stats.Wall)
	Stats     Stats         // solver instrumentation
}

// Problem is a MILP under construction. The zero value is not usable; call
// New.
type Problem struct {
	base   *lp.Problem
	isInt  []bool
	lo, hi []float64 // mirror of the base bounds, needed when branching
	sense  lp.Sense
	// rootBasis persists across Solve calls. When only coefficients/RHS
	// change between solves (the scheduler's reused round model), the basis
	// itself is stale — lp.SolveWarm detects that — but its allocations
	// back the next cold solve, keeping the hot path off the allocator.
	// Solve is therefore not safe for concurrent use on one Problem.
	rootBasis *lp.Basis
}

// New returns a MILP with nvars variables, all continuous with bounds
// [0, +inf).
func New(nvars int) *Problem {
	p := &Problem{
		base:  lp.New(nvars),
		isInt: make([]bool, nvars),
		lo:    make([]float64, nvars),
		hi:    make([]float64, nvars),
	}
	for i := range p.hi {
		p.hi[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.base.NumVars() }

// SetObjective sets the objective vector and direction.
func (p *Problem) SetObjective(c []float64, sense lp.Sense) error {
	p.sense = sense
	return p.base.SetObjective(c, sense)
}

// SetBounds sets the bounds of variable i.
func (p *Problem) SetBounds(i int, lo, hi float64) error {
	if err := p.base.SetBounds(i, lo, hi); err != nil {
		return err
	}
	p.lo[i], p.hi[i] = lo, hi
	return nil
}

// ResetVarBounds sets every variable's bounds to [lo, hi]. Round-to-round
// model reuse uses it to clear the previous round's pair-forbidding fixes in
// one pass before installing the new ones.
func (p *Problem) ResetVarBounds(lo, hi float64) error {
	for i := range p.lo {
		p.lo[i], p.hi[i] = lo, hi
	}
	return p.base.ResetBounds(p.lo, p.hi)
}

// SetBinary marks variable i as binary (integer in {0,1}).
func (p *Problem) SetBinary(i int) error {
	if err := p.SetBounds(i, 0, 1); err != nil {
		return err
	}
	p.isInt[i] = true
	return nil
}

// SetImpliedBinary marks variable i as integer WITHOUT installing the
// explicit [0,1] bound. Use it when the constraint matrix already implies
// x_i <= 1 (e.g. an assignment row Σ_j x_ij = 1 with x >= 0). The caller is
// responsible for the implication actually holding.
func (p *Problem) SetImpliedBinary(i int) error {
	if i < 0 || i >= len(p.isInt) {
		return fmt.Errorf("milp: variable %d out of range [0,%d)", i, len(p.isInt))
	}
	p.isInt[i] = true
	return nil
}

// SetInteger marks variable i as a general integer (bounds must be set
// separately; the default lower bound is 0).
func (p *Problem) SetInteger(i int) error {
	if i < 0 || i >= len(p.isInt) {
		return fmt.Errorf("milp: variable %d out of range [0,%d)", i, len(p.isInt))
	}
	p.isInt[i] = true
	return nil
}

// AddConstraint appends a sparse linear constraint.
func (p *Problem) AddConstraint(terms []lp.Term, op lp.Op, rhs float64) (int, error) {
	return p.base.AddConstraint(terms, op, rhs)
}

// Compile eagerly builds the relaxation's compressed sparse column matrix
// (otherwise built lazily on the first solve). The scheduler's round-model
// cache calls this once per batch shape; the immutable CSC arrays are then
// shared by every round, warm-start basis, and branch-and-bound worker.
func (p *Problem) Compile() { p.base.Compile() }

// SetRHS changes the right-hand side of constraint i (round-to-round
// capacity updates in the scheduler's reused model).
func (p *Problem) SetRHS(i int, rhs float64) error {
	return p.base.SetRHS(i, rhs)
}

// boundFix is one bound tightening on the path from the root to a node.
type boundFix struct {
	v      int
	lo, hi float64
}

// node is a branch-and-bound search node: the root problem plus bound
// tightenings, keyed by its parent's LP bound for best-bound expansion.
type node struct {
	fixes []boundFix
	basis *lp.Basis // parent's final basis (owned by this node); nil = cold
	bound float64   // parent LP relaxation objective (minimization space)
	id    uint64    // deterministic tie-break: root 1, children 2id, 2id+1
}

// childID derives a deterministic heap tie-break id. Beyond 63 levels the
// ids saturate (ties then break arbitrarily among ultra-deep nodes, which
// only affects exploration order, never a completed search's objective).
func childID(parent uint64, right bool) uint64 {
	if parent >= 1<<62 {
		return parent
	}
	id := parent << 1
	if right {
		id |= 1
	}
	return id
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// maxOpenBases bounds warm-start memory: once the open list grows past this,
// new nodes are pushed without a basis and solved cold if ever expanded.
const maxOpenBases = 2048

// search is the shared state of one Solve call.
type search struct {
	p        *Problem
	opts     Options
	sgn      float64   // +1 Minimize, -1 Maximize: relaxation obj -> min space
	deadline time.Time // zero when no time limit

	mu           sync.Mutex
	cond         *sync.Cond
	open         nodeHeap
	inflight     map[uint64]float64 // id -> bound of nodes being processed
	incumbent    []float64
	incumbentObj float64 // minimization space
	limitHit     bool
	gapHit       bool
	err          error
	stats        Stats
}

func (s *search) globalBoundLocked() float64 {
	b := math.Inf(1)
	if len(s.open) > 0 {
		b = s.open[0].bound
	}
	for _, ib := range s.inflight {
		if ib < b {
			b = ib
		}
	}
	return b
}

// consider offers an integer-feasible point as the incumbent.
func (s *search) consider(x []float64, obj float64, heuristic bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if obj < s.incumbentObj-1e-12 {
		s.incumbentObj = obj
		s.incumbent = append(s.incumbent[:0], x...)
		if heuristic {
			s.stats.HeuristicIncumbents++
		}
	}
}

func (s *search) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// next pops the best open node, blocking while other workers may still push
// children. It returns nil when the search is over (exhausted, limited, or
// failed).
func (s *search) next() *node {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.limitHit || s.gapHit {
			return nil
		}
		if len(s.open) > 0 {
			if s.stats.Nodes >= s.opts.MaxNodes {
				s.limitHit = true
				s.cond.Broadcast()
				return nil
			}
			if !s.deadline.IsZero() && time.Now().After(s.deadline) {
				s.limitHit = true
				s.cond.Broadcast()
				return nil
			}
			if s.incumbentObj < math.Inf(1) {
				gap := (s.incumbentObj - s.globalBoundLocked()) / math.Max(math.Abs(s.incumbentObj), 1)
				if gap <= s.opts.RelGap {
					s.gapHit = true
					s.cond.Broadcast()
					return nil
				}
			}
			n := heap.Pop(&s.open).(*node)
			if n.bound >= s.incumbentObj-1e-9 {
				continue // pruned by bound; costs no LP solve
			}
			s.inflight[n.id] = n.bound
			return n
		}
		if len(s.inflight) == 0 {
			return nil // tree exhausted
		}
		s.cond.Wait()
	}
}

func (s *search) done(n *node) {
	s.mu.Lock()
	delete(s.inflight, n.id)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// solveNode applies a node's bound fixes to the worker's problem clone and
// solves its relaxation, warm starting from the node's basis when possible.
// It returns (nil, nil) for nodes whose fixes cross (trivially infeasible).
func (s *search) solveNode(prob *lp.Problem, n *node) (*lp.Solution, *lp.Basis, error) {
	if err := prob.ResetBounds(s.p.lo, s.p.hi); err != nil {
		return nil, nil, err
	}
	for _, bf := range n.fixes {
		if bf.lo > bf.hi {
			return nil, nil, nil
		}
		if err := prob.SetBounds(bf.v, bf.lo, bf.hi); err != nil {
			return nil, nil, err
		}
	}
	basis := n.basis
	if s.opts.DisableWarmStart {
		basis = nil
	} else if basis == nil {
		basis = lp.NewBasis()
	}
	sol, err := prob.SolveWarm(basis)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.stats.SimplexIters += sol.Iters
	if sol.WarmStarted {
		s.stats.WarmStarts++
	} else {
		s.stats.ColdStarts++
	}
	s.stats.Nodes++
	s.mu.Unlock()
	return sol, basis, nil
}

// fractional returns the integer variable farthest from integrality, or -1
// when x is integer feasible. Deterministic: first index among ties.
func (s *search) fractional(x []float64) int {
	bestV, bestDist := -1, -1.0
	for i, isI := range s.p.isInt {
		if !isI {
			continue
		}
		f := x[i] - math.Floor(x[i])
		d := math.Min(f, 1-f)
		if d > s.opts.IntTol && d > bestDist {
			bestDist = d
			bestV = i
		}
	}
	return bestV
}

// expand branches a node whose relaxation solved Optimal with fractional
// value at v: two children with tightened bounds on v, plus any
// reduced-cost fixes the LP solution proves. prob still holds the node's
// bounds; basis is the node's final basis (ownership passes to the left
// child; the right child gets a clone).
func (s *search) expand(n *node, v int, sol *lp.Solution, obj float64, prob *lp.Problem, basis *lp.Basis) {
	s.mu.Lock()
	incumbent := s.incumbentObj
	s.mu.Unlock()

	// Reduced-cost fixing: an integer variable sitting at its bound with
	// reduced cost d cannot move (integers move in whole units, costing at
	// least |d| each) in any solution better than the incumbent when
	// obj + |d| already meets it. Fixing shrinks both children's boxes.
	var rcFixes []boundFix
	if sol.ReducedCosts != nil && incumbent < math.Inf(1) {
		for j, isI := range s.p.isInt {
			if !isI || j == v {
				continue
			}
			lo, hi := prob.Bounds(j)
			if lo == hi {
				continue
			}
			d := sol.ReducedCosts[j]
			switch {
			case d > 1e-9 && sol.X[j] <= lo+s.opts.IntTol:
				if obj+d >= incumbent-1e-9 {
					rcFixes = append(rcFixes, boundFix{j, lo, lo})
				}
			case d < -1e-9 && !math.IsInf(hi, 1) && sol.X[j] >= hi-s.opts.IntTol:
				if obj-d >= incumbent-1e-9 {
					rcFixes = append(rcFixes, boundFix{j, hi, hi})
				}
			}
		}
	}

	lo, hi := prob.Bounds(v)
	floor := math.Floor(sol.X[v])
	base := make([]boundFix, 0, len(n.fixes)+len(rcFixes)+1)
	base = append(base, n.fixes...)
	base = append(base, rcFixes...)

	var children []*node
	if floor >= lo {
		left := &node{
			fixes: append(append([]boundFix(nil), base...), boundFix{v, lo, floor}),
			bound: obj, id: childID(n.id, false),
		}
		children = append(children, left)
	}
	if floor+1 <= hi {
		right := &node{
			fixes: append(append([]boundFix(nil), base...), boundFix{v, floor + 1, hi}),
			bound: obj, id: childID(n.id, true),
		}
		children = append(children, right)
	}

	s.mu.Lock()
	withBasis := len(s.open) < maxOpenBases && !s.opts.DisableWarmStart
	if withBasis && basis.Valid() {
		if len(children) > 0 {
			children[0].basis = basis // transfer ownership
		}
		if len(children) > 1 {
			children[1].basis = basis.Clone()
		}
	}
	for _, c := range children {
		heap.Push(&s.open, c)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// process solves one popped node and prunes, records, or branches.
func (s *search) process(n *node, prob *lp.Problem) {
	sol, basis, err := s.solveNode(prob, n)
	if err != nil {
		s.fail(err)
		return
	}
	if sol == nil || sol.Status != lp.Optimal {
		return // infeasible (or numerically stuck) subtree: prune
	}
	obj := s.sgn * sol.Objective
	s.mu.Lock()
	incumbent := s.incumbentObj
	s.mu.Unlock()
	if obj >= incumbent-1e-9 {
		return
	}
	if v := s.fractional(sol.X); v >= 0 {
		s.expand(n, v, sol, obj, prob, basis)
	} else {
		s.consider(sol.X, obj, false)
	}
}

func (s *search) worker() {
	prob := s.p.base.Clone()
	for {
		n := s.next()
		if n == nil {
			return
		}
		s.process(n, prob)
		s.done(n)
	}
}

// dive runs the rounding/diving primal heuristic from the root relaxation:
// repeatedly fix the fractional integer variable closest to integrality to
// its rounded value and warm-resolve, hoping to land on an integer-feasible
// point quickly. Any incumbent it finds seeds bound pruning for the whole
// tree. Tie-breaks use opts.Seed; the completed search's objective does not
// depend on them.
func (s *search) dive(rootBasis *lp.Basis, rootX []float64) {
	if s.opts.DisableHeuristic {
		return
	}
	prob := s.p.base.Clone()
	// Warm starts make each dive step a few dual pivots; without a basis
	// (DisableWarmStart) the dive still runs, just on cold solves — the
	// two ablation switches stay independent.
	var basis *lp.Basis
	if rootBasis.Valid() {
		basis = rootBasis.Clone()
	}
	x := append([]float64(nil), rootX...)
	rng := rand.New(rand.NewSource(s.opts.Seed))
	maxDepth := 0
	for _, isI := range s.p.isInt {
		if isI {
			maxDepth++
		}
	}
	for depth := 0; depth <= maxDepth; depth++ {
		// Most-integral fractional variable; ties broken by seeded RNG.
		v, bestDist := -1, math.Inf(1)
		ties := 0
		for i, isI := range s.p.isInt {
			if !isI {
				continue
			}
			f := x[i] - math.Floor(x[i])
			d := math.Min(f, 1-f)
			if d <= s.opts.IntTol {
				continue
			}
			switch {
			case d < bestDist-1e-9:
				bestDist = d
				v = i
				ties = 1
			case d < bestDist+1e-9:
				ties++
				if rng.Intn(ties) == 0 {
					v = i
				}
			}
		}
		if v == -1 {
			obj := 0.0
			for j := range x {
				obj += s.p.base.ObjectiveCoef(j) * x[j]
			}
			s.consider(x, s.sgn*obj, true)
			return
		}
		lo, hi := prob.Bounds(v)
		r := math.Round(x[v])
		if r < lo {
			r = math.Ceil(lo)
		}
		if r > hi {
			r = math.Floor(hi)
		}
		if r < lo || r > hi {
			return
		}
		if err := prob.SetBounds(v, r, r); err != nil {
			return
		}
		sol, err := prob.SolveWarm(basis)
		if err != nil || sol.Status != lp.Optimal {
			return
		}
		s.mu.Lock()
		s.stats.SimplexIters += sol.Iters
		if sol.WarmStarted {
			s.stats.WarmStarts++
		} else {
			s.stats.ColdStarts++
		}
		incumbent := s.incumbentObj
		s.mu.Unlock()
		if s.sgn*sol.Objective >= incumbent-1e-9 {
			return
		}
		x = sol.X
	}
}

// Solve runs branch and bound and returns the best solution found.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	start := time.Now()

	sgn := 1.0
	if p.sense == lp.Maximize {
		sgn = -1.0
	}
	s := &search{
		p: p, opts: opts, sgn: sgn,
		inflight:     make(map[uint64]float64),
		incumbentObj: math.Inf(1),
	}
	s.cond = sync.NewCond(&s.mu)
	if opts.TimeLimit > 0 {
		s.deadline = start.Add(opts.TimeLimit)
	}

	finish := func(sol *Solution) *Solution {
		sol.Runtime = time.Since(start)
		s.stats.Wall = sol.Runtime
		sol.Stats = s.stats
		sol.Nodes = s.stats.Nodes
		return sol
	}

	// Root relaxation: solved inline (serially) so terminal statuses and
	// the diving heuristic happen before workers spawn.
	if p.rootBasis == nil {
		p.rootBasis = lp.NewBasis()
	}
	rootBasis := p.rootBasis
	if opts.DisableWarmStart {
		rootBasis = nil
	}
	var rootSol *lp.Solution
	var err error
	if opts.RepriceWarmStart {
		// Cross-round warm start: revive the previous Solve's root basis by
		// re-pricing the changed objective/RHS in place.
		rootSol, err = p.base.SolveReprice(rootBasis)
	} else {
		rootSol, err = p.base.SolveWarm(rootBasis)
	}
	if err != nil {
		return nil, err
	}
	s.stats.Nodes, s.stats.SimplexIters = 1, rootSol.Iters
	if rootSol.WarmStarted {
		s.stats.WarmStarts = 1
	} else {
		s.stats.ColdStarts = 1
	}
	switch rootSol.Status {
	case lp.Infeasible:
		return finish(&Solution{Status: Infeasible, Gap: math.Inf(1)}), nil
	case lp.Unbounded:
		return finish(&Solution{Status: Unbounded, Gap: math.Inf(1)}), nil
	case lp.IterLimit:
		return finish(&Solution{Status: Limit, Gap: math.Inf(1)}), nil
	}
	rootObj := sgn * rootSol.Objective
	branchVar := s.fractional(rootSol.X)
	if branchVar == -1 {
		// Integral root: done without any branching.
		return finish(&Solution{
			Status:    Optimal,
			Objective: sgn * rootObj,
			X:         rootSol.X,
			Gap:       0,
		}), nil
	}
	s.dive(rootBasis, rootSol.X)
	rootNode := &node{bound: rootObj, id: 1}
	s.inflight[1] = rootObj // mirrors a worker mid-expansion
	// p.base already holds exactly the root bounds, and expand only reads
	// them — no clone needed.
	s.expand(rootNode, branchVar, rootSol, rootObj, p.base, rootBasis)
	s.done(rootNode)

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()
	if s.err != nil {
		return nil, s.err
	}

	bestBound := s.globalBoundLocked() // workers joined: no lock contention
	sol := &Solution{}
	if s.incumbent == nil {
		if s.limitHit {
			sol.Status = Limit
		} else {
			sol.Status = Infeasible
		}
		sol.Gap = math.Inf(1)
		return finish(sol), nil
	}
	sol.X = s.incumbent
	sol.Objective = sgn * s.incumbentObj
	if math.IsInf(bestBound, 1) || bestBound >= s.incumbentObj {
		bestBound = s.incumbentObj
	}
	sol.Gap = (s.incumbentObj - bestBound) / math.Max(math.Abs(s.incumbentObj), 1)
	if sol.Gap <= opts.RelGap {
		sol.Status = Optimal
	} else {
		sol.Status = Feasible
	}
	return finish(sol), nil
}
