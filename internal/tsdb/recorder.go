// The recorder ties the store to a metrics exposition: on every scheduler
// round it gathers the Prometheus text the server already serves, parses
// it with the strict in-repo parser, appends every sample at the round
// index, and re-evaluates the SLO engine. Scraping its own exposition —
// rather than reaching into internals — means anything rendered on
// /metrics is automatically queryable over time, including series added
// by future PRs.
package tsdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"waterwise/internal/obs"
)

// Config configures a Recorder.
type Config struct {
	// Gather renders the exposition to scrape. Required. It is invoked
	// outside any scheduler lock (the round hooks guarantee this) but may
	// itself take status locks.
	Gather func() []byte
	// MemoryBudgetBytes bounds the compressed store; <= 0 means 8 MiB.
	MemoryBudgetBytes int
	// ScrapeEvery scrapes once per that many rounds; <= 0 means every
	// round.
	ScrapeEvery uint64
	// Sync scrapes inline on the round-clock callers' goroutine, making
	// recorded history deterministic — what scenarios and tests want. The
	// default (async) hands rounds to a scraper goroutine that coalesces
	// to the newest round under pressure, bounding the cost added to the
	// scheduling loop to an atomic store and a channel poke.
	Sync bool
	// MinInterval floors the wall-clock spacing of async scrapes: at most
	// one scrape per interval, always recording the newest pending round
	// (skips count as coalesced). An accelerated daemon can run hundreds
	// of rounds per second, and a full gather+parse per round would eat
	// the machine; a flight recorder at a few Hz loses nothing an
	// operator asks about. Zero means no floor. Ignored in Sync mode,
	// where determinism is the point, and by the Close drain, so the
	// final round is always recorded.
	MinInterval time.Duration
	// Objectives arms the SLO engine.
	Objectives []Objective
	// Logf receives alert transition and scrape-failure lines
	// (slog-compatible free-form); nil disables.
	Logf func(format string, args ...any)
}

// RecorderStats extends the store's accounting with scrape counters.
type RecorderStats struct {
	StoreStats
	// Scrapes counts completed scrapes.
	Scrapes uint64 `json:"scrapes"`
	// CoalescedRounds counts rounds the async scraper skipped because a
	// newer round was already pending — bounded-overhead by design, and
	// visible rather than silent.
	CoalescedRounds uint64 `json:"coalesced_rounds"`
	// ParseErrors counts scrapes dropped because the exposition failed
	// the strict parser.
	ParseErrors uint64 `json:"parse_errors"`
	// LastRound is the newest recorded round.
	LastRound uint64 `json:"last_round"`
	// AlertsFiring is the number of currently-firing burn-rate alerts.
	AlertsFiring int `json:"alerts_firing"`
}

// Recorder is the flight recorder. Create with New, feed rounds with
// Observe, query via Store()/Alerts(), stop with Close.
type Recorder struct {
	cfg   Config
	store *Store

	obMu     sync.Mutex // serializes Observe callers (fleet shards race)
	lastSeen uint64     // newest round handed to Observe

	mu          sync.Mutex // guards scrape state + engine
	lastScraped uint64
	scrapes     uint64
	coalesced   uint64
	parseErrors uint64
	engine      *sloEngine

	pending atomic.Uint64
	wake    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
}

// New builds a Recorder. The SLO objectives are validated here so a bad
// config fails at boot, not at first alert.
func New(cfg Config) (*Recorder, error) {
	if cfg.Gather == nil {
		return nil, fmt.Errorf("tsdb: Config.Gather is required")
	}
	if cfg.ScrapeEvery == 0 {
		cfg.ScrapeEvery = 1
	}
	engine, err := newSLOEngine(cfg.Objectives, cfg.Logf)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		cfg:    cfg,
		store:  NewStore(cfg.MemoryBudgetBytes),
		engine: engine,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if !cfg.Sync {
		go r.loop()
	} else {
		close(r.done)
	}
	return r, nil
}

// Observe notes that round `round` completed. Non-increasing rounds are
// ignored, so fleet shards can all report their own counts and the
// recorder tracks the maximum — the fleet's progress clock.
func (r *Recorder) Observe(round uint64) {
	r.obMu.Lock()
	defer r.obMu.Unlock()
	if round <= r.lastSeen || r.closed.Load() {
		return
	}
	r.lastSeen = round
	if round-r.lastScrapedSnapshot() < r.cfg.ScrapeEvery {
		return
	}
	if r.cfg.Sync {
		// Inline under obMu: concurrent round threads (fleet shards)
		// serialize here, so every due round is scraped exactly once and
		// in order — the determinism scenarios rely on.
		r.scrape(round)
		return
	}
	r.pending.Store(round)
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *Recorder) lastScrapedSnapshot() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastScraped
}

// loop is the async scraper: each wake-up scrapes the newest pending
// round, counting the rounds it skipped past. With MinInterval set it
// sleeps out the remainder of the floor first — and scrapes whatever
// round is newest by then, so a burst of fast rounds costs one scrape.
func (r *Recorder) loop() {
	defer close(r.done)
	var lastAt time.Time
	for range r.wake {
		if r.cfg.MinInterval > 0 && !lastAt.IsZero() && !r.closed.Load() {
			if wait := r.cfg.MinInterval - time.Since(lastAt); wait > 0 {
				time.Sleep(wait)
			}
		}
		round := r.pending.Load()
		last := r.lastScrapedSnapshot()
		if round <= last {
			continue
		}
		if skipped := (round - last) / r.cfg.ScrapeEvery; skipped > 1 {
			r.mu.Lock()
			r.coalesced += skipped - 1
			r.mu.Unlock()
		}
		r.scrape(round)
		lastAt = time.Now()
	}
}

// scrape gathers, parses, appends, and re-evaluates alerts at `round`.
func (r *Recorder) scrape(round uint64) {
	data := r.cfg.Gather()
	fams, err := obs.ParseProm(data)
	if err != nil {
		r.mu.Lock()
		r.parseErrors++
		r.mu.Unlock()
		if r.cfg.Logf != nil {
			r.cfg.Logf("tsdb scrape parse error round=%d err=%v", round, err)
		}
		return
	}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			r.store.Append(Key(s.Name, s.Labels), round, s.Value)
		}
	}
	r.mu.Lock()
	if round > r.lastScraped {
		r.lastScraped = round
	}
	r.scrapes++
	r.engine.evaluate(r.store, round)
	r.mu.Unlock()
}

// Close stops the async scraper and waits for it to drain. The store
// stays queryable after Close.
func (r *Recorder) Close() {
	r.obMu.Lock()
	if r.closed.Swap(true) {
		r.obMu.Unlock()
		return
	}
	if !r.cfg.Sync {
		close(r.wake)
	}
	r.obMu.Unlock()
	<-r.done
}

// Store exposes the underlying store for queries.
func (r *Recorder) Store() *Store { return r.store }

// Stats snapshots the recorder's accounting.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	s := RecorderStats{
		Scrapes:         r.scrapes,
		CoalescedRounds: r.coalesced,
		ParseErrors:     r.parseErrors,
		LastRound:       r.lastScraped,
		AlertsFiring:    r.engine.firing(),
	}
	r.mu.Unlock()
	s.StoreStats = r.store.Stats()
	return s
}

// Alerts snapshots the SLO alert states, sorted.
func (r *Recorder) Alerts() []Alert {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine.snapshot()
}

// Query returns raw samples of one series reference over [from, to].
func (r *Recorder) Query(ref string, from, to uint64) []Sample {
	return r.store.Query(ref, from, to)
}

// Increase delegates to the store's windowed counter growth (query.go).
func (r *Recorder) Increase(ref string, window, end uint64) (float64, bool) {
	return r.store.Increase(ref, window, end)
}

// Rate delegates to the store's per-round rate (query.go).
func (r *Recorder) Rate(ref string, window, end uint64) (float64, bool) {
	return r.store.Rate(ref, window, end)
}

// Quantile delegates to the store's windowed histogram quantile
// reconstruction (query.go).
func (r *Recorder) Quantile(ref string, q float64, window, end uint64) (float64, bool) {
	return r.store.QuantileOver(ref, q, window, end)
}

// LastRound is the newest recorded round.
func (r *Recorder) LastRound() uint64 { return r.store.LastRound() }

// AppendMetrics renders the recorder's own exposition block (tsdb
// accounting plus the alerts-firing gauge) with the given metric name
// prefix, in the same hand-rolled style as the rest of the exposition.
func (r *Recorder) AppendMetrics(b []byte, prefix string) []byte {
	st := r.Stats()
	gauge := func(name, help string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s%s %s\n# TYPE %s%s gauge\n%s%s %g\n",
			prefix, name, help, prefix, name, prefix, name, v)...)
	}
	counter := func(name, help string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s%s %s\n# TYPE %s%s counter\n%s%s %g\n",
			prefix, name, help, prefix, name, prefix, name, v)...)
	}
	gauge("tsdb_series", "Live series in the metrics flight recorder.", float64(st.Series))
	gauge("tsdb_bytes", "Approximate compressed bytes held by the flight recorder.", float64(st.Bytes))
	gauge("tsdb_budget_bytes", "Flight recorder memory budget.", float64(st.BudgetBytes))
	counter("tsdb_samples_total", "Samples appended to the flight recorder.", float64(st.Samples))
	counter("tsdb_evicted_chunks_total", "Oldest-window chunks evicted to stay under budget.", float64(st.EvictedChunks))
	counter("tsdb_evicted_samples_total", "Samples lost to chunk eviction.", float64(st.EvictedSamples))
	counter("tsdb_scrapes_total", "Completed round-clock scrapes.", float64(st.Scrapes))
	counter("tsdb_coalesced_rounds_total", "Rounds skipped by the async scraper because a newer round was pending.", float64(st.CoalescedRounds))
	counter("tsdb_parse_errors_total", "Scrapes dropped by the strict exposition parser.", float64(st.ParseErrors))
	gauge("alerts_firing", "Burn-rate SLO alerts currently firing.", float64(st.AlertsFiring))
	return b
}
