// Package tsdb is the metrics flight recorder: a bounded, dependency-free
// in-process time-series store that self-scrapes a Prometheus text
// exposition on the scheduler's round clock and answers windowed queries
// (rate, increase, histogram quantiles) over the recorded history. An SLO
// engine on top evaluates declarative objectives with multi-window
// burn-rate rules and raises firing/clearing alerts.
//
// Timestamps are round indices, not wall instants: the recorder observes
// the round counter the scheduling loop already maintains, so an
// accelerated replay (rounds back to back) records the same series a
// wall-paced run of the same trace does, and scenario assertions can be
// stated in rounds — the only clock the fleet shares.
//
// Storage is a per-series compressed ring: timestamps are delta-of-delta
// varints (a constant one-round stride costs one byte per sample), values
// are XOR-compressed against the previous sample (byte-aligned Gorilla:
// repeated values cost one byte, counters a few). Chunks seal at a fixed
// sample count, and when the store exceeds its memory budget the oldest
// chunk in the store is evicted — surfaced as a counter, never silent.
package tsdb

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Sample is one recorded point: the round it was scraped at and the value.
type Sample struct {
	Round uint64  `json:"round"`
	Value float64 `json:"value"`
}

// chunkSamples is the sample count at which a chunk seals. At one scrape
// per round a chunk covers 120 rounds; the byte budget then bounds how
// many windows of history survive eviction.
const chunkSamples = 120

// chunkOverhead approximates the fixed per-chunk accounting cost (struct
// headers, slice headers) charged against the memory budget on top of the
// encoded bytes.
const chunkOverhead = 96

// chunk is one sealed-or-open run of compressed samples.
type chunk struct {
	buf        []byte
	n          int
	minT, maxT uint64
	// Encoder state (head chunk only): the previous timestamp, its delta,
	// and the previous value's bits.
	lastDelta int64
	lastV     uint64
}

// appendSample encodes one (t, v) pair onto the chunk. Timestamps must be
// strictly increasing.
func (c *chunk) appendSample(t uint64, v float64) {
	vb := math.Float64bits(v)
	if c.n == 0 {
		c.buf = appendUvarint(c.buf, t)
		var raw [8]byte
		putUint64(raw[:], vb)
		c.buf = append(c.buf, raw[:]...)
		c.minT = t
	} else {
		delta := int64(t - c.maxT)
		c.buf = appendVarint(c.buf, delta-c.lastDelta)
		c.lastDelta = delta
		c.buf = appendXOR(c.buf, vb^c.lastV)
	}
	c.maxT = t
	c.lastV = vb
	c.n++
}

// decode appends the chunk's samples to dst.
func (c *chunk) decode(dst []Sample) []Sample {
	buf := c.buf
	var t uint64
	var vb uint64
	var delta int64
	for i := 0; i < c.n; i++ {
		if i == 0 {
			var n int
			t, n = uvarint(buf)
			buf = buf[n:]
			vb = getUint64(buf)
			buf = buf[8:]
		} else {
			dod, n := varint(buf)
			buf = buf[n:]
			delta += dod
			t += uint64(delta)
			xor, n := decodeXOR(buf)
			buf = buf[n:]
			vb ^= xor
		}
		dst = append(dst, Sample{Round: t, Value: math.Float64frombits(vb)})
	}
	return dst
}

// bytes is the chunk's budget charge.
func (c *chunk) bytes() int { return len(c.buf) + chunkOverhead }

// series is one metric series: a list of chunks, oldest first; the last
// chunk is the open head.
type series struct {
	key    string
	chunks []*chunk
}

// appendSample adds one sample, sealing the head at chunkSamples. Returns
// the byte growth charged to the store.
func (s *series) appendSample(t uint64, v float64) int {
	var head *chunk
	if n := len(s.chunks); n > 0 && s.chunks[n-1].n < chunkSamples {
		head = s.chunks[n-1]
	} else {
		head = &chunk{}
		s.chunks = append(s.chunks, head)
	}
	before := head.bytes()
	if head.n == 0 {
		before = 0 // fresh chunk: charge its fixed overhead too
	}
	head.appendSample(t, v)
	return head.bytes() - before
}

// StoreStats is the store's self-accounting, rendered into the exposition
// (and therefore recorded into the store itself).
type StoreStats struct {
	// Series is the live series count.
	Series int `json:"series"`
	// Bytes is the approximate memory charged against the budget.
	Bytes int `json:"bytes"`
	// BudgetBytes is the configured bound.
	BudgetBytes int `json:"budget_bytes"`
	// Samples counts every sample ever appended.
	Samples uint64 `json:"samples"`
	// EvictedChunks counts chunks dropped to stay under budget — the
	// oldest window each time, never silent truncation.
	EvictedChunks uint64 `json:"evicted_chunks"`
	// EvictedSamples counts the samples those chunks held.
	EvictedSamples uint64 `json:"evicted_samples"`
}

// Store is the compressed time-series store. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	budget int
	series map[string]*series
	// byName indexes series keys by bare metric name, for family queries
	// (histogram buckets, label-summed counters).
	byName map[string][]string
	stats  StoreStats
}

// NewStore builds a store bounded to budgetBytes of encoded history
// (minimum one chunk; <= 0 means the 8 MiB default).
func NewStore(budgetBytes int) *Store {
	if budgetBytes <= 0 {
		budgetBytes = 8 << 20
	}
	return &Store{
		budget: budgetBytes,
		series: make(map[string]*series),
		byName: make(map[string][]string),
		stats:  StoreStats{BudgetBytes: budgetBytes},
	}
}

// Key canonicalizes a series identity: the bare name, or name{k="v",...}
// with label names sorted — the grammar Query and the /v1/query endpoint
// parse back.
func Key(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", k, v))
	}
	sort.Strings(parts)
	return name + "{" + strings.Join(parts, ",") + "}"
}

// SplitKey parses a canonical key (or a user-supplied series reference)
// back into name and labels.
func SplitKey(key string) (name string, labels map[string]string, err error) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil, nil
	}
	if !strings.HasSuffix(key, "}") {
		return "", nil, fmt.Errorf("tsdb: unterminated label set in %q", key)
	}
	name = key[:i]
	labels = make(map[string]string)
	body := key[i+1 : len(key)-1]
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq <= 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return "", nil, fmt.Errorf("tsdb: malformed label pair in %q", key)
		}
		lname := body[:eq]
		rest := body[eq+2:]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			return "", nil, fmt.Errorf("tsdb: unterminated label value in %q", key)
		}
		labels[lname] = rest[:end]
		body = rest[end+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return name, labels, nil
}

// nameOf returns the bare metric name of a canonical key.
func nameOf(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Append records one sample. Rounds must be strictly increasing per
// series; stale or duplicate rounds are dropped.
func (st *Store) Append(key string, round uint64, v float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	sr := st.series[key]
	if sr == nil {
		sr = &series{key: key}
		st.series[key] = sr
		name := nameOf(key)
		st.byName[name] = append(st.byName[name], key)
		st.stats.Series++
	}
	if n := len(sr.chunks); n > 0 && round <= sr.chunks[n-1].maxT {
		return
	}
	st.stats.Bytes += sr.appendSample(round, v)
	st.stats.Samples++
	for st.stats.Bytes > st.budget {
		if !st.evictOldestLocked() {
			break
		}
	}
}

// evictOldestLocked drops the oldest chunk in the store (smallest minT;
// ties by key for determinism). Returns false when nothing is evictable —
// only open heads of length-one series remain and dropping them would
// erase the present.
func (st *Store) evictOldestLocked() bool {
	var victim *series
	for _, sr := range st.series {
		if len(sr.chunks) == 0 {
			continue
		}
		if len(sr.chunks) == 1 && len(st.series) <= 1 {
			continue // never evict the sole open head of the sole series
		}
		if victim == nil ||
			sr.chunks[0].minT < victim.chunks[0].minT ||
			(sr.chunks[0].minT == victim.chunks[0].minT && sr.key < victim.key) {
			victim = sr
		}
	}
	if victim == nil {
		return false
	}
	c := victim.chunks[0]
	victim.chunks = victim.chunks[1:]
	st.stats.Bytes -= c.bytes()
	st.stats.EvictedChunks++
	st.stats.EvictedSamples += uint64(c.n)
	if len(victim.chunks) == 0 {
		delete(st.series, victim.key)
		name := nameOf(victim.key)
		keys := st.byName[name]
		for i, k := range keys {
			if k == victim.key {
				st.byName[name] = append(keys[:i], keys[i+1:]...)
				break
			}
		}
		if len(st.byName[name]) == 0 {
			delete(st.byName, name)
		}
		st.stats.Series--
	}
	return true
}

// Query returns the samples of one series with from <= Round <= to
// (to == 0 means "to the end").
func (st *Store) Query(key string, from, to uint64) []Sample {
	st.mu.Lock()
	defer st.mu.Unlock()
	sr := st.series[key]
	if sr == nil {
		return nil
	}
	if to == 0 {
		to = math.MaxUint64
	}
	out := []Sample{}
	var scratch []Sample
	for _, c := range sr.chunks {
		if c.maxT < from || c.minT > to {
			continue
		}
		scratch = c.decode(scratch[:0])
		for _, s := range scratch {
			if s.Round >= from && s.Round <= to {
				out = append(out, s)
			}
		}
	}
	return out
}

// ValueAt returns the newest sample at or before round, or ok=false when
// the series has no sample that early.
func (st *Store) ValueAt(key string, round uint64) (Sample, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.valueAtLocked(key, round)
}

func (st *Store) valueAtLocked(key string, round uint64) (Sample, bool) {
	sr := st.series[key]
	if sr == nil {
		return Sample{}, false
	}
	// Latest chunk whose first sample is not past round.
	idx := -1
	for i, c := range sr.chunks {
		if c.minT <= round {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		return Sample{}, false
	}
	var best Sample
	found := false
	scratch := sr.chunks[idx].decode(nil)
	for _, s := range scratch {
		if s.Round <= round {
			best, found = s, true
		}
	}
	return best, found
}

// earliestLocked returns the series' oldest surviving sample.
func (st *Store) earliestLocked(key string) (Sample, bool) {
	sr := st.series[key]
	if sr == nil || len(sr.chunks) == 0 {
		return Sample{}, false
	}
	scratch := sr.chunks[0].decode(nil)
	if len(scratch) == 0 {
		return Sample{}, false
	}
	return scratch[0], true
}

// Keys returns every live series key, sorted.
func (st *Store) Keys() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]string, 0, len(st.series))
	for k := range st.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeysOf returns the live series keys of one bare metric name, sorted.
func (st *Store) KeysOf(name string) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := append([]string(nil), st.byName[name]...)
	sort.Strings(out)
	return out
}

// Stats returns the store's self-accounting.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// --- varint / XOR encoding primitives -------------------------------------

// appendUvarint appends v in LEB128.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// uvarint decodes a LEB128 value, returning it and the bytes consumed.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, c := range b {
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// appendVarint appends v zigzag-encoded.
func appendVarint(b []byte, v int64) []byte {
	return appendUvarint(b, uint64(v<<1)^uint64(v>>63))
}

// varint decodes a zigzag varint.
func varint(b []byte) (int64, int) {
	u, n := uvarint(b)
	return int64(u>>1) ^ -int64(u&1), n
}

// appendXOR appends a byte-aligned Gorilla-style XOR: 0x80 for a repeat
// (xor == 0), else a control byte packing (trailing-zero bytes << 4 |
// meaningful bytes - 1) followed by the meaningful middle bytes.
func appendXOR(b []byte, xor uint64) []byte {
	if xor == 0 {
		return append(b, 0x80)
	}
	trail := bits.TrailingZeros64(xor) / 8
	lead := bits.LeadingZeros64(xor) / 8
	mean := 8 - trail - lead
	b = append(b, byte(trail<<4|(mean-1)))
	v := xor >> (8 * uint(trail))
	for i := 0; i < mean; i++ {
		b = append(b, byte(v>>(8*uint(i))))
	}
	return b
}

// decodeXOR decodes one appendXOR token.
func decodeXOR(b []byte) (uint64, int) {
	ctl := b[0]
	if ctl == 0x80 {
		return 0, 1
	}
	trail := int(ctl >> 4)
	mean := int(ctl&0x0f) + 1
	var v uint64
	for i := 0; i < mean; i++ {
		v |= uint64(b[1+i]) << (8 * uint(i))
	}
	return v << (8 * uint(trail)), 1 + mean
}

// putUint64 writes v little-endian into b[:8].
func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

// getUint64 reads a little-endian uint64 from b[:8].
func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * uint(i))
	}
	return v
}
