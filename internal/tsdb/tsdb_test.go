package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"waterwise/internal/obs"
)

// TestChunkRoundTrip pins the compression codec: every value pattern a
// scrape produces (flat gauges, slow counters, jittery floats, sign
// flips) must decode bit-identical.
func TestChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	patterns := map[string]func(i int) float64{
		"flat":    func(i int) float64 { return 42 },
		"counter": func(i int) float64 { return float64(i * 3) },
		"jitter":  func(i int) float64 { return 0.001 + rng.Float64()*1e-6 },
		"signs":   func(i int) float64 { return float64(i%5-2) * 1.5 },
		"huge":    func(i int) float64 { return math.MaxFloat64 / float64(i+1) },
		"tiny":    func(i int) float64 { return math.SmallestNonzeroFloat64 * float64(i+1) },
	}
	for name, gen := range patterns {
		var c chunk
		want := make([]Sample, 0, 300)
		round := uint64(1)
		for i := 0; i < 300; i++ {
			v := gen(i)
			c.appendSample(round, v)
			want = append(want, Sample{Round: round, Value: v})
			// Mostly stride-1 rounds with occasional gaps, like a paced
			// recorder that missed rounds.
			round += uint64(1 + rng.Intn(3)*rng.Intn(2)*7)
		}
		got := c.decode(nil)
		if len(got) != len(want) {
			t.Fatalf("%s: decoded %d samples, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sample %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestCompressionRatio sanity-checks that the codec actually compresses:
// a steady counter at a constant round stride must cost well under the
// 16 raw bytes per sample.
func TestCompressionRatio(t *testing.T) {
	var c chunk
	for i := 0; i < chunkSamples; i++ {
		c.appendSample(uint64(i+1), float64(i*17))
	}
	perSample := float64(len(c.buf)) / chunkSamples
	if perSample > 8 {
		t.Errorf("steady counter costs %.1f bytes/sample, want < 8", perSample)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels map[string]string
	}{
		{"plain_total", nil},
		{"labeled_total", map[string]string{"shard": "3", "region": "us-east"}},
		{"bucket", map[string]string{"le": "+Inf", "shard": "0"}},
	}
	for _, c := range cases {
		key := Key(c.name, c.labels)
		name, labels, err := SplitKey(key)
		if err != nil {
			t.Fatalf("SplitKey(%q): %v", key, err)
		}
		if name != c.name {
			t.Errorf("SplitKey(%q) name = %q", key, name)
		}
		if len(labels) != len(c.labels) {
			t.Errorf("SplitKey(%q) labels = %v, want %v", key, labels, c.labels)
		}
		for k, v := range c.labels {
			if labels[k] != v {
				t.Errorf("SplitKey(%q)[%s] = %q, want %q", key, k, labels[k], v)
			}
		}
	}
	for _, bad := range []string{"x{", "x{a=b}", `x{a="b}`, `x{a="b"`} {
		if _, _, err := SplitKey(bad); err == nil {
			t.Errorf("SplitKey(%q) accepted malformed key", bad)
		}
	}
}

// TestStoreEviction fills a tiny store and checks the oldest window is
// evicted first, with the loss surfaced in the counters.
func TestStoreEviction(t *testing.T) {
	st := NewStore(4096)
	rounds := uint64(3000)
	for r := uint64(1); r <= rounds; r++ {
		st.Append("a_total", r, float64(r))
		st.Append("b_total", r, float64(r*2))
	}
	stats := st.Stats()
	if stats.Bytes > stats.BudgetBytes {
		t.Errorf("store over budget: %d > %d", stats.Bytes, stats.BudgetBytes)
	}
	if stats.EvictedChunks == 0 {
		t.Fatal("no chunks evicted at a 4KiB budget after 6000 samples")
	}
	if stats.EvictedSamples == 0 || stats.Samples != 2*rounds {
		t.Errorf("samples=%d evicted=%d", stats.Samples, stats.EvictedSamples)
	}
	// Recent history must survive; the oldest must be gone.
	if _, ok := st.ValueAt("a_total", rounds); !ok {
		t.Error("newest sample evicted")
	}
	if got := st.Query("a_total", 1, 10); len(got) != 0 {
		t.Errorf("oldest window survived a full budget churn: %v", got)
	}
}

func TestIncreaseAndRate(t *testing.T) {
	st := NewStore(0)
	for r := uint64(1); r <= 20; r++ {
		st.Append("jobs_total", r, float64(r*10))
	}
	if v, ok := st.Increase("jobs_total", 5, 20); !ok || v != 50 {
		t.Errorf("increase(5@20) = %g,%v want 50", v, ok)
	}
	if v, ok := st.Rate("jobs_total", 5, 20); !ok || v != 10 {
		t.Errorf("rate(5@20) = %g,%v want 10", v, ok)
	}
	// Window wider than history: baseline falls to the earliest sample.
	if v, ok := st.Increase("jobs_total", 100, 20); !ok || v != 190 {
		t.Errorf("increase(100@20) = %g,%v want 190", v, ok)
	}
	// end=0 resolves to the newest round.
	if v, ok := st.Increase("jobs_total", 5, 0); !ok || v != 50 {
		t.Errorf("increase(5@latest) = %g,%v want 50", v, ok)
	}
	if _, ok := st.Increase("missing_total", 5, 20); ok {
		t.Error("increase of unknown series reported ok")
	}
}

// TestIncreaseCounterReset pins the reset heuristic: a counter that drops
// (shard restart) reports the post-reset value, not a negative increase.
func TestIncreaseCounterReset(t *testing.T) {
	st := NewStore(0)
	st.Append("c_total", 1, 100)
	st.Append("c_total", 2, 150)
	st.Append("c_total", 3, 7) // restart
	if v, ok := st.Increase("c_total", 2, 3); !ok || v != 7 {
		t.Errorf("increase over reset = %g,%v want 7", v, ok)
	}
}

// TestIncreaseSumsFamily pins bare-name references summing every label
// set — the shape per-shard and per-provider counters take.
func TestIncreaseSumsFamily(t *testing.T) {
	st := NewStore(0)
	for r := uint64(1); r <= 10; r++ {
		st.Append(`f_total{shard="0"}`, r, float64(r))
		st.Append(`f_total{shard="1"}`, r, float64(r*3))
	}
	if v, ok := st.Increase("f_total", 4, 10); !ok || v != 16 {
		t.Errorf("family increase = %g,%v want 16 (4 + 12)", v, ok)
	}
	// An exact key narrows to one series.
	if v, ok := st.Increase(`f_total{shard="1"}`, 4, 10); !ok || v != 12 {
		t.Errorf("exact-key increase = %g,%v want 12", v, ok)
	}
}

// scrapeHist renders an obs histogram into a store at the given round,
// going through the real exposition text — the same path the recorder
// takes — so elision and re-anchoring behave exactly as in production.
func scrapeHist(t *testing.T, st *Store, h *obs.Histogram, name string, round uint64) {
	t.Helper()
	snap := h.Snapshot()
	b := snap.AppendProm(nil, name, "Test histogram.", "", true)
	fams, err := obs.ParseProm(b)
	if err != nil {
		t.Fatalf("ParseProm: %v", err)
	}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			st.Append(Key(s.Name, s.Labels), round, s.Value)
		}
	}
}

// TestQuantileOverWindow records a histogram whose distribution shifts
// mid-history and checks windowed quantiles see only their window: early
// windows the fast mode, late windows the slow mode.
func TestQuantileOverWindow(t *testing.T) {
	st := NewStore(0)
	var h obs.Histogram
	for r := uint64(1); r <= 20; r++ {
		for i := 0; i < 50; i++ {
			if r <= 10 {
				h.Record(0.001) // fast regime
			} else {
				h.Record(1.0) // slow regime
			}
		}
		scrapeHist(t, st, &h, "lat_seconds", r)
	}
	early, ok := st.QuantileOver("lat_seconds", 0.99, 5, 10)
	if !ok || early > 0.01 {
		t.Errorf("early-window p99 = %g,%v want ~0.001", early, ok)
	}
	late, ok := st.QuantileOver("lat_seconds", 0.99, 5, 20)
	if !ok || late < 0.5 || late > 2 {
		t.Errorf("late-window p99 = %g,%v want ~1.0", late, ok)
	}
	// Whole-history window blends both regimes: p50 splits them.
	all, ok := st.QuantileOver("lat_seconds", 0.25, 20, 20)
	if !ok || all > 0.01 {
		t.Errorf("all-history p25 = %g,%v want fast regime", all, ok)
	}
	if _, ok := st.QuantileOver("lat_seconds", 0.99, 5, 0); !ok {
		t.Error("end=0 quantile not ok")
	}
}

// TestQuantileSumsShards pins that a bare family quantile merges labeled
// groups by counter sum — exact, because shards share the bucket scheme.
func TestQuantileSumsShards(t *testing.T) {
	st := NewStore(0)
	var h0, h1 obs.Histogram
	for r := uint64(1); r <= 8; r++ {
		for i := 0; i < 30; i++ {
			h0.Record(0.002)
			h1.Record(0.002)
		}
		for _, sh := range []struct {
			h     *obs.Histogram
			shard string
		}{{&h0, "0"}, {&h1, "1"}} {
			snap := sh.h.Snapshot()
			b := snap.AppendProm(nil, "lat_seconds", "Test histogram.", fmt.Sprintf("shard=%q", sh.shard), true)
			fams, err := obs.ParseProm(b)
			if err != nil {
				t.Fatal(err)
			}
			for _, fam := range fams {
				for _, s := range fam.Samples {
					st.Append(Key(s.Name, s.Labels), r, s.Value)
				}
			}
		}
	}
	v, ok := st.QuantileOver("lat_seconds", 0.5, 4, 8)
	if !ok || v <= 0 || v > 0.01 {
		t.Errorf("merged p50 = %g,%v want ~0.002", v, ok)
	}
	// Count over the window: 2 shards x 30 obs x 4 rounds.
	if inc, ok := st.Increase("lat_seconds_count", 4, 8); !ok || inc != 240 {
		t.Errorf("windowed count = %g,%v want 240", inc, ok)
	}
}

func TestFracAtMost(t *testing.T) {
	st := NewStore(0)
	var h obs.Histogram
	for r := uint64(1); r <= 10; r++ {
		for i := 0; i < 9; i++ {
			h.Record(0.001)
		}
		h.Record(10.0)
		scrapeHist(t, st, &h, "lat_seconds", r)
	}
	frac, ok := st.FracAtMost("lat_seconds", 0.1, 5, 10)
	if !ok || frac < 0.85 || frac > 0.95 {
		t.Errorf("frac<=100ms = %g,%v want ~0.9", frac, ok)
	}
	if _, ok := st.FracAtMost("lat_seconds", 0.1, 5, 0); !ok {
		t.Error("end=0 FracAtMost not ok")
	}
	if _, ok := st.FracAtMost("nope_seconds", 0.1, 5, 10); ok {
		t.Error("unknown family FracAtMost reported ok")
	}
}
