// Windowed queries over the store: increase/rate for counters and
// histogram quantiles reconstructed from recorded bucket series.
//
// A series reference is either a canonical key (name{k="v",...}, labels
// sorted) naming one series exactly, or a bare family name, which sums
// the increase across every label set of that family — the natural
// reading for per-provider or per-shard counters.
package tsdb

import (
	"math"
	"sort"
	"strconv"

	"waterwise/internal/obs"
)

// Increase returns the growth of a counter reference over the window of
// `window` rounds ending at round `end` (end == 0 means the latest
// recorded round). A bare family name sums across its label sets.
// ok is false when nothing was recorded for the reference at all.
func (st *Store) Increase(ref string, window, end uint64) (float64, bool) {
	end = st.resolveEnd(end)
	keys, err := st.refKeys(ref)
	if err != nil || len(keys) == 0 {
		return 0, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	total := 0.0
	any := false
	for _, k := range keys {
		v, ok := st.increaseLocked(k, window, end)
		if ok {
			total += v
			any = true
		}
	}
	return total, any
}

// Rate is Increase divided by the window length, in events per round.
func (st *Store) Rate(ref string, window, end uint64) (float64, bool) {
	if window == 0 {
		return 0, false
	}
	v, ok := st.Increase(ref, window, end)
	return v / float64(window), ok
}

// increaseLocked computes one series' growth over (end-window, end]. The
// baseline is the newest sample at or before end-window; when the series
// starts inside the window the earliest surviving sample stands in, so a
// recorder attached mid-run doesn't report the counter's whole lifetime
// as one window's increase.
func (st *Store) increaseLocked(key string, window, end uint64) (float64, bool) {
	cur, ok := st.valueAtLocked(key, end)
	if !ok {
		return 0, false
	}
	var start uint64
	if window < end {
		start = end - window
	}
	base, ok := st.valueAtLocked(key, start)
	if !ok {
		first, okF := st.earliestLocked(key)
		if !okF || first.Round > end {
			return 0, false
		}
		base = first
	}
	d := cur.Value - base.Value
	if d < 0 {
		// Counter reset (e.g. a shard restarted): the post-reset value is
		// the best available lower bound on the true increase.
		d = cur.Value
	}
	return d, true
}

// resolveEnd maps end==0 to the newest round recorded anywhere.
func (st *Store) resolveEnd(end uint64) uint64 {
	if end != 0 {
		return end
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, sr := range st.series {
		if n := len(sr.chunks); n > 0 && sr.chunks[n-1].maxT > end {
			end = sr.chunks[n-1].maxT
		}
	}
	return end
}

// refKeys expands a series reference: an exact key (possibly with labels)
// if that series exists, else every series of the bare family name.
func (st *Store) refKeys(ref string) ([]string, error) {
	if _, _, err := SplitKey(ref); err != nil {
		return nil, err
	}
	st.mu.Lock()
	_, exact := st.series[ref]
	st.mu.Unlock()
	if exact {
		return []string{ref}, nil
	}
	return st.KeysOf(nameOf(ref)), nil
}

// QuantileOver reconstructs a histogram family's distribution over the
// window of `window` rounds ending at `end` and returns the q-quantile in
// the histogram's native unit (seconds for latency families). The ref
// names the family without the _bucket suffix; labels in the ref narrow
// the match (le is always ignored), so a bare fleet family sums its
// shards exactly — the bucket scheme is shared, so counter sums are the
// true merged histogram.
//
// ok is false when the window holds no observations.
func (st *Store) QuantileOver(ref string, q float64, window, end uint64) (float64, bool) {
	end = st.resolveEnd(end)
	name, want, err := SplitKey(ref)
	if err != nil {
		return 0, false
	}
	var start uint64
	if window < end {
		start = end - window
	}
	les, startCums, okS := st.histAt(name, want, start, true)
	_, endCums, okE := st.histAt(name, want, end, false)
	if !okE {
		return 0, false
	}
	cums := make([]uint64, len(les))
	var run float64
	for i := range les {
		d := endCums[i]
		if okS && i < len(startCums) {
			d -= startCums[i]
		}
		if d < 0 {
			d = 0
		}
		// Enforce cumulative monotonicity: carry-down reconstruction can
		// momentarily invert adjacent edges when a bucket series first
		// appears mid-window.
		if d < run {
			d = run
		}
		run = d
		cums[i] = uint64(math.Round(d))
	}
	if len(cums) == 0 || cums[len(cums)-1] == 0 {
		return 0, false
	}
	return obs.QuantileFromBuckets(les, cums, q), true
}

// histAt reconstructs the cumulative-in-le histogram of one family at
// round T: for every label group matching `want` (le excluded), walk its
// bucket edges in ascending le carrying the last observed cumulative
// value downward — correct because the exposition elides a bucket line
// only while its own count is zero — and sum groups edge-by-edge over the
// union of all edges ever recorded. baseline=true applies the same
// earliest-sample fallback as increaseLocked for series born after T.
func (st *Store) histAt(name string, want map[string]string, T uint64, baseline bool) (les []float64, cums []float64, ok bool) {
	bucket := name + "_bucket"
	keys := st.KeysOf(bucket)
	st.mu.Lock()
	defer st.mu.Unlock()

	// Group keys by their label identity minus le.
	type edge struct {
		le  float64
		key string
	}
	groups := make(map[string][]edge)
	leSet := make(map[float64]bool)
	for _, k := range keys {
		_, labels, err := SplitKey(k)
		if err != nil {
			continue
		}
		leStr, has := labels["le"]
		if !has {
			continue
		}
		match := true
		for wk, wv := range want {
			if labels[wk] != wv {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		le, err := parseLEValue(leStr)
		if err != nil {
			continue
		}
		delete(labels, "le")
		gk := Key(bucket, labels)
		groups[gk] = append(groups[gk], edge{le: le, key: k})
		leSet[le] = true
	}
	if len(leSet) == 0 {
		return nil, nil, false
	}
	les = make([]float64, 0, len(leSet))
	for le := range leSet {
		les = append(les, le)
	}
	sort.Float64s(les)
	cums = make([]float64, len(les))

	gks := make([]string, 0, len(groups))
	for gk := range groups {
		gks = append(gks, gk)
	}
	sort.Strings(gks)
	for _, gk := range gks {
		edges := groups[gk]
		sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
		run := 0.0
		ei := 0
		for i, le := range les {
			for ei < len(edges) && edges[ei].le <= le {
				v, okV := st.valueAtLocked(edges[ei].key, T)
				if !okV && baseline {
					if first, okF := st.earliestLocked(edges[ei].key); okF {
						// Born after T: its pre-window count is zero only if
						// the series is genuinely new; the earliest sample is
						// the tightest baseline we have.
						v, okV = first, true
					}
				}
				if okV && v.Value > run {
					run = v.Value
					ok = true
				}
				ei++
			}
			cums[i] += run
		}
	}
	return les, cums, ok
}

// FracAtMost returns the fraction of a histogram family's windowed
// observations at or below threshold (same unit as the bucket edges),
// linearly interpolating inside the straddling bucket. ok is false when
// the window holds no observations.
func (st *Store) FracAtMost(ref string, threshold float64, window, end uint64) (float64, bool) {
	end = st.resolveEnd(end)
	name, want, err := SplitKey(ref)
	if err != nil {
		return 0, false
	}
	var start uint64
	if window < end {
		start = end - window
	}
	les, startCums, okS := st.histAt(name, want, start, true)
	_, endCums, okE := st.histAt(name, want, end, false)
	if !okE {
		return 0, false
	}
	deltas := make([]float64, len(les))
	run := 0.0
	for i := range les {
		d := endCums[i]
		if okS && i < len(startCums) {
			d -= startCums[i]
		}
		if d < run {
			d = run
		}
		run = d
		deltas[i] = d
	}
	if len(deltas) == 0 {
		return 0, false
	}
	total := deltas[len(deltas)-1]
	if total <= 0 {
		return 0, false
	}
	var below float64
	for i, le := range les {
		if le <= threshold {
			below = deltas[i]
			continue
		}
		prev := 0.0
		prevLE := 0.0
		if i > 0 {
			prev = deltas[i-1]
			prevLE = les[i-1]
		}
		if math.IsInf(le, 1) || le <= prevLE {
			below = prev
		} else {
			frac := (threshold - prevLE) / (le - prevLE)
			if frac < 0 {
				frac = 0
			}
			below = prev + (deltas[i]-prev)*frac
		}
		break
	}
	if below > total {
		below = total
	}
	return below / total, true
}

// parseLEValue parses a bucket edge, accepting +Inf.
func parseLEValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// LastRound returns the newest round recorded anywhere in the store
// (0 when empty).
func (st *Store) LastRound() uint64 { return st.resolveEnd(0) }
