package tsdb

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"waterwise/internal/obs"
)

// fakeExposition renders a minimal valid exposition with two counters the
// tests steer directly.
func fakeExposition(good, bad uint64) []byte {
	return []byte(fmt.Sprintf(
		"# HELP req_good_total Successful requests.\n# TYPE req_good_total counter\nreq_good_total %d\n"+
			"# HELP req_bad_total Failed requests.\n# TYPE req_bad_total counter\nreq_bad_total %d\n",
		good, bad))
}

func TestObjectiveValidate(t *testing.T) {
	bad := []Objective{
		{},
		{Name: "x", Target: 0},
		{Name: "x", Target: 1.5, Bad: "b", Total: "t"},
		{Name: "x", Target: 0.9},                                    // no form
		{Name: "x", Target: 0.9, Bad: "b"},                          // ratio missing total/good
		{Name: "x", Target: 0.9, Family: "f"},                       // latency missing threshold
		{Name: "x", Target: 0.9, Bad: "b", Total: "t", Family: "f"}, // both forms
		{Name: "x", Target: 0.9, Bad: "b", Total: "t", Rules: []BurnRule{{Name: "r", Long: 1, Short: 5, Factor: 2}}}, // short > long
		{Name: "x", Target: 0.9, Bad: "b", Total: "t", Rules: []BurnRule{{Name: "r", Long: 5, Short: 1, Factor: 0}}}, // factor
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	good := Objective{Name: "avail", Target: 0.99, Bad: "b", Total: "t"}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected valid objective: %v", err)
	}
	if len(good.Rules) != 2 || good.Rules[0].Name != "fast" {
		t.Errorf("defaulted rules = %+v", good.Rules)
	}
}

// TestBurnRateFireAndClear drives a sync recorder through healthy rounds,
// an error storm, and recovery, and checks the multi-window alert fires
// during the storm and clears after it — and that the pre-storm blip of a
// single bad round does NOT fire (the long window protects against it).
func TestBurnRateFireAndClear(t *testing.T) {
	var good, bad atomic.Uint64
	var logs []string
	rec, err := New(Config{
		Gather: func() []byte { return fakeExposition(good.Load(), bad.Load()) },
		Sync:   true,
		Objectives: []Objective{{
			Name:   "availability",
			Target: 0.9, // 10% budget: errFrac 0.5 = burn 5
			Bad:    "req_bad_total",
			Total:  "", Good: "req_good_total",
			Rules: []BurnRule{{Name: "fast", Long: 4, Short: 1, Factor: 3}},
		}},
		Logf: func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	round := uint64(0)
	step := func(g, b uint64) {
		round++
		good.Add(g)
		bad.Add(b)
		rec.Observe(round)
	}
	// Healthy baseline.
	for i := 0; i < 6; i++ {
		step(100, 0)
	}
	// One bad blip: short window burns but the long window holds it back.
	step(40, 60)
	if a := rec.Alerts(); a[0].Firing {
		t.Fatalf("alert fired on a single-round blip: %+v", a[0])
	}
	step(100, 0) // recover
	// Sustained storm: every request fails.
	var stormStart uint64
	for i := 0; i < 6; i++ {
		step(0, 100)
		if a := rec.Alerts(); a[0].Firing && stormStart == 0 {
			stormStart = round
		}
	}
	alerts := rec.Alerts()
	if len(alerts) != 1 || !alerts[0].Firing {
		t.Fatalf("alert not firing after sustained storm: %+v", alerts)
	}
	if stormStart == 0 || alerts[0].FiredAtRound != stormStart {
		t.Errorf("fired_at=%d, first observed firing at %d", alerts[0].FiredAtRound, stormStart)
	}
	// Recovery: healthy rounds clear the short window.
	for i := 0; i < 3; i++ {
		step(100, 0)
	}
	alerts = rec.Alerts()
	if alerts[0].Firing {
		t.Fatalf("alert still firing after recovery: %+v", alerts[0])
	}
	if alerts[0].ClearedAtRound <= alerts[0].FiredAtRound || alerts[0].Fires != 1 {
		t.Errorf("transitions: %+v", alerts[0])
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "slo alert firing") || !strings.Contains(joined, "slo alert cleared") {
		t.Errorf("transition logs missing:\n%s", joined)
	}
}

// TestNoDataHoldsState pins the no-data rule: when a window holds zero
// events (a feed in backoff fetches nothing), the alert holds its state
// instead of clearing on silence.
func TestNoDataHoldsState(t *testing.T) {
	var good, bad atomic.Uint64
	rec, err := New(Config{
		Gather: func() []byte { return fakeExposition(good.Load(), bad.Load()) },
		Sync:   true,
		Objectives: []Objective{{
			Name: "avail", Target: 0.9,
			Bad: "req_bad_total", Good: "req_good_total",
			Rules: []BurnRule{{Name: "fast", Long: 2, Short: 1, Factor: 2}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	round := uint64(0)
	step := func(g, b uint64) {
		round++
		good.Add(g)
		bad.Add(b)
		rec.Observe(round)
	}
	step(10, 0)
	step(0, 10)
	step(0, 10)
	if a := rec.Alerts(); !a[0].Firing {
		t.Fatalf("alert should fire: %+v", a[0])
	}
	// Silence: no events at all for many rounds. State must hold.
	for i := 0; i < 5; i++ {
		step(0, 0)
	}
	if a := rec.Alerts(); !a[0].Firing {
		t.Errorf("alert cleared on no-data silence: %+v", a[0])
	}
	// Real recovery clears it.
	step(50, 0)
	if a := rec.Alerts(); a[0].Firing {
		t.Errorf("alert held after real recovery: %+v", a[0])
	}
}

// TestLatencyObjective drives a latency-form objective from a real
// histogram rendered through the exposition.
func TestLatencyObjective(t *testing.T) {
	var h obs.Histogram
	gather := func() []byte {
		snap := h.Snapshot()
		return snap.AppendProm(nil, "lat_seconds", "Latency.", "", true)
	}
	rec, err := New(Config{
		Gather: gather,
		Sync:   true,
		Objectives: []Objective{{
			Name: "latency", Target: 0.9,
			Family: "lat_seconds", ThresholdMs: 100,
			Rules: []BurnRule{{Name: "fast", Long: 3, Short: 1, Factor: 3}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	round := uint64(0)
	step := func(v float64, n int) {
		round++
		for i := 0; i < n; i++ {
			h.Record(v)
		}
		rec.Observe(round)
	}
	for i := 0; i < 4; i++ {
		step(0.001, 50)
	}
	if a := rec.Alerts(); a[0].Firing {
		t.Fatalf("latency alert fired while fast: %+v", a[0])
	}
	for i := 0; i < 4; i++ {
		step(5.0, 50) // every observation blows the 100ms threshold
	}
	if a := rec.Alerts(); !a[0].Firing {
		t.Fatalf("latency alert did not fire while slow: %+v", a[0])
	}
	for i := 0; i < 2; i++ {
		step(0.001, 50)
	}
	if a := rec.Alerts(); a[0].Firing {
		t.Errorf("latency alert did not clear after recovery: %+v", a[0])
	}
}

// TestRecorderAsyncCoalesce floods an async recorder and checks it
// coalesces under pressure (bounded overhead) while still recording the
// newest round after a drain.
func TestRecorderAsyncCoalesce(t *testing.T) {
	var good atomic.Uint64
	rec, err := New(Config{
		Gather: func() []byte { return fakeExposition(good.Load(), 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := uint64(1); r <= 500; r++ {
		good.Add(1)
		rec.Observe(r)
	}
	rec.Close() // drains the scraper
	st := rec.Stats()
	if st.Scrapes == 0 {
		t.Fatal("async recorder never scraped")
	}
	if st.LastRound != 500 && st.CoalescedRounds == 0 {
		// Either the drain caught round 500 or some rounds were coalesced;
		// both being false means Observe lost rounds silently.
		t.Errorf("last=%d coalesced=%d scrapes=%d", st.LastRound, st.CoalescedRounds, st.Scrapes)
	}
	if _, ok := rec.Increase("req_good_total", 10, 0); !ok {
		t.Error("no recorded data after async run")
	}
}

// TestRecorderMetricsBlock checks the recorder's own exposition block
// parses and lints cleanly with the production prefix.
func TestRecorderMetricsBlock(t *testing.T) {
	rec, err := New(Config{Gather: func() []byte { return fakeExposition(1, 0) }, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rec.Observe(1)
	b := rec.AppendMetrics(nil, "waterwise_")
	if err := obs.LintProm(b); err != nil {
		t.Fatalf("recorder metrics block fails lint: %v\n%s", err, b)
	}
	fams, err := obs.ParseProm(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"waterwise_tsdb_series", "waterwise_tsdb_scrapes_total", "waterwise_alerts_firing", "waterwise_tsdb_evicted_chunks_total"} {
		if fams[want] == nil {
			t.Errorf("family %s missing from recorder block", want)
		}
	}
}

// TestRecorderScrapeEvery pins the stride: ScrapeEvery=3 scrapes roughly
// every third round, never more.
func TestRecorderScrapeEvery(t *testing.T) {
	rec, err := New(Config{
		Gather:      func() []byte { return fakeExposition(1, 0) },
		Sync:        true,
		ScrapeEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	for r := uint64(1); r <= 30; r++ {
		rec.Observe(r)
	}
	if st := rec.Stats(); st.Scrapes != 10 {
		t.Errorf("scrapes = %d with stride 3 over 30 rounds, want 10", st.Scrapes)
	}
}
