// The SLO engine: declarative objectives evaluated on every scrape with
// multi-window burn-rate rules, the standard SRE construction — an alert
// fires when both a long and a short window burn the error budget faster
// than a factor, so sustained burns page quickly while blips that the
// short window has already recovered from do not; it clears as soon as
// the short window is healthy again.
package tsdb

import (
	"fmt"
	"sort"
)

// BurnRule is one (long, short) burn-rate window pair. Windows are in
// rounds — the recorder's clock — so rules behave identically under
// accelerated and wall-paced runs.
type BurnRule struct {
	// Name labels the rule in alerts ("fast", "slow").
	Name string `json:"name"`
	// Long and Short are the two window lengths in rounds; both must burn
	// at >= Factor for the alert to fire.
	Long  uint64 `json:"long"`
	Short uint64 `json:"short"`
	// Factor is the burn-rate threshold: 1.0 burns the whole error budget
	// exactly over the SLO period; the fast rule uses a high factor on
	// short windows, the slow rule a low factor on long ones.
	Factor float64 `json:"factor"`
}

// DefaultRules is the canonical multi-window pair scaled to rounds: a
// fast 5-round/1-round rule catching sharp burns and a slow
// 60-round/5-round rule catching sustained slow burns.
func DefaultRules() []BurnRule {
	return []BurnRule{
		{Name: "fast", Long: 5, Short: 1, Factor: 14.4},
		{Name: "slow", Long: 60, Short: 5, Factor: 6},
	}
}

// Objective is one declarative SLO. Exactly one of the two forms must be
// set:
//
//   - ratio: Bad (and Total or Good) name counter references; the error
//     fraction of a window is increase(Bad)/increase(Total), with
//     Total defaulting to Bad+Good when Good is given instead.
//   - latency: Family names a histogram (without _bucket) and
//     ThresholdMs the success bound; the error fraction is the windowed
//     fraction of observations above the threshold.
type Objective struct {
	// Name identifies the objective in alerts and queries.
	Name string `json:"name"`
	// Target is the SLO target in (0,1), e.g. 0.999; the error budget is
	// 1-Target.
	Target float64 `json:"target"`

	// Bad / Total / Good are counter references for ratio objectives.
	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`
	Good  string `json:"good,omitempty"`

	// Family / ThresholdMs define latency objectives. Bucket edges are in
	// seconds; ThresholdMs is converted.
	Family      string  `json:"family,omitempty"`
	ThresholdMs float64 `json:"threshold_ms,omitempty"`

	// Rules defaults to DefaultRules().
	Rules []BurnRule `json:"rules,omitempty"`
}

// Validate checks the objective and fills defaulted rules.
func (o *Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("tsdb: objective needs a name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("tsdb: objective %q: target must be in (0,1), got %g", o.Name, o.Target)
	}
	ratio := o.Bad != ""
	latency := o.Family != ""
	switch {
	case ratio && latency:
		return fmt.Errorf("tsdb: objective %q: set bad/total or family/threshold_ms, not both", o.Name)
	case ratio:
		if o.Total == "" && o.Good == "" {
			return fmt.Errorf("tsdb: objective %q: ratio form needs total or good", o.Name)
		}
	case latency:
		if o.ThresholdMs <= 0 {
			return fmt.Errorf("tsdb: objective %q: latency form needs threshold_ms > 0", o.Name)
		}
	default:
		return fmt.Errorf("tsdb: objective %q: set bad/total (ratio) or family/threshold_ms (latency)", o.Name)
	}
	if len(o.Rules) == 0 {
		o.Rules = DefaultRules()
	}
	for i, r := range o.Rules {
		if r.Name == "" {
			return fmt.Errorf("tsdb: objective %q: rule %d needs a name", o.Name, i)
		}
		if r.Long == 0 || r.Short == 0 || r.Short > r.Long {
			return fmt.Errorf("tsdb: objective %q rule %q: need 0 < short <= long", o.Name, r.Name)
		}
		if r.Factor <= 0 {
			return fmt.Errorf("tsdb: objective %q rule %q: factor must be > 0", o.Name, r.Name)
		}
	}
	return nil
}

// Alert is the live state of one (objective, rule) pair.
type Alert struct {
	Objective string  `json:"objective"`
	Rule      string  `json:"rule"`
	Factor    float64 `json:"factor"`
	// Firing is the current state.
	Firing bool `json:"firing"`
	// FiredAtRound / ClearedAtRound are the most recent transitions
	// (0 = never).
	FiredAtRound   uint64 `json:"fired_at_round,omitempty"`
	ClearedAtRound uint64 `json:"cleared_at_round,omitempty"`
	// Fires counts fire transitions over the recorder's lifetime.
	Fires uint64 `json:"fires"`
	// BurnLong / BurnShort are the burn rates at the last evaluation that
	// had data.
	BurnLong  float64 `json:"burn_long"`
	BurnShort float64 `json:"burn_short"`
}

// sloEngine evaluates objectives against the store on every scrape.
type sloEngine struct {
	objectives []Objective
	alerts     []Alert // parallel to objectives x rules, fixed order
	logf       func(format string, args ...any)
}

func newSLOEngine(objectives []Objective, logf func(string, ...any)) (*sloEngine, error) {
	e := &sloEngine{logf: logf}
	for i := range objectives {
		o := objectives[i]
		if err := o.Validate(); err != nil {
			return nil, err
		}
		e.objectives = append(e.objectives, o)
		for _, r := range o.Rules {
			e.alerts = append(e.alerts, Alert{Objective: o.Name, Rule: r.Name, Factor: r.Factor})
		}
	}
	return e, nil
}

// errorFraction computes an objective's error fraction over the window
// ending at round. ok=false means the window held no events — the caller
// holds the previous alert state rather than treating silence as health
// (during a feed-backoff gap zero fetches is not zero errors).
func (e *sloEngine) errorFraction(st *Store, o *Objective, window, round uint64) (float64, bool) {
	if o.Family != "" {
		frac, ok := st.FracAtMost(o.Family, o.ThresholdMs/1000.0, window, round)
		if !ok {
			return 0, false
		}
		return 1 - frac, true
	}
	bad, okB := st.Increase(o.Bad, window, round)
	var total float64
	var okT bool
	if o.Total != "" {
		total, okT = st.Increase(o.Total, window, round)
	} else {
		good, okG := st.Increase(o.Good, window, round)
		total, okT = bad+good, okB || okG
	}
	if !okT || total <= 0 {
		return 0, false
	}
	if !okB {
		bad = 0
	}
	frac := bad / total
	if frac > 1 {
		frac = 1
	}
	return frac, true
}

// evaluate recomputes every (objective, rule) burn rate at round and
// applies fire/clear transitions, logging each one.
func (e *sloEngine) evaluate(st *Store, round uint64) {
	ai := 0
	for i := range e.objectives {
		o := &e.objectives[i]
		budget := 1 - o.Target
		for _, r := range o.Rules {
			a := &e.alerts[ai]
			ai++
			fracL, okL := e.errorFraction(st, o, r.Long, round)
			fracS, okS := e.errorFraction(st, o, r.Short, round)
			if !okL || !okS {
				continue // no data: hold state
			}
			a.BurnLong = fracL / budget
			a.BurnShort = fracS / budget
			if !a.Firing && a.BurnLong >= r.Factor && a.BurnShort >= r.Factor {
				a.Firing = true
				a.FiredAtRound = round
				a.Fires++
				if e.logf != nil {
					e.logf("slo alert firing objective=%s rule=%s round=%d burn_long=%.2f burn_short=%.2f factor=%.2f",
						o.Name, r.Name, round, a.BurnLong, a.BurnShort, r.Factor)
				}
			} else if a.Firing && a.BurnShort < r.Factor {
				a.Firing = false
				a.ClearedAtRound = round
				if e.logf != nil {
					e.logf("slo alert cleared objective=%s rule=%s round=%d burn_short=%.2f factor=%.2f",
						o.Name, r.Name, round, a.BurnShort, r.Factor)
				}
			}
		}
	}
}

// snapshot copies the alert states, sorted by objective then rule.
func (e *sloEngine) snapshot() []Alert {
	out := append([]Alert(nil), e.alerts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Objective != out[j].Objective {
			return out[i].Objective < out[j].Objective
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// firing counts currently-firing alerts.
func (e *sloEngine) firing() int {
	n := 0
	for i := range e.alerts {
		if e.alerts[i].Firing {
			n++
		}
	}
	return n
}
