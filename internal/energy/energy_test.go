package energy

import (
	"math"
	"testing"
	"testing/quick"

	"waterwise/internal/stats"
)

func TestFig1Shape(t *testing.T) {
	// The paper's Fig. 1 anchors: coal CI ~62x hydro CI; hydro EWIF ~11x
	// coal EWIF; fossil sources carbon-worse than renewables on average.
	hydro, coal := Table[Hydro], Table[Coal]
	if r := float64(coal.CI) / float64(hydro.CI); r < 50 || r > 75 {
		t.Errorf("coal/hydro CI ratio = %.1f, want ~62", r)
	}
	if r := float64(hydro.EWIF) / float64(coal.EWIF); r < 9 || r > 13 {
		t.Errorf("hydro/coal EWIF ratio = %.1f, want ~11", r)
	}
	for _, s := range []Source{Gas, Oil, Coal} {
		if !s.IsFossil() {
			t.Errorf("%v should be fossil", s)
		}
		if Table[s].CI < 400 {
			t.Errorf("fossil %v CI = %v, suspiciously low", s, Table[s].CI)
		}
	}
	for _, s := range []Source{Nuclear, Wind, Hydro, Geothermal, Solar} {
		if s.IsFossil() {
			t.Errorf("%v should not be fossil", s)
		}
		if Table[s].CI > 100 {
			t.Errorf("clean %v CI = %v, suspiciously high", s, Table[s].CI)
		}
	}
}

func TestAllSourcesComplete(t *testing.T) {
	srcs := AllSources()
	if len(srcs) != 9 {
		t.Fatalf("want 9 sources, got %d", len(srcs))
	}
	seen := map[string]bool{}
	for _, s := range srcs {
		name := s.String()
		if seen[name] {
			t.Errorf("duplicate source name %q", name)
		}
		seen[name] = true
		if Table[s] == (Factors{}) {
			t.Errorf("source %v missing from Table", s)
		}
		if WRITable[s] == (Factors{}) {
			t.Errorf("source %v missing from WRITable", s)
		}
	}
	if Source(99).String() == "" {
		t.Error("unknown source should stringify to something")
	}
}

func TestWRITableDiffersOnlyInWater(t *testing.T) {
	for _, s := range AllSources() {
		if Table[s].CI != WRITable[s].CI {
			t.Errorf("%v: WRI table changes carbon intensity (%v vs %v)", s, Table[s].CI, WRITable[s].CI)
		}
		if Table[s].EWIF == WRITable[s].EWIF {
			t.Errorf("%v: WRI table should differ in EWIF", s)
		}
	}
}

func TestMixNormalize(t *testing.T) {
	m := Mix{Hydro: 2, Gas: 2}
	n := m.Normalize()
	if math.Abs(n.Total()-1) > 1e-12 {
		t.Errorf("normalized total = %g, want 1", n.Total())
	}
	if math.Abs(n[Hydro]-0.5) > 1e-12 {
		t.Errorf("hydro share = %g, want 0.5", n[Hydro])
	}
	// Negative and zero entries are dropped.
	m2 := Mix{Hydro: -1, Gas: 0, Coal: 3}
	n2 := m2.Normalize()
	if math.Abs(n2.Total()-1) > 1e-12 || math.Abs(n2[Coal]-1) > 1e-12 || n2[Hydro] != 0 {
		t.Errorf("normalize with junk entries = %v, want {coal:1}", n2)
	}
	// All-zero mix.
	if n3 := (Mix{Gas: 0}).Normalize(); n3.Total() != 0 {
		t.Errorf("normalize of zero mix = %v, want empty", n3)
	}
}

func TestMixIntensities(t *testing.T) {
	m := Mix{Hydro: 0.5, Coal: 0.5}
	ci := m.CarbonIntensity(Table)
	want := 0.5*float64(Table[Hydro].CI) + 0.5*float64(Table[Coal].CI)
	if math.Abs(float64(ci)-want) > 1e-9 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
	ew := m.EWIF(Table)
	wantE := 0.5*float64(Table[Hydro].EWIF) + 0.5*float64(Table[Coal].EWIF)
	if math.Abs(float64(ew)-wantE) > 1e-9 {
		t.Errorf("EWIF = %v, want %v", ew, wantE)
	}
	if rs := m.RenewableShare(); math.Abs(rs-0.5) > 1e-12 {
		t.Errorf("renewable share = %g, want 0.5", rs)
	}
}

func TestMixCloneIndependent(t *testing.T) {
	m := Mix{Hydro: 0.5, Gas: 0.5}
	c := m.Clone()
	c[Hydro] = 0.9
	if m[Hydro] != 0.5 {
		t.Error("clone mutation leaked into original")
	}
}

func TestMixStringStable(t *testing.T) {
	m := Mix{Gas: 0.25, Hydro: 0.75}
	a, b := m.String(), m.String()
	if a != b {
		t.Errorf("String not deterministic: %q vs %q", a, b)
	}
	if a != "{hydro:0.75 gas:0.25}" {
		t.Errorf("String = %q, want {hydro:0.75 gas:0.25}", a)
	}
}

// Property: normalized mixes always sum to 1 and the mix intensities stay
// within the [min, max] of the participating sources.
func TestQuickMixProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		m := Mix{}
		for _, s := range AllSources() {
			if rng.Float64() < 0.6 {
				m[s] = rng.Float64() * 5
			}
		}
		n := m.Normalize()
		if n.Total() == 0 {
			return true // zero-total mixes normalize to the empty mix
		}
		if math.Abs(n.Total()-1) > 1e-9 {
			t.Logf("seed %d: total %g", seed, n.Total())
			return false
		}
		minCI, maxCI := math.Inf(1), math.Inf(-1)
		for s, share := range n {
			if share < 0 {
				t.Logf("seed %d: negative share", seed)
				return false
			}
			if share == 0 {
				continue // not a participating source
			}
			ci := float64(Table[Source(s)].CI)
			if ci < minCI {
				minCI = ci
			}
			if ci > maxCI {
				maxCI = ci
			}
		}
		got := float64(n.CarbonIntensity(Table))
		if got < minCI-1e-9 || got > maxCI+1e-9 {
			t.Logf("seed %d: CI %g outside [%g,%g]", seed, got, minCI, maxCI)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
