// Package energy models electricity generation sources: their carbon
// intensity and their Energy Water Intensity Factor (EWIF), reproducing the
// characterization in Fig. 1 of the WaterWise paper. It also provides mix
// arithmetic: given the share of each source in a regional grid, it derives
// the grid's effective carbon intensity and EWIF.
//
// Two factor tables are provided. Table mirrors the Electricity Maps +
// Macknick et al. data the paper uses by default; WRITable is an alternative
// set with systematically different per-source water factors standing in for
// the World Resources Institute dataset used in the paper's Fig. 6
// robustness study.
package energy

import (
	"fmt"

	"waterwise/internal/units"
)

// Source is an electricity generation technology.
type Source int

// The nine sources characterized in Fig. 1, ordered as in the paper
// (renewables first, then fossil fuels).
const (
	Nuclear Source = iota
	Wind
	Hydro
	Geothermal
	Solar
	Biomass
	Gas
	Oil
	Coal
	numSources
)

// AllSources lists every source in Fig. 1 order.
func AllSources() []Source {
	out := make([]Source, numSources)
	for i := range out {
		out[i] = Source(i)
	}
	return out
}

func (s Source) String() string {
	switch s {
	case Nuclear:
		return "nuclear"
	case Wind:
		return "wind"
	case Hydro:
		return "hydro"
	case Geothermal:
		return "geothermal"
	case Solar:
		return "solar"
	case Biomass:
		return "biomass"
	case Gas:
		return "gas"
	case Oil:
		return "oil"
	case Coal:
		return "coal"
	}
	return fmt.Sprintf("source(%d)", int(s))
}

// IsFossil reports whether the source is a fossil fuel (gas, oil, coal).
func (s Source) IsFossil() bool { return s == Gas || s == Oil || s == Coal }

// Factors holds the sustainability factors of one energy source.
type Factors struct {
	// CI is the life-cycle carbon intensity of generation (gCO2/kWh).
	CI units.CarbonIntensity
	// EWIF is the water consumed per unit of electricity (L/kWh).
	EWIF units.EWIF
}

// FactorTable maps each source to its factors. Different tables represent
// different external datasets. It is a dense array indexed by Source: mix
// arithmetic runs in every candidate-scoring loop of the scheduler, and
// array indexing keeps it off the map-lookup hot path.
type FactorTable [numSources]Factors

// Table is the default factor table, following IPCC life-cycle carbon
// intensities [9] and Macknick et al. operational water consumption factors
// [35, 36], matching the paper's Fig. 1: coal's carbon intensity is ~62x
// hydro's, while hydro's EWIF is ~11x coal's.
var Table = FactorTable{
	Nuclear:    {CI: 12, EWIF: 2.3},
	Wind:       {CI: 11, EWIF: 0.2},
	Hydro:      {CI: 17, EWIF: 17.0},
	Geothermal: {CI: 38, EWIF: 1.5},
	Solar:      {CI: 45, EWIF: 1.0},
	Biomass:    {CI: 230, EWIF: 14.0},
	Gas:        {CI: 490, EWIF: 1.0},
	Oil:        {CI: 720, EWIF: 1.7},
	Coal:       {CI: 1050, EWIF: 1.55},
}

// WRITable stands in for the World Resources Institute water-accounting
// guidance [45]: carbon intensities are unchanged, but per-source water
// factors differ systematically (hydro reservoirs attributed less
// evaporation, thermal plants more cooling water), exercising the paper's
// Fig. 6 sensitivity to the choice of water dataset.
var WRITable = FactorTable{
	Nuclear:    {CI: 12, EWIF: 2.7},
	Wind:       {CI: 11, EWIF: 0.1},
	Hydro:      {CI: 17, EWIF: 11.5},
	Geothermal: {CI: 38, EWIF: 2.0},
	Solar:      {CI: 45, EWIF: 0.8},
	Biomass:    {CI: 230, EWIF: 16.5},
	Gas:        {CI: 490, EWIF: 1.3},
	Oil:        {CI: 720, EWIF: 2.1},
	Coal:       {CI: 1050, EWIF: 2.0},
}

// Mix is the share of each source in a grid's generation. Shares are
// non-negative and sum to 1 for a normalized mix. It is a dense array
// indexed by Source (absent sources simply have share 0), so per-snapshot
// CI/EWIF derivation is pure arithmetic with no map traffic.
type Mix [numSources]float64

// All mix arithmetic iterates sources in declaration order rather than map
// order: floating-point sums are order-dependent, and fixed order keeps
// every derived series bit-for-bit reproducible from its seed.

// Normalize returns a copy of the mix scaled so shares sum to 1. A mix with
// zero total yields an empty mix.
func (m Mix) Normalize() Mix {
	total := 0.0
	for s := Source(0); s < numSources; s++ {
		if v := m[s]; v > 0 {
			total += v
		}
	}
	var out Mix
	if total == 0 {
		return out
	}
	for s := Source(0); s < numSources; s++ {
		if v := m[s]; v > 0 {
			out[s] = v / total
		}
	}
	return out
}

// Total returns the sum of all shares.
func (m Mix) Total() float64 {
	t := 0.0
	for s := Source(0); s < numSources; s++ {
		t += m[s]
	}
	return t
}

// CarbonIntensity returns the mix's effective carbon intensity under the
// given factor table: the share-weighted average of source intensities.
func (m Mix) CarbonIntensity(tbl FactorTable) units.CarbonIntensity {
	ci := 0.0
	for s := Source(0); s < numSources; s++ {
		if share := m[s]; share != 0 {
			ci += share * float64(tbl[s].CI)
		}
	}
	return units.CarbonIntensity(ci)
}

// EWIF returns the mix's effective energy-water intensity factor under the
// given factor table: the share-weighted average of source EWIFs.
func (m Mix) EWIF(tbl FactorTable) units.EWIF {
	w := 0.0
	for s := Source(0); s < numSources; s++ {
		if share := m[s]; share != 0 {
			w += share * float64(tbl[s].EWIF)
		}
	}
	return units.EWIF(w)
}

// RenewableShare returns the summed share of non-fossil sources.
func (m Mix) RenewableShare() float64 {
	r := 0.0
	for s := Source(0); s < numSources; s++ {
		if !s.IsFossil() {
			r += m[s]
		}
	}
	return r
}

// Clone returns a copy of the mix (a value copy, since Mix is an array).
func (m Mix) Clone() Mix { return m }

// String renders the nonzero shares in source order for stable output.
func (m Mix) String() string {
	out := "{"
	first := true
	for s := Source(0); s < numSources; s++ {
		if m[s] == 0 {
			continue
		}
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%s:%.2f", s, m[s])
	}
	return out + "}"
}
