package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
	"waterwise/internal/server"
)

// sameMergedStream asserts two merged decision streams are identical —
// global seq, shard identity, shard-local seq, job, placement, times,
// footprints — excluding DecidedWall (a wall-clock stamp that
// legitimately differs between processes).
func sameMergedStream(t *testing.T, got, want []Decision) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged stream length %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.Shard != w.Shard || g.ShardSeq != w.ShardSeq ||
			g.JobID != w.JobID || g.Region != w.Region ||
			!g.Round.Equal(w.Round) || !g.Start.Equal(w.Start) || !g.Finish.Equal(w.Finish) ||
			g.CarbonG != w.CarbonG || g.WaterL != w.WaterL {
			t.Fatalf("merged decision %d diverged:\n  got  %+v\n  want %+v", i, g, w)
		}
	}
}

// throttledScheduler delays each round by a fixed wall-clock amount and
// delegates the decisions unchanged — it stretches an accelerated run in
// real time without touching its output.
type throttledScheduler struct {
	cluster.Scheduler
	delay time.Duration
}

func (s throttledScheduler) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	time.Sleep(s.delay)
	return s.Scheduler.Schedule(ctx)
}

func throttledFactory(t testing.TB, delay time.Duration) func(int, []region.ID) (cluster.Scheduler, error) {
	inner := coreFactory(t)
	return func(shard int, regions []region.ID) (cluster.Scheduler, error) {
		sched, err := inner(shard, regions)
		if err != nil {
			return nil, err
		}
		return throttledScheduler{Scheduler: sched, delay: delay}, nil
	}
}

// TestFleetCrashRestartEquivalence extends the sharding acceptance test
// with a mid-run crash: SIGKILL one shard of a running fleet (KillShard
// drops the shard's unsynced WAL buffer, exactly what the kernel does to
// a killed process), restart it from its data directory, and the k-way
// merged decision stream must be byte-for-byte identical — global seqs
// dense, no gaps, no renumbering — to the same fleet run with no crash.
func TestFleetCrashRestartEquivalence(t *testing.T) {
	const round = time.Minute
	env := testEnv(t)
	jobs := genTrace(t, env, 2000, 24)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	// Uninterrupted reference fleet (no durability).
	ref, err := New(Config{Env: env, NewScheduler: coreFactory(t), Shards: 2, Tolerance: 0.5, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	for _, j := range jobs {
		if _, err := ref.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	ref.Start()
	if err := ref.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	want := ref.Decisions(0, 0)
	if len(want) != len(jobs) {
		t.Fatalf("reference fleet merged %d decisions, want %d", len(want), len(jobs))
	}

	// Durable fleet; shard 0 is killed mid-run and restarted. Its
	// scheduler is throttled — a decision-neutral per-round delay — so
	// the accelerated run lasts long enough for the kill to reliably
	// land mid-run on any machine.
	fl, err := New(Config{
		Env: testEnv(t), NewScheduler: throttledFactory(t, 500*time.Microsecond), Shards: 2,
		Tolerance: 0.5, Round: round, DataDir: t.TempDir(), SnapshotEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	for _, j := range jobs {
		if _, err := fl.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	fl.Start()
	// Yield-only spin: without per-round fsyncs the whole shard run is
	// tens of milliseconds, and a sleeping poll can miss the kill window.
	for fl.Shard(0).Status().Decisions < 100 {
		runtime.Gosched()
	}
	if err := fl.KillShard(0); err != nil {
		t.Fatal(err)
	}
	st0 := fl.Shard(0).Status()
	if st0.Decisions >= st0.Accepted {
		t.Fatalf("kill landed after shard 0 finished (%d/%d decisions); nothing recovered",
			st0.Decisions, st0.Accepted)
	}
	if err := fl.RestartShard(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	rst := fl.Shard(0).Status()
	if rst.WAL == nil || (!rst.WAL.RecoveredSnapshot && rst.WAL.RecoveredRecords == 0) {
		t.Fatalf("restarted shard recovered nothing: %+v", rst.WAL)
	}
	if err := fl.Drain(ctx); err != nil {
		t.Fatalf("drain after restart: %v", err)
	}
	got := fl.Decisions(0, 0)
	sameMergedStream(t, got, want)
	if st := fl.Status(); st.Lost != 0 {
		t.Fatalf("merge lost %d decisions across the crash", st.Lost)
	}
}

// TestFleetDeadShardBuffering: while a shard is down the gateway keeps
// accepting its submissions — parking them in a bounded buffer — and
// re-routes them when the shard restarts; the buffer bound surfaces as
// the usual backpressure error.
func TestFleetDeadShardBuffering(t *testing.T) {
	env := testEnv(t)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: 2,
		Tolerance: 0.5, Round: time.Minute, DataDir: t.TempDir(), QueueCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	deadHome := fl.Partitions()[0][0]
	liveHome := fl.Partitions()[1][0]
	if err := fl.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if err := fl.KillShard(0); err != nil {
		t.Fatalf("KillShard not idempotent: %v", err)
	}
	if err := fl.RestartShard(1); err == nil {
		t.Fatal("RestartShard of a live shard must refuse")
	}

	ids := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		id, err := fl.Submit(server.JobSpec{Benchmark: "canneal", Home: deadHome, Submit: testStart.Add(time.Hour)})
		if err != nil {
			t.Fatalf("submit %d to dead shard: %v", i, err)
		}
		ids = append(ids, id)
	}
	// Buffer is bounded by the queue cap.
	if _, err := fl.Submit(server.JobSpec{Benchmark: "canneal", Home: deadHome, Submit: testStart.Add(time.Hour)}); !errors.Is(err, server.ErrQueueFull) {
		t.Fatalf("buffer overflow: got %v, want ErrQueueFull", err)
	}
	// The live shard is unaffected.
	if _, err := fl.Submit(server.JobSpec{Benchmark: "canneal", Home: liveHome, Submit: testStart.Add(time.Hour)}); err != nil {
		t.Fatalf("submit to live shard during outage: %v", err)
	}

	if err := fl.RestartShard(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	decided := make(map[int]bool)
	for _, d := range fl.Decisions(0, 0) {
		decided[d.JobID] = true
	}
	for _, id := range ids {
		if !decided[id] {
			t.Fatalf("buffered job %d never decided after restart", id)
		}
	}

	if err := fl.KillShard(7); err == nil {
		t.Fatal("KillShard out of range must refuse")
	}
	if err := fl.RestartShard(7); err == nil {
		t.Fatal("RestartShard out of range must refuse")
	}
}
