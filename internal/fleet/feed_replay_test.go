package fleet

import (
	"bytes"
	"context"
	"testing"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/feed"
	"waterwise/internal/region"
)

// runFleet replays the given jobs through a fresh fleet over env and
// returns the merged decision stream.
func runFleet(t *testing.T, env *region.Environment, shards int, jobs int) []Decision {
	t.Helper()
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: shards,
		Tolerance: 0.5, Round: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	trace := genTrace(t, env, 2000, 24)
	if len(trace) < jobs {
		t.Fatalf("trace too small: %d jobs", len(trace))
	}
	for _, j := range trace[:jobs] {
		if _, err := fl.Submit(specFor(j)); err != nil {
			t.Fatalf("submit job %d: %v", j.ID, err)
		}
	}
	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return fl.Decisions(0, 0)
}

// TestFleetReplayFeedEquivalence is the record→replay acceptance test
// (and CI's replay-smoke job): record the synthetic environment feed to
// the trace wire format, rebuild the environment over a Replay provider
// reading it back, and a 2-shard fleet run over the replayed feed must be
// decision-for-decision identical to the same run over the original
// synthetic feed — placements, rounds, start/finish instants, footprints,
// shard assignment, global sequence order, everything.
func TestFleetReplayFeedEquivalence(t *testing.T) {
	const hours = 24 * 2
	synthEnv, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, hours, 21)
	if err != nil {
		t.Fatal(err)
	}

	// Record the feed and push it through the JSON wire format — the
	// same bytes waterwised -record writes and -feed replay:<file> reads.
	tr, err := feed.Record(synthEnv.Provider(), nil, testStart, hours)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := feed.WriteTrace(&buf, tr, feed.FormatJSON); err != nil {
		t.Fatal(err)
	}
	back, err := feed.ReadTrace(&buf, feed.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := feed.NewReplay(back)
	if err != nil {
		t.Fatal(err)
	}
	replayEnv, err := region.NewEnvironmentWithProvider(region.Defaults(), energy.Table, testStart, hours, replay)
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 1200
	want := runFleet(t, synthEnv, 2, jobs)
	got := runFleet(t, replayEnv, 2, jobs)
	if len(want) != jobs || len(got) != len(want) {
		t.Fatalf("synthetic fleet decided %d, replayed fleet %d, want %d", len(want), len(got), jobs)
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Seq != g.Seq || w.JobID != g.JobID || w.Region != g.Region ||
			w.Shard != g.Shard || w.ShardSeq != g.ShardSeq {
			t.Fatalf("decision %d routing differs:\n synthetic %+v\n replayed  %+v", i, w, g)
		}
		if !w.Round.Equal(g.Round) || !w.Start.Equal(g.Start) || !w.Finish.Equal(g.Finish) {
			t.Fatalf("decision %d timing differs:\n synthetic %+v\n replayed  %+v", i, w, g)
		}
		if w.CarbonG != g.CarbonG || w.WaterL != g.WaterL {
			t.Fatalf("decision %d footprint differs:\n synthetic %+v\n replayed  %+v", i, w, g)
		}
	}
}
