// Package fleet is the horizontal scale-out layer of the serving stack: N
// scheduler shards behind one gateway. Each shard is a full server.Server
// owning a disjoint partition of the regions of one shared
// region.Environment (an Environment.Partition view — same generated
// series, fewer regions), running its own round loop, solver stack, and
// decision log. The gateway routes job submissions by home region to the
// owning shard, merges the per-shard decision logs into one globally
// seq-numbered stream, and aggregates status and metrics with per-shard
// labels.
//
// Sharding by home region is exact, not approximate: a shard schedules
// its jobs over its own regions only, so within each partition the fleet
// is decision-for-decision identical to a dedicated single server (or the
// offline cluster.Run) over that partition — the acceptance test in
// fleet_test.go proves it. The trade is that geo-shifting is confined to
// the partition: operators group regions so the moves that matter stay
// intra-shard (e.g. one shard per continent), and a 1-shard fleet is
// exactly the old single server.
//
// The merged decision stream is ordered by (round, shard, shard-seq)
// under a round watermark: a decision is emitted only once every shard's
// round clock has passed its round (a drained shard's clock counts as
// infinite), so the interleaving is deterministic no matter how far the
// shards' accelerated clocks diverge while rounds were running. Global
// sequence numbers are dense — gap-free — by construction; shard-ring
// evictions that outrun the merge are counted and surfaced as Lost rather
// than silently renumbered.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/feed"
	"waterwise/internal/footprint"
	"waterwise/internal/obs"
	"waterwise/internal/region"
	"waterwise/internal/server"
	"waterwise/internal/transfer"
	"waterwise/internal/tsdb"
)

// Config parameterizes the fleet.
type Config struct {
	// Env is the shared environment; each shard sees a partition view of
	// it, never a reseeded copy.
	Env *region.Environment
	// Net and FP are shared across shards (both stateless; defaulted like
	// server.Config).
	Net *transfer.Model
	FP  *footprint.Model
	// NewScheduler builds the scheduler for one shard. Schedulers are
	// stateful and single-threaded by the cluster.Scheduler contract, so
	// every shard needs its own instance.
	NewScheduler func(shard int, regions []region.ID) (cluster.Scheduler, error)
	// Shards is the shard count (default 1; at most the region count).
	Shards int
	// ShardMap pins regions to shards (region → shard index in
	// [0, Shards)). Regions absent from the map are dealt to the emptiest
	// shard in environment order; every shard must end up owning at least
	// one region. A nil map deals all regions that way, which balances
	// them round-robin.
	ShardMap map[region.ID]int
	// Tolerance, Round, and TimeScale are shared by every shard, keeping
	// the shard round clocks aligned (all fire at Env.Start + k*Round).
	Tolerance float64
	Round     time.Duration
	TimeScale float64
	// QueueCap bounds each shard's ingest queue (server.Config.QueueCap).
	QueueCap int
	// DecisionLogCap bounds the merged decision ring; it is also each
	// shard's local ring capacity (default 65536).
	DecisionLogCap int
	// DataDir enables durable shard state: each shard keeps its write-ahead
	// log and snapshots under DataDir/shard-<i>, and New recovers every
	// shard from its directory before serving. Empty disables durability.
	DataDir string
	// SnapshotEvery is each shard's snapshot cadence in rounds
	// (server.Config.SnapshotEvery; 0 means the server default).
	SnapshotEvery int
	// SyncInterval is each shard's WAL group-commit bound
	// (server.Config.SyncInterval; 0 means the server default). The
	// scenario harness tightens it so accelerated runs sync every round.
	SyncInterval time.Duration
	// Obs configures every shard's observability layer (server.Config.Obs).
	// The gateway merges the shard histograms into fleet-level
	// distributions and serves fleet-wide round and job trace views.
	Obs server.ObsConfig
	// WALSyncDelay is handed to every shard's write-ahead log as its fsync
	// latency hook (server.Config.WALSyncDelay) — the scenario harness's
	// slow-disk fault. Nil adds nothing; ignored without DataDir.
	WALSyncDelay func() time.Duration
	// Supervisor enables the fleet watchdog: a goroutine that detects dead
	// shards (killed, crashed, or round-loop failures) and drives
	// RestartShard with capped exponential backoff. Nil disables
	// supervision — shards stay dead until RestartShard is called
	// externally, the pre-supervisor behavior.
	Supervisor *SupervisorConfig
	// Record configures a fleet-level metrics flight recorder
	// (server.RecordConfig): the merged gateway exposition — per-shard
	// series, fleet histograms, merge counters — is self-scraped on the
	// shards' round clock into one TSDB serving /v1/query and /v1/alerts
	// on the gateway. Shards never record individually; the fleet view is
	// the one operators query.
	Record server.RecordConfig
}

// Decision is one merged placement: a shard's decision re-stamped with
// the fleet-wide sequence number. Seq (in the embedded server.Decision)
// carries the global stream position; ShardSeq preserves the shard-local
// number the merge consumed.
type Decision struct {
	server.Decision
	Shard    int    `json:"shard"`
	ShardSeq uint64 `json:"shard_seq"`
}

// ShardStatus is one shard's snapshot plus its identity in the fleet.
type ShardStatus struct {
	Shard   int         `json:"shard"`
	Regions []region.ID `json:"regions"`
	server.Status
}

// Status aggregates the fleet: summed counters, the union of per-region
// free servers, and every shard's own snapshot.
type Status struct {
	Shards    int     `json:"shards"`
	Scheduler string  `json:"scheduler"`
	Round     string  `json:"round"`
	TimeScale float64 `json:"time_scale"`
	Pending   int     `json:"pending"`
	Future    int     `json:"future"`
	QueueCap  int     `json:"queue_cap"`
	Accepted  uint64  `json:"accepted"`
	Rejected  uint64  `json:"rejected"`
	Rounds    uint64  `json:"rounds"`
	Decisions uint64  `json:"decisions"`
	// Merged counts decisions emitted into the global stream; it trails
	// Decisions until the next merge pull catches up.
	Merged uint64 `json:"merged"`
	// Lost counts decisions evicted from a shard's ring before the merge
	// read them (log gap — a sizing failure; see DESIGN.md).
	Lost        uint64            `json:"lost"`
	Unscheduled int               `json:"unscheduled"`
	Free        map[region.ID]int `json:"free"`
	// Obs digests the fleet-merged observability histograms — every
	// shard's decision latency and round timings summed into one
	// distribution (per-shard digests sit in each ShardStatus).
	Obs *server.ObsSummary `json:"obs,omitempty"`
	// Feed reports the one environment feed every shard reads (shards
	// share the provider through their partition views, so there is a
	// single health record fleet-wide).
	Feed *feed.Health `json:"feed,omitempty"`
	// Supervisor reports the watchdog's view of every shard — restart
	// counts, strike counts, backoff state. Nil when supervision is off.
	Supervisor  *SupervisorStatus `json:"supervisor,omitempty"`
	Err         string            `json:"err,omitempty"`
	ShardStatus []ShardStatus     `json:"shard_status"`
}

// Fleet runs N scheduler shards behind one gateway. Construct with New,
// start the shard round loops with Start, attach the HTTP API via
// Handler, and stop with Stop.
type Fleet struct {
	cfg    Config
	shards []*server.Server
	parts  [][]region.ID
	owner  map[region.ID]int

	mu      sync.Mutex
	autoID  int
	started bool
	// dead marks shards taken down by KillShard; the gateway buffers their
	// submissions (bounded by bufCap) until RestartShard re-routes them.
	dead     []bool
	buffered [][]server.JobSpec
	bufCap   int
	// k-way merge state: the per-shard local-seq cursor, decisions fetched
	// but not yet past the watermark, and the merged global ring.
	cursors []uint64
	staged  [][]server.Decision
	merged  []Decision
	head    int
	seq     uint64
	lost    uint64

	// ingest records the gateway's POST /v1/jobs wall time (jobs enter
	// the fleet here, not through shard HTTP, so the gateway owns the
	// ingest histogram; nil when Config.Obs.Disable).
	ingest *obs.Histogram

	// sup is the watchdog (nil when Config.Supervisor is nil); its
	// per-shard slices are guarded by mu like dead and buffered.
	sup *supervisor

	// recorder is the fleet-level metrics flight recorder (nil unless
	// Config.Record.Enable). Immutable after New; shard round hooks and
	// the gateway handlers read it without f.mu.
	recorder *tsdb.Recorder
}

// partition assigns every region of env to a shard: pinned regions first,
// the rest dealt to the emptiest shard in environment order.
func partition(env *region.Environment, shards int, pin map[region.ID]int) ([][]region.ID, error) {
	ids := env.IDs()
	if shards > len(ids) {
		return nil, fmt.Errorf("fleet: %d shards over %d regions leaves empty shards", shards, len(ids))
	}
	for id, s := range pin {
		if env.Region(id) == nil {
			return nil, fmt.Errorf("fleet: shard map names unknown region %q", id)
		}
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("fleet: shard map sends region %q to shard %d of %d", id, s, shards)
		}
	}
	parts := make([][]region.ID, shards)
	for _, id := range ids {
		if s, ok := pin[id]; ok {
			parts[s] = append(parts[s], id)
		}
	}
	for _, id := range ids {
		if _, ok := pin[id]; ok {
			continue
		}
		best := 0
		for s := 1; s < shards; s++ {
			if len(parts[s]) < len(parts[best]) {
				best = s
			}
		}
		parts[best] = append(parts[best], id)
	}
	for s, p := range parts {
		if len(p) == 0 {
			return nil, fmt.Errorf("fleet: shard map leaves shard %d with no regions", s)
		}
	}
	return parts, nil
}

// New validates cfg, partitions the environment, and builds one stopped
// server per shard; call Start to begin scheduling rounds.
func New(cfg Config) (*Fleet, error) {
	if cfg.Env == nil {
		return nil, errors.New("fleet: nil environment")
	}
	if cfg.NewScheduler == nil {
		return nil, errors.New("fleet: nil scheduler factory")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.DecisionLogCap <= 0 {
		cfg.DecisionLogCap = 65536
	}
	parts, err := partition(cfg.Env, cfg.Shards, cfg.ShardMap)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:      cfg,
		parts:    parts,
		owner:    make(map[region.ID]int, len(cfg.Env.Regions)),
		shards:   make([]*server.Server, cfg.Shards),
		dead:     make([]bool, cfg.Shards),
		buffered: make([][]server.JobSpec, cfg.Shards),
		bufCap:   cfg.QueueCap,
		cursors:  make([]uint64, cfg.Shards),
		staged:   make([][]server.Decision, cfg.Shards),
	}
	if f.bufCap <= 0 {
		f.bufCap = 65536
	}
	if !cfg.Obs.Disable {
		f.ingest = &obs.Histogram{}
	}
	if cfg.Supervisor != nil {
		f.sup = newSupervisor(*cfg.Supervisor, cfg.Shards)
	}
	for s, p := range parts {
		for _, id := range p {
			f.owner[id] = s
		}
		srv, err := f.buildShard(s)
		if err != nil {
			return nil, err
		}
		f.shards[s] = srv
		// A recovered shard already owns ids up to its next auto id; the
		// fleet-wide counter must never re-mint one of them.
		if n := srv.NextAutoID(); n > f.autoID {
			f.autoID = n
		}
	}
	if cfg.Record.Enable {
		rec, err := tsdb.New(tsdb.Config{
			Gather:            func() []byte { return f.MetricsText() },
			MemoryBudgetBytes: cfg.Record.MemoryBudgetBytes,
			ScrapeEvery:       cfg.Record.ScrapeEvery,
			MinInterval:       cfg.Record.MinInterval,
			Sync:              cfg.Record.Sync,
			Objectives:        cfg.Record.SLOs,
			Logf:              cfg.Record.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		f.recorder = rec
	}
	return f, nil
}

// Recorder exposes the fleet-level flight recorder; nil when recording is
// disabled.
func (f *Fleet) Recorder() *tsdb.Recorder { return f.recorder }

// onShardRound is every shard's end-of-round hook. Each shard reports its
// own completed-round count; Observe keeps the maximum, so the recorder's
// clock is the fleet's progress clock (the same max-shard-rounds measure
// the scenario harness polls). Runs on the shard's round-loop goroutine
// with the shard's lock released.
func (f *Fleet) onShardRound(rounds uint64) {
	if f.recorder != nil {
		f.recorder.Observe(rounds)
	}
}

// buildShard constructs (or, when Config.DataDir is set, recovers) the
// server for one shard.
func (f *Fleet) buildShard(s int) (*server.Server, error) {
	sched, err := f.cfg.NewScheduler(s, f.parts[s])
	if err != nil {
		return nil, fmt.Errorf("fleet: building shard %d scheduler: %w", s, err)
	}
	var dir string
	if f.cfg.DataDir != "" {
		dir = filepath.Join(f.cfg.DataDir, fmt.Sprintf("shard-%d", s))
	}
	srv, err := server.New(server.Config{
		Env: f.cfg.Env, Regions: f.parts[s], Net: f.cfg.Net, FP: f.cfg.FP,
		Scheduler: sched, Tolerance: f.cfg.Tolerance,
		Round: f.cfg.Round, TimeScale: f.cfg.TimeScale,
		QueueCap: f.cfg.QueueCap, DecisionLogCap: f.cfg.DecisionLogCap,
		DataDir: dir, SnapshotEvery: f.cfg.SnapshotEvery,
		SyncInterval: f.cfg.SyncInterval,
		Obs:          f.cfg.Obs, WALSyncDelay: f.cfg.WALSyncDelay,
		OnRound: f.onShardRound,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: building shard %d: %w", s, err)
	}
	return srv, nil
}

// Shards reports the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// Partitions returns each shard's region partition (copies).
func (f *Fleet) Partitions() [][]region.ID {
	out := make([][]region.ID, len(f.parts))
	for s, p := range f.parts {
		out[s] = append([]region.ID(nil), p...)
	}
	return out
}

// Owner reports which shard owns a region.
func (f *Fleet) Owner(id region.ID) (int, bool) {
	s, ok := f.owner[id]
	return s, ok
}

// Shard exposes one shard's server (tests and the standalone-shard
// daemon mode reach through this; production callers use the gateway).
func (f *Fleet) Shard(i int) *server.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shards[i]
}

// shardList snapshots the shard slice so iterating methods tolerate a
// concurrent RestartShard swapping a pointer.
func (f *Fleet) shardList() []*server.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*server.Server(nil), f.shards...)
}

// Submit routes one job to the shard owning its home region. Ids are
// assigned fleet-wide when the spec carries none, so the merged decision
// log never sees two shards mint the same id; client-assigned ids must be
// unique per home shard (globally unique ids satisfy that trivially).
//
// A submission for a dead shard (see KillShard) is accepted and buffered
// at the gateway — bounded by the queue cap, overflow is ErrQueueFull —
// and re-routed to the shard when RestartShard brings it back. The
// shard's durable dedupe index makes the re-route idempotent, so a
// client retrying the same id during the outage is safe.
func (f *Fleet) Submit(spec server.JobSpec) (int, error) {
	shard, ok := f.owner[spec.Home]
	if !ok {
		return 0, fmt.Errorf("%w: %q", server.ErrUnknownRegion, spec.Home)
	}
	f.mu.Lock()
	if spec.ID == nil {
		id := f.autoID
		spec.ID = &id
	}
	if *spec.ID >= f.autoID {
		f.autoID = *spec.ID + 1
	}
	if f.dead[shard] {
		id, err := f.bufferLocked(shard, spec)
		f.mu.Unlock()
		return id, err
	}
	srv := f.shards[shard]
	f.mu.Unlock()
	id, err := srv.Submit(spec)
	if errors.Is(err, server.ErrStopped) {
		// The shard died between the route decision and the submit (or was
		// crashed directly). Buffer if the fleet knows it is dead; a
		// deliberately stopped shard keeps the error.
		f.mu.Lock()
		if f.dead[shard] {
			id, err = f.bufferLocked(shard, spec)
		}
		f.mu.Unlock()
	}
	return id, err
}

// bufferLocked parks one spec for a dead shard. Called with f.mu held.
func (f *Fleet) bufferLocked(shard int, spec server.JobSpec) (int, error) {
	if len(f.buffered[shard]) >= f.bufCap {
		return 0, server.ErrQueueFull
	}
	f.buffered[shard] = append(f.buffered[shard], spec)
	return *spec.ID, nil
}

// KillShard crash-stops one shard the way a SIGKILL would: the round
// loop halts and the shard's WAL drops its unsynced buffer, with no
// final snapshot. The gateway marks the shard dead and buffers its
// submissions until RestartShard. Idempotent.
func (f *Fleet) KillShard(i int) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	f.mu.Lock()
	if f.dead[i] {
		f.mu.Unlock()
		return nil
	}
	f.dead[i] = true
	srv := f.shards[i]
	f.mu.Unlock()
	srv.Crash()
	return nil
}

// RestartShard rebuilds a killed shard from its data directory —
// recovering the latest snapshot and replaying the log tail — flushes
// the submissions the gateway buffered while it was down, and rejoins it
// to the fleet (starting its round loop if the fleet is started). The
// merge cursor is untouched: the recovered decision ring carries the
// same shard-local sequence numbers, so the global stream continues
// without a gap or renumbering.
func (f *Fleet) RestartShard(i int) error {
	if i < 0 || i >= len(f.shards) {
		return fmt.Errorf("fleet: no shard %d", i)
	}
	f.mu.Lock()
	if !f.dead[i] {
		f.mu.Unlock()
		return fmt.Errorf("fleet: shard %d is not dead", i)
	}
	srv, err := f.buildShard(i)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	f.shards[i] = srv
	f.dead[i] = false
	if n := srv.NextAutoID(); n > f.autoID {
		f.autoID = n
	}
	pend := f.buffered[i]
	f.buffered[i] = nil
	started := f.started
	f.mu.Unlock()
	var firstErr error
	for _, spec := range pend {
		if _, err := srv.Submit(spec); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: re-routing buffered job to shard %d: %w", i, err)
		}
	}
	if started {
		srv.Start()
	}
	return firstErr
}

// Start launches every shard's round loop (and the supervisor, when
// configured).
func (f *Fleet) Start() {
	f.mu.Lock()
	f.started = true
	shards := append([]*server.Server(nil), f.shards...)
	f.mu.Unlock()
	for _, s := range shards {
		s.Start()
	}
	f.startSupervisor()
}

// Stop halts the supervisor first (so the deliberate shutdown below is
// not mistaken for a fleet-wide crash and "repaired"), then every shard
// (concurrently — a shard mid-drain must not delay the others'
// shutdown), then pulls the final decisions into the merged log.
// Idempotent.
func (f *Fleet) Stop() {
	f.stopSupervisor()
	var wg sync.WaitGroup
	for _, s := range f.shardList() {
		wg.Add(1)
		go func(s *server.Server) {
			defer wg.Done()
			s.Stop()
		}(s)
	}
	wg.Wait()
	f.mu.Lock()
	f.mergeLocked()
	f.mu.Unlock()
	if f.recorder != nil {
		// All round loops are down, so no more Observe calls arrive; Close
		// drains the async scraper. The store stays queryable after Stop.
		f.recorder.Close()
	}
}

// Drain blocks until every shard's queue and pending set are empty, a
// shard's round loop fails, or the context expires, then merges the
// settled logs. With all shards drained the merged stream is total: every
// decision emitted, fully (round, shard, shard-seq)-ordered.
func (f *Fleet) Drain(ctx context.Context) error {
	shards := f.shardList()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *server.Server) {
			defer wg.Done()
			errs[i] = s.Drain(ctx)
		}(i, s)
	}
	wg.Wait()
	f.mu.Lock()
	f.mergeLocked()
	f.mu.Unlock()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Err reports the first shard round-loop failure, if any.
func (f *Fleet) Err() error {
	for _, s := range f.shardList() {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Result merges every shard's accounting into one cluster.Result, as if a
// single simulator had executed the whole trace. Call after Stop or Drain
// for a settled view.
func (f *Fleet) Result() (*cluster.Result, error) {
	shards := f.shardList()
	parts := make([]*cluster.Result, len(shards))
	for i, s := range shards {
		parts[i] = s.Result()
	}
	return cluster.MergeResults(parts...)
}

// mergeLocked advances the k-way merge: pull new decisions from every
// shard, then emit into the global ring — in (round, shard, shard-seq)
// order — every staged decision whose round is final fleet-wide. A round
// is final once each shard's frontier has passed it; a drained shard's
// frontier counts as infinite (it cannot decide anything at a round it
// has already slept through unless new work arrives, in which case those
// decisions join the stream late but the global seq stays dense). Called
// with f.mu held; takes each shard's own lock via DecisionsPage.
func (f *Fleet) mergeLocked() {
	var watermark time.Time
	unbounded := true
	for i, s := range f.shards {
		page, cur := s.DecisionsPage(f.cursors[i], 0)
		if len(page) > 0 {
			if first := page[0].Seq; first > f.cursors[i]+1 {
				// The shard ring evicted decisions before we read them:
				// count the gap instead of silently renumbering over it.
				f.lost += first - f.cursors[i] - 1
			}
			f.cursors[i] = page[len(page)-1].Seq
			f.staged[i] = append(f.staged[i], page...)
		}
		if !cur.Idle {
			if unbounded || cur.Frontier.Before(watermark) {
				watermark = cur.Frontier
				unbounded = false
			}
		}
	}
	for {
		best := -1
		for i := range f.staged {
			if len(f.staged[i]) == 0 {
				continue
			}
			h := &f.staged[i][0]
			if !unbounded && h.Round.After(watermark) {
				continue
			}
			if best == -1 || h.Round.Before(f.staged[best][0].Round) {
				best = i
			}
		}
		if best == -1 {
			return
		}
		d := f.staged[best][0]
		f.staged[best] = f.staged[best][1:]
		if len(f.staged[best]) == 0 {
			f.staged[best] = nil // release the drained backing array
		}
		f.seq++
		md := Decision{Decision: d, Shard: best, ShardSeq: d.Seq}
		md.Decision.Seq = f.seq
		if len(f.merged) < f.cfg.DecisionLogCap {
			f.merged = append(f.merged, md)
			continue
		}
		f.merged[f.head] = md
		f.head = (f.head + 1) % len(f.merged)
	}
}

// Decisions returns up to limit merged decisions with global Seq > since,
// oldest first (limit <= 0 means all), pulling any newly final shard
// decisions into the stream first. The merged log is a bounded ring like
// each shard's own.
func (f *Fleet) Decisions(since uint64, limit int) []Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mergeLocked()
	n := len(f.merged)
	if n == 0 {
		return []Decision{}
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if f.merged[(f.head+mid)%n].Seq <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	count := n - lo
	if limit > 0 && count > limit {
		count = limit
	}
	out := make([]Decision, count)
	for i := range out {
		out[i] = f.merged[(f.head+lo+i)%n]
	}
	return out
}

// Status aggregates every shard's snapshot.
func (f *Fleet) Status() Status {
	shards := f.shardList()
	st := Status{
		Shards:      len(shards),
		Free:        make(map[region.ID]int),
		ShardStatus: make([]ShardStatus, len(shards)),
	}
	// Merge before reading the shard counters: a decision logged between
	// the two reads then shows up in Decisions but not yet in Merged,
	// keeping the documented Merged <= Decisions invariant (monitors
	// compute the backlog as their difference).
	f.mu.Lock()
	f.mergeLocked()
	st.Merged = f.seq
	st.Lost = f.lost
	st.Supervisor = f.supervisorStatusLocked()
	f.mu.Unlock()
	for i, s := range shards {
		ss := s.Status()
		st.ShardStatus[i] = ShardStatus{Shard: i, Regions: append([]region.ID(nil), f.parts[i]...), Status: ss}
		st.Pending += ss.Pending
		st.Future += ss.Future
		st.QueueCap += ss.QueueCap
		st.Accepted += ss.Accepted
		st.Rejected += ss.Rejected
		st.Rounds += ss.Rounds
		st.Decisions += ss.Decisions
		st.Unscheduled += ss.Unscheduled
		for id, n := range ss.Free {
			st.Free[id] = n
		}
		if st.Err == "" {
			st.Err = ss.Err
		}
	}
	st.Scheduler = st.ShardStatus[0].Scheduler
	st.Round = st.ShardStatus[0].Round
	st.TimeScale = st.ShardStatus[0].TimeScale
	if snaps := f.ObsSnapshots(); snaps != nil {
		st.Obs = snaps.Summary(shards[0].JobSampleEvery())
	}
	if prov := f.cfg.Env.Provider(); prov != nil {
		h := feed.HealthOf(prov)
		st.Feed = &h
	}
	return st
}
