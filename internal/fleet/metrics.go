package fleet

import (
	"fmt"
	"net/http"
	"sort"

	"waterwise/internal/region"
	"waterwise/internal/server"
)

// handleMetrics serves Prometheus text-format metrics for the whole
// fleet: the per-server series a single waterwised exports, labeled by
// shard, plus the fleet-level merge counters. Labeling (rather than
// summing) keeps a hot shard visible — the operator's question for a
// sharded deployment is "which shard is behind", not just "how many
// decisions total"; sums are one PromQL aggregation away.
func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(f.MetricsText())
}

// MetricsText renders the fleet exposition as bytes. Split from the HTTP
// handler because the fleet-level flight recorder scrapes the merged
// exposition in-process on the shards' round clock.
func (f *Fleet) MetricsText() []byte {
	st := f.Status()
	var b []byte
	b = server.AppendBuildInfo(b)
	head := func(name, typ, help string) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)...)
	}
	row := func(name string, shard int, v float64) {
		b = append(b, fmt.Sprintf("%s{shard=\"%d\"} %g\n", name, shard, v)...)
	}

	head("waterwise_fleet_shards", "gauge", "Scheduler shards behind this gateway.")
	b = append(b, fmt.Sprintf("waterwise_fleet_shards %d\n", st.Shards)...)
	head("waterwise_fleet_merged_decisions_total", "counter", "Decisions emitted into the merged global stream.")
	b = append(b, fmt.Sprintf("waterwise_fleet_merged_decisions_total %d\n", st.Merged)...)
	head("waterwise_fleet_lost_decisions_total", "counter", "Decisions evicted from a shard ring before the merge read them.")
	b = append(b, fmt.Sprintf("waterwise_fleet_lost_decisions_total %d\n", st.Lost)...)
	if st.Supervisor != nil {
		head("waterwise_fleet_restarts_total", "counter", "Supervisor-driven shard restarts.")
		b = append(b, fmt.Sprintf("waterwise_fleet_restarts_total %d\n", st.Supervisor.Restarts)...)
		head("waterwise_fleet_shard_up", "gauge", "1 while the shard's round loop is serving, 0 while dead or restarting.")
		for _, ss := range st.Supervisor.Shards {
			up := 1
			if ss.State != "up" {
				up = 0
			}
			row("waterwise_fleet_shard_up", ss.Shard, float64(up))
		}
	}

	perShard := []struct {
		name, typ, help string
		v               func(ShardStatus) float64
	}{
		{"waterwise_jobs_accepted_total", "counter", "Jobs accepted into the shard's ingest queue.",
			func(s ShardStatus) float64 { return float64(s.Accepted) }},
		{"waterwise_jobs_rejected_total", "counter", "Jobs rejected by the shard (backpressure, validation, duplicates).",
			func(s ShardStatus) float64 { return float64(s.Rejected) }},
		{"waterwise_rounds_total", "counter", "Scheduling rounds run by the shard.",
			func(s ShardStatus) float64 { return float64(s.Rounds) }},
		{"waterwise_decisions_total", "counter", "Placement decisions committed by the shard.",
			func(s ShardStatus) float64 { return float64(s.Decisions) }},
		{"waterwise_jobs_unscheduled_total", "counter", "Jobs abandoned without a placement.",
			func(s ShardStatus) float64 { return float64(s.Unscheduled) }},
		{"waterwise_queue_pending", "gauge", "Jobs awaiting a placement decision.",
			func(s ShardStatus) float64 { return float64(s.Pending) }},
		{"waterwise_queue_future", "gauge", "Accepted jobs not yet due for a round.",
			func(s ShardStatus) float64 { return float64(s.Future) }},
		{"waterwise_queue_cap", "gauge", "Ingest queue capacity (backpressure threshold).",
			func(s ShardStatus) float64 { return float64(s.QueueCap) }},
	}
	for _, m := range perShard {
		head(m.name, m.typ, m.help)
		for _, ss := range st.ShardStatus {
			row(m.name, ss.Shard, m.v(ss))
		}
	}

	head("waterwise_region_free_servers", "gauge", "Servers free per region at the owning shard's simulated clock.")
	for _, ss := range st.ShardStatus {
		ids := make([]string, 0, len(ss.Free))
		for id := range ss.Free {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			b = append(b, fmt.Sprintf("waterwise_region_free_servers{region=%q,shard=\"%d\"} %d\n",
				id, ss.Shard, ss.Free[region.ID(id)])...)
		}
	}

	solver := []struct {
		name, help string
		v          func(ShardStatus) (float64, bool)
	}{
		{"waterwise_solver_nodes_total", "Branch-and-bound nodes across the shard's rounds.",
			func(s ShardStatus) (float64, bool) {
				if s.Solver == nil {
					return 0, false
				}
				return float64(s.Solver.Nodes), true
			}},
		{"waterwise_solver_simplex_iters_total", "Simplex pivots across the shard's rounds.",
			func(s ShardStatus) (float64, bool) {
				if s.Solver == nil {
					return 0, false
				}
				return float64(s.Solver.SimplexIters), true
			}},
		{"waterwise_solver_warm_starts_total", "LP solves served by a warm start.",
			func(s ShardStatus) (float64, bool) {
				if s.Solver == nil {
					return 0, false
				}
				return float64(s.Solver.WarmStarts), true
			}},
		{"waterwise_solver_cold_starts_total", "LP solves run from scratch.",
			func(s ShardStatus) (float64, bool) {
				if s.Solver == nil {
					return 0, false
				}
				return float64(s.Solver.ColdStarts), true
			}},
		{"waterwise_solver_wall_seconds_total", "Aggregate solver wall time.",
			func(s ShardStatus) (float64, bool) {
				if s.Solver == nil {
					return 0, false
				}
				return s.Solver.Wall.Seconds(), true
			}},
	}
	for _, m := range solver {
		wrote := false
		for _, ss := range st.ShardStatus {
			v, ok := m.v(ss)
			if !ok {
				continue
			}
			if !wrote {
				head(m.name, "counter", m.help)
				wrote = true
			}
			row(m.name, ss.Shard, v)
		}
	}
	// Durability, labeled per shard like the rest: each shard owns its own
	// log, so fsync stalls and recovery cost are per-shard questions.
	walRow := func(name, typ, help string, v func(*server.WALStatus) float64) {
		wrote := false
		for _, ss := range st.ShardStatus {
			if ss.WAL == nil {
				continue
			}
			if !wrote {
				head(name, typ, help)
				wrote = true
			}
			row(name, ss.Shard, v(ss.WAL))
		}
	}
	walRow("waterwise_jobs_deduped_total", "counter", "Idempotent re-submits served from the shard's dedupe index.",
		func(w *server.WALStatus) float64 { return float64(w.Deduped) })
	walRow("waterwise_wal_segments", "gauge", "Write-ahead log segment files on disk.",
		func(w *server.WALStatus) float64 { return float64(w.Segments) })
	walRow("waterwise_wal_bytes", "gauge", "Write-ahead log size on disk (snapshots excluded).",
		func(w *server.WALStatus) float64 { return float64(w.Bytes) })
	walRow("waterwise_wal_records_appended_total", "counter", "Records appended to the shard's write-ahead log.",
		func(w *server.WALStatus) float64 { return float64(w.Appended) })
	walRow("waterwise_wal_records_synced_total", "counter", "Appended records made durable by an fsync.",
		func(w *server.WALStatus) float64 { return float64(w.Synced) })
	walRow("waterwise_wal_fsyncs_total", "counter", "Fsync batches flushed to the shard's log.",
		func(w *server.WALStatus) float64 { return float64(w.Fsyncs) })
	walRow("waterwise_wal_fsync_stall_p50_ms", "gauge", "Median fsync stall over the recent window.",
		func(w *server.WALStatus) float64 { return float64(w.FsyncP50) / 1e6 })
	walRow("waterwise_wal_fsync_stall_p99_ms", "gauge", "99th-percentile fsync stall over the recent window.",
		func(w *server.WALStatus) float64 { return float64(w.FsyncP99) / 1e6 })
	walRow("waterwise_wal_snapshots_total", "counter", "State snapshots written by the shard.",
		func(w *server.WALStatus) float64 { return float64(w.Snapshots) })
	walRow("waterwise_wal_recovery_ms", "gauge", "Wall time of the shard's last restart (snapshot restore + replay).",
		func(w *server.WALStatus) float64 { return w.RecoveryMs })
	walRow("waterwise_wal_recovered_records_total", "counter", "Log records the shard replayed at its last restart.",
		func(w *server.WALStatus) float64 { return float64(w.RecoveredRecords) })
	// Latency histograms twice over: the per-server families labeled by
	// shard (which shard's solve is slow), then the shard-merged
	// fleet-level distributions (what a client of the gateway sees) —
	// exact sums, since every histogram shares one bucket scheme.
	if shardSnaps := f.ShardObsSnapshots(); len(shardSnaps) > 0 {
		first := true
		for shard, snaps := range shardSnaps {
			if snaps == nil {
				continue
			}
			b = server.AppendObsMetrics(b, snaps, "waterwise_", fmt.Sprintf("shard=\"%d\"", shard), first)
			first = false
		}
	}
	b = server.AppendObsMetrics(b, f.ObsSnapshots(), "waterwise_fleet_", "", true)
	// One feed block, not one per shard: every shard reads the same
	// provider through its partition view, so per-shard labels would just
	// repeat one health record N times.
	b = server.AppendFeedMetrics(b, st.Feed)
	if f.recorder != nil {
		b = f.recorder.AppendMetrics(b, "waterwise_")
	}
	return b
}
