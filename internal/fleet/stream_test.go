package fleet

import (
	"context"
	"net"
	"testing"
	"time"

	"waterwise/internal/server"
	"waterwise/internal/wire"
)

// TestFleetStreamMergedPush: the gateway speaks the wire protocol —
// submits over one stream connection fan out to shards by home region,
// and pushed decisions are the k-way-merged global stream: dense seqs,
// shard coordinates attached, identical to the gateway's own merged
// log.
func TestFleetStreamMergedPush(t *testing.T) {
	env := testEnv(t)
	jobs := genTrace(t, env, 3000, 12)
	f, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Tolerance: 0.5, Round: time.Minute, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl := f.ServeStream(ln, server.StreamOptions{PushInterval: 200 * time.Microsecond})
	defer sl.Close()

	// Ingest the trace over the stream; the gateway routes by home.
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := wire.NewConn(nc)
	if err := conn.WriteFrame(wire.TypeHello, wire.AppendHello(nil, wire.Hello{Flags: wire.HelloSubscribe})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := conn.ReadFrame()
	if err != nil || typ != wire.TypeWelcome {
		t.Fatalf("handshake: type %d, err %v", typ, err)
	}
	welcome, err := conn.Codec().DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(welcome.Regions) != len(env.IDs()) {
		t.Fatalf("welcome advertises %d regions, want %d", len(welcome.Regions), len(env.IDs()))
	}

	const batch = 500
	for i := 0; i < len(jobs); i += batch {
		end := min(i+batch, len(jobs))
		specs := make([]wire.Job, 0, end-i)
		for _, j := range jobs[i:end] {
			specs = append(specs, server.WireJob(specFor(j)))
		}
		p, err := wire.AppendSubmit(nil, specs)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.WriteFrame(wire.TypeSubmit, p); err != nil {
			t.Fatal(err)
		}
		typ, reply, err := conn.ReadFrame()
		if err != nil || typ != wire.TypeSubmitReply {
			t.Fatalf("submit reply: type %d, err %v", typ, err)
		}
		results, err := conn.Codec().DecodeSubmitReply(reply, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range results {
			if res.Code != wire.SubmitOK {
				t.Fatalf("gateway rejected a routed submit with code %d", res.Code)
			}
		}
	}
	f.Start()

	// Collect every pushed decision (replies are done, so only
	// Decisions frames remain on this connection).
	var pushed []wire.Decision
	nc.SetReadDeadline(time.Now().Add(120 * time.Second))
	for len(pushed) < len(jobs) {
		typ, payload, err := conn.ReadFrame()
		if err != nil {
			t.Fatalf("after %d/%d pushed: %v", len(pushed), len(jobs), err)
		}
		if typ != wire.TypeDecisions {
			t.Fatalf("unexpected frame type %d", typ)
		}
		var next uint64
		pushed, next, err = conn.Codec().DecodeDecisions(payload, pushed)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.WriteFrame(wire.TypeAck, wire.AppendAck(nil, next)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	shardsSeen := map[uint32]bool{}
	for i, d := range pushed {
		if d.Seq != uint64(i+1) {
			t.Fatalf("pushed decision %d: seq %d, want %d", i, d.Seq, i+1)
		}
		shardsSeen[d.Shard] = true
	}
	if len(shardsSeen) != 2 {
		t.Fatalf("pushed decisions came from %d shards, want 2", len(shardsSeen))
	}

	// The pushed stream is the merged log, decision for decision.
	merged := f.Decisions(0, 0)
	if len(merged) != len(pushed) {
		t.Fatalf("merged log has %d decisions, pushed %d", len(merged), len(pushed))
	}
	for i := range merged {
		m, p := merged[i], pushed[i]
		if m.Seq != p.Seq || m.JobID != int(p.JobID) || int(p.Shard) != m.Shard || p.ShardSeq != m.ShardSeq ||
			string(m.Region) != p.Region || !m.Round.Equal(server.NanoTime(p.RoundNano)) ||
			!m.Start.Equal(server.NanoTime(p.StartNano)) || !m.Finish.Equal(server.NanoTime(p.FinishNano)) ||
			m.CarbonG != p.CarbonG || m.WaterL != p.WaterL {
			t.Fatalf("decision %d: merged %+v, pushed %+v", i, m, p)
		}
	}
}
