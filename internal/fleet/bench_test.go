package fleet

import (
	"context"
	"fmt"
	"testing"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/region"
	"waterwise/internal/trace"
)

// BenchmarkFleetReplay measures aggregate accelerated serving throughput
// at 1, 2, and 4 shards: a fixed trace is submitted up front and drained
// as fast as the shard round loops allow, the serving layer's peak-rate
// mode. The reported decisions/s is the scale-out headline scripts/bench.sh
// records in BENCH_SERVER.json. Shards scale two ways: round loops (and
// their MILP solves) run concurrently across cores, and each shard's
// rounds optimize over its partition only, shrinking the per-round
// problem — the second effect shows even on a single core.
func BenchmarkFleetReplay(b *testing.B) {
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*2, 21)
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := trace.GenerateBorgLike(trace.Config{
		Start: testStart, Duration: 24 * time.Hour,
		JobsPerDay: 30000, Regions: env.IDs(), DurationScale: 0.5, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fl, err := New(Config{
					Env: env, NewScheduler: coreFactory(b), Shards: shards,
					Tolerance: 0.5, Round: time.Minute,
					QueueCap: len(jobs) + 1, DecisionLogCap: len(jobs) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, j := range jobs {
					if _, err := fl.Submit(specFor(j)); err != nil {
						b.Fatal(err)
					}
				}
				fl.Start()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
				if err := fl.Drain(ctx); err != nil {
					cancel()
					b.Fatal(err)
				}
				cancel()
				b.StopTimer()
				st := fl.Status()
				if st.Decisions != uint64(len(jobs)) || st.Lost != 0 {
					b.Fatalf("decided %d of %d (lost %d)", st.Decisions, len(jobs), st.Lost)
				}
				fl.Stop()
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}
