package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"waterwise/internal/obs"
	"waterwise/internal/server"
)

// TestFleetMetricsLintAndMergedHistograms replays a trace through a
// sharded fleet's gateway and checks the fleet observability surface:
// the whole /metrics exposition lints strictly, the per-shard latency
// families carry shard labels, and the fleet-level merged distributions
// are exact counter sums of the shards.
func TestFleetMetricsLintAndMergedHistograms(t *testing.T) {
	const shards = 2
	env := testEnv(t)
	jobs := genTrace(t, env, 3000, 6)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: shards,
		Tolerance: 0.5, Round: time.Minute,
		Obs: server.ObsConfig{JobSampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	ts := httptest.NewServer(fl.Handler())
	defer ts.Close()

	// Submit over the gateway's HTTP ingest so its histogram records.
	specs := make([]server.JobSpec, 0, len(jobs))
	for _, j := range jobs {
		specs = append(specs, specFor(j))
	}
	body, err := json.Marshal(specs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+server.PathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	decided := len(fl.Decisions(0, 0))
	if decided != len(jobs) {
		t.Fatalf("decided %d of %d", decided, len(jobs))
	}

	resp, err = http.Get(ts.URL + server.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fams, err := obs.ParseProm(metrics)
	if err != nil {
		t.Fatalf("fleet /metrics does not parse: %v", err)
	}
	if err := obs.LintProm(metrics); err != nil {
		t.Fatalf("fleet /metrics fails lint: %v", err)
	}

	// Per-shard decision latency, labeled; the shard counts must sum to
	// the merged fleet count, which must equal the decided total.
	shardFam := fams["waterwise_decision_latency_seconds"]
	if shardFam == nil {
		t.Fatal("per-shard decision latency family missing")
	}
	var shardSum uint64
	for s := 0; s < shards; s++ {
		_, cums := obs.HistogramBuckets(shardFam, map[string]string{"shard": strconv.Itoa(s)})
		if len(cums) == 0 {
			t.Fatalf("shard %d has no decision latency buckets", s)
		}
		shardSum += cums[len(cums)-1]
	}
	fleetFam := fams["waterwise_fleet_decision_latency_seconds"]
	if fleetFam == nil {
		t.Fatal("fleet merged decision latency family missing")
	}
	_, fleetCums := obs.HistogramBuckets(fleetFam, nil)
	if len(fleetCums) == 0 {
		t.Fatal("fleet decision latency histogram empty")
	}
	fleetCount := fleetCums[len(fleetCums)-1]
	if fleetCount != shardSum {
		t.Errorf("fleet count %d != sum of shard counts %d", fleetCount, shardSum)
	}
	if fleetCount != uint64(decided) {
		t.Errorf("fleet decision latency count %d, want %d decided", fleetCount, decided)
	}
	// The gateway owns ingest: one POST recorded at the fleet level.
	_, ingCums := obs.HistogramBuckets(fams["waterwise_fleet_ingest_request_seconds"], nil)
	if len(ingCums) == 0 || ingCums[len(ingCums)-1] != 1 {
		t.Errorf("gateway ingest histogram should hold the one POST: %v", ingCums)
	}
	if st := fl.Status(); st.Obs == nil || st.Obs.DecisionCount != uint64(decided) {
		t.Errorf("fleet status obs summary: %+v", st.Obs)
	}

	// Round traces through the gateway carry their shard of origin.
	resp, err = http.Get(ts.URL + server.PathRounds + "?recent=4")
	if err != nil {
		t.Fatal(err)
	}
	var rounds server.RoundsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rounds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rounds.Slowest) == 0 {
		t.Fatal("gateway served no slowest rounds")
	}
	for i, rt := range rounds.Slowest {
		if rt.Shard == nil || *rt.Shard < 0 || *rt.Shard >= shards {
			t.Fatalf("slowest[%d] has no valid shard: %+v", i, rt)
		}
		if i > 0 && rt.TotalMs > rounds.Slowest[i-1].TotalMs {
			t.Fatalf("slowest not sorted across shards at %d", i)
		}
	}
	if len(rounds.Recent) == 0 || len(rounds.Recent) > 4 {
		t.Fatalf("recent window: %d rounds", len(rounds.Recent))
	}

	// Job trace lookup scans the shards and reports the owner.
	id := jobs[0].ID
	resp, err = http.Get(ts.URL + server.PathJobs + "/" + strconv.Itoa(id) + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway job trace: status %d", resp.StatusCode)
	}
	var jt server.JobTraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&jt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jt.Shard == nil || !jt.Trace.Done || jt.Trace.Region == "" {
		t.Fatalf("gateway trace incomplete: shard=%v trace=%+v", jt.Shard, jt.Trace)
	}
}
