package fleet

import (
	"time"
)

// The PR 6 residual this file closes: the gateway buffers submissions
// for a dead shard, but something external had to call RestartShard. The
// supervisor is that something — a watchdog goroutine that probes every
// shard, declares one dead after a threshold of consecutive failed
// probes (a shard that stopped or whose round loop errored without the
// fleet stopping it), and drives RestartShard with capped exponential
// backoff until the shard rejoins. Region re-assignment is deliberately
// out of scope (it would change partitions and break the
// sharded≡unsharded equivalence proof); the supervisor restores the
// fixed partition, it never rebalances it.

// Supervisor defaults (applied by Config.Supervisor.withDefaults).
const (
	// DefaultSupervisorInterval is the health-probe cadence.
	DefaultSupervisorInterval = 25 * time.Millisecond
	// DefaultSupervisorFailThreshold is how many consecutive failed
	// probes declare a shard dead (2: one stray observation mid-restart
	// never triggers a kill).
	DefaultSupervisorFailThreshold = 2
	// DefaultSupervisorBackoffMin seeds the restart backoff after a
	// failed restart attempt.
	DefaultSupervisorBackoffMin = 100 * time.Millisecond
	// DefaultSupervisorBackoffMax caps the restart backoff.
	DefaultSupervisorBackoffMax = 5 * time.Second
)

// SupervisorConfig parameterizes the fleet watchdog. Zero values take
// the defaults above.
type SupervisorConfig struct {
	// Interval is the health-probe cadence.
	Interval time.Duration
	// FailThreshold is how many consecutive failed probes mark a live
	// shard dead (KillShard semantics: the gateway starts buffering).
	// Shards killed explicitly skip the threshold — they are already dead.
	FailThreshold int
	// BackoffMin and BackoffMax bound the capped exponential backoff
	// between restart attempts while RestartShard keeps failing.
	BackoffMin time.Duration
	BackoffMax time.Duration
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultSupervisorInterval
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = DefaultSupervisorFailThreshold
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = DefaultSupervisorBackoffMin
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultSupervisorBackoffMax
	}
	return c
}

// ShardSupervision is one shard's view in the supervisor status block.
type ShardSupervision struct {
	Shard int `json:"shard"`
	// State is "up" (probes passing), "dead" (awaiting a restart
	// attempt), or "backoff" (a restart failed; waiting out the delay).
	State string `json:"state"`
	// Restarts counts successful supervisor-driven restarts of this shard.
	Restarts uint64 `json:"restarts"`
	// Strikes is the current consecutive-failed-probe count (resets on a
	// passing probe or a successful restart).
	Strikes int `json:"strikes,omitempty"`
	// BackoffMs is the current restart backoff, nonzero only after a
	// failed restart attempt.
	BackoffMs float64 `json:"backoff_ms,omitempty"`
	// LastRestart is the wall instant of the newest successful restart.
	LastRestart time.Time `json:"last_restart,omitzero"`
}

// SupervisorStatus is the "supervisor" block of the gateway's /v1/status.
type SupervisorStatus struct {
	// Restarts counts successful supervisor-driven shard restarts,
	// fleet-wide (the waterwise_fleet_restarts_total counter).
	Restarts uint64             `json:"restarts"`
	Shards   []ShardSupervision `json:"shards"`
}

// supervisor is the watchdog state. Per-shard slices are guarded by the
// fleet's mu (the same lock the dead/buffered bookkeeping lives under);
// the loop goroutine is started by Fleet.Start and stopped by Fleet.Stop
// before the shards are, so a deliberate shutdown never looks like a
// crash.
type supervisor struct {
	cfg  SupervisorConfig
	stop chan struct{}
	done chan struct{}

	// All guarded by Fleet.mu.
	running  bool
	strikes  []int
	backoff  []time.Duration
	next     []time.Time // earliest next restart attempt per shard
	restarts []uint64    // successful restarts per shard
	lastUp   []time.Time // newest successful restart per shard
	total    uint64
}

func newSupervisor(cfg SupervisorConfig, shards int) *supervisor {
	return &supervisor{
		cfg:      cfg.withDefaults(),
		strikes:  make([]int, shards),
		backoff:  make([]time.Duration, shards),
		next:     make([]time.Time, shards),
		restarts: make([]uint64, shards),
		lastUp:   make([]time.Time, shards),
	}
}

// startSupervisor launches the watchdog loop (idempotent). Called from
// Fleet.Start.
func (f *Fleet) startSupervisor() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sup == nil || f.sup.running {
		return
	}
	f.sup.running = true
	f.sup.stop = make(chan struct{})
	f.sup.done = make(chan struct{})
	go f.supervise()
}

// stopSupervisor halts the watchdog and waits for it (idempotent).
// Called from Fleet.Stop before the shards are stopped, so the shutdown
// is never mistaken for a fleet-wide crash.
func (f *Fleet) stopSupervisor() {
	f.mu.Lock()
	if f.sup == nil || !f.sup.running {
		f.mu.Unlock()
		return
	}
	f.sup.running = false
	stop, done := f.sup.stop, f.sup.done
	f.mu.Unlock()
	close(stop)
	<-done
}

// supervise is the watchdog loop: probe, declare, restart.
func (f *Fleet) supervise() {
	sup := f.sup
	defer close(sup.done)
	t := time.NewTicker(sup.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-sup.stop:
			return
		case <-t.C:
		}
		for i := range f.shardList() {
			f.superviseShard(i)
		}
	}
}

// superviseShard runs one probe-and-repair step for one shard.
func (f *Fleet) superviseShard(i int) {
	sup := f.sup
	f.mu.Lock()
	dead := f.dead[i]
	srv := f.shards[i]
	f.mu.Unlock()
	if !dead {
		if !srv.Stopped() {
			f.mu.Lock()
			sup.strikes[i] = 0
			f.mu.Unlock()
			return
		}
		// The shard halted without the fleet killing it — a direct Crash
		// or a round-loop failure. Strike; at the threshold, mark it dead
		// the usual way (KillShard is idempotent and, on an
		// already-stopped server, only flips the gateway to buffering).
		f.mu.Lock()
		sup.strikes[i]++
		strikes := sup.strikes[i]
		f.mu.Unlock()
		if strikes < sup.cfg.FailThreshold {
			return
		}
		_ = f.KillShard(i)
	}
	f.mu.Lock()
	wait := time.Until(sup.next[i]) > 0
	f.mu.Unlock()
	if wait {
		return
	}
	err := f.RestartShard(i)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		if sup.backoff[i] < sup.cfg.BackoffMin {
			sup.backoff[i] = sup.cfg.BackoffMin
		} else {
			sup.backoff[i] *= 2
		}
		if sup.backoff[i] > sup.cfg.BackoffMax {
			sup.backoff[i] = sup.cfg.BackoffMax
		}
		sup.next[i] = time.Now().Add(sup.backoff[i])
		return
	}
	sup.backoff[i] = 0
	sup.next[i] = time.Time{}
	sup.strikes[i] = 0
	sup.restarts[i]++
	sup.lastUp[i] = time.Now()
	sup.total++
}

// supervisorStatusLocked builds the status block. Called with f.mu held;
// nil when supervision is disabled.
func (f *Fleet) supervisorStatusLocked() *SupervisorStatus {
	sup := f.sup
	if sup == nil {
		return nil
	}
	st := &SupervisorStatus{
		Restarts: sup.total,
		Shards:   make([]ShardSupervision, len(f.shards)),
	}
	for i := range f.shards {
		ss := ShardSupervision{
			Shard:       i,
			State:       "up",
			Restarts:    sup.restarts[i],
			Strikes:     sup.strikes[i],
			LastRestart: sup.lastUp[i],
		}
		if f.dead[i] {
			ss.State = "dead"
			if sup.backoff[i] > 0 {
				ss.State = "backoff"
				ss.BackoffMs = float64(sup.backoff[i].Microseconds()) / 1000
			}
		}
		st.Shards[i] = ss
	}
	return st
}

// Restarts reports the number of successful supervisor-driven shard
// restarts (0 with supervision disabled).
func (f *Fleet) Restarts() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sup == nil {
		return 0
	}
	return f.sup.total
}
