package fleet

import (
	"net/http"

	"waterwise/internal/server"
)

// Handler returns the gateway's HTTP API — the same four paths a single
// server exposes, built from the same handler skeletons
// (server.JobsHandler and friends), fleet-wide:
//
//	POST /v1/jobs       — submit one JobSpec or an array; each job is
//	                      routed to the shard owning its home region
//	GET  /v1/decisions  — globally seq-numbered merged decision log;
//	                      ?since=<seq>&limit=<n>
//	GET  /v1/status     — aggregate + per-shard snapshots
//	GET  /metrics       — Prometheus text metrics with shard labels
//	GET  /v1/rounds/slowest   — slowest rounds across shards; ?recent=<n>
//	GET  /v1/jobs/{id}/trace  — sampled job lifecycle, any shard
//	GET  /v1/query            — windowed queries over recorded fleet metrics
//	GET  /v1/alerts           — fleet burn-rate SLO alert states
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(server.PathJobs, f.timedIngest(server.JobsHandler(f.Submit)))
	mux.HandleFunc(server.PathRounds, server.SlowestRoundsHandler(f.SlowestRounds, f.RecentRounds))
	mux.HandleFunc(server.PathJobs+"/", server.JobTraceHandler(f.JobTrace))
	mux.HandleFunc(server.PathDecisions, server.DecisionsHandler(func(since uint64, limit int) (interface{}, uint64) {
		ds := f.Decisions(since, limit)
		next := since
		if len(ds) > 0 {
			next = ds[len(ds)-1].Seq
		}
		return ds, next
	}))
	mux.HandleFunc(server.PathStatus, server.StatusHandler(func() interface{} { return f.Status() }))
	mux.HandleFunc(server.PathMetrics, f.handleMetrics)
	mux.HandleFunc(server.PathQuery, server.QueryHandler(f.Recorder))
	mux.HandleFunc(server.PathAlerts, server.AlertsHandler(f.Recorder))
	return mux
}
