package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/region"
	"waterwise/internal/server"
	"waterwise/internal/trace"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func testEnv(t *testing.T) *region.Environment {
	t.Helper()
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*3, 21)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// newCore builds one WaterWise scheduler — the per-shard factory and the
// offline comparator both use it, so equivalence compares identical
// scheduler configurations.
func newCore(t testing.TB) cluster.Scheduler {
	t.Helper()
	ww, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ww
}

func coreFactory(t testing.TB) func(int, []region.ID) (cluster.Scheduler, error) {
	return func(int, []region.ID) (cluster.Scheduler, error) { return newCore(t), nil }
}

// genTrace produces a millisecond-quantized trace (the CSV wire format's
// precision) so JSON float-seconds round exactly, as in the server tests.
func genTrace(t *testing.T, env *region.Environment, jobsPerDay float64, hours int) []*trace.Job {
	t.Helper()
	jobs, err := trace.GenerateBorgLike(trace.Config{
		Start: testStart, Duration: time.Duration(hours) * time.Hour,
		JobsPerDay: jobsPerDay, Regions: env.IDs(), DurationScale: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	jobs, err = trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// decisionsPage decodes the gateway's GET /v1/decisions reply with typed
// merged entries (the wire shape is server.DecisionsResponse).
type decisionsPage struct {
	Decisions []Decision `json:"decisions"`
	Next      uint64     `json:"next"`
}

func specFor(j *trace.Job) server.JobSpec {
	id := j.ID
	return server.JobSpec{
		ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
		DurationSec:    j.Duration.Seconds(),
		EnergyKWh:      float64(j.Energy),
		EstDurationSec: j.EstDuration.Seconds(),
		EstEnergyKWh:   float64(j.EstEnergy),
	}
}

// TestFleetReplayEquivalence is the sharding acceptance test: replaying a
// fixed trace through an N-shard fleet in accelerated mode must be
// decision-for-decision identical, per region partition, to the offline
// single-scheduler replay (cluster.Run) of that partition's sub-trace
// over a partition view of the same environment — placements, start and
// finish instants, footprints, rounds, everything. With one shard the
// partition is the whole environment, so the fleet reproduces the
// unsharded single-server run exactly. The merged decision stream must be
// gap-free and deterministically (round, shard, shard-seq)-ordered.
func TestFleetReplayEquivalence(t *testing.T) {
	const round = time.Minute
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			env := testEnv(t)
			jobs := genTrace(t, env, 4000, 24)

			fl, err := New(Config{
				Env: env, NewScheduler: coreFactory(t), Shards: shards,
				Tolerance: 0.5, Round: round,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer fl.Stop()
			for _, j := range jobs {
				if _, err := fl.Submit(specFor(j)); err != nil {
					t.Fatalf("submit job %d: %v", j.ID, err)
				}
			}
			fl.Start()
			ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
			defer cancel()
			if err := fl.Drain(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}

			// Merged stream: one decision per job, dense global seqs,
			// (round, shard, shard-seq)-ordered, every decision on the shard
			// owning the job's home and placed inside its partition.
			byID := make(map[int]*trace.Job, len(jobs))
			for _, j := range jobs {
				byID[j.ID] = j
			}
			ds := fl.Decisions(0, 0)
			if len(ds) != len(jobs) {
				t.Fatalf("merged %d decisions, want %d", len(ds), len(jobs))
			}
			shardSeq := make([]uint64, shards)
			for i, d := range ds {
				if d.Seq != uint64(i+1) {
					t.Fatalf("decision %d has global seq %d: stream not gap-free", i, d.Seq)
				}
				if i > 0 {
					prev := ds[i-1]
					if d.Round.Before(prev.Round) ||
						(d.Round.Equal(prev.Round) && d.Shard < prev.Shard) {
						t.Fatalf("merge order violated at seq %d: (%v, shard %d) after (%v, shard %d)",
							d.Seq, d.Round, d.Shard, prev.Round, prev.Shard)
					}
				}
				if d.ShardSeq != shardSeq[d.Shard]+1 {
					t.Fatalf("shard %d local seq %d after %d", d.Shard, d.ShardSeq, shardSeq[d.Shard])
				}
				shardSeq[d.Shard] = d.ShardSeq
				job := byID[d.JobID]
				if job == nil {
					t.Fatalf("decision for unknown job %d", d.JobID)
				}
				if own, _ := fl.Owner(job.Home); own != d.Shard {
					t.Fatalf("job %d homed in %s decided by shard %d, owner is %d",
						d.JobID, job.Home, d.Shard, own)
				}
				if own, _ := fl.Owner(d.Region); own != d.Shard {
					t.Fatalf("job %d placed in %s, outside shard %d's partition", d.JobID, d.Region, d.Shard)
				}
			}

			// Per-partition equivalence against the offline replay.
			got, err := fl.Result()
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Unscheduled) != 0 {
				t.Fatalf("fleet left %d jobs unscheduled", len(got.Unscheduled))
			}
			for s, part := range fl.Partitions() {
				partEnv, err := env.Partition(part...)
				if err != nil {
					t.Fatal(err)
				}
				var sub []*trace.Job
				for _, j := range jobs {
					if own, _ := fl.Owner(j.Home); own == s {
						sub = append(sub, j)
					}
				}
				want, err := cluster.Run(cluster.Config{
					Env: partEnv, Tolerance: 0.5, Tick: round,
				}, newCore(t), sub)
				if err != nil {
					t.Fatalf("offline replay of shard %d: %v", s, err)
				}
				var outs []cluster.JobOutcome
				for _, o := range got.Outcomes {
					if own, _ := fl.Owner(o.Job.Home); own == s {
						outs = append(outs, o)
					}
				}
				if len(outs) != len(want.Outcomes) {
					t.Fatalf("shard %d: fleet %d outcomes, offline %d", s, len(outs), len(want.Outcomes))
				}
				for i := range want.Outcomes {
					w, g := want.Outcomes[i], outs[i]
					if w.Job.ID != g.Job.ID || w.Region != g.Region {
						t.Fatalf("shard %d outcome %d: fleet job %d->%s, offline job %d->%s",
							s, i, g.Job.ID, g.Region, w.Job.ID, w.Region)
					}
					if !w.Start.Equal(g.Start) || !w.Finish.Equal(g.Finish) {
						t.Fatalf("shard %d job %d: fleet [%v,%v], offline [%v,%v]",
							s, w.Job.ID, g.Start, g.Finish, w.Start, w.Finish)
					}
					if w.Compute != g.Compute || w.Comm != g.Comm {
						t.Fatalf("shard %d job %d: footprints differ", s, w.Job.ID)
					}
					if w.Violated != g.Violated {
						t.Fatalf("shard %d job %d: violation flag differs", s, w.Job.ID)
					}
				}
			}
			st := fl.Status()
			if st.Lost != 0 {
				t.Fatalf("merge lost %d decisions", st.Lost)
			}
			if st.Merged != uint64(len(jobs)) {
				t.Fatalf("status reports %d merged, want %d", st.Merged, len(jobs))
			}
		})
	}
}

// TestFleetDrainUnderLoadGapFree is the graceful-shutdown satellite:
// Drain racing in-flight ingest on every shard must flush every queued
// job, and the merged decision log — polled live while the shards run —
// must come out gap-free: dense global seqs, dense per-shard seqs, no
// duplicates, nothing lost.
func TestFleetDrainUnderLoadGapFree(t *testing.T) {
	env := testEnv(t)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: 4,
		Tolerance: 0.5, Round: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	fl.Start()

	homes := env.IDs()
	const submitters = 4
	const perSubmitter = 250
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				spec := server.JobSpec{
					Benchmark: "canneal",
					Home:      homes[(g+i)%len(homes)],
					Submit:    testStart.Add(time.Duration(g*perSubmitter+i) * 30 * time.Second),
				}
				if _, err := fl.Submit(spec); err != nil {
					t.Errorf("submitter %d job %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}

	// Live poller: global seqs observed across incremental merges must
	// increase by exactly one — the stream never skips or repeats.
	stopPoll := make(chan struct{})
	pollDone := make(chan error, 1)
	go func() {
		var cursor uint64
		for {
			for _, d := range fl.Decisions(cursor, 0) {
				if d.Seq != cursor+1 {
					pollDone <- fmt.Errorf("live poll saw seq %d after %d", d.Seq, cursor)
					return
				}
				cursor = d.Seq
			}
			select {
			case <-stopPoll:
				pollDone <- nil
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	close(stopPoll)
	if err := <-pollDone; err != nil {
		t.Fatal(err)
	}

	const total = submitters * perSubmitter
	st := fl.Status()
	if st.Accepted != total || st.Decisions != total || st.Unscheduled != 0 {
		t.Fatalf("accepted=%d decided=%d unscheduled=%d, want %d/%d/0",
			st.Accepted, st.Decisions, st.Unscheduled, total, total)
	}
	if st.Lost != 0 {
		t.Fatalf("merge lost %d decisions", st.Lost)
	}
	ds := fl.Decisions(0, 0)
	if len(ds) != total {
		t.Fatalf("merged log has %d decisions, want %d", len(ds), total)
	}
	seenJob := make(map[int]bool, total)
	shardSeq := make([]uint64, fl.Shards())
	for i, d := range ds {
		if d.Seq != uint64(i+1) {
			t.Fatalf("global seq %d at index %d: gap or duplicate", d.Seq, i)
		}
		if d.ShardSeq != shardSeq[d.Shard]+1 {
			t.Fatalf("shard %d seq %d after %d: gap or duplicate", d.Shard, d.ShardSeq, shardSeq[d.Shard])
		}
		shardSeq[d.Shard] = d.ShardSeq
		if seenJob[d.JobID] {
			t.Fatalf("job %d decided twice", d.JobID)
		}
		seenJob[d.JobID] = true
	}
}

// TestFleetGatewayHTTP exercises the gateway surface: routed batch
// submission, typed rejection statuses, merged decision paging, and the
// aggregated status and metrics endpoints.
func TestFleetGatewayHTTP(t *testing.T) {
	env := testEnv(t)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: 2,
		Tolerance: 0.5, Round: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fl.Handler())
	defer ts.Close()
	defer fl.Stop()

	post := func(v interface{}) (server.SubmitResponse, int) {
		body, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+server.PathJobs, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr server.SubmitResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return sr, resp.StatusCode
	}

	// A batch spanning every region routes each job to its owning shard.
	specs := make([]server.JobSpec, 0, len(env.IDs()))
	for i, id := range env.IDs() {
		specs = append(specs, server.JobSpec{
			Benchmark: "canneal", Home: id, Submit: testStart.Add(time.Duration(i) * time.Second),
		})
	}
	sr, code := post(specs)
	if code != http.StatusAccepted || len(sr.Accepted) != len(specs) {
		t.Fatalf("batch submit: status %d, accepted %v, error %q", code, sr.Accepted, sr.Error)
	}
	// Fleet-minted ids are unique even though the jobs landed on
	// different shards.
	seen := map[int]bool{}
	for _, id := range sr.Accepted {
		if seen[id] {
			t.Fatalf("fleet minted duplicate id %d", id)
		}
		seen[id] = true
	}

	// Typed rejections map to distinct statuses through the gateway.
	if _, code := post(server.JobSpec{Benchmark: "canneal", Home: "atlantis", Submit: testStart}); code != http.StatusNotFound {
		t.Errorf("unknown region: status %d, want 404", code)
	}
	if _, code := post(server.JobSpec{Benchmark: "quake3", Home: region.Zurich, Submit: testStart}); code != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d, want 400", code)
	}
	dup := 900001
	if _, code := post(server.JobSpec{ID: &dup, Benchmark: "canneal", Home: region.Zurich, Submit: testStart}); code != http.StatusAccepted {
		t.Fatalf("first submit of id %d rejected (%d)", dup, code)
	}
	// An identical retry dedupes to the original id; a different spec
	// under the same id is the 409.
	if resp, code := post(server.JobSpec{ID: &dup, Benchmark: "canneal", Home: region.Zurich, Submit: testStart}); code != http.StatusAccepted || len(resp.Accepted) != 1 || resp.Accepted[0] != dup {
		t.Errorf("idempotent retry: status %d accepted %v, want 202 [%d]", code, resp.Accepted, dup)
	}
	if _, code := post(server.JobSpec{ID: &dup, Benchmark: "swaptions", Home: region.Zurich, Submit: testStart}); code != http.StatusConflict {
		t.Errorf("conflicting spec under same id: status %d, want 409", code)
	}
	if _, code := post(server.JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart.Add(-time.Hour)}); code != http.StatusBadRequest {
		t.Errorf("outside horizon: status %d, want 400", code)
	}

	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Merged decision paging through the gateway.
	var page decisionsPage
	resp, err := http.Get(ts.URL + server.PathDecisions + "?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(page.Decisions) != 2 {
		t.Fatalf("limit=2 returned %d decisions", len(page.Decisions))
	}
	total := len(page.Decisions)
	for page.Next > 0 && total < 100 {
		resp, err := http.Get(fmt.Sprintf("%s%s?since=%d", ts.URL, server.PathDecisions, page.Next))
		if err != nil {
			t.Fatal(err)
		}
		var next decisionsPage
		if err := json.NewDecoder(resp.Body).Decode(&next); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(next.Decisions) == 0 {
			break
		}
		total += len(next.Decisions)
		page = next
	}
	if total != len(specs)+1 { // the batch plus the accepted id-900001 singleton
		t.Fatalf("paged through %d merged decisions, want %d", total, len(specs)+1)
	}

	// Aggregated status: both shards visible, region union complete.
	var st Status
	resp, err = http.Get(ts.URL + server.PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shards != 2 || len(st.ShardStatus) != 2 || len(st.Free) != len(env.IDs()) {
		t.Fatalf("status: shards=%d shard_status=%d free=%d", st.Shards, len(st.ShardStatus), len(st.Free))
	}
	if st.Scheduler != "waterwise" || st.Merged != uint64(total) {
		t.Fatalf("status: %+v", st)
	}

	// Metrics carry per-shard labels plus fleet-level merge counters.
	resp, err = http.Get(ts.URL + server.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, key := range []string{
		"waterwise_fleet_shards 2",
		fmt.Sprintf("waterwise_fleet_merged_decisions_total %d", total),
		"waterwise_fleet_lost_decisions_total 0",
		`waterwise_jobs_accepted_total{shard="0"}`,
		`waterwise_jobs_accepted_total{shard="1"}`,
		`waterwise_decisions_total{shard="1"}`,
		`,shard="0"}`,
		// One feed block for the whole fleet (shared provider), not one
		// per shard.
		`waterwise_feed_staleness_seconds{provider="synthetic"} 0`,
	} {
		if !strings.Contains(raw.String(), key) {
			t.Errorf("metrics missing %q:\n%s", key, raw.String())
		}
	}

	// Submissions after Stop are refused with 503 through the gateway.
	fl.Stop()
	if _, code := post(server.JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart}); code != http.StatusServiceUnavailable {
		t.Errorf("submit after stop: status %d, want 503", code)
	}
}

// TestFleetSubmitTypedErrors pins the typed rejection causes at the Go
// API level: the gateway's own unknown-region rejection and the shard's
// backpressure both surface as errors.Is-matchable values.
func TestFleetSubmitTypedErrors(t *testing.T) {
	env := testEnv(t)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: 2,
		Tolerance: 0.5, Round: time.Minute, QueueCap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if _, err := fl.Submit(server.JobSpec{Benchmark: "canneal", Home: "atlantis", Submit: testStart}); !errors.Is(err, server.ErrUnknownRegion) {
		t.Errorf("unknown region: %v", err)
	}
	spec := server.JobSpec{Benchmark: "canneal", Home: region.Zurich, Submit: testStart}
	if _, err := fl.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Submit(spec); !errors.Is(err, server.ErrQueueFull) {
		t.Errorf("over-cap submit: %v", err)
	}
	// The sibling shard's queue is independent: backpressure on one shard
	// does not reject jobs homed on another.
	other := env.IDs()[1]
	if own0, _ := fl.Owner(region.Zurich); own0 == func() int { s, _ := fl.Owner(other); return s }() {
		t.Fatalf("test setup: %s and %s share a shard", region.Zurich, other)
	}
	if _, err := fl.Submit(server.JobSpec{Benchmark: "canneal", Home: other, Submit: testStart}); err != nil {
		t.Errorf("sibling shard rejected: %v", err)
	}
}

// TestPartitionAssignment covers the shard map: pinning, balanced dealing
// of unpinned regions, and the misconfiguration rejections.
func TestPartitionAssignment(t *testing.T) {
	env := testEnv(t)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: 2,
		ShardMap:  map[region.ID]int{region.Mumbai: 0, region.Zurich: 1},
		Tolerance: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if own, _ := fl.Owner(region.Mumbai); own != 0 {
		t.Errorf("mumbai pinned to 0, owned by %d", own)
	}
	if own, _ := fl.Owner(region.Zurich); own != 1 {
		t.Errorf("zurich pinned to 1, owned by %d", own)
	}
	parts := fl.Partitions()
	if len(parts[0])+len(parts[1]) != len(env.IDs()) {
		t.Fatalf("partitions %v do not cover the environment", parts)
	}
	// Balanced dealing: 5 regions over 2 shards splits 3/2.
	if len(parts[0]) < 2 || len(parts[1]) < 2 {
		t.Errorf("unbalanced partitions %v", parts)
	}

	bad := []Config{
		{Env: env, NewScheduler: coreFactory(t), Shards: 6},
		{Env: env, NewScheduler: coreFactory(t), Shards: 2, ShardMap: map[region.ID]int{"atlantis": 0}},
		{Env: env, NewScheduler: coreFactory(t), Shards: 2, ShardMap: map[region.ID]int{region.Zurich: 5}},
		{Env: env, NewScheduler: coreFactory(t), Shards: 5, ShardMap: map[region.ID]int{
			region.Zurich: 0, region.Madrid: 0, region.Oregon: 0, region.Milan: 0, region.Mumbai: 0,
		}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
