package fleet

import (
	"net/http"
	"sort"
	"time"

	"waterwise/internal/server"
)

// timedIngest wraps the gateway jobs handler to record its wall time
// into the fleet's ingest histogram.
func (f *Fleet) timedIngest(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if f.ingest == nil || r.Method != http.MethodPost {
			h(w, r)
			return
		}
		t0 := time.Now()
		h(w, r)
		f.ingest.Record(time.Since(t0).Seconds())
	}
}

// ObsSnapshots returns the fleet-merged histogram counters: every
// shard's snapshots summed bucket-by-bucket (the merge the bucketing
// scheme was designed for — all histograms share one boundary set, so
// addition is exact). Nil when observability is disabled.
func (f *Fleet) ObsSnapshots() *server.ObsSnapshots {
	var merged *server.ObsSnapshots
	for _, s := range f.shardList() {
		snaps := s.ObsSnapshots()
		if snaps == nil {
			continue
		}
		if merged == nil {
			merged = snaps
			continue
		}
		merged.Merge(snaps)
	}
	if merged != nil && f.ingest != nil {
		// Jobs enter through the gateway, so its ingest histogram joins
		// the (shard-HTTP-only) shard ingest counters.
		merged.Ingest.Merge(f.ingest.Snapshot())
	}
	return merged
}

// ShardObsSnapshots returns each shard's own histogram counters,
// indexed by shard (entries nil when observability is disabled).
func (f *Fleet) ShardObsSnapshots() []*server.ObsSnapshots {
	shards := f.shardList()
	out := make([]*server.ObsSnapshots, len(shards))
	for i, s := range shards {
		out[i] = s.ObsSnapshots()
	}
	return out
}

// SlowestRounds returns the slowest scheduling rounds across every
// shard, slowest first, each stamped with its owning shard — the
// fleet's /v1/rounds/slowest view. Nil when observability is disabled.
func (f *Fleet) SlowestRounds() []server.RoundTraceWire {
	var out []server.RoundTraceWire
	enabled := false
	for i, s := range f.shardList() {
		rts := s.SlowestRounds()
		if s.JobSampleEvery() != 0 || rts != nil {
			enabled = true
		}
		for _, rt := range rts {
			w := server.WireRoundTrace(rt)
			shard := i
			w.Shard = &shard
			out = append(out, w)
		}
	}
	if !enabled {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMs > out[j].TotalMs })
	if cap := f.slowestCap(); len(out) > cap {
		out = out[:cap]
	}
	return out
}

// RecentRounds returns up to n of the fleet's latest rounds, newest
// first across shards (n <= 0 means every retained round). Nil when
// observability is disabled.
func (f *Fleet) RecentRounds(n int) []server.RoundTraceWire {
	var out []server.RoundTraceWire
	enabled := false
	for i, s := range f.shardList() {
		rts := s.RecentRounds(n)
		if rts != nil {
			enabled = true
		}
		for _, rt := range rts {
			w := server.WireRoundTrace(rt)
			shard := i
			w.Shard = &shard
			out = append(out, w)
		}
	}
	if !enabled {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wall.After(out[j].Wall) })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// slowestCap bounds the merged slowest view to the same exemplar count
// each shard retains.
func (f *Fleet) slowestCap() int {
	if f.cfg.Obs.SlowestRounds > 0 {
		return f.cfg.Obs.SlowestRounds
	}
	return 32
}

// JobTrace scans the shards for a sampled job's lifecycle trace —
// the fleet's /v1/jobs/{id}/trace view. Job ids are fleet-unique, so at
// most one shard answers.
func (f *Fleet) JobTrace(id int) (server.JobTraceResponse, bool) {
	for i, s := range f.shardList() {
		if jt, ok := s.JobTrace(id); ok {
			shard := i
			return server.JobTraceResponse{
				Shard: &shard, Trace: jt, SampleEvery: s.JobSampleEvery(),
			}, true
		}
	}
	return server.JobTraceResponse{}, false
}
