package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"testing"
	"time"

	"waterwise/internal/server"
)

// TestSupervisorAutoFailover is the failover acceptance test: a shard of
// a supervised fleet crash-stops mid-run — not via KillShard, but the
// way a real process dies, with the fleet never told — and the
// supervisor alone must detect the death, mark the shard dead, and
// restart it from its write-ahead log. No external RestartShard call is
// ever made. The merged stream must come out decision-for-decision
// identical to an undisturbed reference fleet, with dense global seqs,
// zero lost decisions, and the restart counted in the status and
// metrics surfaces.
func TestSupervisorAutoFailover(t *testing.T) {
	const round = time.Minute
	env := testEnv(t)
	jobs := genTrace(t, env, 2000, 24)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	// Uninterrupted, unsupervised reference.
	ref, err := New(Config{Env: env, NewScheduler: coreFactory(t), Shards: 2, Tolerance: 0.5, Round: round})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	for _, j := range jobs {
		if _, err := ref.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	ref.Start()
	if err := ref.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	want := ref.Decisions(0, 0)

	// Supervised durable fleet, throttled so the crash lands mid-run.
	fl, err := New(Config{
		Env: testEnv(t), NewScheduler: throttledFactory(t, 500*time.Microsecond), Shards: 2,
		Tolerance: 0.5, Round: round, DataDir: t.TempDir(), SnapshotEvery: 100,
		Supervisor: &SupervisorConfig{
			Interval: time.Millisecond, FailThreshold: 2,
			BackoffMin: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	ts := httptest.NewServer(fl.Handler())
	defer ts.Close()
	for _, j := range jobs {
		if _, err := fl.Submit(specFor(j)); err != nil {
			t.Fatal(err)
		}
	}
	fl.Start()
	victim := fl.Shard(0)
	for victim.Status().Decisions < 100 {
		runtime.Gosched()
	}
	// Crash the server directly — the fleet is not told (no KillShard);
	// only the supervisor's health probe can notice.
	victim.Crash()
	st0 := victim.Status()
	if st0.Decisions >= st0.Accepted {
		t.Fatalf("crash landed after shard 0 finished (%d/%d decisions); nothing to fail over",
			st0.Decisions, st0.Accepted)
	}
	deadline := time.Now().Add(10 * time.Second)
	for fl.Restarts() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never restarted the crashed shard")
		}
		time.Sleep(time.Millisecond)
	}
	if rst := fl.Shard(0).Status(); rst.WAL == nil || (!rst.WAL.RecoveredSnapshot && rst.WAL.RecoveredRecords == 0) {
		t.Fatalf("supervised restart recovered nothing: %+v", rst.WAL)
	}
	if err := fl.Drain(ctx); err != nil {
		t.Fatalf("drain after failover: %v", err)
	}
	got := fl.Decisions(0, 0)
	sameMergedStream(t, got, want)
	for i, d := range got {
		if d.Seq != uint64(i)+1 {
			t.Fatalf("global seq gap: decision %d has seq %d", i, d.Seq)
		}
	}

	st := fl.Status()
	if st.Lost != 0 {
		t.Fatalf("merge lost %d decisions across the failover", st.Lost)
	}
	if st.Supervisor == nil || st.Supervisor.Restarts < 1 {
		t.Fatalf("status supervisor block missing the restart: %+v", st.Supervisor)
	}
	if s0 := st.Supervisor.Shards[0]; s0.State != "up" || s0.Restarts < 1 {
		t.Fatalf("shard 0 supervision state: %+v", s0)
	}

	// The restart shows in the metrics exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := regexp.MustCompile(`(?m)^waterwise_fleet_restarts_total (\d+)$`).FindSubmatch(body)
	if m == nil {
		t.Fatal("metrics exposition missing waterwise_fleet_restarts_total")
	}
	if n, _ := strconv.Atoi(string(m[1])); n < 1 {
		t.Fatalf("waterwise_fleet_restarts_total = %d, want >= 1", n)
	}
	if !bytes.Contains(body, []byte(`waterwise_fleet_shard_up{shard="0"} 1`)) {
		t.Fatal("metrics exposition missing the recovered shard's up gauge")
	}
}

// TestGatewayDeadShardOverflowHTTP is the end-to-end backpressure test:
// during a kill window the gateway's HTTP ingest keeps accepting the
// dead shard's submissions into the bounded buffer, answers 429 once the
// buffer is full, and flushes the buffered jobs — all of them decided,
// global seqs dense — when the shard restarts.
func TestGatewayDeadShardOverflowHTTP(t *testing.T) {
	env := testEnv(t)
	fl, err := New(Config{
		Env: env, NewScheduler: coreFactory(t), Shards: 2,
		Tolerance: 0.5, Round: time.Minute, DataDir: t.TempDir(), QueueCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	ts := httptest.NewServer(fl.Handler())
	defer ts.Close()
	post := func(spec server.JobSpec) (server.SubmitResponse, int) {
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+server.PathJobs, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr server.SubmitResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		return sr, resp.StatusCode
	}

	deadHome := fl.Partitions()[0][0]
	if err := fl.KillShard(0); err != nil {
		t.Fatal(err)
	}
	buffered := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		sr, code := post(server.JobSpec{Benchmark: "canneal", Home: deadHome, Submit: testStart.Add(time.Hour)})
		if code != http.StatusAccepted || len(sr.Accepted) != 1 {
			t.Fatalf("buffered submit %d during kill window: status %d, %+v", i, code, sr)
		}
		buffered = append(buffered, sr.Accepted[0])
	}
	if _, code := post(server.JobSpec{Benchmark: "canneal", Home: deadHome, Submit: testStart.Add(time.Hour)}); code != http.StatusTooManyRequests {
		t.Fatalf("buffer overflow through the gateway: status %d, want 429", code)
	}

	if err := fl.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	decided := make(map[int]bool)
	for i, d := range fl.Decisions(0, 0) {
		if d.Seq != uint64(i)+1 {
			t.Fatalf("global seq gap after flush: decision %d has seq %d", i, d.Seq)
		}
		decided[d.JobID] = true
	}
	for _, id := range buffered {
		if !decided[id] {
			t.Fatalf("buffered job %d never decided after restart", id)
		}
	}
	if errors.Is(fl.Err(), server.ErrStopped) {
		t.Fatal("fleet still reports the crash after restart")
	}
}
