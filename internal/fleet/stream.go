package fleet

import (
	"net"

	"waterwise/internal/region"
	"waterwise/internal/server"
	"waterwise/internal/wire"
)

// The fleet gateway speaks the same wire protocol as a single server:
// submits fan out to shards by home region through the usual routing
// (including dead-shard buffering), and pushed decisions come from the
// k-way-merged global stream, so clients see one dense seq space with
// shard coordinates attached.

// StreamSubmit implements server.StreamBackend: route the job to its
// home shard exactly like POST /v1/jobs on the gateway.
func (f *Fleet) StreamSubmit(spec server.JobSpec) (int, error) { return f.Submit(spec) }

// StreamDecisions implements server.StreamBackend over the merged
// global decision stream.
func (f *Fleet) StreamDecisions(since uint64, limit int, dst []wire.Decision) ([]wire.Decision, uint64) {
	page := f.Decisions(since, limit)
	next := since
	for i := range page {
		d := &page[i]
		dst = append(dst, server.WireDecision(d.Decision, uint32(d.Shard), d.ShardSeq))
	}
	if len(page) > 0 {
		next = page[len(page)-1].Seq
	}
	return dst, next
}

// StreamInfo implements server.StreamBackend: merged-log bounds plus
// the full fleet region set.
func (f *Fleet) StreamInfo() (last, oldest uint64, regions []region.ID) {
	f.mu.Lock()
	f.mergeLocked()
	last = f.seq
	if n := len(f.merged); n > 0 {
		oldest = f.merged[f.head%n].Seq
	}
	f.mu.Unlock()
	return last, oldest, f.cfg.Env.IDs()
}

// ServeStream starts a stream listener for this fleet's gateway on ln.
func (f *Fleet) ServeStream(ln net.Listener, opts server.StreamOptions) *server.StreamListener {
	return server.NewStreamListener(ln, f, opts)
}
