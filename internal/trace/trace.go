// Package trace defines the job model and synthesizes job-arrival traces in
// the style of the two production traces the WaterWise paper replays:
//
//   - Google Borg cluster trace [57]: ~230,000 jobs over ten days, with
//     diurnal and weekly arrival-rate modulation;
//   - Alibaba VM cloud trace [52]: ~8.5x Borg's invocation rate, with
//     burstier (Markov-modulated) arrivals.
//
// The real traces are not redistributable, so the generators reproduce the
// statistics the scheduler actually observes: arrival rate, its temporal
// modulation, the benchmark/job-size distribution, and home-region
// assignment. Traces round-trip through a CSV format for the tracegen tool.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"waterwise/internal/region"
	"waterwise/internal/stats"
	"waterwise/internal/units"
	"waterwise/internal/workload"
)

// Job is one batch job to be scheduled. The scheduler sees Submit,
// Benchmark, Home, and the *estimates*; Duration and Energy are the ground
// truth only the simulator may read.
type Job struct {
	// ID is the unique job identifier within a trace.
	ID int
	// Submit is the arrival time at the job's home region.
	Submit time.Time
	// Benchmark names the workload profile this job runs.
	Benchmark string
	// Home is the region where the user submitted the job.
	Home region.ID
	// Duration is the realized execution time (ground truth).
	Duration time.Duration
	// Energy is the realized IT energy consumption (ground truth).
	Energy units.KWh
	// EstDuration is the controller's estimate from previous executions.
	EstDuration time.Duration
	// EstEnergy is the controller's energy estimate.
	EstEnergy units.KWh
}

// Config parameterizes trace generation.
type Config struct {
	// Start is the submission time of the first possible job.
	Start time.Time
	// Duration is the span over which jobs arrive.
	Duration time.Duration
	// JobsPerDay is the mean arrival rate (before burst modulation).
	JobsPerDay float64
	// Regions are the candidate home regions, drawn uniformly.
	Regions []region.ID
	// Benchmarks restricts the workload profiles; empty means all of
	// Table 1.
	Benchmarks []string
	// DurationScale multiplies every sampled execution time (1.0 if zero);
	// the paper-scale runs use it to hit the reported 15% utilization.
	DurationScale float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Duration <= 0 {
		return c, fmt.Errorf("trace: non-positive duration %v", c.Duration)
	}
	if c.JobsPerDay <= 0 {
		return c, fmt.Errorf("trace: non-positive arrival rate %g", c.JobsPerDay)
	}
	if len(c.Regions) == 0 {
		return c, fmt.Errorf("trace: no home regions")
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = workload.Names()
	}
	if c.DurationScale == 0 {
		c.DurationScale = 1
	}
	for _, b := range c.Benchmarks {
		if _, err := workload.Lookup(b); err != nil {
			return c, err
		}
	}
	return c, nil
}

// GenerateBorgLike produces a Borg-style trace: Poisson arrivals whose rate
// follows a diurnal curve (daytime peak, overnight trough) and a weekly
// curve (weekend dip), as observed in the Google trace.
func GenerateBorgLike(cfg Config) ([]*Job, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := stats.NewRand(cfg.Seed)
	ratePerMin := cfg.JobsPerDay / (24 * 60)
	var jobs []*Job
	minutes := int(cfg.Duration / time.Minute)
	for m := 0; m < minutes; m++ {
		t := cfg.Start.Add(time.Duration(m) * time.Minute)
		lambda := ratePerMin * diurnalFactor(t) * weeklyFactor(t)
		n := rng.Poisson(lambda)
		for k := 0; k < n; k++ {
			at := t.Add(time.Duration(rng.Float64() * float64(time.Minute)))
			jobs = append(jobs, sampleJob(cfg, rng, len(jobs), at))
		}
	}
	sortJobs(jobs)
	renumber(jobs)
	return jobs, nil
}

// GenerateAlibabaLike produces an Alibaba-style trace: 8.5x the Borg rate by
// default at the same JobsPerDay semantics (the caller passes the scaled
// rate), with Markov-modulated bursts — the process alternates between a
// calm state and a burst state with 4x the calm rate.
func GenerateAlibabaLike(cfg Config) ([]*Job, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := stats.NewRand(cfg.Seed)
	// Choose calm/burst rates so the long-run mean matches JobsPerDay:
	// burst state is active ~20% of minutes at 4x the calm rate.
	const (
		burstProb = 0.20
		burstMult = 4.0
	)
	calmRate := cfg.JobsPerDay / (24 * 60) / (1 - burstProb + burstProb*burstMult)
	inBurst := false
	var jobs []*Job
	minutes := int(cfg.Duration / time.Minute)
	for m := 0; m < minutes; m++ {
		t := cfg.Start.Add(time.Duration(m) * time.Minute)
		// Markov transitions tuned for ~20% burst occupancy with mean
		// burst length ~10 minutes.
		if inBurst {
			if rng.Float64() < 0.10 {
				inBurst = false
			}
		} else if rng.Float64() < 0.025 {
			inBurst = true
		}
		lambda := calmRate * diurnalFactor(t)
		if inBurst {
			lambda *= burstMult
		}
		n := rng.Poisson(lambda)
		for k := 0; k < n; k++ {
			at := t.Add(time.Duration(rng.Float64() * float64(time.Minute)))
			jobs = append(jobs, sampleJob(cfg, rng, len(jobs), at))
		}
	}
	sortJobs(jobs)
	renumber(jobs)
	return jobs, nil
}

// sampleJob draws one job: benchmark, home region, and actuals vs estimates.
func sampleJob(cfg Config, rng *stats.Rand, id int, at time.Time) *Job {
	name := cfg.Benchmarks[rng.Intn(len(cfg.Benchmarks))]
	p, _ := workload.Lookup(name) // validated in withDefaults
	act := p.Sample(rng)
	dur := time.Duration(float64(act.Duration) * cfg.DurationScale)
	if dur < time.Second {
		dur = time.Second
	}
	energy := units.KWh(float64(act.Energy) * cfg.DurationScale)
	return &Job{
		ID:          id,
		Submit:      at,
		Benchmark:   name,
		Home:        cfg.Regions[rng.Intn(len(cfg.Regions))],
		Duration:    dur,
		Energy:      energy,
		EstDuration: time.Duration(float64(p.MeanDuration) * cfg.DurationScale),
		EstEnergy:   units.KWh(float64(p.MeanEnergy()) * cfg.DurationScale),
	}
}

// diurnalFactor modulates arrival rate over the day: peak mid-afternoon at
// ~1.5x, trough pre-dawn at ~0.5x, mean 1.
func diurnalFactor(t time.Time) float64 {
	hod := float64(t.Hour()) + float64(t.Minute())/60
	return 1 + 0.5*math.Cos(2*math.Pi*(hod-15)/24)
}

// weeklyFactor dips weekends to 70% and lifts weekdays so the weekly mean
// stays 1.
func weeklyFactor(t time.Time) float64 {
	switch t.Weekday() {
	case time.Saturday, time.Sunday:
		return 0.70
	default:
		return (7 - 2*0.70) / 5
	}
}

func sortJobs(jobs []*Job) {
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].Submit.Equal(jobs[j].Submit) {
			return jobs[i].ID < jobs[j].ID
		}
		return jobs[i].Submit.Before(jobs[j].Submit)
	})
}

func renumber(jobs []*Job) {
	for i, j := range jobs {
		j.ID = i
	}
}

// csvHeader is the column layout of the trace CSV format.
var csvHeader = []string{"id", "submit_unix_ms", "benchmark", "home", "duration_ms", "energy_kwh", "est_duration_ms", "est_energy_kwh"}

// WriteCSV encodes jobs in the trace CSV format.
func WriteCSV(w io.Writer, jobs []*Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, j := range jobs {
		rec := []string{
			strconv.Itoa(j.ID),
			strconv.FormatInt(j.Submit.UnixMilli(), 10),
			j.Benchmark,
			string(j.Home),
			strconv.FormatInt(j.Duration.Milliseconds(), 10),
			strconv.FormatFloat(float64(j.Energy), 'g', -1, 64),
			strconv.FormatInt(j.EstDuration.Milliseconds(), 10),
			strconv.FormatFloat(float64(j.EstEnergy), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]*Job, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != "id" {
		return nil, fmt.Errorf("trace: unrecognized header %v", header)
	}
	var jobs []*Job
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		j, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func parseRecord(rec []string) (*Job, error) {
	if len(rec) != len(csvHeader) {
		return nil, fmt.Errorf("want %d fields, got %d", len(csvHeader), len(rec))
	}
	id, err := strconv.Atoi(rec[0])
	if err != nil {
		return nil, fmt.Errorf("id: %w", err)
	}
	submitMs, err := strconv.ParseInt(rec[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	durMs, err := strconv.ParseInt(rec[4], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("duration: %w", err)
	}
	energy, err := strconv.ParseFloat(rec[5], 64)
	if err != nil {
		return nil, fmt.Errorf("energy: %w", err)
	}
	estDurMs, err := strconv.ParseInt(rec[6], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("est duration: %w", err)
	}
	estEnergy, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return nil, fmt.Errorf("est energy: %w", err)
	}
	return &Job{
		ID:          id,
		Submit:      time.UnixMilli(submitMs).UTC(),
		Benchmark:   rec[2],
		Home:        region.ID(rec[3]),
		Duration:    time.Duration(durMs) * time.Millisecond,
		Energy:      units.KWh(energy),
		EstDuration: time.Duration(estDurMs) * time.Millisecond,
		EstEnergy:   units.KWh(estEnergy),
	}, nil
}
