package trace

import (
	"fmt"
	"time"

	"waterwise/internal/stats"
)

// Arrival programs beyond the two production replicas: the scenario
// harness (internal/scenario) composes a trace from an arrival program
// and a fault schedule, and steady and flash-crowd arrivals are the
// shapes faults are easiest to reason about under — a flat baseline
// makes an injected outage's effect legible, and a flash crowd is
// itself the load-side fault.

// GenerateSteady produces a flat-rate trace: homogeneous Poisson
// arrivals at JobsPerDay with no diurnal or weekly modulation. The
// control program — SLO numbers measured under it isolate the fault
// schedule's effect from arrival-rate swings.
func GenerateSteady(cfg Config) ([]*Job, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := stats.NewRand(cfg.Seed)
	ratePerMin := cfg.JobsPerDay / (24 * 60)
	var jobs []*Job
	minutes := int(cfg.Duration / time.Minute)
	for m := 0; m < minutes; m++ {
		t := cfg.Start.Add(time.Duration(m) * time.Minute)
		n := rng.Poisson(ratePerMin)
		for k := 0; k < n; k++ {
			at := t.Add(time.Duration(rng.Float64() * float64(time.Minute)))
			jobs = append(jobs, sampleJob(cfg, rng, len(jobs), at))
		}
	}
	sortJobs(jobs)
	renumber(jobs)
	return jobs, nil
}

// FlashConfig parameterizes GenerateFlashCrowd: a steady baseline with
// one rate spike — the retry storm / viral event / failover stampede
// shape that stresses admission control.
type FlashConfig struct {
	Config
	// FlashAt is the spike onset as an offset from Config.Start (must lie
	// inside Config.Duration).
	FlashAt time.Duration
	// FlashDuration is how long the spike lasts (default 10 minutes).
	FlashDuration time.Duration
	// FlashMult multiplies the baseline rate during the spike (default 10).
	FlashMult float64
}

// GenerateFlashCrowd produces a steady-baseline trace with one flash
// crowd: arrivals at FlashMult times the baseline rate for
// FlashDuration starting at Start+FlashAt.
func GenerateFlashCrowd(fc FlashConfig) ([]*Job, error) {
	cfg, err := fc.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	if fc.FlashDuration <= 0 {
		fc.FlashDuration = 10 * time.Minute
	}
	if fc.FlashMult <= 0 {
		fc.FlashMult = 10
	}
	if fc.FlashAt < 0 || fc.FlashAt >= cfg.Duration {
		return nil, fmt.Errorf("trace: flash onset %v outside trace span %v", fc.FlashAt, cfg.Duration)
	}
	rng := stats.NewRand(cfg.Seed)
	ratePerMin := cfg.JobsPerDay / (24 * 60)
	spikeFrom := cfg.Start.Add(fc.FlashAt)
	spikeTo := spikeFrom.Add(fc.FlashDuration)
	var jobs []*Job
	minutes := int(cfg.Duration / time.Minute)
	for m := 0; m < minutes; m++ {
		t := cfg.Start.Add(time.Duration(m) * time.Minute)
		lambda := ratePerMin
		if !t.Before(spikeFrom) && t.Before(spikeTo) {
			lambda *= fc.FlashMult
		}
		n := rng.Poisson(lambda)
		for k := 0; k < n; k++ {
			at := t.Add(time.Duration(rng.Float64() * float64(time.Minute)))
			jobs = append(jobs, sampleJob(cfg, rng, len(jobs), at))
		}
	}
	sortJobs(jobs)
	renumber(jobs)
	return jobs, nil
}
