package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/region"
	"waterwise/internal/stats"
)

var testStart = time.Date(2023, 7, 3, 0, 0, 0, 0, time.UTC) // a Monday

func testConfig() Config {
	return Config{
		Start:      testStart,
		Duration:   48 * time.Hour,
		JobsPerDay: 2000,
		Regions:    []region.ID{region.Zurich, region.Oregon, region.Mumbai},
		Seed:       11,
	}
}

func TestBorgLikeBasics(t *testing.T) {
	jobs, err := GenerateBorgLike(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	expected := 2.0 * 2000
	if f := float64(len(jobs)); f < expected*0.85 || f > expected*1.15 {
		t.Errorf("job count %d, want within 15%% of %g", len(jobs), expected)
	}
	end := testStart.Add(48 * time.Hour)
	seenIDs := map[int]bool{}
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("jobs not renumbered: jobs[%d].ID = %d", i, j.ID)
		}
		if seenIDs[j.ID] {
			t.Fatalf("duplicate job ID %d", j.ID)
		}
		seenIDs[j.ID] = true
		if j.Submit.Before(testStart) || j.Submit.After(end) {
			t.Fatalf("job %d submitted at %v outside window", j.ID, j.Submit)
		}
		if i > 0 && j.Submit.Before(jobs[i-1].Submit) {
			t.Fatalf("jobs not sorted at %d", i)
		}
		if j.Duration <= 0 || j.Energy <= 0 || j.EstDuration <= 0 || j.EstEnergy <= 0 {
			t.Fatalf("job %d has non-positive size fields: %+v", j.ID, j)
		}
	}
}

func TestBorgLikeDiurnalShape(t *testing.T) {
	cfg := testConfig()
	cfg.JobsPerDay = 20000 // plenty of samples
	jobs, err := GenerateBorgLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byHour := make([]int, 24)
	for _, j := range jobs {
		byHour[j.Submit.Hour()]++
	}
	afternoon := byHour[14] + byHour[15] + byHour[16]
	night := byHour[2] + byHour[3] + byHour[4]
	if afternoon <= night {
		t.Errorf("diurnal shape missing: afternoon %d <= night %d", afternoon, night)
	}
}

func TestAlibabaLikeBurstier(t *testing.T) {
	cfg := testConfig()
	cfg.JobsPerDay = 10000
	borg, err := GenerateBorgLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ali, err := GenerateAlibabaLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rates should be comparable (same JobsPerDay semantics)...
	if r := float64(len(ali)) / float64(len(borg)); r < 0.7 || r > 1.3 {
		t.Errorf("alibaba/borg volume ratio = %.2f, want ~1", r)
	}
	// ...but the per-minute arrival counts should have a higher coefficient
	// of variation (burstiness).
	cv := func(jobs []*Job) float64 {
		counts := map[int]float64{}
		for _, j := range jobs {
			counts[int(j.Submit.Sub(testStart)/time.Minute)]++
		}
		var xs []float64
		minutes := int(cfg.Duration / time.Minute)
		for m := 0; m < minutes; m++ {
			xs = append(xs, counts[m])
		}
		return stats.StdDev(xs) / stats.Mean(xs)
	}
	if cvB, cvA := cv(borg), cv(ali); cvA <= cvB {
		t.Errorf("alibaba CV %.3f should exceed borg CV %.3f", cvA, cvB)
	}
}

func TestDurationScale(t *testing.T) {
	cfg := testConfig()
	cfg.DurationScale = 0.5
	half, err := GenerateBorgLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DurationScale = 1
	full, err := GenerateBorgLike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(jobs []*Job) float64 {
		s := 0.0
		for _, j := range jobs {
			s += j.Duration.Minutes()
		}
		return s / float64(len(jobs))
	}
	if r := mean(half) / mean(full); math.Abs(r-0.5) > 0.05 {
		t.Errorf("scaled/full duration ratio = %.3f, want ~0.5", r)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.Duration = 0
	if _, err := GenerateBorgLike(bad); err == nil {
		t.Error("zero duration accepted")
	}
	bad = testConfig()
	bad.JobsPerDay = -5
	if _, err := GenerateBorgLike(bad); err == nil {
		t.Error("negative rate accepted")
	}
	bad = testConfig()
	bad.Regions = nil
	if _, err := GenerateBorgLike(bad); err == nil {
		t.Error("no regions accepted")
	}
	bad = testConfig()
	bad.Benchmarks = []string{"quake3"}
	if _, err := GenerateBorgLike(bad); err == nil {
		t.Error("unknown benchmark accepted")
	}
	bad = testConfig()
	bad.Benchmarks = []string{"dedup"}
	jobs, err := GenerateBorgLike(bad)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Benchmark != "dedup" {
			t.Fatalf("benchmark restriction ignored: %s", j.Benchmark)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := GenerateBorgLike(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBorgLike(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs despite same seed", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	jobs, err := GenerateBorgLike(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	jobs = jobs[:100]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.ID != b.ID || a.Benchmark != b.Benchmark || a.Home != b.Home {
			t.Fatalf("job %d identity fields differ: %+v vs %+v", i, a, b)
		}
		if !a.Submit.Truncate(time.Millisecond).Equal(b.Submit) {
			t.Fatalf("job %d submit differs: %v vs %v", i, a.Submit, b.Submit)
		}
		if a.Duration.Truncate(time.Millisecond) != b.Duration {
			t.Fatalf("job %d duration differs", i)
		}
		if math.Abs(float64(a.Energy-b.Energy)) > 1e-12 {
			t.Fatalf("job %d energy differs", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("bad header accepted")
	}
	good := "id,submit_unix_ms,benchmark,home,duration_ms,energy_kwh,est_duration_ms,est_energy_kwh\n"
	if _, err := ReadCSV(strings.NewReader(good + "x,0,dedup,zurich,1,1,1,1\n")); err == nil {
		t.Error("non-numeric id accepted")
	}
	if _, err := ReadCSV(strings.NewReader(good + "0,zzz,dedup,zurich,1,1,1,1\n")); err == nil {
		t.Error("non-numeric submit accepted")
	}
	if _, err := ReadCSV(strings.NewReader(good + "0,0,dedup,zurich,bad,1,1,1\n")); err == nil {
		t.Error("non-numeric duration accepted")
	}
}

// Property: generated traces are always sorted, renumbered, with homes from
// the configured region set.
func TestQuickTraceInvariants(t *testing.T) {
	regions := []region.ID{region.Zurich, region.Milan}
	f := func(seed int64) bool {
		cfg := Config{
			Start: testStart, Duration: 6 * time.Hour, JobsPerDay: 1500,
			Regions: regions, Seed: seed,
		}
		jobs, err := GenerateBorgLike(cfg)
		if err != nil {
			return false
		}
		for i, j := range jobs {
			if j.ID != i {
				return false
			}
			if i > 0 && j.Submit.Before(jobs[i-1].Submit) {
				return false
			}
			if j.Home != region.Zurich && j.Home != region.Milan {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
