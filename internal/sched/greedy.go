package sched

import (
	"math"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
)

// Objective selects which footprint a greedy oracle minimizes.
type Objective int

const (
	// MinCarbon minimizes the carbon footprint (Carbon-Greedy-Opt).
	MinCarbon Objective = iota
	// MinWater minimizes the water footprint (Water-Greedy-Opt).
	MinWater
)

// GreedyOpt is the paper's Carbon-Greedy-Opt / Water-Greedy-Opt: an
// infeasible oracle that knows each job's true execution time and the
// future carbon/water intensity of every region. For each job it
// brute-forces the (region x start-delay) space within the delay-tolerance
// bound and greedily commits the single-objective optimum. It is greedy,
// not globally optimal: like the paper's scheme, it decides jobs in arrival
// order without knowledge of future arrivals.
type GreedyOpt struct {
	obj Objective
	// delaySteps is the number of deliberate-delay candidates probed per
	// region within the slack budget.
	delaySteps int
}

// NewCarbonGreedyOpt returns the carbon-minimizing oracle.
func NewCarbonGreedyOpt() *GreedyOpt { return &GreedyOpt{obj: MinCarbon, delaySteps: 8} }

// NewWaterGreedyOpt returns the water-minimizing oracle.
func NewWaterGreedyOpt() *GreedyOpt { return &GreedyOpt{obj: MinWater, delaySteps: 8} }

// Name implements cluster.Scheduler.
func (g *GreedyOpt) Name() string {
	if g.obj == MinCarbon {
		return "carbon-greedy-opt"
	}
	return "water-greedy-opt"
}

// Schedule implements cluster.Scheduler.
func (g *GreedyOpt) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	ids := ctx.Env.IDs()
	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	// Intra-batch capacity commitments, approximated per region: FreeAt
	// reflects only prior rounds.
	committed := make(map[region.ID]int, len(ids))

	for _, pj := range ctx.Jobs {
		job := pj.Job
		pkg := packageMB(job)
		// Oracle privilege: use the true duration and energy.
		dur, energy := job.Duration, job.Energy
		// Remaining slack: the tolerance budget minus time already spent
		// waiting (submission-to-now), with a 5% safety margin so tick
		// quantization cannot push the job over its tolerance.
		slack := time.Duration(0.95*ctx.Tolerance*float64(dur)) - ctx.Now.Sub(job.Submit)

		bestScore := math.Inf(1)
		var bestRegion region.ID
		var bestStart time.Time
		found := false

		for _, id := range ids {
			lat := ctx.Net.Latency(job.Home, id, pkg)
			maxDelay := slack - lat
			if maxDelay < 0 {
				if id == job.Home {
					maxDelay = 0 // home is always reachable immediately
				} else {
					continue // migrating alone would violate the tolerance
				}
			}
			for k := 0; k <= g.delaySteps; k++ {
				delay := time.Duration(float64(maxDelay) * float64(k) / float64(g.delaySteps))
				start := ctx.Now.Add(lat + delay)
				if ctx.FreeAt(id, start, dur)-committed[id] <= 0 {
					continue
				}
				carbon, water, ok := estimate(ctx, id, start, energy, dur)
				if !ok {
					continue
				}
				score := float64(carbon)
				if g.obj == MinWater {
					score = float64(water)
				}
				if score < bestScore {
					bestScore = score
					bestRegion = id
					bestStart = start
					found = true
				}
			}
		}
		if !found {
			// All regions saturated: fall back to home now; the simulator
			// will queue the job there.
			bestRegion = job.Home
			bestStart = ctx.Now
		}
		committed[bestRegion]++
		out = append(out, cluster.Decision{Job: job, Region: bestRegion, StartAt: bestStart})
	}
	return out, nil
}
