// Package sched implements the scheduling policies WaterWise is compared
// against in the paper's evaluation (Section 5, "Relevant Techniques"):
//
//   - Baseline: every job runs in its home region, carbon- and water-unaware;
//   - Round-Robin and Least-Load: classic load balancers, also unaware;
//   - Carbon-Greedy-Opt and Water-Greedy-Opt: infeasible oracle schedulers
//     with future knowledge of carbon/water intensity, optimizing a single
//     footprint within the delay-tolerance bound;
//   - Ecovisor: a reimplementation of the carbon scaler of Souza et al.
//     (ASPLOS'23) — home-region only, operational-carbon focused, using
//     solar-charged virtual batteries and power scaling.
//
// The WaterWise scheduler itself lives in internal/core.
package sched

import (
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/units"
	"waterwise/internal/workload"
)

// packageMB returns the deployment package size for a job's benchmark,
// falling back to a typical size for unknown benchmarks.
func packageMB(j *trace.Job) float64 {
	if p, err := workload.Lookup(j.Benchmark); err == nil {
		return p.PackageMB
	}
	return 500
}

// Baseline schedules every job in its home region immediately. It is the
// carbon- and water-unaware reference all savings are reported against.
type Baseline struct{}

// NewBaseline returns the baseline scheduler.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements cluster.Scheduler.
func (*Baseline) Name() string { return "baseline" }

// Schedule implements cluster.Scheduler.
func (*Baseline) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		out = append(out, cluster.Decision{Job: pj.Job, Region: pj.Job.Home})
	}
	return out, nil
}

// RoundRobin distributes jobs across regions in circular order, oblivious
// to carbon and water conditions.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements cluster.Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Schedule implements cluster.Scheduler.
func (s *RoundRobin) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	ids := ctx.Env.IDs()
	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		r := ids[s.next%len(ids)]
		s.next++
		out = append(out, cluster.Decision{Job: pj.Job, Region: r})
	}
	return out, nil
}

// LeastLoad sends each job to the region with the most free servers,
// balancing utilization without sustainability awareness.
type LeastLoad struct{}

// NewLeastLoad returns a least-load scheduler.
func NewLeastLoad() *LeastLoad { return &LeastLoad{} }

// Name implements cluster.Scheduler.
func (*LeastLoad) Name() string { return "least-load" }

// Schedule implements cluster.Scheduler.
func (*LeastLoad) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	free := make(map[region.ID]int, len(ctx.Free))
	for id, f := range ctx.Free {
		free[id] = f
	}
	ids := ctx.Env.IDs()
	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		best := ids[0]
		for _, id := range ids[1:] {
			if free[id] > free[best] {
				best = id
			}
		}
		free[best]--
		out = append(out, cluster.Decision{Job: pj.Job, Region: best})
	}
	return out, nil
}

// estimate scores a placement candidate: the carbon and water footprint of
// running a job with the given energy/duration under the snapshot at start.
func estimate(ctx *cluster.Context, id region.ID, start time.Time, energy units.KWh, dur time.Duration) (units.GramsCO2, units.Liters, bool) {
	snap, ok := ctx.Env.Snapshot(id, start)
	if !ok {
		return 0, 0, false
	}
	fp := ctx.FP.ForJob(snap, energy, dur)
	return fp.Carbon(), fp.Water(), true
}
