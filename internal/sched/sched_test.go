package sched

import (
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/energy"
	"waterwise/internal/footprint"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/transfer"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func testEnv(t *testing.T) *region.Environment {
	t.Helper()
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*5, 9)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func makeJobs(n int, gap time.Duration, home region.ID) []*trace.Job {
	jobs := make([]*trace.Job, n)
	for i := range jobs {
		jobs[i] = &trace.Job{
			ID: i, Submit: testStart.Add(time.Duration(i) * gap),
			Benchmark: "swaptions", Home: home,
			Duration: 9 * time.Minute, Energy: 0.05,
			EstDuration: 9 * time.Minute, EstEnergy: 0.05,
		}
	}
	return jobs
}

// ctxForJobs builds a scheduling context outside the simulator for direct
// unit tests of Schedule methods.
func ctxForJobs(t *testing.T, env *region.Environment, jobs []*trace.Job, tol float64) *cluster.Context {
	t.Helper()
	pending := make([]*cluster.PendingJob, len(jobs))
	free := map[region.ID]int{}
	for _, r := range env.Regions {
		free[r.ID] = r.Servers
	}
	for i, j := range jobs {
		pending[i] = &cluster.PendingJob{Job: j, FirstSeen: testStart}
	}
	return &cluster.Context{
		Now: testStart, Jobs: pending, Free: free,
		Busy: map[region.ID]int{},
		Env:  env, Net: transfer.New(), FP: footprint.NewModel(footprint.NoPerturbation),
		Tolerance: tol,
		FreeAt: func(id region.ID, start time.Time, exec time.Duration) int {
			return free[id]
		},
	}
}

func TestBaselineKeepsJobsHome(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(10, time.Second, region.Mumbai)
	dec, err := NewBaseline().Schedule(ctxForJobs(t, env, jobs, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 10 {
		t.Fatalf("decisions = %d, want 10", len(dec))
	}
	for _, d := range dec {
		if d.Region != region.Mumbai {
			t.Errorf("baseline moved job %d to %s", d.Job.ID, d.Region)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(10, time.Second, region.Zurich)
	dec, err := NewRoundRobin().Schedule(ctxForJobs(t, env, jobs, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	ids := env.IDs()
	for i, d := range dec {
		if d.Region != ids[i%len(ids)] {
			t.Errorf("decision %d region %s, want %s", i, d.Region, ids[i%len(ids)])
		}
	}
}

func TestLeastLoadPicksEmptiest(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(1, time.Second, region.Zurich)
	ctx := ctxForJobs(t, env, jobs, 0.5)
	for id := range ctx.Free {
		ctx.Free[id] = 5
	}
	ctx.Free[region.Milan] = 30
	dec, err := NewLeastLoad().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].Region != region.Milan {
		t.Errorf("least-load chose %s, want milan", dec[0].Region)
	}
}

func TestGreedyOptsRespectToleranceAndDiffer(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(30, time.Second, region.Oregon)
	net := transfer.New()

	for _, g := range []*GreedyOpt{NewCarbonGreedyOpt(), NewWaterGreedyOpt()} {
		ctx := ctxForJobs(t, env, jobs, 0.25)
		dec, err := g.Schedule(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(jobs) {
			t.Fatalf("%s: decisions = %d, want %d", g.Name(), len(dec), len(jobs))
		}
		for _, d := range dec {
			// The oracle's own plan must respect the tolerance: planned
			// start + exec within (1+TOL)*dur of submission (small margin
			// for the latency-vs-slack bookkeeping).
			lat := net.Latency(d.Job.Home, d.Region, 95)
			slack := time.Duration(0.25 * float64(d.Job.Duration))
			if d.Region != d.Job.Home && lat > slack {
				t.Errorf("%s: job %d sent to %s with latency %v > slack %v",
					g.Name(), d.Job.ID, d.Region, lat, slack)
			}
			if d.StartAt.Before(testStart) {
				t.Errorf("%s: start before now", g.Name())
			}
		}
	}

	// The two oracles must make substantially different choices overall
	// (the paper's observation that carbon- and water-optimal distributions
	// differ).
	ctxC := ctxForJobs(t, env, jobs, 1.0)
	decC, err := NewCarbonGreedyOpt().Schedule(ctxC)
	if err != nil {
		t.Fatal(err)
	}
	ctxW := ctxForJobs(t, env, jobs, 1.0)
	decW, err := NewWaterGreedyOpt().Schedule(ctxW)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range decC {
		if decC[i].Region == decW[i].Region {
			same++
		}
	}
	if same == len(decC) {
		t.Error("carbon- and water-greedy made identical choices; objectives are not differentiating")
	}
}

func TestGreedyFallsBackWhenSaturated(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(3, time.Second, region.Oregon)
	ctx := ctxForJobs(t, env, jobs, 0.5)
	ctx.FreeAt = func(region.ID, time.Time, time.Duration) int { return 0 }
	dec, err := NewCarbonGreedyOpt().Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("decisions = %d, want 3 (home fallback)", len(dec))
	}
	for _, d := range dec {
		if d.Region != region.Oregon {
			t.Errorf("saturated fallback sent job to %s, want home", d.Region)
		}
	}
}

func TestEcovisorStaysHomeAndThrottles(t *testing.T) {
	env := testEnv(t)
	e := NewEcovisor()
	// Warm the target with a first round at time 0, then schedule later
	// rounds; all decisions must stay in the home region.
	jobs := makeJobs(20, time.Minute, region.Mumbai)
	ctx := ctxForJobs(t, env, jobs, 0.5)
	dec, err := e.Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	throttled := 0
	for _, d := range dec {
		if d.Region != region.Mumbai {
			t.Fatalf("ecovisor migrated job %d to %s", d.Job.ID, d.Region)
		}
		if d.DurationOverride > d.Job.Duration {
			throttled++
			if d.EnergyOverride >= d.Job.Energy {
				t.Error("throttled job should use less energy")
			}
		}
	}
	// Mumbai CI fluctuates; across 20 jobs at one instant throttling is
	// all-or-nothing, so just ensure overrides are self-consistent. A
	// second round at a different time exercises the battery path.
	ctx2 := ctxForJobs(t, env, jobs, 0.5)
	ctx2.Now = testStart.Add(13 * time.Hour) // midday: batteries charged
	if _, err := e.Schedule(ctx2); err != nil {
		t.Fatal(err)
	}
}

func TestEcovisorBatteryCharges(t *testing.T) {
	env := testEnv(t)
	e := NewEcovisor()
	jobs := makeJobs(1, time.Second, region.Madrid)
	// Round at t0 sets lastTick; round at noon accrues charge.
	ctx := ctxForJobs(t, env, jobs, 0.5)
	if _, err := e.Schedule(ctx); err != nil {
		t.Fatal(err)
	}
	ctx2 := ctxForJobs(t, env, jobs, 0.5)
	ctx2.Now = testStart.Add(14 * time.Hour)
	if _, err := e.Schedule(ctx2); err != nil {
		t.Fatal(err)
	}
	if e.batteryKWh[region.Madrid] <= 0 {
		t.Error("Madrid battery should have charged across a sunny day")
	}
	if e.batteryKWh[region.Madrid] > e.BatteryCapacityKWh+1e-9 {
		t.Error("battery exceeded capacity")
	}
}

func TestSchedulerNames(t *testing.T) {
	names := map[string]cluster.Scheduler{
		"baseline":          NewBaseline(),
		"round-robin":       NewRoundRobin(),
		"least-load":        NewLeastLoad(),
		"carbon-greedy-opt": NewCarbonGreedyOpt(),
		"water-greedy-opt":  NewWaterGreedyOpt(),
		"ecovisor":          NewEcovisor(),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestTemporalShiftStaysHomeAndDefers(t *testing.T) {
	env := testEnv(t)
	s := NewTemporalShift()
	jobs := makeJobs(10, time.Second, region.Mumbai)

	// Warm the EMA with several low-intensity rounds so the current reading
	// registers as "high": force by priming the ema map directly.
	for _, id := range env.IDs() {
		snap, _ := env.Snapshot(id, testStart)
		s.ema[id] = float64(snap.CI) * 0.5 // running average far below now
	}
	ctx := ctxForJobs(t, env, jobs, 1.0)
	dec, err := s.Schedule(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("high-intensity moment with full slack should defer, decided %d", len(dec))
	}

	// Now a "good" moment: running average far above the current reading.
	for _, id := range env.IDs() {
		snap, _ := env.Snapshot(id, testStart)
		s.ema[id] = float64(snap.CI) * 2
	}
	dec, err = s.Schedule(ctxForJobs(t, env, jobs, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(jobs) {
		t.Fatalf("good moment should schedule everything, got %d/%d", len(dec), len(jobs))
	}
	for _, d := range dec {
		if d.Region != region.Mumbai {
			t.Errorf("temporal shifter migrated job %d to %s", d.Job.ID, d.Region)
		}
	}
}

func TestTemporalShiftRespectsSlackBudget(t *testing.T) {
	env := testEnv(t)
	s := NewTemporalShift()
	// Pin the EMA low so every moment looks bad.
	for _, id := range env.IDs() {
		s.ema[id] = 1
	}
	s.Alpha = 0 // freeze the reference
	jobs := makeJobs(1, time.Second, region.Milan)
	// Job has waited past (1-margin)*TOL*dur: must schedule anyway.
	jobs[0].Submit = testStart.Add(-time.Duration(0.9 * 0.5 * float64(jobs[0].EstDuration)))
	dec, err := s.Schedule(ctxForJobs(t, env, jobs, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 {
		t.Fatal("slack-exhausted job must be scheduled even at a bad moment")
	}
}
