package sched

import (
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/region"
)

// TemporalShift is a feasible carbon-aware-only scheduler in the style of
// "Let's wait awhile" (Wiesner et al., Middleware'21), which the WaterWise
// paper cites as the temporal-shifting class of related work: jobs never
// leave their home region, but their start is deferred while the home
// grid's carbon intensity is above its recent average — up to the job's
// delay-tolerance slack. It is carbon-only and local-only, so it bounds
// what temporal shifting alone can achieve without WaterWise's spatial
// moves or water awareness.
type TemporalShift struct {
	// ema tracks each region's exponentially-weighted mean carbon
	// intensity, the "is now a good time?" reference.
	ema map[region.ID]float64
	// Alpha is the EMA smoothing factor per scheduling round.
	Alpha float64
	// Threshold is the fraction of the EMA below which "now" counts as a
	// good moment (1.0 = any below-average intensity is good).
	Threshold float64
	// SafetyMargin is the fraction of the slack budget the scheduler
	// refuses to spend waiting, so tick quantization cannot cause
	// violations.
	SafetyMargin float64
}

// NewTemporalShift returns a temporal-shifting scheduler with moderate
// defaults: scheduling when intensity dips below its running average,
// keeping 20% of the slack in reserve.
func NewTemporalShift() *TemporalShift {
	return &TemporalShift{
		ema:          make(map[region.ID]float64),
		Alpha:        0.05,
		Threshold:    1.0,
		SafetyMargin: 0.2,
	}
}

// Name implements cluster.Scheduler.
func (*TemporalShift) Name() string { return "temporal-shift" }

// Schedule implements cluster.Scheduler.
func (s *TemporalShift) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	// Update the per-region intensity references.
	for _, id := range ctx.Env.IDs() {
		snap, ok := ctx.Env.Snapshot(id, ctx.Now)
		if !ok {
			continue
		}
		ci := float64(snap.CI)
		if prev, seen := s.ema[id]; seen {
			s.ema[id] = prev + s.Alpha*(ci-prev)
		} else {
			s.ema[id] = ci
		}
	}

	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		job := pj.Job
		home := job.Home
		snap, ok := ctx.Env.Snapshot(home, ctx.Now)
		if !ok {
			out = append(out, cluster.Decision{Job: job, Region: home})
			continue
		}
		budget := time.Duration((1 - s.SafetyMargin) * ctx.Tolerance * float64(job.EstDuration))
		waited := ctx.Now.Sub(job.Submit)
		goodMoment := float64(snap.CI) <= s.Threshold*s.ema[home]
		if !goodMoment && waited < budget {
			continue // keep waiting for a dip
		}
		out = append(out, cluster.Decision{Job: job, Region: home})
	}
	return out, nil
}

// Interface compliance check.
var _ cluster.Scheduler = (*TemporalShift)(nil)
