package sched

import (
	"math"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/energy"
	"waterwise/internal/region"
	"waterwise/internal/stats"
	"waterwise/internal/units"
)

// Ecovisor reimplements the carbon scaler of Souza et al., "Ecovisor: A
// Virtual Energy System for Carbon-Efficient Applications" (ASPLOS'23), as
// characterized in the WaterWise paper's Fig. 7 comparison:
//
//   - jobs always execute in their home region (no cross-region shifting);
//   - each region has a virtual solar array charging a virtual battery;
//   - the carbon scaler throttles a job's power cap when grid carbon
//     intensity exceeds the target fixed at experiment start, stretching
//     its runtime; battery energy (solar-charged) offsets grid draw;
//   - only the carbon footprint is targeted — water is never considered,
//     and the longer runtimes grow the embodied footprint.
type Ecovisor struct {
	// batteryKWh is the per-region virtual battery state of charge.
	batteryKWh map[region.ID]float64
	// targetCI is the per-region carbon-rate target, fixed from the carbon
	// intensity observed at the first scheduling round (the paper's noted
	// weakness: a high initial intensity locks in a high target).
	targetCI map[region.ID]units.CarbonIntensity
	lastTick time.Time

	// BatteryCapacityKWh bounds each region's battery.
	BatteryCapacityKWh float64
	// SolarPeakKW is the peak charge rate of each region's array.
	SolarPeakKW float64
	// MinScale is the lowest power fraction the scaler may impose.
	MinScale float64
}

// NewEcovisor returns an Ecovisor comparator with the default virtual
// energy system sizing.
func NewEcovisor() *Ecovisor {
	return &Ecovisor{
		batteryKWh:         make(map[region.ID]float64),
		targetCI:           make(map[region.ID]units.CarbonIntensity),
		BatteryCapacityKWh: 1.5,
		SolarPeakKW:        0.4,
		MinScale:           0.5,
	}
}

// Name implements cluster.Scheduler.
func (*Ecovisor) Name() string { return "ecovisor" }

// Schedule implements cluster.Scheduler.
func (e *Ecovisor) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	e.chargeBatteries(ctx)

	out := make([]cluster.Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		job := pj.Job
		home := job.Home
		snap, ok := ctx.Env.Snapshot(home, ctx.Now)
		if !ok {
			out = append(out, cluster.Decision{Job: job, Region: home})
			continue
		}
		// Fix the carbon-rate target from the first observation.
		if _, seen := e.targetCI[home]; !seen {
			e.targetCI[home] = snap.CI
		}
		target := e.targetCI[home]

		// Power scale keeps the instantaneous carbon rate near the target.
		scale := 1.0
		if snap.CI > target && snap.CI > 0 {
			scale = stats.Clamp(float64(target)/float64(snap.CI), e.MinScale, 1)
		}

		// Sub-linear slowdown: throttled containers lose less throughput
		// than power (memory/IO slack), so duration grows as scale^-0.7 and
		// energy shrinks as scale^0.3.
		dur := job.Duration
		eng := job.Energy
		if scale < 1 {
			dur = time.Duration(float64(dur) * math.Pow(scale, -0.7))
			eng = units.KWh(float64(eng) * math.Pow(scale, 0.3))
		}

		// Battery offset: energy drawn from the solar-charged battery hits
		// the grid at (approximately) the solar carbon intensity instead of
		// the current grid intensity. Fold the offset into an effective
		// energy so the simulator's CI(start)*energy accounting matches.
		if b := e.batteryKWh[home]; b > 0 && float64(snap.CI) > 0 {
			draw := minF(b, float64(eng)*0.3) // at most 30% of a job from battery
			solarCI := float64(energy.Table[energy.Solar].CI)
			offset := draw * (1 - solarCI/float64(snap.CI))
			if offset > 0 {
				eng = units.KWh(float64(eng) - offset)
				e.batteryKWh[home] = b - draw
			}
		}

		out = append(out, cluster.Decision{
			Job: job, Region: home,
			DurationOverride: dur, EnergyOverride: eng,
		})
	}
	return out, nil
}

// chargeBatteries accrues solar charge since the previous scheduling round.
func (e *Ecovisor) chargeBatteries(ctx *cluster.Context) {
	if !e.lastTick.IsZero() {
		dt := ctx.Now.Sub(e.lastTick).Hours()
		if dt > 0 {
			for _, id := range ctx.Env.IDs() {
				mix := ctx.Env.MixAt(id, ctx.Now)
				// Solar share proxies insolation on the virtual array.
				chargeKW := e.SolarPeakKW * mix[energy.Solar] * 3 // share -> insolation proxy
				b := e.batteryKWh[id] + chargeKW*dt
				if b > e.BatteryCapacityKWh {
					b = e.BatteryCapacityKWh
				}
				e.batteryKWh[id] = b
			}
		}
	}
	e.lastTick = ctx.Now
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
