package viz

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart("savings", []Bar{{"waterwise", 50}, {"baseline", 0}, {"rr", 25}}, 20)
	if !strings.Contains(out, "savings") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Largest value gets the longest bar.
	if strings.Count(lines[1], "█") != 20 {
		t.Errorf("max bar should be full width, got %q", lines[1])
	}
	if strings.Count(lines[3], "█") != 10 {
		t.Errorf("half value should be half width, got %q", lines[3])
	}
	if strings.Count(lines[2], "█") != 0 {
		t.Errorf("zero value should have no bar, got %q", lines[2])
	}
}

func TestBarChartNegative(t *testing.T) {
	out := BarChart("", []Bar{{"a", 10}, {"b", -10}}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "|█") {
		t.Errorf("positive bar should sit right of axis: %q", lines[0])
	}
	if !strings.Contains(lines[1], "░|") {
		t.Errorf("negative bar should sit left of axis: %q", lines[1])
	}
}

func TestBarChartEmptyAndTinyWidth(t *testing.T) {
	if BarChart("x", nil, 20) != "" {
		t.Error("empty chart should render empty")
	}
	out := BarChart("", []Bar{{"a", 1}}, 1) // clamped to 10
	if !strings.Contains(out, "█") {
		t.Error("tiny width should still render")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline runes = %d, want 8", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("monotone input should give monotone sparkline: %q", s)
		}
	}
	if Sparkline(nil, 8) != "" {
		t.Error("empty sparkline should be empty")
	}
	// Constant series: all runes identical, no panic on zero span.
	c := Sparkline([]float64{5, 5, 5, 5}, 4)
	for _, r := range c {
		if r != '▁' {
			t.Errorf("constant series should render flat: %q", c)
		}
	}
}

func TestSeries(t *testing.T) {
	out := Series("ci", []float64{1, 2, 3}, 10)
	for _, want := range []string{"ci", "[1, 3]", "mean 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Series output %q missing %q", out, want)
		}
	}
	if !strings.Contains(Series("x", nil, 10), "no data") {
		t.Error("empty series should say so")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{1, 1, 1, 2, 3}
	out := Histogram("h", xs, 2, 10)
	if !strings.Contains(out, "h\n") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (title + 2 bins)", len(lines))
	}
	if !strings.HasSuffix(lines[1], "3") {
		t.Errorf("first bin should count 3: %q", lines[1])
	}
	if Histogram("", nil, 2, 10) != "" {
		t.Error("empty histogram should be empty")
	}
}

func TestResample(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	down := resample(xs, 2)
	if len(down) != 2 || down[0] != 1.5 || down[1] != 3.5 {
		t.Errorf("downsample = %v, want [1.5 3.5]", down)
	}
	up := resample([]float64{1, 2}, 4)
	if len(up) != 4 {
		t.Errorf("upsample length = %d, want 4", len(up))
	}
}

// Property: sparkline always emits exactly min(width, requested) runes from
// the spark alphabet, for any finite input.
func TestQuickSparklineShape(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		width := int(w%60) + 1
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !isFinite(v) {
				continue
			}
			xs = append(xs, v)
		}
		s := Sparkline(xs, width)
		if len(xs) == 0 {
			return s == ""
		}
		runes := []rune(s)
		if len(runes) != width {
			return false
		}
		for _, r := range runes {
			ok := false
			for _, sr := range sparkRunes {
				if r == sr {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func isFinite(v float64) bool { return v == v && v < 1e300 && v > -1e300 }
