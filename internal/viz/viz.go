// Package viz renders the experiment harness's data as plain-text charts:
// horizontal bar charts for the savings comparisons (the paper's bar
// figures) and sparklines/line strips for time series (Fig. 2(e), Fig. 13).
// Everything is pure text so reports remain greppable and diffable.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width runes. Negative values
// render to the left of a zero axis when any are present; the value is
// printed after each bar. An empty input renders an empty string.
func BarChart(title string, bars []Bar, width int) string {
	if len(bars) == 0 {
		return ""
	}
	if width < 10 {
		width = 10
	}
	maxAbs := 0.0
	anyNeg := false
	labelW := 0
	for _, b := range bars {
		if a := math.Abs(b.Value); a > maxAbs {
			maxAbs = a
		}
		if b.Value < 0 {
			anyNeg = true
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}

	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		n := int(math.Round(math.Abs(b.Value) / maxAbs * float64(width)))
		if n == 0 && b.Value != 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s ", labelW, b.Label)
		if anyNeg {
			// Two-sided layout: [neg side][axis][pos side].
			if b.Value < 0 {
				sb.WriteString(strings.Repeat(" ", width-n))
				sb.WriteString(strings.Repeat("░", n))
				sb.WriteString("|")
				sb.WriteString(strings.Repeat(" ", width))
			} else {
				sb.WriteString(strings.Repeat(" ", width))
				sb.WriteString("|")
				sb.WriteString(strings.Repeat("█", n))
				sb.WriteString(strings.Repeat(" ", width-n))
			}
		} else {
			sb.WriteString(strings.Repeat("█", n))
			sb.WriteString(strings.Repeat(" ", width-n))
		}
		fmt.Fprintf(&sb, "  %.1f\n", b.Value)
	}
	return sb.String()
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a single-line sparkline, resampling to at most
// width points (mean pooling). Empty input renders an empty string.
func Sparkline(xs []float64, width int) string {
	if len(xs) == 0 {
		return ""
	}
	if width <= 0 {
		width = 60
	}
	pts := resample(xs, width)
	lo, hi := pts[0], pts[0]
	for _, v := range pts {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	span := hi - lo
	for _, v := range pts {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Series renders a labelled time series as a sparkline with its range:
//
//	carbon intensity  ▁▂▄█▆▃▁  [122, 456] mean 337
func Series(label string, xs []float64, width int) string {
	if len(xs) == 0 {
		return fmt.Sprintf("%s  (no data)", label)
	}
	lo, hi, sum := xs[0], xs[0], 0.0
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	return fmt.Sprintf("%s  %s  [%.3g, %.3g] mean %.3g",
		label, Sparkline(xs, width), lo, hi, sum/float64(len(xs)))
}

// Histogram renders a fixed-bin histogram of xs with bar lengths scaled to
// width. bins must be >= 1.
func Histogram(title string, xs []float64, bins, width int) string {
	if len(xs) == 0 || bins < 1 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	counts := make([]int, bins)
	span := hi - lo
	for _, v := range xs {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(bins))
		}
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for i, c := range counts {
		bLo := lo + span*float64(i)/float64(bins)
		bHi := lo + span*float64(i+1)/float64(bins)
		n := 0
		if maxC > 0 {
			n = int(math.Round(float64(c) / float64(maxC) * float64(width)))
		}
		fmt.Fprintf(&sb, "[%8.3g, %8.3g) %s %d\n", bLo, bHi, strings.Repeat("█", n), c)
	}
	return sb.String()
}

// resample mean-pools xs down (or repeats up) to exactly n points.
func resample(xs []float64, n int) []float64 {
	if n <= 0 || len(xs) == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		loF := float64(i) * float64(len(xs)) / float64(n)
		hiF := float64(i+1) * float64(len(xs)) / float64(n)
		lo, hi := int(loF), int(math.Ceil(hiF))
		if hi > len(xs) {
			hi = len(xs)
		}
		if lo >= hi {
			lo = hi - 1
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += xs[j]
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
