package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSumVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %g", Sum(xs))
	}
	if got := Variance(xs); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %g, want 1.25", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %g, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %g, %v", mx, err)
	}
	if _, err := Min(nil); err == nil {
		t.Error("Min of empty should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max of empty should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil || math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, %v; want %g", tc.p, got, err, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out-of-range percentile should error")
	}
	if got, err := Percentile([]float64{9}, 40); err != nil || got != 9 {
		t.Errorf("single-element percentile = %g, %v", got, err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Correlation(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("Correlation = %g, %v; want 1", r, err)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("Correlation = %g, %v; want -1", r, err)
	}
	if _, err := Correlation(xs, ys[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(5).Split("weather")
	d := NewRand(5).Split("weather")
	for i := 0; i < 50; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("split with same label diverged")
		}
	}
	e := NewRand(5).Split("grid")
	same := true
	f := NewRand(5).Split("weather")
	for i := 0; i < 50; i++ {
		if e.Float64() != f.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("different split labels produced identical streams")
	}
}

func TestSamplers(t *testing.T) {
	rng := NewRand(7)
	var normals, exps, unis []float64
	for i := 0; i < 20000; i++ {
		normals = append(normals, rng.Normal(10, 2))
		exps = append(exps, rng.Exponential(3))
		unis = append(unis, rng.Uniform(2, 4))
	}
	if m := Mean(normals); math.Abs(m-10) > 0.1 {
		t.Errorf("normal mean = %g, want ~10", m)
	}
	if s := StdDev(normals); math.Abs(s-2) > 0.1 {
		t.Errorf("normal std = %g, want ~2", s)
	}
	if m := Mean(exps); math.Abs(m-3) > 0.15 {
		t.Errorf("exponential mean = %g, want ~3", m)
	}
	mn, _ := Min(unis)
	mx, _ := Max(unis)
	if mn < 2 || mx >= 4 {
		t.Errorf("uniform range [%g, %g] outside [2,4)", mn, mx)
	}
}

func TestPoisson(t *testing.T) {
	rng := NewRand(11)
	for _, lambda := range []float64{0.5, 3, 50} {
		var xs []float64
		for i := 0; i < 20000; i++ {
			xs = append(xs, float64(rng.Poisson(lambda)))
		}
		if m := Mean(xs); math.Abs(m-lambda)/lambda > 0.05 {
			t.Errorf("Poisson(%g) mean = %g", lambda, m)
		}
		if v := Variance(xs); math.Abs(v-lambda)/lambda > 0.10 {
			t.Errorf("Poisson(%g) variance = %g", lambda, v)
		}
	}
	if NewRand(1).Poisson(0) != 0 || NewRand(1).Poisson(-2) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MovingAverage[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if got := MovingAverage(xs, 0); got[0] != 1 || got[3] != 4 {
		t.Error("window<1 should behave as window 1")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRand(seed)
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal(0, 10)
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		prev := mn
		for p := 0.0; p <= 100; p += 10 {
			v, err := Percentile(xs, p)
			if err != nil {
				return false
			}
			if v < prev-1e-9 || v < mn-1e-9 || v > mx+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
