// Package stats provides the small statistical toolkit used across the
// WaterWise simulator: summary statistics, percentiles, correlation, and a
// deterministic splittable random source so every experiment is exactly
// reproducible from a seed.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs and an error for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs and an error for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the lengths differ, are < 2, or either series has
// zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Rand is a deterministic random source with convenience samplers used by
// the trace, weather, and grid-mix generators.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator from this one; the child's
// stream is a pure function of the parent seed and the label, so generators
// for different subsystems never interleave draws.
func (g *Rand) Split(label string) *Rand {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for _, c := range label {
		h ^= int64(c)
		h *= 1099511628211
	}
	return NewRand(h ^ g.r.Int63())
}

// Float64 returns a uniform draw in [0,1).
func (g *Rand) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (g *Rand) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a draw from N(mean, std^2).
func (g *Rand) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// LogNormal returns a draw from a log-normal distribution whose underlying
// normal has the given mu and sigma.
func (g *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// Exponential returns a draw from an exponential distribution with the given
// mean (not rate).
func (g *Rand) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Uniform returns a uniform draw in [lo, hi).
func (g *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Perm returns a random permutation of [0,n).
func (g *Rand) Perm(n int) []int { return g.r.Perm(n) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MovingAverage returns the trailing moving average of xs with the given
// window (window >= 1). Entry i averages xs[max(0,i-window+1) .. i].
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Poisson returns a draw from a Poisson distribution with the given mean,
// using Knuth's method for small means and a rounded normal approximation
// for large ones.
func (g *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := g.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		k++
		p *= g.Float64()
		if p <= limit {
			return k - 1
		}
	}
}
