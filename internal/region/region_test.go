package region

import (
	"math"
	"sort"
	"testing"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/feed"
	"waterwise/internal/units"
)

var testStart = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func yearEnv(t *testing.T) *Environment {
	t.Helper()
	env, err := NewEnvironment(Defaults(), energy.Table, testStart, 365*24, 42)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// yearlyAverages samples each region's snapshot every 6 hours for a year.
func yearlyAverages(t *testing.T, env *Environment) map[ID]Snapshot {
	t.Helper()
	out := make(map[ID]Snapshot)
	for _, r := range env.Regions {
		var ci, ew, wu float64
		n := 0
		for h := 0; h < 365*24; h += 6 {
			at := testStart.Add(time.Duration(h) * time.Hour)
			s, ok := env.Snapshot(r.ID, at)
			if !ok {
				t.Fatalf("no snapshot for %s", r.ID)
			}
			ci += float64(s.CI)
			ew += float64(s.EWIF)
			wu += float64(s.WUE)
			n++
		}
		f := float64(n)
		out[r.ID] = Snapshot{
			Region: r.ID,
			CI:     units.CarbonIntensity(ci / f),
			EWIF:   units.EWIF(ew / f),
			WUE:    units.WUE(wu / f),
			WSF:    r.WSF,
			PUE:    r.PUE,
		}
	}
	return out
}

func TestFig2CarbonOrdering(t *testing.T) {
	avgs := yearlyAverages(t, yearEnv(t))
	order := []ID{Zurich, Madrid, Oregon, Milan, Mumbai}
	for i := 1; i < len(order); i++ {
		lo, hi := avgs[order[i-1]], avgs[order[i]]
		if float64(lo.CI) >= float64(hi.CI) {
			t.Errorf("Fig.2a ordering broken: CI(%s)=%.0f should be < CI(%s)=%.0f",
				order[i-1], float64(lo.CI), order[i], float64(hi.CI))
		}
	}
}

func TestFig2EWIFShape(t *testing.T) {
	avgs := yearlyAverages(t, yearEnv(t))
	// Zurich (hydro+biomass) must have the highest EWIF, Mumbai (coal) the
	// lowest — the paper's central carbon/water tension.
	for id, s := range avgs {
		if id == Zurich {
			continue
		}
		if float64(avgs[Zurich].EWIF) <= float64(s.EWIF) {
			t.Errorf("Zurich EWIF %.2f should exceed %s's %.2f",
				float64(avgs[Zurich].EWIF), id, float64(s.EWIF))
		}
	}
	for id, s := range avgs {
		if id == Mumbai {
			continue
		}
		if float64(avgs[Mumbai].EWIF) >= float64(s.EWIF) {
			t.Errorf("Mumbai EWIF %.2f should be below %s's %.2f",
				float64(avgs[Mumbai].EWIF), id, float64(s.EWIF))
		}
	}
}

func TestFig2WUEShape(t *testing.T) {
	avgs := yearlyAverages(t, yearEnv(t))
	// Hot, humid Mumbai has the thirstiest cooling.
	for id, s := range avgs {
		if id == Mumbai {
			continue
		}
		if float64(avgs[Mumbai].WUE) <= float64(s.WUE) {
			t.Errorf("Mumbai WUE %.2f should exceed %s's %.2f",
				float64(avgs[Mumbai].WUE), id, float64(s.WUE))
		}
	}
}

func TestFig2WSFShape(t *testing.T) {
	byID := map[ID]*Region{}
	for _, r := range Defaults() {
		byID[r.ID] = r
	}
	// Madrid most water-stressed; Zurich least; Mumbai/Oregon high (the
	// paper's "low EWIF but high scarcity" examples).
	wsfs := []struct {
		id ID
		v  float64
	}{{Madrid, byID[Madrid].WSF}, {Mumbai, byID[Mumbai].WSF}, {Oregon, byID[Oregon].WSF}, {Milan, byID[Milan].WSF}, {Zurich, byID[Zurich].WSF}}
	if !sort.SliceIsSorted(wsfs, func(i, j int) bool { return wsfs[i].v > wsfs[j].v }) {
		t.Errorf("WSF ordering should be madrid > mumbai > oregon > milan > zurich, got %+v", wsfs)
	}
}

func TestCarbonWaterTension(t *testing.T) {
	env := yearEnv(t)
	// The lowest-carbon region (Zurich) must NOT be the lowest-water-
	// intensity region: that conflict is the paper's whole premise.
	var wiZurich float64
	minWI, minWIRegion := math.Inf(1), ID("")
	for _, r := range env.Regions {
		var wi float64
		n := 0
		for h := 0; h < 365*24; h += 12 {
			s, _ := env.Snapshot(r.ID, testStart.Add(time.Duration(h)*time.Hour))
			wi += float64(s.WaterIntensity())
			n++
		}
		wi /= float64(n)
		if r.ID == Zurich {
			wiZurich = wi
		}
		if wi < minWI {
			minWI = wi
			minWIRegion = r.ID
		}
	}
	if minWIRegion == Zurich {
		t.Errorf("Zurich is both carbon- and water-best (WI %.2f); the carbon/water tension is lost", wiZurich)
	}
}

func TestWaterIntensityEquation(t *testing.T) {
	s := Snapshot{CI: 100, EWIF: 2, WUE: 3, WSF: 0.5, PUE: 1.2}
	want := (3 + 1.2*2) * 1.5
	if got := float64(s.WaterIntensity()); math.Abs(got-want) > 1e-12 {
		t.Errorf("WaterIntensity = %g, want %g (Eq. 6)", got, want)
	}
}

func TestDefaultsSubset(t *testing.T) {
	rs, err := DefaultsSubset(Zurich, Mumbai)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].ID != Zurich || rs[1].ID != Mumbai {
		t.Errorf("subset = %v", rs)
	}
	if _, err := DefaultsSubset(ID("atlantis")); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestNewEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(nil, energy.Table, testStart, 24, 1); err == nil {
		t.Error("empty region list accepted")
	}
	if _, err := NewEnvironment(Defaults(), energy.Table, testStart, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	dup := Defaults()
	dup[1] = dup[0]
	if _, err := NewEnvironment(dup, energy.Table, testStart, 24, 1); err == nil {
		t.Error("duplicate regions accepted")
	}
}

func TestSnapshotUnknownRegion(t *testing.T) {
	env := yearEnv(t)
	if _, ok := env.Snapshot(ID("atlantis"), testStart); ok {
		t.Error("snapshot for unknown region should fail")
	}
	if env.Region(ID("atlantis")) != nil {
		t.Error("Region for unknown id should be nil")
	}
}

func TestEnvironmentDeterminism(t *testing.T) {
	a, err := NewEnvironment(Defaults(), energy.Table, testStart, 24*7, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEnvironment(Defaults(), energy.Table, testStart, 24*7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 24*7; h++ {
		at := testStart.Add(time.Duration(h) * time.Hour)
		for _, id := range a.IDs() {
			sa, _ := a.Snapshot(id, at)
			sb, _ := b.Snapshot(id, at)
			if sa != sb {
				t.Fatalf("snapshots differ for %s at hour %d", id, h)
			}
		}
	}
}

func TestIDsOrder(t *testing.T) {
	env := yearEnv(t)
	ids := env.IDs()
	if len(ids) != 5 {
		t.Fatalf("want 5 ids, got %d", len(ids))
	}
	for i, r := range env.Regions {
		if ids[i] != r.ID {
			t.Errorf("IDs()[%d] = %s, want %s (registry order)", i, ids[i], r.ID)
		}
	}
	if got := env.End(); !got.Equal(testStart.Add(365 * 24 * time.Hour)) {
		t.Errorf("End() = %v", got)
	}
}

// TestProviderBackedEquivalence pins the refactor's decision-invariance
// at the source: an environment over an explicitly built synthetic
// provider must answer snapshots bit-identically to the seeded
// constructor — NewEnvironment is now NewEnvironmentWithProvider over
// feed.NewSynthetic, and nothing about the series may change.
func TestProviderBackedEquivalence(t *testing.T) {
	const hours = 24 * 7
	const seed = 5
	want, err := NewEnvironment(Defaults(), energy.Table, testStart, hours, seed)
	if err != nil {
		t.Fatal(err)
	}
	regions := Defaults()
	specs := make([]feed.SyntheticRegion, len(regions))
	for i, r := range regions {
		specs[i] = feed.SyntheticRegion{Key: string(r.ID), Grid: r.Grid, Climate: r.Climate}
	}
	prov, err := feed.NewSynthetic(specs, testStart, hours, seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewEnvironmentWithProvider(regions, energy.Table, testStart, hours, prov)
	if err != nil {
		t.Fatal(err)
	}
	if got.Provider() != feed.Provider(prov) {
		t.Fatal("Provider() does not expose the provider the environment was built over")
	}
	for h := 0; h < hours; h++ {
		at := testStart.Add(time.Duration(h)*time.Hour + 13*time.Minute)
		for _, id := range want.IDs() {
			sw, okw := want.Snapshot(id, at)
			sg, okg := got.Snapshot(id, at)
			if !okw || !okg || sw != sg {
				t.Fatalf("snapshot for %s at hour %d differs through the explicit provider", id, h)
			}
			if want.MixAt(id, at) != got.MixAt(id, at) {
				t.Fatalf("mix for %s at hour %d differs through the explicit provider", id, h)
			}
		}
	}
}

// TestEnvironmentWithProviderValidation covers the provider-backed
// constructor's rejections, including a provider that does not serve
// every region (the reverse — a provider serving more regions than the
// environment uses — is legal and exercised by partition views).
func TestEnvironmentWithProviderValidation(t *testing.T) {
	regions := Defaults()
	specs := []feed.SyntheticRegion{{Key: string(Zurich), Grid: regions[0].Grid, Climate: regions[0].Climate}}
	narrow, err := feed.NewSynthetic(specs, testStart, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnvironmentWithProvider(regions, energy.Table, testStart, 24, narrow); err == nil {
		t.Error("provider missing four of five regions accepted")
	}
	if _, err := NewEnvironmentWithProvider(regions, energy.Table, testStart, 24, nil); err == nil {
		t.Error("nil provider accepted")
	}
	if _, err := NewEnvironmentWithProvider(nil, energy.Table, testStart, 24, narrow); err == nil {
		t.Error("empty region list accepted")
	}
	if _, err := NewEnvironmentWithProvider(regions[:1], energy.Table, testStart, 0, narrow); err == nil {
		t.Error("zero horizon accepted")
	}
	// A wider provider backing a narrower environment is fine.
	if _, err := NewEnvironmentWithProvider(regions[:1], energy.Table, testStart, 24, narrow); err != nil {
		t.Errorf("single-region environment over a matching provider rejected: %v", err)
	}
}

// TestPartitionSharesSeries is the sharding precondition: a partition
// view must answer snapshots bit-identically to the full environment —
// the series are shared, never regenerated with partition-local seeds.
func TestPartitionSharesSeries(t *testing.T) {
	env, err := NewEnvironment(Defaults(), energy.Table, testStart, 24*7, 42)
	if err != nil {
		t.Fatal(err)
	}
	view, err := env.Partition(Mumbai, Madrid)
	if err != nil {
		t.Fatal(err)
	}
	ids := view.IDs()
	if len(ids) != 2 || ids[0] != Mumbai || ids[1] != Madrid {
		t.Fatalf("partition IDs = %v, want given order", ids)
	}
	if !view.Start.Equal(env.Start) || view.Hours != env.Hours || !view.End().Equal(env.End()) {
		t.Fatalf("partition horizon differs: [%v, %v) vs [%v, %v)", view.Start, view.End(), env.Start, env.End())
	}
	for h := 0; h < 24*7; h++ {
		at := testStart.Add(time.Duration(h) * time.Hour)
		for _, id := range ids {
			sv, okv := view.Snapshot(id, at)
			se, oke := env.Snapshot(id, at)
			if !okv || !oke || sv != se {
				t.Fatalf("snapshot for %s at hour %d differs through the view", id, h)
			}
		}
	}
	// Out-of-partition regions are invisible to the view.
	if view.Region(Zurich) != nil {
		t.Error("view answers for an out-of-partition region")
	}
	if _, ok := view.Snapshot(Zurich, testStart); ok {
		t.Error("view snapshots an out-of-partition region")
	}
	// Misuse is rejected.
	if _, err := env.Partition(); err == nil {
		t.Error("empty partition accepted")
	}
	if _, err := env.Partition("atlantis"); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := env.Partition(Mumbai, Mumbai); err == nil {
		t.Error("duplicate region accepted")
	}
}
