// Package region defines the geographically distributed data center regions
// WaterWise schedules across, and the Environment that binds each region to
// its synthetic grid-mix and weather series.
//
// The five default regions mirror the paper's AWS deployment — Zurich
// (eu-central-2), Madrid (eu-south-2), Oregon (us-west-2), Milan
// (eu-south-1), Mumbai (ap-south-1) — with grid mixes, climates, and water
// scarcity factors calibrated so the regional averages reproduce the
// orderings of Fig. 2: carbon intensity ascending Zurich < Madrid < Oregon <
// Milan < Mumbai, Zurich's grid the most water-intensive (hydro+biomass
// heavy), Mumbai's the least (coal heavy), Mumbai's climate the thirstiest
// for cooling, and Madrid/Mumbai the most water-scarce.
package region

import (
	"fmt"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/gridmix"
	"waterwise/internal/units"
	"waterwise/internal/weather"
)

// ID identifies a region, e.g. "zurich".
type ID string

// The five regions of the paper's evaluation.
const (
	Zurich ID = "zurich"
	Madrid ID = "madrid"
	Oregon ID = "oregon"
	Milan  ID = "milan"
	Mumbai ID = "mumbai"
)

// Region is a data center region's static description.
type Region struct {
	// ID is the region's unique identifier.
	ID ID
	// Name is the human-readable location.
	Name string
	// AWSZone is the corresponding AWS region of the paper's testbed.
	AWSZone string
	// WSF is the water scarcity factor: freshwater demand relative to
	// availability; higher means a liter of water is more precious here.
	WSF float64
	// PUE is the power usage effectiveness of the region's data center.
	PUE float64
	// Servers is the number of servers available in this region.
	Servers int
	// EnergyPriceUSD is the industrial electricity price (USD/kWh), used
	// only by the optional cost-objective extension (paper §7).
	EnergyPriceUSD float64
	// Grid describes the regional electricity mix dynamics.
	Grid gridmix.Params
	// Climate describes the regional wet-bulb temperature dynamics.
	Climate weather.Params
}

// DefaultServersPerRegion matches the paper's 175-node/5-region testbed.
const DefaultServersPerRegion = 35

// DefaultPUE is the power usage effectiveness used throughout the paper.
const DefaultPUE = 1.2

// Defaults returns fresh copies of the five paper regions.
func Defaults() []*Region {
	return []*Region{
		{
			ID: Zurich, Name: "Zurich, Switzerland", AWSZone: "eu-central-2",
			WSF: 0.03, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.16,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Hydro: 0.22, energy.Nuclear: 0.45, energy.Solar: 0.08,
					energy.Wind: 0.06, energy.Biomass: 0.05, energy.Gas: 0.14,
				},
				Dispatchable:    []energy.Source{energy.Hydro, energy.Gas},
				WindVariability: 0.45, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 7.5, SeasonalAmp: 7.0, DiurnalAmp: 2.5, Noise: 1.2},
		},
		{
			ID: Madrid, Name: "Madrid, Spain", AWSZone: "eu-south-2",
			WSF: 0.90, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.12,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Solar: 0.25, energy.Wind: 0.20, energy.Nuclear: 0.20,
					energy.Hydro: 0.08, energy.Gas: 0.22, energy.Coal: 0.05,
				},
				Dispatchable:    []energy.Source{energy.Gas, energy.Hydro, energy.Coal},
				WindVariability: 0.50, WindPersistence: 0.88, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 16.0, SeasonalAmp: 9.0, DiurnalAmp: 3.5, Noise: 1.0},
		},
		{
			ID: Oregon, Name: "Oregon, USA", AWSZone: "us-west-2",
			WSF: 0.52, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.07,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Hydro: 0.12, energy.Wind: 0.18, energy.Gas: 0.45,
					energy.Solar: 0.07, energy.Nuclear: 0.08, energy.Coal: 0.10,
				},
				Dispatchable:    []energy.Source{energy.Gas, energy.Hydro, energy.Coal},
				WindVariability: 0.55, WindPersistence: 0.90, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 8.5, SeasonalAmp: 6.5, DiurnalAmp: 3.0, Noise: 1.1},
		},
		{
			ID: Milan, Name: "Milan, Italy", AWSZone: "eu-south-1",
			WSF: 0.31, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.19,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Gas: 0.58, energy.Hydro: 0.08, energy.Solar: 0.10,
					energy.Wind: 0.05, energy.Oil: 0.05, energy.Coal: 0.09,
					energy.Nuclear: 0.05,
				},
				Dispatchable:    []energy.Source{energy.Gas, energy.Hydro},
				WindVariability: 0.40, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 12.5, SeasonalAmp: 8.5, DiurnalAmp: 3.0, Noise: 1.1},
		},
		{
			ID: Mumbai, Name: "Mumbai, India", AWSZone: "ap-south-1",
			WSF: 0.80, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.09,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Coal: 0.60, energy.Gas: 0.15, energy.Oil: 0.05,
					energy.Solar: 0.11, energy.Wind: 0.07, energy.Hydro: 0.02,
				},
				Dispatchable:    []energy.Source{energy.Coal, energy.Gas},
				WindVariability: 0.40, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 25.0, SeasonalAmp: 3.0, DiurnalAmp: 2.0, Noise: 0.8},
		},
	}
}

// DefaultsSubset returns fresh copies of the named regions, in the given
// order, erroring on unknown IDs. Used by the Fig. 12 region-availability
// study.
func DefaultsSubset(ids ...ID) ([]*Region, error) {
	byID := make(map[ID]*Region)
	for _, r := range Defaults() {
		byID[r.ID] = r
	}
	out := make([]*Region, 0, len(ids))
	for _, id := range ids {
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("region: unknown region %q", id)
		}
		out = append(out, r)
	}
	return out, nil
}

// Snapshot captures every sustainability factor of one region at one
// instant; it is what the scheduler (and footprint model) read.
type Snapshot struct {
	Region ID
	Time   time.Time
	CI     units.CarbonIntensity
	EWIF   units.EWIF
	WUE    units.WUE
	WSF    float64
	PUE    float64
}

// WaterIntensity computes the paper's Eq. 6:
//
//	H2O_intensity = (WUE + PUE*EWIF) * (1 + WSF)   [L/kWh]
func (s Snapshot) WaterIntensity() units.WaterIntensity {
	return units.WaterIntensity((float64(s.WUE) + s.PUE*float64(s.EWIF)) * (1 + s.WSF))
}

// Environment binds regions to their generated grid-mix and weather series
// under one factor table. All schedulers and the footprint accounting read
// region conditions through an Environment.
type Environment struct {
	Regions []*Region
	Table   energy.FactorTable
	Start   time.Time
	Hours   int

	byID map[ID]*Region
	grid map[ID]*gridmix.Series
	wx   map[ID]*weather.Series
}

// NewEnvironment generates the per-region series covering [start,
// start+hours) deterministically from seed.
func NewEnvironment(regions []*Region, tbl energy.FactorTable, start time.Time, hours int, seed int64) (*Environment, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("region: environment needs at least one region")
	}
	if hours <= 0 {
		return nil, fmt.Errorf("region: environment needs a positive horizon, got %d hours", hours)
	}
	env := &Environment{
		Regions: regions,
		Table:   tbl,
		Start:   start,
		Hours:   hours,
		byID:    make(map[ID]*Region, len(regions)),
		grid:    make(map[ID]*gridmix.Series, len(regions)),
		wx:      make(map[ID]*weather.Series, len(regions)),
	}
	for i, r := range regions {
		if _, dup := env.byID[r.ID]; dup {
			return nil, fmt.Errorf("region: duplicate region %q", r.ID)
		}
		env.byID[r.ID] = r
		gs, err := gridmix.Generate(r.Grid, start, hours, seed+int64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.ID, err)
		}
		env.grid[r.ID] = gs
		env.wx[r.ID] = weather.Generate(r.Climate, start, hours, seed+int64(i)*104729+1)
	}
	return env, nil
}

// Region returns the static region description for id, or nil if unknown.
func (e *Environment) Region(id ID) *Region { return e.byID[id] }

// Partition returns a view of the environment restricted to the named
// regions, in the given order. The view shares the receiver's generated
// grid-mix and weather series — partitioning never regenerates or reseeds
// them, so a snapshot read through a view is bit-identical to one read
// through the full environment. That sharing is what makes region-sharded
// serving (internal/fleet) decision-identical to a single scheduler over
// the same world: every shard sees the same series the single server
// would, just fewer regions of it.
func (e *Environment) Partition(ids ...ID) (*Environment, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("region: empty partition")
	}
	view := &Environment{
		Table: e.Table,
		Start: e.Start,
		Hours: e.Hours,
		byID:  make(map[ID]*Region, len(ids)),
		grid:  e.grid,
		wx:    e.wx,
	}
	view.Regions = make([]*Region, 0, len(ids))
	for _, id := range ids {
		r, ok := e.byID[id]
		if !ok {
			return nil, fmt.Errorf("region: partition names unknown region %q", id)
		}
		if _, dup := view.byID[id]; dup {
			return nil, fmt.Errorf("region: partition names region %q twice", id)
		}
		view.Regions = append(view.Regions, r)
		view.byID[id] = r
	}
	return view, nil
}

// IDs returns the region IDs in registry order.
func (e *Environment) IDs() []ID {
	out := make([]ID, len(e.Regions))
	for i, r := range e.Regions {
		out[i] = r.ID
	}
	return out
}

// Snapshot returns the full sustainability snapshot for region id at time t.
// The boolean is false if the region is unknown.
func (e *Environment) Snapshot(id ID, t time.Time) (Snapshot, bool) {
	r, ok := e.byID[id]
	if !ok {
		return Snapshot{}, false
	}
	gs := e.grid[id]
	return Snapshot{
		Region: id,
		Time:   t,
		CI:     gs.CarbonIntensityAt(t, e.Table),
		EWIF:   gs.EWIFAt(t, e.Table),
		WUE:    e.wx[id].WUEAt(t),
		WSF:    r.WSF,
		PUE:    r.PUE,
	}, true
}

// MixAt exposes the raw energy mix for region id at time t (used by the
// Ecovisor comparator, which reacts to the solar share).
func (e *Environment) MixAt(id ID, t time.Time) energy.Mix {
	gs, ok := e.grid[id]
	if !ok {
		return energy.Mix{}
	}
	return gs.MixAt(t)
}

// End returns the first instant past the generated horizon.
func (e *Environment) End() time.Time {
	return e.Start.Add(time.Duration(e.Hours) * time.Hour)
}
