// Package region defines the geographically distributed data center regions
// WaterWise schedules across, and the Environment that binds each region to
// its grid-mix and weather signals through a pluggable feed.Provider —
// synthetic generation by default (NewEnvironment), or a recorded/live feed
// via NewEnvironmentWithProvider.
//
// The five default regions mirror the paper's AWS deployment — Zurich
// (eu-central-2), Madrid (eu-south-2), Oregon (us-west-2), Milan
// (eu-south-1), Mumbai (ap-south-1) — with grid mixes, climates, and water
// scarcity factors calibrated so the regional averages reproduce the
// orderings of Fig. 2: carbon intensity ascending Zurich < Madrid < Oregon <
// Milan < Mumbai, Zurich's grid the most water-intensive (hydro+biomass
// heavy), Mumbai's the least (coal heavy), Mumbai's climate the thirstiest
// for cooling, and Madrid/Mumbai the most water-scarce.
package region

import (
	"fmt"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/feed"
	"waterwise/internal/gridmix"
	"waterwise/internal/units"
	"waterwise/internal/weather"
)

// ID identifies a region, e.g. "zurich".
type ID string

// The five regions of the paper's evaluation.
const (
	Zurich ID = "zurich"
	Madrid ID = "madrid"
	Oregon ID = "oregon"
	Milan  ID = "milan"
	Mumbai ID = "mumbai"
)

// Region is a data center region's static description.
type Region struct {
	// ID is the region's unique identifier.
	ID ID
	// Name is the human-readable location.
	Name string
	// AWSZone is the corresponding AWS region of the paper's testbed.
	AWSZone string
	// WSF is the water scarcity factor: freshwater demand relative to
	// availability; higher means a liter of water is more precious here.
	WSF float64
	// PUE is the power usage effectiveness of the region's data center.
	PUE float64
	// Servers is the number of servers available in this region.
	Servers int
	// EnergyPriceUSD is the industrial electricity price (USD/kWh), used
	// only by the optional cost-objective extension (paper §7).
	EnergyPriceUSD float64
	// Grid describes the regional electricity mix dynamics.
	Grid gridmix.Params
	// Climate describes the regional wet-bulb temperature dynamics.
	Climate weather.Params
}

// DefaultServersPerRegion matches the paper's 175-node/5-region testbed.
const DefaultServersPerRegion = 35

// DefaultPUE is the power usage effectiveness used throughout the paper.
const DefaultPUE = 1.2

// Defaults returns fresh copies of the five paper regions.
func Defaults() []*Region {
	return []*Region{
		{
			ID: Zurich, Name: "Zurich, Switzerland", AWSZone: "eu-central-2",
			WSF: 0.03, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.16,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Hydro: 0.22, energy.Nuclear: 0.45, energy.Solar: 0.08,
					energy.Wind: 0.06, energy.Biomass: 0.05, energy.Gas: 0.14,
				},
				Dispatchable:    []energy.Source{energy.Hydro, energy.Gas},
				WindVariability: 0.45, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 7.5, SeasonalAmp: 7.0, DiurnalAmp: 2.5, Noise: 1.2},
		},
		{
			ID: Madrid, Name: "Madrid, Spain", AWSZone: "eu-south-2",
			WSF: 0.90, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.12,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Solar: 0.25, energy.Wind: 0.20, energy.Nuclear: 0.20,
					energy.Hydro: 0.08, energy.Gas: 0.22, energy.Coal: 0.05,
				},
				Dispatchable:    []energy.Source{energy.Gas, energy.Hydro, energy.Coal},
				WindVariability: 0.50, WindPersistence: 0.88, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 16.0, SeasonalAmp: 9.0, DiurnalAmp: 3.5, Noise: 1.0},
		},
		{
			ID: Oregon, Name: "Oregon, USA", AWSZone: "us-west-2",
			WSF: 0.52, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.07,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Hydro: 0.12, energy.Wind: 0.18, energy.Gas: 0.45,
					energy.Solar: 0.07, energy.Nuclear: 0.08, energy.Coal: 0.10,
				},
				Dispatchable:    []energy.Source{energy.Gas, energy.Hydro, energy.Coal},
				WindVariability: 0.55, WindPersistence: 0.90, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 8.5, SeasonalAmp: 6.5, DiurnalAmp: 3.0, Noise: 1.1},
		},
		{
			ID: Milan, Name: "Milan, Italy", AWSZone: "eu-south-1",
			WSF: 0.31, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.19,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Gas: 0.58, energy.Hydro: 0.08, energy.Solar: 0.10,
					energy.Wind: 0.05, energy.Oil: 0.05, energy.Coal: 0.09,
					energy.Nuclear: 0.05,
				},
				Dispatchable:    []energy.Source{energy.Gas, energy.Hydro},
				WindVariability: 0.40, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 12.5, SeasonalAmp: 8.5, DiurnalAmp: 3.0, Noise: 1.1},
		},
		{
			ID: Mumbai, Name: "Mumbai, India", AWSZone: "ap-south-1",
			WSF: 0.80, PUE: DefaultPUE, Servers: DefaultServersPerRegion, EnergyPriceUSD: 0.09,
			Grid: gridmix.Params{
				Base: energy.Mix{
					energy.Coal: 0.60, energy.Gas: 0.15, energy.Oil: 0.05,
					energy.Solar: 0.11, energy.Wind: 0.07, energy.Hydro: 0.02,
				},
				Dispatchable:    []energy.Source{energy.Coal, energy.Gas},
				WindVariability: 0.40, WindPersistence: 0.85, ShareNoise: 0.05,
			},
			Climate: weather.Params{AnnualMean: 25.0, SeasonalAmp: 3.0, DiurnalAmp: 2.0, Noise: 0.8},
		},
	}
}

// DefaultsSubset returns fresh copies of the named regions, in the given
// order, erroring on unknown IDs. Used by the Fig. 12 region-availability
// study.
func DefaultsSubset(ids ...ID) ([]*Region, error) {
	byID := make(map[ID]*Region)
	for _, r := range Defaults() {
		byID[r.ID] = r
	}
	out := make([]*Region, 0, len(ids))
	for _, id := range ids {
		r, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("region: unknown region %q", id)
		}
		out = append(out, r)
	}
	return out, nil
}

// Snapshot captures every sustainability factor of one region at one
// instant; it is what the scheduler (and footprint model) read.
type Snapshot struct {
	Region ID
	Time   time.Time
	CI     units.CarbonIntensity
	EWIF   units.EWIF
	WUE    units.WUE
	WSF    float64
	PUE    float64
}

// WaterIntensity computes the paper's Eq. 6:
//
//	H2O_intensity = (WUE + PUE*EWIF) * (1 + WSF)   [L/kWh]
func (s Snapshot) WaterIntensity() units.WaterIntensity {
	return units.WaterIntensity((float64(s.WUE) + s.PUE*float64(s.EWIF)) * (1 + s.WSF))
}

// Environment binds regions to their grid-mix and weather signals under one
// factor table. All schedulers and the footprint accounting read region
// conditions through an Environment; the Environment reads them through a
// feed.Provider — the synthetic generators by default, or a replayed/live
// feed. Reads are safe for concurrent use (the deterministic providers are
// immutable; Live serves from a locked cache).
type Environment struct {
	// Regions are the static region descriptions, in registry order.
	Regions []*Region
	// Table maps energy sources to carbon/water factors.
	Table energy.FactorTable
	// Start is the beginning of the covered horizon.
	Start time.Time
	// Hours is the horizon length.
	Hours int

	byID map[ID]*Region
	prov feed.Provider
}

// NewEnvironment builds a synthetic-feed environment: the per-region
// grid-mix and weather series covering [start, start+hours), generated
// deterministically from seed — identical inputs always produce identical
// snapshots, and the values are bit-for-bit the series this constructor
// produced before the provider abstraction existed (the feed package's
// seed strides pin this).
func NewEnvironment(regions []*Region, tbl energy.FactorTable, start time.Time, hours int, seed int64) (*Environment, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("region: environment needs at least one region")
	}
	specs := make([]feed.SyntheticRegion, len(regions))
	for i, r := range regions {
		specs[i] = feed.SyntheticRegion{Key: string(r.ID), Grid: r.Grid, Climate: r.Climate}
	}
	prov, err := feed.NewSynthetic(specs, start, hours, seed)
	if err != nil {
		return nil, fmt.Errorf("region: %w", err)
	}
	return NewEnvironmentWithProvider(regions, tbl, start, hours, prov)
}

// NewEnvironmentWithProvider builds an environment over an existing feed
// provider — a feed.Replay serving a recorded trace, a feed.Live polling
// an external API, or a feed.Synthetic built elsewhere. The provider must
// answer for every region's key; it may answer for more (a replay of a
// five-region recording backs a two-region environment). Determinism is
// the provider's: Synthetic and Replay environments replay
// decision-for-decision, a Live environment tracks an external world.
func NewEnvironmentWithProvider(regions []*Region, tbl energy.FactorTable, start time.Time, hours int, prov feed.Provider) (*Environment, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("region: environment needs at least one region")
	}
	if hours <= 0 {
		return nil, fmt.Errorf("region: environment needs a positive horizon, got %d hours", hours)
	}
	if prov == nil {
		return nil, fmt.Errorf("region: nil feed provider")
	}
	served := make(map[string]bool)
	for _, key := range prov.Regions() {
		served[key] = true
	}
	env := &Environment{
		Regions: regions,
		Table:   tbl,
		Start:   start,
		Hours:   hours,
		byID:    make(map[ID]*Region, len(regions)),
		prov:    prov,
	}
	for _, r := range regions {
		if _, dup := env.byID[r.ID]; dup {
			return nil, fmt.Errorf("region: duplicate region %q", r.ID)
		}
		if !served[string(r.ID)] {
			return nil, fmt.Errorf("region: %s feed does not serve region %q", prov.Name(), r.ID)
		}
		env.byID[r.ID] = r
	}
	return env, nil
}

// Provider exposes the feed behind this environment — the serving layer
// reads its health for /v1/status and /metrics, and waterwised -record
// samples it into a replay trace.
func (e *Environment) Provider() feed.Provider { return e.prov }

// Region returns the static region description for id, or nil if unknown.
func (e *Environment) Region(id ID) *Region { return e.byID[id] }

// Partition returns a view of the environment restricted to the named
// regions, in the given order. The view shares the receiver's feed
// provider — partitioning never regenerates, reseeds, or re-fetches the
// signals, so a snapshot read through a view is bit-identical to one read
// through the full environment. That sharing is what makes region-sharded
// serving (internal/fleet) decision-identical to a single scheduler over
// the same world: every shard sees the same series the single server
// would, just fewer regions of it (and N shards over one Live provider
// share one cache, not N upstream pollers).
func (e *Environment) Partition(ids ...ID) (*Environment, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("region: empty partition")
	}
	view := &Environment{
		Table: e.Table,
		Start: e.Start,
		Hours: e.Hours,
		byID:  make(map[ID]*Region, len(ids)),
		prov:  e.prov,
	}
	view.Regions = make([]*Region, 0, len(ids))
	for _, id := range ids {
		r, ok := e.byID[id]
		if !ok {
			return nil, fmt.Errorf("region: partition names unknown region %q", id)
		}
		if _, dup := view.byID[id]; dup {
			return nil, fmt.Errorf("region: partition names region %q twice", id)
		}
		view.Regions = append(view.Regions, r)
		view.byID[id] = r
	}
	return view, nil
}

// IDs returns the region IDs in registry order.
func (e *Environment) IDs() []ID {
	out := make([]ID, len(e.Regions))
	for i, r := range e.Regions {
		out[i] = r.ID
	}
	return out
}

// Snapshot returns the full sustainability snapshot for region id at time
// t: the provider's sample turned into CI/EWIF under the factor table and
// WUE under the wet-bulb model, with the region's static WSF/PUE unless
// the sample overrides them. The boolean is false if the region is
// unknown (or, for a live feed that never primed the region, on a
// provider error — deterministic providers never fail on a known region).
func (e *Environment) Snapshot(id ID, t time.Time) (Snapshot, bool) {
	r, ok := e.byID[id]
	if !ok {
		return Snapshot{}, false
	}
	smp, err := e.prov.At(string(id), t)
	if err != nil {
		return Snapshot{}, false
	}
	pue := r.PUE
	if smp.PUE > 0 {
		pue = smp.PUE
	}
	wsf := r.WSF
	if smp.WSF >= 0 {
		wsf = smp.WSF
	}
	return Snapshot{
		Region: id,
		Time:   t,
		CI:     smp.Mix.CarbonIntensity(e.Table),
		EWIF:   smp.Mix.EWIF(e.Table),
		WUE:    weather.WUEFromWetBulb(smp.WetBulb),
		WSF:    wsf,
		PUE:    pue,
	}, true
}

// MixAt exposes the raw energy mix for region id at time t (used by the
// Ecovisor comparator, which reacts to the solar share). Unknown regions
// and provider errors yield the zero mix.
func (e *Environment) MixAt(id ID, t time.Time) energy.Mix {
	if e.byID[id] == nil {
		return energy.Mix{}
	}
	smp, err := e.prov.At(string(id), t)
	if err != nil {
		return energy.Mix{}
	}
	return smp.Mix
}

// End returns the first instant past the generated horizon.
func (e *Environment) End() time.Time {
	return e.Start.Add(time.Duration(e.Hours) * time.Hour)
}
