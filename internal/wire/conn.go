package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Conn frames an io.ReadWriter (normally a net.Conn) into the wire
// protocol. Read and write sides hold their own reusable buffers, so a
// long-lived connection encodes and decodes frames without per-frame
// allocation. ReadFrame may be used from one goroutine while WriteFrame
// is used from others (writes are serialized internally); ReadFrame
// itself is single-goroutine.
type Conn struct {
	br    *bufio.Reader
	rhdr  [HeaderSize]byte
	rbuf  []byte // payload scratch, grown to the largest frame seen
	codec Codec

	wmu  sync.Mutex
	bw   *bufio.Writer
	whdr [HeaderSize]byte
}

// connBufSize is the bufio buffer size for each direction.
const connBufSize = 64 << 10

// NewConn wraps rw in a framed protocol connection.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		br: bufio.NewReaderSize(rw, connBufSize),
		bw: bufio.NewWriterSize(rw, connBufSize),
	}
}

// Codec returns the connection's decode-side Codec (its string intern
// table). Not safe for use concurrent with ReadFrame.
func (c *Conn) Codec() *Codec { return &c.codec }

// ReadFrame reads the next frame, verifying header and checksum. The
// returned payload is valid only until the next ReadFrame call. A clean
// peer close before any header byte returns io.EOF; a close mid-frame
// returns an error wrapping ErrTruncated.
func (c *Conn) ReadFrame() (Type, []byte, error) {
	if _, err := io.ReadFull(c.br, c.rhdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	t, n, crc, err := parseHeader(c.rhdr[:])
	if err != nil {
		return 0, nil, err
	}
	// n is bounded by MaxPayload (parseHeader), so a hostile length
	// can never force a larger allocation; grow to exactly n.
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	payload := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: payload: %v", ErrTruncated, err)
	}
	if Checksum(payload) != crc {
		return 0, nil, ErrChecksum
	}
	return t, payload, nil
}

// WriteFrame writes one frame and flushes it. Safe for concurrent use.
func (c *Conn) WriteFrame(t Type, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	putHeader(c.whdr[:], t, len(payload), Checksum(payload))
	if _, err := c.bw.Write(c.whdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// IsClosed reports whether err looks like a normal peer disconnect
// rather than a protocol violation: io.EOF, a torn frame, or a closed
// network connection.
func IsClosed(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, ErrTruncated) || errors.Is(err, io.ErrClosedPipe)
}
