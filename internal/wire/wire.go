// Package wire implements the binary streaming protocol spoken between
// waterwised and persistent-connection clients (cmd/loadgen -protocol
// stream, internal/server's StreamListener, internal/fleet's gateway).
//
// The protocol carries the same semantics as POST /v1/jobs and
// GET /v1/decisions — the same typed submit errors, the same dedupe
// index, the same dense-seq decision stream — over one long-lived TCP
// connection per client. Every message is a length-prefixed frame:
//
//	offset  size  field
//	0       4     magic "WWS1" (little-endian uint32 0x31535757)
//	4       1     protocol version (currently 1)
//	5       1     frame type
//	6       2     reserved (must be zero)
//	8       4     payload length (little-endian, <= MaxPayload)
//	12      4     CRC32-C (Castagnoli) of the payload
//	16      n     payload
//
// All multi-byte integers are little-endian. Strings are encoded as a
// one-byte length followed by UTF-8 bytes (the protocol never needs
// names longer than 255 bytes). Times travel as int64 Unix nanoseconds;
// the sentinel math.MinInt64 encodes the zero time.
//
// The encode path is allocation-free: AppendXxx functions append into a
// caller-owned scratch buffer. The decode path reuses caller-owned
// destination slices and interns region/benchmark names through a Codec
// so steady-state decoding does not allocate either (see
// BenchmarkFrameRoundTrip).
package wire

import "math"

// Version is the protocol version carried in every frame header.
// Peers reject any other value with ErrVersion.
const Version = 1

// Magic is the little-endian uint32 spelling "WWS1" that opens every
// frame.
const Magic uint32 = 0x31535757

// MaxPayload caps a frame's declared payload length. Decoders reject
// larger declarations before allocating, so a hostile length prefix can
// never force a large allocation. Matches the 16 MiB HTTP body cap.
const MaxPayload = 16 << 20

// HeaderSize is the fixed size of a frame header in bytes.
const HeaderSize = 16

// Type identifies a frame's payload encoding.
type Type uint8

// Frame types. The client opens with Hello, the server answers with
// Welcome, then Submit/SubmitReply and Decisions/Ack flow concurrently
// until either side closes. Error is terminal: the sender closes the
// connection after writing it.
const (
	// TypeHello is the client's opening frame: a resume cursor and
	// option flags.
	TypeHello Type = 1
	// TypeWelcome is the server's handshake reply: log cursor bounds
	// and the served region set.
	TypeWelcome Type = 2
	// TypeSubmit carries a batch of job submissions (client -> server).
	TypeSubmit Type = 3
	// TypeSubmitReply answers one Submit frame with a per-job result
	// code and assigned id, in submission order.
	TypeSubmitReply Type = 4
	// TypeDecisions pushes a batch of placement decisions
	// (server -> client) together with the cursor to resume from.
	TypeDecisions Type = 5
	// TypeAck acknowledges pushed decisions up to a seq; it advances
	// the server's flow-control window.
	TypeAck Type = 6
	// TypeError reports a fatal protocol error; the connection closes
	// after it.
	TypeError Type = 7
)

// maxType is the highest assigned frame type; frames declaring a higher
// type are rejected with ErrUnknownType.
const maxType = TypeError

// HelloFlag values carried in Hello.Flags.
const (
	// HelloSubscribe asks the server to push Decisions frames from the
	// resume cursor onward. Without it the connection is ingest-only.
	HelloSubscribe uint32 = 1 << 0
)

// Hello is the client's opening handshake payload.
type Hello struct {
	// Resume is the decision cursor to resume pushes from: the last
	// seq the client has already seen (0 for a fresh subscription).
	Resume uint64
	// Flags is a bitmask of HelloXxx options.
	Flags uint32
}

// Welcome is the server's handshake reply payload.
type Welcome struct {
	// LastSeq is the newest decision seq in the server's log at
	// handshake time (0 if none yet).
	LastSeq uint64
	// Oldest is the oldest decision seq still retained; a Resume
	// cursor older than Oldest-1 has lost decisions to ring eviction.
	Oldest uint64
	// Regions is the set of region IDs this endpoint serves, for
	// client-side routing (the stream analogue of /v1/status regions).
	Regions []string
}

// SubmitCode classifies one job's submit outcome in a SubmitReply
// frame. Codes mirror the typed server errors and their HTTP statuses.
type SubmitCode uint8

// Submit result codes.
const (
	// SubmitOK: the job was accepted (or deduped to an earlier
	// identical submit — same semantics as HTTP, which also reports
	// an idempotent replay as accepted with the original id).
	SubmitOK SubmitCode = 0
	// SubmitQueueFull is the 429 equivalent (server.ErrQueueFull).
	SubmitQueueFull SubmitCode = 1
	// SubmitStopped is the 503 equivalent (server.ErrStopped).
	SubmitStopped SubmitCode = 2
	// SubmitUnknownRegion is the 404 equivalent (server.ErrUnknownRegion).
	SubmitUnknownRegion SubmitCode = 3
	// SubmitUnknownBenchmark is a 400 equivalent (server.ErrUnknownBenchmark).
	SubmitUnknownBenchmark SubmitCode = 4
	// SubmitDuplicateID is the 409 equivalent (server.ErrDuplicateID):
	// the id or spec digest collides with a different, non-identical
	// submission.
	SubmitDuplicateID SubmitCode = 5
	// SubmitOutsideHorizon is a 400 equivalent (server.ErrOutsideHorizon).
	SubmitOutsideHorizon SubmitCode = 6
	// SubmitInvalid is the 400 catch-all for specs the server rejects
	// for any other reason.
	SubmitInvalid SubmitCode = 7
)

// Job is the wire form of a job submission, mirroring server.JobSpec.
type Job struct {
	// HasID reports whether the client assigned ID itself (the
	// idempotent-retry path); otherwise the server allocates one.
	HasID bool
	// ID is the client-assigned job id; meaningful only when HasID.
	ID int64
	// SubmitNano is the logical submit time as Unix nanoseconds;
	// TimeNone means the zero time (server uses the current round).
	SubmitNano int64
	// DurationSec is the job's true runtime in seconds.
	DurationSec float64
	// EnergyKWh is the job's true energy draw in kWh.
	EnergyKWh float64
	// EstDurationSec is the scheduler-visible runtime estimate.
	EstDurationSec float64
	// EstEnergyKWh is the scheduler-visible energy estimate.
	EstEnergyKWh float64
	// Benchmark names the workload profile.
	Benchmark string
	// Home is the job's home region id.
	Home string
}

// SubmitResult is one job's outcome within a SubmitReply frame.
type SubmitResult struct {
	// Code classifies the outcome.
	Code SubmitCode
	// ID is the accepted (possibly deduped) job id; 0 unless Code is
	// SubmitOK.
	ID int64
}

// Decision is the wire form of a placement decision, mirroring
// server.Decision plus the fleet's shard coordinates (zero for a
// single-server endpoint).
type Decision struct {
	// Seq is the dense global sequence number.
	Seq uint64
	// JobID identifies the placed job.
	JobID int64
	// Shard is the owning shard index (fleet only).
	Shard uint32
	// ShardSeq is the per-shard seq (fleet only; equals Seq otherwise).
	ShardSeq uint64
	// RoundNano is the scheduling round's logical time.
	RoundNano int64
	// StartNano is the placed start time.
	StartNano int64
	// FinishNano is the placed finish time.
	FinishNano int64
	// DecidedWallNano is the wall-clock decision time.
	DecidedWallNano int64
	// CarbonG is the decision's carbon footprint in grams CO2.
	CarbonG float64
	// WaterL is the decision's water footprint in liters.
	WaterL float64
	// Region is the placement region id.
	Region string
}

// ErrCode classifies a fatal Error frame.
type ErrCode uint8

// Error frame codes.
const (
	// ErrCodeProtocol: the peer sent a malformed or out-of-order frame
	// (for example, anything before Hello).
	ErrCodeProtocol ErrCode = 1
	// ErrCodeShutdown: the server is shutting down.
	ErrCodeShutdown ErrCode = 2
)

// TimeNone is the int64 sentinel encoding the zero time.Time.
const TimeNone = math.MinInt64
