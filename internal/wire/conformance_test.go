package wire

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden frame fixtures")

// conformanceFrames pins one representative frame per frame type. The
// golden hex fixtures under testdata/frames are the wire contract: if
// an encoding change breaks compatibility, these tests break loudly.
// Regenerate deliberately with: go test ./internal/wire -run Conformance -update
func conformanceFrames(t *testing.T) []struct {
	name    string
	typ     Type
	payload []byte
	// check decodes the payload and verifies it round-trips to the
	// pinned struct values.
	check func(t *testing.T, c *Codec, p []byte)
} {
	t.Helper()
	hello := Hello{Resume: 12345, Flags: HelloSubscribe}
	welcome := Welcome{LastSeq: 9001, Oldest: 42, Regions: []string{"dublin", "oregon", "zurich"}}
	jobs := []Job{
		{
			HasID: true, ID: 77, SubmitNano: 1688169600000000000,
			DurationSec: 3600.5, EnergyKWh: 1.25, EstDurationSec: 3000, EstEnergyKWh: 1.0,
			Benchmark: "masstree", Home: "dublin",
		},
		{
			HasID: false, SubmitNano: TimeNone,
			DurationSec: 60, EnergyKWh: 0.05, EstDurationSec: 90, EstEnergyKWh: 0.04,
			Benchmark: "xapian", Home: "oregon",
		},
	}
	results := []SubmitResult{{Code: SubmitOK, ID: 77}, {Code: SubmitQueueFull}}
	decisions := []Decision{
		{
			Seq: 101, JobID: 77, Shard: 2, ShardSeq: 31,
			RoundNano: 1688169600000000000, StartNano: 1688169660000000000,
			FinishNano: 1688173260500000000, DecidedWallNano: 1688169600123456789,
			CarbonG: 52.5, WaterL: 1.75, Region: "zurich",
		},
	}

	submitPayload, err := AppendSubmit(nil, jobs)
	if err != nil {
		t.Fatalf("AppendSubmit: %v", err)
	}
	welcomePayload, err := AppendWelcome(nil, welcome)
	if err != nil {
		t.Fatalf("AppendWelcome: %v", err)
	}
	decisionsPayload, err := AppendDecisions(nil, 101, decisions)
	if err != nil {
		t.Fatalf("AppendDecisions: %v", err)
	}

	return []struct {
		name    string
		typ     Type
		payload []byte
		check   func(t *testing.T, c *Codec, p []byte)
	}{
		{"hello", TypeHello, AppendHello(nil, hello), func(t *testing.T, c *Codec, p []byte) {
			got, err := c.DecodeHello(p)
			if err != nil || got != hello {
				t.Fatalf("DecodeHello = %+v, %v; want %+v", got, err, hello)
			}
		}},
		{"welcome", TypeWelcome, welcomePayload, func(t *testing.T, c *Codec, p []byte) {
			got, err := c.DecodeWelcome(p)
			if err != nil || !reflect.DeepEqual(got, welcome) {
				t.Fatalf("DecodeWelcome = %+v, %v; want %+v", got, err, welcome)
			}
		}},
		{"submit", TypeSubmit, submitPayload, func(t *testing.T, c *Codec, p []byte) {
			got, err := c.DecodeSubmit(p, nil)
			if err != nil || !reflect.DeepEqual(got, jobs) {
				t.Fatalf("DecodeSubmit = %+v, %v; want %+v", got, err, jobs)
			}
		}},
		{"submit_reply", TypeSubmitReply, AppendSubmitReply(nil, results), func(t *testing.T, c *Codec, p []byte) {
			got, err := c.DecodeSubmitReply(p, nil)
			if err != nil || !reflect.DeepEqual(got, results) {
				t.Fatalf("DecodeSubmitReply = %+v, %v; want %+v", got, err, results)
			}
		}},
		{"decisions", TypeDecisions, decisionsPayload, func(t *testing.T, c *Codec, p []byte) {
			got, next, err := c.DecodeDecisions(p, nil)
			if err != nil || next != 101 || !reflect.DeepEqual(got, decisions) {
				t.Fatalf("DecodeDecisions = %+v, next=%d, %v; want %+v, next=101", got, next, err, decisions)
			}
		}},
		{"ack", TypeAck, AppendAck(nil, 98765), func(t *testing.T, c *Codec, p []byte) {
			got, err := c.DecodeAck(p)
			if err != nil || got != 98765 {
				t.Fatalf("DecodeAck = %d, %v; want 98765", got, err)
			}
		}},
		{"error", TypeError, AppendError(nil, ErrCodeProtocol, "expected hello"), func(t *testing.T, c *Codec, p []byte) {
			code, msg, err := c.DecodeError(p)
			if err != nil || code != ErrCodeProtocol || msg != "expected hello" {
				t.Fatalf("DecodeError = %d, %q, %v", code, msg, err)
			}
		}},
	}
}

// TestConformanceGoldenFrames pins the full framed encoding (header +
// payload) of every frame type against committed hex fixtures, and
// verifies the fixture bytes decode back to the pinned values.
func TestConformanceGoldenFrames(t *testing.T) {
	for _, tc := range conformanceFrames(t) {
		t.Run(tc.name, func(t *testing.T) {
			frame := AppendFrame(nil, tc.typ, tc.payload)
			path := filepath.Join("testdata", "frames", tc.name+".hex")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(hex.EncodeToString(frame)+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			want, err := hex.DecodeString(string(bytes.TrimSpace(raw)))
			if err != nil {
				t.Fatalf("bad fixture hex: %v", err)
			}
			if !bytes.Equal(frame, want) {
				t.Fatalf("encoding of %s changed:\n got %x\nwant %x\nwire compatibility break — bump Version or revert", tc.name, frame, want)
			}

			// The fixture must decode back to the pinned values.
			typ, payload, n, err := DecodeFrame(want)
			if err != nil {
				t.Fatalf("DecodeFrame(fixture): %v", err)
			}
			if typ != tc.typ || n != len(want) {
				t.Fatalf("DecodeFrame(fixture) = type %d, n %d; want type %d, n %d", typ, n, tc.typ, len(want))
			}
			tc.check(t, &Codec{}, payload)
		})
	}
}

// TestConformanceHeaderLayout pins the exact header byte layout so the
// offsets in the package doc stay true.
func TestConformanceHeaderLayout(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	frame := AppendFrame(nil, TypeAck, payload)
	if len(frame) != HeaderSize+4 {
		t.Fatalf("frame length = %d, want %d", len(frame), HeaderSize+4)
	}
	wantHdr := []byte{
		'W', 'W', 'S', '1', // magic, little-endian 0x31535757
		1,                  // version
		byte(TypeAck),      // frame type
		0, 0,               // reserved
		4, 0, 0, 0,         // payload length
	}
	if !bytes.Equal(frame[:12], wantHdr) {
		t.Fatalf("header = %x, want %x", frame[:12], wantHdr)
	}
	if got := Checksum(payload); got != le32(frame[12:16]) {
		t.Fatalf("header crc = %x, want %x", le32(frame[12:16]), got)
	}
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
