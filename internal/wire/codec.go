package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec holds decoder state that lets the hot path run allocation-free:
// an intern table for region and benchmark names, which come from small
// fixed sets, so after warm-up every decoded string is a map hit rather
// than a fresh allocation. A Codec is not safe for concurrent use; use
// one per connection (Conn embeds one).
type Codec struct {
	names map[string]string
}

// intern returns a string equal to b, reusing a previously-decoded
// instance when possible. The m[string(b)] lookup compiles to a
// no-allocation map access; only the first sighting of a name copies it.
func (c *Codec) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.names[string(b)]; ok {
		return s
	}
	if c.names == nil {
		c.names = make(map[string]string, 16)
	}
	s := string(b)
	c.names[s] = s
	return s
}

// reader is a bounds-checked cursor over a payload. After any read
// fails, every later read returns zero values and r.bad stays true, so
// decoders can check once at the end.
type reader struct {
	p   []byte
	off int
	bad bool
}

func (r *reader) u8() uint8 {
	if r.bad || r.off+1 > len(r.p) {
		r.bad = true
		return 0
	}
	v := r.p[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.bad || r.off+4 > len(r.p) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.bad || r.off+8 > len(r.p) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// bytes8 reads a one-byte-length-prefixed byte string, aliasing r.p.
func (r *reader) bytes8() []byte {
	n := int(r.u8())
	if r.bad || r.off+n > len(r.p) {
		r.bad = true
		return nil
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b
}

// done returns ErrBadPayload (wrapped with what) unless the whole
// payload parsed cleanly with no trailing bytes.
func (r *reader) done(what string) error {
	if r.bad {
		return fmt.Errorf("%w: short %s", ErrBadPayload, what)
	}
	if r.off != len(r.p) {
		return fmt.Errorf("%w: %d trailing bytes after %s", ErrBadPayload, len(r.p)-r.off, what)
	}
	return nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// appendStr8 appends a one-byte-length-prefixed string. Strings longer
// than 255 bytes cannot be encoded; EncodeXxx callers validate first.
func appendStr8(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// str8OK reports whether s fits a one-byte length prefix.
func str8OK(s string) bool { return len(s) <= 255 }

// Minimum encoded sizes per element, used to validate declared counts
// against the actual payload length BEFORE allocating result slices —
// a hostile count can never force an allocation larger than the
// (already MaxPayload-bounded) payload itself.
const (
	minJobSize      = 1 + 8 + 8 + 4*8 + 1 + 1 // flags, id, submit, 4 floats, 2 empty strings
	minResultSize   = 1 + 8                   // code, id
	minDecisionSize = 8 + 8 + 4 + 8 + 4*8 + 2*8 + 1
)

// checkCount validates a declared element count against the remaining
// payload bytes and minimum element size.
func checkCount(r *reader, count uint32, minSize int, what string) error {
	rem := len(r.p) - r.off
	if int64(count)*int64(minSize) > int64(rem) {
		return fmt.Errorf("%w: %s count %d exceeds %d payload bytes", ErrBadPayload, what, count, rem)
	}
	return nil
}

// AppendHello appends a Hello payload to dst.
func AppendHello(dst []byte, h Hello) []byte {
	dst = appendU64(dst, h.Resume)
	return appendU32(dst, h.Flags)
}

// DecodeHello parses a Hello payload.
func (c *Codec) DecodeHello(p []byte) (Hello, error) {
	r := reader{p: p}
	h := Hello{Resume: r.u64(), Flags: r.u32()}
	return h, r.done("hello")
}

// AppendWelcome appends a Welcome payload to dst. Region names longer
// than 255 bytes are rejected.
func AppendWelcome(dst []byte, w Welcome) ([]byte, error) {
	dst = appendU64(dst, w.LastSeq)
	dst = appendU64(dst, w.Oldest)
	dst = appendU32(dst, uint32(len(w.Regions)))
	for _, reg := range w.Regions {
		if !str8OK(reg) {
			return nil, fmt.Errorf("%w: region name %q too long", ErrBadPayload, reg)
		}
		dst = appendStr8(dst, reg)
	}
	return dst, nil
}

// DecodeWelcome parses a Welcome payload. Welcome is handshake-only,
// so its region slice is freshly allocated.
func (c *Codec) DecodeWelcome(p []byte) (Welcome, error) {
	r := reader{p: p}
	w := Welcome{LastSeq: r.u64(), Oldest: r.u64()}
	count := r.u32()
	if err := checkCount(&r, count, 1, "region"); err != nil {
		return Welcome{}, err
	}
	if count > 0 && !r.bad {
		w.Regions = make([]string, 0, count)
		for i := uint32(0); i < count; i++ {
			w.Regions = append(w.Regions, c.intern(r.bytes8()))
		}
	}
	if err := r.done("welcome"); err != nil {
		return Welcome{}, err
	}
	return w, nil
}

// appendJob appends one encoded Job.
func appendJob(dst []byte, j Job) []byte {
	var flags byte
	if j.HasID {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = appendU64(dst, uint64(j.ID))
	dst = appendU64(dst, uint64(j.SubmitNano))
	dst = appendF64(dst, j.DurationSec)
	dst = appendF64(dst, j.EnergyKWh)
	dst = appendF64(dst, j.EstDurationSec)
	dst = appendF64(dst, j.EstEnergyKWh)
	dst = appendStr8(dst, j.Benchmark)
	return appendStr8(dst, j.Home)
}

// AppendSubmit appends a Submit payload (a batch of jobs) to dst.
// Benchmark or region names longer than 255 bytes are rejected.
func AppendSubmit(dst []byte, jobs []Job) ([]byte, error) {
	for i := range jobs {
		if !str8OK(jobs[i].Benchmark) || !str8OK(jobs[i].Home) {
			return nil, fmt.Errorf("%w: job %d has a name longer than 255 bytes", ErrBadPayload, i)
		}
	}
	dst = appendU32(dst, uint32(len(jobs)))
	for i := range jobs {
		dst = appendJob(dst, jobs[i])
	}
	return dst, nil
}

// DecodeSubmit parses a Submit payload, appending into dst (pass a
// reused slice's [:0] for an allocation-free steady state).
func (c *Codec) DecodeSubmit(p []byte, dst []Job) ([]Job, error) {
	r := reader{p: p}
	count := r.u32()
	if r.bad {
		return nil, r.done("submit")
	}
	if err := checkCount(&r, count, minJobSize, "job"); err != nil {
		return nil, err
	}
	for i := uint32(0); i < count; i++ {
		flags := r.u8()
		j := Job{
			HasID:          flags&1 != 0,
			ID:             r.i64(),
			SubmitNano:     r.i64(),
			DurationSec:    r.f64(),
			EnergyKWh:      r.f64(),
			EstDurationSec: r.f64(),
			EstEnergyKWh:   r.f64(),
			Benchmark:      c.intern(r.bytes8()),
			Home:           c.intern(r.bytes8()),
		}
		if flags&^byte(1) != 0 {
			return nil, fmt.Errorf("%w: job %d has unknown flags 0x%02x", ErrBadPayload, i, flags)
		}
		if r.bad {
			break
		}
		dst = append(dst, j)
	}
	if err := r.done("submit"); err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendSubmitReply appends a SubmitReply payload to dst.
func AppendSubmitReply(dst []byte, results []SubmitResult) []byte {
	dst = appendU32(dst, uint32(len(results)))
	for _, res := range results {
		dst = append(dst, byte(res.Code))
		dst = appendU64(dst, uint64(res.ID))
	}
	return dst
}

// DecodeSubmitReply parses a SubmitReply payload, appending into dst.
func (c *Codec) DecodeSubmitReply(p []byte, dst []SubmitResult) ([]SubmitResult, error) {
	r := reader{p: p}
	count := r.u32()
	if r.bad {
		return nil, r.done("submit reply")
	}
	if err := checkCount(&r, count, minResultSize, "result"); err != nil {
		return nil, err
	}
	for i := uint32(0); i < count; i++ {
		res := SubmitResult{Code: SubmitCode(r.u8()), ID: r.i64()}
		if res.Code > SubmitInvalid {
			return nil, fmt.Errorf("%w: unknown submit code %d", ErrBadPayload, res.Code)
		}
		if r.bad {
			break
		}
		dst = append(dst, res)
	}
	if err := r.done("submit reply"); err != nil {
		return nil, err
	}
	return dst, nil
}

// AppendDecisions appends a Decisions payload to dst. next is the
// cursor the client should resume from after consuming the batch (the
// last decision's seq). Region names longer than 255 bytes are
// rejected.
func AppendDecisions(dst []byte, next uint64, decisions []Decision) ([]byte, error) {
	for i := range decisions {
		if !str8OK(decisions[i].Region) {
			return nil, fmt.Errorf("%w: decision %d region name too long", ErrBadPayload, i)
		}
	}
	dst = appendU64(dst, next)
	dst = appendU32(dst, uint32(len(decisions)))
	for i := range decisions {
		d := &decisions[i]
		dst = appendU64(dst, d.Seq)
		dst = appendU64(dst, uint64(d.JobID))
		dst = appendU32(dst, d.Shard)
		dst = appendU64(dst, d.ShardSeq)
		dst = appendU64(dst, uint64(d.RoundNano))
		dst = appendU64(dst, uint64(d.StartNano))
		dst = appendU64(dst, uint64(d.FinishNano))
		dst = appendU64(dst, uint64(d.DecidedWallNano))
		dst = appendF64(dst, d.CarbonG)
		dst = appendF64(dst, d.WaterL)
		dst = appendStr8(dst, d.Region)
	}
	return dst, nil
}

// DecodeDecisions parses a Decisions payload, appending into dst.
func (c *Codec) DecodeDecisions(p []byte, dst []Decision) (out []Decision, next uint64, err error) {
	r := reader{p: p}
	next = r.u64()
	count := r.u32()
	if r.bad {
		return nil, 0, r.done("decisions")
	}
	if err := checkCount(&r, count, minDecisionSize, "decision"); err != nil {
		return nil, 0, err
	}
	for i := uint32(0); i < count; i++ {
		d := Decision{
			Seq:             r.u64(),
			JobID:           r.i64(),
			Shard:           r.u32(),
			ShardSeq:        r.u64(),
			RoundNano:       r.i64(),
			StartNano:       r.i64(),
			FinishNano:      r.i64(),
			DecidedWallNano: r.i64(),
			CarbonG:         r.f64(),
			WaterL:          r.f64(),
			Region:          c.intern(r.bytes8()),
		}
		if r.bad {
			break
		}
		dst = append(dst, d)
	}
	if err := r.done("decisions"); err != nil {
		return nil, 0, err
	}
	return dst, next, nil
}

// AppendAck appends an Ack payload to dst.
func AppendAck(dst []byte, seq uint64) []byte {
	return appendU64(dst, seq)
}

// DecodeAck parses an Ack payload.
func (c *Codec) DecodeAck(p []byte) (uint64, error) {
	r := reader{p: p}
	seq := r.u64()
	return seq, r.done("ack")
}

// AppendError appends an Error payload to dst; msg is truncated to 255
// bytes.
func AppendError(dst []byte, code ErrCode, msg string) []byte {
	if len(msg) > 255 {
		msg = msg[:255]
	}
	dst = append(dst, byte(code))
	return appendStr8(dst, msg)
}

// DecodeError parses an Error payload.
func (c *Codec) DecodeError(p []byte) (ErrCode, string, error) {
	r := reader{p: p}
	code := ErrCode(r.u8())
	msg := string(r.bytes8())
	return code, msg, r.done("error")
}
