package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randJobs builds a randomized batch drawing names from a small fixed
// pool (the realistic case: benchmarks and regions are small sets).
func randJobs(rng *rand.Rand, n int) []Job {
	benches := []string{"masstree", "xapian", "imgdnn", "sphinx", ""}
	regions := []string{"dublin", "oregon", "zurich", "saopaulo"}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			HasID:          rng.Intn(2) == 0,
			ID:             rng.Int63() - rng.Int63(),
			SubmitNano:     rng.Int63() - rng.Int63(),
			DurationSec:    rng.ExpFloat64() * 1000,
			EnergyKWh:      rng.Float64(),
			EstDurationSec: rng.ExpFloat64() * 1000,
			EstEnergyKWh:   rng.Float64(),
			Benchmark:      benches[rng.Intn(len(benches))],
			Home:           regions[rng.Intn(len(regions))],
		}
		if rng.Intn(10) == 0 {
			jobs[i].SubmitNano = TimeNone
		}
	}
	return jobs
}

func randDecisions(rng *rand.Rand, n int, startSeq uint64) []Decision {
	regions := []string{"dublin", "oregon", "zurich", "saopaulo"}
	ds := make([]Decision, n)
	for i := range ds {
		ds[i] = Decision{
			Seq:             startSeq + uint64(i),
			JobID:           rng.Int63(),
			Shard:           uint32(rng.Intn(8)),
			ShardSeq:        rng.Uint64() >> 8,
			RoundNano:       rng.Int63(),
			StartNano:       rng.Int63(),
			FinishNano:      rng.Int63(),
			DecidedWallNano: rng.Int63(),
			CarbonG:         rng.Float64() * 100,
			WaterL:          rng.Float64() * 10,
			Region:          regions[rng.Intn(len(regions))],
		}
	}
	return ds
}

// TestRoundTripSubmit: encode→decode is the identity on randomized job
// batches, including reuse of the destination slice across batches.
func TestRoundTripSubmit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var c Codec
	var scratch []Job
	for trial := 0; trial < 50; trial++ {
		jobs := randJobs(rng, rng.Intn(200))
		payload, err := AppendSubmit(nil, jobs)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = c.DecodeSubmit(payload, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(scratch) != len(jobs) {
			t.Fatalf("trial %d: decoded %d jobs, want %d", trial, len(scratch), len(jobs))
		}
		for i := range jobs {
			if scratch[i] != jobs[i] {
				t.Fatalf("trial %d job %d: got %+v, want %+v", trial, i, scratch[i], jobs[i])
			}
		}
	}
}

// TestRoundTripDecisions: encode→decode ≡ identity for randomized
// decision batches, cursor included.
func TestRoundTripDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var c Codec
	var scratch []Decision
	for trial := 0; trial < 50; trial++ {
		ds := randDecisions(rng, rng.Intn(200), rng.Uint64()>>8)
		next := rng.Uint64()
		payload, err := AppendDecisions(nil, next, ds)
		if err != nil {
			t.Fatal(err)
		}
		var gotNext uint64
		scratch, gotNext, err = c.DecodeDecisions(payload, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		if gotNext != next {
			t.Fatalf("trial %d: next = %d, want %d", trial, gotNext, next)
		}
		if len(scratch) != len(ds) {
			t.Fatalf("trial %d: decoded %d decisions, want %d", trial, len(scratch), len(ds))
		}
		for i := range ds {
			if scratch[i] != ds[i] {
				t.Fatalf("trial %d decision %d: got %+v, want %+v", trial, i, scratch[i], ds[i])
			}
		}
	}
}

// TestRoundTripSubmitReply covers the remaining batch codec plus the
// scalar payloads.
func TestRoundTripSubmitReply(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var c Codec
	for trial := 0; trial < 20; trial++ {
		rs := make([]SubmitResult, rng.Intn(100))
		for i := range rs {
			rs[i] = SubmitResult{Code: SubmitCode(rng.Intn(int(SubmitInvalid) + 1))}
			if rs[i].Code == SubmitOK {
				rs[i].ID = rng.Int63()
			}
		}
		got, err := c.DecodeSubmitReply(AppendSubmitReply(nil, rs), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 && len(rs) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, rs) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}

	h, err := c.DecodeHello(AppendHello(nil, Hello{Resume: 5, Flags: HelloSubscribe}))
	if err != nil || h.Resume != 5 || h.Flags != HelloSubscribe {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}
	seq, err := c.DecodeAck(AppendAck(nil, math.MaxUint64))
	if err != nil || seq != math.MaxUint64 {
		t.Fatalf("ack round trip: %d, %v", seq, err)
	}
	code, msg, err := c.DecodeError(AppendError(nil, ErrCodeShutdown, "bye"))
	if err != nil || code != ErrCodeShutdown || msg != "bye" {
		t.Fatalf("error round trip: %d %q %v", code, msg, err)
	}
}

// TestDecodeFrameErrors: every malformed-frame class maps to its typed
// error.
func TestDecodeFrameErrors(t *testing.T) {
	good := AppendFrame(nil, TypeAck, AppendAck(nil, 1))
	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr error
	}{
		{"short header", func(b []byte) []byte { return b[:HeaderSize-1] }, ErrTruncated},
		{"torn payload", func(b []byte) []byte { return b[:len(b)-1] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, ErrVersion},
		{"zero type", func(b []byte) []byte { b[5] = 0; return b }, ErrUnknownType},
		{"unknown type", func(b []byte) []byte { b[5] = byte(maxType) + 1; return b }, ErrUnknownType},
		{"reserved bytes", func(b []byte) []byte { b[6] = 1; return b }, ErrReserved},
		{"oversize declaration", func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
			return b
		}, ErrTooLarge},
		{"checksum flip", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mangle(append([]byte(nil), good...))
			_, _, _, err := DecodeFrame(b)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("DecodeFrame = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestDecodePayloadErrors: hostile payloads (bad counts, short bodies,
// trailing junk, unknown enum values) return ErrBadPayload and never
// allocate past the payload size.
func TestDecodePayloadErrors(t *testing.T) {
	var c Codec
	huge := appendU32(nil, math.MaxUint32) // count with no body
	if _, err := c.DecodeSubmit(huge, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("DecodeSubmit(huge count) = %v, want ErrBadPayload", err)
	}
	if _, _, err := c.DecodeDecisions(append(appendU64(nil, 0), huge...), nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("DecodeDecisions(huge count) = %v, want ErrBadPayload", err)
	}
	if _, err := c.DecodeSubmitReply(huge, nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("DecodeSubmitReply(huge count) = %v, want ErrBadPayload", err)
	}

	payload, err := AppendSubmit(nil, randJobs(rand.New(rand.NewSource(1)), 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeSubmit(payload[:len(payload)-2], nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("DecodeSubmit(short) = %v, want ErrBadPayload", err)
	}
	if _, err := c.DecodeSubmit(append(payload, 0), nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("DecodeSubmit(trailing) = %v, want ErrBadPayload", err)
	}
	if _, err := c.DecodeHello(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("DecodeHello(empty) = %v, want ErrBadPayload", err)
	}
}

// pipeRW adapts separate reader/writer halves into an io.ReadWriter.
type pipeRW struct {
	io.Reader
	io.Writer
}

// TestConnRoundTrip drives frames through a Conn pair over an
// in-memory pipe, including payload reuse across frames.
func TestConnRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	out := NewConn(&pipeRW{Reader: &bytes.Buffer{}, Writer: &buf})
	jobs := randJobs(rand.New(rand.NewSource(3)), 40)
	payload, err := AppendSubmit(nil, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.WriteFrame(TypeSubmit, payload); err != nil {
		t.Fatal(err)
	}
	if err := out.WriteFrame(TypeAck, AppendAck(nil, 7)); err != nil {
		t.Fatal(err)
	}

	in := NewConn(&pipeRW{Reader: &buf, Writer: io.Discard})
	typ, p, err := in.ReadFrame()
	if err != nil || typ != TypeSubmit {
		t.Fatalf("ReadFrame 1 = %d, %v", typ, err)
	}
	got, err := in.Codec().DecodeSubmit(p, nil)
	if err != nil || !reflect.DeepEqual(got, jobs) {
		t.Fatalf("decode over conn mismatch: %v", err)
	}
	typ, p, err = in.ReadFrame()
	if err != nil || typ != TypeAck {
		t.Fatalf("ReadFrame 2 = %d, %v", typ, err)
	}
	if seq, err := in.Codec().DecodeAck(p); err != nil || seq != 7 {
		t.Fatalf("ack over conn = %d, %v", seq, err)
	}
	if _, _, err := in.ReadFrame(); err != io.EOF {
		t.Fatalf("ReadFrame at end = %v, want io.EOF", err)
	}
}

// TestConnTornFrame: a mid-frame cut surfaces as ErrTruncated, not a
// hang or a panic.
func TestConnTornFrame(t *testing.T) {
	frame := AppendFrame(nil, TypeAck, AppendAck(nil, 9))
	for cut := 1; cut < len(frame); cut++ {
		in := NewConn(&pipeRW{Reader: bytes.NewReader(frame[:cut]), Writer: io.Discard})
		if _, _, err := in.ReadFrame(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: ReadFrame = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFrameRoundTripAllocs enforces the zero-alloc hot path that
// BenchmarkFrameRoundTrip measures, so a regression fails tests and
// not just the benchmark report.
func TestFrameRoundTripAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	jobs := randJobs(rng, 128)
	ds := randDecisions(rng, 128, 1)
	var c Codec
	var frame, payload []byte
	jobScratch := make([]Job, 0, 256)
	decScratch := make([]Decision, 0, 256)

	run := func() {
		var err error
		payload, err = AppendSubmit(payload[:0], jobs)
		if err != nil {
			t.Fatal(err)
		}
		frame = AppendFrame(frame[:0], TypeSubmit, payload)
		_, p, _, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if jobScratch, err = c.DecodeSubmit(p, jobScratch[:0]); err != nil {
			t.Fatal(err)
		}

		payload, err = AppendDecisions(payload[:0], ds[len(ds)-1].Seq, ds)
		if err != nil {
			t.Fatal(err)
		}
		frame = AppendFrame(frame[:0], TypeDecisions, payload)
		_, p, _, err = DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if decScratch, _, err = c.DecodeDecisions(p, decScratch[:0]); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm scratch buffers and the intern table
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("frame round trip allocates %.1f times per op, want 0", allocs)
	}
}

// BenchmarkFrameRoundTrip measures the hot path end to end: encode a
// 256-job submit batch into a frame, decode it back, then the same for
// a 256-decision push. Run with -benchmem: the gate is 0 allocs/op.
func BenchmarkFrameRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	jobs := randJobs(rng, 256)
	ds := randDecisions(rng, 256, 1)
	var c Codec
	var frame, payload []byte
	jobScratch := make([]Job, 0, 512)
	decScratch := make([]Decision, 0, 512)
	var err error

	// Warm the intern table and scratch capacity outside the loop.
	payload, _ = AppendSubmit(payload[:0], jobs)
	frame = AppendFrame(frame[:0], TypeSubmit, payload)
	var bytesPerOp int

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err = AppendSubmit(payload[:0], jobs)
		if err != nil {
			b.Fatal(err)
		}
		frame = AppendFrame(frame[:0], TypeSubmit, payload)
		_, p, _, err := DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if jobScratch, err = c.DecodeSubmit(p, jobScratch[:0]); err != nil {
			b.Fatal(err)
		}
		bytesPerOp = len(frame)

		payload, err = AppendDecisions(payload[:0], ds[len(ds)-1].Seq, ds)
		if err != nil {
			b.Fatal(err)
		}
		frame = AppendFrame(frame[:0], TypeDecisions, payload)
		_, p, _, err = DecodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if decScratch, _, err = c.DecodeDecisions(p, decScratch[:0]); err != nil {
			b.Fatal(err)
		}
		bytesPerOp += len(frame)
	}
	b.SetBytes(int64(bytesPerOp))
	b.ReportMetric(float64(len(jobs)+len(ds))*float64(b.N)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkJSONRoundTrip is the control for BenchmarkFrameRoundTrip:
// the same 256-job batch and 256-decision push through encoding/json,
// which is what every HTTP request body and response pays. The ratio
// of the two benchmarks is the per-batch codec cost the binary
// protocol removes.
func BenchmarkJSONRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	jobs := randJobs(rng, 256)
	ds := randDecisions(rng, 256, 1)
	var jobScratch []Job
	var decScratch []Decision
	var bytesPerOp int

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb, err := json.Marshal(jobs)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(jb, &jobScratch); err != nil {
			b.Fatal(err)
		}
		db, err := json.Marshal(ds)
		if err != nil {
			b.Fatal(err)
		}
		if err := json.Unmarshal(db, &decScratch); err != nil {
			b.Fatal(err)
		}
		bytesPerOp = len(jb) + len(db)
	}
	b.SetBytes(int64(bytesPerOp))
	b.ReportMetric(float64(len(jobs)+len(ds))*float64(b.N)/b.Elapsed().Seconds(), "items/s")
}
