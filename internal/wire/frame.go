package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Typed frame-layer errors. Decoders wrap these with detail via %w, so
// callers test with errors.Is.
var (
	// ErrBadMagic: the frame does not open with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion: the frame declares an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrUnknownType: the frame declares an unassigned frame type.
	ErrUnknownType = errors.New("wire: unknown frame type")
	// ErrReserved: the reserved header bytes are non-zero.
	ErrReserved = errors.New("wire: reserved header bytes set")
	// ErrTooLarge: the declared payload length exceeds MaxPayload.
	ErrTooLarge = errors.New("wire: frame exceeds max payload")
	// ErrChecksum: the payload does not match the header CRC32-C.
	ErrChecksum = errors.New("wire: checksum mismatch")
	// ErrTruncated: the input ends before the declared frame does
	// (a torn or partial frame).
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadPayload: the payload does not parse as the declared frame
	// type.
	ErrBadPayload = errors.New("wire: malformed payload")
)

// castagnoli is the CRC32-C table used for payload checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of the payload, as carried in the frame
// header.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, castagnoli)
}

// putHeader writes a frame header for a payload of length n with
// checksum crc into hdr, which must be at least HeaderSize bytes.
func putHeader(hdr []byte, t Type, n int, crc uint32) {
	binary.LittleEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = byte(t)
	hdr[6] = 0
	hdr[7] = 0
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(n))
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
}

// parseHeader validates a HeaderSize-byte header and returns the frame
// type, declared payload length, and declared checksum.
func parseHeader(hdr []byte) (t Type, n int, crc uint32, err error) {
	if got := binary.LittleEndian.Uint32(hdr[0:4]); got != Magic {
		return 0, 0, 0, fmt.Errorf("%w: 0x%08x", ErrBadMagic, got)
	}
	if hdr[4] != Version {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrVersion, hdr[4])
	}
	t = Type(hdr[5])
	if t == 0 || t > maxType {
		return 0, 0, 0, fmt.Errorf("%w: %d", ErrUnknownType, hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return 0, 0, 0, ErrReserved
	}
	length := binary.LittleEndian.Uint32(hdr[8:12])
	if length > MaxPayload {
		return 0, 0, 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, length)
	}
	return t, int(length), binary.LittleEndian.Uint32(hdr[12:16]), nil
}

// AppendFrame appends a complete frame (header + payload) for t to dst
// and returns the extended slice. It never fails: payload length is
// the caller's to bound (WriteFrame and ReadFrame enforce MaxPayload).
func AppendFrame(dst []byte, t Type, payload []byte) []byte {
	var hdr [HeaderSize]byte
	putHeader(hdr[:], t, len(payload), Checksum(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame parses the first complete frame in b. The returned
// payload aliases b (zero copy); n is the total frame size consumed,
// so b[n:] starts the next frame. A short buffer returns ErrTruncated:
// callers streaming from a socket should read more and retry (Conn
// does this internally).
func DecodeFrame(b []byte) (t Type, payload []byte, n int, err error) {
	if len(b) < HeaderSize {
		return 0, nil, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	t, plen, crc, err := parseHeader(b[:HeaderSize])
	if err != nil {
		return 0, nil, 0, err
	}
	if len(b) < HeaderSize+plen {
		return 0, nil, 0, fmt.Errorf("%w: have %d of %d payload bytes",
			ErrTruncated, len(b)-HeaderSize, plen)
	}
	payload = b[HeaderSize : HeaderSize+plen]
	if Checksum(payload) != crc {
		return 0, nil, 0, ErrChecksum
	}
	return t, payload, HeaderSize + plen, nil
}
