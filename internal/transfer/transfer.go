// Package transfer models moving a job's execution files between regions —
// the paper's SCP transfer of .tar packages over the inter-region WAN. The
// transfer latency L_{m,n} feeds the MILP delay-tolerance constraint
// (Eq. 11), and the network's energy draw produces the small carbon/water
// communication overheads reported in Table 3.
package transfer

import (
	"fmt"
	"time"

	"waterwise/internal/region"
	"waterwise/internal/units"
)

// Model computes inter-region transfer latencies and energy.
type Model struct {
	rtt       map[region.ID]map[region.ID]time.Duration
	bandwidth float64 // effective inter-region throughput, MB/s
	// energyPerGB is the marginal WAN+endpoint energy per gigabyte moved
	// (kWh/GB). Calibrated so communication carbon lands at ~0.1-0.2% of a
	// job's execution carbon, matching the paper's Table 3 measurements
	// (marginal energy of moving bytes over an already-powered WAN is far
	// below amortized-infrastructure estimates).
	energyPerGB float64
}

// DefaultBandwidthMBps is the effective single-stream SCP throughput the
// paper's m5.metal machines achieve across regions: WAN round-trip and
// congestion limited, far below the 25 Gbps NIC rate.
const DefaultBandwidthMBps = 25.0

// DefaultEnergyPerGBkWh is the assumed marginal end-to-end network energy
// per GB (see energyPerGB above for the Table 3 calibration).
const DefaultEnergyPerGBkWh = 0.0002

// rttTable holds one-way-inflated round-trip times between the five paper
// regions, seeded from public inter-region latency measurements (ms).
var rttTable = map[region.ID]map[region.ID]time.Duration{
	region.Zurich: {
		region.Madrid: 28 * time.Millisecond, region.Milan: 12 * time.Millisecond,
		region.Oregon: 150 * time.Millisecond, region.Mumbai: 110 * time.Millisecond,
	},
	region.Madrid: {
		region.Milan: 25 * time.Millisecond, region.Oregon: 145 * time.Millisecond,
		region.Mumbai: 125 * time.Millisecond,
	},
	region.Milan: {
		region.Oregon: 160 * time.Millisecond, region.Mumbai: 105 * time.Millisecond,
	},
	region.Oregon: {
		region.Mumbai: 220 * time.Millisecond,
	},
}

// New returns the default transfer model for the paper's five regions.
// Unknown region pairs fall back to a conservative default RTT.
func New() *Model {
	return &Model{
		rtt:         rttTable,
		bandwidth:   DefaultBandwidthMBps,
		energyPerGB: DefaultEnergyPerGBkWh,
	}
}

// NewCustom returns a model with explicit bandwidth (MB/s) and energy
// intensity (kWh/GB); rtts still come from the built-in table.
func NewCustom(bandwidthMBps, energyPerGBkWh float64) (*Model, error) {
	if bandwidthMBps <= 0 {
		return nil, fmt.Errorf("transfer: non-positive bandwidth %g", bandwidthMBps)
	}
	if energyPerGBkWh < 0 {
		return nil, fmt.Errorf("transfer: negative energy intensity %g", energyPerGBkWh)
	}
	return &Model{rtt: rttTable, bandwidth: bandwidthMBps, energyPerGB: energyPerGBkWh}, nil
}

// defaultRTT covers region pairs absent from the table.
const defaultRTT = 150 * time.Millisecond

// RTT returns the round-trip time between two regions (symmetric, zero for
// the same region).
func (m *Model) RTT(a, b region.ID) time.Duration {
	if a == b {
		return 0
	}
	if r, ok := m.rtt[a][b]; ok {
		return r
	}
	if r, ok := m.rtt[b][a]; ok {
		return r
	}
	return defaultRTT
}

// Latency returns L_{m,n}: the time to ship a package of the given size
// from home to dst (zero when the job stays home). The model is a TCP-ish
// handshake cost plus size over effective bandwidth, with throughput
// degraded on long-RTT paths.
func (m *Model) Latency(home, dst region.ID, packageMB float64) time.Duration {
	if home == dst {
		return 0
	}
	rtt := m.RTT(home, dst)
	// Long fat networks lose effective single-stream throughput; degrade
	// linearly up to 40% at 250ms RTT.
	degrade := 1 - 0.4*float64(rtt)/float64(250*time.Millisecond)
	if degrade < 0.6 {
		degrade = 0.6
	}
	seconds := packageMB / (m.bandwidth * degrade)
	return 4*rtt + time.Duration(seconds*float64(time.Second))
}

// Energy returns the network energy to ship a package of the given size
// between distinct regions (zero when staying home). Results transferred
// back after execution are assumed to ride the same path and are folded
// into the per-GB factor.
func (m *Model) Energy(home, dst region.ID, packageMB float64) units.KWh {
	if home == dst {
		return 0
	}
	return units.KWh(packageMB / 1024 * m.energyPerGB)
}

// AvgLatency returns the mean transfer latency from home to each of the
// candidate regions (the L^avg_m term of the urgency score, Eq. 14). The
// home region itself contributes zero, matching the paper's "average across
// all available regions".
func (m *Model) AvgLatency(home region.ID, regions []region.ID, packageMB float64) time.Duration {
	if len(regions) == 0 {
		return 0
	}
	var total time.Duration
	for _, r := range regions {
		total += m.Latency(home, r, packageMB)
	}
	return total / time.Duration(len(regions))
}
