package transfer

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/region"
)

func TestRTTSymmetricAndZeroHome(t *testing.T) {
	m := New()
	ids := []region.ID{region.Zurich, region.Madrid, region.Oregon, region.Milan, region.Mumbai}
	for _, a := range ids {
		if m.RTT(a, a) != 0 {
			t.Errorf("RTT(%s,%s) = %v, want 0", a, a, m.RTT(a, a))
		}
		for _, b := range ids {
			if m.RTT(a, b) != m.RTT(b, a) {
				t.Errorf("RTT asymmetric for %s<->%s", a, b)
			}
		}
	}
	if m.RTT(region.Zurich, region.ID("atlantis")) != defaultRTT {
		t.Error("unknown pair should fall back to default RTT")
	}
}

func TestLatencyStructure(t *testing.T) {
	m := New()
	if m.Latency(region.Zurich, region.Zurich, 1000) != 0 {
		t.Error("same-region latency should be 0")
	}
	// Bigger packages take longer.
	small := m.Latency(region.Zurich, region.Milan, 100)
	big := m.Latency(region.Zurich, region.Milan, 1000)
	if big <= small {
		t.Errorf("1000MB (%v) should take longer than 100MB (%v)", big, small)
	}
	// Longer-RTT paths are slower for the same size.
	near := m.Latency(region.Zurich, region.Milan, 500)
	far := m.Latency(region.Zurich, region.Oregon, 500)
	if far <= near {
		t.Errorf("transatlantic (%v) should be slower than intra-EU (%v)", far, near)
	}
	// Sanity: shipping 750MB anywhere lands in single-digit seconds to
	// ~half a minute — the paper's SCP regime.
	lat := m.Latency(region.Oregon, region.Mumbai, 750)
	if lat < 2*time.Second || lat > 60*time.Second {
		t.Errorf("Oregon->Mumbai 750MB latency %v outside plausible SCP range", lat)
	}
}

func TestEnergyModel(t *testing.T) {
	m := New()
	if m.Energy(region.Zurich, region.Zurich, 1000) != 0 {
		t.Error("same-region energy should be 0")
	}
	e := float64(m.Energy(region.Zurich, region.Mumbai, 1024))
	if e <= 0 {
		t.Error("cross-region energy should be positive")
	}
	// Table 3 calibration: a ~1GB package must cost well under 1% of a
	// typical job's energy (~0.07 kWh).
	if e > 0.0007 {
		t.Errorf("1GB transfer energy %.6f kWh breaks the Table 3 calibration", e)
	}
}

func TestAvgLatency(t *testing.T) {
	m := New()
	ids := []region.ID{region.Zurich, region.Oregon}
	avg := m.AvgLatency(region.Zurich, ids, 500)
	want := (m.Latency(region.Zurich, region.Zurich, 500) + m.Latency(region.Zurich, region.Oregon, 500)) / 2
	if avg != want {
		t.Errorf("AvgLatency = %v, want %v", avg, want)
	}
	if m.AvgLatency(region.Zurich, nil, 500) != 0 {
		t.Error("empty region list should average to 0")
	}
}

func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom(0, 0.01); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewCustom(100, -1); err == nil {
		t.Error("negative energy intensity accepted")
	}
	m, err := NewCustom(DefaultBandwidthMBps/2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	fast := New().Latency(region.Zurich, region.Milan, 800)
	slow := m.Latency(region.Zurich, region.Milan, 800)
	if slow <= fast {
		t.Errorf("half bandwidth should be slower: %v vs %v", slow, fast)
	}
}

// Property: latency is positive for distinct regions, zero at home, and
// monotone in package size.
func TestQuickLatencyProperties(t *testing.T) {
	m := New()
	ids := []region.ID{region.Zurich, region.Madrid, region.Oregon, region.Milan, region.Mumbai}
	f := func(ai, bi uint8, mb1, mb2 float64) bool {
		a := ids[int(ai)%len(ids)]
		b := ids[int(bi)%len(ids)]
		s1 := mod(mb1, 2000) + 1
		s2 := s1 + mod(mb2, 2000) + 1
		l1 := m.Latency(a, b, s1)
		l2 := m.Latency(a, b, s2)
		if a == b {
			return l1 == 0 && l2 == 0
		}
		return l1 > 0 && l2 > l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	v := math.Mod(math.Abs(x), m)
	if math.IsNaN(v) {
		return 0
	}
	return v
}
