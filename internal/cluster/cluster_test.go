package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/energy"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/units"
)

var testStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

func testEnv(t *testing.T) *region.Environment {
	t.Helper()
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, testStart, 24*8, 3)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// makeJobs builds a deterministic small trace by hand.
func makeJobs(n int, gap time.Duration, home region.ID) []*trace.Job {
	jobs := make([]*trace.Job, n)
	for i := range jobs {
		jobs[i] = &trace.Job{
			ID:          i,
			Submit:      testStart.Add(time.Duration(i) * gap),
			Benchmark:   "dedup",
			Home:        home,
			Duration:    10 * time.Minute,
			Energy:      0.05,
			EstDuration: 10 * time.Minute,
			EstEnergy:   0.05,
		}
	}
	return jobs
}

// homeScheduler is a minimal test scheduler sending everything home.
type homeScheduler struct{}

func (homeScheduler) Name() string { return "test-home" }
func (homeScheduler) Schedule(ctx *Context) ([]Decision, error) {
	out := make([]Decision, 0, len(ctx.Jobs))
	for _, pj := range ctx.Jobs {
		out = append(out, Decision{Job: pj.Job, Region: pj.Job.Home})
	}
	return out, nil
}

// deferringScheduler defers every job a fixed number of rounds.
type deferringScheduler struct{ rounds int }

func (d *deferringScheduler) Name() string { return "test-defer" }
func (d *deferringScheduler) Schedule(ctx *Context) ([]Decision, error) {
	var out []Decision
	for _, pj := range ctx.Jobs {
		if pj.Deferrals >= d.rounds {
			out = append(out, Decision{Job: pj.Job, Region: pj.Job.Home})
		}
	}
	return out, nil
}

func TestRunAllJobsComplete(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(50, time.Minute, region.Oregon)
	res, err := Run(Config{Env: env, Tolerance: 0.5}, homeScheduler{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 50 {
		t.Fatalf("outcomes = %d, want 50", len(res.Outcomes))
	}
	if len(res.Unscheduled) != 0 {
		t.Fatalf("unscheduled = %d, want 0", len(res.Unscheduled))
	}
	for _, o := range res.Outcomes {
		if o.Region != region.Oregon {
			t.Errorf("job %d ran in %s, want oregon", o.Job.ID, o.Region)
		}
		if o.Start.Before(o.Job.Submit) {
			t.Errorf("job %d started before submission", o.Job.ID)
		}
		if !o.Finish.Equal(o.Start.Add(o.Exec)) {
			t.Errorf("job %d finish != start+exec", o.Job.ID)
		}
		if o.Transfer != 0 {
			t.Errorf("home job %d has transfer latency %v", o.Job.ID, o.Transfer)
		}
		if o.Compute.Carbon() <= 0 || o.Compute.Water() <= 0 {
			t.Errorf("job %d footprint not positive", o.Job.ID)
		}
		if o.Comm.Carbon() != 0 {
			t.Errorf("home job %d has comm footprint", o.Job.ID)
		}
	}
}

func TestCapacityQueueing(t *testing.T) {
	// One region with 2 servers, 6 simultaneous 10-minute jobs: they must
	// run in 3 waves, with later waves delayed ~10 and ~20 minutes.
	regions, err := region.DefaultsSubset(region.Oregon)
	if err != nil {
		t.Fatal(err)
	}
	regions[0].Servers = 2
	env, err := region.NewEnvironment(regions, energy.Table, testStart, 48, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := makeJobs(6, 0, region.Oregon)
	res, err := Run(Config{Env: env, Tolerance: 0.25}, homeScheduler{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 6 {
		t.Fatalf("outcomes = %d, want 6", len(res.Outcomes))
	}
	var waves [3]int
	for _, o := range res.Outcomes {
		wait := o.Start.Sub(o.Job.Submit)
		switch {
		case wait < 10*time.Minute:
			waves[0]++
		case wait < 20*time.Minute:
			waves[1]++
		default:
			waves[2]++
		}
	}
	if waves[0] != 2 || waves[1] != 2 || waves[2] != 2 {
		t.Errorf("wave sizes = %v, want [2 2 2]", waves)
	}
	// The queued waves must be flagged as violations at 25% tolerance
	// (10 min wait >> 2.5 min allowance).
	if res.ViolationRate() < 0.5 {
		t.Errorf("violation rate = %.2f, want >= 0.5 with queueing", res.ViolationRate())
	}
}

func TestDeferredJobsEventuallyRun(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(10, time.Second, region.Milan)
	res, err := Run(Config{Env: env, Tolerance: 0.5}, &deferringScheduler{rounds: 3}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 10 {
		t.Fatalf("outcomes = %d, want 10 (deferral must not lose jobs)", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if wait := o.Start.Sub(o.Job.Submit); wait < 3*time.Minute {
			t.Errorf("job %d waited only %v despite 3-round deferral", o.Job.ID, wait)
		}
	}
}

func TestMigrationAccountsTransfer(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(5, time.Minute, region.Oregon)
	sched := schedulerFunc(func(ctx *Context) ([]Decision, error) {
		out := make([]Decision, 0, len(ctx.Jobs))
		for _, pj := range ctx.Jobs {
			out = append(out, Decision{Job: pj.Job, Region: region.Zurich})
		}
		return out, nil
	})
	res, err := Run(Config{Env: env, Tolerance: 1}, sched, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Region != region.Zurich {
			t.Fatalf("job %d not migrated", o.Job.ID)
		}
		if o.Transfer <= 0 {
			t.Errorf("job %d migrated with zero transfer latency", o.Job.ID)
		}
		if o.Comm.Carbon() <= 0 || o.Comm.Water() <= 0 {
			t.Errorf("job %d migrated without comm footprint", o.Job.ID)
		}
	}
}

type schedulerFunc func(ctx *Context) ([]Decision, error)

func (schedulerFunc) Name() string                                { return "test-func" }
func (f schedulerFunc) Schedule(ctx *Context) ([]Decision, error) { return f(ctx) }

func TestSchedulerErrorsSurface(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(1, time.Minute, region.Oregon)
	// Unknown region.
	bad := schedulerFunc(func(ctx *Context) ([]Decision, error) {
		return []Decision{{Job: ctx.Jobs[0].Job, Region: region.ID("atlantis")}}, nil
	})
	if _, err := Run(Config{Env: env}, bad, jobs); err == nil {
		t.Error("unknown region decision accepted")
	}
	// Decision for a non-pending job.
	ghost := schedulerFunc(func(ctx *Context) ([]Decision, error) {
		fake := *ctx.Jobs[0].Job
		fake.ID = 999
		return []Decision{{Job: &fake, Region: region.Oregon}}, nil
	})
	if _, err := Run(Config{Env: env}, ghost, jobs); err == nil {
		t.Error("ghost job decision accepted")
	}
}

func TestUnsortedTraceRejected(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(2, time.Minute, region.Oregon)
	jobs[0], jobs[1] = jobs[1], jobs[0]
	if _, err := Run(Config{Env: env}, homeScheduler{}, jobs); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	env := testEnv(t)
	res, err := Run(Config{Env: env}, homeScheduler{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 || res.TotalCarbon() != 0 || res.TotalWater() != 0 {
		t.Error("empty trace should produce empty result")
	}
	if res.MeanNormalizedService() != 0 || res.ViolationRate() != 0 {
		t.Error("empty result metrics should be zero")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, homeScheduler{}, nil); err == nil {
		t.Error("nil environment accepted")
	}
	env := testEnv(t)
	if _, err := Run(Config{Env: env, Tolerance: -1}, homeScheduler{}, nil); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestOverridesApplied(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(1, time.Minute, region.Oregon)
	stretch := schedulerFunc(func(ctx *Context) ([]Decision, error) {
		return []Decision{{
			Job: ctx.Jobs[0].Job, Region: region.Oregon,
			DurationOverride: 30 * time.Minute, EnergyOverride: units.KWh(0.01),
		}}, nil
	})
	res, err := Run(Config{Env: env, Tolerance: 5}, stretch, jobs)
	if err != nil {
		t.Fatal(err)
	}
	o := res.Outcomes[0]
	if o.Exec != 30*time.Minute {
		t.Errorf("exec = %v, want 30m override", o.Exec)
	}
	// Energy override of 0.01 kWh at Oregon CI (~200-500) should produce
	// way less operational carbon than the 0.05 default would.
	if float64(o.Compute.OperationalCarbon) > 0.01*1100 {
		t.Errorf("energy override not applied: operational carbon %v", o.Compute.OperationalCarbon)
	}
}

func TestTickStatsRecorded(t *testing.T) {
	env := testEnv(t)
	jobs := makeJobs(20, 30*time.Second, region.Milan)
	res, err := Run(Config{Env: env, Tolerance: 0.5}, homeScheduler{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ticks) == 0 {
		t.Fatal("no tick stats recorded")
	}
	total := 0
	for _, ts := range res.Ticks {
		total += ts.Decided
		if ts.Batch < ts.Decided {
			t.Errorf("tick at %v decided %d > batch %d", ts.At, ts.Decided, ts.Batch)
		}
	}
	if total != 20 {
		t.Errorf("total decided = %d, want 20", total)
	}
}

func TestRegionStatePlacement(t *testing.T) {
	rs := newRegionState(2)
	// Two jobs start immediately; the third queues behind the earliest.
	s1 := rs.place(testStart, 10*time.Minute)
	s2 := rs.place(testStart, 20*time.Minute)
	s3 := rs.place(testStart, 5*time.Minute)
	if !s1.Equal(testStart) || !s2.Equal(testStart) {
		t.Errorf("first two placements should start immediately: %v %v", s1, s2)
	}
	if !s3.Equal(testStart.Add(10 * time.Minute)) {
		t.Errorf("third placement = %v, want queued behind the 10-minute job", s3)
	}
	if rs.freeCount(testStart) != 0 {
		t.Errorf("freeCount at start = %d, want 0", rs.freeCount(testStart))
	}
	if rs.freeCount(testStart.Add(16*time.Minute)) != 1 {
		t.Errorf("freeCount at +16m = %d, want 1 (5-minute job done on server 1)", rs.freeCount(testStart.Add(16*time.Minute)))
	}
}

// Property: placements never start before the requested time, freeCount
// stays within [0, servers], and total busy time is conserved.
func TestQuickRegionStateProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		rs := newRegionState(1 + rng.Intn(5))
		for i := 0; i < 40; i++ {
			want := testStart.Add(time.Duration(rng.Intn(600)) * time.Minute)
			exec := time.Duration(1+rng.Intn(60)) * time.Minute
			got := rs.place(want, exec)
			if got.Before(want) {
				return false
			}
			at := testStart.Add(time.Duration(rng.Intn(600)) * time.Minute)
			if f := rs.freeCount(at); f < 0 || f > rs.servers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newTestRand avoids importing stats here just for a seeded source.
type testRand struct{ state uint64 }

func newTestRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *testRand) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

// TestMergeResults covers the per-partition result merge the fleet uses:
// canonical job-ID ordering across parts, tick coalescing by round time,
// and the misuse rejections.
func TestMergeResults(t *testing.T) {
	at0, at1 := testStart, testStart.Add(time.Minute)
	j := func(id int) *trace.Job { return &trace.Job{ID: id, Submit: testStart} }
	a := &Result{
		Scheduler: "waterwise", Tolerance: 0.5,
		Outcomes: []JobOutcome{
			{Job: j(1), Region: region.Zurich, Start: at0},
			{Job: j(4), Region: region.Zurich, Start: at1},
		},
		Ticks:       []TickStat{{At: at0, Batch: 2, Decided: 1, Overhead: time.Millisecond}, {At: at1, Batch: 1, Decided: 1, Overhead: time.Millisecond}},
		Unscheduled: []*trace.Job{j(9)},
	}
	b := &Result{
		Scheduler: "waterwise", Tolerance: 0.5,
		Outcomes: []JobOutcome{
			{Job: j(0), Region: region.Mumbai, Start: at0},
			{Job: j(2), Region: region.Mumbai, Start: at0},
		},
		Ticks:       []TickStat{{At: at0, Batch: 2, Decided: 2, Overhead: 3 * time.Millisecond}},
		Unscheduled: []*trace.Job{j(7)},
	}
	m, err := MergeResults(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []int{0, 1, 2, 4}
	if len(m.Outcomes) != len(wantIDs) {
		t.Fatalf("merged %d outcomes", len(m.Outcomes))
	}
	for i, id := range wantIDs {
		if m.Outcomes[i].Job.ID != id {
			t.Fatalf("outcome %d is job %d, want %d", i, m.Outcomes[i].Job.ID, id)
		}
	}
	if len(m.Unscheduled) != 2 || m.Unscheduled[0].ID != 7 || m.Unscheduled[1].ID != 9 {
		t.Fatalf("merged unscheduled %v", m.Unscheduled)
	}
	// at0 ticks from both parts coalesce; at1 stays alone.
	if len(m.Ticks) != 2 {
		t.Fatalf("merged %d ticks, want 2", len(m.Ticks))
	}
	if m.Ticks[0].Batch != 4 || m.Ticks[0].Decided != 3 || m.Ticks[0].Overhead != 4*time.Millisecond {
		t.Fatalf("coalesced tick %+v", m.Ticks[0])
	}
	if m.Ticks[1] != a.Ticks[1] {
		t.Fatalf("tick at %v altered: %+v", at1, m.Ticks[1])
	}
	if m.Scheduler != "waterwise" {
		t.Fatalf("scheduler %q", m.Scheduler)
	}
	// Distinct names are joined; mismatched tolerances are rejected.
	c := &Result{Scheduler: "baseline", Tolerance: 0.5}
	if m, err := MergeResults(a, c); err != nil || m.Scheduler != "waterwise+baseline" {
		t.Fatalf("joined name %q, err %v", m.Scheduler, err)
	}
	if _, err := MergeResults(a, &Result{Scheduler: "waterwise", Tolerance: 0.25}); err == nil {
		t.Error("tolerance mismatch accepted")
	}
	if _, err := MergeResults(); err == nil {
		t.Error("empty merge accepted")
	}
}
