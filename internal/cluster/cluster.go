// Package cluster implements the trace-driven discrete-event simulator of
// the geographically distributed data center WaterWise schedules. It plays
// a job trace against an environment (regional grids + weather), invokes a
// pluggable Scheduler at a fixed cadence, enforces per-region server
// capacity with a per-server machine model, and accounts the carbon and water
// footprint, service time, and delay-tolerance violations of every job —
// the figures of merit of the paper's evaluation.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"waterwise/internal/footprint"
	"waterwise/internal/region"
	"waterwise/internal/trace"
	"waterwise/internal/transfer"
	"waterwise/internal/units"
	"waterwise/internal/workload"
)

// PendingJob is a job awaiting a placement decision, with the bookkeeping
// the slack manager needs (T_start in Eq. 14 is when the controller first
// received the job).
type PendingJob struct {
	Job *trace.Job
	// FirstSeen is when the controller first saw this job.
	FirstSeen time.Time
	// Deferrals counts how many scheduling rounds have passed it over.
	Deferrals int
}

// Decision places one job in a region. StartAt lets oracle schedulers
// (Carbon/Water-Greedy-Opt) deliberately delay execution; the zero value
// means "as soon as possible" (now + transfer latency). DurationOverride
// and EnergyOverride let power-scaling schedulers (Ecovisor) stretch a job;
// zero values mean "use the job's actuals".
type Decision struct {
	Job              *trace.Job
	Region           region.ID
	StartAt          time.Time
	DurationOverride time.Duration
	EnergyOverride   units.KWh
}

// Context is everything a Scheduler may consult when deciding. Schedulers
// other than the explicitly-labelled oracle ones must only read the
// environment at Now (no future peeking).
//
// The Context (including its Free/Busy maps and Jobs slice) is pooled by the
// simulator and rewritten every round: it is only valid for the duration of
// the Schedule call. Schedulers that need round-over-round state must copy
// what they keep.
type Context struct {
	Now  time.Time
	Jobs []*PendingJob
	// Free is the number of servers per region free right now.
	Free map[region.ID]int
	// Busy is the number of servers per region currently reserved.
	Busy map[region.ID]int
	Env  *region.Environment
	Net  *transfer.Model
	FP   *footprint.Model
	// Tolerance is the delay tolerance TOL as a fraction (0.25 = 25%).
	Tolerance float64
	// FreeAt reports how many servers of a region are free for the whole
	// interval [start, start+exec). It reflects only committed decisions,
	// not ones made earlier in the same Schedule call — schedulers must
	// track their own intra-batch placements.
	FreeAt func(id region.ID, start time.Time, exec time.Duration) int
}

// Scheduler decides job placement. Jobs absent from the returned decisions
// stay pending and are offered again next round.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Schedule returns placement decisions for (a subset of) ctx.Jobs.
	Schedule(ctx *Context) ([]Decision, error)
}

// JobOutcome records everything measured about one executed job.
type JobOutcome struct {
	Job      *trace.Job
	Region   region.ID
	Start    time.Time
	Finish   time.Time
	Transfer time.Duration
	// Exec is the realized execution duration (possibly stretched by an
	// override).
	Exec time.Duration
	// Compute is the footprint of execution (Eq. 1-5).
	Compute footprint.Footprint
	// Comm is the footprint of moving the package across regions.
	Comm footprint.Footprint
	// CostUSD is the electricity spend of the execution (price x PUE x
	// energy), for the paper's §7 cost-objective extension.
	CostUSD float64
	// Violated reports whether service time exceeded (1+TOL)*exec-estimate.
	Violated bool
}

// ServiceTime is the user-visible latency: submission to completion.
func (o JobOutcome) ServiceTime() time.Duration { return o.Finish.Sub(o.Job.Submit) }

// NormalizedService is service time over home-region execution time — the
// paper's Table 2 metric.
func (o JobOutcome) NormalizedService() float64 {
	if o.Job.Duration <= 0 {
		return 1
	}
	return float64(o.ServiceTime()) / float64(o.Job.Duration)
}

// TickStat records one scheduling round's decision-making cost (Fig. 13).
type TickStat struct {
	At       time.Time
	Batch    int
	Decided  int
	Overhead time.Duration
}

// Result aggregates a whole simulation run.
type Result struct {
	Scheduler string
	Tolerance float64
	Outcomes  []JobOutcome
	Ticks     []TickStat
	// Unscheduled are jobs that never received a placement (should be
	// empty; non-empty indicates a scheduler bug or impossible capacity).
	Unscheduled []*trace.Job
}

// TotalCarbon sums compute+comm carbon across all jobs.
func (r *Result) TotalCarbon() units.GramsCO2 {
	var g units.GramsCO2
	for _, o := range r.Outcomes {
		g += o.Compute.Carbon() + o.Comm.Carbon()
	}
	return g
}

// TotalCostUSD sums the electricity spend across all jobs.
func (r *Result) TotalCostUSD() float64 {
	c := 0.0
	for _, o := range r.Outcomes {
		c += o.CostUSD
	}
	return c
}

// TotalWater sums compute+comm water across all jobs.
func (r *Result) TotalWater() units.Liters {
	var w units.Liters
	for _, o := range r.Outcomes {
		w += o.Compute.Water() + o.Comm.Water()
	}
	return w
}

// MeanNormalizedService is the average of Table 2's service-time metric.
func (r *Result) MeanNormalizedService() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	s := 0.0
	for _, o := range r.Outcomes {
		s += o.NormalizedService()
	}
	return s / float64(len(r.Outcomes))
}

// ViolationRate is the fraction of jobs whose service time exceeded their
// delay tolerance.
func (r *Result) ViolationRate() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	v := 0
	for _, o := range r.Outcomes {
		if o.Violated {
			v++
		}
	}
	return float64(v) / float64(len(r.Outcomes))
}

// MergeResults merges the per-partition results of one region-sharded run
// into a single Result, as if one simulator had executed every job:
// outcomes and unscheduled jobs are re-sorted into the canonical job-ID
// order, and per-round ticks are merged by round time with the batch
// sizes, decision counts, and overheads of concurrent shard rounds summed
// (the overhead sum is aggregate solver wall time across shards — Fig.
// 13's fleet-wide decision cost). All parts must share a tolerance;
// distinct scheduler names are joined with "+".
func MergeResults(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cluster: merging zero results")
	}
	for _, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("cluster: merging nil result")
		}
	}
	merged := &Result{Scheduler: parts[0].Scheduler, Tolerance: parts[0].Tolerance}
	var ticks []TickStat
	for _, p := range parts {
		if p.Tolerance != merged.Tolerance {
			return nil, fmt.Errorf("cluster: merging results with tolerances %g and %g",
				merged.Tolerance, p.Tolerance)
		}
		if p.Scheduler != merged.Scheduler {
			merged.Scheduler = merged.Scheduler + "+" + p.Scheduler
		}
		merged.Outcomes = append(merged.Outcomes, p.Outcomes...)
		merged.Unscheduled = append(merged.Unscheduled, p.Unscheduled...)
		ticks = append(ticks, p.Ticks...)
	}
	sort.Slice(merged.Outcomes, func(i, j int) bool {
		return merged.Outcomes[i].Job.ID < merged.Outcomes[j].Job.ID
	})
	sort.Slice(merged.Unscheduled, func(i, j int) bool {
		return merged.Unscheduled[i].ID < merged.Unscheduled[j].ID
	})
	// Coalesce ticks of the same round across shards: each part's ticks are
	// already time-ordered, so a stable sort by At groups concurrent rounds.
	sort.SliceStable(ticks, func(i, j int) bool { return ticks[i].At.Before(ticks[j].At) })
	for _, t := range ticks {
		if n := len(merged.Ticks); n > 0 && merged.Ticks[n-1].At.Equal(t.At) {
			merged.Ticks[n-1].Batch += t.Batch
			merged.Ticks[n-1].Decided += t.Decided
			merged.Ticks[n-1].Overhead += t.Overhead
			continue
		}
		merged.Ticks = append(merged.Ticks, t)
	}
	return merged, nil
}

// Config parameterizes a simulation run.
type Config struct {
	Env *region.Environment
	Net *transfer.Model
	FP  *footprint.Model
	// Tick is the scheduler invocation cadence (default 1 minute).
	Tick time.Duration
	// Tolerance is the delay tolerance fraction (e.g. 0.5 for 50%).
	Tolerance float64
	// MaxDrain bounds how long past the last arrival the simulator keeps
	// ticking to flush queues (default 48h).
	MaxDrain time.Duration
}

func (c Config) withDefaults() (Config, error) {
	if c.Env == nil {
		return c, fmt.Errorf("cluster: nil environment")
	}
	if c.Net == nil {
		c.Net = transfer.New()
	}
	if c.FP == nil {
		c.FP = footprint.NewModel(footprint.NoPerturbation)
	}
	if c.Tick <= 0 {
		c.Tick = time.Minute
	}
	if c.Tolerance < 0 {
		return c, fmt.Errorf("cluster: negative tolerance %g", c.Tolerance)
	}
	if c.MaxDrain <= 0 {
		c.MaxDrain = 48 * time.Hour
	}
	return c, nil
}

// regionState models a region as a bank of servers, each with the time at
// which it next becomes free — the standard machine model of cluster
// simulators. Placements are O(servers); jobs that arrive at a full region
// queue on the server that frees earliest, which is exactly the paper's
// source of delay-tolerance violations.
type regionState struct {
	servers   int
	busyUntil []time.Time // per-server next-free instant
}

func newRegionState(servers int) *regionState {
	return &regionState{servers: servers, busyUntil: make([]time.Time, servers)}
}

// freeCount counts servers free at instant t.
func (rs *regionState) freeCount(t time.Time) int {
	n := 0
	for _, b := range rs.busyUntil {
		if !b.After(t) {
			n++
		}
	}
	return n
}

// place reserves a server for an exec-long run starting no earlier than
// want, and returns the actual start. Among servers already free at want it
// picks the one that has been idle the shortest (best fit); if none is
// free, the job queues on the earliest-freeing server.
func (rs *regionState) place(want time.Time, exec time.Duration) time.Time {
	best := -1
	for i, b := range rs.busyUntil {
		if b.After(want) {
			continue
		}
		if best == -1 || b.After(rs.busyUntil[best]) {
			best = i
		}
	}
	start := want
	if best == -1 {
		for i := range rs.busyUntil {
			if best == -1 || rs.busyUntil[i].Before(rs.busyUntil[best]) {
				best = i
			}
		}
		start = rs.busyUntil[best]
	}
	rs.busyUntil[best] = start.Add(exec)
	return start
}

// Sim is the incremental form of the simulator: the same round engine Run
// drives, exposed step by step so a long-running service (internal/server)
// can feed it streaming arrivals and fire scheduling rounds on its own
// clock — wall or accelerated. Replaying a trace through Submit/Step at the
// offline cadence reproduces Run exactly, by construction. A Sim is not safe
// for concurrent use; the owner serializes access.
type Sim struct {
	cfg    Config
	sched  Scheduler
	states map[region.ID]*regionState
	// pending holds jobs awaiting a placement decision.
	pending []*PendingJob
	res     *Result
	sorted  bool
	// Per-round scratch, reused across Steps (a Sim is single-owner by
	// contract): the scheduler context with its free/busy maps, and apply's
	// pending-by-id / decided sets. The maps handed to the Scheduler are only
	// valid for the duration of the Schedule call.
	ctx     Context
	byID    map[int]*PendingJob
	decided map[int]bool
}

// NewSim validates and defaults cfg and returns an empty incremental
// simulator for the scheduler.
func NewSim(cfg Config, sched Scheduler) (*Sim, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	states := make(map[region.ID]*regionState, len(cfg.Env.Regions))
	for _, r := range cfg.Env.Regions {
		states[r.ID] = newRegionState(r.Servers)
	}
	s := &Sim{
		cfg: cfg, sched: sched, states: states,
		res:     &Result{Scheduler: sched.Name(), Tolerance: cfg.Tolerance},
		byID:    make(map[int]*PendingJob),
		decided: make(map[int]bool),
	}
	s.ctx = Context{
		Free: make(map[region.ID]int, len(states)),
		Busy: make(map[region.ID]int, len(states)),
		Env:  cfg.Env, Net: cfg.Net, FP: cfg.FP, Tolerance: cfg.Tolerance,
		FreeAt: func(id region.ID, start time.Time, exec time.Duration) int {
			rs, ok := s.states[id]
			if !ok {
				return 0
			}
			return rs.freeCount(start)
		},
	}
	return s, nil
}

// Submit queues a job for placement; at is the controller-side arrival
// instant (PendingJob.FirstSeen, the T_start of the Eq. 14 urgency score).
func (s *Sim) Submit(job *trace.Job, at time.Time) {
	s.pending = append(s.pending, &PendingJob{Job: job, FirstSeen: at})
}

// Pending reports the number of jobs awaiting placement.
func (s *Sim) Pending() int { return len(s.pending) }

// Free reports the number of servers per region free at an instant.
func (s *Sim) Free(at time.Time) map[region.ID]int {
	free := make(map[region.ID]int, len(s.states))
	for id, rs := range s.states {
		free[id] = rs.freeCount(at)
	}
	return free
}

// Step runs one scheduling round at now: builds the scheduler's context,
// asks it for decisions, commits them (reserving capacity and accounting
// footprints), and returns this round's outcomes. Rounds with no pending
// jobs are no-ops (no tick is recorded, matching Run). The returned slice
// aliases the accumulated result; callers must not mutate it.
func (s *Sim) Step(now time.Time) ([]JobOutcome, error) {
	if len(s.pending) == 0 {
		return nil, nil
	}
	// The pooled context (maps included) is reused every round; schedulers
	// must not retain it past the Schedule call.
	ctx := &s.ctx
	clear(ctx.Free)
	clear(ctx.Busy)
	for id, rs := range s.states {
		f := rs.freeCount(now)
		ctx.Free[id] = f
		ctx.Busy[id] = rs.servers - f
	}
	ctx.Now = now
	ctx.Jobs = s.pending
	t0 := time.Now()
	decisions, err := s.sched.Schedule(ctx)
	overhead := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("cluster: scheduler %s at %v: %w", s.sched.Name(), now, err)
	}
	firstOut := len(s.res.Outcomes)
	decided, err := s.apply(now, decisions)
	if err != nil {
		return nil, err
	}
	s.res.Ticks = append(s.res.Ticks, TickStat{At: now, Batch: len(s.pending), Decided: len(decided), Overhead: overhead})
	s.pending = survivors(s.pending, decided)
	s.sorted = false
	return s.res.Outcomes[firstOut:], nil
}

// Abandon moves every still-pending job to the result's Unscheduled list —
// the drain-deadline overrun path of Run, or a service shutting down with
// jobs in the queue — and returns the abandoned jobs.
func (s *Sim) Abandon() []*trace.Job {
	out := make([]*trace.Job, 0, len(s.pending))
	for _, pj := range s.pending {
		s.res.Unscheduled = append(s.res.Unscheduled, pj.Job)
		out = append(out, pj.Job)
	}
	s.pending = nil
	return out
}

// BusySnapshot copies every region's per-server next-free instants — the
// machine-model state a durable checkpoint must carry so a restarted
// simulator places jobs on servers exactly as the dead one would have.
func (s *Sim) BusySnapshot() map[region.ID][]time.Time {
	out := make(map[region.ID][]time.Time, len(s.states))
	for id, rs := range s.states {
		out[id] = append([]time.Time(nil), rs.busyUntil...)
	}
	return out
}

// RestoreBusy overwrites the per-server reservation state from a
// BusySnapshot taken on an identically-configured simulator. Regions and
// server counts must match the Sim's environment exactly.
func (s *Sim) RestoreBusy(busy map[region.ID][]time.Time) error {
	for id, until := range busy {
		rs, ok := s.states[id]
		if !ok {
			return fmt.Errorf("cluster: restoring unknown region %q", id)
		}
		if len(until) != rs.servers {
			return fmt.Errorf("cluster: restoring region %q with %d servers, have %d", id, len(until), rs.servers)
		}
		copy(rs.busyUntil, until)
	}
	return nil
}

// PendingSnapshot copies the jobs awaiting placement, with the FirstSeen
// and Deferrals bookkeeping the slack manager's urgency score depends on.
func (s *Sim) PendingSnapshot() []PendingJob {
	out := make([]PendingJob, len(s.pending))
	for i, pj := range s.pending {
		out[i] = *pj
	}
	return out
}

// RestorePending replaces the pending queue from a PendingSnapshot,
// preserving order (schedulers see jobs in submission order).
func (s *Sim) RestorePending(jobs []PendingJob) {
	s.pending = s.pending[:0]
	for i := range jobs {
		pj := jobs[i]
		s.pending = append(s.pending, &pj)
	}
}

// Result returns the accumulated simulation result with outcomes in job-ID
// order. The Sim remains usable; subsequent Steps keep appending to the same
// result.
func (s *Sim) Result() *Result {
	if !s.sorted {
		sort.Slice(s.res.Outcomes, func(i, j int) bool { return s.res.Outcomes[i].Job.ID < s.res.Outcomes[j].Job.ID })
		s.sorted = true
	}
	return s.res
}

// Run plays the trace against the scheduler and returns the full result.
// The trace must be sorted by submission time (generators guarantee this).
func Run(cfg Config, sched Scheduler, jobs []*trace.Job) (*Result, error) {
	sim, err := NewSim(cfg, sched)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit.Before(jobs[i-1].Submit) {
			return nil, fmt.Errorf("cluster: trace not sorted at job %d", jobs[i].ID)
		}
	}
	cfg = sim.cfg // defaults applied
	nextJob := 0
	now := cfg.Env.Start
	var lastArrival time.Time
	if len(jobs) > 0 {
		lastArrival = jobs[len(jobs)-1].Submit
	} else {
		lastArrival = cfg.Env.Start
	}
	deadline := lastArrival.Add(cfg.MaxDrain)

	for {
		// Ingest arrivals up to now.
		for nextJob < len(jobs) && !jobs[nextJob].Submit.After(now) {
			sim.Submit(jobs[nextJob], now)
			nextJob++
		}
		if _, err := sim.Step(now); err != nil {
			return nil, err
		}
		if nextJob >= len(jobs) && sim.Pending() == 0 {
			break
		}
		now = now.Add(cfg.Tick)
		if now.After(deadline) {
			sim.Abandon()
			break
		}
	}
	return sim.Result(), nil
}

// apply commits decisions: reserves capacity, computes footprints, and
// appends outcomes. It returns the set of decided job IDs (the pooled
// s.decided map, valid until the next Step).
func (s *Sim) apply(now time.Time, decisions []Decision) (map[int]bool, error) {
	cfg, states, pending, res := s.cfg, s.states, s.pending, s.res
	clear(s.byID)
	clear(s.decided)
	byID := s.byID
	for _, pj := range pending {
		byID[pj.Job.ID] = pj
	}
	decided := s.decided
	for _, d := range decisions {
		pj, ok := byID[d.Job.ID]
		if !ok || decided[d.Job.ID] {
			return nil, fmt.Errorf("cluster: scheduler decided job %d which is not pending", d.Job.ID)
		}
		rs, ok := states[d.Region]
		if !ok {
			return nil, fmt.Errorf("cluster: scheduler sent job %d to unknown region %q", d.Job.ID, d.Region)
		}
		job := pj.Job

		var pkgMB float64
		if p, err := workload.Lookup(job.Benchmark); err == nil {
			pkgMB = p.PackageMB
		}
		lat := cfg.Net.Latency(job.Home, d.Region, pkgMB)

		start := now.Add(lat)
		if d.StartAt.After(start) {
			start = d.StartAt
		}
		exec := job.Duration
		if d.DurationOverride > 0 {
			exec = d.DurationOverride
		}
		energy := job.Energy
		if d.EnergyOverride > 0 {
			energy = d.EnergyOverride
		}
		start = rs.place(start, exec)
		finish := start.Add(exec)

		snap, ok := cfg.Env.Snapshot(d.Region, start)
		if !ok {
			return nil, fmt.Errorf("cluster: no snapshot for region %q", d.Region)
		}
		compute := cfg.FP.ForJob(snap, energy, exec)

		var comm footprint.Footprint
		if d.Region != job.Home {
			commEnergy := cfg.Net.Energy(job.Home, d.Region, pkgMB)
			// Attribute network energy to the destination grid conditions;
			// transfer occupies no servers, so no embodied amortization.
			comm = cfg.FP.ForJob(snap, commEnergy, 0)
		}

		allowed := time.Duration(float64(job.Duration) * (1 + cfg.Tolerance))
		costUSD := 0.0
		if reg := cfg.Env.Region(d.Region); reg != nil {
			costUSD = reg.EnergyPriceUSD * float64(energy) * snap.PUE
		}
		out := JobOutcome{
			Job: job, Region: d.Region, Start: start, Finish: finish,
			Transfer: lat, Exec: exec, Compute: compute, Comm: comm,
			CostUSD:  costUSD,
			Violated: finish.Sub(job.Submit) > allowed,
		}
		res.Outcomes = append(res.Outcomes, out)
		decided[job.ID] = true
	}
	return decided, nil
}

// survivors returns the pending jobs not decided this round, with their
// deferral counters bumped.
func survivors(pending []*PendingJob, decided map[int]bool) []*PendingJob {
	out := pending[:0]
	for _, pj := range pending {
		if !decided[pj.Job.ID] {
			pj.Deferrals++
			out = append(out, pj)
		}
	}
	return out
}
