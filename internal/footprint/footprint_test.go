package footprint

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"waterwise/internal/region"
	"waterwise/internal/units"
)

func snap() region.Snapshot {
	return region.Snapshot{
		Region: region.Oregon, CI: 300, EWIF: 2.5, WUE: 3.0, WSF: 0.5, PUE: 1.2,
	}
}

func TestEquation1Carbon(t *testing.T) {
	m := NewModel(NoPerturbation)
	fp := m.ForJob(snap(), 0.1, time.Hour)
	wantOp := 0.1 * 300.0
	if got := float64(fp.OperationalCarbon); math.Abs(got-wantOp) > 1e-9 {
		t.Errorf("operational carbon = %g, want %g", got, wantOp)
	}
	wantEmb := float64(time.Hour) / float64(ServerLifetime) * float64(ServerEmbodiedCarbon)
	if got := float64(fp.EmbodiedCarbon); math.Abs(got-wantEmb) > 1e-6 {
		t.Errorf("embodied carbon = %g, want %g", got, wantEmb)
	}
	if got, want := float64(fp.Carbon()), wantOp+wantEmb; math.Abs(got-want) > 1e-6 {
		t.Errorf("total carbon = %g, want %g", got, want)
	}
}

func TestEquations2to5Water(t *testing.T) {
	m := NewModel(NoPerturbation)
	s := snap()
	fp := m.ForJob(s, 0.1, time.Hour)
	wantOff := 1.2 * 0.1 * 2.5 * 1.5 // PUE*E*EWIF*(1+WSF)
	if got := float64(fp.OffsiteWater); math.Abs(got-wantOff) > 1e-9 {
		t.Errorf("offsite water = %g, want %g (Eq. 2)", got, wantOff)
	}
	wantOn := 0.1 * 3.0 * 1.5 // E*WUE*(1+WSF)
	if got := float64(fp.OnsiteWater); math.Abs(got-wantOn) > 1e-9 {
		t.Errorf("onsite water = %g, want %g (Eq. 3)", got, wantOn)
	}
	wantEmb := float64(time.Hour) / float64(ServerLifetime) * float64(ServerEmbodiedWater())
	if got := float64(fp.EmbodiedWater); math.Abs(got-wantEmb) > 1e-9 {
		t.Errorf("embodied water = %g, want %g (Eq. 4)", got, wantEmb)
	}
	if got, want := float64(fp.Water()), wantOff+wantOn+wantEmb; math.Abs(got-want) > 1e-9 {
		t.Errorf("total water = %g, want %g (Eq. 5)", got, want)
	}
}

func TestServerEmbodiedWaterEquation4(t *testing.T) {
	want := float64(ServerEmbodiedCarbon) / float64(ManufacturingCI) *
		float64(ManufacturingEWIF) * (1 + ManufacturingWSF)
	if got := float64(ServerEmbodiedWater()); math.Abs(got-want) > 1e-9 {
		t.Errorf("ServerEmbodiedWater = %g, want %g", got, want)
	}
}

func TestWaterIntensityEquation6(t *testing.T) {
	m := NewModel(NoPerturbation)
	s := snap()
	want := (3.0 + 1.2*2.5) * 1.5
	if got := float64(m.WaterIntensity(s)); math.Abs(got-want) > 1e-12 {
		t.Errorf("water intensity = %g, want %g", got, want)
	}
}

func TestPerturbationScaling(t *testing.T) {
	s := snap()
	exact := NewModel(NoPerturbation).ForJob(s, 0.1, time.Hour)
	pert := NewModel(Perturbation{EmbodiedCarbonFactor: 1.1, WaterIntensityFactor: 0.9}).ForJob(s, 0.1, time.Hour)
	if got, want := float64(pert.EmbodiedCarbon), 1.1*float64(exact.EmbodiedCarbon); math.Abs(got-want) > 1e-9 {
		t.Errorf("embodied carbon perturbation: got %g, want %g", got, want)
	}
	if got, want := float64(pert.OffsiteWater), 0.9*float64(exact.OffsiteWater); math.Abs(got-want) > 1e-9 {
		t.Errorf("offsite water perturbation: got %g, want %g", got, want)
	}
	if got, want := float64(pert.OnsiteWater), 0.9*float64(exact.OnsiteWater); math.Abs(got-want) > 1e-9 {
		t.Errorf("onsite water perturbation: got %g, want %g", got, want)
	}
	if pert.OperationalCarbon != exact.OperationalCarbon {
		t.Error("operational carbon should not be perturbed")
	}
}

func TestZeroValuePerturbationDefaultsToExact(t *testing.T) {
	m := NewModel(Perturbation{})
	s := snap()
	exact := NewModel(NoPerturbation).ForJob(s, 0.2, 30*time.Minute)
	got := m.ForJob(s, 0.2, 30*time.Minute)
	if got != exact {
		t.Error("zero-value perturbation should behave like NoPerturbation")
	}
}

func TestAddAccumulates(t *testing.T) {
	m := NewModel(NoPerturbation)
	a := m.ForJob(snap(), 0.1, time.Hour)
	sum := a.Add(a)
	if math.Abs(float64(sum.Carbon())-2*float64(a.Carbon())) > 1e-9 {
		t.Error("Add should double carbon")
	}
	if math.Abs(float64(sum.Water())-2*float64(a.Water())) > 1e-9 {
		t.Error("Add should double water")
	}
}

func TestEstimateHelpersMatchForJob(t *testing.T) {
	m := NewModel(NoPerturbation)
	s := snap()
	fp := m.ForJob(s, 0.3, 20*time.Minute)
	if m.CarbonEstimate(s, 0.3, 20*time.Minute) != fp.Carbon() {
		t.Error("CarbonEstimate disagrees with ForJob")
	}
	if m.WaterEstimate(s, 0.3, 20*time.Minute) != fp.Water() {
		t.Error("WaterEstimate disagrees with ForJob")
	}
}

// Property: footprints are monotone in energy, duration, carbon intensity,
// and WSF, and never negative.
func TestQuickFootprintMonotonicity(t *testing.T) {
	m := NewModel(NoPerturbation)
	f := func(e1, e2, ci, wsf float64) bool {
		ea := math.Mod(math.Abs(e1), 10)
		eb := ea + math.Mod(math.Abs(e2), 10) + 0.001
		s := snap()
		s.CI = units.CarbonIntensity(math.Mod(math.Abs(ci), 1000))
		s.WSF = math.Mod(math.Abs(wsf), 1)
		lo := m.ForJob(s, units.KWh(ea), time.Hour)
		hi := m.ForJob(s, units.KWh(eb), time.Hour)
		if lo.Carbon() < 0 || lo.Water() < 0 {
			return false
		}
		if hi.Carbon() < lo.Carbon() || hi.Water() < lo.Water() {
			return false
		}
		// Higher WSF strictly increases water, leaves carbon unchanged.
		s2 := s
		s2.WSF = s.WSF + 0.3
		w2 := m.ForJob(s2, units.KWh(ea), time.Hour)
		if w2.Water() <= lo.Water() && ea > 0 {
			return false
		}
		if w2.Carbon() != lo.Carbon() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a longer job has a strictly larger embodied share, with
// operational parts fixed per kWh.
func TestQuickEmbodiedScalesWithDuration(t *testing.T) {
	m := NewModel(NoPerturbation)
	f := func(mins int16) bool {
		d1 := time.Duration(int(mins)%300+1) * time.Minute
		d2 := d1 + 10*time.Minute
		a := m.ForJob(snap(), 0.1, d1)
		b := m.ForJob(snap(), 0.1, d2)
		return b.EmbodiedCarbon > a.EmbodiedCarbon && b.EmbodiedWater > a.EmbodiedWater &&
			a.OperationalCarbon == b.OperationalCarbon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
