// Package footprint implements the WaterWise paper's carbon- and
// water-footprint model (Section 2, Eq. 1–6).
//
// Carbon (Eq. 1):
//
//	CO2_j = E_j * CI  +  (t_j / T_lifetime) * CO2_embodied_server
//
// Water (Eq. 2–5):
//
//	offsite_j  = PUE * E_j * EWIF * (1 + WSF_dc)
//	onsite_j   = E_j * WUE * (1 + WSF_dc)
//	embodied_j = (t_j / T_lifetime) * H2O_embodied_server
//	H2O_j      = offsite_j + onsite_j + embodied_j
//
// Water intensity (Eq. 6), used for normalization and reporting:
//
//	WI = (WUE + PUE*EWIF) * (1 + WSF_dc)
//
// The embodied-water constant follows the paper's Eq. 4 methodology: take
// the server's total embodied carbon, divide by the manufacturing region's
// carbon intensity to estimate manufacturing energy, then multiply by the
// manufacturing region's EWIF and scarcity uplift.
package footprint

import (
	"time"

	"waterwise/internal/region"
	"waterwise/internal/units"
)

// Server lifetime and embodied constants for the AWS m5.metal-class machine
// the paper profiles (embodied carbon from the Teads EC2 dataset [13]).
const (
	// ServerLifetime is the amortization horizon for embodied footprints.
	ServerLifetime = 4 * 365 * 24 * time.Hour
	// ServerEmbodiedCarbon is the total manufacturing carbon of one server.
	ServerEmbodiedCarbon units.GramsCO2 = 1_216_000 // 1216 kgCO2e
	// ManufacturingCI approximates the grid carbon intensity at the
	// server's manufacturing location (East Asia grid average, gCO2/kWh).
	ManufacturingCI units.CarbonIntensity = 550
	// ManufacturingEWIF approximates the water intensity of the
	// manufacturing region's electricity (L/kWh).
	ManufacturingEWIF units.EWIF = 1.9
	// ManufacturingWSF is the water scarcity factor of the manufacturing
	// region.
	ManufacturingWSF = 0.45
)

// ServerEmbodiedWater derives the server's total embodied water via Eq. 4:
// manufacturing energy (embodied carbon / manufacturing CI) times the
// manufacturing region's EWIF, scaled by (1 + WSF_manufacturing).
func ServerEmbodiedWater() units.Liters {
	energyKWh := float64(ServerEmbodiedCarbon) / float64(ManufacturingCI)
	return units.Liters(energyKWh * float64(ManufacturingEWIF) * (1 + ManufacturingWSF))
}

// Perturbation injects systematic estimation error into the model, for the
// paper's ±10% sensitivity studies on embodied carbon and water intensity.
// Factors of 1.0 (the zero value is NOT usable; use NoPerturbation) leave
// the model exact.
type Perturbation struct {
	// EmbodiedCarbonFactor scales the server embodied carbon estimate.
	EmbodiedCarbonFactor float64
	// WaterIntensityFactor scales both EWIF and WUE (and therefore the
	// whole operational water footprint).
	WaterIntensityFactor float64
}

// NoPerturbation is the exact model.
var NoPerturbation = Perturbation{EmbodiedCarbonFactor: 1, WaterIntensityFactor: 1}

// Model computes job footprints from region snapshots.
type Model struct {
	perturb       Perturbation
	embodiedWater units.Liters
}

// NewModel returns a footprint model with the given perturbation.
func NewModel(p Perturbation) *Model {
	if p.EmbodiedCarbonFactor == 0 {
		p.EmbodiedCarbonFactor = 1
	}
	if p.WaterIntensityFactor == 0 {
		p.WaterIntensityFactor = 1
	}
	return &Model{perturb: p, embodiedWater: ServerEmbodiedWater()}
}

// Footprint is the complete sustainability cost of one job execution.
type Footprint struct {
	// OperationalCarbon is E_j * CI (Eq. 1, first term).
	OperationalCarbon units.GramsCO2
	// EmbodiedCarbon is the amortized manufacturing carbon (Eq. 1, second
	// term).
	EmbodiedCarbon units.GramsCO2
	// OffsiteWater is the generation-side water (Eq. 2).
	OffsiteWater units.Liters
	// OnsiteWater is the cooling water (Eq. 3).
	OnsiteWater units.Liters
	// EmbodiedWater is the amortized manufacturing water (Eq. 4).
	EmbodiedWater units.Liters
}

// Carbon returns the total carbon footprint (Eq. 1).
func (f Footprint) Carbon() units.GramsCO2 {
	return f.OperationalCarbon + f.EmbodiedCarbon
}

// Water returns the total water footprint (Eq. 5).
func (f Footprint) Water() units.Liters {
	return f.OffsiteWater + f.OnsiteWater + f.EmbodiedWater
}

// Add accumulates another footprint into this one.
func (f Footprint) Add(g Footprint) Footprint {
	return Footprint{
		OperationalCarbon: f.OperationalCarbon + g.OperationalCarbon,
		EmbodiedCarbon:    f.EmbodiedCarbon + g.EmbodiedCarbon,
		OffsiteWater:      f.OffsiteWater + g.OffsiteWater,
		OnsiteWater:       f.OnsiteWater + g.OnsiteWater,
		EmbodiedWater:     f.EmbodiedWater + g.EmbodiedWater,
	}
}

// ForJob evaluates Eq. 1–5 for a job that consumes energy (IT-side kWh) and
// runs for duration, under the sustainability conditions captured by the
// snapshot. The snapshot's CI/EWIF/WUE should be sampled at the job's
// execution time in the execution region.
func (m *Model) ForJob(s region.Snapshot, energy units.KWh, duration time.Duration) Footprint {
	e := float64(energy)
	lifeFrac := float64(duration) / float64(ServerLifetime)
	wf := m.perturb.WaterIntensityFactor
	scarcity := 1 + s.WSF
	return Footprint{
		OperationalCarbon: units.GramsCO2(e * float64(s.CI)),
		EmbodiedCarbon:    units.GramsCO2(lifeFrac * float64(ServerEmbodiedCarbon) * m.perturb.EmbodiedCarbonFactor),
		OffsiteWater:      units.Liters(s.PUE * e * float64(s.EWIF) * wf * scarcity),
		OnsiteWater:       units.Liters(e * float64(s.WUE) * wf * scarcity),
		EmbodiedWater:     units.Liters(lifeFrac * float64(m.embodiedWater)),
	}
}

// CarbonEstimate evaluates just Eq. 1 — used by schedulers that score
// candidate placements without committing them.
func (m *Model) CarbonEstimate(s region.Snapshot, energy units.KWh, duration time.Duration) units.GramsCO2 {
	return m.ForJob(s, energy, duration).Carbon()
}

// WaterEstimate evaluates just Eq. 5.
func (m *Model) WaterEstimate(s region.Snapshot, energy units.KWh, duration time.Duration) units.Liters {
	return m.ForJob(s, energy, duration).Water()
}

// WaterIntensity evaluates Eq. 6 with the model's perturbation applied.
func (m *Model) WaterIntensity(s region.Snapshot) units.WaterIntensity {
	return units.WaterIntensity((float64(s.WUE) + s.PUE*float64(s.EWIF)) *
		m.perturb.WaterIntensityFactor * (1 + s.WSF))
}
