package experiments

import (
	"waterwise/internal/core"
	"waterwise/internal/footprint"
	"waterwise/internal/metrics"
	"waterwise/internal/sched"
)

func init() {
	register("ablate", "Ablations: MILP vs greedy, history learner, slack manager, penalty σ", Ablations)
}

// Ablations exercises the design choices DESIGN.md calls out: the MILP
// controller vs a per-job greedy argmin, the history learner, the slack
// manager, and the soft-constraint penalty weight σ — all at 50% delay
// tolerance on the Borg-like trace.
func Ablations(s Scale) (*Report, error) {
	// Ablations run with 0.35x the servers (~40% utilization): the slack
	// manager, soft constraints, and joint MILP capacity allocation only
	// differentiate themselves when capacity actually binds.
	sc, err := NewScenario(s, WithServerMultiplier(0.35))
	if err != nil {
		return nil, err
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	base, err := sc.run(sched.NewBaseline(), 0.5, fp)
	if err != nil {
		return nil, err
	}

	t := &metrics.Table{
		Title:  "WaterWise ablations, 50% delay tolerance",
		Header: []string{"variant", "carbon saving", "water saving", "mean service", "violations"},
	}
	variants := []struct {
		label string
		cfg   func() core.Config
	}{
		{"full waterwise", core.DefaultConfig},
		{"greedy controller (no MILP)", func() core.Config {
			c := core.DefaultConfig()
			c.GreedyController = true
			return c
		}},
		{"no history learner", func() core.Config {
			c := core.DefaultConfig()
			c.DisableHistory = true
			return c
		}},
		{"FIFO instead of slack manager", func() core.Config {
			c := core.DefaultConfig()
			c.DisableSlackManager = true
			return c
		}},
		{"penalty σ = 1", func() core.Config {
			c := core.DefaultConfig()
			c.PenaltySigma = 1
			return c
		}},
		{"penalty σ = 100", func() core.Config {
			c := core.DefaultConfig()
			c.PenaltySigma = 100
			return c
		}},
	}
	for _, v := range variants {
		ww, err := waterwise(v.cfg())
		if err != nil {
			return nil, err
		}
		res, err := sc.run(ww, 0.5, fp)
		if err != nil {
			return nil, err
		}
		sv, err := metrics.Compare(base, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct),
			metrics.Times(sv.MeanService), metrics.Pct(sv.ViolationPct))
	}
	return &Report{
		ID: "ablate", Title: "Design ablations",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"run at 0.35x servers (~40% utilization) so capacity binds;",
			"with slack capacity the MILP and greedy controllers coincide and the",
			"slack manager / penalty weight have nothing to arbitrate",
		},
	}, nil
}
