package experiments

import (
	"fmt"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/footprint"
	"waterwise/internal/metrics"
	"waterwise/internal/region"
	"waterwise/internal/sched"
	"waterwise/internal/stats"
	"waterwise/internal/viz"
)

func init() {
	register("fig1", "Carbon intensity and EWIF per energy source", Fig1)
	register("fig2", "Regional CI/EWIF/WUE/WSF averages and temporal variation", Fig2)
	register("fig3", "Greedy-opt opportunity vs delay tolerance and job distribution", Fig3)
	register("fig5", "WaterWise vs greedy-opts across delay tolerances (Borg trace)", Fig5)
	register("fig6", "WaterWise with World Resources Institute water data", Fig6)
	register("fig7", "WaterWise vs Ecovisor on both datasets", Fig7)
	register("fig8", "Sensitivity to carbon/water weight factors", Fig8)
	register("fig9", "WaterWise with the Alibaba trace", Fig9)
	register("fig10", "WaterWise vs Round-Robin and Least-Load", Fig10)
	register("fig11", "WaterWise across utilization levels", Fig11)
	register("fig12", "WaterWise under different region availability", Fig12)
	register("fig13", "Decision-making overhead over time (Borg vs Alibaba)", Fig13)
}

// Fig1 regenerates Fig. 1: per-source carbon intensity and EWIF.
func Fig1(Scale) (*Report, error) {
	t := &metrics.Table{
		Title:  "Energy sources (Electricity-Maps-style factor table)",
		Header: []string{"source", "kind", "carbon gCO2/kWh", "EWIF L/kWh"},
	}
	for _, s := range energy.AllSources() {
		kind := "renewable"
		if s.IsFossil() {
			kind = "fossil"
		}
		f := energy.Table[s]
		t.AddRow(s.String(), kind, fmt.Sprintf("%.0f", float64(f.CI)), fmt.Sprintf("%.2f", float64(f.EWIF)))
	}
	hydro, coal := energy.Table[energy.Hydro], energy.Table[energy.Coal]
	return &Report{
		ID: "fig1", Title: "Carbon intensity and EWIF per energy source",
		Tables: []*metrics.Table{t},
		Notes: []string{
			fmt.Sprintf("coal carbon intensity is %.0fx hydro's; hydro EWIF is %.0fx coal's (paper: ~62x and ~11x)",
				float64(coal.CI)/float64(hydro.CI), float64(hydro.EWIF)/float64(coal.EWIF)),
		},
	}, nil
}

// Fig2 regenerates Fig. 2: regional average CI, EWIF, WUE, WSF over a year
// (a-d) and the Oregon carbon/water intensity time series correlation (e).
func Fig2(s Scale) (*Report, error) {
	s = s.withDefaults()
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, simStart.AddDate(0, -6, 0), 365*24, s.Seed)
	if err != nil {
		return nil, err
	}
	avg := &metrics.Table{
		Title:  "Regional averages over one simulated year (2023)",
		Header: []string{"region", "CI gCO2/kWh", "EWIF L/kWh", "WUE L/kWh", "WSF", "water intensity L/kWh"},
	}
	type regAvg struct {
		id                  region.ID
		ci, ew, wu, wsf, wi float64
	}
	avgs := make([]regAvg, 0, len(env.Regions))
	for _, r := range env.Regions {
		var ci, ew, wu, wi float64
		n := 0
		for h := 0; h < 365*24; h += 6 {
			at := env.Start.Add(time.Duration(h) * time.Hour)
			snap, _ := env.Snapshot(r.ID, at)
			ci += float64(snap.CI)
			ew += float64(snap.EWIF)
			wu += float64(snap.WUE)
			wi += float64(snap.WaterIntensity())
			n++
		}
		f := float64(n)
		avgs = append(avgs, regAvg{r.ID, ci / f, ew / f, wu / f, r.WSF, wi / f})
	}
	for _, a := range avgs {
		avg.AddRow(string(a.id), fmt.Sprintf("%.0f", a.ci), fmt.Sprintf("%.2f", a.ew),
			fmt.Sprintf("%.2f", a.wu), fmt.Sprintf("%.2f", a.wsf), fmt.Sprintf("%.2f", a.wi))
	}

	// (e): Oregon CI and WI hourly series over the year.
	var cis, wis []float64
	for h := 0; h < 365*24; h++ {
		at := env.Start.Add(time.Duration(h) * time.Hour)
		snap, _ := env.Snapshot(region.Oregon, at)
		cis = append(cis, float64(snap.CI))
		wis = append(wis, float64(snap.WaterIntensity()))
	}
	corr, corrErr := stats.Correlation(cis, wis)
	ciMin, _ := stats.Min(cis)
	ciMax, _ := stats.Max(cis)
	wiMin, _ := stats.Min(wis)
	wiMax, _ := stats.Max(wis)
	seriesT := &metrics.Table{
		Title:  "Oregon temporal variation (hourly, one year)",
		Header: []string{"metric", "min", "mean", "max"},
	}
	seriesT.AddRow("carbon intensity gCO2/kWh", fmt.Sprintf("%.0f", ciMin), fmt.Sprintf("%.0f", stats.Mean(cis)), fmt.Sprintf("%.0f", ciMax))
	seriesT.AddRow("water intensity L/kWh", fmt.Sprintf("%.2f", wiMin), fmt.Sprintf("%.2f", stats.Mean(wis)), fmt.Sprintf("%.2f", wiMax))

	notes := []string{
		"orderings to check against the paper: CI ascending zurich<madrid<oregon<milan<mumbai;",
		"zurich has the highest EWIF; mumbai the highest WUE; madrid/mumbai the highest WSF",
	}
	if corrErr == nil {
		notes = append(notes, fmt.Sprintf("Oregon CI-vs-WI correlation = %.2f: weak/negative coupling creates the co-optimization opportunity of Fig. 2(e)", corr))
	}
	week := 7 * 24
	charts := []string{
		viz.Series("Oregon carbon intensity, first week (gCO2/kWh)", cis[:week], 72) + "\n" +
			viz.Series("Oregon water  intensity, first week (L/kWh)   ", wis[:week], 72) + "\n",
	}
	return &Report{ID: "fig2", Title: "Regional characterization", Tables: []*metrics.Table{avg, seriesT}, Charts: charts, Notes: notes}, nil
}

// Fig3 regenerates Fig. 3: the greedy-optimal savings across delay
// tolerances 1%..1000% and the job distribution across regions at 10%.
func Fig3(s Scale) (*Report, error) {
	sc, err := NewScenario(s)
	if err != nil {
		return nil, err
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	tols := []float64{0.01, 0.10, 1.0, 10.0}
	t := &metrics.Table{
		Title:  "Greedy-optimal footprint savings vs baseline",
		Header: []string{"delay tolerance", "scheduler", "carbon saving", "water saving"},
	}
	var distCarbon, distWater map[region.ID]float64
	for _, tol := range tols {
		base, err := sc.run(sched.NewBaseline(), tol, fp)
		if err != nil {
			return nil, err
		}
		for _, mk := range []func() cluster.Scheduler{
			func() cluster.Scheduler { return sched.NewCarbonGreedyOpt() },
			func() cluster.Scheduler { return sched.NewWaterGreedyOpt() },
		} {
			schd := mk()
			res, err := sc.run(schd, tol, fp)
			if err != nil {
				return nil, err
			}
			sv, err := metrics.Compare(base, res)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f%%", tol*100), sv.Scheduler, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
			if tol == 0.10 {
				d := metrics.Distribution(res, sc.Env.IDs())
				if schd.Name() == "carbon-greedy-opt" {
					distCarbon = d
				} else {
					distWater = d
				}
			}
		}
	}
	dist := &metrics.Table{
		Title:  "Job distribution across regions at 10% delay tolerance (Fig. 3b)",
		Header: []string{"region", "carbon-greedy-opt", "water-greedy-opt"},
	}
	for _, id := range sc.Env.IDs() {
		dist.AddRow(string(id), metrics.Pct(distCarbon[id]), metrics.Pct(distWater[id]))
	}
	return &Report{
		ID: "fig3", Title: "Greedy-opt opportunity scope",
		Tables: []*metrics.Table{t, dist},
		Notes: []string{
			"expected shape: savings grow with tolerance with diminishing returns;",
			"carbon- and water-optimal distributions differ significantly; no region takes everything",
		},
	}, nil
}

// savingsSweep runs baseline + WaterWise + both greedy opts across the
// given tolerances and returns the Fig. 5-style table.
func savingsSweep(sc *Scenario, tols []float64, wwCfg core.Config, fp *footprint.Model) (*metrics.Table, error) {
	t := &metrics.Table{
		Title:  "Footprint savings vs baseline",
		Header: []string{"delay tolerance", "scheduler", "carbon saving", "water saving"},
	}
	for _, tol := range tols {
		base, err := sc.run(sched.NewBaseline(), tol, fp)
		if err != nil {
			return nil, err
		}
		ww, err := waterwise(wwCfg)
		if err != nil {
			return nil, err
		}
		runs := []cluster.Scheduler{ww, sched.NewCarbonGreedyOpt(), sched.NewWaterGreedyOpt()}
		for _, schd := range runs {
			res, err := sc.run(schd, tol, fp)
			if err != nil {
				return nil, err
			}
			sv, err := metrics.Compare(base, res)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f%%", tol*100), sv.Scheduler, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
		}
	}
	return t, nil
}

var mainTols = []float64{0.25, 0.50, 0.75, 1.00}

// Fig5 regenerates the headline result: WaterWise vs the greedy oracles
// across delay tolerances on the Borg-like trace.
func Fig5(s Scale) (*Report, error) {
	sc, err := NewScenario(s)
	if err != nil {
		return nil, err
	}
	t, err := savingsSweep(sc, mainTols, core.DefaultConfig(), footprint.NewModel(footprint.NoPerturbation))
	if err != nil {
		return nil, err
	}
	return &Report{
		ID: "fig5", Title: "Main result (Borg-like trace)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: WaterWise saves both footprints vs baseline at every tolerance,",
			"lands between the two single-objective oracles, and improves with tolerance",
		},
	}, nil
}

// Fig6 regenerates the WRI-data robustness study.
func Fig6(s Scale) (*Report, error) {
	sc, err := NewScenario(s, WithWRIData())
	if err != nil {
		return nil, err
	}
	t, err := savingsSweep(sc, mainTols, core.DefaultConfig(), footprint.NewModel(footprint.NoPerturbation))
	if err != nil {
		return nil, err
	}
	return &Report{
		ID: "fig6", Title: "World Resources Institute water data",
		Tables: []*metrics.Table{t},
		Notes:  []string{"expected shape: savings persist under the alternative water dataset"},
	}, nil
}

// Fig7 regenerates the Ecovisor comparison on both datasets.
func Fig7(s Scale) (*Report, error) {
	t := &metrics.Table{
		Title:  "Ecovisor vs WaterWise, 50% delay tolerance",
		Header: []string{"dataset", "scheduler", "carbon saving", "water saving"},
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	for _, ds := range []struct {
		name string
		opt  []ScenarioOpt
	}{
		{"electricity-maps", nil},
		{"wri", []ScenarioOpt{WithWRIData()}},
	} {
		sc, err := NewScenario(s, ds.opt...)
		if err != nil {
			return nil, err
		}
		base, err := sc.run(sched.NewBaseline(), 0.5, fp)
		if err != nil {
			return nil, err
		}
		ww, err := waterwise(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for _, schd := range []cluster.Scheduler{sched.NewEcovisor(), ww} {
			res, err := sc.run(schd, 0.5, fp)
			if err != nil {
				return nil, err
			}
			sv, err := metrics.Compare(base, res)
			if err != nil {
				return nil, err
			}
			t.AddRow(ds.name, sv.Scheduler, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
		}
	}
	return &Report{
		ID: "fig7", Title: "Ecovisor comparison",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: Ecovisor (home-region, operational-carbon-only) achieves modest savings;",
			"WaterWise clearly exceeds it on both carbon and water",
		},
	}, nil
}

// Fig8 regenerates the weight-factor sensitivity: λ_CO2 in {0.3, 0.5, 0.7}.
func Fig8(s Scale) (*Report, error) {
	sc, err := NewScenario(s)
	if err != nil {
		return nil, err
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	base, err := sc.run(sched.NewBaseline(), 0.5, fp)
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:  "WaterWise weight sensitivity, 50% delay tolerance",
		Header: []string{"λ_CO2", "λ_H2O", "carbon saving", "water saving"},
	}
	for _, lc := range []float64{0.3, 0.5, 0.7} {
		cfg := core.DefaultConfig()
		cfg.LambdaCarbon = lc
		cfg.LambdaWater = 1 - lc
		ww, err := waterwise(cfg)
		if err != nil {
			return nil, err
		}
		res, err := sc.run(ww, 0.5, fp)
		if err != nil {
			return nil, err
		}
		sv, err := metrics.Compare(base, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", lc), fmt.Sprintf("%.1f", 1-lc), metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
	}
	return &Report{
		ID: "fig8", Title: "Weight-factor sensitivity",
		Tables: []*metrics.Table{t},
		Notes:  []string{"expected shape: higher λ_CO2 shifts savings from water toward carbon; both stay positive"},
	}, nil
}

// Fig9 regenerates the Alibaba-trace study.
func Fig9(s Scale) (*Report, error) {
	sc, err := NewScenario(s, WithAlibabaTrace())
	if err != nil {
		return nil, err
	}
	t, err := savingsSweep(sc, mainTols, core.DefaultConfig(), footprint.NewModel(footprint.NoPerturbation))
	if err != nil {
		return nil, err
	}
	return &Report{
		ID: "fig9", Title: "Alibaba-like trace (8.5x rate, bursty)",
		Tables: []*metrics.Table{t},
		Notes:  []string{"expected shape: same trends as Fig. 5 under a much higher, burstier arrival rate"},
	}, nil
}

// Fig10 regenerates the load-balancer comparison.
func Fig10(s Scale) (*Report, error) {
	sc, err := NewScenario(s)
	if err != nil {
		return nil, err
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	base, err := sc.run(sched.NewBaseline(), 0.5, fp)
	if err != nil {
		return nil, err
	}
	ww, err := waterwise(core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	t := &metrics.Table{
		Title:  "Alternative schedulers vs WaterWise, 50% delay tolerance",
		Header: []string{"scheduler", "carbon saving", "water saving"},
	}
	var carbonBars, waterBars []viz.Bar
	for _, schd := range []cluster.Scheduler{sched.NewRoundRobin(), sched.NewLeastLoad(), sched.NewTemporalShift(), ww} {
		res, err := sc.run(schd, 0.5, fp)
		if err != nil {
			return nil, err
		}
		sv, err := metrics.Compare(base, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(sv.Scheduler, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
		carbonBars = append(carbonBars, viz.Bar{Label: sv.Scheduler, Value: sv.CarbonPct})
		waterBars = append(waterBars, viz.Bar{Label: sv.Scheduler, Value: sv.WaterPct})
	}
	return &Report{
		ID: "fig10", Title: "Round-Robin / Least-Load comparison",
		Tables: []*metrics.Table{t},
		Charts: []string{
			viz.BarChart("carbon saving vs baseline (%)", carbonBars, 40),
			viz.BarChart("water saving vs baseline (%)", waterBars, 40),
		},
		Notes: []string{
			"expected shape: sustainability-unaware balancers save ~nothing;",
			"temporal-only shifting also saves ~nothing here: batch-job slack (minutes) is far",
			"shorter than grid-intensity cycles (hours) — the EuroSys'24 limitation result [51];",
			"WaterWise's spatial+temporal co-optimization saves both footprints",
		},
	}, nil
}

// Fig11 regenerates the utilization sweep: utilization is varied by scaling
// the number of available servers (as in the paper).
func Fig11(s Scale) (*Report, error) {
	t := &metrics.Table{
		Title:  "WaterWise across utilization levels, 50% delay tolerance",
		Header: []string{"target utilization", "scheduler", "carbon saving", "water saving"},
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	// 15% is the default sizing; 5% has 3x servers, 25% has 0.6x.
	for _, u := range []struct {
		label string
		mult  float64
	}{{"5%", 3.0}, {"15%", 1.0}, {"25%", 0.6}} {
		sc, err := NewScenario(s, WithServerMultiplier(u.mult))
		if err != nil {
			return nil, err
		}
		base, err := sc.run(sched.NewBaseline(), 0.5, fp)
		if err != nil {
			return nil, err
		}
		ww, err := waterwise(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for _, schd := range []cluster.Scheduler{ww, sched.NewCarbonGreedyOpt(), sched.NewWaterGreedyOpt()} {
			res, err := sc.run(schd, 0.5, fp)
			if err != nil {
				return nil, err
			}
			sv, err := metrics.Compare(base, res)
			if err != nil {
				return nil, err
			}
			t.AddRow(u.label, sv.Scheduler, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
		}
	}
	return &Report{
		ID: "fig11", Title: "Utilization sensitivity",
		Tables: []*metrics.Table{t},
		Notes:  []string{"expected shape: WaterWise stays close to both oracles at every utilization level"},
	}, nil
}

// Fig12 regenerates the region-availability study.
func Fig12(s Scale) (*Report, error) {
	subsets := []struct {
		label string
		ids   []region.ID
	}{
		{"zurich-madrid-oregon-milan", []region.ID{region.Zurich, region.Madrid, region.Oregon, region.Milan}},
		{"zurich-milan-mumbai", []region.ID{region.Zurich, region.Milan, region.Mumbai}},
		{"zurich-oregon", []region.ID{region.Zurich, region.Oregon}},
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	t := &metrics.Table{
		Title:  "WaterWise savings under different region availability, 50% delay tolerance",
		Header: []string{"regions", "carbon saving", "water saving"},
	}
	for _, sub := range subsets {
		sc, err := NewScenario(s, WithRegions(sub.ids...))
		if err != nil {
			return nil, err
		}
		base, err := sc.run(sched.NewBaseline(), 0.5, fp)
		if err != nil {
			return nil, err
		}
		ww, err := waterwise(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		res, err := sc.run(ww, 0.5, fp)
		if err != nil {
			return nil, err
		}
		sv, err := metrics.Compare(base, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(sub.label, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
	}
	return &Report{
		ID: "fig12", Title: "Region availability",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: subsets containing a high-carbon region (mumbai) show large carbon savings",
			"because its jobs migrate to cleaner regions",
		},
	}, nil
}

// Fig13 regenerates the decision-overhead study on both traces, now with
// the MILP solver's own instrumentation (nodes, simplex iterations,
// warm-start hit rate, solver wall time) broken out of the per-round
// overhead it dominates.
func Fig13(s Scale) (*Report, error) {
	fp := footprint.NewModel(footprint.NoPerturbation)
	t := &metrics.Table{
		Title:  "WaterWise decision-making overhead (% of mean job execution time)",
		Header: []string{"trace", "mean overhead", "p95 overhead", "max overhead", "rounds"},
	}
	st := &metrics.Table{
		Title:  "WaterWise solver instrumentation (aggregate over all rounds)",
		Header: []string{"trace", "rounds", "softened", "b&b nodes", "simplex iters", "warm-start hit", "solver wall"},
	}
	for _, tr := range []struct {
		name string
		opts []ScenarioOpt
	}{
		{"google-borg-like", nil},
		{"alibaba-like", []ScenarioOpt{WithAlibabaTrace()}},
	} {
		sc, err := NewScenario(s, tr.opts...)
		if err != nil {
			return nil, err
		}
		ww, err := waterwise(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		res, err := sc.run(ww, 0.5, fp)
		if err != nil {
			return nil, err
		}
		_, pct := metrics.OverheadSeries(res)
		if len(pct) == 0 {
			return nil, fmt.Errorf("fig13: no overhead samples for %s", tr.name)
		}
		p95, err := stats.Percentile(pct, 95)
		if err != nil {
			return nil, err
		}
		mx, err := stats.Max(pct)
		if err != nil {
			return nil, err
		}
		t.AddRow(tr.name,
			fmt.Sprintf("%.4f%%", stats.Mean(pct)),
			fmt.Sprintf("%.4f%%", p95),
			fmt.Sprintf("%.4f%%", mx),
			fmt.Sprintf("%d", len(pct)))
		rounds, softened := ww.Stats()
		sv := ww.SolverStats()
		st.AddRow(tr.name,
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%d", softened),
			fmt.Sprintf("%d", sv.Nodes),
			fmt.Sprintf("%d", sv.SimplexIters),
			fmt.Sprintf("%.1f%%", 100*sv.WarmStartHitRate()),
			sv.Wall.Round(time.Microsecond).String())
	}
	return &Report{
		ID: "fig13", Title: "Decision-making overhead",
		Tables: []*metrics.Table{t, st},
		Notes: []string{
			"expected shape: overhead well below 1% of mean execution time;",
			"the alibaba-like trace (8.5x rate) shows higher overhead than borg-like;",
			"solver instrumentation: the scheduling MILP's assignment relaxation is",
			"integral, so branch-and-bound terminates at the root node in almost",
			"every round (warm starts only engage when branching happens)",
		},
	}, nil
}
