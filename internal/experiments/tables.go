package experiments

import (
	"fmt"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/footprint"
	"waterwise/internal/metrics"
	"waterwise/internal/region"
	"waterwise/internal/sched"
	"waterwise/internal/trace"
)

func init() {
	register("tab2", "Average service time and delay-tolerance violations", Table2)
	register("tab3", "Communication overhead from Oregon to each region", Table3)
	register("sens", "Sensitivity: ±10% perturbations and 2x request rate", Sensitivity)
}

// Table2 regenerates Table 2: normalized service time and violation rates
// for every scheduler across delay tolerances.
func Table2(s Scale) (*Report, error) {
	sc, err := NewScenario(s)
	if err != nil {
		return nil, err
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	svc := &metrics.Table{
		Title:  "Average service time (normalized to execution time)",
		Header: []string{"scheduler", "TOL 25%", "TOL 50%", "TOL 75%", "TOL 100%"},
	}
	vio := &metrics.Table{
		Title:  "Delay-tolerance violations (% of jobs)",
		Header: []string{"scheduler", "TOL 25%", "TOL 50%", "TOL 75%", "TOL 100%"},
	}
	mks := []func() cluster.Scheduler{
		func() cluster.Scheduler { return sched.NewBaseline() },
		func() cluster.Scheduler { return sched.NewCarbonGreedyOpt() },
		func() cluster.Scheduler { return sched.NewWaterGreedyOpt() },
		func() cluster.Scheduler { ww, _ := waterwise(core.DefaultConfig()); return ww },
	}
	for _, mk := range mks {
		var name string
		svcRow := make([]string, 0, 5)
		vioRow := make([]string, 0, 5)
		for _, tol := range mainTols {
			schd := mk()
			name = schd.Name()
			res, err := sc.run(schd, tol, fp)
			if err != nil {
				return nil, err
			}
			svcRow = append(svcRow, metrics.Times(res.MeanNormalizedService()))
			vioRow = append(vioRow, fmt.Sprintf("%.2f%%", 100*res.ViolationRate()))
		}
		svc.AddRow(append([]string{name}, svcRow...)...)
		vio.AddRow(append([]string{name}, vioRow...)...)
	}
	return &Report{
		ID: "tab2", Title: "Service time and violations",
		Tables: []*metrics.Table{svc, vio},
		Notes: []string{
			"expected shape: baseline stays near 1x with no violations;",
			"oracles trade more delay for savings; WaterWise stays well under its tolerance",
		},
	}, nil
}

// Table3 regenerates Table 3: communication carbon/water overhead when the
// home region is Oregon, per remote destination. A dedicated trace with all
// homes in Oregon is scattered across regions round-robin so every
// destination is exercised.
func Table3(s Scale) (*Report, error) {
	s = s.withDefaults()
	env, err := region.NewEnvironment(region.Defaults(), defaultTable(), simStart, (s.Days+3)*24, s.Seed)
	if err != nil {
		return nil, err
	}
	jobs, err := trace.GenerateBorgLike(trace.Config{
		Start:         simStart,
		Duration:      scaleDuration(s),
		JobsPerDay:    s.JobsPerDay,
		Regions:       []region.ID{region.Oregon},
		DurationScale: s.DurationScale,
		Seed:          s.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Scale: s, Env: env, Jobs: jobs}
	res, err := sc.run(sched.NewRoundRobin(), 10 /* generous so all migrations happen */, footprint.NewModel(footprint.NoPerturbation))
	if err != nil {
		return nil, err
	}
	over := metrics.CommOverhead(res, env.IDs())
	t := &metrics.Table{
		Title:  "Communication overhead (home region: Oregon)",
		Header: []string{"destination", "avg carbon overhead (% exec carbon)", "avg water overhead (% exec water)"},
	}
	for _, id := range env.IDs() {
		if id == region.Oregon {
			continue
		}
		v := over[id]
		t.AddRow(string(id), fmt.Sprintf("%.2f%%", v[0]), fmt.Sprintf("%.2f%%", v[1]))
	}
	return &Report{
		ID: "tab3", Title: "Communication overhead",
		Tables: []*metrics.Table{t},
		Notes:  []string{"expected shape: all overheads well under 1% of execution footprint (paper: 0.08-0.17%)"},
	}, nil
}

// Sensitivity regenerates the Section 6 robustness paragraphs: ±10%
// perturbation of embodied carbon and of water intensity, and a 2x request
// rate, all at 50% delay tolerance.
func Sensitivity(s Scale) (*Report, error) {
	t := &metrics.Table{
		Title:  "WaterWise robustness, 50% delay tolerance",
		Header: []string{"variant", "carbon saving", "water saving"},
	}
	variants := []struct {
		label string
		opts  []ScenarioOpt
		fp    footprint.Perturbation
	}{
		{"exact model", nil, footprint.NoPerturbation},
		{"+10% embodied carbon", nil, footprint.Perturbation{EmbodiedCarbonFactor: 1.1, WaterIntensityFactor: 1}},
		{"-10% embodied carbon", nil, footprint.Perturbation{EmbodiedCarbonFactor: 0.9, WaterIntensityFactor: 1}},
		{"+10% water intensity", nil, footprint.Perturbation{EmbodiedCarbonFactor: 1, WaterIntensityFactor: 1.1}},
		{"-10% water intensity", nil, footprint.Perturbation{EmbodiedCarbonFactor: 1, WaterIntensityFactor: 0.9}},
		{"2x request rate", []ScenarioOpt{WithRateMultiplier(2)}, footprint.NoPerturbation},
	}
	for _, v := range variants {
		sc, err := NewScenario(s, v.opts...)
		if err != nil {
			return nil, err
		}
		fp := footprint.NewModel(v.fp)
		base, err := sc.run(sched.NewBaseline(), 0.5, fp)
		if err != nil {
			return nil, err
		}
		ww, err := waterwise(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		res, err := sc.run(ww, 0.5, fp)
		if err != nil {
			return nil, err
		}
		sv, err := metrics.Compare(base, res)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct))
	}
	return &Report{
		ID: "sens", Title: "Perturbation robustness",
		Tables: []*metrics.Table{t},
		Notes:  []string{"expected shape: savings persist (paper: 18-28% carbon, 10-26% water under perturbation)"},
	}, nil
}
