// Package experiments regenerates every table and figure of the WaterWise
// paper's evaluation (Section 3 motivation and Section 6 results), mapping
// each to the modules that implement it — see DESIGN.md's per-experiment
// index. Each experiment returns a Report of plain-text tables whose rows
// mirror the series the paper plots.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// simulator, not the authors' 175-node AWS testbed); the shapes — who wins,
// approximate factors, orderings, crossovers — are the reproduction target,
// and EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/footprint"
	"waterwise/internal/metrics"
	"waterwise/internal/region"
	"waterwise/internal/trace"
)

// Scale sizes an experiment run. Quick (the default) keeps every experiment
// in CI-friendly seconds; Paper replays the full ten-day, ~230k-job setup.
type Scale struct {
	// Days of trace replay.
	Days int
	// JobsPerDay is the Borg-like arrival rate; the Alibaba-like trace
	// multiplies it by the paper's 8.5x factor.
	JobsPerDay float64
	// DurationScale shrinks job runtimes (used by Paper scale to keep the
	// reported ~15% cluster utilization at 230k jobs/10 days).
	DurationScale float64
	// Seed fixes all randomness.
	Seed int64
	// Tick is the scheduling cadence.
	Tick time.Duration
}

// Quick is the default scale: one simulated day, ~9k jobs, with job
// runtimes halved relative to the profile means so that inter-region
// transfer latency is a meaningful fraction of execution time — that ratio
// is what the delay-tolerance constraint (Eq. 11) prices, and the paper's
// tolerance sensitivity (Fig. 5) depends on it binding at 25%.
func Quick() Scale {
	return Scale{Days: 1, JobsPerDay: 9000, DurationScale: 0.5, Seed: 7, Tick: 30 * time.Second}
}

// Paper is the full-scale setup: ten days at 23k jobs/day (~230k jobs, as in
// the Google Borg replay), with runtimes scaled to hold the paper's ~15%
// average utilization on 175 servers.
func Paper() Scale {
	return Scale{Days: 10, JobsPerDay: 23000, DurationScale: 0.3, Seed: 7, Tick: time.Minute}
}

func (s Scale) withDefaults() Scale {
	if s.Days <= 0 {
		s.Days = 1
	}
	if s.JobsPerDay <= 0 {
		s.JobsPerDay = 7000
	}
	if s.DurationScale <= 0 {
		s.DurationScale = 1
	}
	if s.Tick <= 0 {
		s.Tick = time.Minute
	}
	return s
}

// simStart anchors all experiments in July 2023, matching the paper's
// carbon-intensity data window.
var simStart = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

// Scenario bundles everything one experiment run needs.
type Scenario struct {
	Scale Scale
	Env   *region.Environment
	Jobs  []*trace.Job
}

// ScenarioOpt customizes scenario construction.
type ScenarioOpt func(*scenarioCfg)

type scenarioCfg struct {
	regions   []*region.Region
	table     energy.FactorTable
	alibaba   bool
	rateMult  float64
	serverMul float64
}

// WithRegions restricts the scenario to a region subset (Fig. 12).
func WithRegions(ids ...region.ID) ScenarioOpt {
	return func(c *scenarioCfg) {
		rs, err := region.DefaultsSubset(ids...)
		if err == nil {
			c.regions = rs
		}
	}
}

// WithWRIData switches the water dataset to the WRI-style table (Fig. 6/7).
func WithWRIData() ScenarioOpt {
	return func(c *scenarioCfg) { c.table = energy.WRITable }
}

// WithAlibabaTrace switches to the Alibaba-like trace: 8.5x the arrival
// rate, burstier (Fig. 9/13).
func WithAlibabaTrace() ScenarioOpt {
	return func(c *scenarioCfg) { c.alibaba = true }
}

// WithRateMultiplier scales the arrival rate (the 2x request-rate study).
func WithRateMultiplier(m float64) ScenarioOpt {
	return func(c *scenarioCfg) { c.rateMult = m }
}

// WithServerMultiplier scales every region's server count (Fig. 11's
// utilization sweep changes utilization by changing available servers).
func WithServerMultiplier(m float64) ScenarioOpt {
	return func(c *scenarioCfg) { c.serverMul = m }
}

// NewScenario builds an environment and trace at the given scale.
func NewScenario(s Scale, opts ...ScenarioOpt) (*Scenario, error) {
	s = s.withDefaults()
	cfg := scenarioCfg{regions: region.Defaults(), table: energy.Table, rateMult: 1, serverMul: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.serverMul != 1 {
		for _, r := range cfg.regions {
			n := int(float64(r.Servers)*cfg.serverMul + 0.5)
			if n < 1 {
				n = 1
			}
			r.Servers = n
		}
	}
	horizon := (s.Days + 3) * 24 // trace days plus drain margin
	env, err := region.NewEnvironment(cfg.regions, cfg.table, simStart, horizon, s.Seed)
	if err != nil {
		return nil, err
	}
	tc := trace.Config{
		Start:         simStart,
		Duration:      time.Duration(s.Days) * 24 * time.Hour,
		JobsPerDay:    s.JobsPerDay * cfg.rateMult,
		Regions:       env.IDs(),
		DurationScale: s.DurationScale,
		Seed:          s.Seed + 1,
	}
	var jobs []*trace.Job
	if cfg.alibaba {
		// The Alibaba VM trace invokes 8.5x more jobs than Borg, but its
		// tasks are far shorter; durations are scaled down by the same
		// factor so cluster utilization stays at the paper's ~15% while
		// the scheduler faces the full 8.5x decision rate (Fig. 13).
		tc.JobsPerDay *= 8.5
		tc.DurationScale /= 8.5
		jobs, err = trace.GenerateAlibabaLike(tc)
	} else {
		jobs, err = trace.GenerateBorgLike(tc)
	}
	if err != nil {
		return nil, err
	}
	return &Scenario{Scale: s, Env: env, Jobs: jobs}, nil
}

// run executes one scheduler over the scenario at the given tolerance.
func (sc *Scenario) run(s cluster.Scheduler, tol float64, fp *footprint.Model) (*cluster.Result, error) {
	return cluster.Run(cluster.Config{
		Env: sc.Env, FP: fp, Tick: sc.Scale.Tick, Tolerance: tol,
	}, s, sc.Jobs)
}

// waterwise builds a fresh WaterWise scheduler (fresh history) for one run.
func waterwise(cfg core.Config) (*core.Scheduler, error) { return core.New(cfg) }

// Report is one experiment's regenerated output.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Charts are pre-rendered plain-text visualizations (bar charts,
	// sparklines) of the same data the tables carry.
	Charts []string
	Notes  []string
}

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, c := range r.Charts {
		b.WriteString(c)
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Report, error)
}

var registry = map[string]Experiment{}

func register(id, title string, run func(Scale) (*Report, error)) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

// defaultTable returns the default factor table (separated out so table
// experiments read naturally).
func defaultTable() energy.FactorTable { return energy.Table }

// scaleDuration converts a Scale's day count to a trace duration.
func scaleDuration(s Scale) time.Duration {
	return time.Duration(s.Days) * 24 * time.Hour
}
