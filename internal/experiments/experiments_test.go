package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyScale keeps experiment smoke tests fast: a couple of simulated hours
// is enough to execute every code path.
func tinyScale() Scale {
	return Scale{Days: 1, JobsPerDay: 600, DurationScale: 1, Seed: 3, Tick: time.Minute}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablate", "ext", "fig1", "fig10", "fig11", "fig12", "fig13",
		"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9",
		"sens", "tab2", "tab3",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig5")
	if err != nil || e.ID != "fig5" {
		t.Fatalf("Lookup(fig5) = %v, %v", e.ID, err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryExperimentRuns smoke-runs every registered experiment at tiny
// scale and checks the report renders.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke of all experiments")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(tinyScale())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q != experiment id %q", rep.ID, e.ID)
			}
			out := rep.String()
			if !strings.Contains(out, rep.Title) {
				t.Errorf("%s: rendered report missing title", e.ID)
			}
			if len(rep.Tables) == 0 {
				t.Errorf("%s: no tables", e.ID)
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestScenarioOptions(t *testing.T) {
	sc, err := NewScenario(tinyScale(), WithRegions("zurich", "milan"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sc.Env.IDs()); got != 2 {
		t.Errorf("region subset size = %d, want 2", got)
	}
	for _, j := range sc.Jobs {
		if j.Home != "zurich" && j.Home != "milan" {
			t.Fatalf("job home %s outside subset", j.Home)
		}
	}

	half, err := NewScenario(tinyScale(), WithServerMultiplier(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range half.Env.Regions {
		if r.Servers >= 35 {
			t.Errorf("server multiplier not applied: %d servers", r.Servers)
		}
	}

	doubled, err := NewScenario(tinyScale(), WithRateMultiplier(2))
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewScenario(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(doubled.Jobs)) < 1.5*float64(len(base.Jobs)) {
		t.Errorf("rate multiplier weak: %d vs %d jobs", len(doubled.Jobs), len(base.Jobs))
	}

	ali, err := NewScenario(tinyScale(), WithAlibabaTrace())
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(ali.Jobs)) < 5*float64(len(base.Jobs)) {
		t.Errorf("alibaba trace should be ~8.5x: %d vs %d jobs", len(ali.Jobs), len(base.Jobs))
	}
	// Utilization preserved: total requested service time should be about
	// equal despite the higher job count.
	sum := func(sc *Scenario) float64 {
		s := 0.0
		for _, j := range sc.Jobs {
			s += j.Duration.Minutes()
		}
		return s
	}
	if r := sum(ali) / sum(base); r < 0.6 || r > 1.6 {
		t.Errorf("alibaba total work ratio = %.2f, want ~1 (duration rescale)", r)
	}
}

func TestScaleDefaults(t *testing.T) {
	s := (Scale{}).withDefaults()
	if s.Days != 1 || s.JobsPerDay != 7000 || s.DurationScale != 1 || s.Tick != time.Minute {
		t.Errorf("defaults = %+v", s)
	}
	p := Paper()
	if p.Days != 10 || p.JobsPerDay != 23000 {
		t.Errorf("paper scale = %+v, want 10 days x 23k jobs (the 230k-job Borg replay)", p)
	}
}
