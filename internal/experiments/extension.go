package experiments

import (
	"fmt"

	"waterwise/internal/core"
	"waterwise/internal/footprint"
	"waterwise/internal/metrics"
	"waterwise/internal/sched"
)

func init() {
	register("ext", "§7 extensions: performance and cost as additional objectives", Extensions)
}

// Extensions exercises the paper's Discussion-section extensions: treating
// performance (service-time impact) and financial cost (electricity spend)
// as additional weighted objectives next to carbon and water. Expectations:
// raising the performance weight pulls mean service time toward 1x; raising
// the cost weight cuts electricity spend; both dilute — but should not
// erase — the sustainability savings.
func Extensions(s Scale) (*Report, error) {
	sc, err := NewScenario(s)
	if err != nil {
		return nil, err
	}
	fp := footprint.NewModel(footprint.NoPerturbation)
	base, err := sc.run(sched.NewBaseline(), 0.5, fp)
	if err != nil {
		return nil, err
	}
	baseCost := base.TotalCostUSD()
	if baseCost <= 0 {
		return nil, fmt.Errorf("ext: degenerate baseline cost")
	}

	t := &metrics.Table{
		Title:  "WaterWise with performance/cost objectives, 50% delay tolerance",
		Header: []string{"variant", "carbon saving", "water saving", "cost saving", "mean service"},
	}
	variants := []struct {
		label      string
		perf, cost float64
	}{
		{"paper objective (carbon+water)", 0, 0},
		{"+ perf weight 0.25", 0.25, 0},
		{"+ perf weight 1.0", 1.0, 0},
		{"+ cost weight 0.25", 0, 0.25},
		{"+ cost weight 1.0", 0, 1.0},
		{"+ perf 0.5 + cost 0.5", 0.5, 0.5},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig()
		cfg.PerfWeight = v.perf
		cfg.CostWeight = v.cost
		ww, err := waterwise(cfg)
		if err != nil {
			return nil, err
		}
		res, err := sc.run(ww, 0.5, fp)
		if err != nil {
			return nil, err
		}
		sv, err := metrics.Compare(base, res)
		if err != nil {
			return nil, err
		}
		costSaving := 100 * (1 - res.TotalCostUSD()/baseCost)
		t.AddRow(v.label, metrics.Pct(sv.CarbonPct), metrics.Pct(sv.WaterPct),
			metrics.Pct(costSaving), metrics.Times(sv.MeanService))
	}
	return &Report{
		ID: "ext", Title: "Performance and cost objectives (§7)",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"expected shape: higher perf weight lowers mean service toward 1x;",
			"higher cost weight raises cost savings; sustainability savings dilute but persist",
		},
	}, nil
}
