package scenario

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/feed"
	"waterwise/internal/fleet"
	"waterwise/internal/region"
	"waterwise/internal/server"
	"waterwise/internal/trace"
)

// Epoch is the fixed simulated-time anchor every scenario runs at: the
// environment starts here and the trace arrives from here. A fixed
// anchor (rather than wall now) keeps synthetic-feed scenarios
// bit-reproducible run to run.
var Epoch = time.Date(2023, 7, 1, 0, 0, 0, 0, time.UTC)

// RunOptions parameterizes one execution of a spec.
type RunOptions struct {
	// DataDir is the WAL root for durable specs; empty uses a fresh
	// temporary directory, removed after the run.
	DataDir string
	// Timeout bounds the whole run (default 4 minutes — generous; the
	// bundled specs finish in seconds).
	Timeout time.Duration
	// Logf, when set, receives progress lines (fault onsets/clears).
	Logf func(format string, args ...any)
}

// BuildTrace generates the spec's job trace — exposed so the no-fault
// equivalence test can replay the identical jobs through a plain fleet.
// The trace round-trips through the CSV encoding first, quantizing
// timestamps and energies exactly the way a file-fed replay would.
func BuildTrace(s Spec) ([]*trace.Job, error) {
	ids := make([]region.ID, 0)
	for _, r := range region.Defaults() {
		ids = append(ids, r.ID)
	}
	cfg := trace.Config{
		Start: Epoch, Duration: time.Duration(s.Hours) * time.Hour,
		JobsPerDay: s.JobsPerDay, Regions: ids, Seed: s.Seed,
	}
	var jobs []*trace.Job
	var err error
	switch s.Arrival.Program {
	case ArrivalSteady:
		jobs, err = trace.GenerateSteady(cfg)
	case ArrivalDiurnal:
		jobs, err = trace.GenerateBorgLike(cfg)
	case ArrivalBursty:
		jobs, err = trace.GenerateAlibabaLike(cfg)
	case ArrivalFlash:
		jobs, err = trace.GenerateFlashCrowd(trace.FlashConfig{
			Config:        cfg,
			FlashAt:       s.Arrival.FlashAt.Std(),
			FlashDuration: s.Arrival.FlashDuration.Std(),
			FlashMult:     s.Arrival.FlashMult,
		})
	default:
		err = fmt.Errorf("scenario %s: unknown arrival program %q", s.Name, s.Arrival.Program)
	}
	if err != nil {
		return nil, err
	}
	return roundTripCSV(jobs)
}

// pacedScheduler stretches each round by a fixed wall delay, delegating
// decisions unchanged — it gives round-indexed fault windows real time
// to land in without touching the decision stream.
type pacedScheduler struct {
	cluster.Scheduler
	delay time.Duration
}

// Schedule implements cluster.Scheduler with the added delay.
func (p pacedScheduler) Schedule(ctx *cluster.Context) ([]cluster.Decision, error) {
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	return p.Scheduler.Schedule(ctx)
}

// run carries one execution's wiring.
type run struct {
	spec  Spec
	opt   RunOptions
	chaos *feed.Chaos
	env   *region.Environment
	fl    *fleet.Fleet
	jobs  []*trace.Job

	fsyncDelay atomic.Int64 // injected WAL fsync latency, ns

	// Submitter-side accounting: the gateway's dead-shard buffer
	// overflows reject without any shard counting them, so the rejected
	// fraction SLO is measured where the client stands.
	submitted, rejected int

	maxStaleness float64 // max feed staleness seen at any driver poll, s
	faultLog     []string
	decisions    []fleet.Decision // the settled merged stream (evaluate)
}

// Run executes one scenario spec end to end and returns its report. The
// report's Pass field summarizes the SLO checks; Run returns an error
// only for harness failures (invalid spec, build errors, timeouts), not
// for SLO misses.
func Run(s Spec, opt RunOptions) (*Report, error) {
	rep, _, err := runFull(s, opt)
	return rep, err
}

// runFull is Run plus the merged decision stream, for the equivalence
// tests that compare a scenario run decision-for-decision against a
// plain fleet replay.
func runFull(s Spec, opt RunOptions) (*Report, []fleet.Decision, error) {
	s, err := s.WithDefaults()
	if err != nil {
		return nil, nil, err
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 4 * time.Minute
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	r := &run{spec: s, opt: opt}
	if err := r.buildEnv(); err != nil {
		return nil, nil, err
	}
	if r.jobs, err = BuildTrace(s); err != nil {
		return nil, nil, err
	}
	dataDir := ""
	if s.Durable {
		dataDir = opt.DataDir
		if dataDir == "" {
			tmp, err := os.MkdirTemp("", "waterwise-scenario-*")
			if err != nil {
				return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
			}
			defer os.RemoveAll(tmp)
			dataDir = tmp
		}
	}
	fcfg := fleet.Config{
		Env: r.env, Shards: s.Shards, Tolerance: 0.5,
		Round: s.Round.Std(), QueueCap: s.QueueCap, DataDir: dataDir,
		// Accelerated runs compress hours into milliseconds, so the WAL
		// group-commit clock must compress too or a whole scenario fits
		// inside one default sync interval and fsync faults never land.
		SyncInterval: 2 * time.Millisecond,
		NewScheduler: func(shard int, regions []region.ID) (cluster.Scheduler, error) {
			sched, err := core.New(core.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return pacedScheduler{Scheduler: sched, delay: s.Pacing.Std()}, nil
		},
		WALSyncDelay: func() time.Duration { return time.Duration(r.fsyncDelay.Load()) },
	}
	if len(s.Objectives) > 0 || len(s.SLOs.Windows) > 0 {
		// Sync mode, deliberately: the scrape runs inline on the round
		// thread, so every round lands in the store and windowed
		// assertions see a round-exact history — async coalescing under
		// CPU pressure can collapse a whole run into one scrape, leaving
		// every asserted window empty. Sync scraping is safe here because
		// recorded specs submit their trace up front: with no mid-run
		// submission pacing to perturb, stretching a round cannot change
		// any decision (TestRecorderEquivalence pins this).
		fcfg.Record = server.RecordConfig{
			Enable: true,
			Sync:   true,
			SLOs:   s.Objectives,
			Logf:   opt.Logf,
		}
	}
	if s.Supervisor {
		fcfg.Supervisor = &fleet.SupervisorConfig{
			Interval: time.Millisecond, FailThreshold: 2,
			BackoffMin: 5 * time.Millisecond, BackoffMax: 250 * time.Millisecond,
		}
	}
	if r.fl, err = fleet.New(fcfg); err != nil {
		return nil, nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	started := time.Now()
	report, err := r.execute()
	if err != nil {
		return nil, nil, err
	}
	report.WallMs = float64(time.Since(started).Microseconds()) / 1000
	report.StartedAt = started.UTC()
	return report, r.decisions, nil
}

// buildEnv wires the environment: a deterministic synthetic feed behind
// the chaos switch, served either directly (provider view) or through a
// feed.Live provider fetching over the chaos transport (live view).
func (r *run) buildEnv() error {
	s := r.spec
	regions := region.Defaults()
	specs := make([]feed.SyntheticRegion, len(regions))
	keys := make([]string, len(regions))
	for i, rg := range regions {
		specs[i] = feed.SyntheticRegion{Key: string(rg.ID), Grid: rg.Grid, Climate: rg.Climate}
		keys[i] = string(rg.ID)
	}
	inner, err := feed.NewSynthetic(specs, Epoch, s.Hours, s.Seed)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	r.chaos = feed.NewChaos(inner)
	var prov feed.Provider = r.chaos
	if s.LiveFeed {
		// Small real-time windows: scenario wall time is milliseconds per
		// round, so the TTL → stale → forecast ladder must turn over in
		// milliseconds too.
		live, err := feed.NewLive(feed.LiveConfig{
			BaseURL: "http://scenario.chaos", Regions: keys,
			TTL: 5 * time.Millisecond, MinInterval: time.Millisecond,
			ForecastAfter: 15 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
			Timeout: time.Second,
			Client:  &http.Client{Transport: r.chaos.Transport()},
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		prov = live
		// Prime every region so round one schedules over fetched (not
		// zero-valued cold) readings.
		deadline := time.Now().Add(2 * time.Second)
		for _, key := range keys {
			for {
				if smp, err := live.At(key, Epoch); err == nil && len(smp.Mix) > 0 {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("scenario %s: live feed never primed region %s", s.Name, key)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	r.env, err = region.NewEnvironmentWithProvider(regions, energy.Table, Epoch, s.Hours, prov)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return nil
}

// execute runs the trace under the fault schedule and evaluates SLOs.
func (r *run) execute() (*Report, error) {
	s := r.spec
	ctx, cancel := context.WithTimeout(context.Background(), r.opt.Timeout)
	defer cancel()
	defer r.fl.Stop()

	// Upfront: the whole trace before Start (the replay discipline —
	// Start seals the backlog durably). Paced: prefill the first rounds,
	// feed the rest from the driver loop.
	next := 0
	if s.Submit == SubmitUpfront {
		next = len(r.jobs)
		for _, j := range r.jobs {
			r.submit(j)
		}
	} else {
		for next < len(r.jobs) && r.submitRound(r.jobs[next]) <= 2 {
			r.submit(r.jobs[next])
			next++
		}
	}
	r.fl.Start()
	if err := r.drive(ctx, next); err != nil {
		return nil, err
	}
	if err := r.fl.Drain(ctx); err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("scenario %s: timed out draining: %w", s.Name, ctx.Err())
		}
		return nil, fmt.Errorf("scenario %s: drain: %w", s.Name, err)
	}
	r.fl.Stop()
	if s.SLOs.RequireFreshAtEnd {
		r.awaitFresh(ctx)
	}
	return r.evaluate()
}

// submitRound maps a job to the round (1-based) that first schedules it.
func (r *run) submitRound(j *trace.Job) uint64 {
	rd := r.spec.Round.Std()
	off := j.Submit.Sub(Epoch)
	return uint64((off+rd-1)/rd) + 1
}

// submit routes one job through the gateway, keeping submitter-side
// accept/reject accounting.
func (r *run) submit(j *trace.Job) {
	id := j.ID
	_, err := r.fl.Submit(server.JobSpec{
		ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
		DurationSec: j.Duration.Seconds(), EnergyKWh: float64(j.Energy),
		EstDurationSec: j.EstDuration.Seconds(), EstEnergyKWh: float64(j.EstEnergy),
	})
	r.submitted++
	if err != nil {
		r.rejected++
	}
}

// faultState tracks one schedule entry through its lifecycle.
type faultState struct {
	spec     FaultSpec
	applied  bool
	resolved bool
	prevCaps []int // queue_squeeze restore set
}

// drive is the fault driver and paced feeder: poll round progress, fire
// and clear faults at their windows, feed the trace (paced mode), and
// sample feed health — until the schedule is resolved and the trace
// fully submitted.
func (r *run) drive(ctx context.Context, next int) error {
	faults := make([]*faultState, len(r.spec.Faults))
	for i := range r.spec.Faults {
		faults[i] = &faultState{spec: r.spec.Faults[i]}
	}
	poll := r.spec.Pacing.Std() / 4
	if poll < 200*time.Microsecond {
		poll = 200 * time.Microsecond
	}
	for {
		if ctx.Err() != nil {
			return fmt.Errorf("scenario %s: timed out driving the fault schedule: %w", r.spec.Name, ctx.Err())
		}
		progress := r.progress()
		for next < len(r.jobs) && r.submitRound(r.jobs[next]) <= progress+2 {
			r.submit(r.jobs[next])
			next++
		}
		if h := feed.HealthOf(r.env.Provider()); h.StalenessSeconds > r.maxStaleness {
			r.maxStaleness = h.StalenessSeconds
		}
		allDone := next >= len(r.jobs)
		for _, f := range faults {
			r.step(f, progress)
			if !f.resolved {
				allDone = false
			}
		}
		if allDone {
			return nil
		}
		time.Sleep(poll)
	}
}

// progress is the run's round clock: the most rounds any shard has
// completed (dead shards hold their pre-crash count, live shards keep
// advancing, so the clock never stalls during a kill window).
func (r *run) progress() uint64 {
	var max uint64
	for i := 0; i < r.fl.Shards(); i++ {
		if n := r.fl.Shard(i).Status().Rounds; n > max {
			max = n
		}
	}
	return max
}

// step advances one fault through apply/clear against the round clock.
func (r *run) step(f *faultState, progress uint64) {
	if !f.applied {
		if progress < f.spec.AtRound {
			return
		}
		r.apply(f)
		f.applied = true
		r.faultLog = append(r.faultLog, f.spec.String())
		r.opt.Logf("scenario %s: fault %s fired at round %d", r.spec.Name, f.spec, progress)
		if f.spec.Rounds == 0 && f.spec.Kind != FaultKillShard {
			f.resolved = true // holds to the end by design
		}
		return
	}
	if f.resolved {
		return
	}
	if f.spec.Kind == FaultKillShard && r.spec.Supervisor {
		// Resolved when the supervisor has brought the shard back.
		if !r.fl.Shard(f.spec.Shard).Stopped() {
			f.resolved = true
			r.opt.Logf("scenario %s: supervisor recovered shard %d by round %d", r.spec.Name, f.spec.Shard, progress)
		}
		return
	}
	if progress < f.spec.AtRound+f.spec.Rounds {
		return
	}
	r.clear(f)
	f.resolved = true
	r.opt.Logf("scenario %s: fault %s cleared at round %d", r.spec.Name, f.spec, progress)
}

// apply fires one fault.
func (r *run) apply(f *faultState) {
	switch f.spec.Kind {
	case FaultFeedOutage:
		r.chaos.SetFault(feed.FaultOutage, 0)
	case FaultFeedThrottle:
		r.chaos.SetFault(feed.FaultThrottle, f.spec.RetryAfter.Std())
	case FaultKillShard:
		_ = r.fl.KillShard(f.spec.Shard)
	case FaultQueueSqueeze:
		f.prevCaps = make([]int, r.fl.Shards())
		for i := 0; i < r.fl.Shards(); i++ {
			srv := r.fl.Shard(i)
			f.prevCaps[i] = srv.QueueCap()
			srv.SetQueueCap(f.spec.Cap)
		}
	case FaultSlowFsync:
		r.fsyncDelay.Store(int64(f.spec.Delay.Std()))
	}
}

// clear ends one windowed fault.
func (r *run) clear(f *faultState) {
	switch f.spec.Kind {
	case FaultFeedOutage, FaultFeedThrottle:
		r.chaos.SetFault(feed.FaultNone, 0)
	case FaultKillShard:
		_ = r.fl.RestartShard(f.spec.Shard)
	case FaultQueueSqueeze:
		for i, cap := range f.prevCaps {
			r.fl.Shard(i).SetQueueCap(cap)
		}
	case FaultSlowFsync:
		r.fsyncDelay.Store(0)
	}
}

// awaitFresh polls the provider until feed health clears (or a short
// deadline passes) — the post-outage recovery the RequireFreshAtEnd SLO
// asserts. Live providers refresh on At, so the poll itself drives the
// re-fetch.
func (r *run) awaitFresh(ctx context.Context) {
	prov := r.env.Provider()
	keys := prov.Regions()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		for _, key := range keys {
			_, _ = prov.At(key, Epoch)
		}
		if h := feed.HealthOf(prov); !h.Stale {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}
