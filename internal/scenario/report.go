package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"waterwise/internal/feed"
	"waterwise/internal/trace"
	"waterwise/internal/tsdb"
)

// Check is one evaluated SLO assertion.
type Check struct {
	// Name identifies the assertion (the SLOSpec field, kebab-cased).
	Name string `json:"name"`
	// Ok reports whether the assertion held.
	Ok bool `json:"ok"`
	// Value is the measured quantity; Bound the asserted limit.
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
	// Detail carries context for failed checks.
	Detail string `json:"detail,omitempty"`
}

// Report is one scenario run's machine-readable result — the record
// appended into BENCH_SCENARIOS.json, comparable across commits by
// scenario name.
type Report struct {
	// Scenario names the spec that ran.
	Scenario    string    `json:"scenario"`
	Description string    `json:"description,omitempty"`
	StartedAt   time.Time `json:"started_at"`
	// WallMs is the whole run's wall time.
	WallMs float64 `json:"wall_ms"`
	// Pass is the conjunction of every check.
	Pass bool `json:"pass"`
	// Checks are the evaluated SLO assertions.
	Checks []Check `json:"checks"`
	// Faults lists the schedule entries that actually fired.
	Faults []string `json:"faults,omitempty"`
	// Jobs is the generated trace size; Submitted/RejectedSubmits are the
	// submitter-side ledger (gateway buffer overflows included).
	Jobs            int `json:"jobs"`
	Submitted       int `json:"submitted"`
	RejectedSubmits int `json:"rejected_submits"`
	// Fleet counters at the end of the run.
	Accepted    uint64 `json:"accepted"`
	Rejected    uint64 `json:"rejected"`
	Rounds      uint64 `json:"rounds"`
	Decisions   uint64 `json:"decisions"`
	Merged      uint64 `json:"merged"`
	Lost        uint64 `json:"lost"`
	Unscheduled int    `json:"unscheduled"`
	// Restarts counts supervisor-driven shard restarts.
	Restarts uint64 `json:"restarts"`
	// DecisionP99Ms is the fleet-merged decision-latency p99.
	DecisionP99Ms float64 `json:"decision_p99_ms"`
	// MaxFeedStalenessSeconds is the worst staleness any driver poll saw.
	MaxFeedStalenessSeconds float64 `json:"max_feed_staleness_s"`
	// ForecastServed and FetchErrors are the feed's final degradation
	// counters (live mode).
	ForecastServed uint64 `json:"forecast_served,omitempty"`
	FetchErrors    uint64 `json:"fetch_errors,omitempty"`
	// FsyncP99Ms is the worst per-shard fsync-stall p99 (durable mode).
	FsyncP99Ms float64 `json:"fsync_p99_ms,omitempty"`
	// RecordedRounds is the flight recorder's newest scraped round, and
	// Alerts the final burn-rate alert states (specs with Objectives or
	// windowed assertions only).
	RecordedRounds uint64       `json:"recorded_rounds,omitempty"`
	Alerts         []tsdb.Alert `json:"alerts,omitempty"`
}

// evaluate reads the settled fleet and builds the report.
func (r *run) evaluate() (*Report, error) {
	st := r.fl.Status()
	decisions := r.fl.Decisions(0, 0)
	r.decisions = decisions
	health := feed.HealthOf(r.env.Provider())
	if health.StalenessSeconds > r.maxStaleness {
		r.maxStaleness = health.StalenessSeconds
	}
	rep := &Report{
		Scenario: r.spec.Name, Description: r.spec.Description,
		Faults: r.faultLog, Jobs: len(r.jobs),
		Submitted: r.submitted, RejectedSubmits: r.rejected,
		Accepted: st.Accepted, Rejected: st.Rejected, Rounds: st.Rounds,
		Decisions: st.Decisions, Merged: st.Merged, Lost: st.Lost,
		Unscheduled:             st.Unscheduled,
		Restarts:                r.fl.Restarts(),
		MaxFeedStalenessSeconds: r.maxStaleness,
		ForecastServed:          health.ForecastServed,
		FetchErrors:             health.FetchErrors,
	}
	if st.Obs != nil {
		rep.DecisionP99Ms = st.Obs.DecisionP99Ms
	}
	for _, ss := range st.ShardStatus {
		if ss.WAL != nil {
			if ms := float64(ss.WAL.FsyncP99) / 1e6; ms > rep.FsyncP99Ms {
				rep.FsyncP99Ms = ms
			}
		}
	}

	slo := r.spec.SLOs
	check := func(name string, ok bool, value, bound float64, detail string) {
		if ok {
			detail = ""
		}
		rep.Checks = append(rep.Checks, Check{Name: name, Ok: ok, Value: value, Bound: bound, Detail: detail})
	}
	if slo.MaxDecisionP99Ms > 0 {
		check("max-decision-p99-ms", rep.DecisionP99Ms <= slo.MaxDecisionP99Ms,
			rep.DecisionP99Ms, slo.MaxDecisionP99Ms, "decision latency p99 over bound")
	}
	if slo.MaxRejectedFraction > 0 {
		frac := 0.0
		if r.submitted > 0 {
			frac = float64(r.rejected) / float64(r.submitted)
		}
		check("max-rejected-fraction", frac <= slo.MaxRejectedFraction,
			frac, slo.MaxRejectedFraction, "submitter-observed rejection rate over bound")
	}
	if slo.MaxFeedStalenessSeconds > 0 {
		check("max-feed-staleness-s", r.maxStaleness <= slo.MaxFeedStalenessSeconds,
			r.maxStaleness, slo.MaxFeedStalenessSeconds, "feed staleness exceeded bound during the run")
	}
	if slo.RequireNoLost {
		check("require-no-lost", st.Lost == 0, float64(st.Lost), 0,
			"merge lost decisions to shard-ring eviction")
	}
	if slo.RequireDenseSeqs {
		dense := true
		detail := ""
		for i, d := range decisions {
			if d.Seq != uint64(i)+1 {
				dense = false
				detail = fmt.Sprintf("decision %d has global seq %d", i, d.Seq)
				break
			}
		}
		check("require-dense-seqs", dense, float64(len(decisions)), float64(st.Merged), detail)
	}
	if slo.MinDecisions > 0 {
		check("min-decisions", st.Merged >= slo.MinDecisions,
			float64(st.Merged), float64(slo.MinDecisions), "merged decision count under bound")
	}
	if slo.MinRestarts > 0 {
		check("min-restarts", rep.Restarts >= slo.MinRestarts,
			float64(rep.Restarts), float64(slo.MinRestarts), "supervisor performed fewer restarts than required")
	}
	if slo.MinForecastServed > 0 {
		check("min-forecast-served", health.ForecastServed >= slo.MinForecastServed,
			float64(health.ForecastServed), float64(slo.MinForecastServed), "feed never degraded to its forecast fallback")
	}
	if slo.MinFetchErrors > 0 {
		check("min-fetch-errors", health.FetchErrors >= slo.MinFetchErrors,
			float64(health.FetchErrors), float64(slo.MinFetchErrors), "no failed upstream fetches recorded")
	}
	if slo.RequireFreshAtEnd {
		fresh := 0.0
		if !health.Stale {
			fresh = 1
		}
		check("require-fresh-at-end", !health.Stale, fresh, 1, "feed health still stale after faults cleared")
	}
	if slo.MinFsyncP99Ms > 0 {
		check("min-fsync-p99-ms", rep.FsyncP99Ms >= slo.MinFsyncP99Ms,
			rep.FsyncP99Ms, slo.MinFsyncP99Ms, "fsync stall p99 never reached the injected level")
	}
	if rec := r.fl.Recorder(); rec != nil {
		rep.RecordedRounds = rec.LastRound()
		rep.Alerts = rec.Alerts()
		for _, w := range slo.Windows {
			r.checkWindow(rec, w, check)
		}
	}
	rep.Pass = true
	for _, c := range rep.Checks {
		rep.Pass = rep.Pass && c.Ok
	}
	return rep, nil
}

// checkWindow evaluates one windowed assertion against the recorder.
func (r *run) checkWindow(rec *tsdb.Recorder, w WindowAssertion, check func(name string, ok bool, value, bound float64, detail string)) {
	switch w.Kind {
	case WindowQuantile:
		// Every trailing window ending in [FromRound, last] must hold the
		// bound — one bad window anywhere after the exemption is a miss.
		// Windows with no observations are skipped (a drained run's last
		// rounds may place nothing), but at least one must have data or the
		// assertion never measured anything.
		last := rec.LastRound()
		first := w.FromRound
		if first < w.Window {
			first = w.Window
		}
		worst, measured := 0.0, false
		for end := first; end <= last; end++ {
			q, ok := rec.Quantile(w.Series, w.Q, w.Window, end)
			if !ok {
				continue
			}
			measured = true
			if ms := q * 1000; ms > worst {
				worst = ms
			}
		}
		detail := fmt.Sprintf("worst p%g over any %d-round window from round %d", w.Q*100, w.Window, first)
		if !measured {
			detail = fmt.Sprintf("no recorded observations of %s in any asserted window", w.Series)
		}
		check(w.String(), measured && worst <= w.MaxMs, worst, w.MaxMs, detail)
	case WindowAlert:
		obj, rule, _ := splitAlertRef(w.Alert)
		var alert *tsdb.Alert
		for _, a := range rec.Alerts() {
			if a.Objective == obj && a.Rule == rule {
				alert = &a
				break
			}
		}
		if alert == nil {
			check(w.String(), false, 0, 0, fmt.Sprintf("recorder tracks no alert %q", w.Alert))
			return
		}
		lo, hi := uint64(0), rec.LastRound()
		if len(w.FiresBetween) == 2 {
			lo, hi = w.FiresBetween[0], w.FiresBetween[1]
		}
		fired := alert.Fires > 0 && alert.FiredAtRound >= lo && alert.FiredAtRound <= hi
		check(w.String()+"-fires", fired, float64(alert.FiredAtRound), float64(hi),
			fmt.Sprintf("alert fired %d times, first-fire round %d outside [%d, %d]", alert.Fires, alert.FiredAtRound, lo, hi))
		if w.ClearsBy > 0 {
			cleared := !alert.Firing && alert.ClearedAtRound > 0 && alert.ClearedAtRound <= w.ClearsBy
			check(w.String()+"-clears", cleared, float64(alert.ClearedAtRound), float64(w.ClearsBy),
				fmt.Sprintf("alert still firing=%v, cleared at round %d, want cleared by %d", alert.Firing, alert.ClearedAtRound, w.ClearsBy))
		}
	}
}

// WriteReports merges reports into the JSON report file (conventionally
// BENCH_SCENARIOS.json): an existing entry with the same scenario name
// is replaced, new names append, and the file stays sorted by name — so
// successive runs of the same scenarios stay comparable, line for line.
func WriteReports(path string, reports ...Report) error {
	var all []Report
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &all); err != nil {
			return fmt.Errorf("scenario: existing report file %s is not a report array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, rep := range reports {
		replaced := false
		for i := range all {
			if all[i].Scenario == rep.Scenario {
				all[i] = rep
				replaced = true
				break
			}
		}
		if !replaced {
			all = append(all, rep)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Scenario < all[j].Scenario })
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(all); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// roundTripCSV pushes jobs through the trace CSV codec, quantizing
// timestamps to the precision a file-fed replay would carry.
func roundTripCSV(jobs []*trace.Job) ([]*trace.Job, error) {
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, jobs); err != nil {
		return nil, err
	}
	return trace.ReadCSV(&buf)
}

// ReportPath is the conventional repo-root report file name.
const ReportPath = "BENCH_SCENARIOS.json"

// DefaultReportPath joins ReportPath onto dir (empty dir: current
// directory).
func DefaultReportPath(dir string) string {
	if dir == "" {
		return ReportPath
	}
	return filepath.Join(dir, ReportPath)
}
