// Package scenario is the declarative chaos harness: a scenario is a
// validated spec combining an arrival program (what load looks like), a
// timed fault schedule (what breaks, when, for how long), and SLO
// assertions (what must still hold), and the runner executes it against
// a real fleet — the same server shards, gateway, WAL, and feed stack
// production runs, with faults injected through first-class hooks
// (feed.Chaos, fleet.SupervisorConfig, server.SetQueueCap,
// wal.Options.SyncDelay) rather than test doubles.
//
// The harness's own correctness bar is the no-fault equivalence test: a
// scenario with an empty fault schedule must be decision-for-decision
// identical to a plain fleet replay of the same trace, proving every
// injection hook is exactly free at zero. Reports are machine-readable
// and append into BENCH_SCENARIOS.json keyed by scenario name, so runs
// are comparable across commits.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"waterwise/internal/tsdb"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("15m", "500ms") in scenario JSON, and accepts either a string or a
// bare nanosecond count when parsing.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "15m"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// Std converts to time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Arrival program names accepted by Spec.Arrival.Program.
const (
	// ArrivalSteady is homogeneous Poisson arrivals (trace.GenerateSteady).
	ArrivalSteady = "steady"
	// ArrivalDiurnal is the Borg-style diurnal+weekly modulated program
	// (trace.GenerateBorgLike).
	ArrivalDiurnal = "diurnal"
	// ArrivalBursty is the Alibaba-style Markov-modulated program
	// (trace.GenerateAlibabaLike).
	ArrivalBursty = "bursty"
	// ArrivalFlash is a steady baseline with one rate spike
	// (trace.GenerateFlashCrowd).
	ArrivalFlash = "flash"
)

// Arrival selects and parameterizes the job-arrival program.
type Arrival struct {
	// Program is one of the Arrival* constants (default steady).
	Program string `json:"program,omitempty"`
	// FlashAt, FlashDuration, and FlashMult parameterize ArrivalFlash
	// (offset of the spike from the trace start, its length, and its
	// rate multiplier); ignored by the other programs.
	FlashAt       Duration `json:"flash_at,omitempty"`
	FlashDuration Duration `json:"flash_duration,omitempty"`
	FlashMult     float64  `json:"flash_mult,omitempty"`
}

// Fault kinds accepted by FaultSpec.Kind.
const (
	// FaultFeedOutage makes the environment feed unreachable: the chaos
	// provider serves last-good readings (staleness rises), and in live
	// mode every upstream request fails at the transport.
	FaultFeedOutage = "feed_outage"
	// FaultFeedThrottle turns the feed upstream into a 429 storm with a
	// Retry-After header (live mode; in synthetic mode it only marks
	// health degraded).
	FaultFeedThrottle = "feed_throttle"
	// FaultKillShard crash-stops one shard (fleet.KillShard: the WAL
	// drops its unsynced buffer). Recovery is the supervisor's when
	// Spec.Supervisor is set, otherwise an explicit RestartShard after
	// Rounds rounds.
	FaultKillShard = "kill_shard"
	// FaultQueueSqueeze drops every shard's ingest queue capacity to Cap
	// for the window, restoring the original capacity after.
	FaultQueueSqueeze = "queue_squeeze"
	// FaultSlowFsync injects Delay of latency into every WAL fsync for
	// the window (wal.Options.SyncDelay) — the degraded-disk fault.
	FaultSlowFsync = "slow_fsync"
)

// FaultSpec is one timed entry of the fault schedule. Time is measured
// in completed scheduling rounds (the fleet's only meaningful clock in
// accelerated mode): the fault fires once any shard has completed
// AtRound rounds and — for windowed kinds — clears once progress
// reaches AtRound+Rounds.
type FaultSpec struct {
	// Kind is one of the Fault* constants.
	Kind string `json:"kind"`
	// AtRound is the onset, in completed rounds.
	AtRound uint64 `json:"at_round"`
	// Rounds is the window length; 0 means the fault holds to the end of
	// the run (invalid for kill_shard without a supervisor).
	Rounds uint64 `json:"rounds,omitempty"`
	// Shard is the victim for kill_shard.
	Shard int `json:"shard,omitempty"`
	// RetryAfter is the Retry-After advertised during feed_throttle.
	RetryAfter Duration `json:"retry_after,omitempty"`
	// Cap is the squeezed queue capacity for queue_squeeze.
	Cap int `json:"cap,omitempty"`
	// Delay is the injected fsync latency for slow_fsync.
	Delay Duration `json:"delay,omitempty"`
}

// String renders the fault for reports: kind, window, and parameter.
func (f FaultSpec) String() string {
	s := fmt.Sprintf("%s@r%d", f.Kind, f.AtRound)
	if f.Rounds > 0 {
		s += fmt.Sprintf("+%d", f.Rounds)
	}
	switch f.Kind {
	case FaultKillShard:
		s += fmt.Sprintf(" shard=%d", f.Shard)
	case FaultQueueSqueeze:
		s += fmt.Sprintf(" cap=%d", f.Cap)
	case FaultSlowFsync:
		s += fmt.Sprintf(" delay=%s", f.Delay.Std())
	case FaultFeedThrottle:
		if f.RetryAfter > 0 {
			s += fmt.Sprintf(" retry-after=%s", f.RetryAfter.Std())
		}
	}
	return s
}

// Window assertion kinds accepted by WindowAssertion.Kind.
const (
	// WindowQuantile asserts a recorded histogram quantile stays under a
	// bound over every window of the run's recorded history.
	WindowQuantile = "quantile"
	// WindowAlert asserts a burn-rate SLO alert's fire/clear trajectory.
	WindowAlert = "alert"
)

// WindowAssertion is one windowed check against the fleet's metrics
// flight recorder — time-indexed where the flat SLOSpec fields are
// end-of-run aggregates. A quantile assertion demands "pQ of Series over
// every trailing Window rounds stays <= MaxMs from FromRound on" (the
// shape of "p99 recovered within K rounds of the fault clearing"); an
// alert assertion demands a named burn-rate alert actually fired inside
// a round range and, optionally, cleared by a deadline.
type WindowAssertion struct {
	// Kind is WindowQuantile or WindowAlert.
	Kind string `json:"kind"`

	// Series names the histogram family for WindowQuantile (without
	// _bucket), e.g. "waterwise_fleet_decision_latency_seconds".
	Series string `json:"series,omitempty"`
	// Q is the quantile in (0,1]; 0 defaults to 0.99.
	Q float64 `json:"q,omitempty"`
	// Window is the trailing window length in rounds (default 5).
	Window uint64 `json:"window,omitempty"`
	// FromRound is the first asserted window end; windows ending earlier
	// (e.g. during the fault itself) are exempt.
	FromRound uint64 `json:"from_round,omitempty"`
	// MaxMs bounds the quantile, in milliseconds.
	MaxMs float64 `json:"max_ms,omitempty"`

	// Alert names the asserted alert as "objective/rule" for WindowAlert,
	// e.g. "availability/fast".
	Alert string `json:"alert,omitempty"`
	// FiresBetween is the [lo, hi] round range the alert must first fire
	// in; empty only demands it fired at some point.
	FiresBetween []uint64 `json:"fires_between,omitempty"`
	// ClearsBy, when > 0, demands the alert cleared at or before this
	// round and is not firing at the end of the run.
	ClearsBy uint64 `json:"clears_by,omitempty"`
}

// String renders the assertion for check names and reports.
func (w WindowAssertion) String() string {
	if w.Kind == WindowAlert {
		return "alert:" + w.Alert
	}
	return fmt.Sprintf("quantile:%s@p%g", w.Series, w.Q*100)
}

// SLOSpec is the assertion set evaluated after the run from the fleet's
// own status, observability, and feed-health surfaces. Zero-valued
// fields are unchecked, so a spec states only the objectives it cares
// about.
type SLOSpec struct {
	// MaxDecisionP99Ms bounds the fleet-merged decision-latency p99
	// (submit acceptance to round commit, wall clock).
	MaxDecisionP99Ms float64 `json:"max_decision_p99_ms,omitempty"`
	// MaxRejectedFraction bounds rejected/submitted as observed by the
	// submitter (gateway buffer overflows included). Negative disables;
	// the zero value disables too (state 0 explicitly via a tiny bound).
	MaxRejectedFraction float64 `json:"max_rejected_fraction,omitempty"`
	// MaxFeedStalenessSeconds bounds the maximum feed staleness observed
	// at any poll during the run.
	MaxFeedStalenessSeconds float64 `json:"max_feed_staleness_s,omitempty"`
	// RequireNoLost asserts the merge lost no decisions to ring eviction
	// (fleet Lost == 0).
	RequireNoLost bool `json:"require_no_lost,omitempty"`
	// RequireDenseSeqs asserts the merged stream's global sequence
	// numbers are 1..N with no gap.
	RequireDenseSeqs bool `json:"require_dense_seqs,omitempty"`
	// MinDecisions asserts at least this many merged decisions.
	MinDecisions uint64 `json:"min_decisions,omitempty"`
	// MinRestarts asserts the supervisor performed at least this many
	// shard restarts (proof the failover path actually ran).
	MinRestarts uint64 `json:"min_restarts,omitempty"`
	// MinForecastServed asserts the feed degraded to its forecast
	// fallback at least this often (proof an outage actually starved the
	// cache).
	MinForecastServed uint64 `json:"min_forecast_served,omitempty"`
	// MinFetchErrors asserts at least this many failed upstream fetches
	// (proof a transport fault actually landed; live mode).
	MinFetchErrors uint64 `json:"min_fetch_errors,omitempty"`
	// RequireFreshAtEnd asserts feed health recovered (not stale) after
	// the schedule's feed faults cleared.
	RequireFreshAtEnd bool `json:"require_fresh_at_end,omitempty"`
	// MinFsyncP99Ms asserts some shard's fsync-stall p99 reached this
	// level (proof slow_fsync actually landed).
	MinFsyncP99Ms float64 `json:"min_fsync_p99_ms,omitempty"`
	// Windows are time-indexed assertions against the run's recorded
	// metrics history; any entry (or any Spec.Objectives) arms the
	// fleet's flight recorder in deterministic sync mode.
	Windows []WindowAssertion `json:"windows,omitempty"`
}

// Submit modes accepted by Spec.Submit.
const (
	// SubmitUpfront submits the whole trace before Start — the replay
	// discipline every equivalence test uses (deterministic round
	// membership for every job).
	SubmitUpfront = "upfront"
	// SubmitPaced feeds the trace as rounds progress, each job submitted
	// about two rounds before it falls due — the discipline that makes
	// mid-run admission faults (queue_squeeze, flash crowds) bite.
	// Pacing is wall-clock best-effort: a job can slip a round under
	// extreme scheduling jitter, so paced specs assert aggregate SLOs,
	// not per-decision equality.
	SubmitPaced = "paced"
)

// Spec is one declarative scenario. JSON form is the on-disk/bundled
// representation; the zero value of every optional field means "default".
type Spec struct {
	// Name identifies the scenario in reports and BENCH_SCENARIOS.json.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// Seed drives trace generation and the synthetic feed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Shards is the fleet width (default 2).
	Shards int `json:"shards,omitempty"`
	// Hours is the simulated environment span (default 6).
	Hours int `json:"hours,omitempty"`
	// Round is the simulated round length (default 15m).
	Round Duration `json:"round,omitempty"`
	// JobsPerDay is the mean arrival rate (default 2000).
	JobsPerDay float64 `json:"jobs_per_day,omitempty"`
	// Arrival selects the arrival program (default steady).
	Arrival Arrival `json:"arrival,omitempty"`
	// QueueCap bounds each shard's ingest queue (0: server default).
	QueueCap int `json:"queue_cap,omitempty"`
	// Pacing stretches each shard round by this wall-clock delay so
	// round-indexed fault windows land mid-run (decision-neutral; 0
	// defaults to 2ms when the schedule has faults, otherwise free-run).
	Pacing Duration `json:"pacing,omitempty"`
	// Submit is SubmitUpfront (default) or SubmitPaced.
	Submit string `json:"submit,omitempty"`
	// Supervisor enables the fleet watchdog (required for kill_shard
	// faults with no explicit restart window).
	Supervisor bool `json:"supervisor,omitempty"`
	// LiveFeed routes the environment through a feed.Live provider
	// backed by the chaos transport — the full TTL/backoff/forecast
	// ladder under fault control — instead of wrapping the synthetic
	// provider directly.
	LiveFeed bool `json:"live_feed,omitempty"`
	// Durable runs every shard with a write-ahead log under a temporary
	// directory (implied by kill_shard and slow_fsync faults).
	Durable bool `json:"durable,omitempty"`
	// Faults is the timed fault schedule (possibly empty: a plain run).
	Faults []FaultSpec `json:"faults,omitempty"`
	// Objectives are burn-rate SLO objectives evaluated by the fleet's
	// flight recorder on every round during the run; their alert
	// trajectories are asserted with SLOs.Windows alert entries.
	Objectives []tsdb.Objective `json:"objectives,omitempty"`
	// SLOs are the post-run assertions.
	SLOs SLOSpec `json:"slos,omitempty"`
}

// WithDefaults fills defaulted fields and validates the spec, returning
// the runnable form.
func (s Spec) WithDefaults() (Spec, error) {
	if s.Name == "" {
		return s, fmt.Errorf("scenario: spec needs a name")
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 2
	}
	if s.Hours <= 0 {
		s.Hours = 6
	}
	if s.Round <= 0 {
		s.Round = Duration(15 * time.Minute)
	}
	if s.JobsPerDay == 0 {
		s.JobsPerDay = 2000
	}
	if s.JobsPerDay < 0 {
		return s, fmt.Errorf("scenario %s: negative arrival rate", s.Name)
	}
	if s.Arrival.Program == "" {
		s.Arrival.Program = ArrivalSteady
	}
	switch s.Arrival.Program {
	case ArrivalSteady, ArrivalDiurnal, ArrivalBursty:
	case ArrivalFlash:
		if s.Arrival.FlashMult == 0 {
			s.Arrival.FlashMult = 10
		}
		if s.Arrival.FlashDuration <= 0 {
			s.Arrival.FlashDuration = Duration(30 * time.Minute)
		}
	default:
		return s, fmt.Errorf("scenario %s: unknown arrival program %q", s.Name, s.Arrival.Program)
	}
	switch s.Submit {
	case "":
		s.Submit = SubmitUpfront
	case SubmitUpfront, SubmitPaced:
	default:
		return s, fmt.Errorf("scenario %s: unknown submit mode %q", s.Name, s.Submit)
	}
	if s.Pacing == 0 && len(s.Faults) > 0 {
		s.Pacing = Duration(2 * time.Millisecond)
	}
	totalRounds := uint64(time.Duration(s.Hours) * time.Hour / s.Round.Std())
	for i, f := range s.Faults {
		if f.AtRound == 0 || f.AtRound >= totalRounds {
			return s, fmt.Errorf("scenario %s: fault %d onset round %d outside (0, %d)", s.Name, i, f.AtRound, totalRounds)
		}
		switch f.Kind {
		case FaultFeedOutage, FaultFeedThrottle:
		case FaultKillShard:
			if f.Shard < 0 || f.Shard >= s.Shards {
				return s, fmt.Errorf("scenario %s: fault %d kills shard %d of %d", s.Name, i, f.Shard, s.Shards)
			}
			if !s.Supervisor && f.Rounds == 0 {
				return s, fmt.Errorf("scenario %s: fault %d kills a shard with no supervisor and no restart window", s.Name, i)
			}
			s.Durable = true
		case FaultQueueSqueeze:
			if f.Cap <= 0 {
				return s, fmt.Errorf("scenario %s: fault %d squeezes to non-positive cap %d", s.Name, i, f.Cap)
			}
		case FaultSlowFsync:
			if f.Delay <= 0 {
				return s, fmt.Errorf("scenario %s: fault %d injects non-positive fsync delay", s.Name, i)
			}
			s.Durable = true
		default:
			return s, fmt.Errorf("scenario %s: fault %d has unknown kind %q", s.Name, i, f.Kind)
		}
	}
	for i := range s.Objectives {
		if err := s.Objectives[i].Validate(); err != nil {
			return s, fmt.Errorf("scenario %s: objective %d: %w", s.Name, i, err)
		}
	}
	for i := range s.SLOs.Windows {
		w := &s.SLOs.Windows[i]
		switch w.Kind {
		case WindowQuantile:
			if w.Series == "" {
				return s, fmt.Errorf("scenario %s: window %d: quantile assertion needs a series", s.Name, i)
			}
			if w.MaxMs <= 0 {
				return s, fmt.Errorf("scenario %s: window %d: quantile assertion needs max_ms > 0", s.Name, i)
			}
			if w.Q == 0 {
				w.Q = 0.99
			}
			if w.Q < 0 || w.Q > 1 {
				return s, fmt.Errorf("scenario %s: window %d: quantile %g outside (0, 1]", s.Name, i, w.Q)
			}
			if w.Window == 0 {
				w.Window = 5
			}
		case WindowAlert:
			obj, rule, ok := splitAlertRef(w.Alert)
			if !ok {
				return s, fmt.Errorf("scenario %s: window %d: alert reference %q is not objective/rule", s.Name, i, w.Alert)
			}
			found := false
			for _, o := range s.Objectives {
				if o.Name != obj {
					continue
				}
				for _, r := range o.Rules {
					if r.Name == rule {
						found = true
					}
				}
			}
			if !found {
				return s, fmt.Errorf("scenario %s: window %d: alert %q names no declared objective rule", s.Name, i, w.Alert)
			}
			if n := len(w.FiresBetween); n != 0 && n != 2 {
				return s, fmt.Errorf("scenario %s: window %d: fires_between wants [lo, hi], got %d entries", s.Name, i, n)
			}
			if len(w.FiresBetween) == 2 && w.FiresBetween[0] > w.FiresBetween[1] {
				return s, fmt.Errorf("scenario %s: window %d: fires_between [%d, %d] is inverted", s.Name, i, w.FiresBetween[0], w.FiresBetween[1])
			}
		default:
			return s, fmt.Errorf("scenario %s: window %d has unknown kind %q", s.Name, i, w.Kind)
		}
	}
	return s, nil
}

// splitAlertRef parses an "objective/rule" alert reference.
func splitAlertRef(ref string) (objective, rule string, ok bool) {
	for i := 0; i < len(ref); i++ {
		if ref[i] == '/' {
			return ref[:i], ref[i+1:], i > 0 && i < len(ref)-1
		}
	}
	return "", "", false
}

// Parse decodes and validates one spec from its JSON form. Unknown
// fields are errors: a typo in a fault kind or SLO name must not
// silently weaken a scenario.
func Parse(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s.WithDefaults()
}
