package scenario

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"waterwise/internal/cluster"
	"waterwise/internal/core"
	"waterwise/internal/energy"
	"waterwise/internal/fleet"
	"waterwise/internal/region"
	"waterwise/internal/server"
	"waterwise/internal/tsdb"
)

// TestBundledSpecsParse pins the bundled catalogue: every embedded spec
// must validate, and the canonical four fault exercises must be present.
func TestBundledSpecsParse(t *testing.T) {
	specs, err := Bundled()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"feed-outage": false, "feed-429-storm": false,
		"shard-kill": false, "flash-crowd": false, "disk-degraded": false,
	}
	for _, s := range specs {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("bundled catalogue is missing scenario %q", name)
		}
	}
	if _, err := Lookup("shard-kill"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup of an unknown scenario succeeded")
	}
}

// TestSpecValidation pins the guard rails: unknown fields, unknown fault
// kinds, and an unsupervised kill with no restart window are all errors.
func TestSpecValidation(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","slso":{}}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[{"kind":"meteor","at_round":2}]}`)); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","faults":[{"kind":"kill_shard","at_round":2,"shard":0}]}`)); err == nil {
		t.Error("unsupervised kill with no restart window accepted")
	}
	s, err := Parse([]byte(`{"name":"x","faults":[{"kind":"slow_fsync","at_round":2,"rounds":2,"delay":"1ms"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Durable {
		t.Error("slow_fsync did not imply a durable run")
	}
	if s.Pacing == 0 {
		t.Error("a faulted spec defaulted to free-run pacing")
	}
}

// TestWindowAssertionValidation pins the windowed-SLO grammar's guard
// rails: bad kinds, dangling alert references, and malformed ranges are
// all spec errors, and quantile defaults fill in.
func TestWindowAssertionValidation(t *testing.T) {
	bad := []string{
		`{"name":"x","slos":{"windows":[{"kind":"percentile"}]}}`,
		`{"name":"x","slos":{"windows":[{"kind":"quantile","max_ms":10}]}}`,
		`{"name":"x","slos":{"windows":[{"kind":"quantile","series":"s"}]}}`,
		`{"name":"x","slos":{"windows":[{"kind":"quantile","series":"s","max_ms":10,"q":1.5}]}}`,
		`{"name":"x","slos":{"windows":[{"kind":"alert","alert":"availability-fast"}]}}`,
		`{"name":"x","slos":{"windows":[{"kind":"alert","alert":"availability/fast"}]}}`,
		`{"name":"x","objectives":[{"name":"availability","target":0.99,"bad":"b","total":"t"}],
		  "slos":{"windows":[{"kind":"alert","alert":"availability/fast","fires_between":[9,3]}]}}`,
		`{"name":"x","objectives":[{"name":"availability","target":0.99,"bad":"b","total":"t"}],
		  "slos":{"windows":[{"kind":"alert","alert":"availability/nope"}]}}`,
		`{"name":"x","objectives":[{"name":"bad-objective","target":2,"bad":"b","total":"t"}]}`,
	}
	for _, spec := range bad {
		if _, err := Parse([]byte(spec)); err == nil {
			t.Errorf("invalid spec accepted: %s", spec)
		}
	}
	s, err := Parse([]byte(`{"name":"x",
		"objectives":[{"name":"availability","target":0.99,"bad":"b","total":"t"}],
		"slos":{"windows":[
			{"kind":"quantile","series":"s","max_ms":10},
			{"kind":"alert","alert":"availability/fast","fires_between":[3,9],"clears_by":12}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	w := s.SLOs.Windows[0]
	if w.Q != 0.99 || w.Window != 5 {
		t.Errorf("quantile defaults not filled: %+v", w)
	}
	// The alert reference resolves against the objective's defaulted rules.
	if len(s.Objectives[0].Rules) == 0 {
		t.Error("objective rules not defaulted")
	}
}

// equivSpec is the no-fault scenario the equivalence test runs: every
// injection hook present and armed at zero — chaos wrapper, supervisor,
// fsync-delay hook, pacing, and the flight recorder with SLO objectives
// scraping every round — but nothing ever fired.
var equivSpec = Spec{
	Name: "equivalence-probe", Seed: 5, Shards: 2, Hours: 4,
	Round: Duration(15 * time.Minute), JobsPerDay: 1500,
	Pacing: Duration(300 * time.Microsecond), Supervisor: true,
	Objectives: []tsdb.Objective{{Name: "availability", Target: 0.999,
		Bad: "waterwise_jobs_rejected_total", Good: "waterwise_jobs_accepted_total"}},
}

// TestScenarioNoFaultEquivalence is the harness's own correctness bar: a
// scenario with an empty fault schedule — but with every injection hook
// installed (chaos-wrapped provider, supervisor watchdog, fsync-delay
// hook at zero, pacing wrapper) — must be decision-for-decision
// identical to a plain fleet replay of the same trace with none of those
// layers present. Injection at zero is exactly free, or the harness's
// fault measurements mean nothing.
func TestScenarioNoFaultEquivalence(t *testing.T) {
	_, got, err := runFull(equivSpec, RunOptions{Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("scenario run produced no decisions")
	}

	// The plain replay: same environment parameters, same trace, no
	// chaos wrapper, no supervisor, no hooks, no pacing.
	spec, err := equivSpec.WithDefaults()
	if err != nil {
		t.Fatal(err)
	}
	env, err := region.NewEnvironment(region.Defaults(), energy.Table, Epoch, spec.Hours, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := fleet.New(fleet.Config{
		Env: env, Shards: spec.Shards, Tolerance: 0.5, Round: spec.Round.Std(),
		NewScheduler: func(int, []region.ID) (cluster.Scheduler, error) {
			return core.New(core.DefaultConfig())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		id := j.ID
		if _, err := fl.Submit(server.JobSpec{
			ID: &id, Benchmark: j.Benchmark, Home: j.Home, Submit: j.Submit,
			DurationSec: j.Duration.Seconds(), EnergyKWh: float64(j.Energy),
			EstDurationSec: j.EstDuration.Seconds(), EstEnergyKWh: float64(j.EstEnergy),
		}); err != nil {
			t.Fatal(err)
		}
	}
	fl.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := fl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	fl.Stop()
	want := fl.Decisions(0, 0)

	if len(got) != len(want) {
		t.Fatalf("scenario run emitted %d decisions, plain replay %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Seq != w.Seq || g.JobID != w.JobID || g.Region != w.Region ||
			!g.Round.Equal(w.Round) || !g.Start.Equal(w.Start) || !g.Finish.Equal(w.Finish) ||
			g.CarbonG != w.CarbonG || g.WaterL != w.WaterL ||
			g.Shard != w.Shard || g.ShardSeq != w.ShardSeq {
			t.Fatalf("decision %d diverged:\nscenario: %+v\nplain:    %+v", i, g, w)
		}
	}
}

// TestScenarioShardKillFailover runs the bundled shard-kill scenario:
// the supervisor — not the harness — must bring the killed shard back,
// and every SLO (dense seqs, no lost decisions, >= 1 restart) must hold.
func TestScenarioShardKillFailover(t *testing.T) {
	spec, err := Lookup("shard-kill")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, RunOptions{DataDir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("shard-kill scenario failed its SLOs: %+v", rep.Checks)
	}
	if rep.Restarts < 1 {
		t.Fatalf("supervisor performed %d restarts, want >= 1", rep.Restarts)
	}
	if len(rep.Faults) != 1 {
		t.Fatalf("fault log %v, want the one kill", rep.Faults)
	}
}

// TestScenarioLiveFeedOutage runs the bundled feed-outage scenario: a
// live provider fetching over the chaos transport loses its upstream
// mid-run. Staleness must rise, the forecast fallback must serve, and
// health must clear after recovery — the full degradation ladder driven
// by a scenario fault schedule rather than a bespoke test server.
func TestScenarioLiveFeedOutage(t *testing.T) {
	spec, err := Lookup("feed-outage")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, RunOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("feed-outage scenario failed its SLOs: %+v", rep.Checks)
	}
	if rep.MaxFeedStalenessSeconds <= 0 {
		t.Error("outage never registered as staleness")
	}
	if rep.ForecastServed < 1 {
		t.Error("outage never pushed the feed to its forecast fallback")
	}
}

// TestBundledScenariosPass sweeps the rest of the bundled catalogue —
// the 429 storm, the flash crowd, the degraded disk — asserting every
// spec passes its own SLOs and emits a comparable report.
func TestBundledScenariosPass(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_SCENARIOS.json")
	for _, name := range []string{"feed-429-storm", "flash-crowd", "disk-degraded"} {
		t.Run(name, func(t *testing.T) {
			spec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(spec, RunOptions{DataDir: t.TempDir(), Logf: t.Logf})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Fatalf("scenario %s failed its SLOs: %+v", name, rep.Checks)
			}
			if err := WriteReports(path, *rep); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWriteReports pins the report-file merge semantics: same-name
// replaces, new names append, output sorted by scenario.
func TestWriteReports(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_SCENARIOS.json")
	if err := WriteReports(path,
		Report{Scenario: "zeta", Pass: true},
		Report{Scenario: "alpha", Pass: false}); err != nil {
		t.Fatal(err)
	}
	if err := WriteReports(path, Report{Scenario: "alpha", Pass: true}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var reps []Report
	if err := json.Unmarshal(b, &reps); err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Scenario != "alpha" || reps[1].Scenario != "zeta" {
		t.Fatalf("merged reports: %+v", reps)
	}
	if !reps[0].Pass {
		t.Fatal("same-name report was not replaced")
	}
}
