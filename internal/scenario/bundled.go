package scenario

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed specs/*.json
var bundledFS embed.FS

// Bundled returns the specs shipped with the harness (validated, sorted
// by name): the fault catalogue's canonical exercises — feed-outage,
// feed-429-storm, shard-kill, flash-crowd, disk-degraded.
func Bundled() ([]Spec, error) {
	entries, err := bundledFS.ReadDir("specs")
	if err != nil {
		return nil, err
	}
	specs := make([]Spec, 0, len(entries))
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		b, err := bundledFS.ReadFile("specs/" + e.Name())
		if err != nil {
			return nil, err
		}
		s, err := Parse(b)
		if err != nil {
			return nil, fmt.Errorf("scenario: bundled spec %s: %w", e.Name(), err)
		}
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

// Lookup finds one bundled spec by name.
func Lookup(name string) (Spec, error) {
	specs, err := Bundled()
	if err != nil {
		return Spec{}, err
	}
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return Spec{}, fmt.Errorf("scenario: no bundled scenario %q (have %s)", name, strings.Join(names, ", "))
}
