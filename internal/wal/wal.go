// Package wal is the dependency-free durability layer under the serving
// stack: a segmented, CRC-checked, fsync-batched write-ahead log plus
// atomically-written snapshots, both plain files in one directory.
//
// The log is a sequence of records numbered from 1. Each record is framed
// as a 4-byte little-endian payload length, a 4-byte CRC32 (IEEE) of the
// payload, and the payload bytes; records append to the active segment
// file and segments rotate at a size threshold. Appends are buffered in
// user space; Sync flushes the buffer and fsyncs the segment — the
// group-commit point callers batch (the scheduling server syncs once per
// round). A snapshot covers a record index: recovery loads the newest
// valid snapshot and replays only the records after its covered index,
// and segments whose records are all covered are deleted (retention).
//
// Torn tails are expected, corruption is not: a partial or CRC-failing
// record at the very end of the last segment — the footprint of a crash
// mid-write — is truncated away on Open and appends resume cleanly after
// it, while an invalid record anywhere earlier is reported as an error
// (ErrCorrupt) rather than silently skipped.
//
// A Log is not safe for concurrent use; the owner serializes access (the
// scheduling server holds its own mutex across every call).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrCorrupt reports an invalid record before the end of the log — real
// corruption, as opposed to the torn final record a crash leaves (which
// Open truncates and recovers from silently).
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

const (
	headerBytes    = 8 // uint32 payload length + uint32 CRC32
	segSuffix      = ".wal"
	snapPrefix     = "snap-"
	snapSuffix     = ".snap"
	defaultSegment = 4 << 20
	defaultMaxRec  = 64 << 20
	syncSampleCap  = 512
)

// Options parameterizes a Log. Zero values take the defaults.
type Options struct {
	// Dir is the log directory (created if absent). Required.
	Dir string
	// SegmentBytes is the rotation threshold for segment files
	// (default 4 MiB). A single record larger than the threshold still
	// lands in one segment; rotation happens between records.
	SegmentBytes int64
	// MaxRecordBytes rejects absurd appends and, symmetrically, treats a
	// length header beyond it as a torn/corrupt record instead of
	// allocating garbage (default 64 MiB).
	MaxRecordBytes int
	// KeepSnapshots is how many newest snapshot files retention preserves
	// (default 2: the latest plus one fallback).
	KeepSnapshots int
	// SyncDelay, when non-nil, is consulted on every effective Sync (one
	// that has new records to commit) and the returned duration is slept
	// before the fsync — the slow-disk fault-injection hook the scenario
	// harness uses to emulate a degraded device. The stall is part of the
	// measured fsync duration, so it surfaces in Stats.FsyncP50/P99
	// exactly like a real slow disk. Nil (the default) adds no branch
	// beyond one pointer check: the hook is exactly free when unused.
	SyncDelay func() time.Duration
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("wal: empty directory")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegment
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = defaultMaxRec
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o, nil
}

// Stats is a point-in-time accounting of the log, for status endpoints
// and metrics.
type Stats struct {
	// Segments and Bytes size the on-disk log (snapshot files excluded).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// Appended and Synced count records: Synced trails Appended by the
	// records buffered since the last Sync (lost if the process dies).
	Appended uint64 `json:"appended"`
	Synced   uint64 `json:"synced"`
	// Fsyncs counts Sync calls that reached the disk; LastSync is the
	// wall instant of the newest (zero before the first).
	Fsyncs   uint64    `json:"fsyncs"`
	LastSync time.Time `json:"last_sync,omitzero"`
	// FsyncP50 and FsyncP99 are percentiles of recent fsync stalls (over
	// a bounded window of the latest syncs).
	FsyncP50 time.Duration `json:"fsync_p50_ns"`
	FsyncP99 time.Duration `json:"fsync_p99_ns"`
	// Snapshots counts snapshots written through this Log handle;
	// SnapshotCovered is the record index the newest one covers.
	Snapshots       uint64 `json:"snapshots"`
	SnapshotCovered uint64 `json:"snapshot_covered"`
	// TruncatedBytes is the torn tail Open cut off, if any.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// Log is an append-only segmented record log rooted at one directory.
// Construct with Open; it is ready to Append even when the directory
// already holds records (recovery reads happen via LatestSnapshot and
// Replay, appends continue after the existing tail).
type Log struct {
	opt Options

	f        *os.File      // active segment
	w        *writeBuffer  // user-space append buffer (group commit)
	segStart uint64        // record index of the active segment's first record
	segBytes int64         // bytes in the active segment (including buffered)
	segments []segmentInfo // closed + active segments, ascending by start

	next      uint64 // index the next Append receives
	synced    uint64 // records durably on disk
	fsyncs    uint64
	lastSync  time.Time
	syncDur   []time.Duration
	syncPos   int
	snapshots uint64
	snapCover uint64
	truncated int64
	closed    bool
}

// segmentInfo locates one segment file: the index of its first record and
// its size. The active segment is the last entry.
type segmentInfo struct {
	start uint64
	bytes int64
}

// writeBuffer is a minimal bufio.Writer stand-in whose unflushed contents
// can be discarded — the semantics Crash needs (bufio.Writer.Reset would
// do, but an explicit type keeps the loss model visible).
type writeBuffer struct {
	f   *os.File
	buf []byte
}

// Write buffers p, spilling to the file once 64 KiB accumulates.
func (b *writeBuffer) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	if len(b.buf) >= 1<<16 {
		return len(p), b.Flush()
	}
	return len(p), nil
}

// Flush pushes the buffered bytes into the OS (not yet fsynced).
func (b *writeBuffer) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

func segName(start uint64) string  { return fmt.Sprintf("%016x%s", start, segSuffix) }
func snapName(cover uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, cover, snapSuffix) }

// Open creates or reopens the log at opt.Dir: it scans every segment,
// validates record framing, truncates a torn final record, and leaves the
// log positioned to append after the last intact record. Mid-log
// corruption returns ErrCorrupt.
func Open(opt Options) (*Log, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opt.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opt: opt, next: 1, syncDur: make([]time.Duration, 0, syncSampleCap)}

	starts, err := listSegments(opt.Dir)
	if err != nil {
		return nil, err
	}
	if len(starts) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Every segment but the last must be fully intact; the last may carry
	// a torn tail, which is truncated away.
	for i, start := range starts {
		path := filepath.Join(opt.Dir, segName(start))
		last := i == len(starts)-1
		count, goodBytes, err := scanSegment(path, opt.MaxRecordBytes, last)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, segName(start), err)
		}
		if want := start; i > 0 && want != l.next {
			return nil, fmt.Errorf("%w: segment %s starts at record %d, want %d", ErrCorrupt, segName(start), want, l.next)
		}
		if i == 0 {
			l.next = start
		}
		l.next += uint64(count)
		if last {
			if fi, err := os.Stat(path); err == nil && fi.Size() > goodBytes {
				l.truncated = fi.Size() - goodBytes
				if err := os.Truncate(path, goodBytes); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", segName(start), err)
				}
			}
		}
		l.segments = append(l.segments, segmentInfo{start: start, bytes: goodBytes})
	}
	l.synced = l.next - 1
	// Reopen the last segment for appending.
	lastSeg := l.segments[len(l.segments)-1]
	f, err := os.OpenFile(filepath.Join(opt.Dir, segName(lastSeg.start)), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = &writeBuffer{f: f}
	l.segStart = lastSeg.start
	l.segBytes = lastSeg.bytes
	if covers, ok, err := latestSnapshotIndex(opt.Dir); err == nil && ok {
		l.snapCover = covers
	}
	return l, nil
}

// listSegments returns the start indices of every segment file, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var starts []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, segSuffix) || strings.HasPrefix(name, snapPrefix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue // not ours
		}
		starts = append(starts, n)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts, nil
}

// scanSegment walks one segment's records, returning how many are intact
// and the byte offset past the last intact one. In tolerant mode (the
// log's final segment) an invalid suffix is reported as the truncation
// point; otherwise it is an error.
func scanSegment(path string, maxRec int, tolerant bool) (count int, goodBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, err
	}
	off := int64(0)
	for int64(len(data))-off >= headerBytes {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > int64(maxRec) || off+headerBytes+n > int64(len(data)) {
			break // runs past the end: torn length or torn payload
		}
		payload := data[off+headerBytes : off+headerBytes+n]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		off += headerBytes + n
		count++
	}
	if off != int64(len(data)) && !tolerant {
		return count, off, fmt.Errorf("invalid record at offset %d", off)
	}
	return count, off, nil
}

func (l *Log) openSegment(start uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opt.Dir, segName(start)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = &writeBuffer{f: f}
	l.segStart = start
	l.segBytes = 0
	l.segments = append(l.segments, segmentInfo{start: start})
	return nil
}

// Append buffers one record and returns its index (1-based). The record
// is not durable until the next Sync.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, errors.New("wal: log closed")
	}
	if len(payload) > l.opt.MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds cap %d", len(payload), l.opt.MaxRecordBytes)
	}
	if l.segBytes >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	idx := l.next
	l.next++
	l.segBytes += headerBytes + int64(len(payload))
	l.segments[len(l.segments)-1].bytes = l.segBytes
	return idx, nil
}

// rotate seals the active segment (flush + fsync) and opens the next one.
func (l *Log) rotate() error {
	if err := l.syncActive(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.openSegment(l.next)
}

// Sync is the group-commit point: it flushes buffered records into the
// OS and fsyncs the active segment, making every record appended so far
// durable. The fsync stall is sampled for the percentile stats.
func (l *Log) Sync() error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.synced == l.next-1 {
		return nil // nothing new
	}
	t0 := time.Now()
	if l.opt.SyncDelay != nil {
		if d := l.opt.SyncDelay(); d > 0 {
			time.Sleep(d)
		}
	}
	if err := l.syncActive(); err != nil {
		return err
	}
	d := time.Since(t0)
	l.fsyncs++
	l.lastSync = time.Now()
	l.synced = l.next - 1
	if len(l.syncDur) < syncSampleCap {
		l.syncDur = append(l.syncDur, d)
	} else {
		l.syncDur[l.syncPos] = d
	}
	l.syncPos = (l.syncPos + 1) % syncSampleCap
	return nil
}

func (l *Log) syncActive() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Appended reports how many records the log holds (buffered included).
func (l *Log) Appended() uint64 { return l.next - 1 }

// FirstIndex is the record index of the oldest record still on disk —
// retention deletes snapshot-covered segments, so it exceeds 1 once a
// snapshot has allowed pruning. (An empty log reports the index its
// first record will get.)
func (l *Log) FirstIndex() uint64 { return l.segments[0].start }

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	err := l.Sync()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash simulates power loss for tests and fault injection: every record
// buffered since the last Sync (or flush) is discarded and the file is
// closed without syncing, so a reopened log sees exactly what a killed
// process would have left behind — possibly including a torn record where
// an internal flush stopped partway.
func (l *Log) Crash() {
	if l.closed {
		return
	}
	l.closed = true
	l.w.buf = nil // the loss: unflushed records never reach the OS
	_ = l.f.Close()
}

// Stats returns a point-in-time accounting of the log.
func (l *Log) Stats() Stats {
	st := Stats{
		Segments:        len(l.segments),
		Appended:        l.next - 1,
		Synced:          l.synced,
		Fsyncs:          l.fsyncs,
		LastSync:        l.lastSync,
		Snapshots:       l.snapshots,
		SnapshotCovered: l.snapCover,
		TruncatedBytes:  l.truncated,
	}
	for _, s := range l.segments {
		st.Bytes += s.bytes
	}
	if n := len(l.syncDur); n > 0 {
		sorted := append([]time.Duration(nil), l.syncDur...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.FsyncP50 = sorted[n/2]
		p99 := (n*99 + 99) / 100
		if p99 > n {
			p99 = n
		}
		st.FsyncP99 = sorted[p99-1]
	}
	return st
}

// Replay streams every record with index > after, in order, to fn. It
// reads the files as Open left them, so an invalid record mid-stream is
// ErrCorrupt (Open already truncated any legitimate torn tail). Replay
// must not run concurrently with Append on the same handle; recovery
// replays before serving starts.
func (l *Log) Replay(after uint64, fn func(idx uint64, payload []byte) error) error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	for _, seg := range l.segments {
		segEnd := l.next // exclusive record bound of the last segment
		if i := segIndex(l.segments, seg.start); i+1 < len(l.segments) {
			segEnd = l.segments[i+1].start
		}
		if segEnd <= after+1 {
			continue // fully covered by the snapshot
		}
		if err := replaySegment(filepath.Join(l.opt.Dir, segName(seg.start)), seg.start, after, l.opt.MaxRecordBytes, fn); err != nil {
			return err
		}
	}
	return nil
}

func segIndex(segs []segmentInfo, start uint64) int {
	for i, s := range segs {
		if s.start == start {
			return i
		}
	}
	return -1
}

func replaySegment(path string, start, after uint64, maxRec int, fn func(uint64, []byte) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off, idx := int64(0), start
	for int64(len(data))-off >= headerBytes {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > int64(maxRec) || off+headerBytes+n > int64(len(data)) {
			return fmt.Errorf("%w: record %d runs past segment end", ErrCorrupt, idx)
		}
		payload := data[off+headerBytes : off+headerBytes+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return fmt.Errorf("%w: record %d CRC mismatch", ErrCorrupt, idx)
		}
		if idx > after {
			if err := fn(idx, payload); err != nil {
				return err
			}
		}
		off += headerBytes + n
		idx++
	}
	if off != int64(len(data)) {
		return fmt.Errorf("%w: trailing %d bytes", ErrCorrupt, int64(len(data))-off)
	}
	return nil
}

// WriteSnapshot durably records a snapshot covering every record with
// index <= covered: the payload is CRC-framed, written to a temp file,
// fsynced, and renamed into place, so a crash mid-write leaves either the
// old snapshot set or the new one, never a torn file that recovery could
// half-trust. Older snapshots beyond the retention count and segments
// whose records are all covered are deleted.
func (l *Log) WriteSnapshot(covered uint64, payload []byte) error {
	if l.closed {
		return errors.New("wal: log closed")
	}
	if covered > l.next-1 {
		return fmt.Errorf("wal: snapshot covers record %d, log has %d", covered, l.next-1)
	}
	// The snapshot asserts records <= covered are folded in, so they must
	// not be lost to a crash that the snapshot itself survives.
	if err := l.Sync(); err != nil {
		return err
	}
	framed := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(framed[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(framed[4:], crc32.ChecksumIEEE(payload))
	copy(framed[headerBytes:], payload)
	tmp := filepath.Join(l.opt.Dir, snapName(covered)+".tmp")
	if err := writeFileSync(tmp, framed); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.opt.Dir, snapName(covered))); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.opt.Dir); err != nil {
		return err
	}
	l.snapshots++
	l.snapCover = covered
	l.retainLocked(covered)
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// retainLocked applies retention after a snapshot at covered: old
// snapshot files beyond KeepSnapshots go, and so does every non-active
// segment whose records all lie at or below covered.
func (l *Log) retainLocked(covered uint64) {
	if snaps, err := listSnapshots(l.opt.Dir); err == nil && len(snaps) > l.opt.KeepSnapshots {
		for _, c := range snaps[:len(snaps)-l.opt.KeepSnapshots] {
			_ = os.Remove(filepath.Join(l.opt.Dir, snapName(c)))
		}
	}
	kept := l.segments[:0]
	for i, seg := range l.segments {
		end := l.next
		if i+1 < len(l.segments) {
			end = l.segments[i+1].start
		}
		if i+1 < len(l.segments) && end <= covered+1 {
			_ = os.Remove(filepath.Join(l.opt.Dir, segName(seg.start)))
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
}

// listSnapshots returns the covered indices of the snapshot files,
// ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var covers []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64)
		if err != nil {
			continue
		}
		covers = append(covers, n)
	}
	sort.Slice(covers, func(i, j int) bool { return covers[i] < covers[j] })
	return covers, nil
}

func latestSnapshotIndex(dir string) (uint64, bool, error) {
	covers, err := listSnapshots(dir)
	if err != nil || len(covers) == 0 {
		return 0, false, err
	}
	return covers[len(covers)-1], true, nil
}

// LatestSnapshot loads the newest valid snapshot payload and the record
// index it covers. Snapshots that fail validation (a torn write that
// somehow survived the atomic rename protocol, or on-disk rot) are
// skipped in favor of the next-newest; no snapshot at all returns
// (nil, 0, nil) — recovery then replays the whole log.
func (l *Log) LatestSnapshot() ([]byte, uint64, error) {
	covers, err := listSnapshots(l.opt.Dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(covers) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(l.opt.Dir, snapName(covers[i])))
		if err != nil {
			continue
		}
		if len(data) < headerBytes {
			continue
		}
		n := int64(binary.LittleEndian.Uint32(data[0:]))
		sum := binary.LittleEndian.Uint32(data[4:])
		if headerBytes+n != int64(len(data)) {
			continue
		}
		payload := data[headerBytes:]
		if crc32.ChecksumIEEE(payload) != sum {
			continue
		}
		return payload, covers[i], nil
	}
	return nil, 0, nil
}
