package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, opt Options) *Log {
	t.Helper()
	l, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendT(t *testing.T, l *Log, payload []byte) uint64 {
	t.Helper()
	idx, err := l.Append(payload)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return idx
}

func record(i int) []byte { return []byte(fmt.Sprintf("record-%04d-payload", i)) }

func replayAll(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	got := map[uint64]string{}
	err := l.Replay(after, func(idx uint64, payload []byte) error {
		got[idx] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendSyncReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	for i := 1; i <= 100; i++ {
		if idx := appendT(t, l, record(i)); idx != uint64(i) {
			t.Fatalf("record %d got index %d", i, idx)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := l.Stats()
	if st.Appended != 100 || st.Synced != 100 {
		t.Fatalf("stats after sync: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	if l2.Appended() != 100 {
		t.Fatalf("reopened Appended = %d, want 100", l2.Appended())
	}
	got := replayAll(t, l2, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	for i := 1; i <= 100; i++ {
		if got[uint64(i)] != string(record(i)) {
			t.Fatalf("record %d = %q", i, got[uint64(i)])
		}
	}
	// Appends continue after the existing tail.
	if idx := appendT(t, l2, record(101)); idx != 101 {
		t.Fatalf("post-reopen append got index %d, want 101", idx)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record (28 bytes framed) rotates after ~2.
	l := openT(t, Options{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 20; i++ {
		appendT(t, l, record(i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(starts) < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(starts))
	}
	l2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	got := replayAll(t, l2, 7)
	if len(got) != 13 {
		t.Fatalf("replay after=7 returned %d records, want 13", len(got))
	}
	for i := 8; i <= 20; i++ {
		if got[uint64(i)] != string(record(i)) {
			t.Fatalf("record %d = %q", i, got[uint64(i)])
		}
	}
}

func TestCrashDropsUnsynced(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	for i := 1; i <= 10; i++ {
		appendT(t, l, record(i))
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	for i := 11; i <= 15; i++ {
		appendT(t, l, record(i))
	}
	l.Crash() // records 11..15 were never flushed

	l2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	if l2.Appended() != 10 {
		t.Fatalf("after crash Appended = %d, want 10 (unsynced tail lost)", l2.Appended())
	}
	got := replayAll(t, l2, 0)
	if len(got) != 10 || got[10] != string(record(10)) {
		t.Fatalf("unexpected replay after crash: %d records", len(got))
	}
}

// TestTornTailByteByByte is the torn-write satellite: for every possible
// truncation point inside the final record, and for every corrupted byte
// position in it, recovery must truncate the damage and reopen cleanly
// with all prior records intact.
func TestTornTailByteByByte(t *testing.T) {
	build := func(t *testing.T) (string, string, int64) {
		dir := t.TempDir()
		l := openT(t, Options{Dir: dir})
		for i := 1; i <= 5; i++ {
			appendT(t, l, record(i))
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		starts, _ := listSegments(dir)
		path := filepath.Join(dir, segName(starts[0]))
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		recBytes := int64(headerBytes + len(record(5)))
		return dir, path, fi.Size() - recBytes // offset where record 5 begins
	}

	check := func(t *testing.T, dir string) {
		l, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open after tail damage: %v", err)
		}
		defer l.Close()
		if l.Appended() != 4 {
			t.Fatalf("Appended = %d, want 4 (damaged final record dropped)", l.Appended())
		}
		got := replayAll(t, l, 0)
		for i := 1; i <= 4; i++ {
			if got[uint64(i)] != string(record(i)) {
				t.Fatalf("record %d corrupted by tail recovery: %q", i, got[uint64(i)])
			}
		}
		// The log must accept appends at the truncated position.
		if idx := appendT(t, l, []byte("resumed")); idx != 5 {
			t.Fatalf("resume append got index %d, want 5", idx)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync after resume: %v", err)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		dir, path, off := build(t)
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		for cut := off; cut < int64(len(full)); cut++ {
			if err := os.WriteFile(path, full[:cut], 0o666); err != nil {
				t.Fatalf("cut at %d: %v", cut, err)
			}
			check(t, dir)
			// restore for the next cut (check appended a record + synced)
			if err := os.WriteFile(path, full, 0o666); err != nil {
				t.Fatalf("restore: %v", err)
			}
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		dir, path, off := build(t)
		full, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		for pos := off; pos < int64(len(full)); pos++ {
			damaged := append([]byte(nil), full...)
			damaged[pos] ^= 0xff
			if err := os.WriteFile(path, damaged, 0o666); err != nil {
				t.Fatalf("flip at %d: %v", pos, err)
			}
			check(t, dir)
			if err := os.WriteFile(path, full, 0o666); err != nil {
				t.Fatalf("restore: %v", err)
			}
		}
	})
}

// TestMidLogCorruptionIsError: damage in a sealed (non-final) segment is
// real corruption and must refuse to open, not silently drop records.
func TestMidLogCorruptionIsError(t *testing.T) {
	dir2 := t.TempDir()
	l2 := openT(t, Options{Dir: dir2, SegmentBytes: 64})
	for i := 1; i <= 20; i++ {
		appendT(t, l2, record(i))
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts2, _ := listSegments(dir2)
	if len(starts2) < 2 {
		t.Fatalf("need multiple segments, got %d", len(starts2))
	}
	p0 := filepath.Join(dir2, segName(starts2[0]))
	d0, _ := os.ReadFile(p0)
	d0[headerBytes+1] ^= 0xff
	if err := os.WriteFile(p0, d0, 0o666); err != nil {
		t.Fatalf("corrupt sealed segment: %v", err)
	}
	if _, err := Open(Options{Dir: dir2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-log corruption: got %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundTripAndRetention(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir, SegmentBytes: 64, KeepSnapshots: 2})
	for i := 1; i <= 20; i++ {
		appendT(t, l, record(i))
	}
	if err := l.WriteSnapshot(8, []byte("state-at-8")); err != nil {
		t.Fatalf("WriteSnapshot(8): %v", err)
	}
	if err := l.WriteSnapshot(15, []byte("state-at-15")); err != nil {
		t.Fatalf("WriteSnapshot(15): %v", err)
	}
	if err := l.WriteSnapshot(20, []byte("state-at-20")); err != nil {
		t.Fatalf("WriteSnapshot(20): %v", err)
	}
	// Retention: keep 2 snapshots, drop fully-covered segments.
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatalf("listSnapshots: %v", err)
	}
	if len(snaps) != 2 || snaps[0] != 15 || snaps[1] != 20 {
		t.Fatalf("retained snapshots = %v, want [15 20]", snaps)
	}
	payload, covered, err := l.LatestSnapshot()
	if err != nil {
		t.Fatalf("LatestSnapshot: %v", err)
	}
	if covered != 20 || string(payload) != "state-at-20" {
		t.Fatalf("LatestSnapshot = %q @ %d", payload, covered)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	payload, covered, err = l2.LatestSnapshot()
	if err != nil || covered != 20 || string(payload) != "state-at-20" {
		t.Fatalf("reopened LatestSnapshot = %q @ %d (err %v)", payload, covered, err)
	}
	if got := replayAll(t, l2, covered); len(got) != 0 {
		t.Fatalf("replay after full snapshot returned %d records, want 0", len(got))
	}
	if l2.Appended() != 20 {
		t.Fatalf("Appended = %d, want 20", l2.Appended())
	}
}

// TestCorruptLatestSnapshotFallsBack: a rotted newest snapshot is skipped
// in favor of the previous one.
func TestCorruptLatestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir, KeepSnapshots: 2})
	for i := 1; i <= 10; i++ {
		appendT(t, l, record(i))
	}
	if err := l.WriteSnapshot(5, []byte("good-5")); err != nil {
		t.Fatalf("snapshot 5: %v", err)
	}
	if err := l.WriteSnapshot(10, []byte("good-10")); err != nil {
		t.Fatalf("snapshot 10: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p := filepath.Join(dir, snapName(10))
	data, _ := os.ReadFile(p)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o666); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	l2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	payload, covered, err := l2.LatestSnapshot()
	if err != nil {
		t.Fatalf("LatestSnapshot: %v", err)
	}
	if covered != 5 || string(payload) != "good-5" {
		t.Fatalf("fallback snapshot = %q @ %d, want good-5 @ 5", payload, covered)
	}
}

func TestSyncIdempotentAndStats(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	defer l.Close()
	appendT(t, l, record(1))
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st1 := l.Stats()
	if err := l.Sync(); err != nil { // nothing new: must not fsync again
		t.Fatalf("second Sync: %v", err)
	}
	if st2 := l.Stats(); st2.Fsyncs != st1.Fsyncs {
		t.Fatalf("no-op Sync bumped fsyncs: %d -> %d", st1.Fsyncs, st2.Fsyncs)
	}
	if st1.Fsyncs == 0 || st1.LastSync.IsZero() {
		t.Fatalf("missing fsync accounting: %+v", st1)
	}
	if st1.FsyncP50 <= 0 || st1.FsyncP99 < st1.FsyncP50 {
		t.Fatalf("bad fsync percentiles: %+v", st1)
	}
}

func TestRecordTooLarge(t *testing.T) {
	l := openT(t, Options{Dir: t.TempDir(), MaxRecordBytes: 16})
	defer l.Close()
	if _, err := l.Append(make([]byte, 17)); err == nil {
		t.Fatal("oversized append succeeded")
	}
}

// TestTornLengthHeader: a garbage length header at the tail (e.g. 0xffffffff)
// must be treated as torn, not attempted as a 4 GiB allocation.
func TestTornLengthHeader(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Options{Dir: dir})
	appendT(t, l, record(1))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	starts, _ := listSegments(dir)
	path := filepath.Join(dir, segName(starts[0]))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0xffffffff)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	f.Close()
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open with garbage tail header: %v", err)
	}
	defer l2.Close()
	if l2.Appended() != 1 {
		t.Fatalf("Appended = %d, want 1", l2.Appended())
	}
}
