package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a random LP with mixed constraint operators and a mix of
// finite and infinite upper bounds — the shapes the bounded-variable solver
// must agree on with the reference two-phase solver.
func randomLP(r *rand.Rand) *Problem {
	n := 2 + r.Intn(5)     // 2..6 vars
	mRows := 1 + r.Intn(5) // 1..5 rows
	p := New(n)
	c := make([]float64, n)
	for j := range c {
		c[j] = math.Round((r.Float64()*4-2)*8) / 8
	}
	sense := Minimize
	if r.Intn(2) == 1 {
		sense = Maximize
	}
	p.SetObjective(c, sense)
	for j := 0; j < n; j++ {
		lo := 0.0
		if r.Intn(3) == 0 {
			lo = math.Round(r.Float64()*8) / 4 // in [0,2]
		}
		hi := math.Inf(1)
		if r.Intn(2) == 0 {
			hi = lo + math.Round(r.Float64()*16)/4 // lo + [0,4]
		}
		if err := p.SetBounds(j, lo, hi); err != nil {
			panic(err)
		}
	}
	for i := 0; i < mRows; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				continue
			}
			coef := math.Round((r.Float64()*4-2)*4) / 4
			if coef == 0 {
				continue
			}
			terms = append(terms, Term{j, coef})
		}
		if len(terms) == 0 {
			terms = []Term{{r.Intn(n), 1}}
		}
		op := []Op{LE, GE, EQ}[r.Intn(3)]
		rhs := math.Round((r.Float64()*8-2)*4) / 4
		p.AddConstraint(terms, op, rhs)
	}
	return p
}

func checkFeasible(t *testing.T, p *Problem, x []float64, label string) {
	t.Helper()
	const tol = 1e-6
	for j := 0; j < p.NumVars(); j++ {
		lo, hi := p.Bounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			t.Errorf("%s: x[%d]=%g outside [%g,%g]", label, j, x[j], lo, hi)
		}
	}
	for i, row := range p.rows {
		s := 0.0
		for _, term := range row.Terms {
			s += term.Coef * x[term.Var]
		}
		switch row.Op {
		case LE:
			if s > row.RHS+tol {
				t.Errorf("%s: row %d: %g !<= %g", label, i, s, row.RHS)
			}
		case GE:
			if s < row.RHS-tol {
				t.Errorf("%s: row %d: %g !>= %g", label, i, s, row.RHS)
			}
		case EQ:
			if math.Abs(s-row.RHS) > tol {
				t.Errorf("%s: row %d: %g != %g", label, i, s, row.RHS)
			}
		}
	}
}

// TestDifferentialVsReference cross-checks the bounded-variable solver
// against the retained previous-generation solver on 250 random LPs:
// statuses must agree, objectives must match to 1e-6, and both solutions
// must be feasible.
func TestDifferentialVsReference(t *testing.T) {
	r := rand.New(rand.NewSource(20260728))
	for k := 0; k < 250; k++ {
		p := randomLP(r)
		got, err := p.Solve()
		if err != nil {
			t.Fatalf("case %d: Solve: %v", k, err)
		}
		want, err := SolveReference(p)
		if err != nil {
			t.Fatalf("case %d: SolveReference: %v", k, err)
		}
		if got.Status == IterLimit || want.Status == IterLimit {
			t.Errorf("case %d: iteration limit (new=%v ref=%v)", k, got.Status, want.Status)
			continue
		}
		if got.Status != want.Status {
			t.Errorf("case %d: status %v, reference %v", k, got.Status, want.Status)
			continue
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("case %d: objective %.9f, reference %.9f", k, got.Objective, want.Objective)
		}
		checkFeasible(t, p, got.X, fmt.Sprintf("case %d (new)", k))
		checkFeasible(t, p, want.X, fmt.Sprintf("case %d (ref)", k))
	}
}

// TestWarmStartAfterBoundChange solves random LPs, tightens random variable
// bounds, and cross-checks the dual-simplex warm start against a cold solve
// of the modified problem.
func TestWarmStartAfterBoundChange(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	warmUsed := 0
	for k := 0; k < 250; k++ {
		p := randomLP(r)
		basis := NewBasis()
		first, err := p.SolveWarm(basis)
		if err != nil {
			t.Fatalf("case %d: cold solve: %v", k, err)
		}
		if first.Status != Optimal {
			continue
		}
		// Tighten bounds the way branch-and-bound does: split on some
		// variable's relaxation value, sometimes fixing it outright.
		for tries := 0; tries < 3; tries++ {
			v := r.Intn(p.NumVars())
			lo, hi := p.Bounds(v)
			x := first.X[v]
			var nlo, nhi float64
			switch r.Intn(3) {
			case 0:
				nlo, nhi = lo, math.Floor(x)
			case 1:
				nlo, nhi = math.Floor(x)+1, hi
			default:
				f := math.Floor(x)
				nlo, nhi = f, f
			}
			if nlo < lo {
				nlo = lo
			}
			if nhi > hi {
				nhi = hi
			}
			if nlo > nhi {
				continue
			}
			p.SetBounds(v, nlo, nhi)
			break
		}
		warm, err := p.SolveWarm(basis)
		if err != nil {
			t.Fatalf("case %d: warm solve: %v", k, err)
		}
		cold, err := p.Solve()
		if err != nil {
			t.Fatalf("case %d: cold re-solve: %v", k, err)
		}
		if warm.WarmStarted {
			warmUsed++
		}
		if warm.Status != cold.Status {
			t.Errorf("case %d: warm status %v, cold %v", k, warm.Status, cold.Status)
			continue
		}
		if warm.Status == Optimal {
			if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Errorf("case %d: warm objective %.9f, cold %.9f", k, warm.Objective, cold.Objective)
			}
			checkFeasible(t, p, warm.X, fmt.Sprintf("case %d (warm)", k))
		}
	}
	if warmUsed == 0 {
		t.Error("no case exercised the warm-start path")
	}
	t.Logf("warm start used in %d cases", warmUsed)
}

// TestWarmStartChain replays a branch-and-bound-like chain of bound
// tightenings, warm starting each step from the previous basis, and checks
// every step against a cold solve — catching drift that single-step tests
// miss.
func TestWarmStartChain(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for k := 0; k < 60; k++ {
		p := randomLP(r)
		basis := NewBasis()
		sol, err := p.SolveWarm(basis)
		if err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		for step := 0; sol.Status == Optimal && step < 6; step++ {
			v := r.Intn(p.NumVars())
			lo, hi := p.Bounds(v)
			x := sol.X[v]
			if r.Intn(2) == 0 {
				hi = math.Floor(x)
			} else {
				lo = math.Floor(x) + 1
			}
			if lo > hi {
				break
			}
			p.SetBounds(v, lo, hi)
			sol, err = p.SolveWarm(basis)
			if err != nil {
				t.Fatalf("case %d step %d: warm: %v", k, step, err)
			}
			cold, err := p.Solve()
			if err != nil {
				t.Fatalf("case %d step %d: cold: %v", k, step, err)
			}
			if sol.Status != cold.Status {
				t.Errorf("case %d step %d: warm status %v, cold %v", k, step, sol.Status, cold.Status)
				break
			}
			if sol.Status == Optimal && math.Abs(sol.Objective-cold.Objective) > 1e-6 {
				t.Errorf("case %d step %d: warm obj %.9f, cold %.9f", k, step, sol.Objective, cold.Objective)
			}
		}
	}
}

// TestReducedCostsSignConvention verifies the documented minimization-space
// sign convention on a problem with a known optimum.
func TestReducedCostsSignConvention(t *testing.T) {
	// min x + 2y s.t. x + y >= 1: optimum x=1,y=0; y's reduced cost must be
	// nonnegative (it sits at its lower bound).
	p := New(2)
	p.SetObjective([]float64{1, 2}, Minimize)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 1)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	if sol.ReducedCosts == nil {
		t.Fatal("no reduced costs on optimal solve")
	}
	if rc := sol.ReducedCosts[1]; rc < -1e-9 {
		t.Errorf("reduced cost of nonbasic-at-lower variable = %g, want >= 0", rc)
	}
}
