package lp

import "math"

// SolveReference solves p with the previous generation of this package: a
// dense two-phase primal simplex that shifts lower bounds away and
// materializes every finite upper bound as an explicit constraint row. It is
// kept solely as a slow, independently derived oracle for differential tests
// of the bounded-variable solver (and for anyone bisecting a numerical
// discrepancy); production code should call Solve.
func SolveReference(p *Problem) (*Solution, error) {
	t := newRefTableau(p)
	sol := t.run()
	if p.sense == Maximize && (sol.Status == Optimal || sol.Status == IterLimit) {
		sol.Objective = -sol.Objective
	}
	return sol, nil
}

// refTableau is the dense simplex working state after conversion to standard
// form: min c'y s.t. Ay = b, y >= 0, b >= 0.
type refTableau struct {
	m, n    int         // rows, structural+slack columns (artificials follow)
	a       [][]float64 // m x width coefficient matrix
	b       []float64   // m
	cost    []float64   // phase-2 cost over width columns
	basis   []int       // basic column per row
	width   int         // total columns incl. artificials
	nArt    int
	artBase int // first artificial column
	eps     float64
	maxIter int

	nOrig int       // original structural variables
	shift []float64 // lower-bound shifts for original variables
}

func newRefTableau(p *Problem) *refTableau {
	// Shift lower bounds away: x = y + lo, y >= 0. Upper bounds become
	// rows y <= hi - lo.
	type row struct {
		coefs []float64 // dense over original vars
		op    Op
		rhs   float64
	}
	rows := make([]row, 0, len(p.rows)+p.nvars)
	for _, c := range p.rows {
		dense := make([]float64, p.nvars)
		rhs := c.RHS
		for _, t := range c.Terms {
			dense[t.Var] += t.Coef
			rhs -= t.Coef * p.lower[t.Var]
		}
		rows = append(rows, row{coefs: dense, op: c.Op, rhs: rhs})
	}
	for i := 0; i < p.nvars; i++ {
		if !math.IsInf(p.upper[i], 1) {
			dense := make([]float64, p.nvars)
			dense[i] = 1
			rows = append(rows, row{coefs: dense, op: LE, rhs: p.upper[i] - p.lower[i]})
		}
	}

	m := len(rows)
	// Count slacks (one per LE/GE row) and artificials.
	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	nOrig := p.nvars
	n := nOrig + nSlack
	width := n + m // reserve an artificial slot per row; unused ones stay zero
	t := &refTableau{
		m: m, n: n, width: width,
		a:       make([][]float64, m),
		b:       make([]float64, m),
		cost:    make([]float64, width),
		basis:   make([]int, m),
		artBase: n,
		eps:     p.epsTol,
		nOrig:   nOrig,
		shift:   append([]float64(nil), p.lower...),
	}
	for i := range t.a {
		t.a[i] = make([]float64, width)
	}

	objSign := 1.0
	if p.sense == Maximize {
		objSign = -1.0
	}
	for j := 0; j < nOrig; j++ {
		t.cost[j] = objSign * p.obj[j]
	}

	slack := nOrig
	for i, r := range rows {
		sign := 1.0
		if r.rhs < 0 {
			sign = -1.0
		}
		for j, v := range r.coefs {
			t.a[i][j] = sign * v
		}
		t.b[i] = sign * r.rhs
		switch r.op {
		case LE:
			t.a[i][slack] = sign * 1
			if sign > 0 {
				t.basis[i] = slack
			} else {
				t.basis[i] = -1 // needs artificial
			}
			slack++
		case GE:
			t.a[i][slack] = sign * -1
			if sign < 0 {
				t.basis[i] = slack
			} else {
				t.basis[i] = -1
			}
			slack++
		case EQ:
			t.basis[i] = -1
		}
	}
	// Install artificials where no natural basic column exists.
	for i := range t.basis {
		if t.basis[i] == -1 {
			col := t.artBase + t.nArt
			t.a[i][col] = 1
			t.basis[i] = col
			t.nArt++
		}
	}
	// Trim unused artificial columns from the pricing range.
	t.width = t.artBase + t.nArt

	// Iteration budget: generous polynomial in problem size.
	t.maxIter = 200 * (t.m + t.width + 10)
	if p.maxIt > 0 {
		t.maxIter = p.maxIt
	}
	return t
}

// run performs phase 1 (if artificials exist) and phase 2, returning the
// solution mapped back to original variable space.
func (t *refTableau) run() *Solution {
	iters := 0
	if t.nArt > 0 {
		phase1 := make([]float64, t.width)
		for j := t.artBase; j < t.artBase+t.nArt; j++ {
			phase1[j] = 1
		}
		st, it := t.simplex(phase1, t.width)
		iters += it
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: iters}
		}
		if st == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here means
			// numerical trouble. Treat as infeasible to stay safe.
			return &Solution{Status: Infeasible, Iters: iters}
		}
		if t.objectiveValue(phase1) > 1e-7 {
			return &Solution{Status: Infeasible, Iters: iters}
		}
		t.driveOutArtificials()
	}
	// Phase 2 prices only non-artificial columns so artificials can never
	// re-enter the basis and re-violate the original constraints.
	st, it := t.simplex(t.cost[:t.width], t.artBase)
	iters += it
	sol := &Solution{Status: st, Iters: iters}
	if st == Optimal || st == IterLimit {
		x := make([]float64, t.nOrig)
		for i, bi := range t.basis {
			if bi < t.nOrig {
				x[bi] = t.b[i]
			}
		}
		for j := range x {
			x[j] += t.shift[j]
		}
		sol.X = x
		obj := 0.0
		for j := 0; j < t.nOrig; j++ {
			obj += t.cost[j] * x[j]
		}
		sol.Objective = obj
	}
	return sol
}

// objectiveValue computes c'x_B for the current basis under cost vector c.
func (t *refTableau) objectiveValue(c []float64) float64 {
	v := 0.0
	for i, bi := range t.basis {
		v += c[bi] * t.b[i]
	}
	return v
}

// driveOutArtificials pivots basic artificial variables (at value zero after
// a successful phase 1) out of the basis, or marks their rows redundant.
func (t *refTableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		// Find a non-artificial column with a nonzero entry in this row.
		pivotCol := -1
		for j := 0; j < t.artBase; j++ {
			if math.Abs(t.a[i][j]) > t.eps {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
		// Otherwise the row is redundant (all zeros); the artificial stays
		// basic at value 0, harmless because its phase-2 cost is zero and
		// it is excluded from phase-2 pricing.
	}
	for j := t.artBase; j < t.width; j++ {
		t.cost[j] = 0 // basic-at-zero artificials contribute nothing
	}
}

// simplex optimizes cost vector c over the current tableau, pricing only
// columns j < limit (phase 2 excludes artificial columns this way). It
// returns the status and the number of pivots performed.
//
// A reduced-cost row is maintained incrementally so pricing is O(limit) per
// iteration instead of O(m*width).
func (t *refTableau) simplex(c []float64, limit int) (Status, int) {
	z := make([]float64, t.width)
	copy(z, c)
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.width; j++ {
			z[j] -= cb * ai[j]
		}
	}
	blandAfter := t.maxIter / 2
	for iter := 0; iter < t.maxIter; iter++ {
		// Pricing.
		enter := -1
		best := -t.eps
		useBland := iter >= blandAfter
		for j := 0; j < limit; j++ {
			if rc := z[j]; rc < -t.eps {
				if useBland {
					enter = j
					break
				}
				if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter == -1 {
			return Optimal, iter
		}
		// Ratio test with Bland-style smallest-basis-index tie breaking.
		leave := -1
		minRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > t.eps {
				r := t.b[i] / t.a[i][enter]
				if r < minRatio-t.eps || (math.Abs(r-minRatio) <= t.eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					minRatio = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, iter
		}
		zEnter := z[enter]
		t.pivot(leave, enter)
		// Update the reduced-cost row against the normalized pivot row.
		prow := t.a[leave]
		for j := 0; j < t.width; j++ {
			z[j] -= zEnter * prow[j]
		}
		z[enter] = 0 // exact
	}
	return IterLimit, t.maxIter
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (t *refTableau) pivot(row, col int) {
	pv := t.a[row][col]
	inv := 1 / pv
	arow := t.a[row]
	for j := 0; j < t.width; j++ {
		arow[j] *= inv
	}
	t.b[row] *= inv
	arow[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.width; j++ {
			ai[j] -= f * arow[j]
		}
		ai[col] = 0 // exact
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}
