package lp

import (
	"math"
	"math/rand"
	"testing"
)

// denseSolve solves A·x = b by Gaussian elimination with partial pivoting —
// the oracle for the sparse LU's triangular solves.
func denseSolve(t *testing.T, A [][]float64, b []float64) []float64 {
	t.Helper()
	m := len(A)
	aug := make([][]float64, m)
	for i := range aug {
		aug[i] = append(append([]float64(nil), A[i]...), b[i])
	}
	for k := 0; k < m; k++ {
		p := k
		for i := k + 1; i < m; i++ {
			if math.Abs(aug[i][k]) > math.Abs(aug[p][k]) {
				p = i
			}
		}
		if math.Abs(aug[p][k]) < 1e-12 {
			t.Fatal("oracle: singular matrix")
		}
		aug[k], aug[p] = aug[p], aug[k]
		for i := k + 1; i < m; i++ {
			f := aug[i][k] / aug[k][k]
			if f == 0 {
				continue
			}
			for j := k; j <= m; j++ {
				aug[i][j] -= f * aug[k][j]
			}
		}
	}
	x := make([]float64, m)
	for k := m - 1; k >= 0; k-- {
		s := aug[k][m]
		for j := k + 1; j < m; j++ {
			s -= aug[k][j] * x[j]
		}
		x[k] = s / aug[k][k]
	}
	return x
}

// randomSparseMatrix builds a random nonsingular m x m matrix: a strong
// diagonal plus ~density off-diagonal entries.
func randomSparseMatrix(r *rand.Rand, m int, density float64) [][]float64 {
	A := make([][]float64, m)
	for i := range A {
		A[i] = make([]float64, m)
		A[i][i] = 2 + r.Float64()
		for j := 0; j < m; j++ {
			if j != i && r.Float64() < density {
				A[i][j] = r.Float64()*2 - 1
			}
		}
	}
	return A
}

func factorizeDense(f *luFactor, A [][]float64) bool {
	m := len(A)
	return f.factorize(m, func(pos int, emit func(row int32, v float64)) {
		for i := 0; i < m; i++ {
			if A[i][pos] != 0 {
				emit(int32(i), A[i][pos])
			}
		}
	})
}

// TestLUFtranBtranVsDenseSolve factorizes random sparse matrices and
// cross-checks FTRAN (B·x = b) and BTRAN (Bᵀ·y = c) against a dense Gaussian
// elimination oracle.
func TestLUFtranBtranVsDenseSolve(t *testing.T) {
	r := rand.New(rand.NewSource(20260728))
	var f luFactor
	for trial := 0; trial < 60; trial++ {
		m := 2 + r.Intn(30)
		A := randomSparseMatrix(r, m, 0.15)
		if !factorizeDense(&f, A) {
			t.Fatalf("trial %d: factorize reported singular for a diagonally dominant matrix", trial)
		}
		b := make([]float64, m)
		c := make([]float64, m)
		for i := range b {
			b[i] = r.Float64()*4 - 2
			c[i] = r.Float64()*4 - 2
		}
		x := make([]float64, m)
		f.ftran(b, x)
		want := denseSolve(t, A, b)
		for k := range x {
			if math.Abs(x[k]-want[k]) > 1e-8 {
				t.Fatalf("trial %d: ftran x[%d] = %.12f, oracle %.12f", trial, k, x[k], want[k])
			}
		}
		// BTRAN: y solves Bᵀy = c, i.e. column j of B dotted with y gives c_j.
		y := make([]float64, m)
		cc := append([]float64(nil), c...)
		f.btran(cc, y)
		for j := 0; j < m; j++ {
			dot := 0.0
			for i := 0; i < m; i++ {
				dot += A[i][j] * y[i]
			}
			if math.Abs(dot-c[j]) > 1e-8 {
				t.Fatalf("trial %d: btran col %d: a_jᵀy = %.12f, want %.12f", trial, j, dot, c[j])
			}
		}
	}
}

// TestLUSingularDetection: a repeated column must be reported singular, not
// silently mis-factorized.
func TestLUSingularDetection(t *testing.T) {
	A := [][]float64{
		{1, 2, 1},
		{3, 1, 3},
		{0, 1, 0},
	}
	var f luFactor
	if factorizeDense(&f, A) {
		t.Fatal("rank-deficient matrix factorized as nonsingular")
	}
	if f.ok {
		t.Fatal("failed factorization left ok == true")
	}
}

// TestLUAssignmentBasisNoFill factorizes a transportation-style basis (the
// WaterWise round structure: assignment rows + capacity rows) and checks the
// factors stay (near) fill-free — the property the revised engine's per-pivot
// cost model relies on.
func TestLUAssignmentBasisNoFill(t *testing.T) {
	// Basis of a 6-job x 3-region round: per job one assignment column
	// (rows: job row + capacity row), plus 3 capacity slack singletons.
	const M, N = 6, 3
	m := M + N
	A := make([][]float64, m)
	for i := range A {
		A[i] = make([]float64, m)
	}
	r := rand.New(rand.NewSource(5))
	for j := 0; j < M; j++ { // assignment columns
		A[j][j] = 1
		A[M+r.Intn(N)][j] = 1
	}
	for k := 0; k < N; k++ { // capacity slacks
		A[M+k][M+k] = 1
	}
	var f luFactor
	if !factorizeDense(&f, A) {
		t.Fatal("round basis reported singular")
	}
	nnzIn := 0
	for i := range A {
		for j := range A[i] {
			if A[i][j] != 0 {
				nnzIn++
			}
		}
	}
	nnzOut := len(f.lVal) + len(f.uVal) + m // + unit/diagonal entries
	if nnzOut > nnzIn {
		t.Errorf("factorization filled in: %d input nonzeros -> %d factor entries", nnzIn, nnzOut)
	}
}
