package lp

// csc is the constraint matrix of a Problem in compressed sparse column
// form: column j's entries are rowIdx/val[colPtr[j]:colPtr[j+1]], sorted by
// row with duplicates summed and exact zeros dropped. The revised simplex
// engine prices, FTRANs, and factorizes straight off this structure, so
// every per-pivot cost tracks the matrix's nonzero count instead of m·n.
//
// A csc is immutable once built: Problem caches one per constraint shape
// (AddConstraint invalidates, SetRHS/SetBounds/SetObjective do not — they
// touch vectors, not the matrix), and clones, branch-and-bound workers, and
// Basis snapshots all share the same instance.
type csc struct {
	m      int // rows
	n      int // columns (the Problem's structural variables)
	colPtr []int32
	rowIdx []int32
	val    []float64
}

// nnzCol returns the entry count of column j.
func (a *csc) nnzCol(j int) int { return int(a.colPtr[j+1] - a.colPtr[j]) }

// buildCSC compresses the row-wise constraint list into column form.
func buildCSC(nvars int, rows []Constraint) *csc {
	nnz := 0
	for _, r := range rows {
		nnz += len(r.Terms)
	}
	a := &csc{
		m:      len(rows),
		n:      nvars,
		colPtr: make([]int32, nvars+1),
		rowIdx: make([]int32, nnz),
		val:    make([]float64, nnz),
	}
	for _, r := range rows {
		for _, t := range r.Terms {
			a.colPtr[t.Var+1]++
		}
	}
	for j := 0; j < nvars; j++ {
		a.colPtr[j+1] += a.colPtr[j]
	}
	fill := make([]int32, nvars)
	copy(fill, a.colPtr[:nvars])
	for i, r := range rows {
		for _, t := range r.Terms {
			k := fill[t.Var]
			a.rowIdx[k] = int32(i)
			a.val[k] = t.Coef
			fill[t.Var]++
		}
	}
	// Per column: sort by row, merge duplicates, drop exact zeros.
	out := int32(0)
	start := int32(0)
	for j := 0; j < nvars; j++ {
		end := a.colPtr[j+1]
		if end-start > 1 {
			// Insertion sort by row: columns are short (a handful of rows
			// reference each variable), and this allocates nothing.
			idx := a.rowIdx[start:end]
			vals := a.val[start:end]
			for i := 1; i < len(idx); i++ {
				ri, vi := idx[i], vals[i]
				k := i - 1
				for k >= 0 && idx[k] > ri {
					idx[k+1], vals[k+1] = idx[k], vals[k]
					k--
				}
				idx[k+1], vals[k+1] = ri, vi
			}
		}
		colOut := out
		for k := start; k < end; k++ {
			if out > colOut && a.rowIdx[out-1] == a.rowIdx[k] {
				a.val[out-1] += a.val[k]
				continue
			}
			a.rowIdx[out] = a.rowIdx[k]
			a.val[out] = a.val[k]
			out++
		}
		// Drop entries that cancelled to exactly zero.
		w := colOut
		for k := colOut; k < out; k++ {
			if a.val[k] == 0 {
				continue
			}
			a.rowIdx[w] = a.rowIdx[k]
			a.val[w] = a.val[k]
			w++
		}
		out = w
		start = end
		a.colPtr[j+1] = out
	}
	a.rowIdx = a.rowIdx[:out]
	a.val = a.val[:out]
	return a
}
