package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildRoundLP builds the LP relaxation of an MxN scheduling round: M
// assignment EQ rows, N capacity LE rows, box bounds via the implied-binary
// convention (no explicit [0,1] rows).
func buildRoundLP(tb testing.TB, M, N int) (*Problem, []int) {
	tb.Helper()
	p := New(M * N)
	terms := make([]Term, 0, M)
	for m := 0; m < M; m++ {
		terms = terms[:0]
		for n := 0; n < N; n++ {
			terms = append(terms, Term{Var: m*N + n, Coef: 1})
		}
		if _, err := p.AddConstraint(terms, EQ, 1); err != nil {
			tb.Fatal(err)
		}
	}
	capRows := make([]int, N)
	for n := 0; n < N; n++ {
		terms = terms[:0]
		for m := 0; m < M; m++ {
			terms = append(terms, Term{Var: m*N + n, Coef: 1})
		}
		row, err := p.AddConstraint(terms, LE, math.Ceil(1.2*float64(M)/float64(N)))
		if err != nil {
			tb.Fatal(err)
		}
		capRows[n] = row
	}
	return p, capRows
}

// mutateRoundLP rewrites the round LP the way the scheduler's cached model is
// rewritten each round: objective drift and forbidden-pair churn.
func mutateRoundLP(tb testing.TB, p *Problem, r *rand.Rand, obj []float64, M, N int) {
	tb.Helper()
	for v := range obj {
		obj[v] += (r.Float64() - 0.5) * 0.05
		if obj[v] < 0 {
			obj[v] = 0
		}
	}
	if err := p.SetObjective(obj, Minimize); err != nil {
		tb.Fatal(err)
	}
	for m := 0; m < M; m++ {
		open := 0
		for n := 0; n < N; n++ {
			v := m*N + n
			lo, hi := 0.0, math.Inf(1)
			if r.Intn(50) == 0 {
				hi = 0
			} else {
				open++
			}
			if err := p.SetBounds(v, lo, hi); err != nil {
				tb.Fatal(err)
			}
		}
		if open == 0 {
			if err := p.SetBounds(m*N+r.Intn(N), 0, math.Inf(1)); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

// BenchmarkSimplexAssignment1000x10 measures one cold simplex solve of the
// thousand-job round LP per iteration. The Basis carries no reusable state
// between iterations (the objective changes every round), only reusable
// allocations — exactly the scheduler's cold-round path.
func BenchmarkSimplexAssignment1000x10(b *testing.B) {
	const M, N = 1000, 10
	p, _ := buildRoundLP(b, M, N)
	r := rand.New(rand.NewSource(1))
	obj := make([]float64, M*N)
	for v := range obj {
		obj[v] = 0.2 + r.Float64()
	}
	basis := NewBasis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mutateRoundLP(b, p, r, obj, M, N)
		b.StartTimer()
		sol, err := p.SolveWarm(basis)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkRepriceAssignment1000x10 measures the cross-round warm start at
// thousand-job scale: each iteration re-prices the previous round's basis for
// the mutated objective/bounds instead of solving cold.
func BenchmarkRepriceAssignment1000x10(b *testing.B) {
	const M, N = 1000, 10
	p, _ := buildRoundLP(b, M, N)
	r := rand.New(rand.NewSource(1))
	obj := make([]float64, M*N)
	for v := range obj {
		obj[v] = 0.2 + r.Float64()
	}
	basis := NewBasis()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mutateRoundLP(b, p, r, obj, M, N)
		b.StartTimer()
		sol, err := p.SolveReprice(basis)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
